#!/usr/bin/env bash
# The pre-merge gate: everything a change must pass before it lands.
#
#   tools/ci.sh [fast]
#
#   1. static analysis: tools/mjoin_lint.py over src/, its self-test,
#      and (when clang-tidy is installed) a full MJOIN_LINT=ON build
#      with --warnings-as-errors=* — any finding fails the gate
#   2. Release build with -Wall -Wextra -Werror (MJOIN_WERROR=ON)
#   3. the full ctest suite, with MJOIN_CONFORMANCE=1 so every frame on
#      every channel is validated against the frame-table phase machine
#   4. mjoin_check: the shm-ring interleaving model checker (baseline
#      scenarios clean + all nine seeded ring bugs caught)
#   5. ThreadSanitizer and AddressSanitizer passes over the
#      concurrency-sensitive tests, and an UndefinedBehaviorSanitizer
#      pass over the full suite (tools/run_sanitized_tests.sh)
#
# 'fast' skips the sanitizer passes (step 4) for quick local iteration;
# a merge still requires the full run. Build trees are kept apart
# (build-ci, build-lint, build-threadsan, build-addresssan,
# build-undefinedsan) so the gate never disturbs an incremental
# developer build.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-full}"

# Every test and chaos stage below runs with runtime frame-protocol
# conformance armed: each frame is checked against the declarative table
# in src/net/frame_table.h (direction + phase), and a violation poisons
# the channel into a hard error. The golden/serve/chaos suites arm this
# themselves, but exporting it here covers every other binary too.
export MJOIN_CONFORMANCE=1

echo "== ci: project lint =="
python3 tools/mjoin_lint.py
python3 tests/lint_selftest/lint_selftest.py

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== ci: clang-tidy (MJOIN_LINT=ON) =="
  cmake -B build-lint -S . -DMJOIN_LINT=ON >/dev/null
  cmake --build build-lint -j "$(nproc)"
else
  # The lint build needs the clang frontend; a GCC-only host still runs
  # the project lint above, and the clang-tidy pass runs wherever LLVM is
  # installed. MJOIN_LINT=ON itself hard-fails when clang-tidy is absent,
  # so the gate can never silently claim a pass it did not run.
  echo "== ci: clang-tidy not installed, skipping the MJOIN_LINT build =="
fi

echo "== ci: release build with -Werror =="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release -DMJOIN_WERROR=ON >/dev/null
cmake --build build-ci -j "$(nproc)"

echo "== ci: test suite =="
ctest --test-dir build-ci --output-on-failure -j "$(nproc)"

echo "== ci: shm-ring model check =="
# Interleaving exploration of the production ring code (recompiled over
# the model memory policy), then the mutation self-test: nine seeded ring
# bugs, each of which must be caught. Proves both that the ring's §14
# invariants hold across schedules/crashes and that the checker has teeth.
./build-ci/src/check/mjoin_check selftest

echo "== ci: hot-path smoke bench =="
cmake --build build-ci --target hotpath_suite -j "$(nproc)"
./build-ci/bench/hotpath_suite --smoke --out=build-ci/BENCH_hotpath_smoke.json
echo "archived build-ci/BENCH_hotpath_smoke.json"

echo "== ci: net smoke bench =="
cmake --build build-ci --target net_throughput -j "$(nproc)"
./build-ci/bench/net_throughput --smoke --out=build-ci/BENCH_net_smoke.json
echo "archived build-ci/BENCH_net_smoke.json"

echo "== ci: serve smoke bench =="
# Also the warm-fleet latency guard: --smoke fails if the warm process
# path stops beating fork-per-query at p50.
cmake --build build-ci --target serve_throughput -j "$(nproc)"
./build-ci/bench/serve_throughput --smoke --out=build-ci/BENCH_serve_smoke.json
echo "archived build-ci/BENCH_serve_smoke.json"

echo "== ci: skew smoke bench =="
# Offense + defense regression guard: the adversarial Zipf headline must
# stay verified against the reference, the Bloom transfer must keep
# cutting the shm wire volume, and repartitioning must keep the busy-time
# spread below the undefended run. The headline's wall-clock speedup is
# NOT gated: on an oversubscribed CI host the balance win does not
# translate into wall time (see EXPERIMENTS.md), so gating it would only
# gate the scheduler. The one wall effect that survives a single core —
# the queue-backpressure win on the selectivity-1.0 m:n cell — is gated
# below.
cmake --build build-ci --target ext_skew -j "$(nproc)"
./build-ci/bench/ext_skew --smoke --out=build-ci/BENCH_skew_smoke.json
echo "archived build-ci/BENCH_skew_smoke.json"
python3 - <<'EOF'
import json
with open("build-ci/BENCH_skew_smoke.json") as f:
    bench = json.load(f)
for row in bench["sweep"]:
    assert row["verified"], f"sweep cell diverged from reference: {row}"
head = bench["headline"]
off, on = head["defense_off"], head["defense_on"]
assert off["verified"] and on["verified"], "headline diverged from reference"
wire = on["shm_bytes_sent"] / max(off["shm_bytes_sent"], 1)
assert wire <= 0.8, f"Bloom transfer stopped paying: wire ratio {wire:.2f}"
assert on["bloom_filtered_rows"] > 0, "Bloom filter never fired"
assert on["hot_keys"] > 0, "hot-key detection never fired"
assert on["busy_imbalance"] < off["busy_imbalance"], (
    f"repartitioning stopped flattening the busy spread: "
    f"on {on['busy_imbalance']:.2f} vs off {off['busy_imbalance']:.2f}")
# The selectivity-1.0 m:n cell is where repartitioning pays in wall time
# even on one core (spraying the hot key removes the hot lane's queue
# backpressure): ~1.35x measured, gated at 1.05x for scheduler noise.
heavy = {r["defense"]: r for r in bench["sweep"]
         if r["theta"] == 1.0 and r["fanout"] == 4
         and r["selectivity"] == 1.0 and r["strategy"] == "SP"}
assert heavy["on"]["repartitioned_rows"] > 0, "hot keys were never sprayed"
ratio = heavy["on"]["wall_seconds"] / heavy["off"]["wall_seconds"]
assert ratio <= 0.95, f"repartitioning stopped paying: wall ratio {ratio:.2f}"
print(f"skew guard: wire ratio {wire:.2f}, imbalance "
      f"{off['busy_imbalance']:.2f} -> {on['busy_imbalance']:.2f}, "
      f"headline speedup {head['speedup']:.2f}x, "
      f"heavy-cell speedup {1 / ratio:.2f}x")
EOF

echo "== ci: process-backend chaos sweep =="
# The full default sweep (MJOIN_CHAOS_ITERS=10, 200 seeded schedules)
# already ran inside the ctest stage above; this stage re-runs a bounded
# sweep with the watchdog-heavy schedules so a chaos regression names its
# seed in the CI log even when ctest output is folded away.
MJOIN_CHAOS_ITERS=2 ./build-ci/tests/process_chaos_test

if [ "$MODE" = fast ]; then
  echo "ci gate (fast) passed — run the full gate before merging"
  exit 0
fi

echo "== ci: thread sanitizer =="
# shm_ring_test's SPSC stress and shm_ring_tsan_test's dual-endpoint
# doorbell harness (in the default set) put the ring's release/acquire
# protocol itself under TSan; the chaos sweep covers the cross-process
# plane.
MJOIN_CHAOS_ITERS=2 tools/run_sanitized_tests.sh thread \
  thread_metrics_test shm_ring_test process_backend_fault_test \
  process_chaos_test serve_test warm_fleet_test plan_cache_test \
  skew_test workload_test

echo "== ci: address sanitizer =="
MJOIN_CHAOS_ITERS=2 tools/run_sanitized_tests.sh address \
  thread_metrics_test net_wire_test shm_ring_test \
  process_backend_fault_test process_chaos_test serve_test \
  warm_fleet_test plan_cache_test skew_test workload_test

echo "== ci: undefined-behavior sanitizer =="
# Full suite; the chaos sweep stays bounded so the UBSan pass does not
# spend its time re-proving recovery the dedicated stage already proved.
MJOIN_CHAOS_ITERS=2 tools/run_sanitized_tests.sh undefined

echo "ci gate passed"
