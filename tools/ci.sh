#!/usr/bin/env bash
# The pre-merge gate: everything a change must pass before it lands.
#
#   tools/ci.sh [fast]
#
#   1. Release build with -Wall -Wextra -Werror (MJOIN_WERROR=ON)
#   2. the full ctest suite
#   3. ThreadSanitizer and AddressSanitizer passes over the
#      concurrency-sensitive tests (tools/run_sanitized_tests.sh)
#
# 'fast' skips the sanitizer passes (step 3) for quick local iteration;
# a merge still requires the full run. Build trees are kept apart
# (build-ci, build-threadsan, build-addresssan) so the gate never
# disturbs an incremental developer build.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-full}"

echo "== ci: release build with -Werror =="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release -DMJOIN_WERROR=ON >/dev/null
cmake --build build-ci -j "$(nproc)"

echo "== ci: test suite =="
ctest --test-dir build-ci --output-on-failure -j "$(nproc)"

echo "== ci: hot-path smoke bench =="
cmake --build build-ci --target hotpath_suite -j "$(nproc)"
./build-ci/bench/hotpath_suite --smoke --out=build-ci/BENCH_hotpath_smoke.json
echo "archived build-ci/BENCH_hotpath_smoke.json"

echo "== ci: net smoke bench =="
cmake --build build-ci --target net_throughput -j "$(nproc)"
./build-ci/bench/net_throughput --smoke --out=build-ci/BENCH_net_smoke.json
echo "archived build-ci/BENCH_net_smoke.json"

if [ "$MODE" = fast ]; then
  echo "ci gate (fast) passed — run the full gate before merging"
  exit 0
fi

echo "== ci: thread sanitizer =="
tools/run_sanitized_tests.sh thread thread_metrics_test process_backend_fault_test

echo "== ci: address sanitizer =="
tools/run_sanitized_tests.sh address thread_metrics_test net_wire_test process_backend_fault_test

echo "ci gate passed"
