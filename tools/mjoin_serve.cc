// mjoin_serve — long-lived multi-tenant query service on warm executors.
//
//   mjoin_serve serve    --socket /tmp/mjoin.sock --exec-threads 2
//                        --workers 4 [--no-process] [--no-shm]
//                        [--budget BYTES] [--cache N]
//                        [--relations 5 --card 2000 --seed 1995]
//   mjoin_serve submit   --socket /tmp/mjoin.sock --shape wide-bushy
//                        --strategy FP --procs 8 [--backend thread|process]
//                        [--count N] [--deadline-ms N] [--tenant NAME]
//   mjoin_serve selftest [--relations 4 --card 500]
//
// `serve` builds the Wisconsin database in memory and serves queries over
// the AF_UNIX frame protocol until SIGINT/SIGTERM. `submit` builds a plan
// client-side (the same flags as mjoin_cli), sends it, and prints the
// result; server and client must agree on --relations/--card/--seed.
// `selftest` runs a server and clients inside one process and checks every
// result against the single-threaded reference — the CI smoke test.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/reference.h"
#include "plan/wisconsin_query.h"
#include "serve/client.h"
#include "serve/server.h"
#include "strategy/strategy.h"
#include "xra/text.h"

using namespace mjoin;

namespace {

volatile sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return flags.contains(key); }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: mjoin_serve <serve|submit|selftest> [flags]\n"
      "serve:\n"
      "  --socket PATH      AF_UNIX path to listen on (required)\n"
      "  --exec-threads N   concurrent query slots (default 2)\n"
      "  --workers N        warm process-worker fleet size (default 4)\n"
      "  --no-process       thread backend only (no worker fleet)\n"
      "  --no-shm           fleet keeps data on sockets, not shm rings\n"
      "  --ring-kb N        shm ring size in KiB (default 256)\n"
      "  --budget BYTES     global admission budget (default 1 GiB)\n"
      "  --cache N          plan-cache capacity (default 64)\n"
      "  --relations/--card/--seed  served Wisconsin database\n"
      "submit:\n"
      "  --socket PATH      server to connect to (required)\n"
      "  --shape / --strategy / --procs   plan to run (as mjoin_cli)\n"
      "  --relations/--card served database shape (must match the server)\n"
      "  --backend thread|process (default thread)\n"
      "  --tenant NAME      fairness queue (default \"cli\")\n"
      "  --count N          submissions (default 1)\n"
      "  --batch N          tuples per batch (default 256)\n"
      "  --deadline-ms N    per-query deadline (0 = none)\n"
      "  --query-budget BYTES  per-query memory budget (0 = default charge)\n"
      "selftest:\n"
      "  --relations/--card small database for the end-to-end check\n");
  return 2;
}

bool ParseShape(const std::string& text, QueryShape* shape) {
  static const std::map<std::string, QueryShape> kShapes = {
      {"left-linear", QueryShape::kLeftLinear},
      {"left-bushy", QueryShape::kLeftOrientedBushy},
      {"wide-bushy", QueryShape::kWideBushy},
      {"right-bushy", QueryShape::kRightOrientedBushy},
      {"right-linear", QueryShape::kRightLinear}};
  auto it = kShapes.find(text);
  if (it == kShapes.end()) return false;
  *shape = it->second;
  return true;
}

bool ParseStrategy(const std::string& text, StrategyKind* kind) {
  for (StrategyKind candidate : kAllStrategies) {
    if (StrategyName(candidate) == text) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

/// Builds the plan text a submit carries: parallelize the Wisconsin chain
/// query with the requested strategy and serialize to XRA.
StatusOr<std::string> BuildPlanText(QueryShape shape, StrategyKind strategy,
                                    int relations, uint32_t card,
                                    uint32_t procs) {
  MJOIN_ASSIGN_OR_RETURN(JoinQuery query,
                         MakeWisconsinChainQuery(shape, relations, card));
  MJOIN_ASSIGN_OR_RETURN(
      ParallelPlan plan,
      MakeStrategy(strategy)->Parallelize(query, procs, TotalCostModel()));
  return SerializePlan(plan);
}

int RunServe(const Args& args) {
  const std::string socket = args.Get("socket", "");
  if (socket.empty()) return Usage();
  const int relations = static_cast<int>(args.GetInt("relations", 5));
  const uint32_t card = static_cast<uint32_t>(args.GetInt("card", 2000));
  const uint32_t seed = static_cast<uint32_t>(args.GetInt("seed", 1995));
  Database db = MakeWisconsinDatabase(relations, card, seed);

  MjoinServeOptions options;
  options.socket_path = socket;
  options.exec_threads = static_cast<uint32_t>(args.GetInt("exec-threads", 2));
  options.admission_budget_bytes =
      static_cast<uint64_t>(args.GetInt("budget", 1ll << 30));
  options.plan_cache_capacity = static_cast<size_t>(args.GetInt("cache", 64));
  options.enable_process_backend = !args.Has("no-process");
  options.fleet.num_workers = static_cast<uint32_t>(args.GetInt("workers", 4));
  options.fleet.use_shm_data_plane = !args.Has("no-shm");
  options.fleet.shm_ring_bytes =
      static_cast<uint32_t>(args.GetInt("ring-kb", 256)) * 1024u;

  auto server = MjoinServer::Start(&db, options);
  if (!server.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "mjoin_serve: listening on %s (%u exec threads, %s fleet, "
               "%d relations x %u tuples)\n",
               socket.c_str(), options.exec_threads,
               options.enable_process_backend ? "warm process" : "no",
               relations, card);
  signal(SIGINT, HandleStop);
  signal(SIGTERM, HandleStop);
  while (g_stop == 0) pause();
  std::fprintf(stderr, "mjoin_serve: shutting down\n");
  server.value()->Shutdown();
  return 0;
}

int RunSubmit(const Args& args) {
  const std::string socket = args.Get("socket", "");
  if (socket.empty()) return Usage();
  QueryShape shape = QueryShape::kWideBushy;
  StrategyKind strategy = StrategyKind::kFP;
  if (!ParseShape(args.Get("shape", "wide-bushy"), &shape) ||
      !ParseStrategy(args.Get("strategy", "FP"), &strategy)) {
    return Usage();
  }
  auto plan_text = BuildPlanText(
      shape, strategy, static_cast<int>(args.GetInt("relations", 5)),
      static_cast<uint32_t>(args.GetInt("card", 2000)),
      static_cast<uint32_t>(args.GetInt("procs", 8)));
  if (!plan_text.ok()) {
    std::fprintf(stderr, "plan build failed: %s\n",
                 plan_text.status().ToString().c_str());
    return 1;
  }

  auto client = ServeClient::Connect(socket);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  const long count = args.GetInt("count", 1);
  SubmitMsg submit;
  submit.tenant = args.Get("tenant", "cli");
  submit.backend = args.Get("backend", "thread") == "process"
                       ? ServeBackend::kProcess
                       : ServeBackend::kThread;
  submit.plan_text = *plan_text;
  submit.batch_size = static_cast<uint32_t>(args.GetInt("batch", 256));
  submit.deadline_ms = args.GetInt("deadline-ms", 0);
  submit.memory_budget_bytes =
      static_cast<uint64_t>(args.GetInt("query-budget", 0));
  for (long i = 0; i < count; ++i) {
    submit.client_seq = static_cast<uint64_t>(i);
    if (Status s = client.value()->Submit(submit); !s.ok()) {
      std::fprintf(stderr, "submit failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  int failures = 0;
  for (long i = 0; i < count; ++i) {
    auto result = client.value()->Await();
    if (!result.ok()) {
      std::fprintf(stderr, "await failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const QueryResultMsg& r = result.value();
    if (r.status_code != 0) {
      std::fprintf(stderr, "query %llu failed: code %d: %s\n",
                   static_cast<unsigned long long>(r.client_seq),
                   r.status_code, r.message.c_str());
      ++failures;
      continue;
    }
    std::printf(
        "seq=%llu backend=%s rows=%llu checksum=%016llx wall=%.6fs "
        "queued=%.6fs cache_hit=%d attempts=%u\n",
        static_cast<unsigned long long>(r.client_seq),
        ServeBackendName(r.backend),
        static_cast<unsigned long long>(r.cardinality),
        static_cast<unsigned long long>(r.checksum), r.wall_seconds,
        r.queue_seconds, r.plan_cache_hit ? 1 : 0, r.attempts);
  }
  return failures == 0 ? 0 : 1;
}

int RunSelftest(const Args& args) {
  const int relations = static_cast<int>(args.GetInt("relations", 4));
  const uint32_t card = static_cast<uint32_t>(args.GetInt("card", 500));
  Database db = MakeWisconsinDatabase(relations, card, 1995);
  const std::string socket =
      "/tmp/mjoin_serve_selftest_" + std::to_string(getpid()) + ".sock";

  MjoinServeOptions options;
  options.socket_path = socket;
  options.exec_threads = 2;
  options.fleet.num_workers = 4;
  auto server = MjoinServer::Start(&db, options);
  if (!server.ok()) {
    std::fprintf(stderr, "selftest: start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  const QueryShape shapes[] = {QueryShape::kLeftLinear, QueryShape::kWideBushy};
  const ServeBackend backends[] = {ServeBackend::kThread,
                                   ServeBackend::kProcess};
  int rc = 0;
  for (QueryShape shape : shapes) {
    auto query = MakeWisconsinChainQuery(shape, relations, card);
    if (!query.ok()) return 1;
    auto expect = ReferenceSummary(*query, db);
    if (!expect.ok()) return 1;
    auto plan_text =
        BuildPlanText(shape, StrategyKind::kFP, relations, card, 8);
    if (!plan_text.ok()) return 1;
    for (ServeBackend backend : backends) {
      auto client = ServeClient::Connect(socket);
      if (!client.ok()) {
        std::fprintf(stderr, "selftest: connect failed: %s\n",
                     client.status().ToString().c_str());
        return 1;
      }
      SubmitMsg submit;
      submit.client_seq = 7;
      submit.tenant = "selftest";
      submit.backend = backend;
      submit.plan_text = *plan_text;
      submit.deadline_ms = 60000;
      if (Status s = client.value()->Submit(submit); !s.ok()) {
        std::fprintf(stderr, "selftest: submit failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      auto result = client.value()->Await(60000);
      if (!result.ok() || result.value().status_code != 0 ||
          result.value().cardinality != expect.value().cardinality ||
          result.value().checksum != expect.value().checksum) {
        std::fprintf(stderr, "selftest: %s backend mismatch or failure\n",
                     ServeBackendName(backend));
        rc = 1;
        continue;
      }
      std::printf("selftest: %s ok (%llu rows, %.6fs)\n",
                  ServeBackendName(backend),
                  static_cast<unsigned long long>(result.value().cardinality),
                  result.value().wall_seconds);
    }
  }
  server.value()->Shutdown();
  std::printf(rc == 0 ? "selftest: PASS\n" : "selftest: FAIL\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (argc < 2) return Usage();
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Usage();
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      args.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[arg] = argv[++i];
    } else {
      args.flags[arg] = "1";
    }
  }
  if (args.command == "serve") return RunServe(args);
  if (args.command == "submit") return RunSubmit(args);
  if (args.command == "selftest") return RunSelftest(args);
  return Usage();
}
