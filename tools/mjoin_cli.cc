// mjoin_cli — command-line front end to the engine.
//
//   mjoin_cli explain   --shape wide-bushy --strategy FP --procs 40
//   mjoin_cli run       --shape right-bushy --strategy RD --procs 40
//                       --card 5000 [--analyze] [--diagram]
//   mjoin_cli run       --backend thread --strategy FP --max-queue 4
//                       --budget 1048576 --deadline-ms 5000
//                       --fault slow-worker --fault-node 0
//   mjoin_cli run       --backend thread --metrics --diagram
//                       --trace-out=trace.json
//   mjoin_cli save-plan --shape left-linear --strategy SP --procs 20
//                       --out plan.xra
//   mjoin_cli run-plan  --plan plan.xra --card 5000
//   mjoin_cli bench     --shape wide-bushy --card 5000
//   mjoin_cli run       --backend process --workload zipf1-mn
//                       --skew-defense auto --metrics
//
// All subcommands generate the paper's Wisconsin database on the fly
// (--relations, --card, --seed) and verify executed results against the
// single-threaded reference. The workload flags (--workload,
// --zipf-theta, --selectivity, --fanout) swap the 1:1 permutation data
// for the adversarial generator's skewed / filtered / m:n relations.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <chrono>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/experiment.h"
#include "engine/fault_injector.h"
#include "engine/process_executor.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "net/net_fault.h"
#include "plan/wisconsin_query.h"
#include "skew/defense.h"
#include "strategy/strategy.h"
#include "workload/workload.h"
#include "xra/text.h"

using namespace mjoin;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return flags.contains(key); }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: mjoin_cli <explain|run|save-plan|run-plan|bench> [flags]\n"
      "  --shape     left-linear|left-bushy|wide-bushy|right-bushy|"
      "right-linear (default wide-bushy)\n"
      "  --strategy  SP|SE|RD|FP (default FP)\n"
      "  --procs     processors (default 40)\n"
      "  --card      tuples per relation (default 5000)\n"
      "  --relations base relations (default 10)\n"
      "  --seed      data seed (default 1995)\n"
      "  --analyze   print per-op EXPLAIN ANALYZE counters (run)\n"
      "  --diagram   print the utilization diagram (run)\n"
      "  --out FILE  plan file to write (save-plan)\n"
      "  --plan FILE plan file to execute (run-plan)\n"
      "  --backend   sim|thread|process (run; default sim)\n"
      "workload flags (all commands; default: the paper's 1:1 data):\n"
      "  --workload NAME    preset: uniform|zipf1|zipf1-mn|mn|filtered|\n"
      "                     adversarial (--card/--relations/--seed still\n"
      "                     override the preset)\n"
      "  --zipf-theta T     Zipf skew of the join columns (0=uniform)\n"
      "  --selectivity S    matchable fraction per join column, in (0,1]\n"
      "  --fanout N         average join multiplicity (m:n when > 1)\n"
      "skew defense flags (run --backend thread|process):\n"
      "  --skew-defense M   off|on|auto (default off): Bloom predicate\n"
      "                     transfer + hot-key repartitioning on probe\n"
      "                     edges; auto repartitions only on measured\n"
      "                     imbalance\n"
      "process-backend flags (run --backend process):\n"
      "  --workers N        worker processes to fork (default: one per\n"
      "                     plan processor)\n"
      "  --retries N        automatic retries on a retryable failure\n"
      "                     (default 0)\n"
      "  --retry-backoff-ms N  first-retry backoff, doubling per retry\n"
      "                     (default 50)\n"
      "  --degrade          fall back to the thread backend once the retry\n"
      "                     budget is exhausted\n"
      "  --heartbeat-ms N   coordinator ping cadence (default 500)\n"
      "  --liveness-ms N    SIGKILL a worker silent this long (0=off)\n"
      "  --no-shm           keep data on the sockets instead of the\n"
      "                     shared-memory ring data plane\n"
      "  --shm-ring-kb N    data bytes per shm ring in KiB; power of two\n"
      "                     (default 256)\n"
      "  --net-fault KIND   none|corrupt-out|corrupt-in|truncate-out|\n"
      "                     short-writes|stall-out|drop-conn\n"
      "  --net-fault-worker N  worker link the fault is installed on\n"
      "  --net-fault-after N   frames let through before firing\n"
      "  --net-fault-fires N   total fires allowed (0=unlimited, default 1)\n"
      "  --net-fault-seed N    seed choosing the damaged byte\n"
      "resilience flags (run --backend thread|process):\n"
      "  --batch N          tuples per inter-node batch (default 256)\n"
      "  --max-queue N      bound on queued batches per node (0=unbounded)\n"
      "  --budget BYTES     per-query memory budget (0=unlimited)\n"
      "  --deadline-ms N    abort with DeadlineExceeded after N ms\n"
      "  --fault KIND       none|slow-worker|fail-op|drop-batch|dup-batch\n"
      "  --fault-node N     slow-worker target node (default 0)\n"
      "  --fault-delay-us N slow-worker per-message delay (default 1000)\n"
      "  --fault-op N       target op id for fail-op/drop/dup (-1=any)\n"
      "  --fault-after N    fail-op: batches to let through first\n"
      "  --fault-prob P     drop/dup per-batch probability (default 1.0)\n"
      "  --fault-seed N     seed for probabilistic faults\n"
      "  --fault-on-attempt N  fire only on execution attempt N (0-based;\n"
      "                     -1=every attempt); pairs with --retries\n"
      "observability flags (run --backend thread|process):\n"
      "  --metrics          print the per-operator metrics table and the\n"
      "                     run-level metrics registry\n"
      "  --trace-out FILE   record a wall-clock trace and write it as\n"
      "                     Chrome trace JSON (chrome://tracing, Perfetto)\n"
      "  --diagram          also prints the wall-clock utilization diagram\n"
      "                     (implies trace recording)\n");
  return 2;
}

bool ParseShape(const std::string& text, QueryShape* shape) {
  static const std::map<std::string, QueryShape> kShapes = {
      {"left-linear", QueryShape::kLeftLinear},
      {"left-bushy", QueryShape::kLeftOrientedBushy},
      {"wide-bushy", QueryShape::kWideBushy},
      {"right-bushy", QueryShape::kRightOrientedBushy},
      {"right-linear", QueryShape::kRightLinear}};
  auto it = kShapes.find(text);
  if (it == kShapes.end()) return false;
  *shape = it->second;
  return true;
}

bool ParseStrategy(const std::string& text, StrategyKind* kind) {
  for (StrategyKind candidate : kAllStrategies) {
    if (StrategyName(candidate) == text) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

struct Common {
  QueryShape shape = QueryShape::kWideBushy;
  StrategyKind strategy = StrategyKind::kFP;
  uint32_t procs = 40;
  uint32_t card = 5000;
  int relations = 10;
  uint64_t seed = 1995;
  // Set by --workload / --zipf-theta / --selectivity / --fanout; when
  // use_workload is false the classic 1:1 Wisconsin generator runs.
  WorkloadSpec workload;
  bool use_workload = false;
};

bool ParseCommon(const Args& args, Common* common) {
  if (!ParseShape(args.Get("shape", "wide-bushy"), &common->shape)) {
    std::fprintf(stderr, "unknown shape\n");
    return false;
  }
  if (!ParseStrategy(args.Get("strategy", "FP"), &common->strategy)) {
    std::fprintf(stderr, "unknown strategy\n");
    return false;
  }
  if (args.Has("workload")) {
    auto preset = WorkloadPreset(args.Get("workload", ""));
    if (!preset.ok()) {
      std::fprintf(stderr, "%s\n", preset.status().ToString().c_str());
      return false;
    }
    common->workload = *preset;
    common->use_workload = true;
    // The preset's size defines the query too; explicit flags below still
    // override both.
    common->relations = common->workload.num_relations;
    common->card = common->workload.cardinality;
    common->seed = common->workload.seed;
  }
  common->procs = static_cast<uint32_t>(args.GetInt("procs", 40));
  common->card =
      static_cast<uint32_t>(args.GetInt("card", static_cast<int>(common->card)));
  common->relations = args.GetInt("relations", common->relations);
  common->seed = static_cast<uint64_t>(
      args.GetInt("seed", static_cast<int>(common->seed)));
  common->workload.num_relations = common->relations;
  common->workload.cardinality = common->card;
  common->workload.seed = common->seed;
  if (args.Has("zipf-theta")) {
    common->use_workload = true;
    common->workload.zipf_theta = args.GetDouble("zipf-theta", 0.0);
  }
  if (args.Has("selectivity")) {
    common->use_workload = true;
    common->workload.selectivity = args.GetDouble("selectivity", 1.0);
  }
  if (args.Has("fanout")) {
    common->use_workload = true;
    common->workload.fanout = static_cast<uint32_t>(args.GetInt("fanout", 1));
  }
  if (common->use_workload) {
    Status valid = common->workload.Validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "%s\n", valid.ToString().c_str());
      return false;
    }
  }
  return true;
}

StatusOr<Database> MakeCliDatabase(const Common& common) {
  if (common.use_workload) return MakeWorkloadDatabase(common.workload);
  return MakeWisconsinDatabase(common.relations, common.card, common.seed);
}

StatusOr<ParallelPlan> BuildPlan(const Common& common) {
  MJOIN_ASSIGN_OR_RETURN(
      JoinQuery query,
      MakeWisconsinChainQuery(common.shape, common.relations, common.card));
  return MakeStrategy(common.strategy)
      ->Parallelize(query, common.procs, TotalCostModel());
}

int CmdExplain(const Args& args) {
  Common common;
  if (!ParseCommon(args, &common)) return 2;
  auto query =
      MakeWisconsinChainQuery(common.shape, common.relations, common.card);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("join tree (%s):\n%s\n", ShapeName(common.shape).c_str(),
              query->tree.ToString().c_str());
  auto plan = BuildPlan(common);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", plan->ToString().c_str());
  return 0;
}

int RunAndReport(const ParallelPlan& plan, const Common& common,
                 bool analyze, bool diagram) {
  auto made = MakeCliDatabase(common);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Database db = std::move(*made);

  // Reference for verification: rebuild the query the plan came from. For
  // run-plan we only verify the cardinality invariant.
  SimExecutor executor(&db);
  SimExecOptions options;
  options.record_trace = diagram;
  auto run = executor.Execute(plan, options);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "strategy %s on %u processors: %.2f s simulated response, %llu "
      "result tuples\nprocesses %llu, streams %llu, startup %.2f s, "
      "handshake %.2f s\n",
      plan.strategy.c_str(), plan.num_processors, run->response_seconds,
      static_cast<unsigned long long>(run->result.cardinality),
      static_cast<unsigned long long>(run->counters.processes_started),
      static_cast<unsigned long long>(run->counters.streams_opened),
      options.costs.ToSeconds(run->counters.startup_ticks),
      options.costs.ToSeconds(run->counters.handshake_ticks));
  if (analyze) {
    std::printf("\nEXPLAIN ANALYZE:\n%s", RenderOpStats(plan, *run).c_str());
  }
  if (diagram) {
    std::printf("\nutilization (%.0f%%):\n%s", run->utilization * 100,
                run->utilization_diagram.c_str());
  }
  return 0;
}

void PrintThreadStats(const ThreadExecStats& stats) {
  std::printf(
      "batches: %llu sent, %llu processed, %llu dropped, %llu duplicated\n"
      "queues:  peak depth %llu, %llu overflow escapes\n"
      "memory:  peak %llu bytes\n",
      static_cast<unsigned long long>(stats.batches_sent),
      static_cast<unsigned long long>(stats.batches_processed),
      static_cast<unsigned long long>(stats.batches_dropped),
      static_cast<unsigned long long>(stats.batches_duplicated),
      static_cast<unsigned long long>(stats.peak_queue_depth),
      static_cast<unsigned long long>(stats.queue_overflows),
      static_cast<unsigned long long>(stats.peak_memory_bytes));
}

// `run --backend thread|process`: execute the plan on real OS threads or
// on forked worker processes, with the shared resilience knobs
// (backpressure, budget, deadline, fault injection) and observability
// flags. The two backends accept the same options and produce the same
// result shape, so one driver covers both.
int RunExecBackend(const Args& args, const ParallelPlan& plan,
                   const Common& common, bool process_backend) {
  FaultScenario scenario;
  if (!ParseFaultKind(args.Get("fault", "none"), &scenario.kind)) {
    std::fprintf(stderr, "unknown fault kind\n");
    return 2;
  }
  scenario.node = static_cast<uint32_t>(args.GetInt("fault-node", 0));
  scenario.delay = std::chrono::microseconds(args.GetInt("fault-delay-us", 1000));
  scenario.op = args.GetInt("fault-op", -1);
  scenario.after_batches =
      static_cast<uint64_t>(args.GetInt("fault-after", 0));
  scenario.probability = args.GetDouble("fault-prob", 1.0);
  scenario.seed = static_cast<uint64_t>(args.GetInt("fault-seed", 0));
  scenario.on_attempt = args.GetInt("fault-on-attempt", -1);
  FaultInjector injector(scenario);

  NetFaultScenario net_scenario;
  if (!ParseNetFaultKind(args.Get("net-fault", "none"), &net_scenario.kind)) {
    std::fprintf(stderr, "unknown net fault kind\n");
    return 2;
  }
  net_scenario.worker =
      static_cast<uint32_t>(args.GetInt("net-fault-worker", 0));
  net_scenario.after_frames =
      static_cast<uint64_t>(args.GetInt("net-fault-after", 0));
  net_scenario.max_fires =
      static_cast<uint64_t>(args.GetInt("net-fault-fires", 1));
  net_scenario.seed = static_cast<uint64_t>(args.GetInt("net-fault-seed", 0));
  NetFaultInjector net_injector(net_scenario);

  ThreadExecOptions options;
  options.batch_size = static_cast<uint32_t>(args.GetInt("batch", 256));
  options.max_queued_batches =
      static_cast<size_t>(args.GetInt("max-queue", 0));
  options.memory_budget_bytes =
      static_cast<size_t>(args.GetInt("budget", 0));
  if (args.Has("deadline-ms")) {
    options.deadline = std::chrono::milliseconds(args.GetInt("deadline-ms", 0));
  }
  if (scenario.kind != FaultKind::kNone) options.fault_injector = &injector;

  auto defense_mode = ParseSkewDefenseMode(args.Get("skew-defense", "off"));
  if (!defense_mode.ok()) {
    std::fprintf(stderr, "%s\n", defense_mode.status().ToString().c_str());
    return 2;
  }
  options.skew_defense.mode = *defense_mode;

  bool want_metrics = args.Has("metrics");
  bool want_diagram = args.Has("diagram");
  std::string trace_out = args.Get("trace-out", "");
  MetricsRegistry registry;
  options.record_trace = want_diagram || !trace_out.empty();
  if (want_metrics) options.metrics_registry = &registry;

  auto made = MakeCliDatabase(common);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Database db = std::move(*made);
  ThreadExecStats stats;
  ProcessNetStats net;
  ProcessExecStats proc;
  StatusOr<ThreadQueryResult> run =
      Status::Internal("backend produced no result");  // always overwritten
  if (process_backend) {
    ProcessExecutor executor(&db);
    ProcessExecOptions process_options;
    process_options.exec = options;
    process_options.num_workers =
        static_cast<uint32_t>(args.GetInt("workers", 0));
    process_options.max_retries =
        static_cast<uint32_t>(args.GetInt("retries", 0));
    process_options.retry_backoff =
        std::chrono::milliseconds(args.GetInt("retry-backoff-ms", 50));
    process_options.degrade_to_thread = args.Has("degrade");
    process_options.use_shm_data_plane = !args.Has("no-shm");
    process_options.shm_ring_bytes =
        static_cast<uint32_t>(args.GetInt("shm-ring-kb", 256)) * 1024u;
    process_options.heartbeat_interval =
        std::chrono::milliseconds(args.GetInt("heartbeat-ms", 500));
    process_options.liveness_timeout =
        std::chrono::milliseconds(args.GetInt("liveness-ms", 0));
    if (net_scenario.kind != NetFaultKind::kNone) {
      process_options.net_fault_injector = &net_injector;
    }
    auto outcome =
        executor.Execute(plan, process_options, &stats, &net, &proc);
    if (outcome.ok()) {
      net = outcome->net;
      proc = outcome->proc;
      run = std::move(outcome->exec);
    } else {
      run = outcome.status();
    }
  } else {
    ThreadExecutor executor(&db);
    run = executor.Execute(plan, options, &stats);
  }
  if (!run.ok()) {
    std::fprintf(stderr, "%s\npartial progress before abort:\n",
                 run.status().ToString().c_str());
    PrintThreadStats(stats);
    if (scenario.kind != FaultKind::kNone ||
        net_scenario.kind != NetFaultKind::kNone) {
      // Everything in both injectors is seed-deterministic: these two
      // lines reproduce the failing schedule exactly.
      std::fprintf(stderr,
                   "reproduce with: --fault-seed %llu --net-fault-seed %llu\n",
                   static_cast<unsigned long long>(scenario.seed),
                   static_cast<unsigned long long>(net_scenario.seed));
    }
    if (common.use_workload) {
      // Same idea as --fault-seed: the spec (seed included) regenerates
      // the exact data the failure happened on.
      std::fprintf(
          stderr, "workload: %s\nreproduce the data with: --seed %llu\n",
          common.workload.ToString().c_str(),
          static_cast<unsigned long long>(common.workload.seed));
    }
    if (proc.attempts > 1) {
      std::fprintf(stderr, "recovery: %u attempts, %u retries\n",
                   proc.attempts, proc.retries);
    }
    if (want_metrics) {
      std::printf("\nper-operator metrics up to the abort:\n%s",
                  RenderThreadOpStats(stats).c_str());
    }
    return 1;
  }
  if (process_backend) {
    std::printf(
        "strategy %s on %u processors in %u worker processes: %.3f s wall, "
        "%llu result tuples\n",
        plan.strategy.c_str(), plan.num_processors, net.num_workers,
        run->wall_seconds,
        static_cast<unsigned long long>(run->result.cardinality));
  } else {
    std::printf(
        "strategy %s on %u threads: %.3f s wall, %llu result tuples\n",
        plan.strategy.c_str(), plan.num_processors, run->wall_seconds,
        static_cast<unsigned long long>(run->result.cardinality));
  }
  PrintThreadStats(run->stats);
  if (process_backend && (proc.attempts > 1 || proc.degraded_to_thread)) {
    std::printf("recovery: %u attempts, %u retries%s\n", proc.attempts,
                proc.retries,
                proc.degraded_to_thread ? ", degraded to thread backend"
                                        : "");
    for (const WorkerFailureRecord& f : proc.failures) {
      std::printf("  attempt %u: worker %u (pid %d) %s: %s\n", f.attempt,
                  f.worker, static_cast<int>(f.pid),
                  WorkerFailureClassName(f.failure).c_str(),
                  f.detail.c_str());
    }
  }
  if (process_backend) {
    std::printf(
        "network: %s sent, %llu data frames routed, %llu local "
        "deliveries, %llu credit stalls\n",
        FormatBytes(net.bytes_sent).c_str(),
        static_cast<unsigned long long>(net.data_frames_routed),
        static_cast<unsigned long long>(net.local_deliveries),
        static_cast<unsigned long long>(net.credit_stalls));
  }
  if (want_metrics) {
    std::printf("\nper-operator metrics:\n%s",
                RenderThreadOpStats(run->stats).c_str());
    if (process_backend) {
      std::printf("\nnetwork counters:\n%s",
                  RenderProcessNetStats(net).c_str());
    }
    std::printf("\nmetrics registry:\n%s", registry.RenderTable().c_str());
  }
  if (want_diagram && run->trace != nullptr) {
    std::printf("\nutilization (%.0f%%):\n%s", run->utilization * 100,
                run->utilization_diagram.c_str());
  }
  if (!trace_out.empty() && run->trace != nullptr) {
    std::ofstream file(trace_out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    file << run->trace->ToChromeJson();
    std::printf("wrote %s (%llu trace events; load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(run->trace->num_events()));
  }
  // In the process backend the injectors fire inside the workers; their
  // counts come back aggregated in the net stats.
  uint64_t faults_injected =
      process_backend ? net.faults_injected : injector.faults_injected();
  if (faults_injected > 0) {
    std::printf("faults injected (%s): %llu\n",
                FaultKindName(scenario.kind).c_str(),
                static_cast<unsigned long long>(faults_injected));
  }

  // Drop/duplicate faults knowingly corrupt the result; verifying against
  // the reference would only report the corruption we caused.
  if (scenario.kind == FaultKind::kDropBatch ||
      scenario.kind == FaultKind::kDuplicateBatch) {
    std::printf("verification skipped: %s alters the data stream\n",
                FaultKindName(scenario.kind).c_str());
    return 0;
  }
  auto query =
      MakeWisconsinChainQuery(common.shape, common.relations, common.card);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto reference = ReferenceSummary(*query, db);
  if (!reference.ok() || !(run->result == *reference)) {
    std::fprintf(stderr, "verification FAILED\n");
    return 1;
  }
  std::printf("verification OK (matches single-threaded reference)\n");
  return 0;
}

int CmdRun(const Args& args) {
  Common common;
  if (!ParseCommon(args, &common)) return 2;
  auto plan = BuildPlan(common);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::string backend = args.Get("backend", "sim");
  if (backend == "thread") {
    return RunExecBackend(args, *plan, common, /*process_backend=*/false);
  }
  if (backend == "process") {
    return RunExecBackend(args, *plan, common, /*process_backend=*/true);
  }
  if (backend != "sim") {
    std::fprintf(stderr, "unknown backend '%s' (valid: sim|thread|process)\n",
                 backend.c_str());
    return 2;
  }
  // Verify against the reference first.
  auto made = MakeCliDatabase(common);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Database db = std::move(*made);
  auto query =
      MakeWisconsinChainQuery(common.shape, common.relations, common.card);
  auto reference = ReferenceSummary(*query, db);
  SimExecutor executor(&db);
  auto check = executor.Execute(*plan, SimExecOptions());
  if (!check.ok() || !reference.ok() || !(check->result == *reference)) {
    std::fprintf(stderr, "verification FAILED\n");
    return 1;
  }
  return RunAndReport(*plan, common, args.Has("analyze"),
                      args.Has("diagram"));
}

int CmdSavePlan(const Args& args) {
  Common common;
  if (!ParseCommon(args, &common)) return 2;
  std::string out = args.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out FILE required\n");
    return 2;
  }
  auto plan = BuildPlan(common);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << SerializePlan(*plan);
  std::printf("wrote %s (%llu ops, %llu processes)\n", out.c_str(),
              static_cast<unsigned long long>(plan->ops.size()),
              static_cast<unsigned long long>(plan->CountProcesses()));
  return 0;
}

int CmdRunPlan(const Args& args) {
  Common common;
  if (!ParseCommon(args, &common)) return 2;
  std::string path = args.Get("plan", "");
  if (path.empty()) {
    std::fprintf(stderr, "--plan FILE required\n");
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  auto plan = ParsePlan(buffer.str());
  if (!plan.ok()) {
    std::fprintf(stderr, "parse: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  return RunAndReport(*plan, common, args.Has("analyze"),
                      args.Has("diagram"));
}

int CmdBench(const Args& args) {
  Common common;
  if (!ParseCommon(args, &common)) return 2;
  ExperimentConfig config;
  config.shape = common.shape;
  config.num_relations = common.relations;
  config.cardinality = common.card;
  config.processors = SmallExperimentProcessors();
  config.seed = common.seed;
  auto result = RunShapeExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s query tree, %u tuples/relation:\n%s",
              ShapeName(common.shape).c_str(), common.card,
              result->ToTable().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The process backend writes to sockets whose peers can die at any
  // moment (that is the point of the fault-tolerance tests). Channel sends
  // already pass MSG_NOSIGNAL; this covers any other write to a dead pipe
  // so the coordinator sees EPIPE instead of dying silently.
  signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) return Usage();
    std::string key = token.substr(2);
    if (auto eq = key.find('='); eq != std::string::npos) {
      args.flags.insert_or_assign(key.substr(0, eq), key.substr(eq + 1));
    } else if (key == "analyze" || key == "diagram" || key == "metrics" ||
               key == "degrade" || key == "no-shm") {
      args.flags.insert_or_assign(key, std::string("1"));
    } else if (i + 1 < argc) {
      args.flags.insert_or_assign(key, std::string(argv[++i]));
    } else {
      return Usage();
    }
  }
  if (args.command == "explain") return CmdExplain(args);
  if (args.command == "run") return CmdRun(args);
  if (args.command == "save-plan") return CmdSavePlan(args);
  if (args.command == "run-plan") return CmdRunPlan(args);
  if (args.command == "bench") return CmdBench(args);
  return Usage();
}
