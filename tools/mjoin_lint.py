#!/usr/bin/env python3
"""Project-specific lint for the mjoin tree.

Four checks, each enforcing an invariant that neither the compiler nor
clang-tidy expresses:

  switch-exhaustive  Any switch over FrameType or StatusCode must list
                     every enumerator and carry no `default:` label. A
                     default clause would silence -Wswitch, so adding a
                     wire frame or status code could leave a handler
                     silently routing it to an "unexpected" error path.

  clock              Raw clock reads (steady_clock::now, clock_gettime,
                     ...) are banned except at sites annotated with
                     `// lint:allow-clock <reason>` on the same or the
                     previous line. The hot path must not read clocks
                     per batch unless observability is on; the
                     annotation forces every site to state its guard.

  new                Naked `new` / malloc-family allocation is banned
                     except at sites annotated `// lint:allow-new
                     <reason>`. Everything else goes through
                     make_unique/make_shared/containers so ownership is
                     explicit.

  include            Header guards are MJOIN_<PATH>_H_, a .cc includes
                     its own header first, and quoted includes are
                     directory-qualified ("engine/foo.h", not "foo.h").

  atomic-order       Every std::atomic access (.load/.store/.fetch_*/
                     .exchange/.compare_exchange_*) must name an explicit
                     std::memory_order argument, except at sites annotated
                     `// lint:allow-atomic <reason>`. The default
                     seq_cst hides the author's actual ordering intent,
                     which the shm-ring model checker needs spelled out.

FrameType is NOT read from the generated enum in net/wire.h: the member
list and each member's routing class come from the frame table rows in
net/frame_table.h, and an occurrence of MJOIN_FRAME_CASES(NOT_CW) /
MJOIN_FRAME_CASES(NOT_WC) inside a switch body credits exactly the case
labels that selector expands to. The table is therefore the only
definition site a new frame has to touch.

Usage: mjoin_lint.py [paths...]     (default: the repo's src/ tree)
Exit status 1 when any finding is reported, 0 on a clean run.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

# Enum definitions are always read from the canonical headers, so fixture
# files under test can reference FrameType without redefining it.
# FrameType is special: its source of truth is the frame table, not the
# generated enum (see FRAME_TABLE below).
ENUM_SOURCES = {
    "StatusCode": SRC_ROOT / "common" / "status.h",
    "ShmRecordType": SRC_ROOT / "net" / "shm_ring.h",
}

FRAME_TABLE = SRC_ROOT / "net" / "frame_table.h"

# One table row: X(id, Name, "wire-name", KLASS, ...). strip_code() blanks
# the wire-name's characters but keeps the quotes, so the row shape
# survives comment/string stripping.
FRAME_ROW_RE = re.compile(
    r'\bX\(\s*(\d+)\s*,\s*([A-Za-z_]\w*)\s*,\s*"[^"]*"\s*,\s*([A-Z_]+)')

# Which routing classes each MJOIN_FRAME_CASES selector expands into case
# labels for. Must mirror the MJOIN_FRAME_SEL_* macros in frame_table.h:
# ROUTED frames arrive at both endpoints, so neither selector emits them.
FRAME_SELECTOR_CLASSES = {
    "NOT_CW": {"WC", "SERVE"},
    "NOT_WC": {"CW", "SERVE"},
}

FRAME_CASES_RE = re.compile(r"\bMJOIN_FRAME_CASES\(\s*([A-Z_]+)\s*\)")
FRAME_TABLE_USE_RE = re.compile(r"\bMJOIN_FRAME_TABLE\(")

CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
    r"|\bclock_gettime\s*\("
    r"|\bgettimeofday\s*\("
)
NEW_RE = re.compile(r"\bnew\b|\b(?:malloc|calloc|realloc)\s*\(")
CASE_RE = re.compile(r"\bcase\s+([A-Za-z_][A-Za-z0-9_:]*)\s*:")
DEFAULT_RE = re.compile(r"\bdefault\s*:")
ATOMIC_OP_RE = re.compile(
    r"(?:\.|->)(?:load|store|exchange|fetch_(?:add|sub|and|or|xor)"
    r"|compare_exchange_(?:weak|strong))\s*\(")


def strip_code(text):
    """Blanks comments and string/char literals, preserving line structure.

    Returns the stripped text; the lint scans it so that `new` in a
    comment or "steady_clock" in a string never fires.
    """
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c in "\"'":
                state = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string or char literal
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == state:
                state = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def parse_enum(name):
    path = ENUM_SOURCES[name]
    text = strip_code(path.read_text())
    m = re.search(r"enum\s+class\s+" + name + r"\b[^{]*\{(.*?)\}", text,
                  re.DOTALL)
    if not m:
        sys.exit(f"mjoin_lint: cannot find enum {name} in {path}")
    members = []
    for part in m.group(1).split(","):
        em = re.match(r"\s*([A-Za-z_][A-Za-z0-9_]*)", part)
        if em:
            members.append(em.group(1))
    return members


def parse_frame_table():
    """Returns ([member, ...], {member: klass}) from frame_table.h rows."""
    text = strip_code(FRAME_TABLE.read_text())
    members = []
    klasses = {}
    for m in FRAME_ROW_RE.finditer(text):
        name = "k" + m.group(2)
        members.append(name)
        klasses[name] = m.group(3)
    if not members:
        sys.exit(f"mjoin_lint: no X(...) rows found in {FRAME_TABLE}")
    return members, klasses


class Linter:
    def __init__(self):
        self.findings = []
        self.enums = {name: parse_enum(name) for name in ENUM_SOURCES}
        frame_members, self.frame_klasses = parse_frame_table()
        self.enums["FrameType"] = frame_members

    def report(self, path, line, check, message):
        self.findings.append((path, line, check, message))

    def lint_file(self, path):
        raw = path.read_text()
        code = strip_code(raw)
        raw_lines = raw.splitlines()
        code_lines = code.splitlines()
        self.check_switches(path, code)
        self.check_annotated(path, raw_lines, code_lines, CLOCK_RE, "clock",
                             "lint:allow-clock",
                             "raw clock read; annotate the guard with "
                             "'// lint:allow-clock <reason>' or route "
                             "through the trace recorder")
        self.check_annotated(path, raw_lines, code_lines, NEW_RE, "new",
                             "lint:allow-new",
                             "naked allocation; use make_unique/"
                             "make_shared or annotate with "
                             "'// lint:allow-new <reason>'")
        self.check_includes(path, raw_lines, code_lines)
        self.check_atomic_order(path, raw_lines, code)

    # -- atomic-order -------------------------------------------------------

    def check_atomic_order(self, path, raw_lines, code):
        # Scans the whole stripped text, not line by line: the ordering
        # argument of a compare_exchange often sits on a continuation line
        # inside the call's parentheses.
        for m in ATOMIC_OP_RE.finditer(code):
            open_idx = code.index("(", m.start())
            depth = 0
            close_idx = -1
            for i in range(open_idx, len(code)):
                if code[i] == "(":
                    depth += 1
                elif code[i] == ")":
                    depth -= 1
                    if depth == 0:
                        close_idx = i
                        break
            if close_idx < 0:
                continue  # unbalanced (macro fragment); nothing to judge
            if "memory_order" in code[open_idx:close_idx]:
                continue
            line_no = code.count("\n", 0, m.start()) + 1
            here = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            prev = raw_lines[line_no - 2] if line_no >= 2 else ""
            if "lint:allow-atomic" in here or "lint:allow-atomic" in prev:
                continue
            self.report(path, line_no, "atomic-order",
                        "atomic access without an explicit std::memory_order"
                        "; name the ordering (or annotate with "
                        "'// lint:allow-atomic <reason>')")

    # -- switch-exhaustive ------------------------------------------------

    def check_switches(self, path, code):
        spans = []  # (open_idx, close_idx) of each switch body
        for m in re.finditer(r"\bswitch\b", code):
            open_idx = code.find("{", m.end())
            if open_idx < 0:
                continue
            depth = 0
            close_idx = -1
            for i in range(open_idx, len(code)):
                if code[i] == "{":
                    depth += 1
                elif code[i] == "}":
                    depth -= 1
                    if depth == 0:
                        close_idx = i
                        break
            if close_idx > 0:
                spans.append((open_idx, close_idx))

        for start, end in spans:
            body = code[start:end]
            # A nested switch owns its labels; mask its body out so the
            # outer switch is judged on its own cases only.
            masked = list(body)
            for s2, e2 in spans:
                if s2 > start and e2 < end:
                    for i in range(s2 - start, e2 - start):
                        if masked[i] != "\n":
                            masked[i] = " "
            body = "".join(masked)
            line = code.count("\n", 0, start) + 1

            cases = CASE_RE.findall(body)
            # An MJOIN_FRAME_CASES(sel) occurrence expands to the case
            # labels of every frame-table row in the selector's classes;
            # credit those members as listed.
            macro_cases = set()
            for sm in FRAME_CASES_RE.finditer(body):
                sel = FRAME_SELECTOR_CLASSES.get(sm.group(1))
                if sel is None:
                    line2 = line + body.count("\n", 0, sm.start())
                    self.report(path, line2, "switch-exhaustive",
                                f"unknown MJOIN_FRAME_CASES selector "
                                f"{sm.group(1)}")
                    continue
                macro_cases.update(m2 for m2, k in self.frame_klasses.items()
                                   if k in sel)
            for enum_name, members in self.enums.items():
                prefix = enum_name + "::"
                used = {c.split("::")[-1] for c in cases if prefix in c}
                if enum_name == "FrameType":
                    used |= macro_cases
                if not used:
                    continue
                missing = [m2 for m2 in members if m2 not in used]
                if missing:
                    self.report(path, line, "switch-exhaustive",
                                f"switch over {enum_name} is missing "
                                f"{', '.join(missing)}")
                if DEFAULT_RE.search(body):
                    self.report(path, line, "switch-exhaustive",
                                f"switch over {enum_name} has a default "
                                "label; list every enumerator instead so "
                                "-Wswitch flags new values")

    # -- annotation-gated patterns ----------------------------------------

    def check_annotated(self, path, raw_lines, code_lines, pattern, check,
                        annotation, message):
        for idx, code_line in enumerate(code_lines):
            if not pattern.search(code_line):
                continue
            here = raw_lines[idx] if idx < len(raw_lines) else ""
            prev = raw_lines[idx - 1] if idx > 0 else ""
            if annotation in here or annotation in prev:
                continue
            self.report(path, idx + 1, check, message)

    # -- include hygiene ---------------------------------------------------

    def check_includes(self, path, raw_lines, code_lines):
        # Include paths are quoted, so they read from the raw lines (the
        # literal-stripper blanks them); commented-out includes are skipped
        # by requiring the stripped line to still start the directive.
        quoted = []  # (line_no, include_path)
        for idx, line in enumerate(raw_lines):
            m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
            if m and idx < len(code_lines) and \
                    re.match(r'\s*#\s*include\b', code_lines[idx]):
                quoted.append((idx + 1, m.group(1)))

        for line_no, inc in quoted:
            if "/" not in inc:
                self.report(path, line_no, "include",
                            f'include "{inc}" is not directory-qualified')

        try:
            rel = path.resolve().relative_to(SRC_ROOT)
        except ValueError:
            return  # guard naming / own-header rules apply to src/ only

        if path.suffix == ".h":
            expected = "MJOIN_" + re.sub(r"[^A-Za-z0-9]", "_",
                                         str(rel)).upper() + "_"
            guard = None
            for idx, line in enumerate(code_lines):
                m = re.match(r"\s*#\s*ifndef\s+(\S+)", line)
                if m:
                    guard = (idx + 1, m.group(1))
                    break
                if line.strip():
                    break
            if guard is None:
                self.report(path, 1, "include",
                            f"missing header guard {expected}")
            elif guard[1] != expected:
                self.report(path, guard[0], "include",
                            f"header guard {guard[1]} should be {expected}")
        elif path.suffix == ".cc" and quoted:
            own = rel.with_suffix(".h")
            if (SRC_ROOT / own).exists() and quoted[0][1] != str(own):
                self.report(path, quoted[0][0], "include",
                            f'first quoted include should be the own '
                            f'header "{own}"')


def collect_files(paths):
    files = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.h")))
            files.extend(sorted(p.rglob("*.cc")))
        elif p.suffix in (".h", ".cc"):
            files.append(p)
        else:
            sys.exit(f"mjoin_lint: not a C++ source path: {p}")
    return files


def main(argv):
    targets = argv[1:] or [str(SRC_ROOT)]
    linter = Linter()
    files = collect_files(targets)
    if not files:
        sys.exit("mjoin_lint: no .h/.cc files under the given paths")
    for f in files:
        linter.lint_file(f)
    for path, line, check, message in linter.findings:
        try:
            shown = path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        print(f"{shown}:{line}: [{check}] {message}")
    n = len(linter.findings)
    if n:
        print(f"mjoin_lint: {n} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"mjoin_lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
