#!/usr/bin/env bash
# Builds a sanitized tree and runs the concurrency-sensitive tests under it.
#
#   tools/run_sanitized_tests.sh [thread|address|undefined] [extra test names...]
#
# Defaults to ThreadSanitizer and the threaded-executor tests (the ones
# with real cross-thread traffic). Pass additional ctest test names to
# widen the run, or 'address' for an ASan pass over the same set.
# 'undefined' builds with UBSan (recovery off: the first report aborts the
# offending test) and, with no extra test names, runs the FULL suite —
# undefined behaviour hides in single-threaded code paths too, and UBSan
# is cheap enough to afford the whole tree.
#
# The process-backend tests run under both sanitizers too (see ci.sh):
# workers _exit() after their fork, so ASan's leak check covers the
# coordinator — a leaked socket or un-reaped child shows up there.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${1:-thread}"
shift || true
case "$SANITIZER" in
  thread|address|undefined) ;;
  *)
    echo "usage: $0 [thread|address|undefined] [extra ctest test names...]" >&2
    exit 2 ;;
esac

BUILD_DIR="build-${SANITIZER}san"

cmake -B "$BUILD_DIR" -S . -DMJOIN_SANITIZE="$SANITIZER" >/dev/null

# halt_on_error makes a single report fail the run instead of scrolling by.
case "$SANITIZER" in
  thread)
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" ;;
  address)
    # detect_leaks explicitly on: the process-backend coordinator must not
    # leak channels or batch buffers even when a run aborts mid-query.
    export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" ;;
  undefined)
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" ;;
esac

if [ "$SANITIZER" = undefined ] && [ "$#" -eq 0 ]; then
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure
  echo "undefined sanitizer pass clean: full suite"
  exit 0
fi

# shm_ring_tsan_test puts the shm ring's release/acquire publish protocol
# and eventfd doorbell discipline on real threads in one address space —
# the only harness TSan can see into (the fork-based backends are opaque
# to it).
TESTS=(thread_executor_test thread_executor_fault_test shm_ring_tsan_test "$@")

TARGETS=()
for t in "${TESTS[@]}"; do TARGETS+=(--target "$t"); done
cmake --build "$BUILD_DIR" -j "$(nproc)" "${TARGETS[@]}"

REGEX="$(IFS='|'; echo "${TESTS[*]}")"
ctest --test-dir "$BUILD_DIR" --output-on-failure -R "^(${REGEX})$"
echo "${SANITIZER} sanitizer pass clean: ${TESTS[*]}"
