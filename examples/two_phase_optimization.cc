// Two-phase optimization end-to-end (§1.2 of the paper): phase 1 finds the
// join tree with minimal total cost (dynamic programming over the query
// graph, System-R-style linear mode or full bushy mode); phase 2
// parallelizes that tree with each of the four strategies and the best
// parallelization is picked by simulated execution.
//
//   $ ./two_phase_optimization
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "opt/optimizer.h"
#include "plan/query.h"
#include "plan/wisconsin_query.h"
#include "storage/wisconsin.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

// Binds the paper's chain-query semantics (join on column 0, project back
// to a Wisconsin tuple) to an arbitrary optimizer-produced tree over the
// Wisconsin relations.
JoinQuery BindWisconsinSemantics(JoinTree tree) {
  auto templ = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 2, 100);
  MJOIN_CHECK(templ.ok());
  JoinQuery query;
  query.tree = std::move(tree);
  auto wisconsin = std::make_shared<const Schema>(WisconsinSchema());
  for (int id : query.tree.PostOrder()) {
    const JoinTreeNode& node = query.tree.node(id);
    if (node.is_leaf()) query.base_schemas[node.relation] = wisconsin;
  }
  query.join_spec_factory = templ->join_spec_factory;
  return query;
}

}  // namespace

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  constexpr uint32_t kProcessors = 48;

  // Phase 1: optimize the regular 10-relation chain query.
  JoinGraph graph = JoinGraph::RegularChain(kRelations, kCardinality);
  TotalCostModel cost_model;

  OptimizerOptions bushy_options;
  auto bushy = OptimizeJoinOrder(graph, cost_model, bushy_options);
  OptimizerOptions linear_options;
  linear_options.linear_only = true;
  auto linear = OptimizeJoinOrder(graph, cost_model, linear_options);
  if (!bushy.ok() || !linear.ok()) {
    std::fprintf(stderr, "phase 1 failed\n");
    return 1;
  }
  std::printf(
      "phase 1 (min total cost): bushy search cost=%.0f depth=%d, "
      "System-R linear search cost=%.0f depth=%d\n",
      cost_model.TotalCost(*bushy), bushy->JoinDepth(),
      cost_model.TotalCost(*linear), linear->JoinDepth());
  std::printf(
      "(the regular query makes all trees equally expensive in total cost "
      "— the paper's point:\n phase 1 cannot distinguish them, but phase 2 "
      "parallelization can.)\n\n");
  std::printf("chosen tree (bushy search):\n%s\n",
              bushy->ToString().c_str());

  // Phase 2: try all four strategies on both phase-1 answers.
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/4);
  SimExecutor executor(&db);
  TablePrinter table(
      {"phase-1 tree", "SP [s]", "SE [s]", "RD [s]", "FP [s]", "best"});
  struct Row {
    const char* name;
    const JoinTree* tree;
  };
  for (const Row& row : {Row{"bushy search", &*bushy},
                         Row{"linear-only search", &*linear}}) {
    JoinQuery query = BindWisconsinSemantics(*row.tree);
    std::vector<std::string> cells = {row.name};
    double best = 1e100;
    std::string best_name = "-";
    for (StrategyKind kind : kAllStrategies) {
      auto plan = MakeStrategy(kind)->Parallelize(query, kProcessors,
                                                  cost_model);
      if (!plan.ok()) {
        cells.push_back("-");
        continue;
      }
      auto run = executor.Execute(*plan, SimExecOptions());
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
        return 1;
      }
      cells.push_back(FormatDouble(run->response_seconds, 2));
      if (run->response_seconds < best) {
        best = run->response_seconds;
        best_name = StrategyName(kind);
      }
    }
    cells.push_back(best_name);
    table.AddRow(std::move(cells));
  }
  std::printf("phase 2 at P=%u:\n%s", kProcessors, table.ToString().c_str());
  std::printf(
      "\nGuideline reproduced: when a bushy and a linear tree cost the "
      "same, pick the bushy\none — it parallelizes better (§5).\n");
  return 0;
}
