// Strategy explorer: run all four parallelization strategies on a chosen
// query shape / problem size / machine size, print the paper-style
// comparison plus a utilization diagram of the winner.
//
//   $ ./strategy_explorer [shape] [tuples_per_relation] [processors]
//     shape: left-linear | left-bushy | wide-bushy | right-bushy |
//            right-linear          (default wide-bushy)
//     tuples_per_relation: default 5000
//     processors: default 40
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

bool ParseShape(const char* text, QueryShape* shape) {
  struct Entry {
    const char* name;
    QueryShape shape;
  };
  static const Entry kEntries[] = {
      {"left-linear", QueryShape::kLeftLinear},
      {"left-bushy", QueryShape::kLeftOrientedBushy},
      {"wide-bushy", QueryShape::kWideBushy},
      {"right-bushy", QueryShape::kRightOrientedBushy},
      {"right-linear", QueryShape::kRightLinear},
  };
  for (const Entry& e : kEntries) {
    if (std::strcmp(text, e.name) == 0) {
      *shape = e.shape;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  QueryShape shape = QueryShape::kWideBushy;
  uint32_t cardinality = 5000;
  uint32_t processors = 40;
  if (argc > 1 && !ParseShape(argv[1], &shape)) {
    std::fprintf(stderr,
                 "unknown shape '%s' (try left-linear, left-bushy, "
                 "wide-bushy, right-bushy, right-linear)\n",
                 argv[1]);
    return 2;
  }
  if (argc > 2) cardinality = static_cast<uint32_t>(std::atoi(argv[2]));
  if (argc > 3) processors = static_cast<uint32_t>(std::atoi(argv[3]));

  constexpr int kRelations = 10;
  std::printf("shape=%s  tuples/relation=%u  processors=%u\n\n",
              ShapeName(shape).c_str(), cardinality, processors);

  Database db = MakeWisconsinDatabase(kRelations, cardinality, /*seed=*/1995);
  auto query = MakeWisconsinChainQuery(shape, kRelations, cardinality);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto reference = ReferenceSummary(*query, db);
  if (!reference.ok()) {
    std::fprintf(stderr, "%s\n", reference.status().ToString().c_str());
    return 1;
  }

  SimExecutor executor(&db);
  TablePrinter table({"strategy", "response [s]", "processes", "streams",
                      "utilization", "verified"});
  StrategyKind best_kind = StrategyKind::kSP;
  double best_seconds = 1e100;
  std::string best_diagram;

  for (StrategyKind kind : kAllStrategies) {
    auto plan = MakeStrategy(kind)->Parallelize(*query, processors,
                                                TotalCostModel());
    if (!plan.ok()) {
      table.AddRow({StrategyName(kind), "-", "-", "-", "-",
                    plan.status().ToString()});
      continue;
    }
    SimExecOptions options;
    options.record_trace = true;
    options.trace_width = 64;
    auto run = executor.Execute(*plan, options);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", StrategyName(kind).c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    bool verified = run->result == *reference;
    table.AddRow({StrategyName(kind), FormatDouble(run->response_seconds, 2),
                  StrCat(run->counters.processes_started),
                  StrCat(run->counters.streams_opened),
                  StrCat(FormatDouble(run->utilization * 100, 0), "%"),
                  verified ? "yes" : "NO!"});
    if (run->response_seconds < best_seconds) {
      best_seconds = run->response_seconds;
      best_kind = kind;
      best_diagram = run->utilization_diagram;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("winner: %s (%.2f s). Utilization diagram (rows = %u workers "
              "+ scheduler + broker):\n%s",
              StrategyName(best_kind).c_str(), best_seconds, processors,
              best_diagram.c_str());
  return 0;
}
