// General (non-benchmark) queries end-to-end: a randomly generated
// snowflake schema — a hub relation with foreign-key chains hanging off it
// — is optimized (phase 1), parallelized with all four strategies
// (phase 2), executed on the simulated machine, and verified against the
// reference executor. This demonstrates the engine is not hardwired to
// the paper's regular Wisconsin chain.
//
//   $ ./snowflake_query [num_relations] [base_cardinality] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "opt/general_query.h"
#include "opt/optimizer.h"
#include "strategy/strategy.h"

using namespace mjoin;

int main(int argc, char** argv) {
  int num_relations = argc > 1 ? std::atoi(argv[1]) : 9;
  uint32_t base_cardinality =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 4000;
  uint64_t seed = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 7;
  constexpr uint32_t kProcessors = 32;

  auto instance =
      MakeRandomSnowflakeQuery(num_relations, base_cardinality, seed);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  GeneralQuerySpec spec = instance->spec;

  Database db;
  for (size_t i = 0; i < instance->data.size(); ++i) {
    MJOIN_CHECK_OK(
        db.Add(spec.relations()[i].name, std::move(instance->data[i])));
  }
  std::printf("snowflake query: %d relations, %s of data, %zu fk-pk "
              "predicates, seed %llu\n",
              num_relations, FormatBytes(db.TotalBytes()).c_str(),
              spec.predicates().size(),
              static_cast<unsigned long long>(seed));
  for (const GeneralRelation& rel : spec.relations()) {
    std::printf("  %-4s %6u tuples  %s\n", rel.name.c_str(), rel.cardinality,
                rel.schema->ToString().c_str());
  }

  // Phase 1: minimal-total-cost join tree over the fk-pk graph.
  TotalCostModel cost_model;
  auto tree = OptimizeJoinOrder(spec.ToJoinGraph(), cost_model);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("\nphase-1 tree (estimated cost %.0f):\n%s",
              cost_model.TotalCost(*tree), tree->ToString().c_str());

  auto query = spec.BindTree(*tree);
  MJOIN_CHECK(query.ok()) << query.status();
  auto reference = ReferenceSummary(*query, db);
  MJOIN_CHECK(reference.ok()) << reference.status();
  std::printf("\nactual result: %llu tuples\n\n",
              static_cast<unsigned long long>(reference->cardinality));

  // Phase 2.
  SimExecutor executor(&db);
  TablePrinter table({"strategy", "response [s]", "verified"});
  for (StrategyKind kind : kAllStrategies) {
    auto plan = MakeStrategy(kind)->Parallelize(*query, kProcessors,
                                                cost_model);
    if (!plan.ok()) {
      table.AddRow({StrategyName(kind), "-", plan.status().ToString()});
      continue;
    }
    auto run = executor.Execute(*plan, SimExecOptions());
    MJOIN_CHECK(run.ok()) << run.status();
    table.AddRow({StrategyName(kind), FormatDouble(run->response_seconds, 2),
                  run->result == *reference ? "yes" : "NO!"});
  }
  std::printf("phase 2 at P=%u:\n%s", kProcessors,
              table.ToString().c_str());
  return 0;
}
