// Quickstart: generate the paper's Wisconsin test data, build a multi-join
// query, parallelize it with the Full Parallel strategy, and execute it on
// the simulated shared-nothing machine.
//
//   $ ./quickstart
#include <cstdio>

#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

int main() {
  // 1. A database of six Wisconsin relations, 10,000 tuples each.
  constexpr int kRelations = 6;
  constexpr uint32_t kCardinality = 10000;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/1);
  std::printf("database: %d relations x %u tuples (208 bytes/tuple)\n",
              kRelations, kCardinality);

  // 2. The multi-join query: a wide bushy tree over the six relations
  //    (phase 1 of two-phase optimization would pick the tree; here we
  //    pick the shape directly).
  auto query =
      MakeWisconsinChainQuery(QueryShape::kWideBushy, kRelations, kCardinality);
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("\njoin tree:\n%s", query->tree.ToString().c_str());

  // 3. Phase 2: parallelize with Full Parallel over 16 processors.
  auto strategy = MakeStrategy(StrategyKind::kFP);
  auto plan = strategy->Parallelize(*query, /*num_processors=*/16,
                                    TotalCostModel());
  if (!plan.ok()) {
    std::fprintf(stderr, "parallelize: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nparallel plan:\n%s", plan->ToString().c_str());

  // 4. Execute on the simulated machine and inspect the result.
  SimExecutor executor(&db);
  SimExecOptions options;
  options.record_trace = true;
  auto run = executor.Execute(*plan, options);
  if (!run.ok()) {
    std::fprintf(stderr, "execute: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nresult: %llu tuples (checksum %016llx)\n"
      "simulated response time: %.2f s  (%lld ticks, utilization %.0f%%)\n",
      static_cast<unsigned long long>(run->result.cardinality),
      static_cast<unsigned long long>(run->result.checksum),
      run->response_seconds, static_cast<long long>(run->response_ticks),
      run->utilization * 100);
  std::printf("\nprocessor utilization:\n%s",
              run->utilization_diagram.c_str());
  return 0;
}
