// Multicore execution: run the same parallel plans for real, on OS
// threads, instead of on the simulator. Each virtual processor becomes a
// thread and tuple streams become queues; results are verified against the
// single-threaded reference executor.
//
//   $ ./multicore_join [tuples_per_relation] [processors]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

int main(int argc, char** argv) {
  uint32_t cardinality = argc > 1
                             ? static_cast<uint32_t>(std::atoi(argv[1]))
                             : 20000;
  uint32_t processors =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 10;
  constexpr int kRelations = 8;

  std::printf(
      "threaded backend: %u virtual processors (threads) on %u hardware "
      "cores,\n%d Wisconsin relations x %u tuples\n\n",
      processors, std::thread::hardware_concurrency(), kRelations,
      cardinality);

  Database db = MakeWisconsinDatabase(kRelations, cardinality, /*seed=*/2);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightOrientedBushy,
                                       kRelations, cardinality);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto reference = ReferenceSummary(*query, db);
  if (!reference.ok()) {
    std::fprintf(stderr, "%s\n", reference.status().ToString().c_str());
    return 1;
  }

  ThreadExecutor executor(&db);
  TablePrinter table({"strategy", "wall time [s]", "result tuples",
                      "verified"});
  for (StrategyKind kind : kAllStrategies) {
    auto plan = MakeStrategy(kind)->Parallelize(*query, processors,
                                                TotalCostModel());
    if (!plan.ok()) {
      table.AddRow({StrategyName(kind), "-", "-",
                    plan.status().ToString()});
      continue;
    }
    ThreadExecOptions options;
    auto run = executor.Execute(*plan, options);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", StrategyName(kind).c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    table.AddRow({StrategyName(kind), FormatDouble(run->wall_seconds, 3),
                  StrCat(run->result.cardinality),
                  run->result == *reference ? "yes" : "NO!"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nNote: wall-clock differences between strategies only appear with "
      "enough hardware\ncores; on a small machine this mainly demonstrates "
      "correctness of the real parallel\nexecution (threads, queues, "
      "repartitioning) for all four strategies.\n");
  return 0;
}
