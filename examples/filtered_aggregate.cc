// Beyond joins: hand-assemble an XRA parallel plan — the engine's plan
// language is not limited to what the four strategies generate. The query:
//
//   SELECT twenty, COUNT(*), SUM(unique2), MIN(unique2), MAX(unique2)
//   FROM rel0 WHERE onePercent < 25 GROUP BY twenty
//
// as: scan (8-way) -> colocated filter -> hash-split aggregate (4-way),
// executed on both the simulated and the threaded backend and checked
// against a hand-computed answer.
#include <cstdio>
#include <map>

#include "engine/database.h"
#include "exec/aggregate.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "storage/wisconsin.h"
#include "xra/plan.h"

using namespace mjoin;

namespace {

ParallelPlan BuildPlan(const std::shared_ptr<const Schema>& wisconsin) {
  ParallelPlan plan;
  plan.strategy = "manual";
  plan.num_processors = 8;

  XraOp scan;
  scan.id = 0;
  scan.kind = XraOpKind::kScan;
  scan.label = "scan(rel0)";
  scan.trace_label = 's';
  scan.relation = "rel0";
  scan.processors = {0, 1, 2, 3, 4, 5, 6, 7};
  scan.output_schema = wisconsin;
  scan.consumer = 1;
  scan.consumer_port = 0;
  scan.trigger_group = 0;

  XraOp filter;
  filter.id = 1;
  filter.kind = XraOpKind::kFilter;
  filter.label = "filter(onePercent<25)";
  filter.trace_label = 'f';
  filter.filter = FilterPredicate{kOnePercent, CompareOp::kLt, 25, 0};
  filter.processors = scan.processors;  // colocated with the scan
  filter.input_schema = wisconsin;
  filter.output_schema = wisconsin;
  filter.inputs[0] = XraInput{0, Routing::kColocated, 0};
  filter.consumer = 2;
  filter.consumer_port = 0;
  filter.trigger_group = 0;

  XraOp aggregate;
  aggregate.id = 2;
  aggregate.kind = XraOpKind::kAggregate;
  aggregate.label = "aggregate(twenty)";
  aggregate.trace_label = 'a';
  aggregate.group_column = kTwenty;
  aggregate.value_column = kUnique2;
  aggregate.processors = {0, 2, 4, 6};
  aggregate.input_schema = wisconsin;
  aggregate.inputs[0] = XraInput{1, Routing::kHashSplit, kTwenty};
  aggregate.trigger_group = 0;

  plan.ops = {std::move(scan), std::move(filter), std::move(aggregate)};
  plan.groups.push_back(TriggerGroup{{}, {0, 1, 2}});
  plan.num_results = 1;
  plan.ops[2].store_result = 0;
  plan.final_result = 0;

  // Derive the aggregate's output schema via the operator factory.
  auto agg = AggregateOp::Make(wisconsin, kTwenty, kUnique2);
  MJOIN_CHECK(agg.ok());
  plan.ops[2].output_schema = (*agg)->output_schema();
  return plan;
}

}  // namespace

int main() {
  constexpr uint32_t kCardinality = 20000;
  Database db = MakeWisconsinDatabase(1, kCardinality, /*seed=*/6);
  auto wisconsin = std::make_shared<const Schema>(WisconsinSchema());
  ParallelPlan plan = BuildPlan(wisconsin);
  MJOIN_CHECK_OK(plan.Validate());

  std::printf("manual XRA plan:\n%s\n", plan.ToString().c_str());

  // Hand-computed expected answer.
  auto rel = db.Get("rel0");
  MJOIN_CHECK(rel.ok());
  std::map<int32_t, std::pair<int64_t, int64_t>> expected;  // count, sum
  for (size_t i = 0; i < (*rel)->num_tuples(); ++i) {
    TupleRef t = (*rel)->tuple(i);
    if (t.GetInt32(kOnePercent) < 25) {
      auto& [count, sum] = expected[t.GetInt32(kTwenty)];
      count += 1;
      sum += t.GetInt32(kUnique2);
    }
  }

  // Simulated backend.
  SimExecutor sim(&db);
  SimExecOptions sim_options;
  sim_options.materialize_result = true;
  auto sim_run = sim.Execute(plan, sim_options);
  MJOIN_CHECK(sim_run.ok()) << sim_run.status();

  // Threaded backend.
  ThreadExecutor threads(&db);
  ThreadExecOptions thread_options;
  thread_options.materialize_result = true;
  auto thread_run = threads.Execute(plan, thread_options);
  MJOIN_CHECK(thread_run.ok()) << thread_run.status();

  MJOIN_CHECK(sim_run->result == thread_run->result)
      << "backends disagree";

  std::printf("groups (simulated %.2f s, threaded %.3f s wall):\n",
              sim_run->response_seconds, thread_run->wall_seconds);
  const Relation& result = *sim_run->materialized;
  size_t correct = 0;
  for (size_t i = 0; i < result.num_tuples(); ++i) {
    TupleRef t = result.tuple(i);
    int32_t group = t.GetInt32(0);
    auto it = expected.find(group);
    bool ok = it != expected.end() && it->second.first == t.GetInt64(1) &&
              it->second.second == t.GetInt64(2);
    correct += ok ? 1 : 0;
    std::printf("  twenty=%2d  count=%5lld  sum(unique2)=%9lld  "
                "min=%5d max=%5d  %s\n",
                group, static_cast<long long>(t.GetInt64(1)),
                static_cast<long long>(t.GetInt64(2)), t.GetInt32(3),
                t.GetInt32(4), ok ? "ok" : "WRONG");
  }
  std::printf("%zu/%zu groups verified against the hand-computed answer\n",
              correct, expected.size());
  return correct == expected.size() && result.num_tuples() == expected.size()
             ? 0
             : 1;
}
