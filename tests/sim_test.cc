#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/processor.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace mjoin {
namespace {

// --- Simulator ----------------------------------------------------------------

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 30);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TieBreakIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NestedSchedulingAdvancesClock) {
  Simulator sim;
  Ticks observed = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(15, [&] { observed = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(observed, 25);
  EXPECT_EQ(sim.num_events_processed(), 2u);
}

TEST(SimulatorTest, RunForStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [&] { ++fired; });
  EXPECT_FALSE(sim.RunFor(3));
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(sim.RunFor(100));
  EXPECT_EQ(fired, 5);
}

// --- SimProcessor ----------------------------------------------------------------

TEST(SimProcessorTest, TasksSerializeOnOneNode) {
  Simulator sim;
  TraceRecorder trace(1);
  SimProcessor node(0, &sim, &trace);
  std::vector<Ticks> completion;
  for (int i = 0; i < 3; ++i) {
    node.Submit('a', [&sim, &completion] {
      TaskResult result;
      result.cost = 10;
      result.after.push_back({0, [&sim, &completion] {
                                completion.push_back(sim.Now());
                              }});
      return result;
    });
  }
  sim.Run();
  EXPECT_EQ(completion, (std::vector<Ticks>{10, 20, 30}));
  EXPECT_EQ(node.busy_ticks(), 30);
}

TEST(SimProcessorTest, DeferredActionsRunAtCompletionPlusDelay) {
  Simulator sim;
  SimProcessor node(0, &sim, nullptr);
  Ticks when = -1;
  node.Submit('x', [&] {
    TaskResult result;
    result.cost = 7;
    result.after.push_back({5, [&] { when = sim.Now(); }});
    return result;
  });
  sim.Run();
  EXPECT_EQ(when, 12);
}

TEST(SimProcessorTest, TwoNodesRunInParallel) {
  Simulator sim;
  SimProcessor a(0, &sim, nullptr), b(1, &sim, nullptr);
  Ticks end_a = 0, end_b = 0;
  a.Submit('a', [&] {
    TaskResult r;
    r.cost = 100;
    r.after.push_back({0, [&] { end_a = sim.Now(); }});
    return r;
  });
  b.Submit('b', [&] {
    TaskResult r;
    r.cost = 100;
    r.after.push_back({0, [&] { end_b = sim.Now(); }});
    return r;
  });
  EXPECT_EQ(sim.Run(), 100);  // not 200: the nodes overlap
  EXPECT_EQ(end_a, 100);
  EXPECT_EQ(end_b, 100);
}

// --- TraceRecorder ----------------------------------------------------------------

TEST(TraceTest, BusyTicksPerProcessor) {
  TraceRecorder trace(3);
  trace.Record(0, 0, 10, 'a');
  trace.Record(0, 20, 25, 'b');
  trace.Record(2, 0, 40, 'c');
  std::vector<Ticks> busy = trace.BusyTicks();
  EXPECT_EQ(busy, (std::vector<Ticks>{15, 0, 40}));
}

TEST(TraceTest, UtilizationFraction) {
  TraceRecorder trace(2);
  trace.Record(0, 0, 50, 'a');
  trace.Record(1, 0, 100, 'b');
  EXPECT_DOUBLE_EQ(trace.Utilization(100), 0.75);
  EXPECT_DOUBLE_EQ(trace.Utilization(0), 0.0);
}

TEST(TraceTest, DisabledRecorderIgnoresIntervals) {
  TraceRecorder trace(2, /*enabled=*/false);
  trace.Record(0, 0, 50, 'a');
  EXPECT_TRUE(trace.intervals().empty());
}

TEST(TraceTest, RenderShowsDominantLabelPerCell) {
  TraceRecorder trace(1);
  trace.Record(0, 0, 50, 'a');
  trace.Record(0, 50, 100, 'b');
  std::string out = trace.Render(100, 10);
  EXPECT_NE(out.find("aaaaabbbbb"), std::string::npos);
}

TEST(TraceTest, RenderMarksIdleAsDots) {
  TraceRecorder trace(1);
  trace.Record(0, 0, 10, 'a');
  std::string out = trace.Render(100, 10);
  EXPECT_NE(out.find("a........."), std::string::npos);
}

// --- SimMachine ----------------------------------------------------------------

TEST(MachineTest, HasWorkersPlusServiceNodes) {
  CostParams costs;
  SimMachine machine(8, costs);
  EXPECT_EQ(machine.num_workers(), 8u);
  EXPECT_EQ(machine.scheduler_id(), 8u);
  EXPECT_EQ(machine.broker_id(), 9u);
  EXPECT_EQ(machine.node(9).id(), 9u);
}

TEST(MachineTest, CostParamsToStringMentionsKnobs) {
  CostParams costs;
  std::string s = costs.ToString();
  EXPECT_NE(s.find("startup="), std::string::npos);
  EXPECT_NE(s.find("broker="), std::string::npos);
}

}  // namespace
}  // namespace mjoin
