#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/database.h"
#include "engine/thread_executor.h"
#include "exec/batch.h"
#include "exec/batch_pool.h"
#include "exec/emit.h"
#include "plan/wisconsin_query.h"
#include "storage/partitioner.h"
#include "storage/schema.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

std::shared_ptr<const Schema> KvSchema() {
  return std::make_shared<const Schema>(
      Schema({Column::Int32("k"), Column::Int32("v")}));
}

// --- BatchPool ---------------------------------------------------------------

TEST(BatchPoolTest, ReusesReleasedBuffers) {
  BatchPool pool;
  auto schema = KvSchema();
  {
    std::shared_ptr<TupleBatch> batch = pool.Acquire(schema);
    TupleWriter w = batch->AppendTuple();
    w.SetInt32(0, 1);
    w.SetInt32(1, 10);
  }  // last reference drops -> buffer returns to the freelist
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 0u);

  std::shared_ptr<TupleBatch> again = pool.Acquire(schema);
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
  // Recycled buffers come back empty but keep their capacity.
  EXPECT_EQ(again->num_tuples(), 0u);
  EXPECT_GT(again->capacity_bytes(), 0u);
}

TEST(BatchPoolTest, SharedReferencesReleaseOnce) {
  BatchPool pool;
  auto schema = KvSchema();
  std::shared_ptr<TupleBatch> batch = pool.Acquire(schema);
  std::shared_ptr<TupleBatch> alias = batch;  // duplicated delivery keeps a ref
  batch.reset();
  // The buffer is still live via `alias`: a new acquisition must allocate.
  std::shared_ptr<TupleBatch> other = pool.Acquire(schema);
  EXPECT_EQ(pool.allocated(), 2u);
  EXPECT_EQ(pool.reused(), 0u);
  alias.reset();
  std::shared_ptr<TupleBatch> recycled = pool.Acquire(schema);
  EXPECT_EQ(pool.reused(), 1u);
}

// --- EmitWriter --------------------------------------------------------------

/// Records which destinations reported full, and optionally drains them.
class RecordingSink : public EmitSink {
 public:
  explicit RecordingSink(std::vector<TupleBatch>* dests) : dests_(dests) {}

  void BatchFull(uint32_t dest) override {
    full_calls.push_back(dest);
    if (drain) (*dests_)[dest].Clear();
  }

  std::vector<uint32_t> full_calls;
  bool drain = true;

 private:
  std::vector<TupleBatch>* dests_;
};

TEST(EmitWriterTest, RoutesBySplitColumnAndFlushesAtThreshold) {
  auto schema = KvSchema();
  std::vector<TupleBatch> dests;
  dests.emplace_back(schema);
  dests.emplace_back(schema);
  RecordingSink sink(&dests);
  EmitWriter writer;
  writer.Configure(dests.data(), 2, /*split_column=*/0, /*fixed_dest=*/0,
                   /*flush_threshold=*/2, &sink);
  ASSERT_EQ(writer.split_column(), 0);

  // Six rows, keys 0..5: each key routes to FragmentOf(key, 2), and every
  // destination flushes exactly when its pending batch reaches 2 rows.
  for (int32_t key = 0; key < 6; ++key) {
    TupleWriter row = writer.Begin(key);
    row.SetInt32(0, key);
    row.SetInt32(1, key * 10);
    writer.Commit();
  }
  EXPECT_EQ(writer.rows_committed(), 6u);
  // 3 rows per fragment at threshold 2: each destination fired once, and
  // one row per destination is still pending.
  ASSERT_EQ(sink.full_calls.size(), 2u);
  EXPECT_NE(sink.full_calls[0], sink.full_calls[1]);
  EXPECT_EQ(dests[0].num_tuples() + dests[1].num_tuples(), 2u);
}

TEST(EmitWriterTest, FixedDestinationBulkAppendFlushesOnce) {
  auto schema = KvSchema();
  std::vector<TupleBatch> dests;
  dests.emplace_back(schema);
  RecordingSink sink(&dests);
  EmitWriter writer;
  writer.Configure(dests.data(), 1, /*split_column=*/-1, /*fixed_dest=*/0,
                   /*flush_threshold=*/4, &sink);
  ASSERT_LT(writer.split_column(), 0);

  // Build 10 contiguous finished rows, then bulk-append: the pending
  // batch legitimately exceeds the nominal threshold, and BatchFull fires
  // once for the oversized batch rather than once per threshold crossing.
  TupleBatch rows(schema);
  for (int32_t i = 0; i < 10; ++i) {
    TupleWriter w = rows.AppendTuple();
    w.SetInt32(0, i);
    w.SetInt32(1, -i);
  }
  sink.drain = false;
  writer.AppendRows(rows.raw_data(), rows.num_tuples());
  EXPECT_EQ(writer.rows_committed(), 10u);
  ASSERT_EQ(sink.full_calls.size(), 1u);
  EXPECT_EQ(dests[0].num_tuples(), 10u);
}

// --- TupleBatch schema validation (satellite: constructor-time error) --------

TEST(TupleBatchDeathTest, RejectsZeroSizeSchema) {
  auto empty = std::make_shared<const Schema>();
  EXPECT_DEATH({ TupleBatch batch(empty); }, "tuple_size");
}

// --- Executor option validation ---------------------------------------------

TEST(ThreadExecutorValidationTest, RejectsZeroBatchSize) {
  Database db = MakeWisconsinDatabase(3, 100, 5);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 3, 100);
  ASSERT_TRUE(query.ok());
  auto plan =
      MakeStrategy(StrategyKind::kFP)->Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());

  ThreadExecutor executor(&db);
  ThreadExecOptions options;
  options.batch_size = 0;
  auto run = executor.Execute(*plan, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

// --- Stored-result budget accounting (satellite: chunked reservation) --------

// Reserving stored-result bytes per flushed batch instead of per row must
// not move the budget high-water mark: the bytes reserved are exactly the
// bytes stored, independent of how they were chunked. SP stores every
// intermediate result, so it exercises the path hardest.
TEST(StoredResultBudgetTest, HighWaterMarkIndependentOfBatchSize) {
  Database db = MakeWisconsinDatabase(4, 300, 11);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 4, 300);
  ASSERT_TRUE(query.ok());
  auto plan =
      MakeStrategy(StrategyKind::kSP)->Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());

  ThreadExecutor executor(&db);
  std::vector<size_t> peaks;
  for (uint32_t batch_size : {1u, 64u}) {
    ThreadExecOptions options;
    options.batch_size = batch_size;
    auto run = executor.Execute(*plan, options);
    ASSERT_TRUE(run.ok()) << run.status();
    peaks.push_back(run->stats.peak_memory_bytes);
  }
  EXPECT_EQ(peaks[0], peaks[1]);
}

// --- Steady-state pooling ----------------------------------------------------

// On a pipelined plan with many batches in flight, recycled buffers must
// dominate: far fewer buffers are heap-allocated than batches shipped.
TEST(BatchPoolingTest, SteadyStateReusesBuffers) {
  Database db = MakeWisconsinDatabase(5, 400, 7);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 5, 400);
  ASSERT_TRUE(query.ok());
  auto plan =
      MakeStrategy(StrategyKind::kFP)->Parallelize(*query, 8, TotalCostModel());
  ASSERT_TRUE(plan.ok());

  ThreadExecutor executor(&db);
  ThreadExecOptions options;
  options.batch_size = 16;  // many batches -> pooling pays off
  auto run = executor.Execute(*plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  const ThreadExecStats& stats = run->stats;
  EXPECT_GT(stats.batches_sent, 0u);
  EXPECT_GT(stats.batch_buffers_reused, 0u);
  EXPECT_LT(stats.batch_buffers_allocated,
            stats.batch_buffers_allocated + stats.batch_buffers_reused);
}

}  // namespace
}  // namespace mjoin
