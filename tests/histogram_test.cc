#include <gtest/gtest.h>

#include "plan/catalog.h"
#include "storage/wisconsin.h"
#include "storage/zipf.h"

namespace mjoin {
namespace {

TEST(HistogramTest, BucketsCoverAllTuples) {
  Relation rel = GenerateWisconsin(10000, 3);
  auto histogram = EquiDepthHistogram::Build(rel, kUnique1, 16);
  ASSERT_TRUE(histogram.ok());
  uint64_t total = 0;
  int32_t prev_hi = -1;
  for (const auto& bucket : histogram->buckets()) {
    EXPECT_GT(bucket.lo, prev_hi);
    EXPECT_LE(bucket.lo, bucket.hi);
    EXPECT_GE(bucket.distinct, 1u);
    EXPECT_LE(bucket.distinct, bucket.count);
    total += bucket.count;
    prev_hi = bucket.hi;
  }
  EXPECT_EQ(total, 10000u);
  EXPECT_EQ(histogram->total_count(), 10000u);
  EXPECT_FALSE(histogram->ToString().empty());
}

TEST(HistogramTest, EquiDepthOnUniformData) {
  Relation rel = GenerateWisconsin(8000, 5);
  auto histogram = EquiDepthHistogram::Build(rel, kUnique1, 8);
  ASSERT_TRUE(histogram.ok());
  ASSERT_EQ(histogram->buckets().size(), 8u);
  for (const auto& bucket : histogram->buckets()) {
    EXPECT_EQ(bucket.count, 1000u);  // permutation: exactly equal depth
    EXPECT_EQ(bucket.distinct, 1000u);
  }
}

TEST(HistogramTest, RangeEstimatesTrackTruth) {
  Relation rel = GenerateWisconsin(10000, 7);
  auto histogram = EquiDepthHistogram::Build(rel, kUnique1, 32);
  ASSERT_TRUE(histogram.ok());
  // unique1 is a permutation of 0..9999: [0, 2499] holds exactly 2500.
  EXPECT_NEAR(histogram->EstimateRange(0, 2499), 2500, 100);
  EXPECT_NEAR(histogram->EstimateRange(5000, 9999), 5000, 100);
  EXPECT_NEAR(histogram->EstimateRange(0, 9999), 10000, 1);
  EXPECT_EQ(histogram->EstimateRange(20000, 30000), 0);
  EXPECT_EQ(histogram->EstimateRange(10, 5), 0);
}

TEST(HistogramTest, EqualsEstimateOnSkewedData) {
  Relation skewed = GenerateSkewedWisconsin(20000, 9, 1.0);
  auto histogram = EquiDepthHistogram::Build(skewed, kUnique1, 64);
  ASSERT_TRUE(histogram.ok());
  // Value 0 is the Zipf mode: its bucket is hot and narrow, so the
  // estimate must be far above the uniform prediction (20000/20000 = 1).
  EXPECT_GT(histogram->EstimateEquals(0), 100);
  // A cold value deep in the tail is rare.
  EXPECT_LT(histogram->EstimateEquals(19000), 5);
}

TEST(HistogramTest, JoinEstimateBeatsSingleDistinctUnderSkew) {
  constexpr uint32_t kN = 20000;
  Relation pk = GenerateWisconsin(kN, 1);
  Relation fk = GenerateSkewedWisconsin(kN, 2, 1.0);
  auto pk_hist = EquiDepthHistogram::Build(pk, kUnique1, 64);
  auto fk_hist = EquiDepthHistogram::Build(fk, kUnique1, 64);
  ASSERT_TRUE(pk_hist.ok() && fk_hist.ok());

  // Truth: every fk tuple matches exactly one pk tuple -> kN results.
  double histogram_estimate = fk_hist->EstimateJoin(*pk_hist);
  EXPECT_NEAR(histogram_estimate, kN, kN * 0.35);

  // The containment estimate with whole-column distincts is also ~kN here;
  // the histogram's real advantage is *range-restricted* estimation:
  // matches for keys in [0, 99] — where the Zipf mass concentrates.
  double hot = fk_hist->EstimateRange(0, 99);
  double cold = fk_hist->EstimateRange(10000, 10099);
  EXPECT_GT(hot, 20 * cold);
}

TEST(HistogramTest, NeverSplitsEqualValueRuns) {
  // 1000 copies of one value plus a few others: the hot value must sit in
  // exactly one bucket.
  Schema schema({Column::Int32("k")});
  Relation rel(schema);
  for (int i = 0; i < 1000; ++i) {
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(0, 42);
  }
  for (int i = 0; i < 10; ++i) {
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(0, 100 + i);
  }
  auto histogram = EquiDepthHistogram::Build(rel, 0, 8);
  ASSERT_TRUE(histogram.ok());
  int buckets_with_42 = 0;
  for (const auto& bucket : histogram->buckets()) {
    if (bucket.lo <= 42 && 42 <= bucket.hi) ++buckets_with_42;
  }
  EXPECT_EQ(buckets_with_42, 1);
  EXPECT_NEAR(histogram->EstimateEquals(42), 1000, 20);
}

TEST(HistogramTest, RejectsBadInput) {
  Relation rel = GenerateWisconsin(10, 1);
  EXPECT_FALSE(EquiDepthHistogram::Build(rel, kStringU1, 4).ok());
  EXPECT_FALSE(EquiDepthHistogram::Build(rel, 0, 0).ok());
  // Empty relation yields an empty histogram.
  Relation empty(WisconsinSchema());
  auto histogram = EquiDepthHistogram::Build(empty, 0, 4);
  ASSERT_TRUE(histogram.ok());
  EXPECT_TRUE(histogram->buckets().empty());
  EXPECT_EQ(histogram->EstimateRange(0, 100), 0);
}

}  // namespace
}  // namespace mjoin
