#include <dirent.h>
#include <signal.h>
#include <sys/wait.h>

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/fault_injector.h"
#include "engine/process_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// Failure-model tests for the process backend: a dead worker must surface
// as a clean kUnavailable with the fleet fully reaped (no zombies) and
// every socket closed (no fd leak), and the coordinator-enforced aborts
// (budget, cancellation, deadline, injected faults) must return the same
// status codes as the thread backend.

class ProcessBackendFaultTest : public testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(
        MakeWisconsinDatabase(/*relations=*/5, /*cardinality=*/400,
                              /*seed=*/7));
    auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 5, 400);
    ASSERT_TRUE(query.ok());
    auto plan = MakeStrategy(StrategyKind::kFP)
                    ->Parallelize(*query, /*processors=*/8, TotalCostModel());
    ASSERT_TRUE(plan.ok()) << plan.status();
    plan_ = std::make_unique<ParallelPlan>(*std::move(plan));
  }

  static size_t CountOpenFds() {
    size_t count = 0;
    DIR* dir = opendir("/proc/self/fd");
    if (dir == nullptr) return 0;
    while (readdir(dir) != nullptr) ++count;
    closedir(dir);
    return count;
  }

  // True while `pid` exists at all — including as an unreaped zombie, which
  // kill(pid, 0) still reaches. ESRCH therefore means "fully reaped".
  static bool ProcessExists(pid_t pid) {
    return kill(pid, 0) == 0 || errno != ESRCH;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ParallelPlan> plan_;
};

TEST_F(ProcessBackendFaultTest, KilledWorkerYieldsUnavailableNoZombiesNoFds) {
  const size_t fds_before = CountOpenFds();

  std::vector<pid_t> pids;
  ProcessExecOptions options;
  options.num_workers = 4;
  options.worker_observer = [&pids](uint32_t worker, pid_t pid) {
    pids.push_back(pid);
    // Kill the last worker the moment it exists: the coordinator finds the
    // corpse during the handshake and must abort the whole run.
    if (worker == 3) kill(pid, SIGKILL);
  };

  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable)
      << run.status();
  EXPECT_NE(run.status().message().find("killed by signal"),
            std::string::npos)
      << run.status();

  ASSERT_EQ(pids.size(), 4u);
  for (pid_t pid : pids) {
    EXPECT_FALSE(ProcessExists(pid)) << "worker pid " << pid
                                     << " survived or was left a zombie";
  }
  // Also via wait(): no reapable children may remain anywhere.
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
  EXPECT_EQ(CountOpenFds(), fds_before) << "leaked descriptors";
}

TEST_F(ProcessBackendFaultTest, KilledWorkerMidQueryYieldsUnavailable) {
  // Stretch the run far past the kill delay: every message on every worker
  // sleeps 20ms, and batch_size 1 multiplies the message count, so the
  // query takes many seconds unless aborted.
  FaultScenario scenario;
  scenario.kind = FaultKind::kSlowWorker;
  scenario.node = 0;
  scenario.delay = std::chrono::microseconds(20000);
  FaultInjector injector(scenario);

  std::vector<pid_t> pids;
  ProcessExecOptions options;
  options.num_workers = 4;
  options.exec.batch_size = 1;
  options.exec.fault_injector = &injector;

  std::thread killer;
  options.worker_observer = [&pids, &killer](uint32_t worker, pid_t pid) {
    pids.push_back(pid);
    if (worker == 3) {
      killer = std::thread([pid] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        kill(pid, SIGKILL);
      });
    }
  };

  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options);
  killer.join();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable)
      << run.status();
  for (pid_t pid : pids) EXPECT_FALSE(ProcessExists(pid));
}

TEST_F(ProcessBackendFaultTest, PartialStatsSurviveAnAbort) {
  std::vector<pid_t> pids;
  ProcessExecOptions options;
  options.num_workers = 2;
  options.worker_observer = [&pids](uint32_t worker, pid_t pid) {
    pids.push_back(pid);
    if (worker == 1) kill(pid, SIGKILL);
  };

  ThreadExecStats stats;
  ProcessNetStats net;
  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options, &stats, &net);
  ASSERT_FALSE(run.ok());
  // The coordinator's own socket counters survive even though the run
  // died: the plan envelope at least went out to worker 0.
  EXPECT_EQ(net.num_workers, 2u);
  EXPECT_GT(net.bytes_sent, 0u);
  EXPECT_GT(net.frames_sent, 0u);
}

TEST_F(ProcessBackendFaultTest, TinyMemoryBudgetAbortsResourceExhausted) {
  ProcessExecOptions options;
  options.num_workers = 2;
  options.exec.memory_budget_bytes = 1;  // no hash table fits

  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status();
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST_F(ProcessBackendFaultTest, PreCancelledTokenAbortsCancelled) {
  ProcessExecOptions options;
  options.num_workers = 2;
  options.exec.cancellation.Cancel();

  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled) << run.status();
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST_F(ProcessBackendFaultTest, DeadlineAbortsDeadlineExceeded) {
  // Slow every worker message down so the 30ms deadline cannot be met.
  FaultScenario scenario;
  scenario.kind = FaultKind::kSlowWorker;
  scenario.node = 0;
  scenario.delay = std::chrono::microseconds(20000);
  FaultInjector injector(scenario);

  ProcessExecOptions options;
  options.num_workers = 2;
  options.exec.batch_size = 1;
  options.exec.fault_injector = &injector;
  options.exec.deadline = std::chrono::milliseconds(30);

  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
      << run.status();
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST_F(ProcessBackendFaultTest, InjectedOperatorFailureAbortsInternal) {
  // op=-1: the first Consume() anywhere in the fleet fails, as a crashed
  // operation process would; the scenario rides the handshake so the hook
  // fires worker-side.
  FaultScenario scenario;
  scenario.kind = FaultKind::kFailOperator;
  scenario.op = -1;
  scenario.after_batches = 0;
  FaultInjector injector(scenario);

  ProcessExecOptions options;
  options.num_workers = 3;
  options.exec.fault_injector = &injector;

  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal) << run.status();
  EXPECT_NE(run.status().message().find("injected fault"),
            std::string::npos)
      << run.status();
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST_F(ProcessBackendFaultTest, WireTimersRunWithMetricsOff) {
  // Regression: serialize/deserialize_seconds came back 0.0 whenever
  // collect_metrics was off (the timers were gated on the observe flag),
  // which is exactly how benchmarks run — BENCH_net.json reported 13 MB
  // shipped in 0.0 s of codec time. Shipped bytes must imply nonzero
  // codec time regardless of the observability knobs.
  ProcessExecOptions options;
  options.num_workers = 3;
  options.exec.collect_metrics = false;
  options.exec.materialize_result = false;
  options.use_shm_data_plane = false;  // the socket codec path

  ProcessNetStats net;
  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options, nullptr, &net);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_GT(net.bytes_sent, 0u);
  EXPECT_GT(net.serialize_seconds, 0.0)
      << "bytes went over the wire but serialize time says 0";
  EXPECT_GT(net.deserialize_seconds, 0.0)
      << "bytes came off the wire but deserialize time says 0";
}

TEST_F(ProcessBackendFaultTest, ShmPlaneTimersRunWithMetricsOff) {
  // Same invariant on the shm plane, where the "codec" is the ring memcpy.
  ProcessExecOptions options;
  options.num_workers = 3;
  options.exec.collect_metrics = false;
  options.exec.materialize_result = false;

  ProcessNetStats net;
  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options, nullptr, &net);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(net.shm_rings, 0u);
  ASSERT_GT(net.shm_bytes_sent, 0u);
  EXPECT_EQ(net.data_frames_routed, 0u)
      << "data frames still relayed through the coordinator socket";
  EXPECT_GT(net.serialize_seconds, 0.0);
  EXPECT_GT(net.deserialize_seconds, 0.0);
}

TEST_F(ProcessBackendFaultTest, RepeatedRunsLeakNoDescriptors) {
  const size_t fds_before = CountOpenFds();
  ProcessExecutor executor(db_.get());
  for (int i = 0; i < 3; ++i) {
    ProcessExecOptions options;
    options.num_workers = 3;
    auto run = executor.Execute(*plan_, options);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_GT(run->exec.result.cardinality, 0u);
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

}  // namespace
}  // namespace mjoin
