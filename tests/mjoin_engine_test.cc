#include <gtest/gtest.h>

#include "engine/mjoin_engine.h"
#include "plan/wisconsin_query.h"
#include "xra/text.h"

namespace mjoin {
namespace {

TEST(MultiJoinEngineTest, ExecutesVerifiedQueryOnBothBackends) {
  MultiJoinEngine engine(MakeWisconsinDatabase(5, 400, /*seed=*/73));
  auto query = MakeWisconsinChainQuery(QueryShape::kRightOrientedBushy, 5,
                                       400);
  ASSERT_TRUE(query.ok());

  EngineQueryOptions options;
  options.strategy = StrategyKind::kRD;
  options.processors = 8;
  options.analyze = true;
  auto sim = engine.ExecuteQuery(*query, options);
  ASSERT_TRUE(sim.ok()) << sim.status();
  EXPECT_TRUE(sim->verified);
  EXPECT_EQ(sim->result.cardinality, 400u);
  EXPECT_GT(sim->seconds, 0);
  EXPECT_NE(sim->analyze_report.find("tuples in"), std::string::npos);

  options.backend = Backend::kThreaded;
  auto threaded = engine.ExecuteQuery(*query, options);
  ASSERT_TRUE(threaded.ok()) << threaded.status();
  EXPECT_TRUE(threaded->verified);
  EXPECT_EQ(threaded->result, sim->result);
}

TEST(MultiJoinEngineTest, PlanTextIsReplayable) {
  MultiJoinEngine engine(MakeWisconsinDatabase(4, 200, /*seed=*/79));
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 4, 200);
  ASSERT_TRUE(query.ok());
  EngineQueryOptions options;
  options.strategy = StrategyKind::kSP;
  options.processors = 4;
  auto outcome = engine.ExecuteQuery(*query, options);
  ASSERT_TRUE(outcome.ok());
  auto plan = ParsePlan(outcome->plan_text);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->Validate().ok());
}

TEST(MultiJoinEngineTest, ExecuteGraphRunsBothPhases) {
  auto instance = MakeRandomSnowflakeQuery(6, 150, /*seed=*/83);
  ASSERT_TRUE(instance.ok());
  Database db;
  for (size_t i = 0; i < instance->data.size(); ++i) {
    ASSERT_TRUE(db.Add(instance->spec.relations()[i].name,
                       std::move(instance->data[i]))
                    .ok());
  }
  MultiJoinEngine engine(std::move(db));
  EngineQueryOptions options;
  options.strategy = StrategyKind::kFP;
  options.processors = 10;
  auto outcome = engine.ExecuteGraph(instance->spec, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->verified);
}

TEST(MultiJoinEngineTest, SurfacesUnplaceableStrategies) {
  MultiJoinEngine engine(MakeWisconsinDatabase(6, 100, /*seed=*/89));
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 6, 100);
  ASSERT_TRUE(query.ok());
  EngineQueryOptions options;
  options.strategy = StrategyKind::kFP;
  options.processors = 3;  // < 5 joins
  EXPECT_EQ(engine.ExecuteQuery(*query, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mjoin
