#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/reference.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

struct Case {
  StrategyKind strategy;
  QueryShape shape;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string shape = ShapeName(info.param.shape);
  for (char& c : shape) {
    if (c == ' ') c = '_';
  }
  return StrategyName(info.param.strategy) + "_" + shape;
}

/// The threaded backend must produce reference-identical results for every
/// strategy on every shape — with real threads and real queues.
class ThreadBackendTest : public testing::TestWithParam<Case> {};

TEST_P(ThreadBackendTest, MatchesReference) {
  constexpr int kRelations = 5;
  constexpr uint32_t kCardinality = 400;
  constexpr uint32_t kProcessors = 8;

  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/7);
  auto query = MakeWisconsinChainQuery(GetParam().shape, kRelations,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());

  auto plan = MakeStrategy(GetParam().strategy)
                  ->Parallelize(*query, kProcessors, TotalCostModel());
  ASSERT_TRUE(plan.ok()) << plan.status();

  ThreadExecutor executor(&db);
  ThreadExecOptions options;
  options.batch_size = 64;
  auto run = executor.Execute(*plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result.cardinality, reference->cardinality);
  EXPECT_EQ(run->result.checksum, reference->checksum);
  EXPECT_GT(run->wall_seconds, 0.0);
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      cases.push_back({strategy, shape});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategiesAllShapes, ThreadBackendTest,
                         testing::ValuesIn(AllCases()), CaseName);

TEST(ThreadBackendTest, MaterializesResult) {
  Database db = MakeWisconsinDatabase(3, 200, 9);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 3, 200);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  ThreadExecutor executor(&db);
  ThreadExecOptions options;
  options.materialize_result = true;
  auto run = executor.Execute(*plan, options);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->materialized.has_value());
  EXPECT_EQ(run->materialized->num_tuples(), 200u);
}

TEST(ThreadBackendTest, RepeatedRunsAgree) {
  // Thread scheduling varies between runs; the result multiset must not.
  Database db = MakeWisconsinDatabase(4, 300, 41);
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, 4, 300);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, 6, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  ThreadExecutor executor(&db);
  ThreadExecOptions options;
  options.batch_size = 16;  // more interleaving
  auto first = executor.Execute(*plan, options);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 4; ++i) {
    auto again = executor.Execute(*plan, options);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->result, first->result);
  }
}

}  // namespace
}  // namespace mjoin
