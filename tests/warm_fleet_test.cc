#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/thread_executor.h"
#include "engine/warm_fleet.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// Repeated-run invariants on warm executors: a query served 100 times by
// one long-lived executor must behave like 100 one-shot runs — identical
// results, identical per-run stats (no counter leaking across reuses), no
// net descriptor growth, no silent fleet respawn. Plus the directed
// recovery cases a long-lived fleet flushes out: kill -9 between queries,
// and two fleets reaping strictly their own children.

size_t CountOpenFds() {
  size_t n = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++n;
  closedir(dir);
  return n;
}

struct Fixture {
  Database db;
  JoinQuery query;
  ParallelPlan plan;
  ResultSummary reference;

  static Fixture Make(QueryShape shape, int relations, uint32_t card,
                      uint32_t procs, StrategyKind strategy) {
    Fixture f{MakeWisconsinDatabase(relations, card, /*seed=*/7), {}, {}, {}};
    auto query = MakeWisconsinChainQuery(shape, relations, card);
    EXPECT_TRUE(query.ok());
    f.query = *std::move(query);
    auto plan =
        MakeStrategy(strategy)->Parallelize(f.query, procs, TotalCostModel());
    EXPECT_TRUE(plan.ok()) << plan.status();
    f.plan = *std::move(plan);
    auto ref = ReferenceSummary(f.query, f.db);
    EXPECT_TRUE(ref.ok());
    f.reference = *ref;
    return f;
  }
};

TEST(WarmFleetTest, RepeatedQueryStableStatsAndNoFdGrowth) {
  Fixture f = Fixture::Make(QueryShape::kLeftLinear, /*relations=*/4,
                            /*card=*/400, /*procs=*/6, StrategyKind::kFP);
  auto fleet = WarmProcessFleet::Spawn(&f.db, WarmFleetOptions{});
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  std::vector<pid_t> pids;
  for (uint32_t w = 0; w < (*fleet)->num_workers(); ++w) {
    pids.push_back((*fleet)->worker_pid(w));
  }

  // First run warms the pools and the arena mapping.
  ThreadExecStats first;
  auto warmup = (*fleet)->Execute(f.plan, ProcessExecOptions{}, &first);
  ASSERT_TRUE(warmup.ok()) << warmup.status();
  EXPECT_EQ(warmup->exec.result.cardinality, f.reference.cardinality);
  const size_t fds_warm = CountOpenFds();

  for (int run = 0; run < 100; ++run) {
    ThreadExecStats stats;
    ProcessNetStats net;
    auto result = (*fleet)->Execute(f.plan, ProcessExecOptions{}, &stats, &net);
    ASSERT_TRUE(result.ok()) << "run " << run << ": " << result.status();
    // Identical result every time.
    EXPECT_EQ(result->exec.result.cardinality, f.reference.cardinality);
    EXPECT_EQ(result->exec.result.checksum, f.reference.checksum);
    // Identical per-run counters: a counter that grows run over run is
    // state leaking across executor reuse.
    EXPECT_EQ(stats.batches_sent, first.batches_sent) << "run " << run;
    EXPECT_EQ(stats.batches_processed, first.batches_processed)
        << "run " << run;
    EXPECT_EQ(result->proc.attempts, 1u) << "run " << run;
    // Per-run wire counters, not fleet-lifetime cumulative ones.
    EXPECT_GT(net.frames_sent, 0u);
    EXPECT_LT(net.frames_sent, 10000u) << "cumulative leak across reuse";
  }

  // The fleet never respawned and no descriptor leaked.
  EXPECT_EQ((*fleet)->respawns(), 0u);
  EXPECT_EQ(CountOpenFds(), fds_warm) << "descriptor growth across 100 runs";
  for (uint32_t w = 0; w < (*fleet)->num_workers(); ++w) {
    EXPECT_EQ((*fleet)->worker_pid(w), pids[w]) << "worker " << w;
  }
}

TEST(WarmFleetTest, RepeatedQueryStableMetricsDeltaOnThreadExecutor) {
  Fixture f = Fixture::Make(QueryShape::kWideBushy, /*relations=*/4,
                            /*card=*/300, /*procs=*/6, StrategyKind::kFP);
  ThreadExecutor exec(&f.db);
  MetricsRegistry registry;
  ThreadExecOptions options;
  options.metrics_registry = &registry;

  MetricsSnapshot prev_delta_base = registry.Snapshot();
  MetricsSnapshot first_delta;
  for (int run = 0; run < 100; ++run) {
    auto result = exec.Execute(f.plan, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->result.checksum, f.reference.checksum);
    const MetricsSnapshot now = registry.Snapshot();
    const MetricsSnapshot delta = MetricsDelta(prev_delta_base, now);
    prev_delta_base = now;
    // The per-query delta is the same every run even though the registry's
    // cumulative counters keep growing: that is what makes one registry
    // reusable across queries on a warm executor.
    if (run == 0) {
      first_delta = delta;
      EXPECT_GT(delta.counters.at("thread.batches_sent"), 0u);
    } else {
      EXPECT_EQ(delta.counters.at("thread.batches_sent"),
                first_delta.counters.at("thread.batches_sent"))
          << "run " << run;
      EXPECT_EQ(delta.counters.at("thread.batches_processed"),
                first_delta.counters.at("thread.batches_processed"))
          << "run " << run;
    }
  }
}

TEST(WarmFleetTest, SurplusWorkersServeNarrowPlans) {
  // A fixed-size fleet must serve plans narrower than itself: the surplus
  // workers idle through the query but still handshake and park again.
  Fixture f = Fixture::Make(QueryShape::kLeftLinear, /*relations=*/3,
                            /*card=*/200, /*procs=*/2, StrategyKind::kSP);
  WarmFleetOptions options;
  options.num_workers = 6;
  auto fleet = WarmProcessFleet::Spawn(&f.db, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  for (int run = 0; run < 3; ++run) {
    auto result = (*fleet)->Execute(f.plan, ProcessExecOptions{});
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->exec.result.checksum, f.reference.checksum);
  }
  EXPECT_EQ((*fleet)->respawns(), 0u);
}

TEST(WarmFleetTest, KillNineBetweenQueriesRespawnsAndSucceeds) {
  Fixture f = Fixture::Make(QueryShape::kLeftLinear, /*relations=*/4,
                            /*card=*/300, /*procs=*/4, StrategyKind::kFP);
  auto fleet = WarmProcessFleet::Spawn(&f.db, WarmFleetOptions{});
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  ProcessExecOptions options;
  options.max_retries = 1;
  auto before = (*fleet)->Execute(f.plan, options);
  ASSERT_TRUE(before.ok()) << before.status();

  // Chaos: kill -9 a parked warm worker between queries. The next query
  // must notice the dead member, respawn the fleet, and succeed.
  std::mt19937 rng(1995);
  uint64_t kills = 0;
  for (int round = 0; round < 6; ++round) {
    if (round % 2 == 0) {
      const uint32_t victim = rng() % (*fleet)->num_workers();
      ASSERT_EQ(kill((*fleet)->worker_pid(victim), SIGKILL), 0);
      ++kills;
    }
    auto result = (*fleet)->Execute(f.plan, options);
    ASSERT_TRUE(result.ok()) << "round " << round << ": " << result.status();
    EXPECT_EQ(result->exec.result.checksum, f.reference.checksum);
  }
  EXPECT_GE((*fleet)->respawns(), kills) << "dead workers went unnoticed";
}

TEST(WarmFleetTest, FleetsReapOnlyTheirOwnChildren) {
  // Two fleets side by side: killing a worker of fleet A while fleet B is
  // mid-query must not disturb B (a waitpid(-1) in A's recovery would
  // steal B's exit notifications and corrupt B's supervision).
  Fixture fa = Fixture::Make(QueryShape::kLeftLinear, /*relations=*/4,
                             /*card=*/300, /*procs=*/4, StrategyKind::kFP);
  Fixture fb = Fixture::Make(QueryShape::kWideBushy, /*relations=*/4,
                             /*card=*/300, /*procs=*/4, StrategyKind::kRD);
  auto fleet_a = WarmProcessFleet::Spawn(&fa.db, WarmFleetOptions{});
  auto fleet_b = WarmProcessFleet::Spawn(&fb.db, WarmFleetOptions{});
  ASSERT_TRUE(fleet_a.ok() && fleet_b.ok());

  std::atomic<bool> b_done{false};
  std::atomic<int> b_failures{0};
  std::thread b_loop([&] {
    ProcessExecOptions options;
    for (int run = 0; run < 12; ++run) {
      auto result = (*fleet_b)->Execute(fb.plan, options);
      if (!result.ok() ||
          result->exec.result.checksum != fb.reference.checksum) {
        ++b_failures;
      }
    }
    b_done = true;
  });

  // While B churns, repeatedly kill an A worker and recover A.
  ProcessExecOptions recover;
  recover.max_retries = 1;
  int a_rounds = 0;
  while (!b_done.load() && a_rounds < 50) {
    ASSERT_EQ(kill((*fleet_a)->worker_pid(0), SIGKILL), 0);
    auto result = (*fleet_a)->Execute(fa.plan, recover);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->exec.result.checksum, fa.reference.checksum);
    ++a_rounds;
  }
  b_loop.join();

  EXPECT_GT(a_rounds, 0);
  EXPECT_EQ(b_failures.load(), 0)
      << "fleet A's recovery disturbed fleet B's query";
  EXPECT_EQ((*fleet_b)->respawns(), 0u)
      << "fleet B respawned: its children were reaped out from under it";
}

}  // namespace
}  // namespace mjoin
