#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/segments.h"
#include "plan/wisconsin_query.h"
#include "strategy/rd.h"

namespace mjoin {
namespace {

JoinTree AnnotatedRightLinear(int relations, double card) {
  auto tree = BuildShape(QueryShape::kRightLinear,
                         WisconsinRelationNames(relations), card);
  MJOIN_CHECK(tree.ok());
  TotalCostModel().Annotate(&*tree);
  return *std::move(tree);
}

TEST(SegmentMemoryTest, UnlimitedBudgetKeepsOneSegment) {
  JoinTree tree = AnnotatedRightLinear(10, 1000);
  SegmentedTree segmented = SegmentedTree::Build(tree, 0);
  EXPECT_EQ(segmented.segments().size(), 1u);
  EXPECT_EQ(segmented.segments()[0].probe_from, -1);
}

TEST(SegmentMemoryTest, BudgetSplitsChainBottomToTop) {
  JoinTree tree = AnnotatedRightLinear(10, 1000);
  // Each join's build operand is 1000 tuples; budget of 2500 fits two.
  SegmentedTree segmented = SegmentedTree::Build(tree, 2500);
  ASSERT_EQ(segmented.segments().size(), 5u);  // ceil(9 joins / 2)
  // Pieces chain through probe_from; only the bottom piece reads a base
  // relation.
  int base_probes = 0;
  for (const RightDeepSegment& seg : segmented.segments()) {
    EXPECT_LE(seg.joins.size(), 2u);
    if (seg.probe_from < 0) {
      ++base_probes;
    } else {
      // The lower piece must be listed as a producer child.
      bool found = false;
      for (int child : seg.children) found |= child == seg.probe_from;
      EXPECT_TRUE(found);
    }
  }
  EXPECT_EQ(base_probes, 1);
  // Root piece holds the tree root.
  const RightDeepSegment& root =
      segmented.segments()[static_cast<size_t>(segmented.root_segment())];
  EXPECT_EQ(root.joins.back(), tree.root());
}

TEST(SegmentMemoryTest, EverySegmentRespectsBudgetWhenPossible) {
  JoinTree tree = AnnotatedRightLinear(10, 1000);
  SegmentedTree segmented = SegmentedTree::Build(tree, 3000);
  for (const RightDeepSegment& seg : segmented.segments()) {
    double build = 0;
    for (int join : seg.joins) {
      build += tree.node(tree.node(join).left).cardinality;
    }
    EXPECT_LE(build, 3000);
  }
}

TEST(SegmentMemoryTest, OversizedSingleBuildStillGetsItsOwnSegment) {
  JoinTree tree = AnnotatedRightLinear(4, 1000);
  // Budget below a single build table: one join per segment, no infinite
  // loop, no empty segments.
  SegmentedTree segmented = SegmentedTree::Build(tree, 10);
  EXPECT_EQ(segmented.segments().size(), 3u);
  for (const RightDeepSegment& seg : segmented.segments()) {
    EXPECT_EQ(seg.joins.size(), 1u);
  }
}

TEST(SegmentMemoryTest, ConstrainedRdExecutesCorrectly) {
  constexpr int kRelations = 6;
  constexpr uint32_t kCardinality = 500;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, 43);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear, kRelations,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());
  SimExecutor executor(&db);
  for (double budget : {0.0, 2000.0, 600.0}) {
    SegmentedRightDeepStrategy strategy(budget);
    auto plan = strategy.Parallelize(*query, 10, TotalCostModel());
    ASSERT_TRUE(plan.ok()) << "budget " << budget << ": " << plan.status();
    ASSERT_TRUE(plan->Validate().ok());
    auto run = executor.Execute(*plan, SimExecOptions());
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->result, *reference) << "budget " << budget;
  }
}

TEST(SegmentMemoryTest, ConstrainedRdAlsoWorksOnBushyTrees) {
  constexpr int kRelations = 8;
  constexpr uint32_t kCardinality = 400;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, 47);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightOrientedBushy,
                                       kRelations, kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());
  SegmentedRightDeepStrategy strategy(/*max_build_tuples_per_segment=*/800);
  auto plan = strategy.Parallelize(*query, 12, TotalCostModel());
  ASSERT_TRUE(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  auto run = executor.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result, *reference);
}

TEST(SegmentMemoryTest, ToStringShowsProbeHandoffs) {
  JoinTree tree = AnnotatedRightLinear(6, 1000);
  SegmentedTree segmented = SegmentedTree::Build(tree, 2000);
  std::string text = segmented.ToString(tree);
  EXPECT_NE(text.find("probes result of segment"), std::string::npos);
}

}  // namespace
}  // namespace mjoin
