#include <gtest/gtest.h>

#include <set>

#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "exec/sort_merge_join.h"
#include "plan/wisconsin_query.h"
#include "strategy/sp.h"
#include "xra/text.h"

namespace mjoin {
namespace {

std::shared_ptr<const Schema> KvSchema() {
  return std::make_shared<const Schema>(
      Schema({Column::Int32("k"), Column::Int32("v")}));
}

JoinSpec KvSpec() {
  auto spec = MakeJoinSpec(KvSchema(), KvSchema(), 0, 0,
                           {JoinOutputColumn::Left(0),
                            JoinOutputColumn::Left(1),
                            JoinOutputColumn::Right(1)});
  MJOIN_CHECK(spec.ok());
  return *std::move(spec);
}

class RecordingContext : public OpContext {
 public:
  explicit RecordingContext(std::shared_ptr<const Schema> schema)
      : out(std::move(schema)) {}
  void Charge(Ticks cost) override { charged += cost; }
  void EmitRow(const std::byte* row) override { out.AppendRow(row); }
  const CostParams& costs() const override { return params; }

  CostParams params;
  Ticks charged = 0;
  TupleBatch out;
};

TupleBatch Rows(std::vector<std::pair<int32_t, int32_t>> rows) {
  TupleBatch batch(KvSchema());
  for (auto [k, v] : rows) {
    TupleWriter w = batch.AppendTuple();
    w.SetInt32(0, k);
    w.SetInt32(1, v);
  }
  return batch;
}

std::multiset<std::tuple<int32_t, int32_t, int32_t>> Collect(
    const TupleBatch& out) {
  std::multiset<std::tuple<int32_t, int32_t, int32_t>> rows;
  for (size_t i = 0; i < out.num_tuples(); ++i) {
    rows.insert({out.tuple(i).GetInt32(0), out.tuple(i).GetInt32(1),
                 out.tuple(i).GetInt32(2)});
  }
  return rows;
}

TEST(SortMergeJoinTest, JoinsWithDuplicateRuns) {
  SortMergeJoinOp join(KvSpec());
  RecordingContext ctx(join.output_schema());
  join.Consume(0, Rows({{3, 30}, {1, 10}, {2, 20}, {2, 21}}), &ctx);
  join.Consume(1, Rows({{2, 200}, {4, 400}, {2, 201}, {1, 100}}), &ctx);
  // Nothing until both inputs end: a pipeline breaker.
  EXPECT_EQ(ctx.out.num_tuples(), 0u);
  join.InputDone(0, &ctx);
  EXPECT_EQ(ctx.out.num_tuples(), 0u);
  EXPECT_FALSE(join.finished());
  join.InputDone(1, &ctx);
  EXPECT_TRUE(join.finished());
  EXPECT_EQ(Collect(ctx.out),
            (std::multiset<std::tuple<int32_t, int32_t, int32_t>>{
                {1, 10, 100},
                {2, 20, 200},
                {2, 20, 201},
                {2, 21, 200},
                {2, 21, 201}}));
}

TEST(SortMergeJoinTest, EmptySidesAndNoMatches) {
  {
    SortMergeJoinOp join(KvSpec());
    RecordingContext ctx(join.output_schema());
    join.InputDone(0, &ctx);
    join.Consume(1, Rows({{1, 1}}), &ctx);
    join.InputDone(1, &ctx);
    EXPECT_TRUE(join.finished());
    EXPECT_EQ(ctx.out.num_tuples(), 0u);
  }
  {
    SortMergeJoinOp join(KvSpec());
    RecordingContext ctx(join.output_schema());
    join.Consume(0, Rows({{1, 1}, {3, 3}}), &ctx);
    join.Consume(1, Rows({{2, 2}, {4, 4}}), &ctx);
    join.InputDone(0, &ctx);
    join.InputDone(1, &ctx);
    EXPECT_EQ(ctx.out.num_tuples(), 0u);
  }
}

TEST(SortMergeJoinTest, ChargesSortCost) {
  SortMergeJoinOp join(KvSpec());
  RecordingContext ctx(join.output_schema());
  std::vector<std::pair<int32_t, int32_t>> rows;
  for (int32_t i = 0; i < 1024; ++i) rows.push_back({i, i});
  join.Consume(0, Rows(rows), &ctx);
  join.Consume(1, Rows(rows), &ctx);
  Ticks before_merge = ctx.charged;
  join.InputDone(0, &ctx);
  join.InputDone(1, &ctx);
  // Sorting 2x1024 keys at ~n log2 n comparisons dominates the charges.
  EXPECT_GT(ctx.charged - before_merge, 2 * 1024 * 9);
  EXPECT_EQ(ctx.out.num_tuples(), 1024u);
}

TEST(SortMergeJoinTest, MemoryTrackedAndReleased) {
  SortMergeJoinOp join(KvSpec());
  RecordingContext ctx(join.output_schema());
  join.Consume(0, Rows({{1, 1}, {2, 2}}), &ctx);
  EXPECT_GT(join.memory_bytes(), 0u);
  join.InputDone(0, &ctx);
  join.InputDone(1, &ctx);
  join.ReleaseMemory();
  EXPECT_EQ(join.memory_bytes(), 0u);
  EXPECT_GT(join.peak_memory_bytes(), 0u);
}

TEST(SortMergeJoinTest, SpWithSortMergeMatchesReference) {
  constexpr int kRelations = 6;
  constexpr uint32_t kCardinality = 400;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, 61);
  for (QueryShape shape : kAllShapes) {
    auto query = MakeWisconsinChainQuery(shape, kRelations, kCardinality);
    ASSERT_TRUE(query.ok());
    auto reference = ReferenceSummary(*query, db);
    ASSERT_TRUE(reference.ok());

    SequentialParallelStrategy strategy(XraOpKind::kSortMergeJoin);
    auto plan = strategy.Parallelize(*query, 8, TotalCostModel());
    ASSERT_TRUE(plan.ok()) << plan.status();
    ASSERT_TRUE(plan->Validate().ok());

    SimExecutor sim(&db);
    auto run = sim.Execute(*plan, SimExecOptions());
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->result, *reference) << ShapeName(shape);

    ThreadExecutor threads(&db);
    auto wall = threads.Execute(*plan, ThreadExecOptions());
    ASSERT_TRUE(wall.ok()) << wall.status();
    EXPECT_EQ(wall->result, *reference) << ShapeName(shape);
  }
}

TEST(SortMergeJoinTest, TextRoundTripPreservesSortMergePlans) {
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 4, 100);
  ASSERT_TRUE(query.ok());
  SequentialParallelStrategy strategy(XraOpKind::kSortMergeJoin);
  auto plan = strategy.Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  std::string text = SerializePlan(*plan);
  EXPECT_NE(text.find("sort-merge-join"), std::string::npos);
  auto parsed = ParsePlan(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializePlan(*parsed), text);
}

}  // namespace
}  // namespace mjoin
