#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "opt/general_query.h"
#include "opt/optimizer.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// Builds a Database from a generated instance.
Database ToDatabase(GeneralQueryInstance* instance) {
  Database db;
  for (size_t i = 0; i < instance->data.size(); ++i) {
    MJOIN_CHECK_OK(db.Add(instance->spec.relations()[i].name,
                          std::move(instance->data[i])));
  }
  instance->data.clear();
  return db;
}

TEST(GeneralQueryTest, SpecValidation) {
  GeneralQuerySpec spec;
  auto schema = std::make_shared<const Schema>(
      Schema({Column::Int32("pk"), Column::FixedString("s", 4)}));
  int a = spec.AddRelation("a", 100, schema);
  int b = spec.AddRelation("b", 100, schema);
  EXPECT_FALSE(spec.AddEquiJoin(a, 0, a, 0).ok());   // self join
  EXPECT_FALSE(spec.AddEquiJoin(a, 1, b, 0).ok());   // string column
  EXPECT_FALSE(spec.AddEquiJoin(a, 9, b, 0).ok());   // bad column
  EXPECT_TRUE(spec.AddEquiJoin(a, 0, b, 0).ok());
}

TEST(GeneralQueryTest, SnowflakeGeneratorShapes) {
  auto instance = MakeRandomSnowflakeQuery(8, 200, /*seed=*/5);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->spec.relations().size(), 8u);
  EXPECT_EQ(instance->spec.predicates().size(), 7u);  // tree-shaped
  EXPECT_EQ(instance->data.size(), 8u);
  // The hub has no fk column; every other relation has one.
  EXPECT_EQ(instance->spec.relations()[0].schema->num_columns(), 3u);
  for (size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(instance->spec.relations()[i].schema->num_columns(), 4u);
  }
  JoinGraph graph = instance->spec.ToJoinGraph();
  EXPECT_TRUE(graph.IsConnected());
}

TEST(GeneralQueryTest, BindRejectsCartesianTrees) {
  GeneralQuerySpec spec;
  auto schema =
      std::make_shared<const Schema>(Schema({Column::Int32("pk")}));
  spec.AddRelation("a", 10, schema);
  spec.AddRelation("b", 10, schema);
  spec.AddRelation("c", 10, schema);
  ASSERT_TRUE(spec.AddEquiJoin(0, 0, 1, 0).ok());
  ASSERT_TRUE(spec.AddEquiJoin(1, 0, 2, 0).ok());
  // Tree joining a with c first: no predicate connects {a} and {c}.
  JoinTree tree;
  int a = tree.AddLeaf("a", 10);
  int c = tree.AddLeaf("c", 10);
  int ac = tree.AddJoin(a, c, 10);
  int b = tree.AddLeaf("b", 10);
  tree.AddJoin(ac, b, 10);
  EXPECT_EQ(spec.BindTree(tree).status().code(),
            StatusCode::kInvalidArgument);
}

// End-to-end property: for random snowflake queries, the phase-1 optimizer
// tree executes correctly under every strategy, on both backends.
class SnowflakeEndToEnd : public testing::TestWithParam<uint64_t> {};

TEST_P(SnowflakeEndToEnd, OptimizedTreeExecutesCorrectly) {
  auto instance = MakeRandomSnowflakeQuery(7, 150, GetParam());
  ASSERT_TRUE(instance.ok());
  GeneralQuerySpec spec = instance->spec;
  Database db = ToDatabase(&*instance);

  // Phase 1.
  TotalCostModel cost_model;
  auto tree = OptimizeJoinOrder(spec.ToJoinGraph(), cost_model);
  ASSERT_TRUE(tree.ok()) << tree.status();

  // Bind and compute the oracle answer.
  auto query = spec.BindTree(*tree);
  ASSERT_TRUE(query.ok()) << query.status();
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Phase 2 on both backends.
  SimExecutor sim(&db);
  ThreadExecutor threads(&db);
  for (StrategyKind kind : kAllStrategies) {
    auto plan = MakeStrategy(kind)->Parallelize(*query, 12, cost_model);
    ASSERT_TRUE(plan.ok()) << StrategyName(kind) << ": " << plan.status();
    auto sim_run = sim.Execute(*plan, SimExecOptions());
    ASSERT_TRUE(sim_run.ok()) << sim_run.status();
    EXPECT_EQ(sim_run->result, *reference) << StrategyName(kind);

    auto thread_run = threads.Execute(*plan, ThreadExecOptions());
    ASSERT_TRUE(thread_run.ok()) << thread_run.status();
    EXPECT_EQ(thread_run->result, *reference) << StrategyName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnowflakeEndToEnd,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(GeneralQueryTest, ProvenanceSurvivesDeepTrees) {
  // A pure chain: a - b - c - d via distinct fk columns; bind a bushy tree
  // over it and check the schema width is the concat of all four.
  auto instance = MakeRandomSnowflakeQuery(4, 100, /*seed=*/42);
  ASSERT_TRUE(instance.ok());
  GeneralQuerySpec spec = instance->spec;
  auto tree = OptimizeJoinOrder(spec.ToJoinGraph(), TotalCostModel());
  ASSERT_TRUE(tree.ok());
  auto query = spec.BindTree(*tree);
  ASSERT_TRUE(query.ok());
  auto analysis = AnalyzeQuery(*query);
  ASSERT_TRUE(analysis.ok());
  size_t total_columns = 0;
  for (const GeneralRelation& rel : spec.relations()) {
    total_columns += rel.schema->num_columns();
  }
  EXPECT_EQ(analysis->node_schema[static_cast<size_t>(query->tree.root())]
                ->num_columns(),
            total_columns);
}

}  // namespace
}  // namespace mjoin
