#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

/// Property sweeps over the execution knobs that must never change the
/// result multiset: batch size, processor count, network latency, problem
/// size, and strategy. Every cell re-executes a query and compares the
/// order-insensitive digest with the reference executor.

// --- batch size ---------------------------------------------------------------

class BatchSizeProperty : public testing::TestWithParam<uint32_t> {};

TEST_P(BatchSizeProperty, ResultIndependentOfBatchSize) {
  constexpr int kRelations = 5;
  constexpr uint32_t kCardinality = 500;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, 101);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightOrientedBushy,
                                       kRelations, kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());

  SimExecutor executor(&db);
  for (StrategyKind kind : {StrategyKind::kFP, StrategyKind::kRD}) {
    auto plan = MakeStrategy(kind)->Parallelize(*query, 8, TotalCostModel());
    ASSERT_TRUE(plan.ok());
    SimExecOptions options;
    options.costs.batch_size = GetParam();
    auto run = executor.Execute(*plan, options);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->result, *reference)
        << StrategyName(kind) << " batch=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeProperty,
                         testing::Values(1u, 3u, 16u, 64u, 1000u));

// --- processor count -------------------------------------------------------------

class ProcessorCountProperty : public testing::TestWithParam<uint32_t> {};

TEST_P(ProcessorCountProperty, EveryStrategyCorrectAtEveryP) {
  constexpr int kRelations = 6;
  constexpr uint32_t kCardinality = 400;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, 103);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftOrientedBushy,
                                       kRelations, kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());

  SimExecutor executor(&db);
  for (StrategyKind kind : kAllStrategies) {
    auto plan = MakeStrategy(kind)->Parallelize(*query, GetParam(),
                                                TotalCostModel());
    if (!plan.ok()) continue;  // FP needs P >= #joins
    auto run = executor.Execute(*plan, SimExecOptions());
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->result, *reference)
        << StrategyName(kind) << " P=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Processors, ProcessorCountProperty,
                         testing::Values(1u, 2u, 5u, 7u, 13u, 32u, 61u));

// --- network latency & overhead knobs --------------------------------------------

class LatencyProperty : public testing::TestWithParam<Ticks> {};

TEST_P(LatencyProperty, TimingKnobsNeverChangeResults) {
  constexpr int kRelations = 4;
  constexpr uint32_t kCardinality = 300;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, 107);
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, kRelations,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());
  SimExecutor executor(&db);
  for (StrategyKind kind : kAllStrategies) {
    auto plan = MakeStrategy(kind)->Parallelize(*query, 6, TotalCostModel());
    ASSERT_TRUE(plan.ok());
    SimExecOptions options;
    options.costs.network_latency = GetParam();
    options.costs.trigger_latency = GetParam();
    options.costs.process_startup = GetParam() / 2;
    auto run = executor.Execute(*plan, options);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->result, *reference) << StrategyName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Latencies, LatencyProperty,
                         testing::Values<Ticks>(0, 1, 100, 5000));

// --- problem size ------------------------------------------------------------------

class CardinalityProperty : public testing::TestWithParam<uint32_t> {};

TEST_P(CardinalityProperty, ChainInvariantHoldsAtEverySize) {
  constexpr int kRelations = 7;
  uint32_t cardinality = GetParam();
  Database db = MakeWisconsinDatabase(kRelations, cardinality, 109);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear, kRelations,
                                       cardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());
  // The regular query's defining property.
  EXPECT_EQ(reference->cardinality, cardinality);

  SimExecutor executor(&db);
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, 12, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  auto run = executor.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result, *reference);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CardinalityProperty,
                         testing::Values(1u, 2u, 17u, 256u, 2048u));

// --- monotone work law --------------------------------------------------------------

TEST(ScalingProperty, ResponseGrowsWithProblemSize) {
  constexpr int kRelations = 6;
  SimExecutor* executor = nullptr;
  Ticks previous = 0;
  for (uint32_t cardinality : {500u, 2000u, 8000u}) {
    Database db = MakeWisconsinDatabase(kRelations, cardinality, 113);
    auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, kRelations,
                                         cardinality);
    ASSERT_TRUE(query.ok());
    auto plan = MakeStrategy(StrategyKind::kSE)
                    ->Parallelize(*query, 12, TotalCostModel());
    ASSERT_TRUE(plan.ok());
    SimExecutor local(&db);
    executor = &local;
    auto run = executor->Execute(*plan, SimExecOptions());
    ASSERT_TRUE(run.ok());
    EXPECT_GT(run->response_ticks, previous);
    previous = run->response_ticks;
  }
}

// --- seed sensitivity ---------------------------------------------------------------

TEST(SeedProperty, DifferentSeedsDifferentDataSameCardinality) {
  constexpr int kRelations = 4;
  constexpr uint32_t kCardinality = 200;
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, kRelations,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  ResultSummary first;
  for (uint64_t seed : {1u, 2u, 3u}) {
    Database db = MakeWisconsinDatabase(kRelations, kCardinality, seed);
    auto reference = ReferenceSummary(*query, db);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(reference->cardinality, kCardinality);
    if (seed == 1u) {
      first = *reference;
    } else {
      EXPECT_NE(reference->checksum, first.checksum);
    }
  }
}

}  // namespace
}  // namespace mjoin
