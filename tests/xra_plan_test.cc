#include <gtest/gtest.h>

#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"
#include "xra/plan.h"

namespace mjoin {
namespace {

// Builds a known-good plan to mutate in the negative tests.
ParallelPlan GoodPlan() {
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, 4, 100);
  MJOIN_CHECK(query.ok());
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, 8, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  return *std::move(plan);
}

int FirstJoinOp(const ParallelPlan& plan) {
  for (const XraOp& op : plan.ops) {
    if (op.is_join()) return op.id;
  }
  return -1;
}

TEST(XraPlanTest, GoodPlanValidates) {
  ParallelPlan plan = GoodPlan();
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_GT(plan.CountProcesses(), 0u);
}

TEST(XraPlanTest, KindAndMilestoneNames) {
  EXPECT_EQ(XraOpKindName(XraOpKind::kScan), "scan");
  EXPECT_EQ(XraOpKindName(XraOpKind::kRescan), "rescan");
  EXPECT_EQ(XraOpKindName(XraOpKind::kSimpleHashJoin), "simple-hash-join");
  EXPECT_EQ(XraOpKindName(XraOpKind::kPipeliningHashJoin),
            "pipelining-hash-join");
  EXPECT_EQ(MilestoneName(Milestone::kComplete), "complete");
  EXPECT_EQ(MilestoneName(Milestone::kBuildDone), "build-done");
}

TEST(XraPlanTest, RejectsEmptyProcessorList) {
  ParallelPlan plan = GoodPlan();
  plan.ops[0].processors.clear();
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(XraPlanTest, RejectsProcessorOutOfRange) {
  ParallelPlan plan = GoodPlan();
  plan.ops[0].processors[0] = plan.num_processors + 5;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(XraPlanTest, RejectsDuplicateProcessorWithinOp) {
  ParallelPlan plan = GoodPlan();
  int join = FirstJoinOp(plan);
  auto& procs = plan.ops[static_cast<size_t>(join)].processors;
  if (procs.size() >= 2) {
    procs[1] = procs[0];
    EXPECT_FALSE(plan.Validate().ok());
  }
}

TEST(XraPlanTest, RejectsWrongSplitKey) {
  ParallelPlan plan = GoodPlan();
  // Find a hash-split edge and corrupt its split key.
  for (XraOp& op : plan.ops) {
    if (!op.is_join()) continue;
    for (int port = 0; port < 2; ++port) {
      if (op.inputs[port].routing == Routing::kHashSplit) {
        op.inputs[port].split_key += 1;
        EXPECT_FALSE(plan.Validate().ok());
        return;
      }
    }
  }
  GTEST_SKIP() << "plan has no hash-split edge";
}

TEST(XraPlanTest, RejectsColocatedEdgeWithDifferentProcessors) {
  ParallelPlan plan = GoodPlan();
  for (XraOp& op : plan.ops) {
    if (op.kind == XraOpKind::kScan) {
      // Shift the scan off its consumer's processors.
      std::swap(op.processors.front(), op.processors.back());
      if (op.processors !=
          plan.ops[static_cast<size_t>(op.consumer)].processors) {
        EXPECT_FALSE(plan.Validate().ok());
        return;
      }
    }
  }
  GTEST_SKIP() << "could not perturb any colocated edge";
}

TEST(XraPlanTest, RejectsTwoOutputs) {
  ParallelPlan plan = GoodPlan();
  for (XraOp& op : plan.ops) {
    if (op.consumer >= 0) {
      op.store_result = plan.num_results;  // now has stream AND store
      plan.num_results += 1;
      EXPECT_FALSE(plan.Validate().ok());
      return;
    }
  }
}

// --- Forward-edge validation -------------------------------------------------
// Executors index consumer instance arrays straight along the forward
// pointers (op.consumer / op.consumer_port), so a malformed plan used to
// index out of bounds at run time. These must now die at Validate().

TEST(XraPlanTest, RejectsConsumerOutOfRange) {
  ParallelPlan plan = GoodPlan();
  for (XraOp& op : plan.ops) {
    if (op.consumer >= 0) {
      op.consumer = static_cast<int>(plan.ops.size()) + 3;
      EXPECT_FALSE(plan.Validate().ok());
      return;
    }
  }
  FAIL() << "plan has no streaming edge";
}

TEST(XraPlanTest, RejectsSelfLoopConsumer) {
  ParallelPlan plan = GoodPlan();
  for (XraOp& op : plan.ops) {
    if (op.consumer >= 0) {
      op.consumer = op.id;
      EXPECT_FALSE(plan.Validate().ok());
      return;
    }
  }
  FAIL() << "plan has no streaming edge";
}

TEST(XraPlanTest, RejectsConsumerPortOutOfRange) {
  ParallelPlan plan = GoodPlan();
  for (XraOp& op : plan.ops) {
    if (op.consumer >= 0) {
      op.consumer_port = 7;  // joins have 2 ports, unary ops 1
      EXPECT_FALSE(plan.Validate().ok());
      return;
    }
  }
  FAIL() << "plan has no streaming edge";
}

TEST(XraPlanTest, RejectsForwardBackPointerMismatch) {
  ParallelPlan plan = GoodPlan();
  // Point a producer at a consumer port whose back pointer names a
  // different producer: the forward and backward edges disagree.
  for (XraOp& op : plan.ops) {
    if (op.consumer < 0) continue;
    XraOp& consumer = plan.ops[static_cast<size_t>(op.consumer)];
    for (int port = 0; port < 2; ++port) {
      if (port != op.consumer_port &&
          consumer.inputs[static_cast<size_t>(port)].producer != op.id) {
        op.consumer_port = port;
        EXPECT_FALSE(plan.Validate().ok());
        return;
      }
    }
  }
  GTEST_SKIP() << "could not perturb any edge without keeping it consistent";
}

TEST(XraPlanTest, RejectsMissingFinalResult) {
  ParallelPlan plan = GoodPlan();
  plan.final_result = 17;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(XraPlanTest, RejectsOpInTwoGroups) {
  ParallelPlan plan = GoodPlan();
  plan.groups[0].ops.push_back(plan.groups[0].ops[0]);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(XraPlanTest, RejectsDepsOnGroupZero) {
  ParallelPlan plan = GoodPlan();
  plan.groups[0].deps.push_back({0, Milestone::kComplete});
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(XraPlanTest, RejectsBuildDoneOnPipeliningJoin) {
  ParallelPlan plan = GoodPlan();
  int join = FirstJoinOp(plan);  // FP: pipelining join
  plan.groups.push_back(TriggerGroup{{{join, Milestone::kBuildDone}}, {}});
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(XraPlanTest, RejectsConcurrentJoinsSharingProcessor) {
  ParallelPlan plan = GoodPlan();
  // Make two FP joins (same trigger group) overlap on one processor.
  int first = -1, second = -1;
  for (const XraOp& op : plan.ops) {
    if (op.is_join()) {
      if (first < 0) {
        first = op.id;
      } else {
        second = op.id;
        break;
      }
    }
  }
  ASSERT_GE(second, 0);
  plan.ops[static_cast<size_t>(second)].processors[0] =
      plan.ops[static_cast<size_t>(first)].processors[0];
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(XraPlanTest, CountStreamsIgnoresColocatedEdges) {
  ParallelPlan plan = GoodPlan();
  uint64_t streams = plan.CountStreams();
  // FP on 4 relations: 2 internal pipelined edges only (scans colocated).
  uint64_t expected = 0;
  for (const XraOp& op : plan.ops) {
    if (op.is_join() && op.consumer >= 0) {
      expected += op.processors.size() *
                  plan.ops[static_cast<size_t>(op.consumer)].processors.size();
    }
  }
  EXPECT_EQ(streams, expected);
  EXPECT_GT(streams, 0u);
}

TEST(XraPlanTest, ToStringMentionsStrategyAndOps) {
  ParallelPlan plan = GoodPlan();
  std::string text = plan.ToString();
  EXPECT_NE(text.find("FP"), std::string::npos);
  EXPECT_NE(text.find("pipelining-hash-join"), std::string::npos);
  EXPECT_NE(text.find("group 0"), std::string::npos);
}

}  // namespace
}  // namespace mjoin
