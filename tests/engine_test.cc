#include <gtest/gtest.h>

#include "engine/controller.h"
#include "engine/database.h"
#include "engine/experiment.h"
#include "engine/reference.h"
#include "engine/result.h"
#include "engine/sim_executor.h"
#include "storage/partitioner.h"
#include "plan/wisconsin_query.h"
#include "storage/wisconsin.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// --- Database -----------------------------------------------------------------

TEST(DatabaseTest, AddGetAndDuplicates) {
  Database db;
  ASSERT_TRUE(db.Add("r", GenerateWisconsin(10, 1)).ok());
  EXPECT_EQ(db.Add("r", GenerateWisconsin(10, 2)).code(),
            StatusCode::kAlreadyExists);
  auto rel = db.Get("r");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->num_tuples(), 10u);
  EXPECT_EQ(db.Get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(db.Contains("r"));
  EXPECT_EQ(db.size(), 1u);
}

TEST(DatabaseTest, WisconsinDatabaseHasIndependentRelations) {
  Database db = MakeWisconsinDatabase(3, 100, 5);
  EXPECT_EQ(db.size(), 3u);
  auto r0 = db.Get("rel0");
  auto r1 = db.Get("rel1");
  ASSERT_TRUE(r0.ok() && r1.ok());
  bool differs = false;
  for (size_t i = 0; i < 100; ++i) {
    differs |= (*r0)->tuple(i).GetInt32(kUnique1) !=
               (*r1)->tuple(i).GetInt32(kUnique1);
  }
  EXPECT_TRUE(differs);
  EXPECT_EQ(db.TotalBytes(), 3u * 100u * 208u);
}

// --- ResultSummary -------------------------------------------------------------

TEST(ResultTest, ChecksumIsOrderInsensitive) {
  Relation rel = GenerateWisconsin(100, 3);
  // Partition and summarize fragments vs the whole relation.
  auto parts = HashPartition(rel, kUnique1, 7);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(SummarizeRelation(rel), SummarizeFragments(*parts));
}

TEST(ResultTest, ChecksumDetectsContentChanges) {
  Relation a = GenerateWisconsin(100, 3);
  Relation b = GenerateWisconsin(100, 4);
  EXPECT_FALSE(SummarizeRelation(a) == SummarizeRelation(b));
  EXPECT_EQ(SummarizeRelation(a).cardinality, 100u);
}

TEST(ResultTest, HashRowBytesSensitiveToEveryByte) {
  std::vector<std::byte> row(16, std::byte{0});
  uint64_t base = HashRowBytes(row.data(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    std::vector<std::byte> tweaked = row;
    tweaked[i] = std::byte{1};
    EXPECT_NE(HashRowBytes(tweaked.data(), tweaked.size()), base)
        << "byte " << i;
  }
}

// --- QueryController ------------------------------------------------------------

ParallelPlan TwoGroupPlan() {
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 3, 50);
  MJOIN_CHECK(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 4, TotalCostModel());
  MJOIN_CHECK(plan.ok());
  return *std::move(plan);
}

TEST(ControllerTest, GroupsFireWhenDepsComplete) {
  ParallelPlan plan = TwoGroupPlan();
  QueryController controller(&plan);
  std::vector<int> initial = controller.TakeInitialGroups();
  ASSERT_FALSE(initial.empty());
  EXPECT_EQ(initial[0], 0);
  // Initial groups are only reported once.
  EXPECT_TRUE(controller.TakeInitialGroups().empty());
  EXPECT_FALSE(controller.AllOpsComplete());

  // Completing all instances of all ops fires every group exactly once and
  // ends the query.
  std::set<int> fired(initial.begin(), initial.end());
  for (const XraOp& op : plan.ops) {
    for (uint32_t i = 0; i < op.processors.size(); ++i) {
      if (op.kind == XraOpKind::kSimpleHashJoin) {
        for (int g :
             controller.OnInstanceMilestone(op.id, i, Milestone::kBuildDone)) {
          EXPECT_TRUE(fired.insert(g).second);
        }
      }
      for (int g :
           controller.OnInstanceMilestone(op.id, i, Milestone::kComplete)) {
        EXPECT_TRUE(fired.insert(g).second);
      }
    }
  }
  EXPECT_TRUE(controller.AllOpsComplete());
  EXPECT_EQ(fired.size(), plan.groups.size());
}

TEST(ControllerTest, OpMilestoneNeedsAllInstances) {
  ParallelPlan plan = TwoGroupPlan();
  QueryController controller(&plan);
  controller.TakeInitialGroups();
  int op = plan.groups[0].ops[0];
  uint32_t instances =
      static_cast<uint32_t>(plan.ops[static_cast<size_t>(op)].processors.size());
  ASSERT_GT(instances, 1u);
  for (uint32_t i = 0; i + 1 < instances; ++i) {
    controller.OnInstanceMilestone(op, i, Milestone::kComplete);
    EXPECT_FALSE(controller.OpMilestoneFired(op, Milestone::kComplete));
  }
  controller.OnInstanceMilestone(op, instances - 1, Milestone::kComplete);
  EXPECT_TRUE(controller.OpMilestoneFired(op, Milestone::kComplete));
}

// --- Reference executor -----------------------------------------------------------

TEST(ReferenceTest, ChainQueryIsOneToOne) {
  Database db = MakeWisconsinDatabase(4, 300, 9);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 4, 300);
  ASSERT_TRUE(query.ok());
  auto result = ExecuteReference(*query, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_tuples(), 300u);
  EXPECT_EQ(result->schema().tuple_size(), 208u);
}

TEST(ReferenceTest, ShapeChangesContentButNotCardinality) {
  Database db = MakeWisconsinDatabase(6, 200, 21);
  auto linear = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 6, 200);
  auto bushy = MakeWisconsinChainQuery(QueryShape::kWideBushy, 6, 200);
  ASSERT_TRUE(linear.ok() && bushy.ok());
  auto a = ReferenceSummary(*linear, db);
  auto b = ReferenceSummary(*bushy, db);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->cardinality, 200u);
  EXPECT_EQ(b->cardinality, 200u);
  // Different shapes project different operands: contents differ.
  EXPECT_NE(a->checksum, b->checksum);
}

// --- SimExecutor properties -----------------------------------------------------

TEST(SimExecutorTest, DeterministicAcrossRuns) {
  Database db = MakeWisconsinDatabase(5, 400, 33);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightOrientedBushy, 5,
                                       400);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, 8, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  SimExecutor executor(&db);
  auto run1 = executor.Execute(*plan, SimExecOptions());
  auto run2 = executor.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(run1.ok() && run2.ok());
  EXPECT_EQ(run1->response_ticks, run2->response_ticks);
  EXPECT_EQ(run1->result, run2->result);
  EXPECT_EQ(run1->events, run2->events);
}

TEST(SimExecutorTest, MaterializedResultMatchesReference) {
  Database db = MakeWisconsinDatabase(4, 250, 11);
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, 4, 250);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSE)
                  ->Parallelize(*query, 6, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  SimExecutor executor(&db);
  SimExecOptions options;
  options.materialize_result = true;
  auto run = executor.Execute(*plan, options);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->materialized.has_value());
  auto reference = ExecuteReference(*query, db);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(SummarizeRelation(*run->materialized),
            SummarizeRelation(*reference));
}

TEST(SimExecutorTest, TraceRecordsUtilization) {
  Database db = MakeWisconsinDatabase(3, 200, 13);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 3, 200);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  SimExecutor executor(&db);
  SimExecOptions options;
  options.record_trace = true;
  auto run = executor.Execute(*plan, options);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->utilization, 0.0);
  EXPECT_LE(run->utilization, 1.0);
  EXPECT_FALSE(run->utilization_diagram.empty());
}

TEST(SimExecutorTest, CountersMatchPlanShape) {
  Database db = MakeWisconsinDatabase(4, 100, 17);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 4, 100);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 5, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  SimExecutor executor(&db);
  auto run = executor.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(run.ok());
  // 3 joins x 5 processors = 15 join processes; streams from the plan.
  EXPECT_EQ(run->counters.processes_started, 15u);
  EXPECT_EQ(run->counters.streams_opened, plan->CountStreams());
  EXPECT_GT(run->counters.tuples_sent, 0u);
}

TEST(SimExecutorTest, MoreProcessorsReduceWorkDominatedResponse) {
  Database db = MakeWisconsinDatabase(6, 2000, 19);
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, 6, 2000);
  ASSERT_TRUE(query.ok());
  SimExecutor executor(&db);
  auto strategy = MakeStrategy(StrategyKind::kFP);
  auto p6 = strategy->Parallelize(*query, 6, TotalCostModel());
  auto p24 = strategy->Parallelize(*query, 24, TotalCostModel());
  ASSERT_TRUE(p6.ok() && p24.ok());
  auto slow = executor.Execute(*p6, SimExecOptions());
  auto fast = executor.Execute(*p24, SimExecOptions());
  ASSERT_TRUE(slow.ok() && fast.ok());
  EXPECT_LT(fast->response_ticks, slow->response_ticks);
}

TEST(SimExecutorTest, FpUsesMoreJoinMemoryThanRd) {
  // The paper (§5): "RD uses less memory than FP because only one
  // hash-table needs to be built."
  Database db = MakeWisconsinDatabase(6, 1000, 23);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear, 6, 1000);
  ASSERT_TRUE(query.ok());
  SimExecutor executor(&db);
  auto fp_plan = MakeStrategy(StrategyKind::kFP)
                     ->Parallelize(*query, 10, TotalCostModel());
  auto rd_plan = MakeStrategy(StrategyKind::kRD)
                     ->Parallelize(*query, 10, TotalCostModel());
  ASSERT_TRUE(fp_plan.ok() && rd_plan.ok());
  auto fp = executor.Execute(*fp_plan, SimExecOptions());
  auto rd = executor.Execute(*rd_plan, SimExecOptions());
  ASSERT_TRUE(fp.ok() && rd.ok());
  EXPECT_GT(fp->join_memory_bytes, rd->join_memory_bytes);
}

// --- Experiment harness -----------------------------------------------------------

TEST(ExperimentTest, SweepProducesAllPoints) {
  ExperimentConfig config;
  config.shape = QueryShape::kWideBushy;
  config.num_relations = 4;
  config.cardinality = 200;
  config.processors = {4, 8};
  config.verify = true;
  auto result = RunShapeExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->points.size(), 8u);  // 4 strategies x 2 P
  const ExperimentPoint* best = result->Best();
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(best->seconds.has_value());
  std::string table = result->ToTable();
  EXPECT_NE(table.find("SP [s]"), std::string::npos);
}

TEST(ExperimentTest, UnplaceableStrategyGetsEmptyCell) {
  ExperimentConfig config;
  config.shape = QueryShape::kLeftLinear;
  config.num_relations = 6;  // 5 joins
  config.cardinality = 100;
  config.processors = {3};  // FP needs >= 5
  config.strategies = {StrategyKind::kFP};
  config.verify = false;
  auto result = RunShapeExperiment(config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->points.size(), 1u);
  EXPECT_FALSE(result->points[0].seconds.has_value());
  EXPECT_EQ(result->Best(), nullptr);
}

TEST(ExperimentTest, PaperProcessorSweeps) {
  EXPECT_EQ(SmallExperimentProcessors().front(), 20u);
  EXPECT_EQ(LargeExperimentProcessors().front(), 30u);
  EXPECT_EQ(SmallExperimentProcessors().back(), 80u);
}

}  // namespace
}  // namespace mjoin
