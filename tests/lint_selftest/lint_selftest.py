#!/usr/bin/env python3
"""Self-test for tools/mjoin_lint.py.

Proves two properties the lint gate depends on:

  1. Each check actually catches its seeded violation — a lint whose
     regexes silently rot would otherwise keep reporting "clean" forever.
     Every fixtures/bad_*.cc file carries exactly the violations listed
     in EXPECTED below, and the lint must report each of them (matched by
     check name) and nothing else in that file.

  2. The real tree is clean: running the lint with its default scan root
     (src/) reports zero findings, so the gate in tools/ci.sh is a
     regression fence, not a wishlist.

Run directly or via ctest (registered as lint_selftest).
"""

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO_ROOT = HERE.parent.parent
LINT = REPO_ROOT / "tools" / "mjoin_lint.py"
FIXTURES = HERE / "fixtures"

# fixture file -> list of check names the lint must report there, one
# entry per expected finding.
EXPECTED = {
    "bad_switch.cc": ["switch-exhaustive", "switch-exhaustive"],
    "bad_frame_cases.cc": ["switch-exhaustive"],
    "bad_clock.cc": ["clock"],
    "bad_new.cc": ["new"],
    "bad_include.cc": ["include"],
    "bad_atomic.cc": ["atomic-order", "atomic-order"],
    "clean.cc": [],
}


def run_lint(args):
    proc = subprocess.run(
        [sys.executable, str(LINT)] + args,
        capture_output=True, text=True, cwd=REPO_ROOT)
    findings = []
    for line in proc.stdout.splitlines():
        # path:line: [check] message
        parts = line.split(": [", 1)
        if len(parts) == 2:
            findings.append((parts[0], parts[1].split("]", 1)[0]))
    return proc.returncode, findings


def main():
    failures = []

    # Property 1: each seeded violation is caught, with nothing spurious.
    for name, want_checks in sorted(EXPECTED.items()):
        fixture = FIXTURES / name
        code, findings = run_lint([str(fixture)])
        got_checks = sorted(check for _, check in findings)
        if got_checks != sorted(want_checks):
            failures.append(
                f"{name}: expected findings {sorted(want_checks)}, "
                f"lint reported {got_checks}")
        want_code = 1 if want_checks else 0
        if code != want_code:
            failures.append(
                f"{name}: expected exit {want_code}, got {code}")

    # Property 2: the real tree is clean under the default scan root.
    code, findings = run_lint([])
    if code != 0 or findings:
        failures.append(
            f"src/ tree not clean: exit {code}, "
            f"{len(findings)} finding(s): {findings[:5]}")

    if failures:
        for f in failures:
            print(f"lint_selftest FAIL: {f}")
        return 1
    print(f"lint_selftest OK: {len(EXPECTED)} fixtures + clean-tree run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
