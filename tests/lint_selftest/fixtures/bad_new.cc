// Seeded violation: a naked new with no lint:allow-new annotation. The
// annotated allocation below must NOT be reported, and the word "new" in
// this comment must not fire either. Never compiled — lint fixture only.

namespace mjoin {

int* FixtureAlloc() {
  return new int(7);  // the violation
}

int* FixtureAllocAllowed() {
  return new int(7);  // lint:allow-new fixture annotated site
}

}  // namespace mjoin
