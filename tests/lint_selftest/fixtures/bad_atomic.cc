// Seeded violation: std::atomic accesses that rely on the implicit
// seq_cst default instead of naming their ordering. mjoin_lint must
// report both. Never compiled — lint fixture only.
#include "net/wire.h"

namespace mjoin {

void FixtureBadAtomics(std::atomic<int>* counter) {
  counter->load();
  counter->store(1);
}

}  // namespace mjoin
