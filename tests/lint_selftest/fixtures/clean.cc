// Control fixture: exercises every lint-adjacent pattern in its allowed
// form; mjoin_lint must report nothing here. Never compiled — lint
// fixture only.
#include "net/wire.h"

namespace mjoin {

const char* FixtureNameClean(FrameType type) {
  switch (type) {
    case FrameType::kHello:
    case FrameType::kPlan:
    case FrameType::kFragment:
    case FrameType::kTrigger:
    case FrameType::kData:
    case FrameType::kEos:
    case FrameType::kMilestone:
    case FrameType::kCredit:
    case FrameType::kFinish:
    case FrameType::kSummary:
    case FrameType::kResultRows:
    case FrameType::kOpStats:
    case FrameType::kNetStats:
    case FrameType::kTraceEvents:
    case FrameType::kError:
    case FrameType::kBye:
    case FrameType::kShutdown:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kSubmit:
    case FrameType::kQueryResult:
    case FrameType::kIdle:
    case FrameType::kSkewReport:
    case FrameType::kSkewDirective:
      break;
  }
  // A mention of steady_clock::now() in a comment, and of new/malloc,
  // must not fire: the lint scans code, not comments or strings.
  const char* s = "steady_clock::now() new malloc(";
  return s;
}

}  // namespace mjoin
