// Control fixture: exercises every lint-adjacent pattern in its allowed
// form; mjoin_lint must report nothing here. Never compiled — lint
// fixture only.
#include "net/wire.h"

namespace mjoin {

// The frames this handler routes are listed explicitly; everything the
// frame table says never arrives here comes from MJOIN_FRAME_CASES, which
// the lint expands from the table. Together they are exhaustive.
const char* FixtureNameClean(FrameType type) {
  switch (type) {
    case FrameType::kPlan:
    case FrameType::kFragment:
    case FrameType::kTrigger:
    case FrameType::kData:
    case FrameType::kEos:
    case FrameType::kFinish:
    case FrameType::kShutdown:
    case FrameType::kPing:
    case FrameType::kSkewDirective:
      return "handled";
    MJOIN_FRAME_CASES(NOT_CW)
      break;
  }
  // A mention of steady_clock::now() in a comment, and of new/malloc,
  // must not fire: the lint scans code, not comments or strings.
  const char* s = "steady_clock::now() new malloc(";
  return s;
}

void FixtureAtomicsClean(std::atomic<int>* counter) {
  // Explicit orders pass, including one named on a continuation line.
  counter->load(std::memory_order_acquire);
  int seen = 0;
  counter->compare_exchange_weak(seen, 1,
                                 std::memory_order_acq_rel,
                                 std::memory_order_acquire);
  counter->store(0);  // lint:allow-atomic fixture exercises the annotation
}

}  // namespace mjoin
