// Seeded violation: a quoted include that is not directory-qualified.
// Never compiled — lint fixture only.
#include "wire.h"

namespace mjoin {}
