// Seeded violation: a raw steady_clock read with no lint:allow-clock
// annotation. The annotated read below must NOT be reported. Never
// compiled — lint fixture only.
#include <chrono>

namespace mjoin {

int64_t FixtureNow() {
  auto t = std::chrono::steady_clock::now();  // the violation
  return t.time_since_epoch().count();
}

int64_t FixtureNowAllowed() {
  // lint:allow-clock fixture demonstrating an annotated site
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace mjoin
