// Seeded violation: a FrameType switch that is both non-exhaustive and
// hides the gap behind a default label. mjoin_lint must report the missing
// enumerators AND the default. Never compiled — lint fixture only.
#include "net/wire.h"

namespace mjoin {

const char* FixtureName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kData:
      return "data";
    default:
      return "other";
  }
}

}  // namespace mjoin
