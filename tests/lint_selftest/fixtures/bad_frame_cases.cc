// Seeded violation: a handler switch that leans on MJOIN_FRAME_CASES for
// its never-arrives arm but forgot to route kShutdown. The macro credits
// only the selector's classes, so the lint must still report the missing
// coordinator->worker member. Never compiled — lint fixture only.
#include "net/wire.h"

namespace mjoin {

const char* FixtureFrameCases(FrameType type) {
  switch (type) {
    case FrameType::kPlan:
    case FrameType::kFragment:
    case FrameType::kTrigger:
    case FrameType::kData:
    case FrameType::kEos:
    case FrameType::kFinish:
    case FrameType::kPing:
    case FrameType::kSkewDirective:
      return "handled";
    MJOIN_FRAME_CASES(NOT_CW)
      break;
  }
  return "bug: kShutdown unrouted";
}

}  // namespace mjoin
