#include <gtest/gtest.h>

#include <cstdlib>

#include <algorithm>

#include "engine/database.h"
#include "engine/process_executor.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "skew/defense.h"
#include "strategy/strategy.h"
#include "workload/workload.h"

namespace mjoin {
namespace {

// Conformance is part of the tier-1 contract for this suite: every frame
// either endpoint sends or receives is validated against the frame
// table's direction and phase rules, and a violation poisons the link.
// Armed before main() so every FrameChannel the suite constructs sees it.
const bool kConformanceArmed = [] {
  setenv("MJOIN_CONFORMANCE", "1", /*overwrite=*/0);
  return true;
}();

// Golden-result harness: every executor backend must agree with the
// single-threaded reference on the result row multiset — cardinality and
// order-independent checksum — for every strategy on every tree shape.
// This is the end-to-end guard for the zero-copy hot path: a row that is
// dropped, duplicated, routed to the wrong fragment, or assembled with a
// column off by one shifts the checksum.

struct Case {
  StrategyKind strategy;
  QueryShape shape;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string shape = ShapeName(info.param.shape);
  for (char& c : shape) {
    if (c == ' ') c = '_';
  }
  return StrategyName(info.param.strategy) + "_" + shape;
}

class GoldenResultTest : public testing::TestWithParam<Case> {};

TEST_P(GoldenResultTest, AllBackendsMatchReference) {
  constexpr int kRelations = 5;
  constexpr uint32_t kCardinality = 400;
  constexpr uint32_t kProcessors = 8;

  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/7);
  auto query =
      MakeWisconsinChainQuery(GetParam().shape, kRelations, kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());

  auto plan = MakeStrategy(GetParam().strategy)
                  ->Parallelize(*query, kProcessors, TotalCostModel());
  ASSERT_TRUE(plan.ok()) << plan.status();

  // Simulator backend.
  SimExecutor sim(&db);
  auto sim_run = sim.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(sim_run.ok()) << sim_run.status();
  EXPECT_EQ(sim_run->result.cardinality, reference->cardinality);
  EXPECT_EQ(sim_run->result.checksum, reference->checksum);

  // Thread backend, at several batch sizes: 1 exercises the flush-per-row
  // edge, 7 leaves ragged tails in every pending batch, 256 is the
  // default fast path where pooled buffers get reused in steady state.
  ThreadExecutor threads(&db);
  for (uint32_t batch_size : {1u, 7u, 256u}) {
    ThreadExecOptions options;
    options.batch_size = batch_size;
    auto run = threads.Execute(*plan, options);
    ASSERT_TRUE(run.ok()) << run.status() << " batch_size=" << batch_size;
    EXPECT_EQ(run->result.cardinality, reference->cardinality)
        << "batch_size=" << batch_size;
    EXPECT_EQ(run->result.checksum, reference->checksum)
        << "batch_size=" << batch_size;
  }

  // Process backend over both data planes, same batch sizes: every tuple
  // that crosses a worker boundary additionally round-trips the wire
  // format (socket plane) or the shm ring record format (shm plane), and
  // every plan round-trips the textual XRA handshake. 3 workers for 8
  // processors makes the processor->worker blocks ragged (3+3+2),
  // exercising both local and remote deliveries on every shape. The shm
  // runs use deliberately tiny rings (4 KiB) so batches fragment into many
  // records and the full/backlog/pad machinery runs on every shape — and
  // since ring data consumes no credits, a shm run must never stall on the
  // credit window.
  ProcessExecutor processes(&db);
  for (bool use_shm : {false, true}) {
    for (uint32_t batch_size : {1u, 7u, 256u}) {
      ProcessExecOptions options;
      options.exec.batch_size = batch_size;
      options.num_workers = 3;
      options.use_shm_data_plane = use_shm;
      if (use_shm) options.shm_ring_bytes = 4096;
      ProcessNetStats net;
      auto run = processes.Execute(*plan, options, nullptr, &net);
      ASSERT_TRUE(run.ok()) << run.status() << " batch_size=" << batch_size
                            << " shm=" << use_shm;
      EXPECT_EQ(run->exec.result.cardinality, reference->cardinality)
          << "batch_size=" << batch_size << " shm=" << use_shm;
      EXPECT_EQ(run->exec.result.checksum, reference->checksum)
          << "batch_size=" << batch_size << " shm=" << use_shm;
      if (use_shm) {
        EXPECT_EQ(net.credit_stalls, 0u)
            << "shm data must not consume socket credits (batch_size="
            << batch_size << ")";
        EXPECT_EQ(net.data_frames_routed, 0u)
            << "shm run still relayed data over the coordinator socket";
      }
    }
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      cases.push_back({strategy, shape});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategiesAllShapes, GoldenResultTest,
                         testing::ValuesIn(AllCases()), CaseName);

// Adversarial-workload golden harness: skewed, filtered, and m:n data
// across every strategy, with the skew defense off, on, and auto — the
// defense may move rows and prune sends, but the result multiset must be
// bit-identical across every backend and both process data planes.

struct WorkloadCase {
  StrategyKind strategy;
  const char* preset;
};

std::string WorkloadCaseName(
    const testing::TestParamInfo<WorkloadCase>& info) {
  std::string preset = info.param.preset;
  for (char& c : preset) {
    if (c == '-') c = '_';
  }
  return StrategyName(info.param.strategy) + "_" + preset;
}

class WorkloadGoldenResultTest
    : public testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadGoldenResultTest, DefenseOnMatchesDefenseOffEverywhere) {
  auto spec = WorkloadPreset(GetParam().preset);
  ASSERT_TRUE(spec.ok());
  // Test-sized: keeps the skewed chains' outputs small while the hot key
  // still clears the lowered min_hot_count below.
  spec->cardinality = std::min(spec->cardinality, 600u);
  auto db = MakeWorkloadDatabase(*spec);
  ASSERT_TRUE(db.ok());
  // Right-linear feeds every intermediate result into the next join's
  // probe slot over a hash-split edge — the exact edge the defense
  // reroutes and prunes — so defense-on runs here exercise the full
  // directive machinery, not just the no-defended-joins fast path.
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear,
                                       spec->num_relations,
                                       spec->cardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, *db);
  ASSERT_TRUE(reference.ok());

  auto plan = MakeStrategy(GetParam().strategy)
                  ->Parallelize(*query, 8, TotalCostModel());
  ASSERT_TRUE(plan.ok()) << plan.status();

  SimExecutor sim(&*db);
  auto sim_run = sim.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(sim_run.ok()) << sim_run.status();
  EXPECT_EQ(sim_run->result.cardinality, reference->cardinality);
  EXPECT_EQ(sim_run->result.checksum, reference->checksum);

  for (SkewDefenseMode mode :
       {SkewDefenseMode::kOff, SkewDefenseMode::kOn,
        SkewDefenseMode::kAuto}) {
    ThreadExecOptions options;
    options.skew_defense.mode = mode;
    // Test-sized thresholds: the presets' hot keys hold tens of rows, so
    // the defaults (tuned for bench-scale data) would never fire here.
    options.skew_defense.min_hot_count = 16;
    options.skew_defense.hot_fraction = 0.25;

    ThreadExecutor threads(&*db);
    auto thread_run = threads.Execute(*plan, options);
    ASSERT_TRUE(thread_run.ok())
        << thread_run.status() << " " << SkewDefenseModeName(mode);
    EXPECT_EQ(thread_run->result.cardinality, reference->cardinality)
        << SkewDefenseModeName(mode);
    EXPECT_EQ(thread_run->result.checksum, reference->checksum)
        << SkewDefenseModeName(mode);

    ProcessExecutor processes(&*db);
    for (bool use_shm : {false, true}) {
      ProcessExecOptions process_options;
      process_options.exec = options;
      process_options.num_workers = 3;
      process_options.use_shm_data_plane = use_shm;
      if (use_shm) process_options.shm_ring_bytes = 4096;
      auto run = processes.Execute(*plan, process_options);
      ASSERT_TRUE(run.ok()) << run.status() << " shm=" << use_shm << " "
                            << SkewDefenseModeName(mode);
      EXPECT_EQ(run->exec.result.cardinality, reference->cardinality)
          << "shm=" << use_shm << " " << SkewDefenseModeName(mode);
      EXPECT_EQ(run->exec.result.checksum, reference->checksum)
          << "shm=" << use_shm << " " << SkewDefenseModeName(mode);
    }
  }
}

std::vector<WorkloadCase> AllWorkloadCases() {
  std::vector<WorkloadCase> cases;
  for (StrategyKind strategy : kAllStrategies) {
    for (const char* preset : {"zipf1", "zipf1-mn", "filtered",
                               "adversarial"}) {
      cases.push_back({strategy, preset});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategiesAllWorkloads,
                         WorkloadGoldenResultTest,
                         testing::ValuesIn(AllWorkloadCases()),
                         WorkloadCaseName);

}  // namespace
}  // namespace mjoin
