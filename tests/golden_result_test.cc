#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/process_executor.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// Golden-result harness: every executor backend must agree with the
// single-threaded reference on the result row multiset — cardinality and
// order-independent checksum — for every strategy on every tree shape.
// This is the end-to-end guard for the zero-copy hot path: a row that is
// dropped, duplicated, routed to the wrong fragment, or assembled with a
// column off by one shifts the checksum.

struct Case {
  StrategyKind strategy;
  QueryShape shape;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string shape = ShapeName(info.param.shape);
  for (char& c : shape) {
    if (c == ' ') c = '_';
  }
  return StrategyName(info.param.strategy) + "_" + shape;
}

class GoldenResultTest : public testing::TestWithParam<Case> {};

TEST_P(GoldenResultTest, AllBackendsMatchReference) {
  constexpr int kRelations = 5;
  constexpr uint32_t kCardinality = 400;
  constexpr uint32_t kProcessors = 8;

  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/7);
  auto query =
      MakeWisconsinChainQuery(GetParam().shape, kRelations, kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());

  auto plan = MakeStrategy(GetParam().strategy)
                  ->Parallelize(*query, kProcessors, TotalCostModel());
  ASSERT_TRUE(plan.ok()) << plan.status();

  // Simulator backend.
  SimExecutor sim(&db);
  auto sim_run = sim.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(sim_run.ok()) << sim_run.status();
  EXPECT_EQ(sim_run->result.cardinality, reference->cardinality);
  EXPECT_EQ(sim_run->result.checksum, reference->checksum);

  // Thread backend, at several batch sizes: 1 exercises the flush-per-row
  // edge, 7 leaves ragged tails in every pending batch, 256 is the
  // default fast path where pooled buffers get reused in steady state.
  ThreadExecutor threads(&db);
  for (uint32_t batch_size : {1u, 7u, 256u}) {
    ThreadExecOptions options;
    options.batch_size = batch_size;
    auto run = threads.Execute(*plan, options);
    ASSERT_TRUE(run.ok()) << run.status() << " batch_size=" << batch_size;
    EXPECT_EQ(run->result.cardinality, reference->cardinality)
        << "batch_size=" << batch_size;
    EXPECT_EQ(run->result.checksum, reference->checksum)
        << "batch_size=" << batch_size;
  }

  // Process backend over both data planes, same batch sizes: every tuple
  // that crosses a worker boundary additionally round-trips the wire
  // format (socket plane) or the shm ring record format (shm plane), and
  // every plan round-trips the textual XRA handshake. 3 workers for 8
  // processors makes the processor->worker blocks ragged (3+3+2),
  // exercising both local and remote deliveries on every shape. The shm
  // runs use deliberately tiny rings (4 KiB) so batches fragment into many
  // records and the full/backlog/pad machinery runs on every shape — and
  // since ring data consumes no credits, a shm run must never stall on the
  // credit window.
  ProcessExecutor processes(&db);
  for (bool use_shm : {false, true}) {
    for (uint32_t batch_size : {1u, 7u, 256u}) {
      ProcessExecOptions options;
      options.exec.batch_size = batch_size;
      options.num_workers = 3;
      options.use_shm_data_plane = use_shm;
      if (use_shm) options.shm_ring_bytes = 4096;
      ProcessNetStats net;
      auto run = processes.Execute(*plan, options, nullptr, &net);
      ASSERT_TRUE(run.ok()) << run.status() << " batch_size=" << batch_size
                            << " shm=" << use_shm;
      EXPECT_EQ(run->exec.result.cardinality, reference->cardinality)
          << "batch_size=" << batch_size << " shm=" << use_shm;
      EXPECT_EQ(run->exec.result.checksum, reference->checksum)
          << "batch_size=" << batch_size << " shm=" << use_shm;
      if (use_shm) {
        EXPECT_EQ(net.credit_stalls, 0u)
            << "shm data must not consume socket credits (batch_size="
            << batch_size << ")";
        EXPECT_EQ(net.data_frames_routed, 0u)
            << "shm run still relayed data over the coordinator socket";
      }
    }
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      cases.push_back({strategy, shape});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategiesAllShapes, GoldenResultTest,
                         testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace mjoin
