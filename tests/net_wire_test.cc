#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <gtest/gtest.h>

#include "engine/process_protocol.h"
#include "net/channel.h"
#include "net/frame_conformance.h"
#include "net/net_fault.h"
#include "net/wire.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"
#include "xra/text.h"

namespace mjoin {
namespace {

// Wire-level guards for the process backend: the TupleBatch encoding must
// survive a round trip bit-for-bit, and every way the bytes can be damaged
// in transit — truncation, corruption, a stale schema id — must surface as
// a Status, never as a partial batch or out-of-bounds read.

ParallelPlan MakePlan(QueryShape shape = QueryShape::kLeftLinear) {
  auto query = MakeWisconsinChainQuery(shape, /*relations=*/5,
                                       /*cardinality=*/400);
  MJOIN_CHECK(query.ok()) << query.status();
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, /*processors=*/8, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  return *std::move(plan);
}

// Fills `batch` with `rows` distinct tuples so a shifted or dropped row
// changes the bytes.
void FillBatch(TupleBatch* batch, size_t rows) {
  const uint32_t tuple_size = batch->schema().tuple_size();
  std::vector<std::byte> row(tuple_size);
  for (size_t r = 0; r < rows; ++r) {
    for (uint32_t b = 0; b < tuple_size; ++b) {
      row[b] = static_cast<std::byte>((r * 131 + b * 7 + 13) & 0xff);
    }
    batch->AppendRow(row.data());
  }
}

TEST(BatchWireTest, RoundTripsAcrossRowCounts) {
  ParallelPlan plan = MakePlan();
  SchemaRegistry registry(plan);
  ASSERT_GT(registry.size(), 0u);

  for (uint32_t schema_id = 0; schema_id < registry.size(); ++schema_id) {
    for (size_t rows : {size_t{0}, size_t{1}, size_t{7}, size_t{256}}) {
      TupleBatch batch(registry.Get(schema_id));
      FillBatch(&batch, rows);

      std::vector<std::byte> wire;
      AppendBatchWire(batch, schema_id, &wire);
      EXPECT_EQ(wire.size(),
                BatchWireSize(batch.schema().tuple_size(), rows));

      WireReader reader(wire);
      TupleBatch decoded(registry.Get(0));  // rebound by ReadBatchWire
      ASSERT_TRUE(ReadBatchWire(&reader, registry, &decoded).ok())
          << "schema " << schema_id << " rows " << rows;
      EXPECT_TRUE(reader.exhausted());
      ASSERT_EQ(decoded.num_tuples(), rows);
      EXPECT_EQ(&decoded.schema(), registry.Get(schema_id).get());
      // raw_data() is null for an empty batch, and memcmp takes nonnull
      // arguments even for a zero length (UBSan enforces this).
      if (rows != 0) {
        EXPECT_EQ(std::memcmp(decoded.raw_data(), batch.raw_data(),
                              batch.byte_size()),
                  0);
      }
    }
  }
}

TEST(BatchWireTest, AppendRowsWireMatchesAppendBatchWire) {
  ParallelPlan plan = MakePlan();
  SchemaRegistry registry(plan);
  TupleBatch batch(registry.Get(0));
  FillBatch(&batch, 42);

  std::vector<std::byte> from_batch;
  AppendBatchWire(batch, /*schema_id=*/0, &from_batch);
  std::vector<std::byte> from_rows;
  AppendRowsWire(0, batch.schema().tuple_size(), batch.raw_data(),
                 batch.num_tuples(), &from_rows);
  EXPECT_EQ(from_batch, from_rows);
}

TEST(BatchWireTest, EveryTruncationFailsCleanly) {
  ParallelPlan plan = MakePlan();
  SchemaRegistry registry(plan);
  TupleBatch batch(registry.Get(0));
  FillBatch(&batch, 7);

  std::vector<std::byte> wire;
  AppendBatchWire(batch, 0, &wire);

  for (size_t len = 0; len < wire.size(); ++len) {
    WireReader reader(wire.data(), len);
    TupleBatch decoded(registry.Get(0));
    EXPECT_FALSE(ReadBatchWire(&reader, registry, &decoded).ok())
        << "truncated to " << len << " of " << wire.size() << " bytes";
  }
}

TEST(BatchWireTest, EverySingleByteCorruptionFailsCleanly) {
  ParallelPlan plan = MakePlan();
  SchemaRegistry registry(plan);
  TupleBatch batch(registry.Get(0));
  FillBatch(&batch, 3);

  std::vector<std::byte> wire;
  AppendBatchWire(batch, 0, &wire);

  // Flipping any bit anywhere — header, rows, or the CRC itself — must be
  // caught by the field validation or the checksum.
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    std::vector<std::byte> damaged = wire;
    damaged[pos] ^= std::byte{0x01};
    WireReader reader(damaged);
    TupleBatch decoded(registry.Get(0));
    Status status = ReadBatchWire(&reader, registry, &decoded);
    EXPECT_FALSE(status.ok()) << "corrupted byte " << pos << " undetected";
  }
}

TEST(BatchWireTest, RejectsUnknownSchemaId) {
  ParallelPlan plan = MakePlan();
  SchemaRegistry registry(plan);
  TupleBatch batch(registry.Get(0));
  FillBatch(&batch, 2);

  std::vector<std::byte> wire;
  AppendBatchWire(batch, static_cast<uint32_t>(registry.size()) + 5, &wire);
  WireReader reader(wire);
  TupleBatch decoded(registry.Get(0));
  EXPECT_FALSE(ReadBatchWire(&reader, registry, &decoded).ok());
}

TEST(SchemaRegistryTest, DeterministicAcrossBuildsAndEnds) {
  ParallelPlan plan = MakePlan();
  // Coordinator side: registry from the in-memory plan. Worker side:
  // registry from the plan as it arrives through the textual handshake.
  SchemaRegistry coordinator(plan);
  auto reparsed = ParsePlan(SerializePlan(plan));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  SchemaRegistry worker(*reparsed);

  ASSERT_EQ(coordinator.size(), worker.size());
  for (uint32_t id = 0; id < coordinator.size(); ++id) {
    EXPECT_EQ(coordinator.Get(id)->ToString(), worker.Get(id)->ToString())
        << "schema " << id << " diverged across the handshake";
    auto echo = worker.IdOf(*coordinator.Get(id));
    ASSERT_TRUE(echo.ok());
    EXPECT_EQ(*echo, id);
  }

  Schema foreign({Column::Int64("never_in_any_plan")});
  EXPECT_EQ(coordinator.IdOf(foreign).status().code(),
            StatusCode::kNotFound);
}

TEST(PlanHandshakeTest, SerializeParseSerializeIsAFixedPoint) {
  // The coordinator ships SerializePlan(plan) and checks the worker's
  // FnvHash64(SerializePlan(ParsePlan(text))) echo — so serialize->parse->
  // serialize must be byte-identical for every strategy and shape.
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      auto query = MakeWisconsinChainQuery(shape, 5, 400);
      ASSERT_TRUE(query.ok());
      auto plan =
          MakeStrategy(strategy)->Parallelize(*query, 8, TotalCostModel());
      ASSERT_TRUE(plan.ok()) << plan.status();

      std::string text = SerializePlan(*plan);
      auto parsed = ParsePlan(text);
      ASSERT_TRUE(parsed.ok())
          << parsed.status() << " strategy " << StrategyName(strategy);
      EXPECT_EQ(SerializePlan(*parsed), text);
      EXPECT_EQ(FnvHash64(SerializePlan(*parsed)), FnvHash64(text));
    }
  }
}

TEST(PlanEnvelopeTest, RoundTrips) {
  PlanEnvelope env;
  env.worker_id = 3;
  env.num_workers = 7;
  env.batch_size = 64;
  env.materialize_result = true;
  env.max_queued_batches = 12;
  env.memory_budget_bytes = 1 << 20;
  env.collect_metrics = false;
  env.record_trace = true;
  env.trace_origin_ns = 1234567890123;
  env.fault_scenario = "drop-batch op=2 after=5";
  env.plan_text = SerializePlan(MakePlan());
  env.use_shm_data_plane = true;
  env.shm_ring_bytes = 1u << 18;

  std::vector<std::byte> wire;
  EncodePlanEnvelope(env, &wire);
  WireReader reader(wire);
  PlanEnvelope decoded;
  ASSERT_TRUE(DecodePlanEnvelope(&reader, &decoded).ok());
  EXPECT_EQ(decoded.protocol_version, env.protocol_version);
  EXPECT_EQ(decoded.worker_id, env.worker_id);
  EXPECT_EQ(decoded.num_workers, env.num_workers);
  EXPECT_EQ(decoded.batch_size, env.batch_size);
  EXPECT_EQ(decoded.materialize_result, env.materialize_result);
  EXPECT_EQ(decoded.max_queued_batches, env.max_queued_batches);
  EXPECT_EQ(decoded.memory_budget_bytes, env.memory_budget_bytes);
  EXPECT_EQ(decoded.collect_metrics, env.collect_metrics);
  EXPECT_EQ(decoded.record_trace, env.record_trace);
  EXPECT_EQ(decoded.trace_origin_ns, env.trace_origin_ns);
  EXPECT_EQ(decoded.fault_scenario, env.fault_scenario);
  EXPECT_EQ(decoded.plan_text, env.plan_text);
  EXPECT_EQ(decoded.use_shm_data_plane, env.use_shm_data_plane);
  EXPECT_EQ(decoded.shm_ring_bytes, env.shm_ring_bytes);

  // A truncated envelope (e.g. from a frame cut short) errors cleanly.
  for (size_t len = 0; len < wire.size(); len += 13) {
    WireReader short_reader(wire.data(), len);
    PlanEnvelope ignored;
    EXPECT_FALSE(DecodePlanEnvelope(&short_reader, &ignored).ok())
        << "truncated to " << len;
  }
}

TEST(HelloTest, RoundTripsWithRingDirectoryHash) {
  HelloMsg msg;
  msg.protocol_version = kNetProtocolVersion;
  msg.plan_hash = 0x0123'4567'89ab'cdefull;
  msg.ring_directory_hash = 0xfeed'face'cafe'f00dull;

  std::vector<std::byte> wire;
  EncodeHello(msg, &wire);
  WireReader reader(wire);
  HelloMsg decoded;
  ASSERT_TRUE(DecodeHello(&reader, &decoded).ok());
  EXPECT_EQ(decoded.protocol_version, msg.protocol_version);
  EXPECT_EQ(decoded.plan_hash, msg.plan_hash);
  EXPECT_EQ(decoded.ring_directory_hash, msg.ring_directory_hash);

  for (size_t len = 0; len < wire.size(); ++len) {
    WireReader short_reader(wire.data(), len);
    HelloMsg ignored;
    EXPECT_FALSE(DecodeHello(&short_reader, &ignored).ok())
        << "truncated to " << len;
  }
}

TEST(WorkerRunStatsTest, RoundTripsIncludingShmCounters) {
  WorkerRunStats stats;
  stats.data_frames_sent = 11;
  stats.local_deliveries = 22;
  stats.batches_processed = 33;
  stats.pump_stalls = 44;
  stats.serialize_seconds = 0.125;
  stats.deserialize_seconds = 0.0625;
  stats.shm_records_sent = 55;
  stats.shm_records_received = 66;
  stats.shm_bytes_sent = 77777;
  stats.shm_bytes_received = 88888;
  stats.ring_full_stalls = 9;

  std::vector<std::byte> wire;
  EncodeWorkerRunStats(stats, &wire);
  WireReader reader(wire);
  WorkerRunStats decoded;
  ASSERT_TRUE(DecodeWorkerRunStats(&reader, &decoded).ok());
  EXPECT_EQ(decoded.data_frames_sent, stats.data_frames_sent);
  EXPECT_EQ(decoded.local_deliveries, stats.local_deliveries);
  EXPECT_EQ(decoded.batches_processed, stats.batches_processed);
  EXPECT_EQ(decoded.pump_stalls, stats.pump_stalls);
  EXPECT_EQ(decoded.serialize_seconds, stats.serialize_seconds);
  EXPECT_EQ(decoded.deserialize_seconds, stats.deserialize_seconds);
  EXPECT_EQ(decoded.shm_records_sent, stats.shm_records_sent);
  EXPECT_EQ(decoded.shm_records_received, stats.shm_records_received);
  EXPECT_EQ(decoded.shm_bytes_sent, stats.shm_bytes_sent);
  EXPECT_EQ(decoded.shm_bytes_received, stats.shm_bytes_received);
  EXPECT_EQ(decoded.ring_full_stalls, stats.ring_full_stalls);

  for (size_t len = 0; len < wire.size(); len += 7) {
    WireReader short_reader(wire.data(), len);
    WorkerRunStats ignored;
    EXPECT_FALSE(DecodeWorkerRunStats(&short_reader, &ignored).ok())
        << "truncated to " << len;
  }
}

TEST(StatusPayloadTest, RoundTripsCodeAndMessage) {
  for (Status status :
       {Status::Unavailable("worker 2 (pid 123) killed by signal 9"),
        Status::ResourceExhausted("memory budget exceeded"),
        Status::Internal("injected fault: operator 9 failed")}) {
    std::vector<std::byte> wire;
    EncodeStatusPayload(status, &wire);
    WireReader reader(wire);
    Status decoded = Status::OK();
    ASSERT_TRUE(DecodeStatusPayload(&reader, &decoded).ok());
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), status.message());
  }
}

TEST(HeartbeatTest, SerializeParseIsAFixedPoint) {
  for (uint32_t seq : {0u, 1u, 41u, 0xFFFFFFFFu}) {
    HeartbeatMsg ping;
    ping.seq = seq;
    std::vector<std::byte> wire;
    EncodeHeartbeat(ping, &wire);
    WireReader reader(wire);
    HeartbeatMsg decoded;
    ASSERT_TRUE(DecodeHeartbeat(&reader, &decoded).ok());
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(decoded.seq, seq);
    // Re-encoding the parse reproduces the bytes exactly.
    std::vector<std::byte> again;
    EncodeHeartbeat(decoded, &again);
    EXPECT_EQ(again, wire);
  }
}

TEST(HeartbeatTest, EveryTruncationFailsCleanly) {
  HeartbeatMsg ping;
  ping.seq = 12345;
  std::vector<std::byte> wire;
  EncodeHeartbeat(ping, &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    WireReader reader(wire.data(), len);
    HeartbeatMsg decoded;
    EXPECT_FALSE(DecodeHeartbeat(&reader, &decoded).ok())
        << "truncated to " << len << " of " << wire.size() << " bytes";
  }
}

TEST(HeartbeatTest, EverySingleByteCorruptionFailsCleanly) {
  // The payload carries its own checksum on top of the frame CRC, so the
  // codec alone detects a damaged sequence number or checksum.
  HeartbeatMsg ping;
  ping.seq = 0xA5A5A5A5;
  std::vector<std::byte> wire;
  EncodeHeartbeat(ping, &wire);
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    std::vector<std::byte> damaged = wire;
    damaged[pos] ^= std::byte{0x01};
    WireReader reader(damaged);
    HeartbeatMsg decoded;
    Status status = DecodeHeartbeat(&reader, &decoded);
    ASSERT_FALSE(status.ok()) << "corrupted byte " << pos << " undetected";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
}

TEST(FrameTypeTest, HeartbeatFramesHaveNames) {
  // FrameTypeName's switch is lint-enforced exhaustive; pin the two
  // supervision frames so a renumbering cannot swap them silently.
  EXPECT_STREQ(FrameTypeName(FrameType::kPing), "ping");
  EXPECT_STREQ(FrameTypeName(FrameType::kPong), "pong");
}

// --- FrameChannel: reassembly from arbitrary read() boundaries ------------

class FrameChannelTest : public testing::Test {
 protected:
  void SetUp() override {
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(SetNonBlocking(sv[0]).ok());
    channel_ = std::make_unique<FrameChannel>(sv[0], "test peer");
    raw_fd_ = sv[1];
  }

  void TearDown() override {
    if (raw_fd_ >= 0) close(raw_fd_);
  }

  // Writes `bytes` to the raw end in chunks of `chunk` bytes, calling
  // ReadAvailable after every chunk — simulating a stream that fragments
  // frames at every possible boundary.
  void DripFeed(const std::vector<std::byte>& bytes, size_t chunk) {
    for (size_t off = 0; off < bytes.size(); off += chunk) {
      size_t n = std::min(chunk, bytes.size() - off);
      ASSERT_EQ(write(raw_fd_, bytes.data() + off, n),
                static_cast<ssize_t>(n));
      bool peer_closed = false;
      ASSERT_TRUE(channel_->ReadAvailable(&peer_closed).ok());
      ASSERT_FALSE(peer_closed);
    }
  }

  // Hand-encodes the v2 frame envelope: [len][type][payload][crc] with the
  // CRC over type+payload. Must stay in sync with FrameChannel::QueueFrame
  // (the QueueAndFlush test below enforces that).
  static std::vector<std::byte> EncodeFrame(
      FrameType type, const std::vector<std::byte>& payload) {
    std::vector<std::byte> bytes;
    PutU32(&bytes, static_cast<uint32_t>(1 + payload.size() + 4));
    PutU8(&bytes, static_cast<uint8_t>(type));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    PutU32(&bytes, Crc32(bytes.data() + 4, bytes.size() - 4));
    return bytes;
  }

  std::unique_ptr<FrameChannel> channel_;
  int raw_fd_ = -1;
};

TEST_F(FrameChannelTest, ReassemblesFramesFromSingleByteReads) {
  std::vector<std::byte> payload;
  PutU64(&payload, 0xDEADBEEFCAFEF00Dull);
  PutString(&payload, "hello across the wire");
  std::vector<std::byte> bytes = EncodeFrame(FrameType::kData, payload);
  // Two back-to-back frames, dripped one byte at a time.
  std::vector<std::byte> stream = bytes;
  stream.insert(stream.end(), bytes.begin(), bytes.end());

  DripFeed(stream, 1);

  for (int i = 0; i < 2; ++i) {
    Frame frame;
    ASSERT_TRUE(channel_->NextFrame(&frame)) << "frame " << i;
    EXPECT_EQ(frame.type, FrameType::kData);
    EXPECT_EQ(frame.payload, payload);
  }
  Frame none;
  EXPECT_FALSE(channel_->NextFrame(&none));
  EXPECT_EQ(channel_->stats().frames_received, 2u);
}

TEST_F(FrameChannelTest, QueueAndFlushDeliversAcrossTheSocket) {
  std::vector<std::byte> payload;
  PutU32(&payload, 7);
  channel_->QueueFrame(FrameType::kCredit, payload);
  ASSERT_TRUE(channel_->Flush().ok());
  EXPECT_FALSE(channel_->has_pending_output());

  // Read the raw bytes off the far end and check the frame envelope.
  std::vector<std::byte> expected = EncodeFrame(FrameType::kCredit, payload);
  std::vector<std::byte> got(expected.size());
  ASSERT_EQ(read(raw_fd_, got.data(), got.size()),
            static_cast<ssize_t>(got.size()));
  EXPECT_EQ(got, expected);
  EXPECT_EQ(channel_->stats().frames_sent, 1u);
  EXPECT_EQ(channel_->stats().bytes_sent, expected.size());
}

TEST_F(FrameChannelTest, OversizedLengthPoisonsTheChannel) {
  std::vector<std::byte> bogus;
  PutU32(&bogus, kMaxFrameBytes + 1);
  ASSERT_EQ(write(raw_fd_, bogus.data(), bogus.size()),
            static_cast<ssize_t>(bogus.size()));
  bool peer_closed = false;
  Status status = channel_->ReadAvailable(&peer_closed);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(FrameChannelTest, UndersizedLengthPoisonsTheChannel) {
  // A frame length below 5 cannot hold the type byte plus the CRC: only a
  // damaged length field produces one.
  std::vector<std::byte> bogus;
  PutU32(&bogus, 2);
  ASSERT_EQ(write(raw_fd_, bogus.data(), bogus.size()),
            static_cast<ssize_t>(bogus.size()));
  bool peer_closed = false;
  Status status = channel_->ReadAvailable(&peer_closed);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(FrameChannelTest, AnySingleByteFrameCorruptionIsUnavailable) {
  // Flip every byte past the length header — type, payload, and the CRC
  // trailer itself — and require the frame CRC to catch each one as a
  // retryable corrupt-wire error. (Damage to the length field instead
  // mis-frames the stream: the bounds check or a checksum mismatch on the
  // mis-framed bytes catches that, covered by the length tests above.)
  std::vector<std::byte> payload;
  PutU64(&payload, 0x0123456789ABCDEFull);
  PutString(&payload, "checksummed frame");
  std::vector<std::byte> bytes = EncodeFrame(FrameType::kSummary, payload);
  for (size_t pos = 4; pos < bytes.size(); ++pos) {
    // Fresh channel per corruption: a wire error poisons the stream.
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(SetNonBlocking(sv[0]).ok());
    FrameChannel channel(sv[0], "test peer");
    std::vector<std::byte> damaged = bytes;
    damaged[pos] ^= std::byte{0x10};
    ASSERT_EQ(write(sv[1], damaged.data(), damaged.size()),
              static_cast<ssize_t>(damaged.size()));
    bool peer_closed = false;
    Status status = channel.ReadAvailable(&peer_closed);
    close(sv[1]);
    ASSERT_FALSE(status.ok()) << "corrupted byte " << pos << " undetected";
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << "byte " << pos;
  }
}

TEST_F(FrameChannelTest, PeerCloseReportedAfterFinalFrames) {
  std::vector<std::byte> payload;
  PutU32(&payload, 42);
  std::vector<std::byte> bytes = EncodeFrame(FrameType::kMilestone, payload);
  ASSERT_EQ(write(raw_fd_, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  close(raw_fd_);
  raw_fd_ = -1;

  // The first call drains the frame bytes (a short read ends the recv
  // loop); the EOF surfaces on the next call, as it does in the
  // coordinator's poll loop when the close generates its own POLLIN.
  bool peer_closed = false;
  ASSERT_TRUE(channel_->ReadAvailable(&peer_closed).ok());
  if (!peer_closed) {
    ASSERT_TRUE(channel_->ReadAvailable(&peer_closed).ok());
  }
  EXPECT_TRUE(peer_closed);
  // The frame that arrived before the close is still recoverable.
  Frame frame;
  ASSERT_TRUE(channel_->NextFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kMilestone);
}

// --- Frame-protocol conformance: the table's rules at runtime -------------

// Armed before main() so FrameConformanceEnabled()'s one-shot env read
// sees it no matter which test in this binary runs first.
const bool kConformanceArmed = [] {
  setenv("MJOIN_CONFORMANCE", "1", /*overwrite=*/0);
  return true;
}();

TEST(FrameConformanceTest, WorkerLinkWalksThePhaseMachine) {
  // One full query on a warm link, observed from the coordinator end:
  // plan -> hello -> fragments/data -> finish -> report -> idle, and the
  // idle frame returns the link to await-plan for the next query.
  FrameConformance link(LinkRole::kCoordinator, "worker 0");
  EXPECT_EQ(link.phase(), kPhAwaitPlan);
  ASSERT_TRUE(link.Observe(FrameType::kPlan, /*outbound=*/true).ok());
  EXPECT_EQ(link.phase(), kPhHandshake);
  // Fragments pipeline behind kPlan before the kHello echo arrives.
  ASSERT_TRUE(link.Observe(FrameType::kFragment, /*outbound=*/true).ok());
  ASSERT_TRUE(link.Observe(FrameType::kHello, /*outbound=*/false).ok());
  EXPECT_EQ(link.phase(), kPhExecute);
  ASSERT_TRUE(link.Observe(FrameType::kTrigger, /*outbound=*/true).ok());
  ASSERT_TRUE(link.Observe(FrameType::kData, /*outbound=*/false).ok());
  ASSERT_TRUE(link.Observe(FrameType::kData, /*outbound=*/true).ok());
  ASSERT_TRUE(link.Observe(FrameType::kMilestone, /*outbound=*/false).ok());
  ASSERT_TRUE(link.Observe(FrameType::kFinish, /*outbound=*/true).ok());
  EXPECT_EQ(link.phase(), kPhReport);
  ASSERT_TRUE(link.Observe(FrameType::kSummary, /*outbound=*/false).ok());
  ASSERT_TRUE(link.Observe(FrameType::kNetStats, /*outbound=*/false).ok());
  ASSERT_TRUE(link.Observe(FrameType::kIdle, /*outbound=*/false).ok());
  EXPECT_EQ(link.phase(), kPhAwaitPlan);
  // The warm loop: the next query's plan is legal again.
  EXPECT_TRUE(link.Observe(FrameType::kPlan, /*outbound=*/true).ok());
}

TEST(FrameConformanceTest, DirectionViolationIsCaughtInAnyPhase) {
  // kPlan only ever travels coordinator->worker; a coordinator that
  // *receives* one has a confused or malicious peer, whatever phase the
  // link is in.
  FrameConformance coord(LinkRole::kCoordinator, "worker 0");
  Status status = coord.Observe(FrameType::kPlan, /*outbound=*/false);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("may never travel"), std::string::npos)
      << status.message();

  // Symmetrically, a worker never sends one.
  FrameConformance worker(LinkRole::kWorker, "coordinator");
  EXPECT_FALSE(worker.Observe(FrameType::kPlan, /*outbound=*/true).ok());
}

TEST(FrameConformanceTest, PhaseViolationNamesFrameAndPhase) {
  // kSummary is a report-phase frame; arriving on a parked link (no query
  // in flight) is a violation, and the message must name both the frame
  // and the phase so the log is actionable.
  FrameConformance link(LinkRole::kCoordinator, "worker 3");
  Status status = link.Observe(FrameType::kSummary, /*outbound=*/false);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("summary"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("await-plan"), std::string::npos)
      << status.message();
}

TEST(FrameConformanceTest, ServeLinksStayInTheServePhase) {
  FrameConformance server(LinkRole::kServer, "client");
  EXPECT_EQ(server.phase(), kPhServe);
  ASSERT_TRUE(server.Observe(FrameType::kSubmit, /*outbound=*/false).ok());
  ASSERT_TRUE(
      server.Observe(FrameType::kQueryResult, /*outbound=*/true).ok());
  // kBye doubles as the serve-layer close notice (client->server).
  ASSERT_TRUE(server.Observe(FrameType::kBye, /*outbound=*/false).ok());
  EXPECT_EQ(server.phase(), kPhServe);
  // Worker-protocol frames never appear on a serve link.
  EXPECT_FALSE(server.Observe(FrameType::kPlan, /*outbound=*/false).ok());
}

TEST_F(FrameChannelTest, ConformanceViolationPoisonsTheChannel) {
  ASSERT_TRUE(kConformanceArmed);
  ASSERT_TRUE(FrameConformanceEnabled());
  const uint64_t before = FrameConformanceViolations();
  channel_->EnableConformance(LinkRole::kCoordinator);

  // A coordinator emitting kHello is sending a worker's frame the wrong
  // way down the link. The violation lands at queue time and poisons the
  // channel exactly like corrupt wire: Flush and ReadAvailable both
  // surface it from then on.
  std::vector<std::byte> payload;
  channel_->QueueFrame(FrameType::kHello, payload);
  Status status = channel_->Flush();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("hello"), std::string::npos)
      << status.message();
  bool peer_closed = false;
  EXPECT_FALSE(channel_->ReadAvailable(&peer_closed).ok());
  EXPECT_EQ(FrameConformanceViolations(), before + 1);
}

TEST_F(FrameChannelTest, ConformanceAcceptsALegalHandshake) {
  ASSERT_TRUE(FrameConformanceEnabled());
  const uint64_t before = FrameConformanceViolations();
  channel_->EnableConformance(LinkRole::kCoordinator);
  ASSERT_TRUE(SetNonBlocking(raw_fd_).ok());
  FrameChannel worker(raw_fd_, "coordinator");
  raw_fd_ = -1;  // the channel owns (and closes) the fd now
  worker.EnableConformance(LinkRole::kWorker);

  // Coordinator ships the plan; the worker echoes hello. Both checkers
  // observe both frames (each its own send and the other's receive) and
  // neither trips.
  std::vector<std::byte> plan_payload;
  PutString(&plan_payload, "plan text");
  channel_->QueueFrame(FrameType::kPlan, plan_payload);
  ASSERT_TRUE(channel_->Flush().ok());
  bool peer_closed = false;
  ASSERT_TRUE(worker.ReadAvailable(&peer_closed).ok());
  Frame frame;
  ASSERT_TRUE(worker.NextFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kPlan);

  std::vector<std::byte> hello_payload;
  PutU32(&hello_payload, 2);
  worker.QueueFrame(FrameType::kHello, hello_payload);
  ASSERT_TRUE(worker.Flush().ok());
  ASSERT_TRUE(channel_->ReadAvailable(&peer_closed).ok());
  ASSERT_TRUE(channel_->NextFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(FrameConformanceViolations(), before);
}

TEST_F(FrameChannelTest, UnknownFrameTypePoisonsTheChannel) {
  // A type byte the table does not define must never reach a handler
  // switch; the channel rejects it at reassembly time, CRC-valid or not.
  std::vector<std::byte> payload;
  PutU32(&payload, 99);
  std::vector<std::byte> bytes =
      EncodeFrame(static_cast<FrameType>(200), payload);
  ASSERT_EQ(write(raw_fd_, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  bool peer_closed = false;
  Status status = channel_->ReadAvailable(&peer_closed);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("unknown frame type 200"),
            std::string::npos)
      << status.message();
}

// --- NetFaultInjector: deterministic link damage --------------------------

std::vector<std::byte> SomeFrame() {
  std::vector<std::byte> payload;
  PutU64(&payload, 0x1122334455667788ull);
  std::vector<std::byte> frame;
  PutU32(&frame, static_cast<uint32_t>(1 + payload.size() + 4));
  PutU8(&frame, static_cast<uint8_t>(FrameType::kData));
  frame.insert(frame.end(), payload.begin(), payload.end());
  PutU32(&frame, Crc32(frame.data() + 4, frame.size() - 4));
  return frame;
}

TEST(NetFaultInjectorTest, CorruptOutboundFiresOnceAfterCount) {
  NetFaultScenario scenario;
  scenario.kind = NetFaultKind::kCorruptOutbound;
  scenario.after_frames = 2;
  scenario.seed = 7;
  NetFaultInjector injector(scenario);

  const std::vector<std::byte> original = SomeFrame();
  for (int i = 0; i < 5; ++i) {
    std::vector<std::byte> frame = original;
    bool shutdown_write = false;
    injector.OnOutboundFrame(&frame, &shutdown_write);
    EXPECT_FALSE(shutdown_write);
    if (i == 2) {
      EXPECT_NE(frame, original) << "fault did not fire on frame 2";
      // The damage never lands in the length header, so the receiver sees
      // a well-framed but checksum-broken frame.
      EXPECT_TRUE(std::equal(frame.begin(), frame.begin() + 4,
                             original.begin()));
    } else {
      EXPECT_EQ(frame, original) << "frame " << i;
    }
  }
  EXPECT_EQ(injector.fires(), 1u);  // max_fires defaults to one-shot
}

TEST(NetFaultInjectorTest, TruncateShrinksAndShutsDownWrite) {
  NetFaultScenario scenario;
  scenario.kind = NetFaultKind::kTruncateOutbound;
  NetFaultInjector injector(scenario);

  std::vector<std::byte> frame = SomeFrame();
  const size_t full = frame.size();
  bool shutdown_write = false;
  injector.OnOutboundFrame(&frame, &shutdown_write);
  EXPECT_TRUE(shutdown_write);
  EXPECT_LT(frame.size(), full);
  EXPECT_GE(frame.size(), 4u);
}

TEST(NetFaultInjectorTest, ShortWritesCapEverySend) {
  NetFaultScenario scenario;
  scenario.kind = NetFaultKind::kShortWrites;
  scenario.write_cap = 3;
  NetFaultInjector injector(scenario);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(injector.CapWrite(100), 3u);
  }
  EXPECT_EQ(injector.CapWrite(2), 2u);
}

TEST(NetFaultInjectorTest, StallLatchesUntilRebind) {
  NetFaultScenario scenario;
  scenario.kind = NetFaultKind::kStallOutbound;
  NetFaultInjector injector(scenario);
  EXPECT_FALSE(injector.send_stalled());

  std::vector<std::byte> frame = SomeFrame();
  bool shutdown_write = false;
  injector.OnOutboundFrame(&frame, &shutdown_write);
  EXPECT_TRUE(injector.send_stalled());
  EXPECT_EQ(injector.CapWrite(100), 0u);
  EXPECT_EQ(injector.fires(), 1u);

  // A retry attempt installs the injector on a fresh channel: the latch
  // clears but the spent one-shot budget does not, so the retry runs clean.
  injector.OnChannelRebind();
  EXPECT_FALSE(injector.send_stalled());
  injector.OnOutboundFrame(&frame, &shutdown_write);
  EXPECT_FALSE(injector.send_stalled());
  EXPECT_EQ(injector.fires(), 1u);
}

TEST(NetFaultInjectorTest, ScenarioSerializesForReproduction) {
  NetFaultScenario scenario;
  scenario.kind = NetFaultKind::kDropConnection;
  scenario.worker = 3;
  scenario.after_frames = 17;
  scenario.seed = 42;
  std::string text = SerializeNetFaultScenario(scenario);
  EXPECT_NE(text.find("drop-conn"), std::string::npos);
  EXPECT_NE(text.find("worker=3"), std::string::npos);
  EXPECT_NE(text.find("seed=42"), std::string::npos);
}

}  // namespace
}  // namespace mjoin
