#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "engine/process_executor.h"
#include "engine/process_protocol.h"
#include "engine/reference.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "skew/bloom.h"
#include "skew/defense.h"
#include "skew/sketch.h"
#include "storage/wisconsin.h"
#include "strategy/strategy.h"
#include "workload/workload.h"

namespace mjoin {
namespace {

// ---------------------------------------------------------------------
// SpaceSaving sketch
// ---------------------------------------------------------------------

TEST(SpaceSavingSketchTest, NeverMissesAHeavyHitter) {
  SpaceSavingSketch sketch(8);
  // 10000 noise keys once each, one hot key 2000 times interleaved.
  for (int i = 0; i < 10000; ++i) {
    sketch.Observe(100000 + i);
    if (i % 5 == 0) sketch.Observe(42);
  }
  bool found = false;
  for (const auto& entry : sketch.Entries()) {
    if (entry.key == 42) {
      found = true;
      // SpaceSaving counts are upper bounds on the true count.
      EXPECT_GE(entry.count, 2000u);
    }
  }
  EXPECT_TRUE(found) << "a key with 17% of the stream must survive";
  EXPECT_EQ(sketch.total(), 12000u);
}

TEST(SpaceSavingSketchTest, ExactBelowCapacity) {
  SpaceSavingSketch sketch(16);
  for (int rep = 0; rep < 7; ++rep) {
    for (int32_t key = 0; key < 5; ++key) {
      if (key <= rep % 5) sketch.Observe(key);
    }
  }
  for (const auto& entry : sketch.Entries()) {
    EXPECT_LT(entry.key, 5);
    EXPECT_GT(entry.count, 0u);
  }
}

// ---------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegativesAndUsefulRejection) {
  BloomFilter bloom(1u << 16);
  for (int32_t key = 0; key < 1000; ++key) bloom.Insert(key * 7);
  for (int32_t key = 0; key < 1000; ++key) {
    EXPECT_TRUE(bloom.MayContain(key * 7));
  }
  int false_positives = 0;
  for (int32_t probe = 1000000; probe < 1010000; ++probe) {
    if (bloom.MayContain(probe)) ++false_positives;
  }
  // 4k inserted bits in 64k slots: the fp rate is well under a percent.
  EXPECT_LT(false_positives, 200);
  EXPECT_GT(bloom.EstimateFpRate(), 0.0);
  EXPECT_LT(bloom.EstimateFpRate(), 0.01);
}

TEST(BloomFilterTest, UnbuiltPassesEverything) {
  BloomFilter empty;
  EXPECT_FALSE(empty.built());
  EXPECT_TRUE(empty.MayContain(123));
}

TEST(BloomFilterTest, SerializationAndUnionRoundTrip) {
  BloomFilter a(1u << 12);
  BloomFilter b(1u << 12);
  a.Insert(1);
  b.Insert(2);
  BloomFilter restored = BloomFilter::FromBytes(a.bytes());
  ASSERT_TRUE(restored.built());
  EXPECT_TRUE(restored.MayContain(1));

  a.Union(b);
  EXPECT_TRUE(a.MayContain(1));
  EXPECT_TRUE(a.MayContain(2));
}

// ---------------------------------------------------------------------
// Defense plumbing
// ---------------------------------------------------------------------

TEST(SkewDefenseTest, ParseModeListsValidValues) {
  EXPECT_EQ(*ParseSkewDefenseMode("off"), SkewDefenseMode::kOff);
  EXPECT_EQ(*ParseSkewDefenseMode("on"), SkewDefenseMode::kOn);
  EXPECT_EQ(*ParseSkewDefenseMode("auto"), SkewDefenseMode::kAuto);
  auto bad = ParseSkewDefenseMode("maybe");
  ASSERT_FALSE(bad.ok());
  for (const char* valid : {"off", "on", "auto"}) {
    EXPECT_NE(bad.status().message().find(valid), std::string::npos);
  }
}

ParallelPlan PlanFor(StrategyKind kind, QueryShape shape) {
  auto query = MakeWisconsinChainQuery(shape, 3, 400);
  EXPECT_TRUE(query.ok());
  auto plan = MakeStrategy(kind)->Parallelize(*query, 8, TotalCostModel());
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *std::move(plan);
}

TEST(SkewDefenseTest, DefendedJoinsAreHashSplitProbeEdges) {
  for (StrategyKind kind : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      ParallelPlan plan = PlanFor(kind, shape);
      for (int id : DefendedJoinOps(plan)) {
        const XraOp& op = plan.ops[static_cast<size_t>(id)];
        EXPECT_EQ(op.kind, XraOpKind::kSimpleHashJoin);
        EXPECT_GE(op.inputs[1].producer, 0);
        EXPECT_EQ(op.inputs[1].routing, Routing::kHashSplit);
      }
    }
  }
}

// Build a hash table holding `hot_rows` rows of key 0 plus one row each
// of keys 1..cold_keys, report it, and return (report, table rows).
SkewJoinReport ReportFor(JoinHashTable* table, uint64_t hot_rows,
                         int32_t cold_keys,
                         const SkewDefenseOptions& options) {
  Relation seed(WisconsinSchema());
  auto add = [&](int32_t key) {
    TupleWriter w = seed.AppendTuple();
    for (size_t c = 0; c < kStringU1; ++c) w.SetInt32(c, key);
    w.SetString(kStringU1, WisconsinString(key));
    w.SetString(kStringU2, WisconsinString(key));
    w.SetString(kString4, "AAAA");
    table->Insert(seed.tuple(seed.num_tuples() - 1).data());
  };
  for (uint64_t i = 0; i < hot_rows; ++i) add(0);
  for (int32_t key = 1; key <= cold_keys; ++key) add(key);
  return BuildSkewReport(*table, /*op=*/3, /*instance=*/0,
                         /*num_instances=*/4, options);
}

TEST(SkewDefenseTest, ReportMergerDirectiveApplyRoundTrip) {
  SkewDefenseOptions options;
  options.mode = SkewDefenseMode::kOn;
  options.min_hot_count = 16;
  options.hot_fraction = 0.5;

  auto schema = std::make_shared<const Schema>(WisconsinSchema());
  JoinHashTable hot_table(schema, kUnique1);
  SkewJoinReport report = ReportFor(&hot_table, /*hot_rows=*/100,
                                    /*cold_keys=*/50, options);
  EXPECT_EQ(report.build_rows, 150u);
  EXPECT_TRUE(report.bloom.built());
  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.candidates[0].key, 0);
  EXPECT_GE(report.candidates[0].count, 100u);
  EXPECT_TRUE(report.candidates[0].rows_included);

  SkewReportMerger merger(3, 2, options);
  merger.Add(report);
  EXPECT_FALSE(merger.complete());
  JoinHashTable cold_table(schema, kUnique1);
  SkewJoinReport cold = ReportFor(&cold_table, /*hot_rows=*/0,
                                  /*cold_keys=*/30, options);
  cold.instance = 1;
  merger.Add(cold);
  ASSERT_TRUE(merger.complete());

  SkewDirective directive = merger.Finish();
  EXPECT_EQ(directive.op, 3);
  EXPECT_TRUE(directive.repartition);
  ASSERT_EQ(directive.hot_keys.size(), 1u);
  EXPECT_EQ(directive.hot_keys[0], 0);
  EXPECT_EQ(directive.total_build_rows, 180u);
  EXPECT_GT(directive.imbalance, 1.0);
  EXPECT_TRUE(directive.bloom.MayContain(0));
  EXPECT_TRUE(directive.bloom.MayContain(30));

  // The owner instance already holds key 0's originals: apply is a no-op.
  EXPECT_EQ(ApplySkewDirective(directive, &hot_table), 0u);
  // A non-owner instance receives all 100 replicated rows.
  EXPECT_EQ(ApplySkewDirective(directive, &cold_table), 100u);
  EXPECT_EQ(cold_table.Probe(0, [](TupleRef) {}), 100u);
}

TEST(SkewDefenseTest, EmitDefenseClassifiesDropRepartitionPass) {
  SkewDirective directive;
  directive.repartition = true;
  directive.hot_keys = {7};
  BloomFilter bloom(1u << 12);
  bloom.Insert(7);
  bloom.Insert(8);
  directive.bloom = std::move(bloom);

  SkewEmitDefense defense(directive);
  EXPECT_EQ(defense.Classify(7), EmitDefense::Verdict::kRepartition);
  EXPECT_EQ(defense.Classify(8), EmitDefense::Verdict::kPass);
  EXPECT_EQ(defense.Classify(123456), EmitDefense::Verdict::kDrop);
}

// ---------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------

TEST(SkewWireTest, ReportCodecRoundTrip) {
  SkewJoinReport report;
  report.op = 5;
  report.instance = 2;
  report.build_rows = 777;
  report.tuple_size = 8;
  SkewCandidate candidate;
  candidate.key = 42;
  candidate.count = 700;
  candidate.rows_included = true;
  candidate.rows.assign(16, std::byte{0xAB});
  report.candidates.push_back(std::move(candidate));
  BloomFilter bloom(1u << 10);
  bloom.Insert(42);
  report.bloom = std::move(bloom);

  std::vector<std::byte> payload;
  EncodeSkewReport(report, &payload);
  WireReader reader(payload);
  SkewJoinReport decoded;
  ASSERT_TRUE(DecodeSkewReport(&reader, &decoded).ok());
  EXPECT_EQ(decoded.op, 5);
  EXPECT_EQ(decoded.instance, 2u);
  EXPECT_EQ(decoded.build_rows, 777u);
  ASSERT_EQ(decoded.candidates.size(), 1u);
  EXPECT_EQ(decoded.candidates[0].key, 42);
  EXPECT_EQ(decoded.candidates[0].rows, report.candidates[0].rows);
  EXPECT_TRUE(decoded.bloom.MayContain(42));

  // Truncation at every prefix must fail cleanly, never crash.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader short_reader(payload.data(), cut);
    SkewJoinReport scratch;
    EXPECT_FALSE(DecodeSkewReport(&short_reader, &scratch).ok()) << cut;
  }
}

TEST(SkewWireTest, DirectiveCodecRoundTrip) {
  SkewDirective directive;
  directive.op = 4;
  directive.repartition = true;
  directive.hot_keys = {-3, 9};
  directive.tuple_size = 4;
  directive.hot_rows.assign(12, std::byte{0x5C});
  directive.total_build_rows = 4096;
  directive.imbalance = 2.25;
  BloomFilter bloom(1u << 9);
  bloom.Insert(9);
  directive.bloom = std::move(bloom);

  std::vector<std::byte> payload;
  EncodeSkewDirective(directive, &payload);
  WireReader reader(payload);
  SkewDirective decoded;
  ASSERT_TRUE(DecodeSkewDirective(&reader, &decoded).ok());
  EXPECT_EQ(decoded.op, 4);
  EXPECT_TRUE(decoded.repartition);
  EXPECT_EQ(decoded.hot_keys, directive.hot_keys);
  EXPECT_EQ(decoded.hot_rows, directive.hot_rows);
  EXPECT_EQ(decoded.total_build_rows, 4096u);
  EXPECT_DOUBLE_EQ(decoded.imbalance, 2.25);
  EXPECT_TRUE(decoded.bloom.MayContain(9));

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader short_reader(payload.data(), cut);
    SkewDirective scratch;
    EXPECT_FALSE(DecodeSkewDirective(&short_reader, &scratch).ok()) << cut;
  }
}

TEST(SkewWireTest, PlanEnvelopeCarriesDefenseOptions) {
  PlanEnvelope env;
  env.plan_text = "plan";
  env.skew_defense.mode = SkewDefenseMode::kAuto;
  env.skew_defense.bloom_bits = 1u << 10;
  env.skew_defense.sketch_capacity = 17;
  env.skew_defense.hot_fraction = 0.75;
  env.skew_defense.min_hot_count = 99;
  env.skew_defense.auto_imbalance_threshold = 1.75;
  env.skew_defense.max_hot_row_bytes = 12345;

  std::vector<std::byte> payload;
  EncodePlanEnvelope(env, &payload);
  WireReader reader(payload);
  PlanEnvelope decoded;
  ASSERT_TRUE(DecodePlanEnvelope(&reader, &decoded).ok());
  EXPECT_EQ(decoded.skew_defense.mode, SkewDefenseMode::kAuto);
  EXPECT_EQ(decoded.skew_defense.bloom_bits, 1u << 10);
  EXPECT_EQ(decoded.skew_defense.sketch_capacity, 17u);
  EXPECT_DOUBLE_EQ(decoded.skew_defense.hot_fraction, 0.75);
  EXPECT_EQ(decoded.skew_defense.min_hot_count, 99u);
  EXPECT_DOUBLE_EQ(decoded.skew_defense.auto_imbalance_threshold, 1.75);
  EXPECT_EQ(decoded.skew_defense.max_hot_row_bytes, 12345u);
}

// ---------------------------------------------------------------------
// End to end: defense on == defense off, and the counters move
// ---------------------------------------------------------------------

struct SkewRunOutcome {
  ResultSummary result;
  uint64_t hot_keys = 0;
  uint64_t replicated = 0;
  uint64_t repartitioned = 0;
  uint64_t bloom_filtered = 0;
};

SkewRunOutcome Accumulate(const ResultSummary& result,
                          const std::vector<ThreadOpStats>& per_op) {
  SkewRunOutcome out;
  out.result = result;
  for (const ThreadOpStats& op : per_op) {
    out.hot_keys += op.metrics.skew_hot_keys;
    out.replicated += op.metrics.skew_replicated_rows;
    out.repartitioned += op.metrics.skew_repartitioned_rows;
    out.bloom_filtered += op.metrics.skew_bloom_filtered_rows;
  }
  return out;
}

// The acceptance workload: Zipf(1.0) m:n chain with prunable misses,
// thresholds lowered so its test-sized hot key trips detection.
SkewDefenseOptions TestDefense(SkewDefenseMode mode) {
  SkewDefenseOptions defense;
  defense.mode = mode;
  defense.min_hot_count = 16;
  // At 600 rows the Zipf(1) hot key holds ~54 build rows. RD runs the
  // defended join on only 4 of the 8 processors (fair share 150), so the
  // default 0.5 fraction would leave its threshold at 75 and never fire;
  // 0.25 puts the threshold under the hot count for every strategy.
  defense.hot_fraction = 0.25;
  return defense;
}

TEST(SkewEndToEndTest, ThreadBackendDefenseIsResultInvariant) {
  auto spec = WorkloadPreset("adversarial");
  ASSERT_TRUE(spec.ok());
  spec->cardinality = 600;
  auto db = MakeWorkloadDatabase(*spec);
  ASSERT_TRUE(db.ok());
  // Right-linear: each intermediate result feeds the NEXT join's probe
  // slot over a hash-split edge, so the defense has edges to defend.
  // (Left-linear chains route every intermediate into the next build
  // slot and probe from colocated scans — nothing to defend there.)
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear,
                                       spec->num_relations,
                                       spec->cardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, *db);
  ASSERT_TRUE(reference.ok());

  bool any_defended = false;
  for (StrategyKind kind : kAllStrategies) {
    auto plan =
        MakeStrategy(kind)->Parallelize(*query, 8, TotalCostModel());
    ASSERT_TRUE(plan.ok()) << plan.status();
    ThreadExecutor threads(&*db);
    std::map<SkewDefenseMode, SkewRunOutcome> outcomes;
    for (SkewDefenseMode mode :
         {SkewDefenseMode::kOff, SkewDefenseMode::kOn,
          SkewDefenseMode::kAuto}) {
      ThreadExecOptions options;
      options.collect_metrics = true;
      options.skew_defense = TestDefense(mode);
      auto run = threads.Execute(*plan, options);
      ASSERT_TRUE(run.ok())
          << run.status() << " " << SkewDefenseModeName(mode);
      outcomes[mode] = Accumulate(run->result, run->stats.per_op);
      EXPECT_EQ(run->result.cardinality, reference->cardinality)
          << StrategyName(kind) << " " << SkewDefenseModeName(mode);
      EXPECT_EQ(run->result.checksum, reference->checksum)
          << StrategyName(kind) << " " << SkewDefenseModeName(mode);
    }
    const SkewRunOutcome& off = outcomes[SkewDefenseMode::kOff];
    EXPECT_EQ(off.hot_keys, 0u);
    EXPECT_EQ(off.bloom_filtered, 0u);
    if (!DefendedJoinOps(*plan).empty()) {
      any_defended = true;
      const SkewRunOutcome& on = outcomes[SkewDefenseMode::kOn];
      // selectivity 0.5 guarantees prunable probe rows on every
      // defended edge, and the Zipf hot key clears min_hot_count=16.
      EXPECT_GT(on.bloom_filtered, 0u) << StrategyName(kind);
      EXPECT_GT(on.hot_keys, 0u) << StrategyName(kind);
      EXPECT_GT(on.repartitioned, 0u) << StrategyName(kind);
      EXPECT_GT(on.replicated, 0u) << StrategyName(kind);
    }
  }
  // Keeps the counter assertions above from passing vacuously.
  EXPECT_TRUE(any_defended) << "no strategy produced a defended join";
}

TEST(SkewEndToEndTest, ProcessBackendDefenseIsResultInvariant) {
  auto spec = WorkloadPreset("adversarial");
  ASSERT_TRUE(spec.ok());
  spec->cardinality = 600;
  auto db = MakeWorkloadDatabase(*spec);
  ASSERT_TRUE(db.ok());
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear,
                                       spec->num_relations,
                                       spec->cardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, *db);
  ASSERT_TRUE(reference.ok());
  // Pick a strategy whose plan actually has a hash-split probe edge to
  // defend (which strategies do depends on their colocation choices).
  std::optional<ParallelPlan> plan;
  for (StrategyKind kind : kAllStrategies) {
    auto candidate =
        MakeStrategy(kind)->Parallelize(*query, 8, TotalCostModel());
    ASSERT_TRUE(candidate.ok()) << candidate.status();
    if (!DefendedJoinOps(*candidate).empty()) {
      plan.emplace(*std::move(candidate));
      break;
    }
  }
  ASSERT_TRUE(plan.has_value()) << "no strategy produced a defended join";

  ProcessExecutor processes(&*db);
  for (bool use_shm : {false, true}) {
    for (SkewDefenseMode mode :
         {SkewDefenseMode::kOff, SkewDefenseMode::kOn,
          SkewDefenseMode::kAuto}) {
      ProcessExecOptions options;
      options.exec.collect_metrics = true;
      options.exec.skew_defense = TestDefense(mode);
      options.num_workers = 3;
      options.use_shm_data_plane = use_shm;
      ThreadExecStats stats;
      auto run = processes.Execute(*plan, options, &stats);
      ASSERT_TRUE(run.ok()) << run.status() << " shm=" << use_shm << " "
                            << SkewDefenseModeName(mode);
      EXPECT_EQ(run->exec.result.cardinality, reference->cardinality)
          << "shm=" << use_shm << " " << SkewDefenseModeName(mode);
      EXPECT_EQ(run->exec.result.checksum, reference->checksum)
          << "shm=" << use_shm << " " << SkewDefenseModeName(mode);
      SkewRunOutcome outcome =
          Accumulate(run->exec.result, run->exec.stats.per_op);
      if (mode == SkewDefenseMode::kOff) {
        EXPECT_EQ(outcome.hot_keys, 0u);
        EXPECT_EQ(outcome.bloom_filtered, 0u);
      } else {
        // Both planes must see the directive do real work: drops and
        // repartitions counted on the producers, replication on the
        // join instances, hot keys once per defended join.
        EXPECT_GT(outcome.bloom_filtered, 0u) << "shm=" << use_shm;
        EXPECT_GT(outcome.hot_keys, 0u) << "shm=" << use_shm;
        EXPECT_GT(outcome.repartitioned, 0u) << "shm=" << use_shm;
        EXPECT_GT(outcome.replicated, 0u) << "shm=" << use_shm;
      }
    }
  }
}

}  // namespace
}  // namespace mjoin
