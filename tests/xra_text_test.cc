#include <gtest/gtest.h>

#include "common/string_util.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"
#include "xra/text.h"

namespace mjoin {
namespace {

ParallelPlan MakePlan(StrategyKind kind, QueryShape shape, uint32_t procs) {
  auto query = MakeWisconsinChainQuery(shape, 6, 300);
  MJOIN_CHECK(query.ok());
  auto plan = MakeStrategy(kind)->Parallelize(*query, procs,
                                              TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  return *std::move(plan);
}

TEST(XraTextTest, SerializeMentionsEveryOp) {
  ParallelPlan plan = MakePlan(StrategyKind::kSP, QueryShape::kLeftLinear, 6);
  std::string text = SerializePlan(plan);
  EXPECT_NE(text.find("mjoin-plan v1"), std::string::npos);
  EXPECT_NE(text.find("strategy SP"), std::string::npos);
  for (const XraOp& op : plan.ops) {
    EXPECT_NE(text.find(StrCat("op ", op.id, " ")), std::string::npos);
  }
}

// Round trip: parse(serialize(plan)) re-serializes to the identical text
// (canonical form), for every strategy on every shape.
struct Case {
  StrategyKind strategy;
  QueryShape shape;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string shape = ShapeName(info.param.shape);
  for (char& c : shape) {
    if (c == ' ') c = '_';
  }
  return StrategyName(info.param.strategy) + "_" + shape;
}

class XraTextRoundTrip : public testing::TestWithParam<Case> {};

TEST_P(XraTextRoundTrip, ParseSerializeIsIdentity) {
  ParallelPlan plan = MakePlan(GetParam().strategy, GetParam().shape, 10);
  std::string text = SerializePlan(plan);
  auto parsed = ParsePlan(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  EXPECT_TRUE(parsed->Validate().ok());
  EXPECT_EQ(SerializePlan(*parsed), text);
  EXPECT_EQ(parsed->CountStreams(), plan.CountStreams());
  EXPECT_EQ(parsed->CountProcesses(), plan.CountProcesses());
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      cases.push_back({strategy, shape});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategiesAllShapes, XraTextRoundTrip,
                         testing::ValuesIn(AllCases()), CaseName);

TEST(XraTextTest, ParsedPlanExecutesIdentically) {
  constexpr uint32_t kCardinality = 300;
  Database db = MakeWisconsinDatabase(6, kCardinality, 51);
  ParallelPlan plan = MakePlan(StrategyKind::kRD,
                               QueryShape::kRightOrientedBushy, 10);
  auto parsed = ParsePlan(SerializePlan(plan));
  ASSERT_TRUE(parsed.ok());

  SimExecutor executor(&db);
  auto original = executor.Execute(plan, SimExecOptions());
  auto replayed = executor.Execute(*parsed, SimExecOptions());
  ASSERT_TRUE(original.ok() && replayed.ok());
  EXPECT_EQ(original->result, replayed->result);
  EXPECT_EQ(original->response_ticks, replayed->response_ticks);
}

TEST(XraTextTest, RejectsGarbage) {
  EXPECT_FALSE(ParsePlan("").ok());
  EXPECT_FALSE(ParsePlan("not a plan\n").ok());
  EXPECT_FALSE(ParsePlan("mjoin-plan v2\n").ok());
}

TEST(XraTextTest, RejectsTamperedPlans) {
  ParallelPlan plan = MakePlan(StrategyKind::kFP, QueryShape::kWideBushy, 8);
  std::string text = SerializePlan(plan);

  // Out-of-range processor.
  std::string bad = text;
  size_t pos = bad.find("processors 8");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 12, "processors 2");
  EXPECT_FALSE(ParsePlan(bad).ok());

  // Corrupted integer.
  bad = text;
  pos = bad.find("lkey 0");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 6, "lkey xx");
  EXPECT_FALSE(ParsePlan(bad).ok());
}

TEST(XraTextTest, CommentsAndBlankLinesIgnored) {
  ParallelPlan plan = MakePlan(StrategyKind::kSE, QueryShape::kWideBushy, 8);
  std::string text = "# saved by test\n\n" + SerializePlan(plan);
  auto parsed = ParsePlan(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
}

}  // namespace
}  // namespace mjoin
