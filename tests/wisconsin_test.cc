#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "storage/wisconsin.h"

namespace mjoin {
namespace {

TEST(WisconsinTest, SchemaIs208Bytes) {
  const Schema& schema = WisconsinSchema();
  EXPECT_EQ(schema.tuple_size(), 208u);
  EXPECT_EQ(schema.num_columns(), 16u);
  EXPECT_EQ(schema.column(kUnique1).name, "unique1");
  EXPECT_EQ(schema.column(kStringU1).width, 52u);
}

TEST(WisconsinTest, UniqueAttributesArePermutations) {
  Relation rel = GenerateWisconsin(1000, 77);
  std::set<int32_t> u1, u2;
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    u1.insert(rel.tuple(i).GetInt32(kUnique1));
    u2.insert(rel.tuple(i).GetInt32(kUnique2));
  }
  EXPECT_EQ(u1.size(), 1000u);
  EXPECT_EQ(*u1.begin(), 0);
  EXPECT_EQ(*u1.rbegin(), 999);
  EXPECT_EQ(u2.size(), 1000u);
}

TEST(WisconsinTest, DerivedAttributesFollowUnique1) {
  Relation rel = GenerateWisconsin(500, 5);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    TupleRef t = rel.tuple(i);
    int32_t u1 = t.GetInt32(kUnique1);
    EXPECT_EQ(t.GetInt32(kTwo), u1 % 2);
    EXPECT_EQ(t.GetInt32(kFour), u1 % 4);
    EXPECT_EQ(t.GetInt32(kTen), u1 % 10);
    EXPECT_EQ(t.GetInt32(kTwenty), u1 % 20);
    EXPECT_EQ(t.GetInt32(kOnePercent), u1 % 100);
    EXPECT_EQ(t.GetInt32(kUnique3), u1);
    EXPECT_EQ(t.GetInt32(kEvenOnePercent), (u1 % 100) * 2);
    EXPECT_EQ(t.GetInt32(kOddOnePercent), (u1 % 100) * 2 + 1);
  }
}

TEST(WisconsinTest, StringAttributesEncodeValues) {
  EXPECT_EQ(WisconsinString(0), "AAAAAAA" + std::string(45, 'x'));
  EXPECT_EQ(WisconsinString(1), "AAAAAAB" + std::string(45, 'x'));
  EXPECT_EQ(WisconsinString(26), "AAAAABA" + std::string(45, 'x'));
  Relation rel = GenerateWisconsin(30, 5);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    TupleRef t = rel.tuple(i);
    EXPECT_EQ(t.GetString(kStringU1),
              WisconsinString(t.GetInt32(kUnique1)));
    EXPECT_EQ(t.GetString(kStringU2),
              WisconsinString(t.GetInt32(kUnique2)));
  }
}

TEST(WisconsinTest, DeterministicPerSeedDistinctAcrossSeeds) {
  Relation a1 = GenerateWisconsin(100, 1);
  Relation a2 = GenerateWisconsin(100, 1);
  Relation b = GenerateWisconsin(100, 2);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a1.tuple(i).GetInt32(kUnique1), a2.tuple(i).GetInt32(kUnique1));
  }
  // Different seed must give a different permutation (overwhelmingly).
  bool differs = false;
  for (size_t i = 0; i < 100; ++i) {
    differs |= a1.tuple(i).GetInt32(kUnique1) != b.tuple(i).GetInt32(kUnique1);
  }
  EXPECT_TRUE(differs);
}

// The paper requires "no correlation between the first and second
// attribute of one relation": Pearson correlation of (unique1, unique2)
// should be near zero.
TEST(WisconsinTest, Unique1Unique2Decorrelated) {
  constexpr uint32_t kN = 20000;
  Relation rel = GenerateWisconsin(kN, 99);
  double mean = (kN - 1) / 2.0;
  double cov = 0, var = 0;
  for (size_t i = 0; i < kN; ++i) {
    double a = rel.tuple(i).GetInt32(kUnique1) - mean;
    double b = rel.tuple(i).GetInt32(kUnique2) - mean;
    cov += a * b;
    var += a * a;
  }
  double corr = cov / var;
  EXPECT_LT(std::abs(corr), 0.02) << "unique1/unique2 correlated: " << corr;
}

TEST(WisconsinTest, CrossRelationDecorrelated) {
  constexpr uint32_t kN = 20000;
  Relation r1 = GenerateWisconsin(kN, 1);
  Relation r2 = GenerateWisconsin(kN, 2);
  double mean = (kN - 1) / 2.0;
  double cov = 0, var = 0;
  for (size_t i = 0; i < kN; ++i) {
    double a = r1.tuple(i).GetInt32(kUnique1) - mean;
    double b = r2.tuple(i).GetInt32(kUnique1) - mean;
    cov += a * b;
    var += a * a;
  }
  EXPECT_LT(std::abs(cov / var), 0.02);
}

TEST(WisconsinTest, TotalBytesMatchCardinality) {
  Relation rel = GenerateWisconsin(5000, 3);
  EXPECT_EQ(rel.byte_size(), 5000u * 208u);
}

}  // namespace
}  // namespace mjoin
