#include <gtest/gtest.h>

#include <map>

#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/catalog.h"
#include "plan/wisconsin_query.h"
#include "storage/wisconsin.h"
#include "storage/zipf.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// --- ZipfGenerator -----------------------------------------------------------

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  ZipfGenerator zipf(100, 0.0);
  Random rng(1);
  std::map<uint32_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(&rng)];
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
  EXPECT_NEAR(zipf.TopProbability(), 0.01, 0.001);
}

TEST(ZipfTest, HigherThetaConcentratesMass) {
  ZipfGenerator mild(1000, 0.5), strong(1000, 1.2);
  EXPECT_LT(mild.TopProbability(), strong.TopProbability());
  Random rng(2);
  int mild_zero = 0, strong_zero = 0;
  Random rng2(2);
  for (int i = 0; i < 20000; ++i) {
    mild_zero += mild.Next(&rng) == 0 ? 1 : 0;
    strong_zero += strong.Next(&rng2) == 0 ? 1 : 0;
  }
  EXPECT_LT(mild_zero, strong_zero);
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfGenerator zipf(17, 1.0);
  Random rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 17u);
}

TEST(ZipfTest, SkewedWisconsinKeepsDerivedAttributes) {
  Relation rel = GenerateSkewedWisconsin(2000, 9, 1.0);
  EXPECT_EQ(rel.num_tuples(), 2000u);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    TupleRef t = rel.tuple(i);
    EXPECT_EQ(t.GetInt32(kTwo), t.GetInt32(kUnique1) % 2);
    EXPECT_EQ(t.GetString(kStringU1),
              WisconsinString(t.GetInt32(kUnique1)));
  }
}

// --- Catalog / column stats -----------------------------------------------------

TEST(CatalogTest, StatsOnPermutationColumn) {
  Relation rel = GenerateWisconsin(1000, 11);
  auto stats = ComputeColumnStats(rel, kUnique1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_tuples, 1000u);
  EXPECT_EQ(stats->distinct, 1000u);
  EXPECT_EQ(stats->min, 0);
  EXPECT_EQ(stats->max, 999);
  EXPECT_EQ(stats->top_frequency, 1u);
  EXPECT_DOUBLE_EQ(stats->PartitioningSkewLowerBound(10), 0.0);
}

TEST(CatalogTest, StatsDetectSkew) {
  Relation skewed = GenerateSkewedWisconsin(10000, 13, 1.0);
  auto stats = ComputeColumnStats(skewed, kUnique1);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->distinct, 10000u);
  EXPECT_GT(stats->top_frequency, 100u);
  EXPECT_GT(stats->PartitioningSkewLowerBound(40), 1.0);
}

TEST(CatalogTest, EstimateEquiJoin) {
  Catalog catalog;
  Relation a = GenerateWisconsin(1000, 1);
  Relation b = GenerateWisconsin(1000, 2);
  ASSERT_TRUE(catalog.Analyze("a", a, kUnique1).ok());
  ASSERT_TRUE(catalog.Analyze("b", b, kUnique1).ok());
  auto estimate = catalog.EstimateEquiJoin("a", kUnique1, "b", kUnique1);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 1000.0);  // key-key join
  EXPECT_FALSE(catalog.Get("missing", 0).ok());
}

TEST(CatalogTest, RejectsStringColumns) {
  Relation rel = GenerateWisconsin(10, 1);
  EXPECT_FALSE(ComputeColumnStats(rel, kStringU1).ok());
}

// --- Skewed execution stays correct -----------------------------------------------

TEST(SkewTest, AllStrategiesCorrectUnderSkew) {
  constexpr int kRelations = 5;
  constexpr uint32_t kCardinality = 600;
  Database db = MakeSkewedDatabase(kRelations, kCardinality, /*seed=*/21,
                                   /*theta=*/1.0);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, kRelations,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, db);
  ASSERT_TRUE(reference.ok());
  // Unlike the regular workload, duplicate keys change intermediate
  // cardinalities; the reference defines the truth.
  EXPECT_GT(reference->cardinality, 0u);
  EXPECT_LE(reference->cardinality, kCardinality);

  SimExecutor executor(&db);
  for (StrategyKind kind : kAllStrategies) {
    auto plan = MakeStrategy(kind)->Parallelize(*query, 8, TotalCostModel());
    ASSERT_TRUE(plan.ok());
    auto run = executor.Execute(*plan, SimExecOptions());
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->result, *reference) << StrategyName(kind);
  }
}

TEST(SkewTest, SkewSlowsExecutionDespiteLessTotalWork) {
  constexpr int kRelations = 6;
  constexpr uint32_t kCardinality = 3000;
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, kRelations,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 16, TotalCostModel());
  ASSERT_TRUE(plan.ok());

  Database uniform = MakeSkewedDatabase(kRelations, kCardinality, 23, 0.0);
  Database skewed = MakeSkewedDatabase(kRelations, kCardinality, 23, 1.0);
  SimExecutor uniform_exec(&uniform);
  SimExecutor skewed_exec(&skewed);
  auto fast = uniform_exec.Execute(*plan, SimExecOptions());
  auto slow = skewed_exec.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_GT(slow->response_ticks, fast->response_ticks);
}

// --- Memory-pressure simulation ----------------------------------------------------

TEST(MemoryPressureTest, TightBudgetSlowsMemoryHungryStrategies) {
  constexpr int kRelations = 5;
  constexpr uint32_t kCardinality = 2000;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, 25);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear, kRelations,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, 8, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  SimExecutor executor(&db);

  SimExecOptions roomy;
  SimExecOptions tight;
  tight.costs.memory_per_node_bytes = 64 * 1024;
  auto fast = executor.Execute(*plan, roomy);
  auto slow = executor.Execute(*plan, tight);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_GT(slow->response_ticks, fast->response_ticks);
  // Identical results regardless of the budget.
  EXPECT_EQ(slow->result, fast->result);
}

TEST(MemoryPressureTest, SpIsInsensitiveToModestBudgets) {
  // SP holds one build table per node at a time; a budget that fits one
  // table should not slow it down.
  constexpr uint32_t kCardinality = 2000;
  Database db = MakeWisconsinDatabase(4, kCardinality, 27);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 4,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 8, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  SimExecutor executor(&db);
  SimExecOptions roomy;
  SimExecOptions one_table;
  // One build table per node is ~ card/P tuples of 208B plus hash slots.
  one_table.costs.memory_per_node_bytes = 1024 * 1024;
  auto a = executor.Execute(*plan, roomy);
  auto b = executor.Execute(*plan, one_table);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->response_ticks, b->response_ticks);
}

}  // namespace
}  // namespace mjoin
