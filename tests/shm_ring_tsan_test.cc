#include <poll.h>
#include <sys/eventfd.h>

#include <cstring>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "net/shm_ring.h"

namespace mjoin {
namespace {

// Single-process, dual-thread exercise of the shm data plane: one real
// producer thread and one real consumer thread drive the SAME production
// ShmRing + doorbell code the forked process backend uses, but inside one
// address space — exactly what ThreadSanitizer can instrument. The
// cross-process fork harness is invisible to TSan; this file is the
// sanitizer's window onto the release/acquire publish protocol and the
// eventfd wakeup discipline (tools/run_sanitized_tests.sh thread mode).
//
// mjoin_check explores these orderings exhaustively on a model; this
// harness runs the real atomics on real cores. The two catch different
// liars: the model catches logic that happens to work on x86, TSan
// catches instrumentation-visible races the model seam might miss.

constexpr int kWaitMillis = 10000;  // watchdog: a lost wakeup fails, not hangs

std::vector<std::byte> Pattern(size_t bytes, uint32_t seed) {
  std::vector<std::byte> out(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::byte>((seed * 131 + i * 7 + 13) & 0xff);
  }
  return out;
}

// Blocks until the doorbell is readable; a timeout means a lost wakeup.
bool AwaitDoorbell(int fd) {
  pollfd pfd{fd, POLLIN, 0};
  return poll(&pfd, 1, kWaitMillis) > 0;
}

// Runs `total` records through a ring with both endpoints on their own
// thread, doorbell-paced in both directions: the consumer's bell says
// "records published", the producer's bell says "space released". Every
// push and every sleep is mediated by the same eventfd discipline the
// process backend's poll loops use; a lost wakeup trips the watchdog.
void RunBothEndpoints(uint32_t ring_bytes, uint32_t total,
                      uint32_t payload_step, uint32_t ring_every) {
  StatusOr<std::unique_ptr<ShmDataPlane>> made =
      ShmDataPlane::Create({{0, 1}}, /*num_endpoints=*/2, ring_bytes);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<ShmDataPlane> plane = std::move(made).value();
  ShmRing* ring = plane->RingTo(0, 1);
  ASSERT_NE(ring, nullptr);

  const uint32_t max_payload = ring->max_payload();
  std::thread producer([&] {
    uint32_t rung = 0;
    for (uint32_t i = 0; i < total;) {
      const uint32_t bytes = 8 + (i * payload_step) % (max_payload - 8);
      std::vector<std::byte> payload = Pattern(bytes, i);
      if (ring->TryPush(ShmRecordType::kData, payload.data(), payload.size(),
                        nullptr, 0)) {
        ++i;
        // Coalesce wakeups: ring the consumer only every `ring_every`
        // records (and on the last one). The eventfd counter absorbs the
        // burst; the consumer must drain the ring, not count the bells.
        if (++rung >= ring_every || i == total) {
          rung = 0;
          plane->RingDoorbell(1);
        }
        continue;
      }
      // Full: make sure the consumer is awake, then sleep on our own
      // bell until it releases space.
      plane->RingDoorbell(1);
      if (!AwaitDoorbell(plane->doorbell(0))) {
        ADD_FAILURE() << "producer: lost wakeup waiting for ring space";
        return;
      }
      plane->DrainDoorbell(0);
    }
  });

  // The consumer runs on the test thread. EXPECT+break (never ASSERT):
  // an early return here would abandon the joinable producer thread.
  uint32_t received = 0;
  bool ok = true;
  auto consume_one = [&](const ShmRecordView& rec) {
    const uint32_t bytes = 8 + (received * payload_step) % (max_payload - 8);
    EXPECT_EQ(rec.payload_bytes, bytes) << "record " << received;
    std::vector<std::byte> expect = Pattern(bytes, received);
    if (rec.payload_bytes != bytes ||
        std::memcmp(rec.payload, expect.data(), bytes) != 0) {
      ADD_FAILURE() << "payload mismatch at record " << received;
      ok = false;
    }
    ring->Release();
    plane->RingDoorbell(0);
    ++received;
  };
  while (received < total && ok) {
    ShmRecordView rec;
    StatusOr<bool> any = ring->TryRead(&rec);
    EXPECT_TRUE(any.ok()) << any.status();
    if (!any.ok()) break;
    if (*any) {
      consume_one(rec);
      continue;
    }
    // Drained: drain the bell FIRST, then re-check the ring before
    // sleeping — the order that makes a publish-then-ring from the
    // producer impossible to miss.
    plane->DrainDoorbell(1);
    StatusOr<bool> retry = ring->TryRead(&rec);
    EXPECT_TRUE(retry.ok()) << retry.status();
    if (!retry.ok()) break;
    if (*retry) {
      consume_one(rec);
      continue;
    }
    ok = AwaitDoorbell(plane->doorbell(1));
    EXPECT_TRUE(ok) << "consumer: lost wakeup at record " << received;
  }
  producer.join();
  EXPECT_EQ(received, total);
  EXPECT_TRUE(ring->Empty());
}

TEST(ShmRingTsanTest, BothEndpointsUnderRealThreads) {
  // Comfortable ring, every record rings the bell: steady-state traffic.
  RunBothEndpoints(/*ring_bytes=*/4096, /*total=*/20000,
                   /*payload_step=*/37, /*ring_every=*/1);
}

TEST(ShmRingTsanTest, CoalescedDoorbellsOnAFullRing) {
  // The §14 no-lost-wakeup invariant under stress: payloads near
  // max_payload keep the ring almost permanently full, so the producer
  // sleeps constantly, and bells are rung only every 7 records, so the
  // eventfd counter coalesces bursts into single wakes. Any window where
  // "ring is full" and "consumer asleep" can coexist hangs this test
  // into the watchdog instead of passing by luck.
  RunBothEndpoints(/*ring_bytes=*/4096, /*total=*/8000,
                   /*payload_step=*/499, /*ring_every=*/7);
}

}  // namespace
}  // namespace mjoin
