#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"

#include "opt/join_graph.h"
#include "opt/optimizer.h"

namespace mjoin {
namespace {

// --- JoinGraph ------------------------------------------------------------------

TEST(JoinGraphTest, BuildAndConnectivity) {
  JoinGraph graph;
  int a = graph.AddRelation("a", 100);
  int b = graph.AddRelation("b", 200);
  int c = graph.AddRelation("c", 300);
  EXPECT_FALSE(graph.IsConnected());
  ASSERT_TRUE(graph.AddKeyJoin(a, b).ok());
  EXPECT_FALSE(graph.IsConnected());
  ASSERT_TRUE(graph.AddKeyJoin(b, c).ok());
  EXPECT_TRUE(graph.IsConnected());
  EXPECT_EQ(graph.num_relations(), 3u);
}

TEST(JoinGraphTest, RejectsBadPredicates) {
  JoinGraph graph;
  int a = graph.AddRelation("a", 100);
  EXPECT_FALSE(graph.AddPredicate(a, a, 0.5).ok());
  EXPECT_FALSE(graph.AddPredicate(a, 7, 0.5).ok());
  int b = graph.AddRelation("b", 100);
  EXPECT_FALSE(graph.AddPredicate(a, b, 0.0).ok());
  EXPECT_FALSE(graph.AddPredicate(a, b, 1.5).ok());
}

TEST(JoinGraphTest, SelectivityBetweenDetectsCartesianProducts) {
  JoinGraph graph = JoinGraph::RegularChain(4, 1000);
  // {r0} x {r1}: one predicate.
  EXPECT_DOUBLE_EQ(graph.SelectivityBetween(0b0001, 0b0010), 1.0 / 1000);
  // {r0} x {r2}: no predicate -> cartesian.
  EXPECT_LT(graph.SelectivityBetween(0b0001, 0b0100), 0);
  // {r0,r1} x {r2,r3}: the r1-r2 edge.
  EXPECT_DOUBLE_EQ(graph.SelectivityBetween(0b0011, 0b1100), 1.0 / 1000);
}

TEST(JoinGraphTest, KeyJoinSelectivity) {
  JoinGraph graph;
  int a = graph.AddRelation("a", 100);
  int b = graph.AddRelation("b", 400);
  ASSERT_TRUE(graph.AddKeyJoin(a, b).ok());
  EXPECT_DOUBLE_EQ(graph.predicates()[0].selectivity, 1.0 / 400);
}

// --- DP optimizer ------------------------------------------------------------------

TEST(OptimizerTest, RegularChainPlanIsOptimalAndOneToOne) {
  JoinGraph graph = JoinGraph::RegularChain(10, 5000);
  TotalCostModel model;
  auto tree = OptimizeDp(graph, model, {});
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->num_joins(), 9u);
  // Every intermediate of the regular query has operand size.
  for (int id : tree->PostOrder()) {
    EXPECT_DOUBLE_EQ(tree->node(id).cardinality, 5000);
  }
  // The paper's observation: all trees over the regular query cost the
  // same, so the optimum equals the left-linear tree's cost.
  double expect = 8 * (2 * 5000 + 5000 + 2 * 5000) + (5000 + 5000 + 2 * 5000);
  EXPECT_DOUBLE_EQ(model.TotalCost(*tree), expect);
}

TEST(OptimizerTest, DpBeatsOrMatchesGreedy) {
  // A star query with skewed sizes: DP must not be worse than greedy.
  JoinGraph graph;
  int hub = graph.AddRelation("hub", 10000);
  for (int i = 0; i < 5; ++i) {
    int spoke = graph.AddRelation(StrCat("spoke", i), 100 * (i + 1));
    ASSERT_TRUE(graph.AddKeyJoin(hub, spoke).ok());
  }
  TotalCostModel model;
  auto dp = OptimizeDp(graph, model, {});
  auto greedy = OptimizeGreedy(graph, model);
  ASSERT_TRUE(dp.ok() && greedy.ok());
  EXPECT_LE(model.TotalCost(*dp), model.TotalCost(*greedy) + 1e-9);
}

TEST(OptimizerTest, LinearOnlyRestrictsShape) {
  JoinGraph graph = JoinGraph::RegularChain(8, 500);
  TotalCostModel model;
  OptimizerOptions options;
  options.linear_only = true;
  auto tree = OptimizeDp(graph, model, options);
  ASSERT_TRUE(tree.ok());
  // Every join must have at least one base-relation operand.
  for (int id : tree->PostOrder()) {
    const JoinTreeNode& node = tree->node(id);
    if (node.is_leaf()) continue;
    EXPECT_TRUE(tree->node(node.left).is_leaf() ||
                tree->node(node.right).is_leaf());
  }
  // Unrestricted search can only be equal or cheaper.
  auto bushy = OptimizeDp(graph, model, {});
  ASSERT_TRUE(bushy.ok());
  EXPECT_LE(model.TotalCost(*bushy), model.TotalCost(*tree) + 1e-9);
}

TEST(OptimizerTest, AvoidsCartesianProducts) {
  // Chain with a very selective middle edge: even so, no plan may join
  // disconnected subsets.
  JoinGraph graph;
  int a = graph.AddRelation("a", 10);
  int b = graph.AddRelation("b", 1000000);
  int c = graph.AddRelation("c", 10);
  ASSERT_TRUE(graph.AddPredicate(a, b, 1e-6).ok());
  ASSERT_TRUE(graph.AddPredicate(b, c, 1e-6).ok());
  auto tree = OptimizeDp(graph, TotalCostModel(), {});
  ASSERT_TRUE(tree.ok());
  // A cartesian a x c first would be cheap by cardinality but is banned:
  // the bottom join must involve b.
  for (int id : tree->PostOrder()) {
    const JoinTreeNode& node = tree->node(id);
    if (node.is_leaf() || !tree->node(node.left).is_leaf() ||
        !tree->node(node.right).is_leaf()) {
      continue;
    }
    std::set<std::string> rels = {tree->node(node.left).relation,
                                  tree->node(node.right).relation};
    EXPECT_TRUE(rels.contains("b"));
  }
}

TEST(OptimizerTest, RejectsDisconnectedGraphs) {
  JoinGraph graph;
  graph.AddRelation("a", 10);
  graph.AddRelation("b", 10);
  EXPECT_EQ(OptimizeDp(graph, TotalCostModel(), {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(OptimizeGreedy(graph, TotalCostModel()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OptimizerTest, GreedyHandlesLargerQueries) {
  JoinGraph graph = JoinGraph::RegularChain(24, 1000);
  auto tree = OptimizeGreedy(graph, TotalCostModel());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_joins(), 23u);
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(OptimizerTest, TwoPhaseFacadePicksDpThenGreedy) {
  TotalCostModel model;
  OptimizerOptions options;
  options.max_dp_relations = 6;
  auto small = OptimizeJoinOrder(JoinGraph::RegularChain(5, 100), model,
                                 options);
  auto large = OptimizeJoinOrder(JoinGraph::RegularChain(20, 100), model,
                                 options);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(small->num_joins(), 4u);
  EXPECT_EQ(large->num_joins(), 19u);
}

TEST(OptimizerTest, DpPrefersSmallIntermediates) {
  // a(1000) - b(1000) with selective edge, b - c(1000) with unselective
  // edge: the optimizer should join a-b first.
  JoinGraph graph;
  int a = graph.AddRelation("a", 1000);
  int b = graph.AddRelation("b", 1000);
  int c = graph.AddRelation("c", 1000);
  ASSERT_TRUE(graph.AddPredicate(a, b, 1e-6).ok());   // tiny result
  ASSERT_TRUE(graph.AddPredicate(b, c, 1e-3).ok());   // big result
  auto tree = OptimizeDp(graph, TotalCostModel(), {});
  ASSERT_TRUE(tree.ok());
  const JoinTreeNode& root = tree->node(tree->root());
  // One child is the a-b join, the other the c leaf.
  int internal = tree->node(root.left).is_leaf() ? root.right : root.left;
  std::set<std::string> bottom;
  const JoinTreeNode& join = tree->node(internal);
  bottom.insert(tree->node(join.left).relation);
  bottom.insert(tree->node(join.right).relation);
  EXPECT_EQ(bottom, (std::set<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace mjoin
