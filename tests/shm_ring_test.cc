#include "net/shm_ring.h"

#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <vector>

#include "engine/process_protocol.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// The SPSC ring under the process backend's shared-memory data plane:
// record framing, wrap pads, full/drain progress, corruption detection,
// and the producer/consumer memory-ordering contract under real threads.
// The ShmDataPlane directory (ring lookup, inbound lists, hash) and its
// agreement with ComputeRingDirectory are covered here too, so a protocol
// change that skews the worker-side directory fails in-process before it
// can fail across a fork.

struct AlignedFree {
  void operator()(std::byte* p) const { std::free(p); }
};

// ShmRingHdr carries alignas(64) cursors, so the backing store must be
// cache-line aligned like the real mmap'd region.
using RingMem = std::unique_ptr<std::byte[], AlignedFree>;

RingMem MakeRingMem(uint32_t data_bytes) {
  void* p = std::aligned_alloc(64, sizeof(ShmRingHdr) + data_bytes);
  MJOIN_CHECK(p != nullptr);
  std::memset(p, 0, sizeof(ShmRingHdr) + data_bytes);
  return RingMem(static_cast<std::byte*>(p));
}

std::vector<std::byte> Pattern(size_t bytes, uint32_t seed) {
  std::vector<std::byte> out(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::byte>((seed * 131 + i * 7 + 13) & 0xff);
  }
  return out;
}

TEST(ShmRingTest, RoundTripsRecords) {
  RingMem mem = MakeRingMem(4096);
  ShmRing ring;
  ring.Init(mem.get(), 4096);
  EXPECT_TRUE(ring.Empty());

  const size_t sizes[] = {0, 1, 7, 8, 64, 500};
  uint32_t seed = 0;
  for (size_t bytes : sizes) {
    std::vector<std::byte> payload = Pattern(bytes, ++seed);
    ASSERT_TRUE(ring.TryPush(ShmRecordType::kData, payload.data(),
                             payload.size(), nullptr, 0));
  }
  seed = 0;
  for (size_t bytes : sizes) {
    ShmRecordView rec;
    StatusOr<bool> any = ring.TryRead(&rec);
    ASSERT_TRUE(any.ok()) << any.status();
    ASSERT_TRUE(*any);
    EXPECT_EQ(rec.type, ShmRecordType::kData);
    ASSERT_EQ(rec.payload_bytes, bytes);
    std::vector<std::byte> expect = Pattern(bytes, ++seed);
    if (bytes > 0) {
      EXPECT_EQ(std::memcmp(rec.payload, expect.data(), bytes), 0);
    }
    ring.Release();
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(ShmRingTest, SplitsHeaderAndBody) {
  RingMem mem = MakeRingMem(4096);
  ShmRing ring;
  ring.Init(mem.get(), 4096);

  std::vector<std::byte> hdr = Pattern(24, 1);
  std::vector<std::byte> body = Pattern(100, 2);
  ASSERT_TRUE(ring.TryPush(ShmRecordType::kFragment, hdr.data(), hdr.size(),
                           body.data(), body.size()));
  ShmRecordView rec;
  StatusOr<bool> any = ring.TryRead(&rec);
  ASSERT_TRUE(any.ok() && *any);
  EXPECT_EQ(rec.type, ShmRecordType::kFragment);
  ASSERT_EQ(rec.payload_bytes, hdr.size() + body.size());
  EXPECT_EQ(std::memcmp(rec.payload, hdr.data(), hdr.size()), 0);
  EXPECT_EQ(std::memcmp(rec.payload + hdr.size(), body.data(), body.size()),
            0);
  ring.Release();
}

TEST(ShmRingTest, PadsAcrossTheWrapPoint) {
  // Odd-sized records force the tail through every wrap phase; each
  // published payload must come back intact with the pads invisible.
  RingMem mem = MakeRingMem(4096);
  ShmRing ring;
  ring.Init(mem.get(), 4096);

  uint32_t pushed = 0, popped = 0;
  const uint32_t total = 4000;
  while (popped < total) {
    const uint32_t bytes = 40 + (pushed % 7) * 33;
    if (pushed < total) {
      std::vector<std::byte> payload = Pattern(bytes, pushed);
      if (ring.TryPush(ShmRecordType::kData, payload.data(), payload.size(),
                       nullptr, 0)) {
        ++pushed;
      }
    }
    ShmRecordView rec;
    StatusOr<bool> any = ring.TryRead(&rec);
    ASSERT_TRUE(any.ok()) << any.status();
    if (!*any) continue;
    const uint32_t expect_bytes = 40 + (popped % 7) * 33;
    ASSERT_EQ(rec.payload_bytes, expect_bytes) << "record " << popped;
    std::vector<std::byte> expect = Pattern(expect_bytes, popped);
    EXPECT_EQ(std::memcmp(rec.payload, expect.data(), expect_bytes), 0);
    ring.Release();
    ++popped;
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(ShmRingTest, FullRingRefusesThenRecovers) {
  RingMem mem = MakeRingMem(4096);
  ShmRing ring;
  ring.Init(mem.get(), 4096);

  // max_payload is half the ring minus headers, so two records fill it.
  std::vector<std::byte> payload = Pattern(ring.max_payload(), 9);
  ASSERT_TRUE(ring.TryPush(ShmRecordType::kData, payload.data(),
                           payload.size(), nullptr, 0));
  ASSERT_TRUE(ring.TryPush(ShmRecordType::kData, payload.data(),
                           payload.size(), nullptr, 0));
  // A third cannot fit until space is released.
  EXPECT_FALSE(ring.TryPush(ShmRecordType::kData, payload.data(),
                            payload.size(), nullptr, 0));
  ShmRecordView rec;
  StatusOr<bool> any = ring.TryRead(&rec);
  ASSERT_TRUE(any.ok() && *any);
  ring.Release();
  // The progress guarantee behind max_payload(): one consumed record is
  // enough for the next max-payload record to fit, wrap pad included.
  EXPECT_TRUE(ring.TryPush(ShmRecordType::kData, payload.data(),
                           payload.size(), nullptr, 0));
}

TEST(ShmRingTest, UncommittedReservationIsInvisible) {
  // A producer killed between TryReserve and Commit must leave nothing
  // for the consumer — the record only exists once `tail` is published.
  RingMem mem = MakeRingMem(4096);
  ShmRing ring;
  ring.Init(mem.get(), 4096);

  std::byte* slot = ring.TryReserve(64);
  ASSERT_NE(slot, nullptr);
  std::memset(slot, 0xab, 64);
  ShmRecordView rec;
  StatusOr<bool> any = ring.TryRead(&rec);
  ASSERT_TRUE(any.ok());
  EXPECT_FALSE(*any);
}

TEST(ShmRingTest, AttachValidatesHeader) {
  RingMem mem = MakeRingMem(4096);
  ShmRing producer;
  producer.Init(mem.get(), 4096);

  ShmRing consumer;
  ASSERT_TRUE(consumer.Attach(mem.get()).ok());
  EXPECT_EQ(consumer.data_bytes(), 4096u);

  auto* hdr = reinterpret_cast<ShmRingHdr*>(mem.get());
  hdr->magic ^= 1;
  Status bad = consumer.Attach(mem.get());
  EXPECT_EQ(bad.code(), StatusCode::kUnavailable);
  hdr->magic ^= 1;
  hdr->data_bytes = 1000;  // not a power of two
  EXPECT_EQ(consumer.Attach(mem.get()).code(), StatusCode::kUnavailable);
}

TEST(ShmRingTest, DetectsCorruptCursorsAndHeaders) {
  {
    RingMem mem = MakeRingMem(4096);
    ShmRing ring;
    ring.Init(mem.get(), 4096);
    auto* hdr = reinterpret_cast<ShmRingHdr*>(mem.get());
    // Tail beyond head + capacity: impossible under the SPSC contract.
    hdr->tail.store(8192 + 8, std::memory_order_release);
    ShmRecordView rec;
    StatusOr<bool> any = ring.TryRead(&rec);
    EXPECT_EQ(any.status().code(), StatusCode::kUnavailable);
  }
  {
    RingMem mem = MakeRingMem(4096);
    ShmRing ring;
    ring.Init(mem.get(), 4096);
    std::vector<std::byte> payload = Pattern(64, 3);
    ASSERT_TRUE(ring.TryPush(ShmRecordType::kData, payload.data(),
                             payload.size(), nullptr, 0));
    // Smash the record's type field in place.
    auto* rec_hdr =
        reinterpret_cast<uint32_t*>(mem.get() + sizeof(ShmRingHdr));
    rec_hdr[1] = 0xdeadbeef;
    ShmRecordView rec;
    EXPECT_EQ(ring.TryRead(&rec).status().code(), StatusCode::kUnavailable);
  }
  {
    RingMem mem = MakeRingMem(4096);
    ShmRing ring;
    ring.Init(mem.get(), 4096);
    std::vector<std::byte> payload = Pattern(64, 4);
    ASSERT_TRUE(ring.TryPush(ShmRecordType::kData, payload.data(),
                             payload.size(), nullptr, 0));
    // Payload length pointing past the published tail.
    auto* rec_hdr =
        reinterpret_cast<uint32_t*>(mem.get() + sizeof(ShmRingHdr));
    rec_hdr[0] = 2048;
    ShmRecordView rec;
    EXPECT_EQ(ring.TryRead(&rec).status().code(), StatusCode::kUnavailable);
  }
}

TEST(ShmRingTest, SpscThreadStress) {
  // One real producer thread against one consumer: every record arrives
  // exactly once, in order, bit-identical. TSan runs this in CI, so the
  // release/acquire pairing itself is under test here, not just the data.
  RingMem mem = MakeRingMem(4096);
  ShmRing producer;
  producer.Init(mem.get(), 4096);
  ShmRing consumer;
  ASSERT_TRUE(consumer.Attach(mem.get()).ok());

  constexpr uint32_t total = 20000;
  std::thread t([&producer] {
    for (uint32_t i = 0; i < total;) {
      const uint32_t bytes = 8 + (i % 61) * 3;
      std::vector<std::byte> payload = Pattern(bytes, i);
      payload[0] = static_cast<std::byte>(i & 0xff);
      if (producer.TryPush(ShmRecordType::kData, payload.data(),
                           payload.size(), nullptr, 0)) {
        ++i;
      }
    }
  });
  for (uint32_t i = 0; i < total;) {
    ShmRecordView rec;
    StatusOr<bool> any = consumer.TryRead(&rec);
    ASSERT_TRUE(any.ok()) << any.status();
    if (!*any) continue;
    const uint32_t bytes = 8 + (i % 61) * 3;
    ASSERT_EQ(rec.payload_bytes, bytes) << "record " << i;
    std::vector<std::byte> expect = Pattern(bytes, i);
    expect[0] = static_cast<std::byte>(i & 0xff);
    ASSERT_EQ(std::memcmp(rec.payload, expect.data(), bytes), 0)
        << "record " << i;
    consumer.Release();
    ++i;
  }
  t.join();
  EXPECT_TRUE(consumer.Empty());
}

TEST(ShmRingTest, CursorsSurviveNumericWrapAtUint64Max) {
  // Cursors are free-running u64 counters, so a long-lived serve-mode
  // ring eventually crosses 2^64. Seed both cursors two laps below the
  // wrap and stream enough records that tail and head each cross it; the
  // record validation in TryRead must use modular arithmetic throughout
  // (`rec > tail - head`, never `head + rec > tail`, which overflows).
  constexpr uint32_t kBytes = 4096;
  RingMem mem = MakeRingMem(kBytes);
  ShmRing ring;
  ring.Init(mem.get(), kBytes);
  auto* hdr = reinterpret_cast<ShmRingHdr*>(mem.get());
  // 2 * kBytes below 2^64: ring offset 0, so no pad is implied by the
  // seed itself — pads still occur naturally as records wrap the region.
  const uint64_t base = ~uint64_t{0} - 2 * kBytes + 1;
  hdr->tail.store(base, std::memory_order_relaxed);
  hdr->head.store(base, std::memory_order_relaxed);

  uint32_t push_seed = 0;
  uint32_t read_seed = 0;
  // Push/drain in small bursts until both cursors are well past 2^64.
  while (ring.tail_cursor() >= base || ring.tail_cursor() < 3 * kBytes) {
    for (int burst = 0; burst < 3; ++burst) {
      const uint32_t bytes = 24 + (push_seed % 7) * 40;
      std::vector<std::byte> payload = Pattern(bytes, push_seed);
      if (!ring.TryPush(ShmRecordType::kData, payload.data(), payload.size(),
                        nullptr, 0)) {
        break;
      }
      ++push_seed;
    }
    for (;;) {
      ShmRecordView rec;
      StatusOr<bool> any = ring.TryRead(&rec);
      ASSERT_TRUE(any.ok()) << "tail=" << ring.tail_cursor()
                            << " head=" << ring.head_cursor() << ": "
                            << any.status();
      if (!*any) break;
      const uint32_t bytes = 24 + (read_seed % 7) * 40;
      ASSERT_EQ(rec.payload_bytes, bytes);
      std::vector<std::byte> expect = Pattern(bytes, read_seed);
      ASSERT_EQ(std::memcmp(rec.payload, expect.data(), bytes), 0)
          << "record " << read_seed << " near cursor " << ring.head_cursor();
      ring.Release();
      ++read_seed;
    }
    ASSERT_EQ(read_seed, push_seed);
    ASSERT_EQ(ring.head_cursor(), ring.tail_cursor());
  }
  // Both cursors crossed 2^64 and kept the full modular contract. The
  // last burst may overshoot the 3*kBytes loop threshold by a few
  // records, never by a full lap.
  EXPECT_LT(ring.tail_cursor(), 4 * uint64_t{kBytes});
  EXPECT_TRUE(ring.Empty());
}

TEST(ShmDataPlaneTest, DirectoryLookupsAndDoorbells) {
  std::vector<ShmRingSpec> specs = {{2, 0}, {2, 1}, {0, 2}, {1, 0}};
  auto plane = ShmDataPlane::Create(specs, /*num_endpoints=*/3,
                                    /*ring_bytes=*/4096);
  ASSERT_TRUE(plane.ok()) << plane.status();
  ShmDataPlane& p = **plane;
  EXPECT_EQ(p.num_rings(), 4u);
  EXPECT_EQ(p.ring_bytes(), 4096u);

  EXPECT_NE(p.RingTo(2, 0), nullptr);
  EXPECT_EQ(p.RingTo(0, 1), nullptr);
  EXPECT_EQ(p.RingIndexTo(2, 1), 1u);
  EXPECT_EQ(p.RingIndexTo(1, 2), kNoShmRing);
  ASSERT_EQ(p.InboundRings(0).size(), 2u);  // 2->0 and 1->0, spec order
  EXPECT_EQ(p.InboundRings(0)[0], 0u);
  EXPECT_EQ(p.InboundRings(0)[1], 3u);
  EXPECT_EQ(p.InboundRings(1).size(), 1u);

  // A record pushed on 2->0 comes back out of the same directory slot.
  std::vector<std::byte> payload = Pattern(32, 5);
  ASSERT_TRUE(p.RingTo(2, 0)->TryPush(ShmRecordType::kResultRows,
                                      payload.data(), payload.size(),
                                      nullptr, 0));
  ShmRecordView rec;
  StatusOr<bool> any = p.ring(p.RingIndexTo(2, 0))->TryRead(&rec);
  ASSERT_TRUE(any.ok() && *any);
  EXPECT_EQ(rec.type, ShmRecordType::kResultRows);

  // Doorbells are per-endpoint, non-blocking, and drainable.
  for (uint32_t e = 0; e < 3; ++e) EXPECT_GE(p.doorbell(e), 0);
  p.RingDoorbell(1);
  p.DrainDoorbell(1);
}

TEST(ShmDataPlaneTest, RejectsBadConfigurations) {
  EXPECT_EQ(ShmDataPlane::Create({{0, 1}}, 2, 1000).status().code(),
            StatusCode::kInvalidArgument);  // not a power of two
  EXPECT_EQ(ShmDataPlane::Create({{0, 1}}, 2, 2048).status().code(),
            StatusCode::kInvalidArgument);  // below the 4 KiB floor
  EXPECT_EQ(ShmDataPlane::Create({{0, 0}}, 2, 4096).status().code(),
            StatusCode::kInvalidArgument);  // self-ring
  EXPECT_EQ(ShmDataPlane::Create({{0, 2}}, 2, 4096).status().code(),
            StatusCode::kInvalidArgument);  // endpoint out of range
  EXPECT_EQ(
      ShmDataPlane::Create({{0, 1}, {0, 1}}, 2, 4096).status().code(),
      StatusCode::kInvalidArgument);  // duplicate ring
}

TEST(ShmDataPlaneTest, HashCoversEveryDirectoryDimension) {
  const std::vector<ShmRingSpec> specs = {{2, 0}, {0, 2}, {1, 2}};
  const uint64_t base = ShmDataPlane::HashDirectory(specs, 3, 4096);
  EXPECT_EQ(ShmDataPlane::HashDirectory(specs, 3, 4096), base);
  EXPECT_NE(ShmDataPlane::HashDirectory(specs, 4, 4096), base);
  EXPECT_NE(ShmDataPlane::HashDirectory(specs, 3, 8192), base);
  EXPECT_NE(ShmDataPlane::HashDirectory({{2, 0}, {1, 2}, {0, 2}}, 3, 4096),
            base);  // order-sensitive
  EXPECT_NE(ShmDataPlane::HashDirectory({{2, 0}, {0, 2}}, 3, 4096), base);
}

TEST(ShmDataPlaneTest, RingDirectoryMatchesAcrossIndependentDerivations) {
  // The coordinator and every worker derive the directory independently
  // (the worker from its re-hydrated plan); the kHello hash check assumes
  // the derivation is deterministic. Prove it for all four strategies.
  for (StrategyKind kind : kAllStrategies) {
    auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear,
                                         /*relations=*/5,
                                         /*cardinality=*/400);
    ASSERT_TRUE(query.ok());
    auto plan = MakeStrategy(kind)->Parallelize(*query, /*processors=*/8,
                                                TotalCostModel());
    ASSERT_TRUE(plan.ok()) << plan.status();
    for (uint32_t workers : {1u, 3u, 8u}) {
      std::vector<ShmRingSpec> a = ComputeRingDirectory(*plan, workers);
      std::vector<ShmRingSpec> b = ComputeRingDirectory(*plan, workers);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].from, b[i].from);
        EXPECT_EQ(a[i].to, b[i].to);
        // Every spec touches a live endpoint; relay rings lead.
        EXPECT_LE(a[i].from, workers);
        EXPECT_LE(a[i].to, workers);
        EXPECT_NE(a[i].from, a[i].to);
      }
      // Relay rings for every worker come first, coordinator at id W.
      ASSERT_GE(a.size(), 2 * workers);
      for (uint32_t w = 0; w < workers; ++w) {
        EXPECT_EQ(a[2 * w].from, workers);
        EXPECT_EQ(a[2 * w].to, w);
        EXPECT_EQ(a[2 * w + 1].from, w);
        EXPECT_EQ(a[2 * w + 1].to, workers);
      }
      EXPECT_EQ(ShmDataPlane::HashDirectory(a, workers + 1, 1u << 20),
                ShmDataPlane::HashDirectory(b, workers + 1, 1u << 20));
    }
  }
}

}  // namespace
}  // namespace mjoin
