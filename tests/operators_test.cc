#include <gtest/gtest.h>

#include <map>

#include "exec/hash_table.h"
#include "exec/pipelining_hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/simple_hash_join.h"
#include "storage/wisconsin.h"

namespace mjoin {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return std::make_shared<const Schema>(
      Schema({Column::Int32("k"), Column::Int32("v")}));
}

Relation MakeKv(std::vector<std::pair<int32_t, int32_t>> rows) {
  Relation rel(*TestSchema());
  for (auto [k, v] : rows) {
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(0, k);
    w.SetInt32(1, v);
  }
  return rel;
}

TupleBatch ToBatch(const Relation& rel) {
  TupleBatch batch(std::make_shared<const Schema>(rel.schema()));
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    batch.AppendRow(rel.tuple(i).data());
  }
  return batch;
}

/// OpContext that records emitted rows and total charged cost.
class RecordingContext : public OpContext {
 public:
  explicit RecordingContext(std::shared_ptr<const Schema> schema)
      : out(std::move(schema)) {}

  void Charge(Ticks cost) override { charged += cost; }
  void EmitRow(const std::byte* row) override { out.AppendRow(row); }
  const CostParams& costs() const override { return params; }

  CostParams params;
  Ticks charged = 0;
  TupleBatch out;
};

// --- JoinHashTable -----------------------------------------------------------

TEST(JoinHashTableTest, InsertAndProbe) {
  Relation rel = MakeKv({{1, 10}, {2, 20}, {3, 30}});
  JoinHashTable table(TestSchema(), 0);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    table.Insert(rel.tuple(i).data());
  }
  EXPECT_EQ(table.size(), 3u);
  int32_t found = -1;
  EXPECT_EQ(table.Probe(2, [&](const TupleRef& t) { found = t.GetInt32(1); }),
            1u);
  EXPECT_EQ(found, 20);
  EXPECT_EQ(table.Probe(99, [](const TupleRef&) {}), 0u);
}

TEST(JoinHashTableTest, DuplicateKeysAllFound) {
  Relation rel = MakeKv({{5, 1}, {5, 2}, {5, 3}, {6, 4}});
  JoinHashTable table(TestSchema(), 0);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    table.Insert(rel.tuple(i).data());
  }
  std::set<int32_t> values;
  EXPECT_EQ(table.Probe(5, [&](const TupleRef& t) {
    values.insert(t.GetInt32(1));
  }),
            3u);
  EXPECT_EQ(values, (std::set<int32_t>{1, 2, 3}));
}

TEST(JoinHashTableTest, GrowsBeyondInitialCapacity) {
  JoinHashTable table(TestSchema(), 0);
  Relation rel(*TestSchema());
  for (int32_t i = 0; i < 10000; ++i) {
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(0, i);
    w.SetInt32(1, i * 2);
  }
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    table.Insert(rel.tuple(i).data());
  }
  EXPECT_EQ(table.size(), 10000u);
  for (int32_t k : {0, 123, 9999}) {
    int32_t v = -1;
    EXPECT_EQ(table.Probe(k, [&](const TupleRef& t) { v = t.GetInt32(1); }),
              1u);
    EXPECT_EQ(v, k * 2);
  }
  EXPECT_GT(table.memory_bytes(), 10000u * 8u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Probe(5, [](const TupleRef&) {}), 0u);
}

TEST(JoinHashTableTest, NegativeKeys) {
  Relation rel = MakeKv({{-7, 70}, {0, 0}});
  JoinHashTable table(TestSchema(), 0);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    table.Insert(rel.tuple(i).data());
  }
  int32_t v = -1;
  EXPECT_EQ(table.Probe(-7, [&](const TupleRef& t) { v = t.GetInt32(1); }),
            1u);
  EXPECT_EQ(v, 70);
}

// --- ScanOp --------------------------------------------------------------------

TEST(ScanOpTest, EmitsAllTuplesInBatches) {
  Relation rel = MakeKv({});
  for (int32_t i = 0; i < 150; ++i) {
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(0, i);
    w.SetInt32(1, i);
  }
  ScanOp scan([&rel] { return &rel; }, TestSchema());
  RecordingContext ctx(TestSchema());
  ctx.params.batch_size = 64;
  scan.Open(&ctx);
  EXPECT_TRUE(scan.is_source());
  int produces = 0;
  while (scan.Produce(&ctx)) ++produces;
  ++produces;  // the final call
  EXPECT_EQ(produces, 3);  // 64 + 64 + 22
  EXPECT_TRUE(scan.finished());
  EXPECT_EQ(ctx.out.num_tuples(), 150u);
  EXPECT_EQ(ctx.charged, 150 * ctx.params.tuple_scan);
}

TEST(ScanOpTest, EmptyFragmentFinishesImmediately) {
  Relation rel = MakeKv({});
  ScanOp scan([&rel] { return &rel; }, TestSchema());
  RecordingContext ctx(TestSchema());
  scan.Open(&ctx);
  EXPECT_FALSE(scan.Produce(&ctx));
  EXPECT_TRUE(scan.finished());
  EXPECT_EQ(ctx.out.num_tuples(), 0u);
}

// --- Join specs -------------------------------------------------------------------

JoinSpec KvJoinSpec() {
  auto spec = MakeJoinSpec(TestSchema(), TestSchema(), 0, 0,
                           {JoinOutputColumn::Left(0),
                            JoinOutputColumn::Left(1),
                            JoinOutputColumn::Right(1)});
  MJOIN_CHECK(spec.ok()) << spec.status();
  return *std::move(spec);
}

TEST(JoinSpecTest, OutputSchemaDerivedWithDedupedNames) {
  JoinSpec spec = KvJoinSpec();
  EXPECT_EQ(spec.output_schema->num_columns(), 3u);
  EXPECT_EQ(spec.output_schema->column(0).name, "k");
  EXPECT_EQ(spec.output_schema->column(1).name, "v");
  EXPECT_EQ(spec.output_schema->column(2).name, "v_r");
}

TEST(JoinSpecTest, RejectsNonIntKeysAndBadColumns) {
  auto string_schema = std::make_shared<const Schema>(
      Schema({Column::FixedString("s", 4)}));
  EXPECT_FALSE(MakeJoinSpec(string_schema, TestSchema(), 0, 0, {}).ok());
  EXPECT_FALSE(MakeJoinSpec(TestSchema(), TestSchema(), 5, 0, {}).ok());
  EXPECT_FALSE(MakeJoinSpec(TestSchema(), TestSchema(), 0, 0,
                            {JoinOutputColumn{0, 9}})
                   .ok());
  EXPECT_FALSE(MakeJoinSpec(TestSchema(), TestSchema(), 0, 0,
                            {JoinOutputColumn{2, 0}})
                   .ok());
}

TEST(JoinSpecTest, NaturalConcatKeepsAllColumns) {
  auto spec = MakeNaturalConcatJoinSpec(TestSchema(), TestSchema(), 0, 0);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->output_schema->num_columns(), 4u);
}

// Expected multiset of (k, v_left, v_right) for a reference join.
std::multiset<std::tuple<int32_t, int32_t, int32_t>> BruteForceJoin(
    const Relation& left, const Relation& right) {
  std::multiset<std::tuple<int32_t, int32_t, int32_t>> out;
  for (size_t i = 0; i < left.num_tuples(); ++i) {
    for (size_t j = 0; j < right.num_tuples(); ++j) {
      if (left.tuple(i).GetInt32(0) == right.tuple(j).GetInt32(0)) {
        out.insert({left.tuple(i).GetInt32(0), left.tuple(i).GetInt32(1),
                    right.tuple(j).GetInt32(1)});
      }
    }
  }
  return out;
}

std::multiset<std::tuple<int32_t, int32_t, int32_t>> Collect(
    const TupleBatch& out) {
  std::multiset<std::tuple<int32_t, int32_t, int32_t>> rows;
  for (size_t i = 0; i < out.num_tuples(); ++i) {
    rows.insert({out.tuple(i).GetInt32(0), out.tuple(i).GetInt32(1),
                 out.tuple(i).GetInt32(2)});
  }
  return rows;
}

// --- SimpleHashJoinOp ----------------------------------------------------------

TEST(SimpleHashJoinTest, JoinsWithDuplicatesAndMisses) {
  Relation left = MakeKv({{1, 10}, {2, 20}, {2, 21}, {3, 30}});
  Relation right = MakeKv({{2, 200}, {2, 201}, {3, 300}, {4, 400}});
  SimpleHashJoinOp join(KvJoinSpec());
  RecordingContext ctx(join.output_schema());

  join.Consume(SimpleHashJoinOp::kBuildPort, ToBatch(left), &ctx);
  join.InputDone(SimpleHashJoinOp::kBuildPort, &ctx);
  EXPECT_TRUE(join.build_done());
  join.Consume(SimpleHashJoinOp::kProbePort, ToBatch(right), &ctx);
  join.InputDone(SimpleHashJoinOp::kProbePort, &ctx);

  EXPECT_TRUE(join.finished());
  EXPECT_EQ(Collect(ctx.out), BruteForceJoin(left, right));
  EXPECT_EQ(ctx.out.num_tuples(), 5u);  // 2x2 for key 2, 1 for key 3
}

TEST(SimpleHashJoinTest, BuffersEarlyProbeInput) {
  Relation left = MakeKv({{1, 10}});
  Relation right = MakeKv({{1, 100}});
  SimpleHashJoinOp join(KvJoinSpec());
  RecordingContext ctx(join.output_schema());

  // Probe arrives before the build is complete: must be buffered, not
  // joined yet.
  join.Consume(SimpleHashJoinOp::kProbePort, ToBatch(right), &ctx);
  EXPECT_EQ(ctx.out.num_tuples(), 0u);
  join.InputDone(SimpleHashJoinOp::kProbePort, &ctx);
  EXPECT_FALSE(join.finished());

  join.Consume(SimpleHashJoinOp::kBuildPort, ToBatch(left), &ctx);
  join.InputDone(SimpleHashJoinOp::kBuildPort, &ctx);
  EXPECT_TRUE(join.finished());
  EXPECT_EQ(ctx.out.num_tuples(), 1u);
}

TEST(SimpleHashJoinTest, ChargesBuildAndProbeCosts) {
  Relation left = MakeKv({{1, 10}, {2, 20}});
  Relation right = MakeKv({{1, 100}});
  SimpleHashJoinOp join(KvJoinSpec());
  RecordingContext ctx(join.output_schema());
  join.Consume(SimpleHashJoinOp::kBuildPort, ToBatch(left), &ctx);
  join.InputDone(SimpleHashJoinOp::kBuildPort, &ctx);
  join.Consume(SimpleHashJoinOp::kProbePort, ToBatch(right), &ctx);
  join.InputDone(SimpleHashJoinOp::kProbePort, &ctx);
  const CostParams& c = ctx.params;
  EXPECT_EQ(ctx.charged, 2 * (c.tuple_hash + c.tuple_build) +
                             1 * (c.tuple_hash + c.tuple_probe) +
                             1 * c.tuple_result);
}

TEST(SimpleHashJoinTest, TracksPeakMemory) {
  Relation left = MakeKv({{1, 10}, {2, 20}, {3, 30}});
  SimpleHashJoinOp join(KvJoinSpec());
  RecordingContext ctx(join.output_schema());
  join.Consume(SimpleHashJoinOp::kBuildPort, ToBatch(left), &ctx);
  EXPECT_GT(join.peak_memory_bytes(), 0u);
}

// --- PipeliningHashJoinOp ----------------------------------------------------------

TEST(PipeliningHashJoinTest, SymmetricArrivalOrderIrrelevant) {
  Relation left = MakeKv({{1, 10}, {2, 20}, {2, 21}});
  Relation right = MakeKv({{2, 200}, {1, 100}, {5, 500}});
  auto expected = BruteForceJoin(left, right);

  // Try several interleavings; results must always match.
  for (int order = 0; order < 3; ++order) {
    PipeliningHashJoinOp join(KvJoinSpec());
    RecordingContext ctx(join.output_schema());
    if (order == 0) {
      join.Consume(0, ToBatch(left), &ctx);
      join.Consume(1, ToBatch(right), &ctx);
    } else if (order == 1) {
      join.Consume(1, ToBatch(right), &ctx);
      join.Consume(0, ToBatch(left), &ctx);
    } else {
      // Tuple-by-tuple interleaving.
      for (size_t i = 0; i < 3; ++i) {
        Relation l1 = MakeKv({{left.tuple(i).GetInt32(0),
                               left.tuple(i).GetInt32(1)}});
        Relation r1 = MakeKv({{right.tuple(i).GetInt32(0),
                               right.tuple(i).GetInt32(1)}});
        join.Consume(0, ToBatch(l1), &ctx);
        join.Consume(1, ToBatch(r1), &ctx);
      }
    }
    join.InputDone(0, &ctx);
    join.InputDone(1, &ctx);
    EXPECT_TRUE(join.finished());
    EXPECT_EQ(Collect(ctx.out), expected) << "order " << order;
  }
}

TEST(PipeliningHashJoinTest, ProducesOutputBeforeEitherInputEnds) {
  PipeliningHashJoinOp join(KvJoinSpec());
  RecordingContext ctx(join.output_schema());
  join.Consume(0, ToBatch(MakeKv({{7, 70}})), &ctx);
  EXPECT_EQ(ctx.out.num_tuples(), 0u);
  join.Consume(1, ToBatch(MakeKv({{7, 700}})), &ctx);
  // Match emitted immediately, long before InputDone.
  EXPECT_EQ(ctx.out.num_tuples(), 1u);
  EXPECT_FALSE(join.finished());
}

TEST(PipeliningHashJoinTest, DropsObsoleteTableWhenOneSideEnds) {
  PipeliningHashJoinOp join(KvJoinSpec());
  RecordingContext ctx(join.output_schema());
  join.Consume(0, ToBatch(MakeKv({{1, 10}, {2, 20}})), &ctx);
  join.Consume(1, ToBatch(MakeKv({{1, 100}})), &ctx);
  EXPECT_EQ(join.left_table_size(), 2u);
  EXPECT_EQ(join.right_table_size(), 1u);
  // Left input ends: the right table will never be probed again.
  join.InputDone(0, &ctx);
  EXPECT_EQ(join.right_table_size(), 0u);
  // Late right tuples still probe the left table correctly.
  join.Consume(1, ToBatch(MakeKv({{2, 200}})), &ctx);
  EXPECT_EQ(ctx.out.num_tuples(), 2u);
  join.InputDone(1, &ctx);
  EXPECT_TRUE(join.finished());
}

TEST(PipeliningHashJoinTest, MatchesSimpleJoinOnWisconsinData) {
  auto wisc = std::make_shared<const Schema>(WisconsinSchema());
  Relation left = GenerateWisconsin(2000, 1);
  Relation right = GenerateWisconsin(2000, 2);
  auto spec = MakeJoinSpec(wisc, wisc, 0, 0,
                           {JoinOutputColumn::Left(kUnique2),
                            JoinOutputColumn::Right(kUnique2)});
  ASSERT_TRUE(spec.ok());

  SimpleHashJoinOp simple(*spec);
  RecordingContext ctx_simple(simple.output_schema());
  simple.Consume(0, ToBatch(left), &ctx_simple);
  simple.InputDone(0, &ctx_simple);
  simple.Consume(1, ToBatch(right), &ctx_simple);
  simple.InputDone(1, &ctx_simple);

  PipeliningHashJoinOp pipelining(*spec);
  RecordingContext ctx_pipe(pipelining.output_schema());
  pipelining.Consume(1, ToBatch(right), &ctx_pipe);
  pipelining.Consume(0, ToBatch(left), &ctx_pipe);
  pipelining.InputDone(0, &ctx_pipe);
  pipelining.InputDone(1, &ctx_pipe);

  ASSERT_EQ(ctx_simple.out.num_tuples(), 2000u);
  ASSERT_EQ(ctx_pipe.out.num_tuples(), 2000u);
  std::multiset<std::pair<int32_t, int32_t>> a, b;
  for (size_t i = 0; i < 2000; ++i) {
    a.insert({ctx_simple.out.tuple(i).GetInt32(0),
              ctx_simple.out.tuple(i).GetInt32(1)});
    b.insert({ctx_pipe.out.tuple(i).GetInt32(0),
              ctx_pipe.out.tuple(i).GetInt32(1)});
  }
  EXPECT_EQ(a, b);
}

// --- Cancellation-time cost accounting ---------------------------------------

/// Context that reports cancellation once `cancel_after` rows have been
/// emitted — the shape of a real mid-batch teardown, where the host's
/// cancelled() flips while the operator is inside its result loop.
class CancellingContext : public RecordingContext {
 public:
  CancellingContext(std::shared_ptr<const Schema> schema, size_t cancel_after)
      : RecordingContext(std::move(schema)), cancel_after_(cancel_after) {}

  bool cancelled() const override {
    return out.num_tuples() >= cancel_after_;
  }

 private:
  size_t cancel_after_;
};

/// n distinct keys 0..n-1 with values 10*key.
Relation MakeKvRange(int32_t n) {
  std::vector<std::pair<int32_t, int32_t>> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) rows.push_back({i, i * 10});
  return MakeKv(std::move(rows));
}

// A cancellation in the middle of a probe batch must charge exactly the
// tuples processed before the break, not the full batch. Probing is
// chunked (kProbeChunk tuples between cancellation polls), so the break
// lands on the first chunk boundary after the cancel fires.
TEST(SimpleHashJoinTest, CancellationChargesOnlyProcessedTuples) {
  const size_t chunk = SimpleHashJoinOp::kProbeChunk;
  const int32_t n = static_cast<int32_t>(chunk) + 50;
  Relation build = MakeKvRange(n);
  Relation probe = MakeKvRange(n);
  SimpleHashJoinOp join(KvJoinSpec());
  CancellingContext ctx(join.output_schema(), /*cancel_after=*/1);
  join.Consume(SimpleHashJoinOp::kBuildPort, ToBatch(build), &ctx);
  join.InputDone(SimpleHashJoinOp::kBuildPort, &ctx);
  Ticks before_probe = ctx.charged;
  join.Consume(SimpleHashJoinOp::kProbePort, ToBatch(probe), &ctx);
  // Each probe tuple matches exactly once. The cancel fires on the first
  // match, but the operator only polls between chunks: one full chunk is
  // probed (and charged), the remaining 50 tuples are skipped unbilled.
  EXPECT_EQ(ctx.out.num_tuples(), chunk);
  const CostParams& c = ctx.params;
  const Ticks probed = static_cast<Ticks>(chunk);
  EXPECT_EQ(ctx.charged - before_probe,
            probed * (c.tuple_hash + c.tuple_probe) + probed * c.tuple_result);
}

TEST(PipeliningHashJoinTest, CancellationChargesOnlyProcessedTuples) {
  const size_t chunk = PipeliningHashJoinOp::kChunk;
  const int32_t n = static_cast<int32_t>(chunk) + 50;
  Relation left = MakeKvRange(n);
  Relation right = MakeKvRange(n);
  PipeliningHashJoinOp join(KvJoinSpec());
  CancellingContext ctx(join.output_schema(), /*cancel_after=*/1);
  join.Consume(PipeliningHashJoinOp::kLeftPort, ToBatch(left), &ctx);
  Ticks after_left = ctx.charged;
  const CostParams& c = ctx.params;
  // Left went first against an empty right table: all n tuples hashed,
  // probed (no matches), and inserted.
  EXPECT_EQ(after_left, static_cast<Ticks>(n) *
                            (c.tuple_hash + c.tuple_probe + c.tuple_build));
  join.Consume(PipeliningHashJoinOp::kRightPort, ToBatch(right), &ctx);
  // Each right tuple matches once; the cancel fires on the first result
  // but is only polled between chunks, so exactly one chunk is processed
  // (hash+probe+insert each) and the remaining 50 tuples charge nothing.
  EXPECT_EQ(ctx.out.num_tuples(), chunk);
  const Ticks probed = static_cast<Ticks>(chunk);
  EXPECT_EQ(ctx.charged - after_left,
            probed * (c.tuple_hash + c.tuple_probe + c.tuple_build) +
                probed * c.tuple_result);
}

// A batch that arrives already-cancelled must charge nothing.
TEST(PipeliningHashJoinTest, PreCancelledBatchChargesNothing) {
  PipeliningHashJoinOp join(KvJoinSpec());
  CancellingContext ctx(join.output_schema(), /*cancel_after=*/0);
  join.Consume(PipeliningHashJoinOp::kLeftPort,
               ToBatch(MakeKv({{1, 10}})), &ctx);
  EXPECT_EQ(ctx.charged, 0);
  EXPECT_EQ(ctx.out.num_tuples(), 0u);
}

// --- Peak-memory sampling ----------------------------------------------------

// InputDone drops the side that will never be probed again; the peak must
// be sampled before that Clear(), while both tables are still resident.
TEST(PipeliningHashJoinTest, PeakMemorySampledBeforeInputDoneClears) {
  Relation left = MakeKv({{1, 10}, {2, 20}, {3, 30}});
  Relation right = MakeKv({{4, 40}, {5, 50}});
  PipeliningHashJoinOp join(KvJoinSpec());
  RecordingContext ctx(join.output_schema());
  join.Consume(PipeliningHashJoinOp::kLeftPort, ToBatch(left), &ctx);
  join.Consume(PipeliningHashJoinOp::kRightPort, ToBatch(right), &ctx);
  size_t both_resident = join.memory_bytes();
  ASSERT_GT(both_resident, 0u);
  join.InputDone(PipeliningHashJoinOp::kLeftPort, &ctx);
  // The right table was cleared, so current memory dropped...
  EXPECT_LT(join.memory_bytes(), both_resident);
  // ...but the reported peak still covers the both-tables high-water mark.
  EXPECT_GE(join.peak_memory_bytes(), both_resident);
}

// --- Hash-table lifetime counters --------------------------------------------

TEST(JoinHashTableTest, LifetimeCountersSurviveClear) {
  JoinHashTable table(TestSchema(), 0);
  Relation rel = MakeKv({{1, 10}, {2, 20}, {3, 30}});
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    table.Insert(rel.tuple(i).data());
  }
  EXPECT_EQ(table.total_inserted(), 3u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.total_inserted(), 3u);  // lifetime, not current fill
}

TEST(JoinHashTableTest, CountsProbeCollisions) {
  // All keys hash into distinct buckets only if the hash is perfect; with
  // enough keys sharing a table some linear-probing steps are guaranteed
  // once the fill is non-trivial. Use duplicate keys: probing key 5 walks
  // its own chain without counting matches as collisions.
  JoinHashTable table(TestSchema(), 0);
  Relation rel = MakeKv({{5, 1}, {5, 2}, {5, 3}});
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    table.Insert(rel.tuple(i).data());
  }
  uint64_t before = table.collisions();
  EXPECT_EQ(table.Probe(5, [](const TupleRef&) {}), 3u);
  // Matches are not collisions: probing the duplicate chain adds none.
  EXPECT_EQ(table.collisions(), before);
  // A missing key that lands in the occupied run must step past the
  // occupants, counting one collision per mismatching slot it visits.
  size_t steps_before_probe = table.collisions();
  table.Probe(99, [](const TupleRef&) {});
  EXPECT_GE(table.collisions(), steps_before_probe);
}

// --- ProjectOp ----------------------------------------------------------------

TEST(ProjectOpTest, SubsetsAndReorders) {
  auto project = ProjectOp::Make(TestSchema(), {1, 0});
  ASSERT_TRUE(project.ok());
  RecordingContext ctx((*project)->output_schema());
  (*project)->Consume(0, ToBatch(MakeKv({{1, 10}, {2, 20}})), &ctx);
  (*project)->InputDone(0, &ctx);
  EXPECT_TRUE((*project)->finished());
  ASSERT_EQ(ctx.out.num_tuples(), 2u);
  EXPECT_EQ(ctx.out.tuple(0).GetInt32(0), 10);
  EXPECT_EQ(ctx.out.tuple(0).GetInt32(1), 1);
}

TEST(ProjectOpTest, RejectsOutOfRangeColumn) {
  EXPECT_FALSE(ProjectOp::Make(TestSchema(), {7}).ok());
}

}  // namespace
}  // namespace mjoin
