#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

struct Case {
  StrategyKind strategy;
  QueryShape shape;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string shape = ShapeName(info.param.shape);
  for (char& c : shape) {
    if (c == ' ') c = '_';
  }
  return StrategyName(info.param.strategy) + "_" + shape;
}

/// End-to-end: every strategy on every query shape must produce exactly
/// the multiset of tuples the single-threaded reference executor produces.
class StrategyShapeTest : public testing::TestWithParam<Case> {};

TEST_P(StrategyShapeTest, MatchesReferenceResult) {
  constexpr int kRelations = 6;
  constexpr uint32_t kCardinality = 200;
  constexpr uint32_t kProcessors = 12;

  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/42);
  auto query_or = MakeWisconsinChainQuery(GetParam().shape, kRelations,
                                          kCardinality);
  ASSERT_TRUE(query_or.ok()) << query_or.status();
  const JoinQuery& query = *query_or;

  auto reference_or = ReferenceSummary(query, db);
  ASSERT_TRUE(reference_or.ok()) << reference_or.status();
  // The 1:1 chain query keeps result size == operand size, on every shape.
  EXPECT_EQ(reference_or->cardinality, kCardinality);

  auto strategy = MakeStrategy(GetParam().strategy);
  auto plan_or =
      strategy->Parallelize(query, kProcessors, TotalCostModel());
  ASSERT_TRUE(plan_or.ok()) << plan_or.status();
  ASSERT_TRUE(plan_or->Validate().ok()) << plan_or->Validate();

  SimExecutor executor(&db);
  SimExecOptions options;
  auto result_or = executor.Execute(*plan_or, options);
  ASSERT_TRUE(result_or.ok()) << result_or.status();

  EXPECT_EQ(result_or->result.cardinality, reference_or->cardinality);
  EXPECT_EQ(result_or->result.checksum, reference_or->checksum)
      << "strategy produced a different tuple multiset than the reference";
  EXPECT_GT(result_or->response_ticks, 0);
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      cases.push_back({strategy, shape});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategiesAllShapes, StrategyShapeTest,
                         testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace mjoin
