#include <gtest/gtest.h>

#include "storage/partitioner.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace mjoin {
namespace {

Schema TestSchema() {
  return Schema({Column::Int32("id"), Column::Int32("value"),
                 Column::FixedString("name", 8)});
}

// --- Schema -------------------------------------------------------------------

TEST(SchemaTest, LayoutOffsetsAndSize) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.tuple_size(), 16u);
  EXPECT_EQ(schema.offset(0), 0u);
  EXPECT_EQ(schema.offset(1), 4u);
  EXPECT_EQ(schema.offset(2), 8u);
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema schema = TestSchema();
  auto idx = schema.ColumnIndex("value");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(schema.ColumnIndex("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, EqualityIsStructural) {
  EXPECT_EQ(TestSchema(), TestSchema());
  Schema other({Column::Int32("id")});
  EXPECT_FALSE(TestSchema() == other);
}

TEST(SchemaTest, ToStringShowsTypes) {
  EXPECT_EQ(TestSchema().ToString(), "(id:i32, value:i32, name:str8)");
}

// --- Tuple --------------------------------------------------------------------

TEST(TupleTest, WriteAndReadRoundTrip) {
  Schema schema = TestSchema();
  std::vector<std::byte> buffer(schema.tuple_size());
  TupleWriter writer(buffer.data(), &schema);
  writer.SetInt32(0, 42);
  writer.SetInt32(1, -7);
  writer.SetString(2, "abc");

  TupleRef ref(buffer.data(), &schema);
  EXPECT_EQ(ref.GetInt32(0), 42);
  EXPECT_EQ(ref.GetInt32(1), -7);
  EXPECT_EQ(ref.GetString(2), "abc     ");  // space padded to width 8
}

TEST(TupleTest, StringTruncatedToWidth) {
  Schema schema = TestSchema();
  std::vector<std::byte> buffer(schema.tuple_size());
  TupleWriter writer(buffer.data(), &schema);
  writer.SetString(2, "abcdefghijklmn");
  TupleRef ref(buffer.data(), &schema);
  EXPECT_EQ(ref.GetString(2), "abcdefgh");
}

TEST(TupleTest, CopyColumnBetweenSchemas) {
  Schema schema = TestSchema();
  std::vector<std::byte> src(schema.tuple_size()), dst(schema.tuple_size());
  TupleWriter ws(src.data(), &schema);
  ws.SetInt32(1, 99);
  TupleWriter wd(dst.data(), &schema);
  wd.CopyColumn(0, TupleRef(src.data(), &schema), 1);
  EXPECT_EQ(TupleRef(dst.data(), &schema).GetInt32(0), 99);
}

TEST(TupleTest, ToStringTrimsPadding) {
  Schema schema = TestSchema();
  std::vector<std::byte> buffer(schema.tuple_size());
  TupleWriter writer(buffer.data(), &schema);
  writer.SetInt32(0, 1);
  writer.SetInt32(1, 2);
  writer.SetString(2, "hi");
  EXPECT_EQ(TupleRef(buffer.data(), &schema).ToString(), "(1, 2, 'hi')");
}

// --- Relation -----------------------------------------------------------------

Relation MakeRelation(int n) {
  Relation rel(TestSchema());
  for (int i = 0; i < n; ++i) {
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(0, i);
    w.SetInt32(1, i * 10);
    w.SetString(2, "row");
  }
  return rel;
}

TEST(RelationTest, AppendAndAccess) {
  Relation rel = MakeRelation(5);
  EXPECT_EQ(rel.num_tuples(), 5u);
  EXPECT_EQ(rel.byte_size(), 5u * 16u);
  EXPECT_EQ(rel.tuple(3).GetInt32(0), 3);
  EXPECT_EQ(rel.tuple(3).GetInt32(1), 30);
}

TEST(RelationTest, CloneIsDeep) {
  Relation rel = MakeRelation(2);
  Relation copy = rel.Clone();
  EXPECT_EQ(copy.num_tuples(), 2u);
  // Mutating the copy must not affect the original.
  TupleWriter w = copy.AppendTuple();
  w.SetInt32(0, 100);
  EXPECT_EQ(rel.num_tuples(), 2u);
  EXPECT_EQ(copy.num_tuples(), 3u);
}

TEST(RelationTest, AppendRowCopiesBytes) {
  Relation a = MakeRelation(1);
  Relation b(TestSchema());
  b.AppendRow(a.tuple(0).data());
  EXPECT_EQ(b.tuple(0).GetInt32(1), 0);
}

TEST(RelationTest, EmptyRelation) {
  Relation rel(TestSchema());
  EXPECT_EQ(rel.num_tuples(), 0u);
  Relation defaulted;
  EXPECT_EQ(defaulted.num_tuples(), 0u);
}

// --- Partitioner ----------------------------------------------------------------

TEST(PartitionerTest, HashPartitionIsCompleteAndDisjoint) {
  Relation rel = MakeRelation(1000);
  auto parts = HashPartition(rel, 0, 7);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 7u);
  size_t total = 0;
  for (const Relation& frag : *parts) total += frag.num_tuples();
  EXPECT_EQ(total, 1000u);
}

TEST(PartitionerTest, HashPartitionRoutesByFragmentOf) {
  Relation rel = MakeRelation(500);
  auto parts = HashPartition(rel, 0, 5);
  ASSERT_TRUE(parts.ok());
  for (uint32_t f = 0; f < 5; ++f) {
    const Relation& frag = (*parts)[f];
    for (size_t i = 0; i < frag.num_tuples(); ++i) {
      EXPECT_EQ(FragmentOf(frag.tuple(i).GetInt32(0), 5), f);
    }
  }
}

TEST(PartitionerTest, HashPartitionBalancedEnough) {
  Relation rel = MakeRelation(10000);
  auto parts = HashPartition(rel, 0, 10);
  ASSERT_TRUE(parts.ok());
  for (const Relation& frag : *parts) {
    EXPECT_GT(frag.num_tuples(), 800u);
    EXPECT_LT(frag.num_tuples(), 1200u);
  }
}

TEST(PartitionerTest, RejectsBadArguments) {
  Relation rel = MakeRelation(10);
  EXPECT_EQ(HashPartition(rel, 0, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(HashPartition(rel, 9, 2).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(HashPartition(rel, 2, 2).status().code(),
            StatusCode::kInvalidArgument);  // string column
}

TEST(PartitionerTest, RoundRobinSpreadsEvenly) {
  Relation rel = MakeRelation(10);
  std::vector<Relation> parts = RoundRobinPartition(rel, 3);
  EXPECT_EQ(parts[0].num_tuples(), 4u);
  EXPECT_EQ(parts[1].num_tuples(), 3u);
  EXPECT_EQ(parts[2].num_tuples(), 3u);
}

TEST(PartitionerTest, RangePartitionRespectsBounds) {
  Relation rel = MakeRelation(100);
  auto parts = RangePartition(rel, 0, 4, 0, 99);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ((*parts)[0].num_tuples(), 25u);
  EXPECT_EQ((*parts)[3].num_tuples(), 25u);
  // Out-of-range key detected.
  EXPECT_EQ(RangePartition(rel, 0, 4, 10, 99).status().code(),
            StatusCode::kOutOfRange);
}

TEST(PartitionerTest, ConcatRestoresAllTuples) {
  Relation rel = MakeRelation(123);
  auto parts = HashPartition(rel, 0, 4);
  ASSERT_TRUE(parts.ok());
  Relation merged = ConcatFragments(*parts);
  EXPECT_EQ(merged.num_tuples(), 123u);
}

}  // namespace
}  // namespace mjoin
