#include <gtest/gtest.h>

#include <set>

#include "plan/allocation.h"
#include "plan/cost_model.h"
#include "plan/join_tree.h"
#include "plan/query.h"
#include "plan/segments.h"
#include "plan/shapes.h"
#include "plan/transform.h"
#include "plan/wisconsin_query.h"

namespace mjoin {
namespace {

std::vector<std::string> Rels(int n) { return WisconsinRelationNames(n); }

// --- JoinTree ------------------------------------------------------------------

TEST(JoinTreeTest, BuildAndNavigate) {
  JoinTree tree;
  int a = tree.AddLeaf("A", 100);
  int b = tree.AddLeaf("B", 100);
  int j = tree.AddJoin(a, b, 100);
  EXPECT_EQ(tree.root(), j);
  EXPECT_EQ(tree.num_leaves(), 2u);
  EXPECT_EQ(tree.num_joins(), 1u);
  EXPECT_EQ(tree.node(a).parent, j);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(JoinTreeTest, PostOrderChildrenBeforeParents) {
  auto tree = BuildShape(QueryShape::kWideBushy, Rels(10), 1000);
  ASSERT_TRUE(tree.ok());
  std::vector<int> order = tree->PostOrder();
  std::vector<bool> seen(tree->num_nodes(), false);
  for (int id : order) {
    const JoinTreeNode& node = tree->node(id);
    if (!node.is_leaf()) {
      EXPECT_TRUE(seen[static_cast<size_t>(node.left)]);
      EXPECT_TRUE(seen[static_cast<size_t>(node.right)]);
    }
    seen[static_cast<size_t>(id)] = true;
  }
  EXPECT_EQ(order.size(), tree->num_nodes());
}

TEST(JoinTreeTest, ValidateCatchesUnreachableNodes) {
  JoinTree tree;
  int a = tree.AddLeaf("A", 10);
  int b = tree.AddLeaf("B", 10);
  tree.AddLeaf("orphan", 10);
  tree.SetRoot(tree.AddJoin(a, b, 10));
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(JoinTreeTest, SwapChildrenFlipsBuildProbe) {
  JoinTree tree;
  int a = tree.AddLeaf("A", 10);
  int b = tree.AddLeaf("B", 10);
  int j = tree.AddJoin(a, b, 10);
  tree.SwapChildren(j);
  EXPECT_EQ(tree.node(j).left, b);
  EXPECT_EQ(tree.node(j).right, a);
  EXPECT_TRUE(tree.Validate().ok());
}

// --- Shapes -------------------------------------------------------------------

TEST(ShapesTest, AllShapesHaveNMinusOneJoins) {
  for (QueryShape shape : kAllShapes) {
    for (int n : {2, 3, 5, 10, 17}) {
      auto tree = BuildShape(shape, Rels(n), 1000);
      ASSERT_TRUE(tree.ok()) << ShapeName(shape) << " n=" << n;
      EXPECT_EQ(tree->num_joins(), static_cast<size_t>(n - 1));
      EXPECT_EQ(tree->num_leaves(), static_cast<size_t>(n));
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ShapesTest, LinearTreesHaveMaximalDepth) {
  auto left = BuildShape(QueryShape::kLeftLinear, Rels(10), 1000);
  auto right = BuildShape(QueryShape::kRightLinear, Rels(10), 1000);
  ASSERT_TRUE(left.ok() && right.ok());
  EXPECT_EQ(left->JoinDepth(), 9);
  EXPECT_EQ(right->JoinDepth(), 9);
  // Left-linear: every right child is a leaf; right-linear: mirrored.
  for (int id : left->PostOrder()) {
    if (!left->node(id).is_leaf()) {
      EXPECT_TRUE(left->node(left->node(id).right).is_leaf());
    }
  }
  for (int id : right->PostOrder()) {
    if (!right->node(id).is_leaf()) {
      EXPECT_TRUE(right->node(right->node(id).left).is_leaf());
    }
  }
}

TEST(ShapesTest, WideBushyIsShallow) {
  auto tree = BuildShape(QueryShape::kWideBushy, Rels(10), 1000);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->JoinDepth(), 4);  // ceil(log2(10))
}

TEST(ShapesTest, OrientedBushyDepthBetweenLinearAndWide) {
  auto left = BuildShape(QueryShape::kLeftOrientedBushy, Rels(10), 1000);
  auto right = BuildShape(QueryShape::kRightOrientedBushy, Rels(10), 1000);
  ASSERT_TRUE(left.ok() && right.ok());
  EXPECT_EQ(left->JoinDepth(), 5);
  EXPECT_EQ(right->JoinDepth(), 5);
}

TEST(ShapesTest, RejectsDegenerateInput) {
  EXPECT_FALSE(BuildShape(QueryShape::kWideBushy, {"one"}, 1000).ok());
  EXPECT_FALSE(BuildShape(QueryShape::kWideBushy, Rels(3), 0).ok());
}

TEST(ShapesTest, Figure2TreeMatchesPaper) {
  std::vector<std::pair<int, int>> labels;
  JoinTree tree = BuildFigure2ExampleTree(&labels);
  EXPECT_EQ(tree.num_leaves(), 5u);
  EXPECT_EQ(tree.num_joins(), 4u);
  ASSERT_EQ(labels.size(), 4u);
  // Labels are 1, 5, 3, 4 (relative work).
  std::multiset<int> weights;
  for (auto [node, w] : labels) weights.insert(w);
  EXPECT_EQ(weights, (std::multiset<int>{1, 3, 4, 5}));
}

// --- Cost model ----------------------------------------------------------------

TEST(CostModelTest, PaperFormula) {
  TotalCostModel model;
  // Two base operands: 1*n1 + 1*n2 + 2*r.
  EXPECT_DOUBLE_EQ(model.JoinCost(100, true, 200, true, 50), 400);
  // Intermediate operands cost double.
  EXPECT_DOUBLE_EQ(model.JoinCost(100, false, 200, false, 50), 700);
  EXPECT_DOUBLE_EQ(model.JoinCost(100, true, 200, false, 50), 600);
}

TEST(CostModelTest, AnnotateFillsSubtreeCosts) {
  auto tree = BuildShape(QueryShape::kLeftLinear, Rels(3), 100);
  ASSERT_TRUE(tree.ok());
  TotalCostModel model;
  model.Annotate(&*tree);
  const JoinTreeNode& root = tree->node(tree->root());
  // Bottom join: 100+100+200 = 400; top: 2*100 (intermediate) + 100 + 200.
  EXPECT_DOUBLE_EQ(tree->node(root.left).join_cost, 400);
  EXPECT_DOUBLE_EQ(root.join_cost, 500);
  EXPECT_DOUBLE_EQ(root.subtree_cost, 900);
  EXPECT_DOUBLE_EQ(model.TotalCost(*tree), 900);
}

// The paper's workload property: all join trees over the regular chain
// query have the same total execution cost.
TEST(CostModelTest, AllShapesSameTotalCostOnRegularQuery) {
  TotalCostModel model;
  double expected = -1;
  for (QueryShape shape : kAllShapes) {
    auto tree = BuildShape(shape, Rels(10), 5000);
    ASSERT_TRUE(tree.ok());
    double total = model.TotalCost(*tree);
    if (expected < 0) {
      expected = total;
    } else {
      EXPECT_DOUBLE_EQ(total, expected) << ShapeName(shape);
    }
  }
}

TEST(CostModelTest, UniformCoefficientsIgnoreShape) {
  TotalCostModel model(JoinCostCoefficients::Uniform());
  EXPECT_DOUBLE_EQ(model.JoinCost(10, true, 10, true, 10),
                   model.JoinCost(10, false, 10, false, 10));
}

// --- Allocation -----------------------------------------------------------------

TEST(AllocationTest, ExactSumAndMinimumOne) {
  auto counts = ProportionalAllocation({1, 5, 3, 4}, 10);
  ASSERT_TRUE(counts.ok());
  uint32_t sum = 0;
  for (uint32_t c : *counts) {
    EXPECT_GE(c, 1u);
    sum += c;
  }
  EXPECT_EQ(sum, 10u);
}

TEST(AllocationTest, ProportionalForDivisibleWeights) {
  auto counts = ProportionalAllocation({1, 1, 2}, 8);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(*counts, (std::vector<uint32_t>{2, 2, 4}));
}

TEST(AllocationTest, TinyWeightStillGetsOneProcessor) {
  auto counts = ProportionalAllocation({0.001, 100}, 4);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)[0], 1u);
  EXPECT_EQ((*counts)[1], 3u);
}

TEST(AllocationTest, FailsWhenFewerProcessorsThanOps) {
  EXPECT_EQ(ProportionalAllocation({1, 1, 1}, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(ProportionalAllocation({1, -1}, 4).ok());
  EXPECT_FALSE(ProportionalAllocation({}, 4).ok());
}

// Property sweep: for many weight sets and processor counts, the
// allocation sums exactly to P with every op >= 1.
class AllocationPropertyTest : public testing::TestWithParam<uint32_t> {};

TEST_P(AllocationPropertyTest, AlwaysSumsToP) {
  uint32_t p = GetParam();
  std::vector<std::vector<double>> weight_sets = {
      {1, 1, 1, 1, 1, 1, 1, 1, 1},
      {1, 5, 3, 4},
      {100, 1, 1, 1},
      {0.5, 0.25, 0.25},
      {7, 11, 13, 17, 19, 23},
  };
  for (const auto& weights : weight_sets) {
    if (p < weights.size()) continue;
    auto counts = ProportionalAllocation(weights, p);
    ASSERT_TRUE(counts.ok());
    uint32_t sum = 0;
    for (uint32_t c : *counts) {
      EXPECT_GE(c, 1u);
      sum += c;
    }
    EXPECT_EQ(sum, p);
    EXPECT_GE(DiscretizationError(weights, *counts), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, AllocationPropertyTest,
                         testing::Values(9u, 10u, 16u, 20u, 33u, 50u, 80u));

TEST(AllocationTest, DiscretizationErrorShrinksWithMoreProcessors) {
  std::vector<double> weights = {1, 5, 3, 4};
  auto few = ProportionalAllocation(weights, 10);
  auto many = ProportionalAllocation(weights, 80);
  ASSERT_TRUE(few.ok() && many.ok());
  EXPECT_GE(DiscretizationError(weights, *few),
            DiscretizationError(weights, *many));
}

TEST(AllocationTest, CarveBlocksDisjointAndOrdered) {
  std::vector<uint32_t> procs = ProcessorRange(0, 10);
  auto blocks = CarveBlocks(procs, {3, 4, 3});
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(blocks[1], (std::vector<uint32_t>{3, 4, 5, 6}));
  EXPECT_EQ(blocks[2], (std::vector<uint32_t>{7, 8, 9}));
}

// --- Segments -------------------------------------------------------------------

JoinTree Annotated(QueryShape shape, int n) {
  auto tree = BuildShape(shape, Rels(n), 1000);
  MJOIN_CHECK(tree.ok());
  TotalCostModel().Annotate(&*tree);
  return *std::move(tree);
}

TEST(SegmentsTest, RightLinearIsOneSegment) {
  JoinTree tree = Annotated(QueryShape::kRightLinear, 10);
  SegmentedTree segmented = SegmentedTree::Build(tree);
  ASSERT_EQ(segmented.segments().size(), 1u);
  EXPECT_EQ(segmented.segments()[0].joins.size(), 9u);
}

TEST(SegmentsTest, LeftLinearIsAllSingletonSegments) {
  JoinTree tree = Annotated(QueryShape::kLeftLinear, 10);
  SegmentedTree segmented = SegmentedTree::Build(tree);
  EXPECT_EQ(segmented.segments().size(), 9u);
  for (const RightDeepSegment& seg : segmented.segments()) {
    EXPECT_EQ(seg.joins.size(), 1u);
  }
}

TEST(SegmentsTest, RightBushySpineIsOneLongSegment) {
  JoinTree tree = Annotated(QueryShape::kRightOrientedBushy, 10);
  SegmentedTree segmented = SegmentedTree::Build(tree);
  const RightDeepSegment& root =
      segmented.segments()[static_cast<size_t>(segmented.root_segment())];
  // Spine (4 joins) + the bottom-most pair join = 5 joins; 4 producer
  // pair segments.
  EXPECT_EQ(root.joins.size(), 5u);
  EXPECT_EQ(root.children.size(), 4u);
}

TEST(SegmentsTest, BottomProbeOperandIsAlwaysBaseRelation) {
  for (QueryShape shape : kAllShapes) {
    JoinTree tree = Annotated(shape, 10);
    SegmentedTree segmented = SegmentedTree::Build(tree);
    for (const RightDeepSegment& seg : segmented.segments()) {
      int bottom = seg.joins.front();
      EXPECT_TRUE(tree.node(tree.node(bottom).right).is_leaf())
          << ShapeName(shape);
    }
  }
}

TEST(SegmentsTest, SubtreeCostAccountsChildren) {
  JoinTree tree = Annotated(QueryShape::kRightOrientedBushy, 10);
  SegmentedTree segmented = SegmentedTree::Build(tree);
  const RightDeepSegment& root =
      segmented.segments()[static_cast<size_t>(segmented.root_segment())];
  double children = 0;
  for (int child : root.children) {
    children += segmented.segments()[static_cast<size_t>(child)].subtree_cost;
  }
  EXPECT_DOUBLE_EQ(root.subtree_cost, root.total_cost + children);
  EXPECT_DOUBLE_EQ(root.subtree_cost,
                   tree.node(tree.root()).subtree_cost);
}

// --- Transforms -----------------------------------------------------------------

TEST(TransformTest, MirrorIsInvolution) {
  JoinTree tree = Annotated(QueryShape::kLeftLinear, 6);
  JoinTree original = tree;
  MirrorTree(&tree);
  // Now right-linear: one segment.
  TotalCostModel().Annotate(&tree);
  EXPECT_EQ(SegmentedTree::Build(tree).segments().size(), 1u);
  MirrorTree(&tree);
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    EXPECT_EQ(tree.node(static_cast<int>(i)).left,
              original.node(static_cast<int>(i)).left);
  }
}

TEST(TransformTest, RightOrientMakesSegmentsLonger) {
  auto longest = [](const JoinTree& t) {
    SegmentedTree segmented = SegmentedTree::Build(t);
    size_t best = 0;
    for (const RightDeepSegment& seg : segmented.segments()) {
      best = std::max(best, seg.joins.size());
    }
    return best;
  };
  JoinTree tree = Annotated(QueryShape::kLeftOrientedBushy, 10);
  size_t before = longest(tree);  // spine leans left: short segments
  int swapped = RightOrient(&tree);
  EXPECT_GT(swapped, 0);
  TotalCostModel().Annotate(&tree);
  size_t after = longest(tree);  // the spine becomes one long probe chain
  EXPECT_GT(after, before);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(TransformTest, RightOrientIdempotentOnRightLinear) {
  JoinTree tree = Annotated(QueryShape::kRightLinear, 10);
  EXPECT_EQ(RightOrient(&tree), 0);
}

TEST(TransformTest, CountJoins) {
  JoinTree tree = Annotated(QueryShape::kWideBushy, 10);
  EXPECT_EQ(CountJoins(tree, tree.root()), 9);
}

// --- Query analysis -------------------------------------------------------------

TEST(QueryTest, WisconsinChainAnalyzes) {
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, 10, 1000);
  ASSERT_TRUE(query.ok());
  auto analysis = AnalyzeQuery(*query);
  ASSERT_TRUE(analysis.ok());
  // Every node's schema is Wisconsin-sized (208 bytes).
  for (int id : query->tree.PostOrder()) {
    EXPECT_EQ(analysis->node_schema[static_cast<size_t>(id)]->tuple_size(),
              208u);
  }
  // Join specs join column 0 with column 0.
  for (int id : query->tree.PostOrder()) {
    if (query->tree.node(id).is_leaf()) continue;
    EXPECT_EQ(analysis->node_spec[static_cast<size_t>(id)].left_key, 0u);
    EXPECT_EQ(analysis->node_spec[static_cast<size_t>(id)].right_key, 0u);
  }
}

TEST(QueryTest, MissingBaseSchemaFails) {
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 3, 100);
  ASSERT_TRUE(query.ok());
  query->base_schemas.erase("rel1");
  EXPECT_EQ(AnalyzeQuery(*query).status().code(), StatusCode::kNotFound);
}

TEST(QueryTest, RejectsTooFewRelations) {
  EXPECT_FALSE(MakeWisconsinChainQuery(QueryShape::kLeftLinear, 1, 100).ok());
}

}  // namespace
}  // namespace mjoin
