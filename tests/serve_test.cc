#include <unistd.h>

#include <atomic>
#include <iterator>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <cstdlib>

#include "engine/database.h"
#include "engine/reference.h"
#include "net/wire.h"
#include "plan/wisconsin_query.h"
#include "serve/client.h"
#include "serve/serve_protocol.h"
#include "serve/server.h"
#include "strategy/strategy.h"
#include "xra/text.h"

namespace mjoin {
namespace {

// Conformance is part of the tier-1 contract for this suite: every frame
// either endpoint sends or receives is validated against the frame
// table's direction and phase rules, and a violation poisons the link.
// Armed before main() so every FrameChannel the suite constructs sees it.
const bool kConformanceArmed = [] {
  setenv("MJOIN_CONFORMANCE", "1", /*overwrite=*/0);
  return true;
}();

// The serving layer end to end: wire codecs, a live server with warm
// executors serving concurrent clients on both backends (results checked
// against the single-threaded reference), admission control, deadlines,
// plan-cache behavior, and tenant fairness.

std::string TempSocketPath(const std::string& tag) {
  return "/tmp/mjoin_serve_test_" + tag + "_" + std::to_string(getpid()) +
         ".sock";
}

StatusOr<std::string> PlanTextFor(QueryShape shape, StrategyKind strategy,
                                  int relations, uint32_t card,
                                  uint32_t procs) {
  MJOIN_ASSIGN_OR_RETURN(JoinQuery query,
                         MakeWisconsinChainQuery(shape, relations, card));
  MJOIN_ASSIGN_OR_RETURN(
      ParallelPlan plan,
      MakeStrategy(strategy)->Parallelize(query, procs, TotalCostModel()));
  return SerializePlan(plan);
}

TEST(ServeProtocolTest, SubmitRoundTrip) {
  SubmitMsg msg;
  msg.client_seq = 0x1122334455667788ull;
  msg.tenant = "tenant-a";
  msg.backend = ServeBackend::kProcess;
  msg.plan_text = "plan text with\nnewlines";
  msg.batch_size = 777;
  msg.deadline_ms = 250;
  msg.memory_budget_bytes = 1ull << 33;
  msg.collect_metrics = true;

  std::vector<std::byte> wire;
  EncodeSubmit(msg, &wire);
  WireReader reader(wire);
  SubmitMsg decoded;
  ASSERT_TRUE(DecodeSubmit(&reader, &decoded).ok());
  EXPECT_EQ(decoded.client_seq, msg.client_seq);
  EXPECT_EQ(decoded.tenant, msg.tenant);
  EXPECT_EQ(decoded.backend, msg.backend);
  EXPECT_EQ(decoded.plan_text, msg.plan_text);
  EXPECT_EQ(decoded.batch_size, msg.batch_size);
  EXPECT_EQ(decoded.deadline_ms, msg.deadline_ms);
  EXPECT_EQ(decoded.memory_budget_bytes, msg.memory_budget_bytes);
  EXPECT_EQ(decoded.collect_metrics, msg.collect_metrics);

  // Trailing garbage is a decode error, not silently ignored.
  wire.push_back(std::byte{0});
  WireReader trailing(wire);
  EXPECT_FALSE(DecodeSubmit(&trailing, &decoded).ok());
}

TEST(ServeProtocolTest, QueryResultRoundTrip) {
  QueryResultMsg msg;
  msg.client_seq = 42;
  msg.status_code = static_cast<int32_t>(StatusCode::kDeadlineExceeded);
  msg.message = "too slow";
  msg.cardinality = 123456;
  msg.checksum = 0xdeadbeefcafef00dull;
  msg.wall_seconds = 1.5;
  msg.queue_seconds = 0.25;
  msg.plan_cache_hit = true;
  msg.backend = ServeBackend::kThread;
  msg.attempts = 3;

  std::vector<std::byte> wire;
  EncodeQueryResult(msg, &wire);
  WireReader reader(wire);
  QueryResultMsg decoded;
  ASSERT_TRUE(DecodeQueryResult(&reader, &decoded).ok());
  EXPECT_EQ(decoded.client_seq, msg.client_seq);
  EXPECT_EQ(decoded.status_code, msg.status_code);
  EXPECT_EQ(decoded.message, msg.message);
  EXPECT_EQ(decoded.cardinality, msg.cardinality);
  EXPECT_EQ(decoded.checksum, msg.checksum);
  EXPECT_EQ(decoded.wall_seconds, msg.wall_seconds);
  EXPECT_EQ(decoded.queue_seconds, msg.queue_seconds);
  EXPECT_EQ(decoded.plan_cache_hit, msg.plan_cache_hit);
  EXPECT_EQ(decoded.backend, msg.backend);
  EXPECT_EQ(decoded.attempts, msg.attempts);
}

// Concurrent golden harness: N clients pipeline every (strategy, shape)
// combination through one server, alternating backends, and every result
// must be checksum-identical to the reference. Parameterized over the
// fleet's data plane so both the shm-ring and the all-socket paths serve
// under concurrency.
class ServeGoldenTest : public testing::TestWithParam<bool> {};

TEST_P(ServeGoldenTest, ConcurrentClientsAllStrategiesAllShapes) {
  constexpr int kRelations = 4;
  constexpr uint32_t kCard = 300;
  constexpr uint32_t kProcs = 6;
  constexpr int kClients = 4;
  Database db = MakeWisconsinDatabase(kRelations, kCard, /*seed=*/7);

  MjoinServeOptions options;
  options.socket_path =
      TempSocketPath(GetParam() ? "golden_shm" : "golden_socket");
  options.exec_threads = 3;
  options.fleet.num_workers = 4;
  options.fleet.use_shm_data_plane = GetParam();
  auto server = MjoinServer::Start(&db, options);
  ASSERT_TRUE(server.ok()) << server.status();

  const QueryShape kShapes[] = {
      QueryShape::kLeftLinear, QueryShape::kLeftOrientedBushy,
      QueryShape::kWideBushy, QueryShape::kRightOrientedBushy,
      QueryShape::kRightLinear};

  // Reference summary per shape (strategy never changes the result).
  std::vector<ResultSummary> expect;
  for (QueryShape shape : kShapes) {
    auto query = MakeWisconsinChainQuery(shape, kRelations, kCard);
    ASSERT_TRUE(query.ok());
    auto ref = ReferenceSummary(*query, db);
    ASSERT_TRUE(ref.ok());
    expect.push_back(*ref);
  }

  // The full (strategy, shape) matrix, dealt round-robin to the clients.
  struct Job {
    std::string plan_text;
    ResultSummary expect;
  };
  std::vector<std::vector<Job>> per_client(kClients);
  std::set<std::string> unique_texts;
  int dealt = 0;
  for (StrategyKind strategy : kAllStrategies) {
    for (size_t s = 0; s < std::size(kShapes); ++s) {
      auto text =
          PlanTextFor(kShapes[s], strategy, kRelations, kCard, kProcs);
      ASSERT_TRUE(text.ok()) << text.status();
      unique_texts.insert(*text);
      per_client[dealt++ % kClients].push_back(Job{*text, expect[s]});
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ServeClient::Connect(options.socket_path);
      if (!client.ok()) {
        ++mismatches;
        return;
      }
      // Pipeline all submits, alternating backends, then await them all
      // (results may return in any order; match on client_seq).
      const std::vector<Job>& jobs = per_client[c];
      for (size_t i = 0; i < jobs.size(); ++i) {
        SubmitMsg submit;
        submit.client_seq = i;
        submit.tenant = "client-" + std::to_string(c);
        submit.backend = (c + static_cast<int>(i)) % 2 == 0
                             ? ServeBackend::kThread
                             : ServeBackend::kProcess;
        submit.plan_text = jobs[i].plan_text;
        submit.deadline_ms = 60000;
        if (!client.value()->Submit(submit).ok()) {
          ++mismatches;
          return;
        }
      }
      for (size_t i = 0; i < jobs.size(); ++i) {
        auto result = client.value()->Await(60000);
        if (!result.ok() || result->status_code != 0 ||
            result->client_seq >= jobs.size() ||
            result->cardinality != jobs[result->client_seq].expect.cardinality ||
            result->checksum != jobs[result->client_seq].expect.checksum) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Strategies can serialize to identical plans on some shapes, so at
  // least each distinct text was parsed once; racing first lookups of the
  // same text may both miss (by design), never more than once per query.
  const PlanCacheStats cache = server.value()->plan_cache_stats();
  const size_t total = std::size(kAllStrategies) * std::size(kShapes);
  EXPECT_GE(cache.misses, unique_texts.size());
  EXPECT_EQ(cache.hits + cache.misses, total);
  EXPECT_GT(cache.hits, 0u);
  EXPECT_EQ(cache.collisions, 0u);
  server.value()->Shutdown();
}

INSTANTIATE_TEST_SUITE_P(DataPlanes, ServeGoldenTest, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("ShmPlane")
                                             : std::string("SocketPlane");
                         });

TEST(ServeTest, AdmissionRejectsOversizedAndDeadlinesExpireInQueue) {
  constexpr int kRelations = 4;
  constexpr uint32_t kCard = 400;
  Database db = MakeWisconsinDatabase(kRelations, kCard, /*seed=*/7);

  MjoinServeOptions options;
  options.socket_path = TempSocketPath("admission");
  options.exec_threads = 1;  // serialize: lets the deadline case queue up
  options.admission_budget_bytes = 64ull << 20;
  options.enable_process_backend = false;
  auto server = MjoinServer::Start(&db, options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto text = PlanTextFor(QueryShape::kLeftLinear, StrategyKind::kFP,
                          kRelations, kCard, 4);
  ASSERT_TRUE(text.ok());
  auto client = ServeClient::Connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  // A query declaring more memory than the whole admission budget can
  // never run and is rejected, not queued forever.
  SubmitMsg oversized;
  oversized.client_seq = 1;
  oversized.tenant = "t";
  oversized.plan_text = *text;
  oversized.memory_budget_bytes = 128ull << 20;
  ASSERT_TRUE(client.value()->Submit(oversized).ok());
  auto rejected = client.value()->Await(30000);
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected->client_seq, 1u);
  EXPECT_EQ(rejected->status_code,
            static_cast<int32_t>(StatusCode::kResourceExhausted));

  // Process backend is disabled on this server: typed rejection.
  SubmitMsg process;
  process.client_seq = 2;
  process.tenant = "t";
  process.backend = ServeBackend::kProcess;
  process.plan_text = *text;
  ASSERT_TRUE(client.value()->Submit(process).ok());
  auto refused = client.value()->Await(30000);
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status_code,
            static_cast<int32_t>(StatusCode::kFailedPrecondition));

  // Unparseable plans fail typed too (and are never cached).
  SubmitMsg garbage;
  garbage.client_seq = 3;
  garbage.tenant = "t";
  garbage.plan_text = "this is not XRA";
  ASSERT_TRUE(client.value()->Submit(garbage).ok());
  auto invalid = client.value()->Await(30000);
  ASSERT_TRUE(invalid.ok());
  EXPECT_NE(invalid->status_code, 0);

  // Deadline: jam the single exec thread with slow queries, then submit
  // one whose deadline cannot survive the queue wait.
  for (uint64_t i = 0; i < 8; ++i) {
    SubmitMsg slow;
    slow.client_seq = 100 + i;
    slow.tenant = "t";
    slow.plan_text = *text;
    slow.batch_size = 1;  // deliberately slow
    ASSERT_TRUE(client.value()->Submit(slow).ok());
  }
  SubmitMsg doomed;
  doomed.client_seq = 200;
  doomed.tenant = "t";
  doomed.plan_text = *text;
  doomed.deadline_ms = 1;
  ASSERT_TRUE(client.value()->Submit(doomed).ok());

  bool saw_deadline = false;
  for (int i = 0; i < 9; ++i) {
    auto result = client.value()->Await(60000);
    ASSERT_TRUE(result.ok()) << result.status();
    if (result->client_seq == 200) {
      saw_deadline = true;
      EXPECT_EQ(result->status_code,
                static_cast<int32_t>(StatusCode::kDeadlineExceeded));
      EXPECT_EQ(result->cardinality, 0u);
    } else {
      EXPECT_EQ(result->status_code, 0);
    }
  }
  EXPECT_TRUE(saw_deadline);
  server.value()->Shutdown();
}

TEST(ServeTest, PlanCacheHitsOnRepeatAndFairnessAcrossTenants) {
  constexpr int kRelations = 4;
  constexpr uint32_t kCard = 300;
  Database db = MakeWisconsinDatabase(kRelations, kCard, /*seed=*/7);

  MjoinServeOptions options;
  options.socket_path = TempSocketPath("cache");
  options.exec_threads = 1;  // deterministic scheduling order
  options.enable_process_backend = false;
  auto server = MjoinServer::Start(&db, options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto text = PlanTextFor(QueryShape::kLeftLinear, StrategyKind::kFP,
                          kRelations, kCard, 4);
  ASSERT_TRUE(text.ok());

  // Tenant "flood" pipelines many slow queries; tenant "single" submits
  // one afterwards. Round-robin must interleave it near the front instead
  // of behind the whole flood.
  auto flood = ServeClient::Connect(options.socket_path);
  auto single = ServeClient::Connect(options.socket_path);
  ASSERT_TRUE(flood.ok() && single.ok());
  constexpr uint64_t kFlood = 12;
  for (uint64_t i = 0; i < kFlood; ++i) {
    SubmitMsg msg;
    msg.client_seq = i;
    msg.tenant = "flood";
    msg.plan_text = *text;
    msg.batch_size = 1;
    ASSERT_TRUE(flood.value()->Submit(msg).ok());
  }
  SubmitMsg one;
  one.client_seq = 99;
  one.tenant = "single";
  one.plan_text = *text;
  ASSERT_TRUE(single.value()->Submit(one).ok());

  auto single_result = single.value()->Await(60000);
  ASSERT_TRUE(single_result.ok()) << single_result.status();
  EXPECT_EQ(single_result->status_code, 0);

  double flood_last_queue = 0;
  for (uint64_t i = 0; i < kFlood; ++i) {
    auto result = flood.value()->Await(60000);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->status_code, 0);
    if (result->queue_seconds > flood_last_queue) {
      flood_last_queue = result->queue_seconds;
    }
  }
  // Fairness: the lone tenant never waits behind the whole flood.
  EXPECT_LT(single_result->queue_seconds, flood_last_queue);

  // Every submit after the first was a cache hit (identical plan text).
  const PlanCacheStats cache = server.value()->plan_cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, kFlood);  // flood[1..] + single
  EXPECT_EQ(cache.collisions, 0u);

  auto hit_result_probe = ServeClient::Connect(options.socket_path);
  ASSERT_TRUE(hit_result_probe.ok());
  SubmitMsg probe;
  probe.client_seq = 1;
  probe.tenant = "probe";
  probe.plan_text = *text;
  ASSERT_TRUE(hit_result_probe.value()->Submit(probe).ok());
  auto probed = hit_result_probe.value()->Await(30000);
  ASSERT_TRUE(probed.ok());
  EXPECT_TRUE(probed->plan_cache_hit);
  server.value()->Shutdown();
}

TEST(ServeTest, ShutdownFailsQueuedQueriesAndUnlinksSocket) {
  Database db = MakeWisconsinDatabase(4, 2000, /*seed=*/7);
  MjoinServeOptions options;
  options.socket_path = TempSocketPath("shutdown");
  options.exec_threads = 1;
  options.enable_process_backend = false;
  auto server = MjoinServer::Start(&db, options);
  ASSERT_TRUE(server.ok()) << server.status();

  // Slow queries (one tuple per batch on a 2000-tuple database) behind a
  // single exec thread: by the time the first result returns, the rest
  // are ingested and deep in the queue.
  auto text =
      PlanTextFor(QueryShape::kLeftLinear, StrategyKind::kFP, 4, 2000, 4);
  ASSERT_TRUE(text.ok());
  auto client = ServeClient::Connect(options.socket_path);
  ASSERT_TRUE(client.ok());
  for (uint64_t i = 0; i < 6; ++i) {
    SubmitMsg msg;
    msg.client_seq = i;
    msg.tenant = "t";
    msg.plan_text = *text;
    msg.batch_size = 1;
    ASSERT_TRUE(client.value()->Submit(msg).ok());
  }
  auto first = client.value()->Await(60000);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->status_code, 0);

  server.value()->Shutdown();

  // Every remaining submit got exactly one answer: completed OK (it was
  // already running) or failed Unavailable (drained from the queue) —
  // never silently dropped.
  int answered = 0;
  int unavailable = 0;
  for (uint64_t i = 0; i < 5; ++i) {
    auto result = client.value()->Await(5000);
    ASSERT_TRUE(result.ok()) << "submit dropped without an answer: "
                             << result.status();
    EXPECT_TRUE(result->status_code == 0 ||
                result->status_code ==
                    static_cast<int32_t>(StatusCode::kUnavailable))
        << "code " << result->status_code;
    if (result->status_code != 0) ++unavailable;
    ++answered;
  }
  EXPECT_EQ(answered, 5);
  EXPECT_GT(unavailable, 0) << "nothing was queued at shutdown";
  EXPECT_NE(access(options.socket_path.c_str(), F_OK), 0)
      << "socket path survived shutdown";
}

}  // namespace
}  // namespace mjoin
