#include <gtest/gtest.h>

#include <map>

#include "exec/aggregate.h"
#include "exec/filter.h"
#include "storage/wisconsin.h"

namespace mjoin {
namespace {

std::shared_ptr<const Schema> Wisc() {
  return std::make_shared<const Schema>(WisconsinSchema());
}

class RecordingContext : public OpContext {
 public:
  explicit RecordingContext(std::shared_ptr<const Schema> schema)
      : out(std::move(schema)) {}
  void Charge(Ticks cost) override { charged += cost; }
  void EmitRow(const std::byte* row) override { out.AppendRow(row); }
  const CostParams& costs() const override { return params; }

  CostParams params;
  Ticks charged = 0;
  TupleBatch out;
};

TupleBatch ToBatch(const Relation& rel) {
  TupleBatch batch(std::make_shared<const Schema>(rel.schema()));
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    batch.AppendRow(rel.tuple(i).data());
  }
  return batch;
}

// --- Int64 columns ------------------------------------------------------------

TEST(Int64ColumnTest, LayoutAndRoundTrip) {
  Schema schema({Column::Int32("a"), Column::Int64("b")});
  EXPECT_EQ(schema.tuple_size(), 12u);
  std::vector<std::byte> row(schema.tuple_size());
  TupleWriter w(row.data(), &schema);
  w.SetInt32(0, 7);
  w.SetInt64(1, 123456789012345LL);
  TupleRef t(row.data(), &schema);
  EXPECT_EQ(t.GetInt64(1), 123456789012345LL);
  EXPECT_NE(schema.ToString().find("b:i64"), std::string::npos);
  EXPECT_EQ(t.ToString(), "(7, 123456789012345)");
}

// --- FilterPredicate ------------------------------------------------------------

TEST(FilterPredicateTest, AllOperators) {
  auto matches = [](CompareOp op, int32_t candidate, int32_t value,
                    int32_t value2 = 0) {
    return FilterPredicate{0, op, value, value2}.Matches(candidate);
  };
  EXPECT_TRUE(matches(CompareOp::kEq, 5, 5));
  EXPECT_FALSE(matches(CompareOp::kEq, 5, 6));
  EXPECT_TRUE(matches(CompareOp::kNe, 5, 6));
  EXPECT_TRUE(matches(CompareOp::kLt, 4, 5));
  EXPECT_FALSE(matches(CompareOp::kLt, 5, 5));
  EXPECT_TRUE(matches(CompareOp::kLe, 5, 5));
  EXPECT_TRUE(matches(CompareOp::kGt, 6, 5));
  EXPECT_TRUE(matches(CompareOp::kGe, 5, 5));
  EXPECT_TRUE(matches(CompareOp::kBetween, 5, 3, 7));
  EXPECT_FALSE(matches(CompareOp::kBetween, 8, 3, 7));
}

TEST(FilterPredicateTest, ToStringReadable) {
  FilterPredicate pred{kOnePercent, CompareOp::kLt, 25, 0};
  EXPECT_EQ(pred.ToString(WisconsinSchema()), "onePercent < 25");
  FilterPredicate between{kTen, CompareOp::kBetween, 2, 5};
  EXPECT_EQ(between.ToString(WisconsinSchema()), "ten between 2 and 5");
}

// --- FilterOp -------------------------------------------------------------------

TEST(FilterOpTest, PassesExactlyMatchingTuples) {
  Relation rel = GenerateWisconsin(1000, 3);
  auto filter = FilterOp::Make(
      Wisc(), FilterPredicate{kFiftyPercent, CompareOp::kEq, 1, 0});
  ASSERT_TRUE(filter.ok());
  RecordingContext ctx((*filter)->output_schema());
  (*filter)->Consume(0, ToBatch(rel), &ctx);
  (*filter)->InputDone(0, &ctx);
  EXPECT_TRUE((*filter)->finished());
  EXPECT_EQ(ctx.out.num_tuples(), 500u);  // unique1 % 2 == 1
  for (size_t i = 0; i < ctx.out.num_tuples(); ++i) {
    EXPECT_EQ(ctx.out.tuple(i).GetInt32(kFiftyPercent), 1);
  }
  EXPECT_EQ((*filter)->tuples_in(), 1000u);
  EXPECT_EQ((*filter)->tuples_out(), 500u);
}

TEST(FilterOpTest, RejectsBadPredicates) {
  EXPECT_FALSE(
      FilterOp::Make(Wisc(), FilterPredicate{99, CompareOp::kEq, 0, 0}).ok());
  EXPECT_FALSE(
      FilterOp::Make(Wisc(),
                     FilterPredicate{kStringU1, CompareOp::kEq, 0, 0})
          .ok());
  EXPECT_FALSE(
      FilterOp::Make(Wisc(),
                     FilterPredicate{kTen, CompareOp::kBetween, 9, 2})
          .ok());
}

// --- AggregateOp -----------------------------------------------------------------

TEST(AggregateOpTest, CountsSumsMinMaxPerGroup) {
  Relation rel = GenerateWisconsin(1000, 5);
  auto aggregate = AggregateOp::Make(Wisc(), kTen, kUnique1);
  ASSERT_TRUE(aggregate.ok());
  RecordingContext ctx((*aggregate)->output_schema());
  (*aggregate)->Consume(0, ToBatch(rel), &ctx);
  EXPECT_EQ(ctx.out.num_tuples(), 0u);  // pipeline breaker: nothing yet
  (*aggregate)->InputDone(0, &ctx);
  EXPECT_TRUE((*aggregate)->finished());
  ASSERT_EQ(ctx.out.num_tuples(), 10u);

  // unique1 covers 0..999 exactly once, so group g (unique1 % 10) has the
  // 100 members g, g+10, ..., g+990: sum = 100*g + 10*(0+1+...+99)*10
  // = 100*g + 49500, min = g, max = 990+g.
  for (size_t i = 0; i < 10; ++i) {
    TupleRef t = ctx.out.tuple(i);
    int32_t g = t.GetInt32(0);
    EXPECT_EQ(t.GetInt64(1), 100);
    EXPECT_EQ(t.GetInt64(2), 100LL * g + 49500LL);
    EXPECT_EQ(t.GetInt32(3), g);
    EXPECT_EQ(t.GetInt32(4), 990 + g);
  }
}

TEST(AggregateOpTest, OutputSchemaNames) {
  auto aggregate = AggregateOp::Make(Wisc(), kTen, kUnique2);
  ASSERT_TRUE(aggregate.ok());
  const Schema& schema = *(*aggregate)->output_schema();
  EXPECT_EQ(schema.column(0).name, "ten");
  EXPECT_EQ(schema.column(1).name, "count");
  EXPECT_EQ(schema.column(2).name, "sum_unique2");
  EXPECT_EQ(schema.column(2).type, ColumnType::kInt64);
}

TEST(AggregateOpTest, MemoryTrackedAndReleased) {
  Relation rel = GenerateWisconsin(500, 7);
  auto aggregate = AggregateOp::Make(Wisc(), kUnique1, kUnique2);
  ASSERT_TRUE(aggregate.ok());
  RecordingContext ctx((*aggregate)->output_schema());
  (*aggregate)->Consume(0, ToBatch(rel), &ctx);
  EXPECT_EQ((*aggregate)->num_groups(), 500u);
  EXPECT_GT((*aggregate)->memory_bytes(), 0u);
  (*aggregate)->ReleaseMemory();
  EXPECT_EQ((*aggregate)->memory_bytes(), 0u);
  EXPECT_GT((*aggregate)->peak_memory_bytes(), 0u);
}

TEST(AggregateOpTest, RejectsNonInt32Columns) {
  EXPECT_FALSE(AggregateOp::Make(Wisc(), kStringU1, kUnique1).ok());
  EXPECT_FALSE(AggregateOp::Make(Wisc(), kTen, 99).ok());
}

TEST(AggregateOpTest, SumsBeyondInt32Range) {
  // 100k tuples of value 100000 -> sum 1e10 > INT32_MAX.
  Schema schema({Column::Int32("g"), Column::Int32("v")});
  auto shared = std::make_shared<const Schema>(schema);
  Relation rel(schema);
  for (int i = 0; i < 100000; ++i) {
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(0, 0);
    w.SetInt32(1, 100000);
  }
  auto aggregate = AggregateOp::Make(shared, 0, 1);
  ASSERT_TRUE(aggregate.ok());
  RecordingContext ctx((*aggregate)->output_schema());
  (*aggregate)->Consume(0, ToBatch(rel), &ctx);
  (*aggregate)->InputDone(0, &ctx);
  ASSERT_EQ(ctx.out.num_tuples(), 1u);
  EXPECT_EQ(ctx.out.tuple(0).GetInt64(2), 10000000000LL);
}

}  // namespace
}  // namespace mjoin
