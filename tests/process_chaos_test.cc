#include <dirent.h>
#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/fault_injector.h"
#include "engine/process_executor.h"
#include "engine/reference.h"
#include "net/net_fault.h"
#include "plan/wisconsin_query.h"
#include "skew/defense.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// Conformance is part of the tier-1 contract for this suite: every frame
// either endpoint sends or receives is validated against the frame
// table's direction and phase rules, and a violation poisons the link.
// Armed before main() so every FrameChannel the suite constructs sees it.
const bool kConformanceArmed = [] {
  setenv("MJOIN_CONFORMANCE", "1", /*overwrite=*/0);
  return true;
}();

// Randomized chaos harness for the process backend. Each schedule draws one
// fault from a menu (worker kill, wire corruption in either direction,
// truncation, connection drop, link stall, short writes, silent hang,
// injected operator failure) from a seeded RNG, flips a coin for the data
// plane (all-socket vs shared-memory rings — shm schedules run on
// deliberately tiny 4 KiB rings so wrap pads, full-ring backlogs, and
// mid-record kills all actually happen), and runs a full query under it
// with retries enabled. The contract under chaos:
//
//   - recoverable faults end in a result checksum-identical to the
//     single-threaded reference (the retry re-ran the query cleanly);
//   - deterministic faults end in the same typed Status the thread backend
//     would return (kInternal for an injected operator fault);
//   - no outcome is ever a hang, a zombie, or a leaked descriptor.
//
// Every schedule is reproducible from its printed seed.

enum class ChaosCase {
  kClean = 0,
  kKillWorker,
  kCorruptOut,
  kCorruptIn,
  kTruncateOut,
  kDropConn,
  kStallOut,
  kShortWrites,
  kHangWorker,
  kFailOp,
};

constexpr ChaosCase kMenu[] = {
    ChaosCase::kClean,       ChaosCase::kKillWorker, ChaosCase::kCorruptOut,
    ChaosCase::kCorruptIn,   ChaosCase::kTruncateOut, ChaosCase::kDropConn,
    ChaosCase::kStallOut,    ChaosCase::kShortWrites, ChaosCase::kHangWorker,
    ChaosCase::kFailOp,
};

const char* ChaosCaseName(ChaosCase c) {
  switch (c) {
    case ChaosCase::kClean:
      return "clean";
    case ChaosCase::kKillWorker:
      return "kill-worker";
    case ChaosCase::kCorruptOut:
      return "corrupt-out";
    case ChaosCase::kCorruptIn:
      return "corrupt-in";
    case ChaosCase::kTruncateOut:
      return "truncate-out";
    case ChaosCase::kDropConn:
      return "drop-conn";
    case ChaosCase::kStallOut:
      return "stall-out";
    case ChaosCase::kShortWrites:
      return "short-writes";
    case ChaosCase::kHangWorker:
      return "hang-worker";
    case ChaosCase::kFailOp:
      return "fail-op";
  }
  return "unknown";
}

size_t CountOpenFds() {
  size_t count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

// True while `pid` exists at all — including as an unreaped zombie, which
// kill(pid, 0) still reaches. ESRCH therefore means "fully reaped".
bool ProcessExists(pid_t pid) { return kill(pid, 0) == 0 || errno != ESRCH; }

// Schedules per (strategy, shape) pair; 10 is 200 schedules over the full
// 4x5 sweep. CI caps it lower for sanitizer runs.
int ChaosIterations() {
  const char* env = std::getenv("MJOIN_CHAOS_ITERS");
  if (env == nullptr) return 10;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 1;
}

constexpr int kRelations = 5;
constexpr uint32_t kCardinality = 200;
constexpr uint32_t kProcessors = 6;
constexpr uint32_t kWorkers = 3;

ProcessExecOptions ChaosOptions() {
  ProcessExecOptions options;
  options.num_workers = kWorkers;
  options.exec.batch_size = 64;
  // The ultimate hang guard: no schedule may outlive this, recovery
  // included. Generous because sanitizer builds are slow.
  options.exec.deadline = std::chrono::milliseconds(20000);
  options.max_retries = 2;
  options.retry_backoff = std::chrono::milliseconds(5);
  options.heartbeat_interval = std::chrono::milliseconds(100);
  // The watchdog is on for every schedule: stalls and hangs must end in a
  // SIGKILL plus retry, not in the deadline.
  options.liveness_timeout = std::chrono::milliseconds(2000);
  return options;
}

struct Sweep {
  StrategyKind strategy;
  QueryShape shape;
};

std::string SweepName(const testing::TestParamInfo<Sweep>& info) {
  std::string shape = ShapeName(info.param.shape);
  for (char& c : shape) {
    if (c == ' ') c = '_';
  }
  return StrategyName(info.param.strategy) + "_" + shape;
}

class ProcessChaosSweepTest : public testing::TestWithParam<Sweep> {};

TEST_P(ProcessChaosSweepTest, SeededFaultSchedulesRecoverOrFailCleanly) {
  const size_t fds_before = CountOpenFds();
  const int iters = ChaosIterations();

  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/42);
  auto query = MakeWisconsinChainQuery(GetParam().shape, kRelations,
                                       kCardinality);
  ASSERT_TRUE(query.ok()) << query.status();
  auto golden = ReferenceSummary(*query, db);
  ASSERT_TRUE(golden.ok()) << golden.status();
  auto plan = MakeStrategy(GetParam().strategy)
                  ->Parallelize(*query, kProcessors, TotalCostModel());
  ASSERT_TRUE(plan.ok()) << plan.status();

  std::vector<pid_t> all_pids;
  for (int iter = 0; iter < iters; ++iter) {
    // Stable per-(strategy, shape, iter) so any failure names its seed.
    const uint64_t seed =
        0x9e3779b97f4a7c15ull * static_cast<uint64_t>(iter + 1) +
        static_cast<uint64_t>(GetParam().strategy) * 131 +
        static_cast<uint64_t>(GetParam().shape) * 17;
    std::mt19937_64 rng(seed);
    const ChaosCase chaos = kMenu[rng() % std::size(kMenu)];
    const bool use_shm = rng() % 2 == 1;
    const bool defend = rng() % 2 == 1;
    SCOPED_TRACE(testing::Message()
                 << "schedule seed=" << seed << " fault="
                 << ChaosCaseName(chaos)
                 << " plane=" << (use_shm ? "shm" : "socket")
                 << " defense=" << (defend ? "on" : "off"));

    ProcessExecOptions options = ChaosOptions();
    options.use_shm_data_plane = use_shm;
    if (use_shm) options.shm_ring_bytes = 4096;
    // Defense under chaos: the report/directive round-trip and the
    // deferred probe replay must survive worker kills and wire faults
    // with the checksum unchanged. Test-sized thresholds so the Bloom
    // transfer engages even on this small uniform data.
    options.exec.skew_defense.mode =
        defend ? SkewDefenseMode::kOn : SkewDefenseMode::kOff;
    options.exec.skew_defense.min_hot_count = 4;
    options.exec.skew_defense.hot_fraction = 0.05;

    // Worker-side fault, shipped in the plan envelope.
    FaultScenario worker_scenario;
    std::unique_ptr<FaultInjector> worker_injector;
    // Coordinator-side network fault on one worker's link.
    NetFaultScenario net_scenario;
    std::optional<NetFaultInjector> net_injector;

    uint32_t spawn_count = 0;
    const uint32_t victim = static_cast<uint32_t>(rng() % kWorkers);
    options.worker_observer = [&](uint32_t, pid_t pid) {
      all_pids.push_back(pid);
      // Kill only within the first fleet: the retry must run clean.
      if (chaos == ChaosCase::kKillWorker && spawn_count == victim) {
        kill(pid, SIGKILL);
      }
      ++spawn_count;
    };

    switch (chaos) {
      case ChaosCase::kClean:
      case ChaosCase::kKillWorker:
        break;
      case ChaosCase::kCorruptOut:
      case ChaosCase::kCorruptIn:
      case ChaosCase::kTruncateOut:
      case ChaosCase::kDropConn:
      case ChaosCase::kStallOut:
      case ChaosCase::kShortWrites: {
        net_scenario.kind =
            chaos == ChaosCase::kCorruptOut ? NetFaultKind::kCorruptOutbound
            : chaos == ChaosCase::kCorruptIn ? NetFaultKind::kCorruptInbound
            : chaos == ChaosCase::kTruncateOut
                ? NetFaultKind::kTruncateOutbound
            : chaos == ChaosCase::kDropConn ? NetFaultKind::kDropConnection
            : chaos == ChaosCase::kStallOut ? NetFaultKind::kStallOutbound
                                            : NetFaultKind::kShortWrites;
        net_scenario.worker = victim;
        // Early enough to land during handshake or plan shipping, where
        // recovery is hardest to get wrong.
        net_scenario.after_frames = rng() % 10;
        net_scenario.write_cap = 1 + rng() % 7;
        net_scenario.seed = rng();
        net_injector.emplace(net_scenario);
        options.net_fault_injector = &*net_injector;
        break;
      }
      case ChaosCase::kHangWorker:
        worker_scenario.kind = FaultKind::kHangWorker;
        worker_scenario.node = static_cast<uint32_t>(rng() % kProcessors);
        worker_scenario.on_attempt = 0;  // wedge once, retry runs clean
        worker_injector = std::make_unique<FaultInjector>(worker_scenario);
        options.exec.fault_injector = worker_injector.get();
        break;
      case ChaosCase::kFailOp:
        worker_scenario.kind = FaultKind::kFailOperator;
        worker_scenario.op = -1;
        worker_scenario.after_batches = rng() % 3;
        worker_injector = std::make_unique<FaultInjector>(worker_scenario);
        options.exec.fault_injector = worker_injector.get();
        break;
    }

    ProcessExecutor executor(&db);
    ProcessExecStats proc;
    auto run = executor.Execute(*plan, options, nullptr, nullptr, &proc);

    if (chaos == ChaosCase::kFailOp) {
      // Deterministic failure: retrying would only fail again, and the
      // executor must know that.
      ASSERT_FALSE(run.ok());
      EXPECT_EQ(run.status().code(), StatusCode::kInternal) << run.status();
      EXPECT_NE(run.status().message().find("injected fault"),
                std::string::npos)
          << run.status();
      EXPECT_EQ(proc.retries, 0u) << "retried a non-retryable failure";
    } else if (chaos == ChaosCase::kCorruptIn) {
      // Inbound corruption may flip a length-header byte into a plausible
      // but inflated frame length; the stream then starves before the CRC
      // can call the lie out, and the deadline is the backstop. Every
      // other corruption lands in CRC-covered bytes and recovers.
      if (run.ok()) {
        EXPECT_EQ(run->exec.result, *golden);
      } else {
        EXPECT_TRUE(run.status().code() == StatusCode::kUnavailable ||
                    run.status().code() == StatusCode::kDeadlineExceeded)
            << run.status();
      }
    } else {
      // Everything else is a one-shot environmental fault under a budget
      // of two retries: recovery is guaranteed, and recovered means
      // checksum-identical to the single-threaded reference.
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(run->exec.result, *golden)
          << "recovered run produced a different tuple multiset";
      EXPECT_LE(proc.attempts, 1u + options.max_retries);
    }
  }

  // No schedule may leak: every worker of every fleet (including killed
  // and retried ones) must be fully reaped, and every socket closed.
  for (pid_t pid : all_pids) {
    EXPECT_FALSE(ProcessExists(pid))
        << "worker pid " << pid << " survived or was left a zombie";
  }
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
  EXPECT_EQ(CountOpenFds(), fds_before) << "leaked descriptors";
}

std::vector<Sweep> AllSweeps() {
  std::vector<Sweep> sweeps;
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      sweeps.push_back({strategy, shape});
    }
  }
  return sweeps;
}

INSTANTIATE_TEST_SUITE_P(AllStrategiesAllShapes, ProcessChaosSweepTest,
                         testing::ValuesIn(AllSweeps()), SweepName);

// ---------------------------------------------------------------------------
// Directed recovery scenarios.

class ProcessChaosTest : public testing::Test {
 protected:
  void SetUp() override {
    fds_before_ = CountOpenFds();
    db_ = std::make_unique<Database>(
        MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/7));
    auto query =
        MakeWisconsinChainQuery(QueryShape::kLeftLinear, kRelations,
                                kCardinality);
    ASSERT_TRUE(query.ok());
    auto golden = ReferenceSummary(*query, *db_);
    ASSERT_TRUE(golden.ok()) << golden.status();
    golden_ = *golden;
    auto plan = MakeStrategy(StrategyKind::kFP)
                    ->Parallelize(*query, kProcessors, TotalCostModel());
    ASSERT_TRUE(plan.ok()) << plan.status();
    plan_ = std::make_unique<ParallelPlan>(*std::move(plan));
  }

  void TearDown() override {
    // Whatever the scenario did, the process must end childless and with
    // its descriptor table restored.
    EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
    EXPECT_EQ(CountOpenFds(), fds_before_) << "leaked descriptors";
  }

  size_t fds_before_ = 0;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ParallelPlan> plan_;
  ResultSummary golden_;
};

TEST_F(ProcessChaosTest, KilledWorkerRecoversViaRetry) {
  // kill -9 of a random worker mid-fleet: the first attempt dies, the
  // retry respawns and produces the exact reference result.
  ProcessExecOptions options = ChaosOptions();
  uint32_t spawn_count = 0;
  options.worker_observer = [&spawn_count](uint32_t, pid_t pid) {
    if (spawn_count++ == 1) kill(pid, SIGKILL);  // first fleet only
  };

  ProcessExecutor executor(db_.get());
  ProcessExecStats proc;
  auto run = executor.Execute(*plan_, options, nullptr, nullptr, &proc);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->exec.result, golden_);
  EXPECT_EQ(proc.attempts, 2u);
  EXPECT_GE(proc.retries, 1u);
  EXPECT_FALSE(proc.degraded_to_thread);
  ASSERT_FALSE(proc.failures.empty());
  EXPECT_EQ(proc.failures[0].failure, WorkerFailureClass::kCrashed);
  EXPECT_NE(proc.failures[0].detail.find("killed by signal"),
            std::string::npos)
      << proc.failures[0].detail;
  EXPECT_EQ(run->proc.retries, proc.retries);
}

TEST_F(ProcessChaosTest, HungWorkerIsKilledByWatchdogThenRetried) {
  // A worker that wedges silently mid-query: only the watchdog can tell.
  // It must SIGKILL the straggler, classify it as hung, and retry — the
  // shipped scenario is pinned to attempt 0, so the retry runs clean.
  FaultScenario scenario;
  scenario.kind = FaultKind::kHangWorker;
  scenario.node = 0;
  scenario.on_attempt = 0;
  FaultInjector injector(scenario);

  ProcessExecOptions options = ChaosOptions();
  options.exec.fault_injector = &injector;
  options.liveness_timeout = std::chrono::milliseconds(1500);

  ProcessExecutor executor(db_.get());
  ProcessExecStats proc;
  auto run = executor.Execute(*plan_, options, nullptr, nullptr, &proc);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->exec.result, golden_);
  EXPECT_GE(proc.retries, 1u);
  EXPECT_GE(proc.hung_workers_killed, 1u);
  bool saw_hung = false;
  for (const WorkerFailureRecord& failure : proc.failures) {
    if (failure.failure == WorkerFailureClass::kHung) saw_hung = true;
  }
  EXPECT_TRUE(saw_hung) << "no kHung record in the failure log";
  EXPECT_GT(proc.pings_sent, 0u);
}

TEST_F(ProcessChaosTest, RetryBudgetExhaustedYieldsUnavailable) {
  // The fault persists across attempts (every fleet loses a worker), so
  // the budget runs out and the typed failure surfaces — with the attempt
  // history in the stats.
  ProcessExecOptions options = ChaosOptions();
  options.max_retries = 1;
  uint32_t spawn_count = 0;
  options.worker_observer = [&spawn_count](uint32_t, pid_t pid) {
    if (spawn_count++ % kWorkers == 1) kill(pid, SIGKILL);  // every fleet
  };

  ProcessExecutor executor(db_.get());
  ProcessExecStats proc;
  auto run = executor.Execute(*plan_, options, nullptr, nullptr, &proc);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable) << run.status();
  EXPECT_EQ(proc.attempts, 2u);
  EXPECT_EQ(proc.retries, 1u);
  EXPECT_GE(proc.failures.size(), 2u);
}

TEST_F(ProcessChaosTest, DegradesToThreadBackendWhenBudgetExhausted) {
  // Same persistent fault, but with graceful degradation opted in: the
  // query still completes, on threads, with the exact reference result.
  ProcessExecOptions options = ChaosOptions();
  options.max_retries = 1;
  options.degrade_to_thread = true;
  uint32_t spawn_count = 0;
  options.worker_observer = [&spawn_count](uint32_t, pid_t pid) {
    if (spawn_count++ % kWorkers == 1) kill(pid, SIGKILL);
  };

  ProcessExecutor executor(db_.get());
  ProcessExecStats proc;
  auto run = executor.Execute(*plan_, options, nullptr, nullptr, &proc);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(proc.degraded_to_thread);
  EXPECT_TRUE(run->proc.degraded_to_thread);
  EXPECT_EQ(run->exec.result, golden_);
  EXPECT_EQ(run->net.num_workers, 0u) << "degraded run reported net workers";
}

TEST_F(ProcessChaosTest, KillNineMidRingTrafficRecovers) {
  // SIGKILL a worker while the shm rings are carrying live traffic:
  // batch_size 1 on 4 KiB rings keeps every worker mid-record most of the
  // run, so the victim likely dies between TryReserve and Commit — the
  // half-written slot must stay invisible (unpublished tail), the fleet is
  // reaped, and the respawned fleet gets freshly mapped zeroed rings. The
  // retry must be checksum-identical.
  ProcessExecOptions options = ChaosOptions();
  options.shm_ring_bytes = 4096;
  options.exec.batch_size = 1;

  std::thread killer;
  uint32_t spawn_count = 0;
  options.worker_observer = [&killer, &spawn_count](uint32_t, pid_t pid) {
    if (spawn_count++ == 1) {  // first fleet only: the retry must run clean
      killer = std::thread([pid] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        kill(pid, SIGKILL);
      });
    }
  };

  ProcessExecutor executor(db_.get());
  ProcessExecStats proc;
  ProcessNetStats net;
  auto run = executor.Execute(*plan_, options, nullptr, &net, &proc);
  killer.join();
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->exec.result, golden_);
  EXPECT_GT(net.shm_rings, 0u) << "recovered attempt did not map rings";
  // The kill may race query completion; when it did land, the failure is a
  // diagnosed crash and the retry delivered the result above.
  for (const WorkerFailureRecord& failure : proc.failures) {
    EXPECT_EQ(failure.failure, WorkerFailureClass::kCrashed);
  }
}

TEST_F(ProcessChaosTest, HungConsumerWithFullRingsTripsWatchdog) {
  // A consumer wedged inside an operator callback stops draining its
  // inbound rings; on 4 KiB rings its producers fill them, park records in
  // backlogs, and stop pumping. Nothing on the socket is wrong, so only
  // the liveness watchdog can break the stall: it must SIGKILL the hung
  // worker (not wait for the deadline), classify it kHung, and the retry
  // runs clean.
  FaultScenario scenario;
  scenario.kind = FaultKind::kHangWorker;
  scenario.node = 0;
  scenario.on_attempt = 0;
  FaultInjector injector(scenario);

  ProcessExecOptions options = ChaosOptions();
  options.shm_ring_bytes = 4096;
  options.exec.batch_size = 1;
  options.exec.fault_injector = &injector;
  options.liveness_timeout = std::chrono::milliseconds(1500);

  ProcessExecutor executor(db_.get());
  ProcessExecStats proc;
  auto run = executor.Execute(*plan_, options, nullptr, nullptr, &proc);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->exec.result, golden_);
  EXPECT_GE(proc.hung_workers_killed, 1u);
  bool saw_hung = false;
  for (const WorkerFailureRecord& failure : proc.failures) {
    if (failure.failure == WorkerFailureClass::kHung) saw_hung = true;
  }
  EXPECT_TRUE(saw_hung) << "no kHung record in the failure log";
}

// A SIGUSR1 storm against the coordinator thread: every poll(), waitpid()
// and recv() in the hot path gets peppered with EINTR, and none of it may
// surface as a failure or change the result.
TEST_F(ProcessChaosTest, SignalStormDoesNotDisturbExecution) {
  struct sigaction action = {};
  action.sa_handler = +[](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART: force EINTR paths
  struct sigaction previous = {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  std::atomic<bool> stop{false};
  pthread_t coordinator_thread = pthread_self();
  std::thread storm([&stop, coordinator_thread] {
    while (!stop.load(std::memory_order_relaxed)) {
      pthread_kill(coordinator_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  ProcessExecOptions options = ChaosOptions();
  ProcessExecutor executor(db_.get());
  auto run = executor.Execute(*plan_, options);

  stop.store(true, std::memory_order_relaxed);
  storm.join();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);

  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->exec.result, golden_);
}

}  // namespace
}  // namespace mjoin
