#include <gtest/gtest.h>

#include <set>

#include "plan/wisconsin_query.h"
#include "strategy/idealized.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

JoinQuery Query(QueryShape shape, int relations = 10,
                uint32_t cardinality = 1000) {
  auto query = MakeWisconsinChainQuery(shape, relations, cardinality);
  MJOIN_CHECK(query.ok()) << query.status();
  return *std::move(query);
}

ParallelPlan Plan(StrategyKind kind, QueryShape shape, uint32_t processors) {
  JoinQuery query = Query(shape);
  auto plan = MakeStrategy(kind)->Parallelize(query, processors,
                                              TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  return *std::move(plan);
}

size_t CountKind(const ParallelPlan& plan, XraOpKind kind) {
  size_t n = 0;
  for (const XraOp& op : plan.ops) n += op.kind == kind ? 1 : 0;
  return n;
}

uint64_t JoinProcesses(const ParallelPlan& plan) {
  uint64_t n = 0;
  for (const XraOp& op : plan.ops) {
    if (op.is_join()) n += op.processors.size();
  }
  return n;
}

TEST(StrategyTest, NamesAndFactory) {
  for (StrategyKind kind : kAllStrategies) {
    auto strategy = MakeStrategy(kind);
    EXPECT_EQ(strategy->kind(), kind);
    EXPECT_FALSE(strategy->name().empty());
  }
}

TEST(StrategyTest, AllPlansValidateOnAllShapes) {
  for (StrategyKind kind : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      ParallelPlan plan = Plan(kind, shape, 20);
      EXPECT_TRUE(plan.Validate().ok())
          << StrategyName(kind) << " on " << ShapeName(shape);
      EXPECT_FALSE(plan.ToString().empty());
    }
  }
}

// --- SP structure ----------------------------------------------------------

TEST(StrategyTest, SpUsesAllProcessorsPerJoinSequentially) {
  ParallelPlan plan = Plan(StrategyKind::kSP, QueryShape::kWideBushy, 16);
  for (const XraOp& op : plan.ops) {
    if (op.is_join()) {
      EXPECT_EQ(op.kind, XraOpKind::kSimpleHashJoin);
      EXPECT_EQ(op.processors.size(), 16u);
    }
  }
  // The paper's process count: one process per join per processor.
  EXPECT_EQ(JoinProcesses(plan), 9u * 16u);
  // Two groups per join (build, probe), strictly chained.
  EXPECT_EQ(plan.groups.size(), 18u);
}

TEST(StrategyTest, SpNeedsNoCostFunction) {
  // SP with wildly different coefficients must produce the same plan
  // structure (same processor lists everywhere).
  JoinQuery query = Query(QueryShape::kRightOrientedBushy);
  auto a = MakeStrategy(StrategyKind::kSP)
               ->Parallelize(query, 12, TotalCostModel());
  auto b = MakeStrategy(StrategyKind::kSP)
               ->Parallelize(query, 12,
                             TotalCostModel(JoinCostCoefficients{1, 50, 9}));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->ops.size(), b->ops.size());
  for (size_t i = 0; i < a->ops.size(); ++i) {
    EXPECT_EQ(a->ops[i].processors, b->ops[i].processors);
  }
}

TEST(StrategyTest, SpMaterializesEveryIntermediateResult) {
  ParallelPlan plan = Plan(StrategyKind::kSP, QueryShape::kLeftLinear, 8);
  // 9 joins -> 9 stored results (8 intermediates + final).
  EXPECT_EQ(plan.num_results, 9);
  EXPECT_EQ(CountKind(plan, XraOpKind::kRescan), 8u);
}

// --- SE structure ----------------------------------------------------------

TEST(StrategyTest, SeDegeneratesToSpOnLinearTrees) {
  for (QueryShape shape :
       {QueryShape::kLeftLinear, QueryShape::kRightLinear}) {
    ParallelPlan sp = Plan(StrategyKind::kSP, shape, 10);
    ParallelPlan se = Plan(StrategyKind::kSE, shape, 10);
    // Same number of groups, same processor width everywhere: SE adds no
    // inter-operator parallelism on a linear tree.
    EXPECT_EQ(se.groups.size(), sp.groups.size()) << ShapeName(shape);
    for (const XraOp& op : se.ops) {
      EXPECT_EQ(op.processors.size(), 10u);
      if (op.is_join()) {
        EXPECT_EQ(op.kind, XraOpKind::kSimpleHashJoin);
      }
    }
  }
}

TEST(StrategyTest, SeSplitsIndependentSubtreesDisjointly) {
  ParallelPlan plan = Plan(StrategyKind::kSE, QueryShape::kWideBushy, 20);
  // The two subtrees under the root are independent: their top joins must
  // use disjoint processor sets, and the root join all 20.
  const XraOp* root_join = nullptr;
  for (const XraOp& op : plan.ops) {
    if (op.is_join() && op.store_result == plan.final_result) {
      root_join = &op;
    }
  }
  ASSERT_NE(root_join, nullptr);
  EXPECT_EQ(root_join->processors.size(), 20u);

  const XraOp& left_producer =
      plan.ops[static_cast<size_t>(root_join->inputs[0].producer)];
  const XraOp& right_producer =
      plan.ops[static_cast<size_t>(root_join->inputs[1].producer)];
  ASSERT_EQ(left_producer.kind, XraOpKind::kRescan);
  ASSERT_EQ(right_producer.kind, XraOpKind::kRescan);
  std::set<uint32_t> left_set(left_producer.processors.begin(),
                              left_producer.processors.end());
  for (uint32_t p : right_producer.processors) {
    EXPECT_FALSE(left_set.contains(p))
        << "independent subtrees share processor " << p;
  }
}

// --- RD structure ----------------------------------------------------------

TEST(StrategyTest, RdOnRightLinearIsOnePipelinedStage) {
  ParallelPlan plan = Plan(StrategyKind::kRD, QueryShape::kRightLinear, 18);
  // One segment: one build group + one probe group.
  EXPECT_EQ(plan.groups.size(), 2u);
  EXPECT_EQ(CountKind(plan, XraOpKind::kRescan), 0u);
  // All 9 joins coexist on disjoint processors (like FP), but with the
  // simple hash-join.
  uint64_t total = 0;
  std::set<uint32_t> used;
  for (const XraOp& op : plan.ops) {
    if (!op.is_join()) continue;
    EXPECT_EQ(op.kind, XraOpKind::kSimpleHashJoin);
    for (uint32_t p : op.processors) EXPECT_TRUE(used.insert(p).second);
    total += op.processors.size();
  }
  EXPECT_EQ(total, 18u);
}

TEST(StrategyTest, RdOnLeftLinearDegeneratesToSp) {
  ParallelPlan rd = Plan(StrategyKind::kRD, QueryShape::kLeftLinear, 10);
  ParallelPlan sp = Plan(StrategyKind::kSP, QueryShape::kLeftLinear, 10);
  EXPECT_EQ(rd.groups.size(), sp.groups.size());
  for (const XraOp& op : rd.ops) {
    if (op.is_join()) {
      EXPECT_EQ(op.processors.size(), 10u);
    }
  }
  EXPECT_EQ(CountKind(rd, XraOpKind::kRescan),
            CountKind(sp, XraOpKind::kRescan));
}

TEST(StrategyTest, RdProbeGroupsWaitForAllBuilds) {
  ParallelPlan plan = Plan(StrategyKind::kRD, QueryShape::kRightLinear, 18);
  // The probe group's deps must be kBuildDone of all 9 joins.
  const TriggerGroup& probe_group = plan.groups.back();
  EXPECT_EQ(probe_group.deps.size(), 9u);
  for (const TriggerDep& dep : probe_group.deps) {
    EXPECT_EQ(dep.milestone, Milestone::kBuildDone);
  }
}

// --- FP structure ----------------------------------------------------------

TEST(StrategyTest, FpIsOneGroupWithPipeliningJoins) {
  ParallelPlan plan = Plan(StrategyKind::kFP, QueryShape::kWideBushy, 27);
  EXPECT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(CountKind(plan, XraOpKind::kRescan), 0u);
  std::set<uint32_t> used;
  uint64_t total = 0;
  for (const XraOp& op : plan.ops) {
    if (!op.is_join()) continue;
    EXPECT_EQ(op.kind, XraOpKind::kPipeliningHashJoin);
    for (uint32_t p : op.processors) EXPECT_TRUE(used.insert(p).second);
    total += op.processors.size();
  }
  // The paper: FP uses exactly one operation process per processor.
  EXPECT_EQ(total, 27u);
  EXPECT_EQ(JoinProcesses(plan), 27u);
}

TEST(StrategyTest, FpFailsWithFewerProcessorsThanJoins) {
  JoinQuery query = Query(QueryShape::kLeftLinear);
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(query, 8, TotalCostModel());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrategyTest, FpAllocatesMoreProcessorsToExpensiveJoins) {
  // On a left-linear tree the paper cost function makes upper joins
  // (intermediate operands) more expensive than the bottom join.
  ParallelPlan plan = Plan(StrategyKind::kFP, QueryShape::kLeftLinear, 40);
  size_t bottom = 0, top = 0;
  for (const XraOp& op : plan.ops) {
    if (!op.is_join()) continue;
    if (op.store_result == plan.final_result) top = op.processors.size();
    if (plan.ops[static_cast<size_t>(op.inputs[0].producer)].kind ==
        XraOpKind::kScan) {
      bottom = op.processors.size();
    }
  }
  EXPECT_GT(top, 0u);
  EXPECT_GT(bottom, 0u);
  EXPECT_GE(top, bottom);
}

// --- Paper-exact degeneration: stream counts ---------------------------------

TEST(StrategyTest, SpStreamCountMatchesPaperFormula) {
  // "A refragmentation of n fragments into m fragments generates n x m
  // tuple streams. So, for the 80 processor case the refragmentation of
  // one operand generates 6400 tuple streams" — left-linear: 8 rescans.
  ParallelPlan plan = Plan(StrategyKind::kSP, QueryShape::kLeftLinear, 80);
  EXPECT_EQ(plan.CountStreams(), 8u * 6400u);
}

// --- Idealized utilization ----------------------------------------------------

TEST(IdealizedTest, BlocksCoverAllJoinsWithinProcessorBounds) {
  std::vector<std::pair<int, int>> labels;
  JoinTree tree = BuildFigure2ExampleTree(&labels);
  std::map<int, double> work;
  for (auto [node, w] : labels) work[node] = w;
  for (StrategyKind kind : kAllStrategies) {
    auto blocks = IdealizedUtilization(kind, tree, work, 10);
    ASSERT_TRUE(blocks.ok()) << StrategyName(kind);
    EXPECT_EQ(blocks->size(), 4u);
    for (const IdealizedBlock& b : *blocks) {
      EXPECT_LT(b.proc_lo, b.proc_hi);
      EXPECT_LE(b.proc_hi, 10u);
      EXPECT_LT(b.start, b.end);
    }
    EXPECT_FALSE(RenderIdealized(*blocks, 10).empty());
  }
}

TEST(IdealizedTest, SpIsSequentialAndFullWidth) {
  std::vector<std::pair<int, int>> labels;
  JoinTree tree = BuildFigure2ExampleTree(&labels);
  std::map<int, double> work;
  for (auto [node, w] : labels) work[node] = w;
  auto blocks = IdealizedUtilization(StrategyKind::kSP, tree, work, 10);
  ASSERT_TRUE(blocks.ok());
  double t = 0;
  for (const IdealizedBlock& b : *blocks) {
    EXPECT_EQ(b.proc_lo, 0u);
    EXPECT_EQ(b.proc_hi, 10u);
    EXPECT_DOUBLE_EQ(b.start, t);  // no gaps, no overlap
    t = b.end;
  }
  // Total span = total work / P = (1+5+3+4)/10.
  EXPECT_DOUBLE_EQ(t, 1.3);
}

TEST(IdealizedTest, FpStartsEveryJoinNearTimeZero) {
  std::vector<std::pair<int, int>> labels;
  JoinTree tree = BuildFigure2ExampleTree(&labels);
  std::map<int, double> work;
  for (auto [node, w] : labels) work[node] = w;
  auto blocks = IdealizedUtilization(StrategyKind::kFP, tree, work, 10);
  ASSERT_TRUE(blocks.ok());
  double makespan = 0;
  for (const IdealizedBlock& b : *blocks) makespan = std::max(makespan, b.end);
  for (const IdealizedBlock& b : *blocks) {
    EXPECT_LT(b.start, makespan / 2) << "FP join starts late";
  }
}

}  // namespace
}  // namespace mjoin
