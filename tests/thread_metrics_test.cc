// Observability of the threaded backend: per-operator metrics, stats
// invariants that must hold for every strategy, trace recording, and the
// Chrome trace export.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

constexpr int kRelations = 5;
constexpr uint32_t kCardinality = 400;
constexpr uint32_t kProcessors = 8;
// Generous: same-node sends bypass the backpressure bound by design, so
// peak depth may exceed max_queued_batches — but never by this much
// without a real leak.
constexpr size_t kMaxQueued = 256;

struct Fixture {
  Database db;
  JoinQuery query;
  ResultSummary reference;
  ParallelPlan plan;
};

Fixture MakeFixture(StrategyKind strategy) {
  Fixture f{MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/7),
            {}, {}, {}};
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, kRelations,
                                       kCardinality);
  EXPECT_TRUE(query.ok());
  f.query = *query;
  auto reference = ReferenceSummary(f.query, f.db);
  EXPECT_TRUE(reference.ok());
  f.reference = *reference;
  auto plan = MakeStrategy(strategy)->Parallelize(f.query, kProcessors,
                                                  TotalCostModel());
  EXPECT_TRUE(plan.ok()) << plan.status();
  f.plan = *plan;
  return f;
}

class ThreadMetricsTest : public testing::TestWithParam<StrategyKind> {};

/// The cross-strategy stats invariants: batch conservation, bounded
/// queues, and per-operator row accounting consistent with the plan's
/// data flow and the reference result.
TEST_P(ThreadMetricsTest, StatsInvariants) {
  Fixture f = MakeFixture(GetParam());
  ThreadExecutor executor(&f.db);
  ThreadExecOptions options;
  options.batch_size = 64;
  options.max_queued_batches = kMaxQueued;
  options.collect_metrics = true;
  auto run = executor.Execute(f.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  const ThreadExecStats& stats = run->stats;

  // Every processed batch was sent (duplicates are counted into
  // batches_sent as extra copies; drops only lower the processed side).
  EXPECT_LE(stats.batches_processed,
            stats.batches_sent + stats.batches_duplicated);
  if (stats.queue_overflows == 0) {
    EXPECT_LE(stats.peak_queue_depth, kMaxQueued);
  }

  ASSERT_EQ(stats.per_op.size(), f.plan.ops.size());
  uint64_t total_busy_ops = 0;
  for (const ThreadOpStats& per_op : stats.per_op) {
    const XraOp& op = f.plan.ops[static_cast<size_t>(per_op.op_id)];
    EXPECT_EQ(per_op.instances, op.processors.size());
    EXPECT_EQ(per_op.name, op.label);

    // Without faults, everything a producer emitted arrives at its
    // consumer: rows out == the consumer's rows in on our port.
    if (op.consumer >= 0) {
      const OpMetrics& consumer_metrics =
          stats.per_op[static_cast<size_t>(op.consumer)].metrics;
      EXPECT_EQ(per_op.metrics.rows_out,
                consumer_metrics.rows_in[op.consumer_port])
          << "op " << per_op.op_id << " -> op " << op.consumer;
    }
    // The operation storing the final result produced exactly the
    // reference cardinality.
    if (op.store_result == f.plan.final_result) {
      EXPECT_EQ(per_op.metrics.rows_out, f.reference.cardinality);
    }
    if (per_op.metrics.busy_seconds() > 0) ++total_busy_ops;
    EXPECT_GE(per_op.metrics.busy_seconds(), 0.0);
  }
  EXPECT_GT(total_busy_ops, 0u);

  // The rendered table mentions every op id and the header columns.
  std::string table = RenderThreadOpStats(stats);
  EXPECT_NE(table.find("rows out"), std::string::npos);
  EXPECT_NE(table.find("collisions"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ThreadMetricsTest,
                         testing::ValuesIn(kAllStrategies),
                         [](const testing::TestParamInfo<StrategyKind>& info) {
                           return StrategyName(info.param);
                         });

/// Joins must report hash-table fill; scans must report scan-time rows.
TEST(ThreadMetricsTest, PerOpDetailCounters) {
  Fixture f = MakeFixture(StrategyKind::kFP);
  ThreadExecutor executor(&f.db);
  ThreadExecOptions options;
  options.batch_size = 64;
  auto run = executor.Execute(f.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  for (const ThreadOpStats& per_op : run->stats.per_op) {
    const XraOp& op = f.plan.ops[static_cast<size_t>(per_op.op_id)];
    if (op.is_join()) {
      EXPECT_EQ(per_op.metrics.rows_in[0] + per_op.metrics.rows_in[1],
                2 * kCardinality)
          << "join " << per_op.op_id;
      if (op.kind != XraOpKind::kSortMergeJoin) {
        EXPECT_GT(per_op.metrics.hash_table_rows, 0u);
        EXPECT_GT(per_op.metrics.peak_memory_bytes, 0u);
      }
      EXPECT_GT(per_op.metrics.batch_seconds.count(), 0u);
    }
    if (op.kind == XraOpKind::kScan) {
      EXPECT_EQ(per_op.metrics.rows_out, kCardinality);
      EXPECT_EQ(per_op.metrics.batch_seconds.count(), 0u);
    }
  }
}

/// With both observability switches off nothing is gathered — the
/// disabled path stays free of per-batch bookkeeping.
TEST(ThreadMetricsTest, DisabledPathGathersNothing) {
  Fixture f = MakeFixture(StrategyKind::kFP);
  ThreadExecutor executor(&f.db);
  ThreadExecOptions options;
  options.collect_metrics = false;
  options.record_trace = false;
  auto run = executor.Execute(f.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->stats.per_op.empty());
  EXPECT_EQ(run->trace, nullptr);
  EXPECT_TRUE(run->utilization_diagram.empty());
  EXPECT_EQ(RenderThreadOpStats(run->stats), "");
}

/// Run-level counters land in the caller's registry.
TEST(ThreadMetricsTest, PublishesToRegistry) {
  Fixture f = MakeFixture(StrategyKind::kFP);
  ThreadExecutor executor(&f.db);
  MetricsRegistry registry;
  ThreadExecOptions options;
  options.batch_size = 64;
  options.metrics_registry = &registry;
  auto run = executor.Execute(f.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(registry.counter("thread.batches_sent")->value(),
            run->stats.batches_sent);
  EXPECT_EQ(registry.counter("thread.batches_processed")->value(),
            run->stats.batches_processed);
  EXPECT_GT(registry.histogram("thread.batch_seconds")->count(), 0);
  EXPECT_EQ(registry.histogram("thread.wall_seconds")->count(), 1);
  std::string table = registry.RenderTable();
  EXPECT_NE(table.find("thread.batches_sent"), std::string::npos);
}

/// Minimal JSON syntax check: balanced containers outside of strings,
/// no trailing garbage. Enough to catch an escaping or comma bug without
/// a JSON library.
void CheckJsonSyntax(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

/// End-to-end trace: recorded events, sane utilization, a renderable
/// diagram, and a syntactically valid Chrome trace export.
TEST(ThreadMetricsTest, TraceRecordsAndExports) {
  Fixture f = MakeFixture(StrategyKind::kFP);
  ThreadExecutor executor(&f.db);
  ThreadExecOptions options;
  options.batch_size = 64;
  options.record_trace = true;
  auto run = executor.Execute(f.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();

  ASSERT_NE(run->trace, nullptr);
  EXPECT_EQ(run->trace->num_workers(), kProcessors);
  EXPECT_GT(run->trace->num_events(), 0u);
  EXPECT_GT(run->utilization, 0.0);
  EXPECT_LE(run->utilization, 1.0);
  // One row per worker plus the time axis.
  EXPECT_NE(run->utilization_diagram.find("> time ("), std::string::npos);
  EXPECT_NE(run->utilization_diagram.find("us)"), std::string::npos);

  std::string json = run->trace->ToChromeJson();
  EXPECT_EQ(json.rfind("{", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  CheckJsonSyntax(json);
}

/// The recorder itself: intervals land on the right worker row, blocked
/// time is excluded from utilization, rendering uses the op labels.
TEST(ThreadTraceRecorderTest, RecordUtilizationAndRender) {
  ThreadTraceRecorder recorder(
      2, {ThreadTraceOpInfo{"join#1", '1'}, ThreadTraceOpInfo{"scan", 's'}});
  // Worker 0 busy the first half, worker 1 blocked the second half.
  recorder.Record(0, 0, 500'000, ThreadWorkType::kBuild, /*op_id=*/0);
  recorder.Record(1, 500'000, 1'000'000, ThreadWorkType::kBlocked, -1);
  EXPECT_EQ(recorder.num_events(), 2u);

  // Only worker 0's interval counts: 0.5ms busy of 2 * 1ms capacity.
  EXPECT_NEAR(recorder.Utilization(1'000'000), 0.25, 1e-9);

  std::string diagram = recorder.RenderAscii(1'000'000, /*width=*/10);
  EXPECT_NE(diagram.find("11111"), std::string::npos);  // op 0's label
  EXPECT_NE(diagram.find("~~~~~"), std::string::npos);  // blocked fill

  // Out-of-range worker and empty intervals are ignored.
  recorder.Record(7, 0, 100, ThreadWorkType::kScan, 1);
  recorder.Record(0, 100, 100, ThreadWorkType::kScan, 1);
  EXPECT_EQ(recorder.num_events(), 2u);

  std::string json = recorder.ToChromeJson();
  EXPECT_NE(json.find("\"cat\":\"blocked\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"join#1\""), std::string::npos);
}

}  // namespace
}  // namespace mjoin
