#include "workload/workload.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "plan/catalog.h"
#include "plan/wisconsin_query.h"
#include "storage/wisconsin.h"

namespace mjoin {
namespace {

// Frequency of each unique1 value in a generated relation.
std::map<int32_t, size_t> Unique1Histogram(const Relation& rel) {
  std::map<int32_t, size_t> counts;
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    ++counts[rel.tuple(i).GetInt32(kUnique1)];
  }
  return counts;
}

TEST(WorkloadSpecTest, ValidateRejectsBadAxes) {
  WorkloadSpec spec;
  spec.num_relations = 1;
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec();
  spec.selectivity = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.selectivity = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec();
  spec.fanout = spec.cardinality + 1;
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec();
  spec.zipf_theta = -0.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec();
  spec.filters.push_back({kStringU1, CompareOp::kEq, 0, 0});
  EXPECT_FALSE(spec.Validate().ok());

  EXPECT_TRUE(WorkloadSpec().Validate().ok());
}

TEST(WorkloadSpecTest, UnknownPresetListsValidNames) {
  auto preset = WorkloadPreset("bogus");
  ASSERT_FALSE(preset.ok());
  for (const std::string& name : WorkloadPresetNames()) {
    EXPECT_NE(preset.status().message().find(name), std::string::npos)
        << "error should list '" << name << "'";
  }
}

TEST(WorkloadSpecTest, EveryPresetValidatesAndNamesItself) {
  for (const std::string& name : WorkloadPresetNames()) {
    auto preset = WorkloadPreset(name);
    ASSERT_TRUE(preset.ok()) << name;
    EXPECT_TRUE(preset->Validate().ok()) << name;
    EXPECT_EQ(preset->name, name);
    EXPECT_NE(preset->ToString().find(name), std::string::npos);
  }
}

TEST(WorkloadGeneratorTest, DeterministicInSpecAndIndex) {
  auto spec = WorkloadPreset("adversarial");
  ASSERT_TRUE(spec.ok());
  Relation a = GenerateWorkloadRelation(*spec, 1);
  Relation b = GenerateWorkloadRelation(*spec, 1);
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  EXPECT_EQ(std::memcmp(a.raw_data(), b.raw_data(), a.byte_size()), 0);

  // A different relation index or seed changes the data.
  Relation c = GenerateWorkloadRelation(*spec, 2);
  WorkloadSpec reseeded = *spec;
  reseeded.seed ^= 1;
  Relation d = GenerateWorkloadRelation(reseeded, 1);
  EXPECT_NE(std::memcmp(a.raw_data(), c.raw_data(),
                        std::min(a.byte_size(), c.byte_size())),
            0);
  EXPECT_NE(std::memcmp(a.raw_data(), d.raw_data(),
                        std::min(a.byte_size(), d.byte_size())),
            0);
}

TEST(WorkloadGeneratorTest, ZipfThetaConcentratesTheHotKey) {
  WorkloadSpec uniform;
  uniform.cardinality = 4000;
  WorkloadSpec zipf = uniform;
  zipf.zipf_theta = 1.0;

  auto uniform_counts = Unique1Histogram(GenerateWorkloadRelation(uniform, 0));
  auto zipf_counts = Unique1Histogram(GenerateWorkloadRelation(zipf, 0));

  // The identity rank-to-value map makes value 0 the hottest. Under
  // Zipf(1) over 4000 values it draws ~ N/H(4000) ~ 450 rows; uniform
  // gives every value ~1.
  size_t uniform_hot = uniform_counts.count(0) ? uniform_counts[0] : 0;
  size_t zipf_hot = zipf_counts.count(0) ? zipf_counts[0] : 0;
  EXPECT_LT(uniform_hot, 20u);
  EXPECT_GT(zipf_hot, 100u);
}

TEST(WorkloadGeneratorTest, FanoutShrinksTheDomain) {
  WorkloadSpec spec;
  spec.cardinality = 4000;
  spec.fanout = 8;
  EXPECT_EQ(spec.domain(), 500u);
  Relation rel = GenerateWorkloadRelation(spec, 0);
  for (const auto& [value, count] : Unique1Histogram(rel)) {
    EXPECT_GE(value, 0);
    EXPECT_LT(value, 500);
  }
}

TEST(WorkloadGeneratorTest, SelectivityProducesDisjointMissValues) {
  WorkloadSpec spec;
  spec.cardinality = 4000;
  spec.selectivity = 0.5;
  Relation r0 = GenerateWorkloadRelation(spec, 0);
  Relation r1 = GenerateWorkloadRelation(spec, 1);

  auto h0 = Unique1Histogram(r0);
  auto h1 = Unique1Histogram(r1);
  size_t misses = 0;
  for (const auto& [value, count] : h0) {
    if (static_cast<uint32_t>(value) >= spec.domain()) {
      misses += count;
      // Miss values are unique to (relation, column): they never appear
      // in any other relation, so every one of them is Bloom-prunable.
      EXPECT_EQ(h1.count(value), 0u) << value;
    }
  }
  double miss_fraction =
      static_cast<double>(misses) / static_cast<double>(r0.num_tuples());
  EXPECT_NEAR(miss_fraction, 0.5, 0.05);
}

TEST(WorkloadGeneratorTest, FiltersDropRowsAtGeneration) {
  WorkloadSpec spec;
  spec.cardinality = 4000;
  // two == 0 keeps every even unique1: about half the rows.
  spec.filters.push_back({kTwo, CompareOp::kEq, 0, 0});
  ASSERT_TRUE(spec.Validate().ok());
  Relation rel = GenerateWorkloadRelation(spec, 0);
  EXPECT_GT(rel.num_tuples(), 0u);
  EXPECT_LT(rel.num_tuples(), spec.cardinality);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    EXPECT_EQ(rel.tuple(i).GetInt32(kTwo), 0);
  }
}

TEST(WorkloadGeneratorTest, DatabaseAndCatalogAreHonest) {
  auto spec = WorkloadPreset("zipf1-mn");
  ASSERT_TRUE(spec.ok());
  auto db = MakeWorkloadDatabase(*spec);
  ASSERT_TRUE(db.ok());

  Catalog catalog;
  ASSERT_TRUE(AnalyzeWorkload(*spec, *db, &catalog).ok());
  for (const std::string& name :
       WisconsinRelationNames(spec->num_relations)) {
    auto rel = db->Get(name);
    ASSERT_TRUE(rel.ok()) << name;
    EXPECT_EQ((*rel)->num_tuples(), spec->cardinality);
    auto stats = catalog.Get(name, kUnique1);
    ASSERT_TRUE(stats.ok()) << name;
    // Stats describe what was generated: row count matches, and the
    // distinct count is bounded by the shrunken m:n domain.
    EXPECT_EQ(stats->num_tuples, spec->cardinality);
    EXPECT_LE(stats->distinct, static_cast<uint64_t>(spec->domain()));
  }
}

}  // namespace
}  // namespace mjoin
