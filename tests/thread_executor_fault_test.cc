// Resilience tests for the threaded backend: every fault scenario must end
// with a clean Status, all worker threads joined, and — when the fault does
// not change the data — reference-identical results.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "engine/database.h"
#include "engine/fault_injector.h"
#include "engine/reference.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

/// Live thread count of this process (Linux); 0 where unsupported.
size_t CountThreads() {
#ifdef __linux__
  size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    ++n;
  }
  return n;
#else
  return 0;
#endif
}

/// A small Wisconsin chain plus everything needed to execute and verify it.
struct QuerySetup {
  Database db;
  ParallelPlan plan;
  ResultSummary reference;
};

QuerySetup MakeSetup(StrategyKind strategy,
                QueryShape shape = QueryShape::kWideBushy, int relations = 5,
                uint32_t card = 300, uint32_t procs = 8) {
  QuerySetup setup{MakeWisconsinDatabase(relations, card, /*seed=*/7), {}, {}};
  auto query = MakeWisconsinChainQuery(shape, relations, card);
  EXPECT_TRUE(query.ok());
  auto reference = ReferenceSummary(*query, setup.db);
  EXPECT_TRUE(reference.ok());
  setup.reference = *reference;
  auto plan =
      MakeStrategy(strategy)->Parallelize(*query, procs, TotalCostModel());
  EXPECT_TRUE(plan.ok()) << plan.status();
  setup.plan = *std::move(plan);
  return setup;
}

int FirstJoinOp(const ParallelPlan& plan) {
  for (const XraOp& o : plan.ops) {
    if (o.is_join()) return o.id;
  }
  return -1;
}

class FaultScenarioTest : public testing::TestWithParam<StrategyKind> {};

std::string StratName(const testing::TestParamInfo<StrategyKind>& info) {
  return StrategyName(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FaultScenarioTest,
                         testing::ValuesIn(kAllStrategies), StratName);

// Control run: no fault, but backpressure and budget tracking on. Results
// must match the reference engine exactly and stats must be populated.
TEST_P(FaultScenarioTest, NoFaultControlMatchesReference) {
  QuerySetup setup = MakeSetup(GetParam());
  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.batch_size = 32;
  options.max_queued_batches = 4;

  size_t threads_before = CountThreads();
  auto run = executor.Execute(setup.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(CountThreads(), threads_before);

  EXPECT_EQ(run->result.cardinality, setup.reference.cardinality);
  EXPECT_EQ(run->result.checksum, setup.reference.checksum);
  EXPECT_GT(run->stats.batches_sent, 0u);
  EXPECT_GT(run->stats.batches_processed, 0u);
  EXPECT_GT(run->stats.peak_memory_bytes, 0u);
  EXPECT_EQ(run->stats.batches_dropped, 0u);
  EXPECT_EQ(run->stats.batches_duplicated, 0u);
}

// A slow worker delays every message on node 0. The query slows down but
// completes with the right answer — pipelining tolerates stragglers.
TEST_P(FaultScenarioTest, SlowWorkerStillCorrect) {
  QuerySetup setup = MakeSetup(GetParam());
  FaultScenario scenario;
  scenario.kind = FaultKind::kSlowWorker;
  scenario.node = 0;
  scenario.delay = std::chrono::microseconds(200);
  FaultInjector injector(scenario);

  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.max_queued_batches = 4;
  options.fault_injector = &injector;

  size_t threads_before = CountThreads();
  auto run = executor.Execute(setup.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(CountThreads(), threads_before);
  EXPECT_EQ(run->result.cardinality, setup.reference.cardinality);
  EXPECT_EQ(run->result.checksum, setup.reference.checksum);
  EXPECT_GT(injector.faults_injected(), 0u);
}

// A join fails mid-stream. The injected status must surface verbatim and
// teardown must join every worker even with batches still in flight.
TEST_P(FaultScenarioTest, OperatorFailureAbortsCleanly) {
  QuerySetup setup = MakeSetup(GetParam());
  FaultScenario scenario;
  scenario.kind = FaultKind::kFailOperator;
  scenario.op = FirstJoinOp(setup.plan);
  scenario.after_batches = 1;
  FaultInjector injector(scenario);

  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.batch_size = 32;
  options.fault_injector = &injector;

  size_t threads_before = CountThreads();
  ThreadExecStats stats;
  auto run = executor.Execute(setup.plan, options, &stats);
  EXPECT_EQ(CountThreads(), threads_before);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("injected fault"), std::string::npos);
  // Partial progress is still reported for diagnosis.
  EXPECT_GT(stats.batches_processed, 0u);
}

// A budget far below the working set: the query must return
// ResourceExhausted instead of OOM-ing, with threads joined.
TEST_P(FaultScenarioTest, TightMemoryBudgetAborts) {
  QuerySetup setup = MakeSetup(GetParam());
  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.memory_budget_bytes = 4096;

  size_t threads_before = CountThreads();
  ThreadExecStats stats;
  auto run = executor.Execute(setup.plan, options, &stats);
  EXPECT_EQ(CountThreads(), threads_before);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
}

// A zero or negative deadline is a caller bug, not an expired query:
// Execute() rejects it up front with kInvalidArgument before any worker
// thread starts.
TEST_P(FaultScenarioTest, NonPositiveDeadlineRejected) {
  QuerySetup setup = MakeSetup(GetParam());
  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;

  size_t threads_before = CountThreads();
  for (auto bad : {std::chrono::milliseconds(0), std::chrono::milliseconds(-5)}) {
    options.deadline = bad;
    auto run = executor.Execute(setup.plan, options);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(CountThreads(), threads_before);
}

// A deadline that expires mid-run (a slow worker keeps the query alive past
// it): workers must be torn down cleanly and the status is
// kDeadlineExceeded.
TEST_P(FaultScenarioTest, TinyDeadlineExpires) {
  QuerySetup setup = MakeSetup(GetParam());
  FaultScenario scenario;
  scenario.kind = FaultKind::kSlowWorker;
  scenario.node = 0;
  scenario.delay = std::chrono::milliseconds(50);
  FaultInjector injector(scenario);

  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.fault_injector = &injector;
  options.deadline = std::chrono::milliseconds(1);

  size_t threads_before = CountThreads();
  auto run = executor.Execute(setup.plan, options);
  EXPECT_EQ(CountThreads(), threads_before);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

// Cancellation fired from another thread mid-run (a slow worker keeps the
// query alive long enough for the cancel to land mid-flight).
TEST_P(FaultScenarioTest, CancellationMidRun) {
  QuerySetup setup = MakeSetup(GetParam());
  FaultScenario scenario;
  scenario.kind = FaultKind::kSlowWorker;
  scenario.node = 0;
  scenario.delay = std::chrono::milliseconds(20);
  FaultInjector injector(scenario);

  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.fault_injector = &injector;
  CancellationToken token = options.cancellation;

  size_t threads_before = CountThreads();
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.Cancel();
  });
  auto run = executor.Execute(setup.plan, options);
  canceller.join();
  EXPECT_EQ(CountThreads(), threads_before);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

TEST(FaultScenarioEdgeTest, PreCancelledTokenNeverRuns) {
  QuerySetup setup = MakeSetup(StrategyKind::kFP);
  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.cancellation.Cancel();
  auto run = executor.Execute(setup.plan, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

// Acceptance: FP on the right-linear shape with max_queued_batches = 4
// completes with bounded queues and an unchanged result.
TEST(BackpressureTest, FpRightLinearBoundedQueueDepth) {
  QuerySetup setup = MakeSetup(StrategyKind::kFP, QueryShape::kRightLinear,
                          /*relations=*/5, /*card=*/400, /*procs=*/8);
  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.batch_size = 16;  // many batches so the bound actually engages
  options.max_queued_batches = 4;

  auto run = executor.Execute(setup.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result.cardinality, setup.reference.cardinality);
  EXPECT_EQ(run->result.checksum, setup.reference.checksum);
  EXPECT_GT(run->stats.batches_sent, 0u);
  EXPECT_EQ(run->stats.queue_overflows, 0u);
  // Cross-node producers block below the bound; same-node sends bypass it
  // (blocking there would self-deadlock), so allow that much slack on top.
  EXPECT_LE(run->stats.peak_queue_depth, 2 * options.max_queued_batches);
}

// Acceptance: a 1 MB budget on the 10-relation chain is not enough — the
// query returns ResourceExhausted (not a crash); lifting the budget yields
// the exact reference result.
TEST(MemoryBudgetAcceptanceTest, TenRelationChainUnderOneMegabyte) {
  QuerySetup setup = MakeSetup(StrategyKind::kFP, QueryShape::kWideBushy,
                          /*relations=*/10, /*card=*/5000, /*procs=*/16);
  ThreadExecutor executor(&setup.db);

  ThreadExecOptions limited;
  limited.memory_budget_bytes = 1 << 20;
  ThreadExecStats stats;
  auto starved = executor.Execute(setup.plan, limited, &stats);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);

  ThreadExecOptions unlimited;
  auto run = executor.Execute(setup.plan, unlimited);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result.cardinality, setup.reference.cardinality);
  EXPECT_EQ(run->result.checksum, setup.reference.checksum);
  // The unlimited run must actually need more than the 1 MB that starved.
  EXPECT_GT(run->stats.peak_memory_bytes, size_t{1} << 20);
}

// Lossy interconnect: dropped batches lose rows but execution still
// terminates cleanly (end-of-stream is per-producer, not per-batch).
TEST(FaultScenarioEdgeTest, DroppedBatchesStillTerminate) {
  QuerySetup setup = MakeSetup(StrategyKind::kSP);
  FaultScenario scenario;
  scenario.kind = FaultKind::kDropBatch;
  scenario.probability = 0.5;
  scenario.seed = 11;
  FaultInjector injector(scenario);

  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.batch_size = 32;
  options.fault_injector = &injector;
  auto run = executor.Execute(setup.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run->stats.batches_dropped, 0u);
  EXPECT_LT(run->result.cardinality, setup.reference.cardinality);
}

TEST(FaultScenarioEdgeTest, DuplicatedBatchesStillTerminate) {
  QuerySetup setup = MakeSetup(StrategyKind::kSP);
  FaultScenario scenario;
  scenario.kind = FaultKind::kDuplicateBatch;
  scenario.probability = 0.5;
  scenario.seed = 13;
  FaultInjector injector(scenario);

  ThreadExecutor executor(&setup.db);
  ThreadExecOptions options;
  options.batch_size = 32;
  options.fault_injector = &injector;
  auto run = executor.Execute(setup.plan, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run->stats.batches_duplicated, 0u);
  EXPECT_GT(run->result.cardinality, setup.reference.cardinality);
}

// Repeated aborts must not leak threads or corrupt later runs: interleave
// failing and succeeding executions on the same executor.
TEST(FaultScenarioEdgeTest, AbortThenReuseExecutor) {
  QuerySetup setup = MakeSetup(StrategyKind::kFP);
  ThreadExecutor executor(&setup.db);

  size_t threads_before = CountThreads();
  for (int i = 0; i < 3; ++i) {
    ThreadExecOptions starved;
    starved.memory_budget_bytes = 4096;
    auto bad = executor.Execute(setup.plan, starved);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kResourceExhausted);

    auto good = executor.Execute(setup.plan, ThreadExecOptions());
    ASSERT_TRUE(good.ok()) << good.status();
    EXPECT_EQ(good->result.cardinality, setup.reference.cardinality);
    EXPECT_EQ(good->result.checksum, setup.reference.checksum);
  }
  EXPECT_EQ(CountThreads(), threads_before);
}

}  // namespace
}  // namespace mjoin
