#include <gtest/gtest.h>

#include <set>

#include "engine/database.h"
#include "engine/experiment.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "exec/batch.h"
#include "plan/wisconsin_query.h"
#include "sim/trace.h"
#include "storage/wisconsin.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

// --- TupleBatch -----------------------------------------------------------------

TEST(TupleBatchTest, AppendAndRead) {
  auto schema = std::make_shared<const Schema>(
      Schema({Column::Int32("a"), Column::Int32("b")}));
  TupleBatch batch(schema);
  EXPECT_TRUE(batch.empty());
  for (int32_t i = 0; i < 10; ++i) {
    TupleWriter w = batch.AppendTuple();
    w.SetInt32(0, i);
    w.SetInt32(1, i * 2);
  }
  EXPECT_EQ(batch.num_tuples(), 10u);
  EXPECT_EQ(batch.tuple(7).GetInt32(1), 14);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
}

TEST(TupleBatchTest, MoveTransfersOwnership) {
  auto schema = std::make_shared<const Schema>(Schema({Column::Int32("a")}));
  TupleBatch a(schema);
  TupleWriter w = a.AppendTuple();
  w.SetInt32(0, 5);
  TupleBatch b = std::move(a);
  EXPECT_EQ(b.num_tuples(), 1u);
  EXPECT_EQ(b.tuple(0).GetInt32(0), 5);
}

TEST(TupleBatchTest, AppendRowCopies) {
  auto schema = std::make_shared<const Schema>(Schema({Column::Int32("a")}));
  TupleBatch a(schema), b(schema);
  TupleWriter w = a.AppendTuple();
  w.SetInt32(0, 9);
  b.AppendRow(a.tuple(0).data());
  a.Clear();
  EXPECT_EQ(b.tuple(0).GetInt32(0), 9);
}

// --- CSV exports -----------------------------------------------------------------

TEST(CsvExportTest, TraceCsvHasOneLinePerInterval) {
  TraceRecorder trace(2);
  trace.Record(0, 0, 10, 'a');
  trace.Record(1, 5, 15, 'b');
  std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("processor,start,end,label"), std::string::npos);
  EXPECT_NE(csv.find("0,0,10,a"), std::string::npos);
  EXPECT_NE(csv.find("1,5,15,b"), std::string::npos);
}

TEST(CsvExportTest, ExperimentCsvSkipsUnplaceableCells) {
  ExperimentConfig config;
  config.shape = QueryShape::kLeftLinear;
  config.num_relations = 6;
  config.cardinality = 100;
  config.processors = {3, 8};  // FP unplaceable at 3 (5 joins)
  config.verify = false;
  auto result = RunShapeExperiment(config);
  ASSERT_TRUE(result.ok());
  std::string csv = result->ToCsv();
  EXPECT_NE(csv.find("SP,3,"), std::string::npos);
  EXPECT_EQ(csv.find("FP,3,"), std::string::npos);
  EXPECT_NE(csv.find("FP,8,"), std::string::npos);
}

// --- EXPLAIN ANALYZE ---------------------------------------------------------------

TEST(OpStatsTest, CountersAreConsistent) {
  constexpr uint32_t kCardinality = 500;
  Database db = MakeWisconsinDatabase(4, kCardinality, 67);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 4,
                                       kCardinality);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 6, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  SimExecutor executor(&db);
  auto run = executor.Execute(*plan, SimExecOptions());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->op_stats.size(), plan->ops.size());

  for (const OpStats& stats : run->op_stats) {
    ASSERT_GE(stats.op_id, 0);
    const XraOp& op = plan->ops[static_cast<size_t>(stats.op_id)];
    if (op.is_source()) {
      EXPECT_EQ(stats.tuples_in, 0u);
      // Base relations and intermediates all hold kCardinality tuples.
      EXPECT_EQ(stats.tuples_out, kCardinality);
    } else {
      // Each join reads both operands and emits one result per tuple.
      EXPECT_EQ(stats.tuples_in, 2 * kCardinality);
      EXPECT_EQ(stats.tuples_out, kCardinality);
    }
    EXPECT_GT(stats.busy_ticks, 0);
    EXPECT_LE(stats.last_finish, run->response_ticks);
  }
  std::string rendered = RenderOpStats(*plan, *run);
  EXPECT_NE(rendered.find("tuples in"), std::string::npos);
  EXPECT_NE(rendered.find("simple-hash-join"), std::string::npos);
}

// --- PlanBuilder label overflow ------------------------------------------------------

TEST(BuilderTest, ManyJoinsGetDistinctishLabels) {
  // 12 joins: labels run '1'..'9' then 'a'..; must not crash and plans
  // stay valid.
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 13, 50);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate().ok());
  std::set<char> labels;
  for (const XraOp& op : plan->ops) {
    if (op.is_join()) labels.insert(op.trace_label);
  }
  EXPECT_EQ(labels.size(), 12u);
}

// --- Scheduler/broker node accounting ------------------------------------------------

TEST(ServiceNodeTest, WorkerUtilizationExcludesServiceNodes) {
  Database db = MakeWisconsinDatabase(4, 300, 71);
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, 4, 300);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  SimExecutor executor(&db);
  SimExecOptions options;
  options.record_trace = true;
  auto run = executor.Execute(*plan, options);
  ASSERT_TRUE(run.ok());
  // The diagram shows workers + 2 service rows; utilization averages
  // workers only and must be a sane fraction.
  EXPECT_GT(run->utilization, 0.05);
  EXPECT_LE(run->utilization, 1.0);
  // Scheduler ('s' init tasks) and broker ('b') appear in the diagram.
  EXPECT_NE(run->utilization_diagram.find('s'), std::string::npos);
  EXPECT_NE(run->utilization_diagram.find('b'), std::string::npos);
}

// --- Executor failure surfacing --------------------------------------------------

TEST(ExecutorErrorTest, UnknownRelationFailsCleanly) {
  Database db = MakeWisconsinDatabase(2, 100, 73);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 2, 100);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  // Point a scan at a relation the database does not have.
  for (XraOp& op : plan->ops) {
    if (op.kind == XraOpKind::kScan) op.relation = "missing";
  }
  SimExecutor executor(&db);
  EXPECT_EQ(executor.Execute(*plan, SimExecOptions()).status().code(),
            StatusCode::kNotFound);
}

TEST(ExecutorErrorTest, InvalidPlanRejectedBeforeExecution) {
  Database db = MakeWisconsinDatabase(2, 100, 73);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 2, 100);
  ASSERT_TRUE(query.ok());
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(*query, 4, TotalCostModel());
  ASSERT_TRUE(plan.ok());
  plan->final_result = 99;  // structural corruption
  SimExecutor executor(&db);
  EXPECT_EQ(executor.Execute(*plan, SimExecOptions()).status().code(),
            StatusCode::kInternal);
  ThreadExecutor threads(&db);
  EXPECT_EQ(threads.Execute(*plan, ThreadExecOptions()).status().code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace mjoin
