#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_budget.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace mjoin {
namespace {

// --- Status / StatusOr ------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad knob");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kResourceExhausted,
        StatusCode::kCancelled, StatusCode::kDeadlineExceeded}) {
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, CancelledAndDeadlineExceeded) {
  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller gave up");

  Status late = Status::DeadlineExceeded("query ran past 5ms");
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: query ran past 5ms");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Status UseParsed(int x, int* out) {
  MJOIN_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> good = ParsePositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 4);

  StatusOr<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParsed(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UseParsed(-7, &out).code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> boxed = std::make_unique<int>(5);
  ASSERT_TRUE(boxed.ok());
  std::unique_ptr<int> owned = std::move(boxed).value();
  EXPECT_EQ(*owned, 5);
}

// --- MemoryBudget -----------------------------------------------------------

TEST(MemoryBudgetTest, ReserveReleaseAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Reserve(600).ok());
  EXPECT_TRUE(budget.Reserve(300).ok());
  EXPECT_EQ(budget.used(), 900u);

  Status overflow = budget.Reserve(200);
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  // Failed reservation rolls back: usage unchanged, more room later works.
  EXPECT_EQ(budget.used(), 900u);
  budget.Release(600);
  EXPECT_TRUE(budget.Reserve(200).ok());
  EXPECT_EQ(budget.peak(), 900u);
}

TEST(MemoryBudgetTest, UnlimitedTracksPeak) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.Reserve(1 << 20).ok());
  EXPECT_TRUE(budget.Reserve(1 << 20).ok());
  budget.Release(1 << 20);
  EXPECT_EQ(budget.peak(), 2u << 20);
  EXPECT_EQ(budget.used(), 1u << 20);
}

TEST(MemoryBudgetTest, ConcurrentReservationsBalance) {
  MemoryBudget budget(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(budget.Reserve(64).ok());
        budget.Release(64);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryReservationTest, ResizeChargesDeltas) {
  MemoryBudget budget(100);
  MemoryReservation res;
  res.Attach(&budget);
  EXPECT_TRUE(res.Resize(80).ok());
  EXPECT_EQ(budget.used(), 80u);
  // Growing past the limit fails and leaves the old size in place.
  EXPECT_EQ(res.Resize(150).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(res.bytes(), 80u);
  EXPECT_TRUE(res.Resize(20).ok());
  EXPECT_EQ(budget.used(), 20u);
  res.Reset();
  EXPECT_EQ(budget.used(), 0u);
}

// --- CancellationToken ------------------------------------------------------

TEST(CancellationTokenTest, CopiesShareState) {
  CancellationToken token;
  CancellationToken alias = token;
  EXPECT_FALSE(alias.cancelled());
  token.Cancel();
  EXPECT_TRUE(alias.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

// --- Random -----------------------------------------------------------------

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformWithinBound) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, PermutationIsPermutation) {
  Random rng(42);
  std::vector<uint32_t> perm = rng.Permutation(1000);
  std::set<uint32_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 1000u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 999u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, Mix64AvalanchesSmallDifferences) {
  // Consecutive inputs should produce very different outputs.
  EXPECT_NE(Mix64(1) >> 32, Mix64(2) >> 32);
  EXPECT_NE(Mix64(1) & 0xffff, Mix64(2) & 0xffff);
}

// --- String utilities --------------------------------------------------------

TEST(StringUtilTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("P=", 80, " t=", 1.5), "P=80 t=1.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadLeft("abcdef", 4), "abcdef");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
}

// --- TablePrinter -------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, SeparatorRendersAsRule) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string out = table.ToString();
  // header rule + top + bottom + middle separator = 4 rules.
  size_t rules = 0;
  for (size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

// --- Stats ---------------------------------------------------------------------

TEST(StatsTest, AccumulatorMoments) {
  StatsAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.1380899, 1e-6);
}

TEST(StatsTest, EmptyAccumulatorIsZero) {
  StatsAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0);
  EXPECT_EQ(acc.stddev(), 0);
}

TEST(StatsTest, Percentiles) {
  PercentileTracker tracker;
  for (int i = 1; i <= 100; ++i) tracker.Add(i);
  EXPECT_DOUBLE_EQ(tracker.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(tracker.Percentile(100), 100);
  EXPECT_NEAR(tracker.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(tracker.Percentile(90), 90.1, 1e-9);
}

// Percentile() interpolates between ranks (numpy's default), so the
// result need not be a member of the sample set.
TEST(StatsTest, PercentileInterpolatesBetweenRanks) {
  PercentileTracker tracker;
  tracker.Add(10);
  tracker.Add(20);
  EXPECT_NEAR(tracker.Percentile(50), 15.0, 1e-9);
  EXPECT_NEAR(tracker.Percentile(25), 12.5, 1e-9);
  EXPECT_EQ(PercentileTracker().Percentile(50), 0);
}

// Samples are sorted lazily: queries after Add() see the new sample, and
// interleaving Add() with Percentile() never yields a stale order.
TEST(StatsTest, PercentileLazySortSeesLaterAdds) {
  PercentileTracker tracker;
  tracker.Add(5);
  tracker.Add(1);
  EXPECT_DOUBLE_EQ(tracker.Percentile(0), 1);   // forces a sort
  EXPECT_DOUBLE_EQ(tracker.Percentile(100), 5); // reuses it
  tracker.Add(0.5);  // marks dirty again
  EXPECT_DOUBLE_EQ(tracker.Percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(tracker.Percentile(100), 5);
  EXPECT_EQ(tracker.count(), 3u);
}

TEST(StatsTest, PercentileTrackerMerge) {
  PercentileTracker a;
  PercentileTracker b;
  for (int i = 1; i <= 50; ++i) a.Add(i);
  EXPECT_DOUBLE_EQ(a.Percentile(100), 50);  // sort a, then dirty it again
  for (int i = 51; i <= 100; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.Percentile(100), 100);
  EXPECT_NEAR(a.Percentile(50), 50.5, 1e-9);
}

// Past kMaxSamples the tracker reservoir-samples: the total count keeps
// climbing, memory stays capped, and order statistics remain usable (for a
// uniform stream the sampled percentiles land near the true ones).
TEST(StatsTest, PercentileTrackerCapsRetainedSamples) {
  PercentileTracker tracker;
  const size_t total = PercentileTracker::kMaxSamples * 4;
  for (size_t i = 0; i < total; ++i) {
    tracker.Add(static_cast<double>(i));
  }
  EXPECT_EQ(tracker.count(), total);
  EXPECT_EQ(tracker.values().size(), PercentileTracker::kMaxSamples);
  const double span = static_cast<double>(total - 1);
  EXPECT_NEAR(tracker.Percentile(50), span / 2, span * 0.05);
  EXPECT_NEAR(tracker.Percentile(99), span * 0.99, span * 0.05);
}

TEST(StatsTest, PercentileTrackerMergePastCapKeepsTotals) {
  PercentileTracker a;
  PercentileTracker b;
  const size_t n = PercentileTracker::kMaxSamples;
  for (size_t i = 0; i < n; ++i) a.Add(1.0);
  for (size_t i = 0; i < n; ++i) b.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2 * n);
  EXPECT_EQ(a.values().size(), PercentileTracker::kMaxSamples);
}

TEST(MetricsTest, SnapshotDeltaIsolatesOneQuery) {
  MetricsRegistry registry;
  registry.counter("q.batches")->Add(100);
  registry.gauge("q.depth")->Set(3);
  registry.histogram("q.latency")->Observe(1.0);

  // Snapshot, run "one query", delta: only that query's traffic shows.
  const MetricsSnapshot before = registry.Snapshot();
  registry.counter("q.batches")->Add(7);
  registry.counter("q.new")->Add(2);
  registry.gauge("q.depth")->Set(9);
  registry.histogram("q.latency")->Observe(3.0);
  registry.histogram("q.latency")->Observe(5.0);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = MetricsDelta(before, after);
  EXPECT_EQ(delta.counters.at("q.batches"), 7u);
  EXPECT_EQ(delta.counters.at("q.new"), 2u);
  // Gauges are levels, not totals: the delta reports the current level.
  EXPECT_EQ(delta.gauges.at("q.depth"), 9);
  EXPECT_EQ(delta.histograms.at("q.latency").count, 2);
  EXPECT_DOUBLE_EQ(delta.histograms.at("q.latency").sum, 8.0);

  // A second identical "query" yields an identical delta — the registry's
  // cumulative growth never leaks into per-query accounting.
  const MetricsSnapshot before2 = registry.Snapshot();
  registry.counter("q.batches")->Add(7);
  registry.counter("q.new")->Add(2);
  registry.gauge("q.depth")->Set(9);
  registry.histogram("q.latency")->Observe(3.0);
  registry.histogram("q.latency")->Observe(5.0);
  const MetricsSnapshot delta2 = MetricsDelta(before2, registry.Snapshot());
  EXPECT_EQ(delta2.counters, delta.counters);
  EXPECT_EQ(delta2.gauges, delta.gauges);
  EXPECT_EQ(delta2.histograms.at("q.latency").count,
            delta.histograms.at("q.latency").count);
  EXPECT_DOUBLE_EQ(delta2.histograms.at("q.latency").sum,
                   delta.histograms.at("q.latency").sum);
}

TEST(MetricsTest, CounterAndGauge) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("batches");
  counter->Add();
  counter->Add(4);
  EXPECT_EQ(counter->value(), 5u);
  EXPECT_EQ(registry.counter("batches"), counter);  // create-or-get

  Gauge* gauge = registry.gauge("depth");
  gauge->Set(7);
  gauge->Add(3);
  gauge->Set(2);
  EXPECT_EQ(gauge->value(), 2);
  EXPECT_EQ(gauge->max(), 10);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsTest, HistogramMomentsAndPercentiles) {
  MetricsRegistry registry;
  Histogram* hist = registry.histogram("latency");
  for (int i = 1; i <= 100; ++i) hist->Observe(i);
  EXPECT_EQ(hist->count(), 100);
  EXPECT_DOUBLE_EQ(hist->mean(), 50.5);
  EXPECT_DOUBLE_EQ(hist->min(), 1);
  EXPECT_DOUBLE_EQ(hist->max(), 100);
  EXPECT_NEAR(hist->Percentile(50), 50.5, 1e-9);

  Histogram other;
  other.Observe(1000);
  hist->Merge(other);
  EXPECT_EQ(hist->count(), 101);
  EXPECT_DOUBLE_EQ(hist->max(), 1000);
}

// Counters and gauges take concurrent updates without losing any; the
// gauge's high-water mark survives racing writers.
TEST(MetricsTest, ConcurrentUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter* counter = registry.counter("hits");
      Gauge* gauge = registry.gauge("level");
      Histogram* hist = registry.histogram("obs");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        gauge->Set(t * kPerThread + i);
        if (i % 100 == 0) hist->Observe(i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("hits")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.gauge("level")->max(), kThreads * kPerThread - 1);
  EXPECT_EQ(registry.histogram("obs")->count(), kThreads * kPerThread / 100);
}

TEST(MetricsTest, RenderTableListsAllMetricsSorted) {
  MetricsRegistry registry;
  registry.counter("z.count")->Add(3);
  registry.gauge("a.depth")->Set(4);
  registry.histogram("m.lat")->Observe(0.5);
  std::string table = registry.RenderTable();
  auto a = table.find("a.depth");
  auto m = table.find("m.lat");
  auto z = table.find("z.count");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

}  // namespace
}  // namespace mjoin
