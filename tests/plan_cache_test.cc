#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "plan/wisconsin_query.h"
#include "serve/plan_cache.h"
#include "strategy/strategy.h"
#include "xra/text.h"

namespace mjoin {
namespace {

// The plan cache's contract: the 64-bit key is only a locator — every hit
// re-validates the full plan text, so colliding texts can never alias each
// other's plans; collisions are counted, LRU bounds residency, capacity 0
// disables caching.

std::string PlanText(uint32_t procs) {
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 3, 100);
  EXPECT_TRUE(query.ok());
  auto plan =
      MakeStrategy(StrategyKind::kFP)->Parallelize(*query, procs,
                                                   TotalCostModel());
  EXPECT_TRUE(plan.ok()) << plan.status();
  return SerializePlan(*plan);
}

TEST(PlanCacheTest, MissThenHitThenEviction) {
  PlanCache cache(/*capacity=*/2);
  const std::string a = PlanText(2);
  const std::string b = PlanText(4);
  const std::string c = PlanText(6);

  bool hit = true;
  auto first = cache.Lookup(a, &hit);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(hit);
  EXPECT_EQ((*first)->num_processors, 2u);

  ASSERT_TRUE(cache.Lookup(b, &hit).ok());
  EXPECT_FALSE(hit);

  // Refresh a (now MRU), then insert c: the LRU entry — b — is evicted.
  auto again = cache.Lookup(a, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  // A hit returns the resident object, not a reparse.
  EXPECT_EQ(first->get(), again->get());
  ASSERT_TRUE(cache.Lookup(c, &hit).ok());
  EXPECT_EQ(cache.size(), 2u);

  ASSERT_TRUE(cache.Lookup(a, &hit).ok());
  EXPECT_TRUE(hit) << "the refreshed entry was evicted instead of the LRU";
  ASSERT_TRUE(cache.Lookup(b, &hit).ok());
  EXPECT_FALSE(hit) << "the LRU entry survived past capacity";

  const PlanCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_EQ(stats.collisions, 0u);
}

TEST(PlanCacheTest, SeededCollisionNeverAliasesPlans) {
  // Force every text onto one 64-bit key: the hash says "same plan", the
  // mandatory full-text compare says otherwise. The cache must never hand
  // query B plan A.
  PlanCache cache(/*capacity=*/8, [](const std::string&) { return 42ull; });
  const std::string a = PlanText(2);
  const std::string b = PlanText(6);

  bool hit = true;
  auto plan_a = cache.Lookup(a, &hit);
  ASSERT_TRUE(plan_a.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ((*plan_a)->num_processors, 2u);

  // B collides with resident A: served as a miss with B's own plan.
  auto plan_b = cache.Lookup(b, &hit);
  ASSERT_TRUE(plan_b.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ((*plan_b)->num_processors, 6u) << "cross-query plan reuse!";
  EXPECT_NE(plan_a->get(), plan_b->get());

  // A still hits (first-come keeps the slot); B keeps colliding, and
  // every B lookup still yields B's plan.
  auto again_a = cache.Lookup(a, &hit);
  ASSERT_TRUE(again_a.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(again_a->get(), plan_a->get());
  auto again_b = cache.Lookup(b, &hit);
  ASSERT_TRUE(again_b.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ((*again_b)->num_processors, 6u);

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.collisions, 2u);
  EXPECT_EQ(cache.size(), 1u) << "collisions must not insert";
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  PlanCache cache(/*capacity=*/0);
  const std::string a = PlanText(2);
  bool hit = true;
  for (int i = 0; i < 3; ++i) {
    auto plan = cache.Lookup(a, &hit);
    ASSERT_TRUE(plan.ok());
    EXPECT_FALSE(hit);
    EXPECT_EQ((*plan)->num_processors, 2u);
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PlanCacheTest, ParseErrorsAreNeverCached) {
  PlanCache cache(/*capacity=*/4);
  bool hit = true;
  for (int i = 0; i < 2; ++i) {
    auto plan = cache.Lookup("not a plan", &hit);
    EXPECT_FALSE(plan.ok());
    EXPECT_FALSE(hit);
  }
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, ConcurrentLookupsAreCoherent) {
  PlanCache cache(/*capacity=*/4);
  const std::string a = PlanText(2);
  const std::string b = PlanText(4);
  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const bool use_a = (t + i) % 2 == 0;
        auto plan = cache.Lookup(use_a ? a : b);
        if (!plan.ok() ||
            (*plan)->num_processors != (use_a ? 2u : 4u)) {
          ++wrong;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 200u);
  EXPECT_EQ(stats.collisions, 0u);
}

}  // namespace
}  // namespace mjoin
