# Empty compiler generated dependencies file for sort_merge_join_test.
# This may be replaced when dependencies are built.
