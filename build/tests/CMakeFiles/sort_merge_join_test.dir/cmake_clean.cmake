file(REMOVE_RECURSE
  "CMakeFiles/sort_merge_join_test.dir/sort_merge_join_test.cc.o"
  "CMakeFiles/sort_merge_join_test.dir/sort_merge_join_test.cc.o.d"
  "sort_merge_join_test"
  "sort_merge_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_merge_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
