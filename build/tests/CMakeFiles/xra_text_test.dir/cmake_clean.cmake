file(REMOVE_RECURSE
  "CMakeFiles/xra_text_test.dir/xra_text_test.cc.o"
  "CMakeFiles/xra_text_test.dir/xra_text_test.cc.o.d"
  "xra_text_test"
  "xra_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xra_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
