# Empty dependencies file for xra_text_test.
# This may be replaced when dependencies are built.
