file(REMOVE_RECURSE
  "CMakeFiles/xra_plan_test.dir/xra_plan_test.cc.o"
  "CMakeFiles/xra_plan_test.dir/xra_plan_test.cc.o.d"
  "xra_plan_test"
  "xra_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xra_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
