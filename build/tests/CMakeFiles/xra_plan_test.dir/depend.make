# Empty dependencies file for xra_plan_test.
# This may be replaced when dependencies are built.
