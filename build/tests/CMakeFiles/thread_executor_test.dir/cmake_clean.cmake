file(REMOVE_RECURSE
  "CMakeFiles/thread_executor_test.dir/thread_executor_test.cc.o"
  "CMakeFiles/thread_executor_test.dir/thread_executor_test.cc.o.d"
  "thread_executor_test"
  "thread_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
