# Empty compiler generated dependencies file for thread_executor_test.
# This may be replaced when dependencies are built.
