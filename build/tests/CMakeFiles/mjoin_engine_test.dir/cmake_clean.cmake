file(REMOVE_RECURSE
  "CMakeFiles/mjoin_engine_test.dir/mjoin_engine_test.cc.o"
  "CMakeFiles/mjoin_engine_test.dir/mjoin_engine_test.cc.o.d"
  "mjoin_engine_test"
  "mjoin_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
