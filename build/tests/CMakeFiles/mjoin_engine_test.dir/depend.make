# Empty dependencies file for mjoin_engine_test.
# This may be replaced when dependencies are built.
