file(REMOVE_RECURSE
  "CMakeFiles/filter_aggregate_test.dir/filter_aggregate_test.cc.o"
  "CMakeFiles/filter_aggregate_test.dir/filter_aggregate_test.cc.o.d"
  "filter_aggregate_test"
  "filter_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
