# Empty dependencies file for filter_aggregate_test.
# This may be replaced when dependencies are built.
