# Empty dependencies file for segment_memory_test.
# This may be replaced when dependencies are built.
