file(REMOVE_RECURSE
  "CMakeFiles/segment_memory_test.dir/segment_memory_test.cc.o"
  "CMakeFiles/segment_memory_test.dir/segment_memory_test.cc.o.d"
  "segment_memory_test"
  "segment_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
