file(REMOVE_RECURSE
  "CMakeFiles/wisconsin_test.dir/wisconsin_test.cc.o"
  "CMakeFiles/wisconsin_test.dir/wisconsin_test.cc.o.d"
  "wisconsin_test"
  "wisconsin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisconsin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
