# Empty dependencies file for wisconsin_test.
# This may be replaced when dependencies are built.
