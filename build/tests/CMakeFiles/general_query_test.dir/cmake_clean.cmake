file(REMOVE_RECURSE
  "CMakeFiles/general_query_test.dir/general_query_test.cc.o"
  "CMakeFiles/general_query_test.dir/general_query_test.cc.o.d"
  "general_query_test"
  "general_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
