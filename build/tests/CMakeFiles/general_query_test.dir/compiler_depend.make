# Empty compiler generated dependencies file for general_query_test.
# This may be replaced when dependencies are built.
