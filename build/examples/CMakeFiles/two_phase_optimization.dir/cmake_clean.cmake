file(REMOVE_RECURSE
  "CMakeFiles/two_phase_optimization.dir/two_phase_optimization.cc.o"
  "CMakeFiles/two_phase_optimization.dir/two_phase_optimization.cc.o.d"
  "two_phase_optimization"
  "two_phase_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_phase_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
