# Empty dependencies file for two_phase_optimization.
# This may be replaced when dependencies are built.
