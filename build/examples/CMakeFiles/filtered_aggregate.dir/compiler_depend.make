# Empty compiler generated dependencies file for filtered_aggregate.
# This may be replaced when dependencies are built.
