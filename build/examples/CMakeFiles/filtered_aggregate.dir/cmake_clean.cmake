file(REMOVE_RECURSE
  "CMakeFiles/filtered_aggregate.dir/filtered_aggregate.cc.o"
  "CMakeFiles/filtered_aggregate.dir/filtered_aggregate.cc.o.d"
  "filtered_aggregate"
  "filtered_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filtered_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
