file(REMOVE_RECURSE
  "CMakeFiles/snowflake_query.dir/snowflake_query.cc.o"
  "CMakeFiles/snowflake_query.dir/snowflake_query.cc.o.d"
  "snowflake_query"
  "snowflake_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snowflake_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
