# Empty dependencies file for snowflake_query.
# This may be replaced when dependencies are built.
