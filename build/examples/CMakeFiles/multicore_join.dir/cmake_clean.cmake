file(REMOVE_RECURSE
  "CMakeFiles/multicore_join.dir/multicore_join.cc.o"
  "CMakeFiles/multicore_join.dir/multicore_join.cc.o.d"
  "multicore_join"
  "multicore_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
