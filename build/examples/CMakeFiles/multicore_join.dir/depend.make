# Empty dependencies file for multicore_join.
# This may be replaced when dependencies are built.
