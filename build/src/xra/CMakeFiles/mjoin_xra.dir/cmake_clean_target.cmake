file(REMOVE_RECURSE
  "libmjoin_xra.a"
)
