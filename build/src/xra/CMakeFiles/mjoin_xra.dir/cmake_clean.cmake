file(REMOVE_RECURSE
  "CMakeFiles/mjoin_xra.dir/plan.cc.o"
  "CMakeFiles/mjoin_xra.dir/plan.cc.o.d"
  "CMakeFiles/mjoin_xra.dir/text.cc.o"
  "CMakeFiles/mjoin_xra.dir/text.cc.o.d"
  "libmjoin_xra.a"
  "libmjoin_xra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_xra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
