# Empty compiler generated dependencies file for mjoin_xra.
# This may be replaced when dependencies are built.
