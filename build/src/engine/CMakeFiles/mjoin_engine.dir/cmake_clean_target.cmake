file(REMOVE_RECURSE
  "libmjoin_engine.a"
)
