# Empty dependencies file for mjoin_engine.
# This may be replaced when dependencies are built.
