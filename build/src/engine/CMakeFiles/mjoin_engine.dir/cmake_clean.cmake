file(REMOVE_RECURSE
  "CMakeFiles/mjoin_engine.dir/controller.cc.o"
  "CMakeFiles/mjoin_engine.dir/controller.cc.o.d"
  "CMakeFiles/mjoin_engine.dir/database.cc.o"
  "CMakeFiles/mjoin_engine.dir/database.cc.o.d"
  "CMakeFiles/mjoin_engine.dir/experiment.cc.o"
  "CMakeFiles/mjoin_engine.dir/experiment.cc.o.d"
  "CMakeFiles/mjoin_engine.dir/mjoin_engine.cc.o"
  "CMakeFiles/mjoin_engine.dir/mjoin_engine.cc.o.d"
  "CMakeFiles/mjoin_engine.dir/reference.cc.o"
  "CMakeFiles/mjoin_engine.dir/reference.cc.o.d"
  "CMakeFiles/mjoin_engine.dir/result.cc.o"
  "CMakeFiles/mjoin_engine.dir/result.cc.o.d"
  "CMakeFiles/mjoin_engine.dir/sim_executor.cc.o"
  "CMakeFiles/mjoin_engine.dir/sim_executor.cc.o.d"
  "CMakeFiles/mjoin_engine.dir/thread_executor.cc.o"
  "CMakeFiles/mjoin_engine.dir/thread_executor.cc.o.d"
  "libmjoin_engine.a"
  "libmjoin_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
