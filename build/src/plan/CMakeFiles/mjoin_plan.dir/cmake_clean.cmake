file(REMOVE_RECURSE
  "CMakeFiles/mjoin_plan.dir/allocation.cc.o"
  "CMakeFiles/mjoin_plan.dir/allocation.cc.o.d"
  "CMakeFiles/mjoin_plan.dir/catalog.cc.o"
  "CMakeFiles/mjoin_plan.dir/catalog.cc.o.d"
  "CMakeFiles/mjoin_plan.dir/cost_model.cc.o"
  "CMakeFiles/mjoin_plan.dir/cost_model.cc.o.d"
  "CMakeFiles/mjoin_plan.dir/join_tree.cc.o"
  "CMakeFiles/mjoin_plan.dir/join_tree.cc.o.d"
  "CMakeFiles/mjoin_plan.dir/query.cc.o"
  "CMakeFiles/mjoin_plan.dir/query.cc.o.d"
  "CMakeFiles/mjoin_plan.dir/segments.cc.o"
  "CMakeFiles/mjoin_plan.dir/segments.cc.o.d"
  "CMakeFiles/mjoin_plan.dir/shapes.cc.o"
  "CMakeFiles/mjoin_plan.dir/shapes.cc.o.d"
  "CMakeFiles/mjoin_plan.dir/transform.cc.o"
  "CMakeFiles/mjoin_plan.dir/transform.cc.o.d"
  "CMakeFiles/mjoin_plan.dir/wisconsin_query.cc.o"
  "CMakeFiles/mjoin_plan.dir/wisconsin_query.cc.o.d"
  "libmjoin_plan.a"
  "libmjoin_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
