
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/allocation.cc" "src/plan/CMakeFiles/mjoin_plan.dir/allocation.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/allocation.cc.o.d"
  "/root/repo/src/plan/catalog.cc" "src/plan/CMakeFiles/mjoin_plan.dir/catalog.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/catalog.cc.o.d"
  "/root/repo/src/plan/cost_model.cc" "src/plan/CMakeFiles/mjoin_plan.dir/cost_model.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/cost_model.cc.o.d"
  "/root/repo/src/plan/join_tree.cc" "src/plan/CMakeFiles/mjoin_plan.dir/join_tree.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/join_tree.cc.o.d"
  "/root/repo/src/plan/query.cc" "src/plan/CMakeFiles/mjoin_plan.dir/query.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/query.cc.o.d"
  "/root/repo/src/plan/segments.cc" "src/plan/CMakeFiles/mjoin_plan.dir/segments.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/segments.cc.o.d"
  "/root/repo/src/plan/shapes.cc" "src/plan/CMakeFiles/mjoin_plan.dir/shapes.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/shapes.cc.o.d"
  "/root/repo/src/plan/transform.cc" "src/plan/CMakeFiles/mjoin_plan.dir/transform.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/transform.cc.o.d"
  "/root/repo/src/plan/wisconsin_query.cc" "src/plan/CMakeFiles/mjoin_plan.dir/wisconsin_query.cc.o" "gcc" "src/plan/CMakeFiles/mjoin_plan.dir/wisconsin_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mjoin_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/mjoin_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mjoin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mjoin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
