# Empty compiler generated dependencies file for mjoin_plan.
# This may be replaced when dependencies are built.
