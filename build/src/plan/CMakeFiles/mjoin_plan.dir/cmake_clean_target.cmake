file(REMOVE_RECURSE
  "libmjoin_plan.a"
)
