
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate.cc" "src/exec/CMakeFiles/mjoin_exec.dir/aggregate.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/aggregate.cc.o.d"
  "/root/repo/src/exec/filter.cc" "src/exec/CMakeFiles/mjoin_exec.dir/filter.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/filter.cc.o.d"
  "/root/repo/src/exec/hash_table.cc" "src/exec/CMakeFiles/mjoin_exec.dir/hash_table.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/hash_table.cc.o.d"
  "/root/repo/src/exec/join_spec.cc" "src/exec/CMakeFiles/mjoin_exec.dir/join_spec.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/join_spec.cc.o.d"
  "/root/repo/src/exec/pipelining_hash_join.cc" "src/exec/CMakeFiles/mjoin_exec.dir/pipelining_hash_join.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/pipelining_hash_join.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/exec/CMakeFiles/mjoin_exec.dir/project.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/project.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/exec/CMakeFiles/mjoin_exec.dir/scan.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/scan.cc.o.d"
  "/root/repo/src/exec/simple_hash_join.cc" "src/exec/CMakeFiles/mjoin_exec.dir/simple_hash_join.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/simple_hash_join.cc.o.d"
  "/root/repo/src/exec/sort_merge_join.cc" "src/exec/CMakeFiles/mjoin_exec.dir/sort_merge_join.cc.o" "gcc" "src/exec/CMakeFiles/mjoin_exec.dir/sort_merge_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/mjoin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mjoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
