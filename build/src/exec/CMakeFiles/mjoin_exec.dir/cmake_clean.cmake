file(REMOVE_RECURSE
  "CMakeFiles/mjoin_exec.dir/aggregate.cc.o"
  "CMakeFiles/mjoin_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/mjoin_exec.dir/filter.cc.o"
  "CMakeFiles/mjoin_exec.dir/filter.cc.o.d"
  "CMakeFiles/mjoin_exec.dir/hash_table.cc.o"
  "CMakeFiles/mjoin_exec.dir/hash_table.cc.o.d"
  "CMakeFiles/mjoin_exec.dir/join_spec.cc.o"
  "CMakeFiles/mjoin_exec.dir/join_spec.cc.o.d"
  "CMakeFiles/mjoin_exec.dir/pipelining_hash_join.cc.o"
  "CMakeFiles/mjoin_exec.dir/pipelining_hash_join.cc.o.d"
  "CMakeFiles/mjoin_exec.dir/project.cc.o"
  "CMakeFiles/mjoin_exec.dir/project.cc.o.d"
  "CMakeFiles/mjoin_exec.dir/scan.cc.o"
  "CMakeFiles/mjoin_exec.dir/scan.cc.o.d"
  "CMakeFiles/mjoin_exec.dir/simple_hash_join.cc.o"
  "CMakeFiles/mjoin_exec.dir/simple_hash_join.cc.o.d"
  "CMakeFiles/mjoin_exec.dir/sort_merge_join.cc.o"
  "CMakeFiles/mjoin_exec.dir/sort_merge_join.cc.o.d"
  "libmjoin_exec.a"
  "libmjoin_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
