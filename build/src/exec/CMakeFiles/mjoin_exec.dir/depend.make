# Empty dependencies file for mjoin_exec.
# This may be replaced when dependencies are built.
