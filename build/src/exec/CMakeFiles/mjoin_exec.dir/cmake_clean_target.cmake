file(REMOVE_RECURSE
  "libmjoin_exec.a"
)
