# Empty compiler generated dependencies file for mjoin_sim.
# This may be replaced when dependencies are built.
