
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_params.cc" "src/sim/CMakeFiles/mjoin_sim.dir/cost_params.cc.o" "gcc" "src/sim/CMakeFiles/mjoin_sim.dir/cost_params.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/mjoin_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/mjoin_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/processor.cc" "src/sim/CMakeFiles/mjoin_sim.dir/processor.cc.o" "gcc" "src/sim/CMakeFiles/mjoin_sim.dir/processor.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/mjoin_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/mjoin_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/mjoin_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/mjoin_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
