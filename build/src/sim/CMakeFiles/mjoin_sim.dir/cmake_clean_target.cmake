file(REMOVE_RECURSE
  "libmjoin_sim.a"
)
