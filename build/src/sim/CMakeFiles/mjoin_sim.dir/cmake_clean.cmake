file(REMOVE_RECURSE
  "CMakeFiles/mjoin_sim.dir/cost_params.cc.o"
  "CMakeFiles/mjoin_sim.dir/cost_params.cc.o.d"
  "CMakeFiles/mjoin_sim.dir/machine.cc.o"
  "CMakeFiles/mjoin_sim.dir/machine.cc.o.d"
  "CMakeFiles/mjoin_sim.dir/processor.cc.o"
  "CMakeFiles/mjoin_sim.dir/processor.cc.o.d"
  "CMakeFiles/mjoin_sim.dir/simulator.cc.o"
  "CMakeFiles/mjoin_sim.dir/simulator.cc.o.d"
  "CMakeFiles/mjoin_sim.dir/trace.cc.o"
  "CMakeFiles/mjoin_sim.dir/trace.cc.o.d"
  "libmjoin_sim.a"
  "libmjoin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
