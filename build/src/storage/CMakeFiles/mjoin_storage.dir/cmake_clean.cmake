file(REMOVE_RECURSE
  "CMakeFiles/mjoin_storage.dir/partitioner.cc.o"
  "CMakeFiles/mjoin_storage.dir/partitioner.cc.o.d"
  "CMakeFiles/mjoin_storage.dir/relation.cc.o"
  "CMakeFiles/mjoin_storage.dir/relation.cc.o.d"
  "CMakeFiles/mjoin_storage.dir/schema.cc.o"
  "CMakeFiles/mjoin_storage.dir/schema.cc.o.d"
  "CMakeFiles/mjoin_storage.dir/tuple.cc.o"
  "CMakeFiles/mjoin_storage.dir/tuple.cc.o.d"
  "CMakeFiles/mjoin_storage.dir/wisconsin.cc.o"
  "CMakeFiles/mjoin_storage.dir/wisconsin.cc.o.d"
  "CMakeFiles/mjoin_storage.dir/zipf.cc.o"
  "CMakeFiles/mjoin_storage.dir/zipf.cc.o.d"
  "libmjoin_storage.a"
  "libmjoin_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
