# Empty compiler generated dependencies file for mjoin_storage.
# This may be replaced when dependencies are built.
