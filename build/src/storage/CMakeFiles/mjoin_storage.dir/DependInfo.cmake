
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/partitioner.cc" "src/storage/CMakeFiles/mjoin_storage.dir/partitioner.cc.o" "gcc" "src/storage/CMakeFiles/mjoin_storage.dir/partitioner.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/mjoin_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/mjoin_storage.dir/relation.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/mjoin_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/mjoin_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/storage/CMakeFiles/mjoin_storage.dir/tuple.cc.o" "gcc" "src/storage/CMakeFiles/mjoin_storage.dir/tuple.cc.o.d"
  "/root/repo/src/storage/wisconsin.cc" "src/storage/CMakeFiles/mjoin_storage.dir/wisconsin.cc.o" "gcc" "src/storage/CMakeFiles/mjoin_storage.dir/wisconsin.cc.o.d"
  "/root/repo/src/storage/zipf.cc" "src/storage/CMakeFiles/mjoin_storage.dir/zipf.cc.o" "gcc" "src/storage/CMakeFiles/mjoin_storage.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
