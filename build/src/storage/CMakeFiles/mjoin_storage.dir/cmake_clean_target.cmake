file(REMOVE_RECURSE
  "libmjoin_storage.a"
)
