
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategy/builder.cc" "src/strategy/CMakeFiles/mjoin_strategy.dir/builder.cc.o" "gcc" "src/strategy/CMakeFiles/mjoin_strategy.dir/builder.cc.o.d"
  "/root/repo/src/strategy/fp.cc" "src/strategy/CMakeFiles/mjoin_strategy.dir/fp.cc.o" "gcc" "src/strategy/CMakeFiles/mjoin_strategy.dir/fp.cc.o.d"
  "/root/repo/src/strategy/idealized.cc" "src/strategy/CMakeFiles/mjoin_strategy.dir/idealized.cc.o" "gcc" "src/strategy/CMakeFiles/mjoin_strategy.dir/idealized.cc.o.d"
  "/root/repo/src/strategy/rd.cc" "src/strategy/CMakeFiles/mjoin_strategy.dir/rd.cc.o" "gcc" "src/strategy/CMakeFiles/mjoin_strategy.dir/rd.cc.o.d"
  "/root/repo/src/strategy/se.cc" "src/strategy/CMakeFiles/mjoin_strategy.dir/se.cc.o" "gcc" "src/strategy/CMakeFiles/mjoin_strategy.dir/se.cc.o.d"
  "/root/repo/src/strategy/sp.cc" "src/strategy/CMakeFiles/mjoin_strategy.dir/sp.cc.o" "gcc" "src/strategy/CMakeFiles/mjoin_strategy.dir/sp.cc.o.d"
  "/root/repo/src/strategy/strategy.cc" "src/strategy/CMakeFiles/mjoin_strategy.dir/strategy.cc.o" "gcc" "src/strategy/CMakeFiles/mjoin_strategy.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/mjoin_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/xra/CMakeFiles/mjoin_xra.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/mjoin_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mjoin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mjoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
