# Empty compiler generated dependencies file for mjoin_strategy.
# This may be replaced when dependencies are built.
