file(REMOVE_RECURSE
  "libmjoin_strategy.a"
)
