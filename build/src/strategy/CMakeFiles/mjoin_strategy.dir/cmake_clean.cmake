file(REMOVE_RECURSE
  "CMakeFiles/mjoin_strategy.dir/builder.cc.o"
  "CMakeFiles/mjoin_strategy.dir/builder.cc.o.d"
  "CMakeFiles/mjoin_strategy.dir/fp.cc.o"
  "CMakeFiles/mjoin_strategy.dir/fp.cc.o.d"
  "CMakeFiles/mjoin_strategy.dir/idealized.cc.o"
  "CMakeFiles/mjoin_strategy.dir/idealized.cc.o.d"
  "CMakeFiles/mjoin_strategy.dir/rd.cc.o"
  "CMakeFiles/mjoin_strategy.dir/rd.cc.o.d"
  "CMakeFiles/mjoin_strategy.dir/se.cc.o"
  "CMakeFiles/mjoin_strategy.dir/se.cc.o.d"
  "CMakeFiles/mjoin_strategy.dir/sp.cc.o"
  "CMakeFiles/mjoin_strategy.dir/sp.cc.o.d"
  "CMakeFiles/mjoin_strategy.dir/strategy.cc.o"
  "CMakeFiles/mjoin_strategy.dir/strategy.cc.o.d"
  "libmjoin_strategy.a"
  "libmjoin_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
