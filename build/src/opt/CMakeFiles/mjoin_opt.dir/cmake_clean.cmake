file(REMOVE_RECURSE
  "CMakeFiles/mjoin_opt.dir/general_query.cc.o"
  "CMakeFiles/mjoin_opt.dir/general_query.cc.o.d"
  "CMakeFiles/mjoin_opt.dir/join_graph.cc.o"
  "CMakeFiles/mjoin_opt.dir/join_graph.cc.o.d"
  "CMakeFiles/mjoin_opt.dir/optimizer.cc.o"
  "CMakeFiles/mjoin_opt.dir/optimizer.cc.o.d"
  "libmjoin_opt.a"
  "libmjoin_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
