# Empty dependencies file for mjoin_opt.
# This may be replaced when dependencies are built.
