file(REMOVE_RECURSE
  "libmjoin_opt.a"
)
