# Empty dependencies file for mjoin_common.
# This may be replaced when dependencies are built.
