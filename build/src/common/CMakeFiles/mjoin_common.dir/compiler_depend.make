# Empty compiler generated dependencies file for mjoin_common.
# This may be replaced when dependencies are built.
