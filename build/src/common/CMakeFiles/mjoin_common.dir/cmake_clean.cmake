file(REMOVE_RECURSE
  "CMakeFiles/mjoin_common.dir/logging.cc.o"
  "CMakeFiles/mjoin_common.dir/logging.cc.o.d"
  "CMakeFiles/mjoin_common.dir/random.cc.o"
  "CMakeFiles/mjoin_common.dir/random.cc.o.d"
  "CMakeFiles/mjoin_common.dir/stats.cc.o"
  "CMakeFiles/mjoin_common.dir/stats.cc.o.d"
  "CMakeFiles/mjoin_common.dir/status.cc.o"
  "CMakeFiles/mjoin_common.dir/status.cc.o.d"
  "CMakeFiles/mjoin_common.dir/string_util.cc.o"
  "CMakeFiles/mjoin_common.dir/string_util.cc.o.d"
  "CMakeFiles/mjoin_common.dir/table_printer.cc.o"
  "CMakeFiles/mjoin_common.dir/table_printer.cc.o.d"
  "libmjoin_common.a"
  "libmjoin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
