file(REMOVE_RECURSE
  "libmjoin_common.a"
)
