file(REMOVE_RECURSE
  "../bench/micro_plan"
  "../bench/micro_plan.pdb"
  "CMakeFiles/micro_plan.dir/micro_plan.cc.o"
  "CMakeFiles/micro_plan.dir/micro_plan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
