# Empty compiler generated dependencies file for micro_plan.
# This may be replaced when dependencies are built.
