file(REMOVE_RECURSE
  "../bench/fig11_wide_bushy"
  "../bench/fig11_wide_bushy.pdb"
  "CMakeFiles/fig11_wide_bushy.dir/fig11_wide_bushy.cc.o"
  "CMakeFiles/fig11_wide_bushy.dir/fig11_wide_bushy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_wide_bushy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
