# Empty compiler generated dependencies file for fig11_wide_bushy.
# This may be replaced when dependencies are built.
