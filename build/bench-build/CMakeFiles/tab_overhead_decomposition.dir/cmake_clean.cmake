file(REMOVE_RECURSE
  "../bench/tab_overhead_decomposition"
  "../bench/tab_overhead_decomposition.pdb"
  "CMakeFiles/tab_overhead_decomposition.dir/tab_overhead_decomposition.cc.o"
  "CMakeFiles/tab_overhead_decomposition.dir/tab_overhead_decomposition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overhead_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
