# Empty compiler generated dependencies file for tab_overhead_decomposition.
# This may be replaced when dependencies are built.
