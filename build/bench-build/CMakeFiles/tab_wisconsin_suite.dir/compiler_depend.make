# Empty compiler generated dependencies file for tab_wisconsin_suite.
# This may be replaced when dependencies are built.
