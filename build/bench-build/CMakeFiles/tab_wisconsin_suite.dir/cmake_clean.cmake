file(REMOVE_RECURSE
  "../bench/tab_wisconsin_suite"
  "../bench/tab_wisconsin_suite.pdb"
  "CMakeFiles/tab_wisconsin_suite.dir/tab_wisconsin_suite.cc.o"
  "CMakeFiles/tab_wisconsin_suite.dir/tab_wisconsin_suite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_wisconsin_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
