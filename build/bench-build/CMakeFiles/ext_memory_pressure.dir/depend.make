# Empty dependencies file for ext_memory_pressure.
# This may be replaced when dependencies are built.
