file(REMOVE_RECURSE
  "../bench/ext_memory_pressure"
  "../bench/ext_memory_pressure.pdb"
  "CMakeFiles/ext_memory_pressure.dir/ext_memory_pressure.cc.o"
  "CMakeFiles/ext_memory_pressure.dir/ext_memory_pressure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
