# Empty compiler generated dependencies file for tab_single_join_speedup.
# This may be replaced when dependencies are built.
