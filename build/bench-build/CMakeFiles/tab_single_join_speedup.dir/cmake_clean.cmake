file(REMOVE_RECURSE
  "../bench/tab_single_join_speedup"
  "../bench/tab_single_join_speedup.pdb"
  "CMakeFiles/tab_single_join_speedup.dir/tab_single_join_speedup.cc.o"
  "CMakeFiles/tab_single_join_speedup.dir/tab_single_join_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_single_join_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
