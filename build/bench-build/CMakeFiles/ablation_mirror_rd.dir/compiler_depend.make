# Empty compiler generated dependencies file for ablation_mirror_rd.
# This may be replaced when dependencies are built.
