file(REMOVE_RECURSE
  "../bench/ablation_mirror_rd"
  "../bench/ablation_mirror_rd.pdb"
  "CMakeFiles/ablation_mirror_rd.dir/ablation_mirror_rd.cc.o"
  "CMakeFiles/ablation_mirror_rd.dir/ablation_mirror_rd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mirror_rd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
