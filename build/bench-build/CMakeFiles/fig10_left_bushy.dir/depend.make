# Empty dependencies file for fig10_left_bushy.
# This may be replaced when dependencies are built.
