file(REMOVE_RECURSE
  "../bench/fig10_left_bushy"
  "../bench/fig10_left_bushy.pdb"
  "CMakeFiles/fig10_left_bushy.dir/fig10_left_bushy.cc.o"
  "CMakeFiles/fig10_left_bushy.dir/fig10_left_bushy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_left_bushy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
