# Empty compiler generated dependencies file for fig13_right_linear.
# This may be replaced when dependencies are built.
