file(REMOVE_RECURSE
  "../bench/fig13_right_linear"
  "../bench/fig13_right_linear.pdb"
  "CMakeFiles/fig13_right_linear.dir/fig13_right_linear.cc.o"
  "CMakeFiles/fig13_right_linear.dir/fig13_right_linear.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_right_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
