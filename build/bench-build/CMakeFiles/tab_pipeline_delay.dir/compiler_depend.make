# Empty compiler generated dependencies file for tab_pipeline_delay.
# This may be replaced when dependencies are built.
