file(REMOVE_RECURSE
  "../bench/tab_pipeline_delay"
  "../bench/tab_pipeline_delay.pdb"
  "CMakeFiles/tab_pipeline_delay.dir/tab_pipeline_delay.cc.o"
  "CMakeFiles/tab_pipeline_delay.dir/tab_pipeline_delay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_pipeline_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
