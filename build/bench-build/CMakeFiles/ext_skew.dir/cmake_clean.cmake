file(REMOVE_RECURSE
  "../bench/ext_skew"
  "../bench/ext_skew.pdb"
  "CMakeFiles/ext_skew.dir/ext_skew.cc.o"
  "CMakeFiles/ext_skew.dir/ext_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
