# Empty compiler generated dependencies file for ext_skew.
# This may be replaced when dependencies are built.
