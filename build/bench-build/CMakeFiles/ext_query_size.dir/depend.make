# Empty dependencies file for ext_query_size.
# This may be replaced when dependencies are built.
