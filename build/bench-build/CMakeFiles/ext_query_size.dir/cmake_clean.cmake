file(REMOVE_RECURSE
  "../bench/ext_query_size"
  "../bench/ext_query_size.pdb"
  "CMakeFiles/ext_query_size.dir/ext_query_size.cc.o"
  "CMakeFiles/ext_query_size.dir/ext_query_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_query_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
