file(REMOVE_RECURSE
  "../bench/micro_storage"
  "../bench/micro_storage.pdb"
  "CMakeFiles/micro_storage.dir/micro_storage.cc.o"
  "CMakeFiles/micro_storage.dir/micro_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
