# Empty compiler generated dependencies file for fig14_best_times.
# This may be replaced when dependencies are built.
