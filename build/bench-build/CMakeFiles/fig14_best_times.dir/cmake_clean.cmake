file(REMOVE_RECURSE
  "../bench/fig14_best_times"
  "../bench/fig14_best_times.pdb"
  "CMakeFiles/fig14_best_times.dir/fig14_best_times.cc.o"
  "CMakeFiles/fig14_best_times.dir/fig14_best_times.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_best_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
