# Empty dependencies file for ablation_rd_segments.
# This may be replaced when dependencies are built.
