file(REMOVE_RECURSE
  "../bench/ablation_rd_segments"
  "../bench/ablation_rd_segments.pdb"
  "CMakeFiles/ablation_rd_segments.dir/ablation_rd_segments.cc.o"
  "CMakeFiles/ablation_rd_segments.dir/ablation_rd_segments.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rd_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
