# Empty compiler generated dependencies file for micro_exec.
# This may be replaced when dependencies are built.
