file(REMOVE_RECURSE
  "../bench/micro_exec"
  "../bench/micro_exec.pdb"
  "CMakeFiles/micro_exec.dir/micro_exec.cc.o"
  "CMakeFiles/micro_exec.dir/micro_exec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
