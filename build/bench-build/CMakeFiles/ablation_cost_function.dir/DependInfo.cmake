
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_cost_function.cc" "bench-build/CMakeFiles/ablation_cost_function.dir/ablation_cost_function.cc.o" "gcc" "bench-build/CMakeFiles/ablation_cost_function.dir/ablation_cost_function.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/mjoin_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mjoin_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/mjoin_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/mjoin_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/xra/CMakeFiles/mjoin_xra.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/mjoin_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mjoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mjoin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
