# Empty dependencies file for ablation_cost_function.
# This may be replaced when dependencies are built.
