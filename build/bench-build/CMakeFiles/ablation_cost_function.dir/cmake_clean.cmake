file(REMOVE_RECURSE
  "../bench/ablation_cost_function"
  "../bench/ablation_cost_function.pdb"
  "CMakeFiles/ablation_cost_function.dir/ablation_cost_function.cc.o"
  "CMakeFiles/ablation_cost_function.dir/ablation_cost_function.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cost_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
