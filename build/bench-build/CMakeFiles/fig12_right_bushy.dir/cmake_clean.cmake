file(REMOVE_RECURSE
  "../bench/fig12_right_bushy"
  "../bench/fig12_right_bushy.pdb"
  "CMakeFiles/fig12_right_bushy.dir/fig12_right_bushy.cc.o"
  "CMakeFiles/fig12_right_bushy.dir/fig12_right_bushy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_right_bushy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
