# Empty compiler generated dependencies file for fig12_right_bushy.
# This may be replaced when dependencies are built.
