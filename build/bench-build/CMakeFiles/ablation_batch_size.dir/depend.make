# Empty dependencies file for ablation_batch_size.
# This may be replaced when dependencies are built.
