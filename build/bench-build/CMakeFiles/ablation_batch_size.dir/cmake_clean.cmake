file(REMOVE_RECURSE
  "../bench/ablation_batch_size"
  "../bench/ablation_batch_size.pdb"
  "CMakeFiles/ablation_batch_size.dir/ablation_batch_size.cc.o"
  "CMakeFiles/ablation_batch_size.dir/ablation_batch_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
