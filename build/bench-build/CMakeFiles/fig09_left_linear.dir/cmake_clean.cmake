file(REMOVE_RECURSE
  "../bench/fig09_left_linear"
  "../bench/fig09_left_linear.pdb"
  "CMakeFiles/fig09_left_linear.dir/fig09_left_linear.cc.o"
  "CMakeFiles/fig09_left_linear.dir/fig09_left_linear.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_left_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
