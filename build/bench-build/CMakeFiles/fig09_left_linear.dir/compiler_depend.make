# Empty compiler generated dependencies file for fig09_left_linear.
# This may be replaced when dependencies are built.
