file(REMOVE_RECURSE
  "../bench/fig03_07_utilization"
  "../bench/fig03_07_utilization.pdb"
  "CMakeFiles/fig03_07_utilization.dir/fig03_07_utilization.cc.o"
  "CMakeFiles/fig03_07_utilization.dir/fig03_07_utilization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_07_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
