# Empty compiler generated dependencies file for fig03_07_utilization.
# This may be replaced when dependencies are built.
