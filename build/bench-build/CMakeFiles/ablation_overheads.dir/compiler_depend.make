# Empty compiler generated dependencies file for ablation_overheads.
# This may be replaced when dependencies are built.
