file(REMOVE_RECURSE
  "../bench/ablation_overheads"
  "../bench/ablation_overheads.pdb"
  "CMakeFiles/ablation_overheads.dir/ablation_overheads.cc.o"
  "CMakeFiles/ablation_overheads.dir/ablation_overheads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
