# Empty compiler generated dependencies file for mjoin_cli.
# This may be replaced when dependencies are built.
