file(REMOVE_RECURSE
  "CMakeFiles/mjoin_cli.dir/mjoin_cli.cc.o"
  "CMakeFiles/mjoin_cli.dir/mjoin_cli.cc.o.d"
  "mjoin_cli"
  "mjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
