# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_explain "/root/repo/build/tools/mjoin_cli" "explain" "--shape" "right-bushy" "--strategy" "RD" "--procs" "12" "--card" "300" "--relations" "5")
set_tests_properties(cli_explain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/mjoin_cli" "run" "--shape" "wide-bushy" "--strategy" "FP" "--procs" "12" "--card" "300" "--relations" "5" "--analyze")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_save_and_replay "sh" "-c" "/root/repo/build/tools/mjoin_cli save-plan --shape left-linear --strategy SP           --procs 8 --card 200 --relations 4 --out /root/repo/build/tools/plan.xra &&           /root/repo/build/tools/mjoin_cli run-plan --plan /root/repo/build/tools/plan.xra           --card 200 --relations 4")
set_tests_properties(cli_save_and_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
