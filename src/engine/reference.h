#ifndef MJOIN_ENGINE_REFERENCE_H_
#define MJOIN_ENGINE_REFERENCE_H_

#include "common/statusor.h"
#include "engine/database.h"
#include "engine/result.h"
#include "plan/query.h"

namespace mjoin {

/// Single-threaded, strategy-free evaluation of a JoinQuery: the oracle
/// against which every parallel execution is checked. Evaluates the tree
/// bottom-up with an in-memory hash join per node.
[[nodiscard]] StatusOr<Relation> ExecuteReference(const JoinQuery& query,
                                    const Database& database);

/// Convenience: reference execution reduced to its result summary.
[[nodiscard]] StatusOr<ResultSummary> ReferenceSummary(const JoinQuery& query,
                                         const Database& database);

}  // namespace mjoin

#endif  // MJOIN_ENGINE_REFERENCE_H_
