#include "engine/thread_executor.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "engine/controller.h"
#include "exec/batch.h"
#include "exec/operator.h"
#include "exec/pipelining_hash_join.h"
#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/scan.h"
#include "exec/simple_hash_join.h"
#include "exec/sort_merge_join.h"
#include "storage/partitioner.h"

namespace mjoin {

namespace {

/// A worker node: one OS thread draining a message queue. Messages for all
/// operation processes placed on this node run serialized here, exactly
/// like on a shared-nothing node.
class WorkerNode {
 public:
  WorkerNode() = default;

  void Start() {
    thread_ = std::thread([this] { Loop(); });
  }

  void Post(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_one();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    for (;;) {
      std::function<void()> fn;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (stop_) return;
          continue;
        }
        fn = std::move(queue_.front());
        queue_.pop_front();
      }
      fn();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::thread thread_;
};

class ThreadRun;

/// One operation process on a worker thread. All of its callbacks run on
/// its node's thread, so the state needs no locking.
class ThreadInstance : public OpContext {
 public:
  ThreadInstance(ThreadRun* run, int op_id, uint32_t index, uint32_t node)
      : run_(run), op_id_(op_id), index_(index), node_(node) {}

  void Charge(Ticks) override {}  // wall-clock backend: real work is time
  void EmitRow(const std::byte* row) override;
  const CostParams& costs() const override { return cost_params_; }

  ThreadRun* run_;
  int op_id_;
  uint32_t index_;
  uint32_t node_;
  std::unique_ptr<Operator> oper;

  bool started = false;
  bool complete = false;
  bool build_done_reported = false;
  int eos_remaining[2] = {0, 0};
  std::vector<TupleBatch> out_pending;
  std::deque<std::function<void()>> pre_start;

  /// Only batch_size is consulted by operators in this backend.
  CostParams cost_params_;
};

class ThreadRun {
 public:
  ThreadRun(const ParallelPlan& plan, const Database& db,
            const ThreadExecOptions& options)
      : plan_(plan), db_(db), options_(options), controller_(&plan) {}

  Status Prepare();
  StatusOr<ThreadQueryResult> Run();

  void EmitRowFrom(ThreadInstance* inst, const std::byte* row);

 private:
  ThreadInstance* instance(int op, uint32_t index) {
    return instances_[static_cast<size_t>(op)][index].get();
  }
  const XraOp& op(int id) const { return plan_.ops[static_cast<size_t>(id)]; }

  void PostToInstance(ThreadInstance* inst, std::function<void()> fn);
  void TriggerInstance(ThreadInstance* inst);
  void PumpSource(ThreadInstance* inst);
  void OnBatch(ThreadInstance* inst, int port, const TupleBatch& batch);
  void OnEos(ThreadInstance* inst, int port);
  void AfterCallback(ThreadInstance* inst);
  void FinishInstance(ThreadInstance* inst);
  void FlushDest(ThreadInstance* inst, uint32_t dest);
  void ReportMilestone(int op_id, uint32_t index, Milestone milestone);
  void DispatchGroups(const std::vector<int>& groups);

  const ParallelPlan& plan_;
  const Database& db_;
  const ThreadExecOptions& options_;

  std::vector<std::unique_ptr<WorkerNode>> nodes_;
  std::vector<std::vector<std::unique_ptr<ThreadInstance>>> instances_;
  std::vector<std::vector<Relation>> stored_;
  std::vector<std::vector<Relation>> scan_fragments_;

  // Scheduler state (controller + completion flag), mutex-protected: any
  // worker thread may deliver a milestone.
  std::mutex scheduler_mutex_;
  QueryController controller_;
  std::condition_variable done_cv_;
  bool done_ = false;
};

void ThreadInstance::EmitRow(const std::byte* row) {
  run_->EmitRowFrom(this, row);
}

Status ThreadRun::Prepare() {
  size_t num_ops = plan_.ops.size();
  instances_.resize(num_ops);
  scan_fragments_.resize(num_ops);
  stored_.resize(static_cast<size_t>(plan_.num_results));

  nodes_.reserve(plan_.num_processors);
  for (uint32_t n = 0; n < plan_.num_processors; ++n) {
    nodes_.push_back(std::make_unique<WorkerNode>());
  }

  for (const XraOp& o : plan_.ops) {
    if (o.store_result >= 0) {
      auto& frags = stored_[static_cast<size_t>(o.store_result)];
      for (size_t i = 0; i < o.processors.size(); ++i) {
        frags.emplace_back(*o.output_schema);
      }
    }
  }

  for (const XraOp& o : plan_.ops) {
    if (o.kind != XraOpKind::kScan) continue;
    MJOIN_ASSIGN_OR_RETURN(const Relation* base, db_.Get(o.relation));
    auto m = static_cast<uint32_t>(o.processors.size());
    const XraOp& consumer = op(o.consumer);
    if (consumer.inputs[o.consumer_port].routing == Routing::kColocated &&
        consumer.is_join()) {
      size_t key = o.consumer_port == 0 ? consumer.join_spec.left_key
                                        : consumer.join_spec.right_key;
      MJOIN_ASSIGN_OR_RETURN(scan_fragments_[static_cast<size_t>(o.id)],
                             HashPartition(*base, key, m));
    } else {
      scan_fragments_[static_cast<size_t>(o.id)] =
          RoundRobinPartition(*base, m);
    }
  }

  for (const XraOp& o : plan_.ops) {
    auto& list = instances_[static_cast<size_t>(o.id)];
    for (uint32_t i = 0; i < o.processors.size(); ++i) {
      auto inst =
          std::make_unique<ThreadInstance>(this, o.id, i, o.processors[i]);
      inst->cost_params_.batch_size = options_.batch_size;
      switch (o.kind) {
        case XraOpKind::kScan: {
          const Relation* frag =
              &scan_fragments_[static_cast<size_t>(o.id)][i];
          inst->oper = std::make_unique<ScanOp>([frag] { return frag; },
                                                o.output_schema);
          break;
        }
        case XraOpKind::kRescan: {
          const Relation* frag =
              &stored_[static_cast<size_t>(o.stored_result)][i];
          inst->oper = std::make_unique<ScanOp>([frag] { return frag; },
                                                o.output_schema);
          break;
        }
        case XraOpKind::kSimpleHashJoin:
          inst->oper = std::make_unique<SimpleHashJoinOp>(o.join_spec);
          break;
        case XraOpKind::kPipeliningHashJoin:
          inst->oper = std::make_unique<PipeliningHashJoinOp>(o.join_spec);
          break;
        case XraOpKind::kSortMergeJoin:
          inst->oper = std::make_unique<SortMergeJoinOp>(o.join_spec);
          break;
        case XraOpKind::kFilter: {
          MJOIN_ASSIGN_OR_RETURN(std::unique_ptr<FilterOp> filter,
                                 FilterOp::Make(o.input_schema, o.filter));
          inst->oper = std::move(filter);
          break;
        }
        case XraOpKind::kAggregate: {
          MJOIN_ASSIGN_OR_RETURN(
              std::unique_ptr<AggregateOp> aggregate,
              AggregateOp::Make(o.input_schema, o.group_column,
                                o.value_column));
          inst->oper = std::move(aggregate);
          break;
        }
      }
      for (int port = 0; port < inst->oper->num_input_ports(); ++port) {
        const XraInput& input = o.inputs[port];
        inst->eos_remaining[port] =
            input.routing == Routing::kColocated
                ? 1
                : static_cast<int>(op(input.producer).processors.size());
      }
      if (o.consumer >= 0) {
        const XraOp& consumer = op(o.consumer);
        for (size_t d = 0; d < consumer.processors.size(); ++d) {
          inst->out_pending.emplace_back(o.output_schema);
        }
      }
      list.push_back(std::move(inst));
    }
  }
  return Status::OK();
}

void ThreadRun::PostToInstance(ThreadInstance* inst,
                               std::function<void()> fn) {
  // Wrap so that pre-start buffering happens on the instance's own thread
  // (the started flag is only touched there).
  nodes_[inst->node_]->Post([inst, fn = std::move(fn)]() mutable {
    if (!inst->started) {
      inst->pre_start.push_back(std::move(fn));
    } else {
      fn();
    }
  });
}

void ThreadRun::DispatchGroups(const std::vector<int>& groups) {
  for (int g : groups) {
    for (int op_id : plan_.groups[static_cast<size_t>(g)].ops) {
      for (auto& inst : instances_[static_cast<size_t>(op_id)]) {
        ThreadInstance* raw = inst.get();
        nodes_[raw->node_]->Post([this, raw] { TriggerInstance(raw); });
      }
    }
  }
}

void ThreadRun::TriggerInstance(ThreadInstance* inst) {
  MJOIN_CHECK(!inst->started);
  inst->started = true;
  inst->oper->Open(inst);
  if (inst->oper->is_source()) {
    PumpSource(inst);
  }
  while (!inst->pre_start.empty()) {
    auto fn = std::move(inst->pre_start.front());
    inst->pre_start.pop_front();
    fn();
  }
}

void ThreadRun::PumpSource(ThreadInstance* inst) {
  // One batch per message so other processes on this node interleave.
  bool more = inst->oper->Produce(inst);
  if (more) {
    nodes_[inst->node_]->Post([this, inst] {
      if (!inst->complete) PumpSource(inst);
    });
  } else {
    FinishInstance(inst);
  }
}

void ThreadRun::EmitRowFrom(ThreadInstance* inst, const std::byte* row) {
  const XraOp& o = op(inst->op_id_);
  if (o.store_result >= 0) {
    stored_[static_cast<size_t>(o.store_result)][inst->index_].AppendRow(row);
    return;
  }
  const XraOp& consumer = op(o.consumer);
  const XraInput& input = consumer.inputs[o.consumer_port];
  uint32_t dest;
  if (input.routing == Routing::kColocated) {
    dest = inst->index_;
  } else {
    TupleRef ref(row, o.output_schema.get());
    dest = FragmentOf(ref.GetInt32(input.split_key),
                      static_cast<uint32_t>(consumer.processors.size()));
  }
  TupleBatch& pending = inst->out_pending[dest];
  pending.AppendRow(row);
  if (pending.num_tuples() >= options_.batch_size) FlushDest(inst, dest);
}

void ThreadRun::FlushDest(ThreadInstance* inst, uint32_t dest) {
  TupleBatch& pending = inst->out_pending[dest];
  if (pending.empty()) return;
  const XraOp& o = op(inst->op_id_);
  auto batch = std::make_shared<TupleBatch>(o.output_schema);
  std::swap(*batch, pending);
  ThreadInstance* consumer = instance(o.consumer, dest);
  int port = o.consumer_port;
  PostToInstance(consumer, [this, consumer, port, batch] {
    OnBatch(consumer, port, *batch);
  });
}

void ThreadRun::OnBatch(ThreadInstance* inst, int port,
                        const TupleBatch& batch) {
  inst->oper->Consume(port, batch, inst);
  AfterCallback(inst);
}

void ThreadRun::OnEos(ThreadInstance* inst, int port) {
  MJOIN_CHECK(inst->eos_remaining[port] > 0);
  if (--inst->eos_remaining[port] == 0) {
    inst->oper->InputDone(port, inst);
  }
  AfterCallback(inst);
}

void ThreadRun::AfterCallback(ThreadInstance* inst) {
  const XraOp& o = op(inst->op_id_);
  if (o.kind == XraOpKind::kSimpleHashJoin && !inst->build_done_reported) {
    auto* join = static_cast<SimpleHashJoinOp*>(inst->oper.get());
    if (join->build_done()) {
      inst->build_done_reported = true;
      ReportMilestone(inst->op_id_, inst->index_, Milestone::kBuildDone);
    }
  }
  if (!inst->complete && inst->oper->finished()) FinishInstance(inst);
}

void ThreadRun::FinishInstance(ThreadInstance* inst) {
  MJOIN_CHECK(!inst->complete);
  inst->complete = true;
  const XraOp& o = op(inst->op_id_);
  if (o.consumer >= 0) {
    for (uint32_t d = 0; d < inst->out_pending.size(); ++d) {
      FlushDest(inst, d);
    }
    const XraOp& consumer_op = op(o.consumer);
    bool networked =
        consumer_op.inputs[o.consumer_port].routing == Routing::kHashSplit;
    int port = o.consumer_port;
    if (networked) {
      for (uint32_t d = 0; d < consumer_op.processors.size(); ++d) {
        ThreadInstance* consumer = instance(o.consumer, d);
        PostToInstance(consumer,
                       [this, consumer, port] { OnEos(consumer, port); });
      }
    } else {
      ThreadInstance* consumer = instance(o.consumer, inst->index_);
      PostToInstance(consumer,
                     [this, consumer, port] { OnEos(consumer, port); });
    }
  }
  ReportMilestone(inst->op_id_, inst->index_, Milestone::kComplete);
}

void ThreadRun::ReportMilestone(int op_id, uint32_t index,
                                Milestone milestone) {
  std::vector<int> ready;
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(scheduler_mutex_);
    ready = controller_.OnInstanceMilestone(op_id, index, milestone);
    all_done = controller_.AllOpsComplete();
  }
  if (!ready.empty()) DispatchGroups(ready);
  if (all_done) {
    {
      std::lock_guard<std::mutex> lock(scheduler_mutex_);
      done_ = true;
    }
    done_cv_.notify_one();
  }
}

StatusOr<ThreadQueryResult> ThreadRun::Run() {
  auto start = std::chrono::steady_clock::now();
  for (auto& node : nodes_) node->Start();

  std::vector<int> initial;
  {
    std::lock_guard<std::mutex> lock(scheduler_mutex_);
    initial = controller_.TakeInitialGroups();
  }
  DispatchGroups(initial);

  {
    std::unique_lock<std::mutex> lock(scheduler_mutex_);
    done_cv_.wait(lock, [this] { return done_; });
  }
  auto end = std::chrono::steady_clock::now();
  for (auto& node : nodes_) node->Stop();

  ThreadQueryResult result;
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  result.result =
      SummarizeFragments(stored_[static_cast<size_t>(plan_.final_result)]);
  if (options_.materialize_result) {
    result.materialized =
        ConcatFragments(stored_[static_cast<size_t>(plan_.final_result)]);
  }
  return result;
}

}  // namespace

StatusOr<ThreadQueryResult> ThreadExecutor::Execute(
    const ParallelPlan& plan, const ThreadExecOptions& options) const {
  MJOIN_RETURN_IF_ERROR(plan.Validate());
  ThreadRun run(plan, *database_, options);
  MJOIN_RETURN_IF_ERROR(run.Prepare());
  return run.Run();
}

}  // namespace mjoin
