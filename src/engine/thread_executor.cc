#include "engine/thread_executor.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/sync.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/controller.h"
#include "engine/fault_injector.h"
#include "exec/batch.h"
#include "exec/batch_pool.h"
#include "exec/emit.h"
#include "exec/operator.h"
#include "exec/pipelining_hash_join.h"
#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/scan.h"
#include "exec/simple_hash_join.h"
#include "exec/sort_merge_join.h"
#include "skew/defense.h"
#include "storage/partitioner.h"

namespace mjoin {

namespace {

/// Work type of a Consume() callback, for trace labels and the phase
/// buckets of OpMetrics.
ThreadWorkType ConsumeWorkType(XraOpKind kind, int port) {
  switch (kind) {
    case XraOpKind::kSimpleHashJoin:
      return port == SimpleHashJoinOp::kBuildPort ? ThreadWorkType::kBuild
                                                  : ThreadWorkType::kProbe;
    case XraOpKind::kPipeliningHashJoin:
    case XraOpKind::kFilter:
      return ThreadWorkType::kPipeline;
    case XraOpKind::kSortMergeJoin:
      return ThreadWorkType::kBuild;  // run-buffer fill
    case XraOpKind::kAggregate:
      return ThreadWorkType::kBuild;  // group-table fill
    default:
      return ThreadWorkType::kOther;
  }
}

/// Work type of an InputDone() callback. The interesting cases do real
/// work there: a simple hash-join replays buffered probe batches when the
/// build side completes, a sort-merge join sorts and merges, an
/// aggregation emits its groups.
ThreadWorkType InputDoneWorkType(XraOpKind kind, int port) {
  switch (kind) {
    case XraOpKind::kSimpleHashJoin:
      return port == SimpleHashJoinOp::kBuildPort ? ThreadWorkType::kProbe
                                                  : ThreadWorkType::kOther;
    case XraOpKind::kSortMergeJoin:
      return ThreadWorkType::kMerge;
    case XraOpKind::kAggregate:
      return ThreadWorkType::kEmit;
    default:
      return ThreadWorkType::kOther;
  }
}

/// The OpMetrics bucket a work type's seconds accumulate into.
double* PhaseBucket(OpMetrics* m, ThreadWorkType type) {
  switch (type) {
    case ThreadWorkType::kBuild:
      return &m->build_seconds;
    case ThreadWorkType::kProbe:
    case ThreadWorkType::kMerge:
      return &m->probe_seconds;
    case ThreadWorkType::kPipeline:
      return &m->pipeline_seconds;
    case ThreadWorkType::kScan:
      return &m->scan_seconds;
    case ThreadWorkType::kEmit:
      return &m->emit_seconds;
    case ThreadWorkType::kBloomBuild:
      return &m->skew_bloom_build_seconds;
    default:
      return &m->other_seconds;
  }
}

/// Producer stalls on a full queue shorter than this are not worth a trace
/// event (they are indistinguishable from lock hand-off noise).
constexpr int64_t kBlockedTraceThresholdNs = 50'000;  // 50 us

/// A worker node: one OS thread draining a message queue. Messages for all
/// operation processes placed on this node run serialized here, exactly
/// like on a shared-nothing node.
///
/// Control messages (triggers, end-of-stream, source self-pumps) enqueue
/// unconditionally; data batches respect `max_data` — a producer on
/// another node blocks in PostData() until the consumer drains below the
/// bound, the run aborts, or `block_timeout` passes (then it enqueues
/// anyway and the overflow is counted). Same-node sends bypass the bound:
/// blocking on one's own queue would deadlock, and a same-node producer is
/// self-throttled by the shared message loop anyway.
class WorkerNode {
 public:
  WorkerNode(uint32_t id, size_t max_data,
             std::chrono::milliseconds block_timeout, FaultInjector* injector,
             const std::atomic<bool>* aborted)
      : id_(id),
        max_data_(max_data),
        block_timeout_(block_timeout),
        injector_(injector),
        aborted_(aborted) {}

  void Start() {
    thread_ = std::thread([this] { Loop(); });
  }

  /// Control message: never blocks, never dropped.
  void Post(std::function<void()> fn) { Enqueue(std::move(fn), false); }

  /// Data batch from another node (or the same node with `bypass_bound`).
  /// Returns false — message dropped — when the run is stopping; the
  /// caller's query is being torn down anyway.
  bool PostData(std::function<void()> fn, bool bypass_bound) {
    {
      MutexLock lock(&mutex_);
      if (max_data_ != 0 && !bypass_bound) {
        // Absolute deadline so spurious wakeups never extend the total
        // wait beyond block_timeout_ (matches the old wait_for predicate).
        // lint:allow-clock backpressure timeout, read only on a full queue
        auto deadline = std::chrono::steady_clock::now() + block_timeout_;
        bool drained = true;
        while (!QueueDrained()) {
          if (!not_full_.WaitUntil(mutex_, deadline)) {
            drained = QueueDrained();
            break;
          }
        }
        if (stop_ || aborted_->load(std::memory_order_acquire)) return false;
        if (!drained) overflows_.fetch_add(1, std::memory_order_relaxed);
      }
      if (stop_) return false;
      queue_.push_back({std::move(fn), true});
      ++data_in_queue_;
      peak_depth_ = std::max(peak_depth_, data_in_queue_);
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Wakes blocked producers and the loop; used when the run aborts.
  void Interrupt() {
    MutexLock lock(&mutex_);
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  /// Drains the remaining queue (callbacks are no-ops once the run
  /// aborted) and joins the thread.
  void Stop() {
    {
      MutexLock lock(&mutex_);
      stop_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyOne();
    if (thread_.joinable()) thread_.join();
  }

  size_t peak_depth() const {
    MutexLock lock(&mutex_);
    return peak_depth_;
  }
  uint64_t processed_data() const {
    return processed_data_.load(std::memory_order_relaxed);
  }
  uint64_t overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }

 private:
  struct Message {
    std::function<void()> fn;
    bool is_data;
  };

  /// True once a blocked producer may proceed: the run is stopping, or the
  /// queue drained below the data bound.
  bool QueueDrained() const MJOIN_REQUIRES(mutex_) {
    return stop_ || aborted_->load(std::memory_order_acquire) ||
           data_in_queue_ < max_data_;
  }

  void Enqueue(std::function<void()> fn, bool is_data) {
    {
      MutexLock lock(&mutex_);
      queue_.push_back({std::move(fn), is_data});
      if (is_data) {
        ++data_in_queue_;
        peak_depth_ = std::max(peak_depth_, data_in_queue_);
      }
    }
    not_empty_.NotifyOne();
  }

  void Loop() {
    for (;;) {
      Message msg;
      {
        MutexLock lock(&mutex_);
        while (!stop_ && queue_.empty()) not_empty_.Wait(mutex_);
        // stop_ drains the queue before exiting: queued callbacks are
        // no-ops once the run aborted, but must still be destroyed here.
        if (queue_.empty()) return;
        msg = std::move(queue_.front());
        queue_.pop_front();
        if (msg.is_data) {
          --data_in_queue_;
          not_full_.NotifyOne();
        }
      }
      if (injector_ != nullptr) injector_->OnDequeue(id_);
      msg.fn();
      if (msg.is_data) {
        processed_data_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  const uint32_t id_;
  const size_t max_data_;
  const std::chrono::milliseconds block_timeout_;
  FaultInjector* const injector_;
  const std::atomic<bool>* const aborted_;

  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<Message> queue_ MJOIN_GUARDED_BY(mutex_);
  size_t data_in_queue_ MJOIN_GUARDED_BY(mutex_) = 0;
  size_t peak_depth_ MJOIN_GUARDED_BY(mutex_) = 0;
  bool stop_ MJOIN_GUARDED_BY(mutex_) = false;
  std::atomic<uint64_t> processed_data_{0};
  std::atomic<uint64_t> overflows_{0};
  std::thread thread_;
};

class ThreadRun;

/// One operation process on a worker thread. All of its callbacks run on
/// its node's thread, so the state needs no locking.
///
/// Output leaves through the instance's EmitWriter: operators that can
/// build rows in place write directly into out_pending (the zero-copy
/// path); EmitRow/EmitRows copy into it. Either way the writer's flush
/// threshold fires BatchFull(), and the host ships or stores the batch.
class ThreadInstance : public OpContext, public EmitSink {
 public:
  ThreadInstance(ThreadRun* run, int op_id, uint32_t index, uint32_t node)
      : run_(run), op_id_(op_id), index_(index), node_(node) {}

  void Charge(Ticks) override {}  // wall-clock backend: real work is time
  void EmitRow(const std::byte* row) override;
  void EmitRows(const std::byte* rows, size_t count,
                size_t row_bytes) override;
  EmitWriter* emit_writer() override {
    return writer_ready ? &writer : nullptr;
  }
  void BatchFull(uint32_t dest) override;
  const CostParams& costs() const override { return cost_params_; }
  MemoryBudget* memory_budget() const override;
  bool cancelled() const override;
  void ReportError(const Status& status) override;
  OpMetrics* metrics() const override {
    return observe_metrics ? &op_metrics : nullptr;
  }

  ThreadRun* run_;
  int op_id_;
  uint32_t index_;
  uint32_t node_;
  std::unique_ptr<Operator> oper;

  /// This instance's metrics; touched only from its node's thread, read by
  /// the host after the workers are joined.
  mutable OpMetrics op_metrics;
  bool observe_metrics = false;

  bool started = false;
  bool complete = false;
  bool build_done_reported = false;
  int eos_remaining[2] = {0, 0};
  /// Pending output: one batch per consumer instance, or a single batch
  /// when this op stores its result locally.
  std::vector<TupleBatch> out_pending;
  /// The zero-copy channel over out_pending; rows_committed() is this
  /// instance's rows-out count (every emit path goes through it).
  EmitWriter writer;
  bool writer_ready = false;
  size_t row_bytes = 0;
  std::deque<std::function<void()>> pre_start;
  /// The skew-defense routing hook installed on this instance's writer
  /// when a directive for its consumer join arrives (probe-edge producers
  /// only). Owned here so it lives exactly as long as the writer uses it.
  std::unique_ptr<EmitDefense> skew_hook;

  /// Only batch_size is consulted by operators in this backend.
  CostParams cost_params_;
};

class ThreadRun {
 public:
  ThreadRun(const ParallelPlan& plan, const Database& db,
            const ThreadExecOptions& options,
            std::vector<BatchPool*> pools)
      : plan_(plan),
        db_(db),
        options_(options),
        budget_(options.memory_budget_bytes),
        pools_(std::move(pools)),
        injector_(options.fault_injector),
        controller_(&plan),
        observe_(options.collect_metrics || options.record_trace),
        // lint:allow-clock run time origin, once per query
        origin_(std::chrono::steady_clock::now()) {
    if (options.record_trace) {
      std::vector<ThreadTraceOpInfo> infos;
      infos.reserve(plan.ops.size());
      for (const XraOp& o : plan.ops) {
        infos.push_back(ThreadTraceOpInfo{o.label, o.trace_label});
      }
      trace_ = std::make_shared<ThreadTraceRecorder>(plan.num_processors,
                                                     std::move(infos));
    }
  }

  Status Prepare();
  StatusOr<ThreadQueryResult> Run(ThreadExecStats* stats_out);

  void EmitRowFrom(ThreadInstance* inst, const std::byte* row);
  void EmitRowsFrom(ThreadInstance* inst, const std::byte* rows, size_t count,
                    size_t row_bytes);
  void FlushDest(ThreadInstance* inst, uint32_t dest);

  MemoryBudget* budget() { return &budget_; }

  /// True once teardown started (abort flag) or the caller's token fired;
  /// operators poll this between rows via OpContext::cancelled().
  bool TeardownRequested() const {
    return aborted_.load(std::memory_order_acquire) ||
           options_.cancellation.cancelled();
  }

  /// Records the first failure and starts teardown: wakes blocked
  /// producers, the scheduler wait, and turns every queued callback into a
  /// no-op. Later calls are ignored (first error wins).
  void Abort(Status status);

 private:
  ThreadInstance* instance(int op, uint32_t index) {
    return instances_[static_cast<size_t>(op)][index].get();
  }
  const XraOp& op(int id) const { return plan_.ops[static_cast<size_t>(id)]; }

  /// The per-batch-boundary runtime check: false once the query should do
  /// no further work. Promotes an externally fired cancellation token or
  /// an expired deadline into the abort status.
  bool CheckRuntime();

  /// Nanoseconds since the run's time origin (t=0 of the trace).
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               // lint:allow-clock observability timestamp, observe_ only
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  /// Runs one operator callback, timed when observability is on: the
  /// elapsed time lands in the instance's phase bucket and (when tracing)
  /// as a busy interval of the instance's worker. With both observability
  /// switches off this is a plain call — no clock is read.
  template <typename Fn>
  void Observed(ThreadInstance* inst, ThreadWorkType type, Fn&& fn) {
    if (!observe_) {
      fn();
      return;
    }
    int64_t t0 = NowNs();
    fn();
    int64_t t1 = NowNs();
    if (options_.collect_metrics) {
      *PhaseBucket(&inst->op_metrics, type) +=
          static_cast<double>(t1 - t0) * 1e-9;
    }
    if (trace_ != nullptr) {
      trace_->Record(inst->node_, t0, t1, type, inst->op_id_);
    }
  }

  void PostToInstance(ThreadInstance* inst, std::function<void()> fn);
  void TriggerInstance(ThreadInstance* inst);
  void PumpSource(ThreadInstance* inst);
  void OnBatch(ThreadInstance* inst, int port, const TupleBatch& batch);
  void OnEos(ThreadInstance* inst, int port);
  void AfterCallback(ThreadInstance* inst);
  void FinishInstance(ThreadInstance* inst);
  void ReportMilestone(int op_id, uint32_t index, Milestone milestone);
  void DispatchGroups(const std::vector<int>& groups);
  ThreadExecStats GatherStats() const;

  /// Skew defense (see skew/defense.h). A defended join instance whose
  /// build input finished scans its table into a report instead of
  /// completing the build: the kBuildDone milestone fires immediately (so
  /// dependent probe groups dispatch) but InputDone(kBuildPort) is
  /// deferred until the merged directive comes back — probe batches,
  /// including hot-key rows sprayed by already-defended producers, buffer
  /// inside the operator until then.
  void HandleDefendedBuildEos(ThreadInstance* inst);
  void BroadcastDirective(int op_id,
                          std::shared_ptr<const SkewDirective> directive);
  void ApplyDirectiveAt(ThreadInstance* inst, const SkewDirective& directive);

  const ParallelPlan& plan_;
  const Database& db_;
  const ThreadExecOptions& options_;

  // Budget precedes instances_ so operator reservations release into a
  // live budget during destruction.
  MemoryBudget budget_;

  // One batch pool per worker node, owned by the ThreadExecutor (they
  // outlive the run, keeping their freelists warm for the next query);
  // flushes acquire from the *destination* node's pool. Pool counters are
  // cumulative across runs, so this run's traffic is reported as the
  // delta from the snapshot taken in Prepare().
  std::vector<BatchPool*> pools_;
  uint64_t pool_base_allocated_ = 0;
  uint64_t pool_base_reused_ = 0;

  FaultInjector* const injector_;

  std::vector<std::unique_ptr<WorkerNode>> nodes_;
  std::vector<std::vector<std::unique_ptr<ThreadInstance>>> instances_;
  std::vector<std::vector<Relation>> stored_;
  std::vector<std::vector<Relation>> scan_fragments_;

  /// Per-defended-join report merger. Instances of one join report from
  /// different worker threads; the mutex serializes the merge (the only
  /// cross-thread skew state — directives travel by value afterwards).
  struct SkewExchange {
    SkewExchange(int op, uint32_t num_instances,
                 const SkewDefenseOptions& options)
        : merger(op, num_instances, options) {}
    Mutex mutex;
    SkewReportMerger merger MJOIN_GUARDED_BY(mutex);
  };
  std::unordered_map<int, std::unique_ptr<SkewExchange>> skew_exchanges_;

  std::atomic<bool> aborted_{false};
  std::atomic<uint64_t> batches_sent_{0};
  std::atomic<uint64_t> batches_dropped_{0};
  std::atomic<uint64_t> batches_duplicated_{0};

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_point_;

  // Scheduler state (controller + completion flag + first error),
  // mutex-protected: any worker thread may deliver a milestone or abort.
  // QueryController itself is not thread-safe; guarding the member is what
  // serializes it (the contract its header documents).
  Mutex scheduler_mutex_;
  QueryController controller_ MJOIN_GUARDED_BY(scheduler_mutex_);
  Status run_status_ MJOIN_GUARDED_BY(scheduler_mutex_);
  CondVar done_cv_;
  bool done_ MJOIN_GUARDED_BY(scheduler_mutex_) = false;

  // Observability: timing is on when either metrics or tracing is; the
  // recorder exists only when tracing is. origin_ is reset when Run()
  // starts so trace timestamps are relative to the run.
  const bool observe_;
  std::shared_ptr<ThreadTraceRecorder> trace_;
  std::chrono::steady_clock::time_point origin_;
};

void ThreadInstance::EmitRow(const std::byte* row) {
  run_->EmitRowFrom(this, row);
}

void ThreadInstance::EmitRows(const std::byte* rows, size_t count,
                              size_t row_bytes) {
  run_->EmitRowsFrom(this, rows, count, row_bytes);
}

void ThreadInstance::BatchFull(uint32_t dest) { run_->FlushDest(this, dest); }

MemoryBudget* ThreadInstance::memory_budget() const { return run_->budget(); }

bool ThreadInstance::cancelled() const { return run_->TeardownRequested(); }

void ThreadInstance::ReportError(const Status& status) {
  run_->Abort(status);
}

Status ThreadRun::Prepare() {
  size_t num_ops = plan_.ops.size();
  instances_.resize(num_ops);
  scan_fragments_.resize(num_ops);
  stored_.resize(static_cast<size_t>(plan_.num_results));

  nodes_.reserve(plan_.num_processors);
  for (uint32_t n = 0; n < plan_.num_processors; ++n) {
    nodes_.push_back(std::make_unique<WorkerNode>(
        n, options_.max_queued_batches, options_.queue_block_timeout,
        injector_, &aborted_));
  }
  for (const BatchPool* pool : pools_) {
    pool_base_allocated_ += pool->allocated();
    pool_base_reused_ += pool->reused();
  }

  if (options_.skew_defense.enabled()) {
    for (int id : DefendedJoinOps(plan_)) {
      skew_exchanges_.emplace(
          id, std::make_unique<SkewExchange>(
                  id, static_cast<uint32_t>(op(id).processors.size()),
                  options_.skew_defense));
    }
  }

  for (const XraOp& o : plan_.ops) {
    if (o.store_result >= 0) {
      auto& frags = stored_[static_cast<size_t>(o.store_result)];
      for (size_t i = 0; i < o.processors.size(); ++i) {
        frags.emplace_back(*o.output_schema);
      }
    }
  }

  for (const XraOp& o : plan_.ops) {
    if (o.kind != XraOpKind::kScan) continue;
    MJOIN_ASSIGN_OR_RETURN(const Relation* base, db_.Get(o.relation));
    auto m = static_cast<uint32_t>(o.processors.size());
    const XraOp& consumer = op(o.consumer);
    if (consumer.inputs[o.consumer_port].routing == Routing::kColocated &&
        consumer.is_join()) {
      size_t key = o.consumer_port == 0 ? consumer.join_spec.left_key
                                        : consumer.join_spec.right_key;
      MJOIN_ASSIGN_OR_RETURN(scan_fragments_[static_cast<size_t>(o.id)],
                             HashPartition(*base, key, m));
    } else {
      scan_fragments_[static_cast<size_t>(o.id)] =
          RoundRobinPartition(*base, m);
    }
  }

  for (const XraOp& o : plan_.ops) {
    auto& list = instances_[static_cast<size_t>(o.id)];
    for (uint32_t i = 0; i < o.processors.size(); ++i) {
      auto inst =
          std::make_unique<ThreadInstance>(this, o.id, i, o.processors[i]);
      inst->cost_params_.batch_size = options_.batch_size;
      inst->observe_metrics = options_.collect_metrics;
      switch (o.kind) {
        case XraOpKind::kScan: {
          const Relation* frag =
              &scan_fragments_[static_cast<size_t>(o.id)][i];
          inst->oper = std::make_unique<ScanOp>([frag] { return frag; },
                                                o.output_schema);
          break;
        }
        case XraOpKind::kRescan: {
          const Relation* frag =
              &stored_[static_cast<size_t>(o.stored_result)][i];
          inst->oper = std::make_unique<ScanOp>([frag] { return frag; },
                                                o.output_schema);
          break;
        }
        case XraOpKind::kSimpleHashJoin:
          inst->oper = std::make_unique<SimpleHashJoinOp>(o.join_spec);
          break;
        case XraOpKind::kPipeliningHashJoin:
          inst->oper = std::make_unique<PipeliningHashJoinOp>(o.join_spec);
          break;
        case XraOpKind::kSortMergeJoin:
          inst->oper = std::make_unique<SortMergeJoinOp>(o.join_spec);
          break;
        case XraOpKind::kFilter: {
          MJOIN_ASSIGN_OR_RETURN(std::unique_ptr<FilterOp> filter,
                                 FilterOp::Make(o.input_schema, o.filter));
          inst->oper = std::move(filter);
          break;
        }
        case XraOpKind::kAggregate: {
          MJOIN_ASSIGN_OR_RETURN(
              std::unique_ptr<AggregateOp> aggregate,
              AggregateOp::Make(o.input_schema, o.group_column,
                                o.value_column));
          inst->oper = std::move(aggregate);
          break;
        }
      }
      for (int port = 0; port < inst->oper->num_input_ports(); ++port) {
        const XraInput& input = o.inputs[port];
        inst->eos_remaining[port] =
            input.routing == Routing::kColocated
                ? 1
                : static_cast<int>(op(input.producer).processors.size());
      }
      inst->row_bytes = o.output_schema->tuple_size();
      if (o.store_result >= 0) {
        // Store-mode: output accumulates in a single pending batch and is
        // bulk-appended to the local stored fragment at each flush (where
        // the budget is reserved for exactly the flushed bytes).
        inst->out_pending.emplace_back(o.output_schema);
        inst->writer.Configure(inst->out_pending.data(), 1, /*split_column=*/-1,
                               /*fixed_dest=*/0, options_.batch_size,
                               inst.get());
        inst->writer_ready = true;
      } else if (o.consumer >= 0) {
        const XraOp& consumer = op(o.consumer);
        const XraInput& input = consumer.inputs[o.consumer_port];
        for (size_t d = 0; d < consumer.processors.size(); ++d) {
          inst->out_pending.emplace_back(o.output_schema);
        }
        int split_column = input.routing == Routing::kHashSplit
                               ? static_cast<int>(input.split_key)
                               : -1;
        uint32_t fixed_dest =
            input.routing == Routing::kColocated ? i : 0;
        inst->writer.Configure(
            inst->out_pending.data(),
            static_cast<uint32_t>(consumer.processors.size()), split_column,
            fixed_dest, options_.batch_size, inst.get());
        inst->writer_ready = true;
      }
      list.push_back(std::move(inst));
    }
  }
  return Status::OK();
}

void ThreadRun::Abort(Status status) {
  {
    MutexLock lock(&scheduler_mutex_);
    if (done_ || aborted_.load(std::memory_order_relaxed)) return;
    run_status_ = std::move(status);
    aborted_.store(true, std::memory_order_release);
  }
  for (auto& node : nodes_) node->Interrupt();
  done_cv_.NotifyAll();
}

bool ThreadRun::CheckRuntime() {
  if (aborted_.load(std::memory_order_acquire)) return false;
  if (options_.cancellation.cancelled()) {
    Abort(Status::Cancelled("query cancelled by caller"));
    return false;
  }
  // lint:allow-clock deadline check, one read per scheduler tick
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_point_) {
    Abort(Status::DeadlineExceeded("query ran past its deadline"));
    return false;
  }
  return true;
}

void ThreadRun::PostToInstance(ThreadInstance* inst,
                               std::function<void()> fn) {
  // Wrap so that pre-start buffering happens on the instance's own thread
  // (the started flag is only touched there).
  nodes_[inst->node_]->Post([inst, fn = std::move(fn)]() mutable {
    if (!inst->started) {
      inst->pre_start.push_back(std::move(fn));
    } else {
      fn();
    }
  });
}

void ThreadRun::DispatchGroups(const std::vector<int>& groups) {
  for (int g : groups) {
    for (int op_id : plan_.groups[static_cast<size_t>(g)].ops) {
      for (auto& inst : instances_[static_cast<size_t>(op_id)]) {
        ThreadInstance* raw = inst.get();
        nodes_[raw->node_]->Post([this, raw] { TriggerInstance(raw); });
      }
    }
  }
}

void ThreadRun::TriggerInstance(ThreadInstance* inst) {
  if (!CheckRuntime()) return;
  MJOIN_CHECK(!inst->started);
  inst->started = true;
  Observed(inst, ThreadWorkType::kStartup,
           [inst] { inst->oper->Open(inst); });
  if (inst->oper->is_source()) {
    PumpSource(inst);
  }
  while (!inst->pre_start.empty()) {
    auto fn = std::move(inst->pre_start.front());
    inst->pre_start.pop_front();
    fn();
  }
}

void ThreadRun::PumpSource(ThreadInstance* inst) {
  if (!CheckRuntime()) return;
  // One batch per message so other processes on this node interleave.
  bool more = false;
  Observed(inst, ThreadWorkType::kScan,
           [inst, &more] { more = inst->oper->Produce(inst); });
  if (more) {
    nodes_[inst->node_]->Post([this, inst] {
      if (!inst->complete) PumpSource(inst);
    });
  } else {
    FinishInstance(inst);
  }
}

void ThreadRun::EmitRowFrom(ThreadInstance* inst, const std::byte* row) {
  if (aborted_.load(std::memory_order_relaxed)) return;
  // Copying fallback: the finished row still travels through the writer,
  // which owns routing, the flush threshold, and the rows-out count.
  EmitWriter& writer = inst->writer;
  int32_t route = 0;
  if (writer.split_column() >= 0) {
    TupleRef ref(row, op(inst->op_id_).output_schema.get());
    route = ref.GetInt32(static_cast<size_t>(writer.split_column()));
  }
  writer.Append(row, route);
}

void ThreadRun::EmitRowsFrom(ThreadInstance* inst, const std::byte* rows,
                             size_t count, size_t row_bytes) {
  if (aborted_.load(std::memory_order_relaxed)) return;
  EmitWriter& writer = inst->writer;
  const int split = writer.split_column();
  if (split < 0) {
    // Single destination: the whole slice lands in the pending batch in
    // one copy (scans feed stores and colocated consumers this way).
    writer.AppendRows(rows, count);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    const std::byte* row = rows + i * row_bytes;
    TupleRef ref(row, op(inst->op_id_).output_schema.get());
    writer.Append(row, ref.GetInt32(static_cast<size_t>(split)));
  }
}

void ThreadRun::FlushDest(ThreadInstance* inst, uint32_t dest) {
  TupleBatch& pending = inst->out_pending[dest];
  if (pending.empty()) return;
  if (aborted_.load(std::memory_order_relaxed)) {
    // Teardown: the rows are going nowhere; drop them but keep the buffer.
    pending.Clear();
    return;
  }
  const XraOp& o = op(inst->op_id_);
  if (o.store_result >= 0) {
    // Local store: reserve the budget for exactly the flushed bytes in one
    // call (not per row), then bulk-append into the stored fragment. The
    // pending batch keeps its capacity for the next fill.
    Status reserved = budget_.Reserve(pending.byte_size());
    if (!reserved.ok()) {
      Abort(std::move(reserved));
      return;
    }
    stored_[static_cast<size_t>(o.store_result)][inst->index_].AppendRows(
        pending.raw_data(), pending.num_tuples());
    pending.Clear();
    return;
  }
  ThreadInstance* consumer = instance(o.consumer, dest);
  // Swap the filled buffer out against a pooled one: the batch that ships
  // carries pending's bytes, and pending inherits the recycled buffer's
  // capacity — steady state allocates nothing on either side. The pool is
  // the destination node's, so the consumer's release feeds its own next
  // acquisition.
  std::shared_ptr<TupleBatch> batch =
      pools_[consumer->node_]->Acquire(o.output_schema);
  std::swap(*batch, pending);
  int port = o.consumer_port;

  int copies = 1;
  if (injector_ != nullptr) {
    if (injector_->ShouldDropBatch(o.consumer)) {
      batches_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (injector_->ShouldDuplicateBatch(o.consumer)) {
      batches_duplicated_.fetch_add(1, std::memory_order_relaxed);
      copies = 2;
    }
  }
  // Blocking on one's own queue would starve the very loop that drains
  // it, so same-node sends bypass the backpressure bound (the shared
  // message loop already throttles such producers).
  bool same_node = consumer->node_ == inst->node_;
  // A cross-node PostData may block on backpressure; record stalls as
  // blocked-on-queue trace intervals (nested inside the producer's busy
  // interval when the flush happens mid-callback).
  bool watch_block = trace_ != nullptr && !same_node;
  for (int c = 0; c < copies; ++c) {
    int64_t t0 = watch_block ? NowNs() : 0;
    bool sent = nodes_[consumer->node_]->PostData(
        [this, consumer, port, batch] {
          if (consumer->started) {
            OnBatch(consumer, port, *batch);
          } else {
            consumer->pre_start.push_back([this, consumer, port, batch] {
              OnBatch(consumer, port, *batch);
            });
          }
        },
        same_node);
    if (watch_block) {
      int64_t t1 = NowNs();
      if (t1 - t0 >= kBlockedTraceThresholdNs) {
        trace_->Record(inst->node_, t0, t1, ThreadWorkType::kBlocked,
                       /*op_id=*/-1);
      }
    }
    if (sent) batches_sent_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadRun::OnBatch(ThreadInstance* inst, int port,
                        const TupleBatch& batch) {
  if (!CheckRuntime()) return;
  if (injector_ != nullptr) {
    Status status = injector_->BeforeConsume(inst->op_id_);
    if (!status.ok()) {
      Abort(std::move(status));
      return;
    }
  }
  if (!observe_) {
    inst->oper->Consume(port, batch, inst);
  } else {
    if (options_.collect_metrics) {
      inst->op_metrics.rows_in[port] += batch.num_tuples();
      ++inst->op_metrics.batches_in[port];
    }
    ThreadWorkType type = ConsumeWorkType(op(inst->op_id_).kind, port);
    int64_t t0 = NowNs();
    inst->oper->Consume(port, batch, inst);
    int64_t t1 = NowNs();
    if (options_.collect_metrics) {
      double secs = static_cast<double>(t1 - t0) * 1e-9;
      *PhaseBucket(&inst->op_metrics, type) += secs;
      inst->op_metrics.batch_seconds.Add(secs);
    }
    if (trace_ != nullptr) {
      trace_->Record(inst->node_, t0, t1, type, inst->op_id_);
    }
  }
  AfterCallback(inst);
}

void ThreadRun::OnEos(ThreadInstance* inst, int port) {
  if (!CheckRuntime()) return;
  MJOIN_CHECK(inst->eos_remaining[port] > 0);
  if (--inst->eos_remaining[port] == 0) {
    if (port == SimpleHashJoinOp::kBuildPort &&
        skew_exchanges_.count(inst->op_id_) != 0) {
      // Defended join: the build table is complete but InputDone(build)
      // waits for the merged skew directive (probe batches buffer inside
      // the operator meanwhile).
      HandleDefendedBuildEos(inst);
      return;
    }
    ThreadWorkType type = InputDoneWorkType(op(inst->op_id_).kind, port);
    Observed(inst, type,
             [inst, port] { inst->oper->InputDone(port, inst); });
  }
  AfterCallback(inst);
}

void ThreadRun::HandleDefendedBuildEos(ThreadInstance* inst) {
  auto* join = static_cast<SimpleHashJoinOp*>(inst->oper.get());
  const uint32_t num_instances =
      static_cast<uint32_t>(op(inst->op_id_).processors.size());
  SkewJoinReport report;
  Observed(inst, ThreadWorkType::kBloomBuild, [&] {
    report = BuildSkewReport(join->table(), inst->op_id_, inst->index_,
                             num_instances, options_.skew_defense);
  });
  SkewExchange* exchange = skew_exchanges_.at(inst->op_id_).get();
  std::shared_ptr<const SkewDirective> directive;
  {
    MutexLock lock(&exchange->mutex);
    exchange->merger.Add(std::move(report));
    if (exchange->merger.complete()) {
      directive =
          std::make_shared<const SkewDirective>(exchange->merger.Finish());
    }
  }
  // Broadcast before the milestone: install/apply posts enqueue ahead of
  // any probe-group trigger the milestone may dispatch, so a probe
  // producer's writer is defended before its first Produce() runs.
  if (directive != nullptr) BroadcastDirective(inst->op_id_, directive);
  // The table itself is done — report the milestone now so dependent
  // groups overlap with the directive round-trip. AfterCallback must not
  // re-report it once InputDone(build) eventually runs.
  inst->build_done_reported = true;
  ReportMilestone(inst->op_id_, inst->index_, Milestone::kBuildDone);
}

void ThreadRun::BroadcastDirective(
    int op_id, std::shared_ptr<const SkewDirective> directive) {
  const XraOp& o = op(op_id);
  // Defense hooks go to every producer instance of the probe edge; each
  // gets its own SkewEmitDefense (writers are single-threaded, the hook
  // holds per-instance state).
  int producer = o.inputs[SimpleHashJoinOp::kProbePort].producer;
  const XraOp& producer_op = op(producer);
  for (uint32_t i = 0; i < producer_op.processors.size(); ++i) {
    ThreadInstance* p = instance(producer, i);
    PostToInstance(p, [p, directive] {
      if (p->complete) return;  // already flushed everything undefended
      p->skew_hook = std::make_unique<SkewEmitDefense>(*directive);
      p->writer.SetDefense(p->skew_hook.get());
      if (p->observe_metrics) {
        double fp = directive->bloom.EstimateFpRate();
        if (fp > p->op_metrics.skew_bloom_fp_rate) {
          p->op_metrics.skew_bloom_fp_rate = fp;
        }
      }
    });
  }
  // Replicated hot rows + the deferred InputDone(build) go to every join
  // instance (including the one that merged the directive).
  for (uint32_t i = 0; i < o.processors.size(); ++i) {
    ThreadInstance* j = instance(op_id, i);
    PostToInstance(j, [this, j, directive] {
      ApplyDirectiveAt(j, *directive);
    });
  }
}

void ThreadRun::ApplyDirectiveAt(ThreadInstance* inst,
                                 const SkewDirective& directive) {
  if (!CheckRuntime()) return;
  auto* join = static_cast<SimpleHashJoinOp*>(inst->oper.get());
  uint64_t inserted = ApplySkewDirective(directive, join->mutable_table());
  join->NoteTableGrowth();
  if (inst->observe_metrics) {
    inst->op_metrics.skew_replicated_rows += inserted;
    // Hot-key count is a per-join fact, not per-instance: record it once
    // (instance 0) so the post-run merge does not multiply it.
    if (inst->index_ == 0) {
      inst->op_metrics.skew_hot_keys +=
          static_cast<uint64_t>(directive.hot_keys.size());
    }
  }
  Observed(inst,
           InputDoneWorkType(XraOpKind::kSimpleHashJoin,
                             SimpleHashJoinOp::kBuildPort),
           [inst] {
             inst->oper->InputDone(SimpleHashJoinOp::kBuildPort, inst);
           });
  AfterCallback(inst);
}

void ThreadRun::AfterCallback(ThreadInstance* inst) {
  if (aborted_.load(std::memory_order_acquire)) return;
  const XraOp& o = op(inst->op_id_);
  if (o.kind == XraOpKind::kSimpleHashJoin && !inst->build_done_reported) {
    auto* join = static_cast<SimpleHashJoinOp*>(inst->oper.get());
    if (join->build_done()) {
      inst->build_done_reported = true;
      ReportMilestone(inst->op_id_, inst->index_, Milestone::kBuildDone);
    }
  }
  if (!inst->complete && inst->oper->finished()) FinishInstance(inst);
}

void ThreadRun::FinishInstance(ThreadInstance* inst) {
  if (aborted_.load(std::memory_order_acquire)) return;
  MJOIN_CHECK(!inst->complete);
  inst->complete = true;
  const XraOp& o = op(inst->op_id_);
  // Flush every pending destination — the stored-result tail included.
  for (uint32_t d = 0; d < inst->out_pending.size(); ++d) {
    FlushDest(inst, d);
  }
  if (o.consumer >= 0 && o.store_result < 0) {
    const XraOp& consumer_op = op(o.consumer);
    bool networked =
        consumer_op.inputs[o.consumer_port].routing == Routing::kHashSplit;
    int port = o.consumer_port;
    if (networked) {
      for (uint32_t d = 0; d < consumer_op.processors.size(); ++d) {
        ThreadInstance* consumer = instance(o.consumer, d);
        PostToInstance(consumer,
                       [this, consumer, port] { OnEos(consumer, port); });
      }
    } else {
      ThreadInstance* consumer = instance(o.consumer, inst->index_);
      PostToInstance(consumer,
                     [this, consumer, port] { OnEos(consumer, port); });
    }
  }
  ReportMilestone(inst->op_id_, inst->index_, Milestone::kComplete);
}

void ThreadRun::ReportMilestone(int op_id, uint32_t index,
                                Milestone milestone) {
  std::vector<int> ready;
  bool all_done = false;
  {
    MutexLock lock(&scheduler_mutex_);
    if (aborted_.load(std::memory_order_relaxed)) return;
    ready = controller_.OnInstanceMilestone(op_id, index, milestone);
    all_done = controller_.AllOpsComplete();
  }
  if (!ready.empty()) DispatchGroups(ready);
  if (all_done) {
    {
      MutexLock lock(&scheduler_mutex_);
      done_ = true;
    }
    done_cv_.NotifyAll();
  }
}

ThreadExecStats ThreadRun::GatherStats() const {
  ThreadExecStats stats;
  stats.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  stats.batches_dropped = batches_dropped_.load(std::memory_order_relaxed);
  stats.batches_duplicated =
      batches_duplicated_.load(std::memory_order_relaxed);
  for (const auto& node : nodes_) {
    stats.batches_processed += node->processed_data();
    stats.queue_overflows += node->overflows();
    stats.peak_queue_depth = std::max(stats.peak_queue_depth,
                                      node->peak_depth());
  }
  for (const BatchPool* pool : pools_) {
    stats.batch_buffers_allocated += pool->allocated();
    stats.batch_buffers_reused += pool->reused();
  }
  stats.batch_buffers_allocated -= pool_base_allocated_;
  stats.batch_buffers_reused -= pool_base_reused_;
  stats.peak_memory_bytes = budget_.peak();
  if (options_.collect_metrics) {
    stats.per_op.reserve(plan_.ops.size());
    for (const XraOp& o : plan_.ops) {
      ThreadOpStats per_op;
      per_op.op_id = o.id;
      per_op.name = o.label;
      per_op.kind = XraOpKindName(o.kind);
      per_op.trace_label = o.trace_label;
      const auto& list = instances_[static_cast<size_t>(o.id)];
      per_op.instances = static_cast<uint32_t>(list.size());
      for (const auto& inst : list) {
        per_op.metrics.MergeFrom(inst->op_metrics);
        // Every emit path (zero-copy and fallback) runs through the
        // writer, so its commit count is the instance's rows-out; the
        // writer also carries the skew-defense drop/re-route counts
        // (attributed to the producer that saved the wire bytes).
        per_op.metrics.rows_out += inst->writer.rows_committed();
        per_op.metrics.skew_bloom_filtered_rows += inst->writer.rows_dropped();
        per_op.metrics.skew_repartitioned_rows +=
            inst->writer.rows_repartitioned();
        inst->oper->CollectMetrics(&per_op.metrics);
        per_op.metrics.peak_memory_bytes += inst->oper->peak_memory_bytes();
      }
      stats.per_op.push_back(std::move(per_op));
    }
  }
  return stats;
}

/// Publishes the run-level counters (and the pooled batch-latency samples)
/// into the caller's registry. Runs after the workers joined.
void PublishMetrics(const ThreadExecStats& stats, double wall_seconds,
                    MetricsRegistry* registry) {
  registry->counter("thread.batches_sent")->Add(stats.batches_sent);
  registry->counter("thread.batches_processed")->Add(stats.batches_processed);
  registry->counter("thread.batches_dropped")->Add(stats.batches_dropped);
  registry->counter("thread.batches_duplicated")
      ->Add(stats.batches_duplicated);
  registry->counter("thread.queue_overflows")->Add(stats.queue_overflows);
  registry->counter("thread.batch_buffers_allocated")
      ->Add(stats.batch_buffers_allocated);
  registry->counter("thread.batch_buffers_reused")
      ->Add(stats.batch_buffers_reused);
  registry->gauge("thread.peak_queue_depth")
      ->Set(static_cast<int64_t>(stats.peak_queue_depth));
  registry->gauge("thread.peak_memory_bytes")
      ->Set(static_cast<int64_t>(stats.peak_memory_bytes));
  registry->histogram("thread.wall_seconds")->Observe(wall_seconds);
  Histogram* batch_hist = registry->histogram("thread.batch_seconds");
  uint64_t rows_out = 0;
  uint64_t hot_keys = 0;
  uint64_t replicated = 0;
  uint64_t repartitioned = 0;
  uint64_t bloom_filtered = 0;
  double bloom_fp_rate = 0;
  for (const ThreadOpStats& per_op : stats.per_op) {
    for (double sample : per_op.metrics.batch_seconds.values()) {
      batch_hist->Observe(sample);
    }
    rows_out += per_op.metrics.rows_out;
    hot_keys += per_op.metrics.skew_hot_keys;
    replicated += per_op.metrics.skew_replicated_rows;
    repartitioned += per_op.metrics.skew_repartitioned_rows;
    bloom_filtered += per_op.metrics.skew_bloom_filtered_rows;
    bloom_fp_rate =
        std::max(bloom_fp_rate, per_op.metrics.skew_bloom_fp_rate);
  }
  registry->counter("thread.rows_emitted")->Add(rows_out);
  registry->counter("skew.hot_keys_detected")->Add(hot_keys);
  registry->counter("skew.replicated_rows")->Add(replicated);
  registry->counter("skew.repartitioned_rows")->Add(repartitioned);
  registry->counter("skew.bloom_filtered_rows")->Add(bloom_filtered);
  registry->histogram("skew.bloom_fp_rate")->Observe(bloom_fp_rate);
}

StatusOr<ThreadQueryResult> ThreadRun::Run(ThreadExecStats* stats_out) {
  // lint:allow-clock run wall-clock start, once per query
  auto start = std::chrono::steady_clock::now();
  origin_ = start;  // trace t=0 and metric timestamps are run-relative
  if (options_.deadline.has_value()) {
    has_deadline_ = true;
    deadline_point_ = start + *options_.deadline;
  }
  for (auto& node : nodes_) node->Start();

  // A pre-cancelled token (or a deadline that expires before dispatch)
  // aborts before any work is posted — but workers still started and must
  // be joined below, exercising the same teardown as a mid-flight abort.
  if (CheckRuntime()) {
    std::vector<int> initial;
    {
      MutexLock lock(&scheduler_mutex_);
      initial = controller_.TakeInitialGroups();
    }
    DispatchGroups(initial);
  }

  // Workers promote cancellation/deadline at batch boundaries; the 10 ms
  // poll here covers the corner where every worker is idle (or stalled by
  // an injected fault) when the token fires.
  for (;;) {
    {
      MutexLock lock(&scheduler_mutex_);
      auto poll_deadline =
          // lint:allow-clock scheduler poll tick, not a per-batch read
          std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
      while (!done_ && !aborted_.load(std::memory_order_relaxed)) {
        if (!done_cv_.WaitUntil(scheduler_mutex_, poll_deadline)) break;
      }
      if (done_ || aborted_.load(std::memory_order_relaxed)) break;
    }
    if (!CheckRuntime()) break;
  }
  // lint:allow-clock run wall-clock end, once per query
  auto end = std::chrono::steady_clock::now();

  // Teardown: always join every worker, success or abort. Stop() wakes
  // blocked producers, drains queued messages (no-ops once aborted), and
  // joins, so no thread or queue outlives this function.
  for (auto& node : nodes_) node->Stop();

  ThreadExecStats stats = GatherStats();
  if (stats_out != nullptr) *stats_out = stats;

  double wall_seconds = std::chrono::duration<double>(end - start).count();
  // Published on the abort path too: partial progress is diagnosable.
  if (options_.metrics_registry != nullptr) {
    PublishMetrics(stats, wall_seconds, options_.metrics_registry);
  }

  if (aborted_.load(std::memory_order_acquire)) {
    MutexLock lock(&scheduler_mutex_);
    return run_status_;
  }

  ThreadQueryResult result;
  result.wall_seconds = wall_seconds;
  result.result =
      SummarizeFragments(stored_[static_cast<size_t>(plan_.final_result)]);
  if (options_.materialize_result) {
    result.materialized =
        ConcatFragments(stored_[static_cast<size_t>(plan_.final_result)]);
  }
  result.stats = stats;
  if (trace_ != nullptr) {
    auto makespan_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count();
    result.utilization = trace_->Utilization(makespan_ns);
    result.utilization_diagram =
        trace_->RenderAscii(makespan_ns, options_.trace_width);
    result.trace = trace_;
  }
  return result;
}

}  // namespace

std::string RenderThreadOpStats(const ThreadExecStats& stats) {
  if (stats.per_op.empty()) return "";
  TablePrinter table({"op", "kind", "label", "inst", "rows in", "rows out",
                      "busy [s]", "build [s]", "probe [s]", "batch p95 [ms]",
                      "ht rows", "collisions", "peak mem"});
  for (const ThreadOpStats& per_op : stats.per_op) {
    const OpMetrics& m = per_op.metrics;
    std::string p95 = "-";
    if (m.batch_seconds.count() > 0) {
      p95 = FormatDouble(m.batch_seconds.Percentile(95) * 1e3, 3);
    }
    table.AddRow(
        {StrCat(per_op.op_id), per_op.kind,
         StrCat(per_op.name, " '", std::string(1, per_op.trace_label), "'"),
         StrCat(per_op.instances), StrCat(m.rows_in[0] + m.rows_in[1]),
         StrCat(m.rows_out), FormatDouble(m.busy_seconds(), 3),
         FormatDouble(m.build_seconds, 3), FormatDouble(m.probe_seconds, 3),
         p95, StrCat(m.hash_table_rows), StrCat(m.hash_collisions),
         FormatBytes(m.peak_memory_bytes)});
  }
  return table.ToString();
}

StatusOr<ThreadQueryResult> ThreadExecutor::Execute(
    const ParallelPlan& plan, const ThreadExecOptions& options,
    ThreadExecStats* stats_out) const {
  if (options.batch_size == 0) {
    return Status::InvalidArgument(
        "ThreadExecOptions::batch_size must be positive");
  }
  if (options.deadline.has_value() && options.deadline->count() <= 0) {
    return Status::InvalidArgument(
        "ThreadExecOptions::deadline must be positive when set");
  }
  MJOIN_RETURN_IF_ERROR(plan.Validate());
  std::vector<BatchPool*> pools;
  {
    MutexLock lock(&pools_mutex_);
    while (pools_.size() < plan.num_processors) {
      pools_.push_back(std::make_unique<BatchPool>());
    }
    pools.reserve(plan.num_processors);
    for (uint32_t n = 0; n < plan.num_processors; ++n) {
      pools.push_back(pools_[n].get());
    }
  }
  ThreadRun run(plan, *database_, options, std::move(pools));
  MJOIN_RETURN_IF_ERROR(run.Prepare());
  return run.Run(stats_out);
}

ThreadExecutor::ThreadExecutor(const Database* database)
    : database_(database) {}

ThreadExecutor::~ThreadExecutor() = default;

}  // namespace mjoin
