#include "engine/process_protocol.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "common/string_util.h"

namespace mjoin {

namespace {

void PutBool(std::vector<std::byte>* out, bool v) { PutU8(out, v ? 1 : 0); }

Status ReadBool(WireReader* reader, bool* v) {
  uint8_t raw;
  MJOIN_RETURN_IF_ERROR(reader->ReadU8(&raw));
  *v = raw != 0;
  return Status::OK();
}

}  // namespace

void EncodePlanEnvelope(const PlanEnvelope& env, std::vector<std::byte>* out) {
  PutU32(out, env.protocol_version);
  PutU32(out, env.worker_id);
  PutU32(out, env.num_workers);
  PutU32(out, env.batch_size);
  PutBool(out, env.materialize_result);
  PutU64(out, env.max_queued_batches);
  PutU64(out, env.memory_budget_bytes);
  PutBool(out, env.collect_metrics);
  PutBool(out, env.record_trace);
  PutI64(out, env.trace_origin_ns);
  PutString(out, env.fault_scenario);
  PutString(out, env.plan_text);
  PutU32(out, env.attempt);
  PutBool(out, env.use_shm_data_plane);
  PutU32(out, env.shm_ring_bytes);
  PutBool(out, env.persistent);
  PutU8(out, static_cast<uint8_t>(env.skew_defense.mode));
  PutU32(out, env.skew_defense.bloom_bits);
  PutU32(out, env.skew_defense.sketch_capacity);
  PutF64(out, env.skew_defense.hot_fraction);
  PutU64(out, env.skew_defense.min_hot_count);
  PutF64(out, env.skew_defense.auto_imbalance_threshold);
  PutU64(out, env.skew_defense.max_hot_row_bytes);
}

Status DecodePlanEnvelope(WireReader* reader, PlanEnvelope* env) {
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&env->protocol_version));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&env->worker_id));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&env->num_workers));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&env->batch_size));
  MJOIN_RETURN_IF_ERROR(ReadBool(reader, &env->materialize_result));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&env->max_queued_batches));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&env->memory_budget_bytes));
  MJOIN_RETURN_IF_ERROR(ReadBool(reader, &env->collect_metrics));
  MJOIN_RETURN_IF_ERROR(ReadBool(reader, &env->record_trace));
  MJOIN_RETURN_IF_ERROR(reader->ReadI64(&env->trace_origin_ns));
  MJOIN_RETURN_IF_ERROR(reader->ReadString(&env->fault_scenario));
  MJOIN_RETURN_IF_ERROR(reader->ReadString(&env->plan_text));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&env->attempt));
  MJOIN_RETURN_IF_ERROR(ReadBool(reader, &env->use_shm_data_plane));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&env->shm_ring_bytes));
  MJOIN_RETURN_IF_ERROR(ReadBool(reader, &env->persistent));
  uint8_t mode;
  MJOIN_RETURN_IF_ERROR(reader->ReadU8(&mode));
  if (mode > static_cast<uint8_t>(SkewDefenseMode::kAuto)) {
    return Status::InvalidArgument(
        StrCat("unknown skew defense mode code ", mode));
  }
  env->skew_defense.mode = static_cast<SkewDefenseMode>(mode);
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&env->skew_defense.bloom_bits));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&env->skew_defense.sketch_capacity));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&env->skew_defense.hot_fraction));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&env->skew_defense.min_hot_count));
  MJOIN_RETURN_IF_ERROR(
      reader->ReadF64(&env->skew_defense.auto_imbalance_threshold));
  uint64_t max_hot_row_bytes;
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&max_hot_row_bytes));
  env->skew_defense.max_hot_row_bytes =
      static_cast<size_t>(max_hot_row_bytes);
  return Status::OK();
}

void EncodeHello(const HelloMsg& msg, std::vector<std::byte>* out) {
  PutU32(out, msg.protocol_version);
  PutU64(out, msg.plan_hash);
  PutU64(out, msg.ring_directory_hash);
}

Status DecodeHello(WireReader* reader, HelloMsg* msg) {
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&msg->protocol_version));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->plan_hash));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->ring_directory_hash));
  return Status::OK();
}

void EncodeHeartbeat(const HeartbeatMsg& msg, std::vector<std::byte>* out) {
  size_t base = out->size();
  PutU32(out, msg.seq);
  PutU32(out, Crc32(out->data() + base, 4));
}

Status DecodeHeartbeat(WireReader* reader, HeartbeatMsg* msg) {
  const std::byte* seq_bytes = reader->cursor();
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&msg->seq));
  uint32_t crc = 0;
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&crc));
  if (Crc32(seq_bytes, 4) != crc) {
    return Status::InvalidArgument("heartbeat checksum mismatch");
  }
  return Status::OK();
}

void EncodeRouteHeader(const RouteHeader& route, std::vector<std::byte>* out) {
  PutI32(out, route.consumer_op);
  PutU32(out, route.dest_index);
  PutU8(out, route.port);
}

Status DecodeRouteHeader(WireReader* reader, RouteHeader* route) {
  MJOIN_RETURN_IF_ERROR(reader->ReadI32(&route->consumer_op));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&route->dest_index));
  MJOIN_RETURN_IF_ERROR(reader->ReadU8(&route->port));
  if (route->port > 1) {
    return Status::InvalidArgument(
        StrCat("route header names input port ", route->port));
  }
  return Status::OK();
}

void EncodeFragmentHeader(const FragmentHeader& header,
                          std::vector<std::byte>* out) {
  PutI32(out, header.op);
  PutU32(out, header.instance);
}

Status DecodeFragmentHeader(WireReader* reader, FragmentHeader* header) {
  MJOIN_RETURN_IF_ERROR(reader->ReadI32(&header->op));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&header->instance));
  return Status::OK();
}

void EncodeMilestone(const MilestoneMsg& msg, std::vector<std::byte>* out) {
  PutI32(out, msg.op);
  PutU32(out, msg.instance);
  PutU8(out, static_cast<uint8_t>(msg.milestone));
}

Status DecodeMilestone(WireReader* reader, MilestoneMsg* msg) {
  MJOIN_RETURN_IF_ERROR(reader->ReadI32(&msg->op));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&msg->instance));
  uint8_t raw;
  MJOIN_RETURN_IF_ERROR(reader->ReadU8(&raw));
  if (raw > static_cast<uint8_t>(Milestone::kBuildDone)) {
    return Status::InvalidArgument(StrCat("unknown milestone code ", raw));
  }
  msg->milestone = static_cast<Milestone>(raw);
  return Status::OK();
}

void EncodeSummary(const SummaryMsg& msg, std::vector<std::byte>* out) {
  PutU64(out, msg.cardinality);
  PutU64(out, msg.checksum);
}

Status DecodeSummary(WireReader* reader, SummaryMsg* msg) {
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->cardinality));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->checksum));
  return Status::OK();
}

void EncodeOpStats(const OpStatsMsg& msg, std::vector<std::byte>* out) {
  PutI32(out, msg.op);
  PutU32(out, msg.instances);
  const OpMetrics& m = msg.metrics;
  for (int port = 0; port < 2; ++port) {
    PutU64(out, m.rows_in[port]);
    PutU64(out, m.batches_in[port]);
  }
  PutU64(out, m.rows_out);
  PutF64(out, m.build_seconds);
  PutF64(out, m.probe_seconds);
  PutF64(out, m.pipeline_seconds);
  PutF64(out, m.scan_seconds);
  PutF64(out, m.emit_seconds);
  PutF64(out, m.other_seconds);
  PutU64(out, m.hash_table_rows);
  PutU64(out, m.hash_collisions);
  PutU64(out, m.peak_memory_bytes);
  PutU64(out, m.skew_hot_keys);
  PutU64(out, m.skew_replicated_rows);
  PutU64(out, m.skew_repartitioned_rows);
  PutU64(out, m.skew_bloom_filtered_rows);
  PutF64(out, m.skew_bloom_build_seconds);
  PutF64(out, m.skew_bloom_fp_rate);
  const std::vector<double>& samples = m.batch_seconds.values();
  PutU32(out, static_cast<uint32_t>(samples.size()));
  for (double sample : samples) PutF64(out, sample);
}

Status DecodeOpStats(WireReader* reader, OpStatsMsg* msg) {
  MJOIN_RETURN_IF_ERROR(reader->ReadI32(&msg->op));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&msg->instances));
  OpMetrics& m = msg->metrics;
  for (int port = 0; port < 2; ++port) {
    MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.rows_in[port]));
    MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.batches_in[port]));
  }
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.rows_out));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&m.build_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&m.probe_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&m.pipeline_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&m.scan_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&m.emit_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&m.other_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.hash_table_rows));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.hash_collisions));
  uint64_t peak;
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&peak));
  m.peak_memory_bytes = static_cast<size_t>(peak);
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.skew_hot_keys));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.skew_replicated_rows));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.skew_repartitioned_rows));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&m.skew_bloom_filtered_rows));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&m.skew_bloom_build_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&m.skew_bloom_fp_rate));
  uint32_t num_samples;
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&num_samples));
  if (static_cast<size_t>(num_samples) * 8 > reader->remaining()) {
    return Status::OutOfRange(
        StrCat("op stats claim ", num_samples, " latency samples but only ",
               reader->remaining(), " bytes remain"));
  }
  for (uint32_t i = 0; i < num_samples; ++i) {
    double sample;
    MJOIN_RETURN_IF_ERROR(reader->ReadF64(&sample));
    m.batch_seconds.Add(sample);
  }
  return Status::OK();
}

namespace {

/// Raw length-prefixed byte blobs (candidate rows, Bloom bits). The
/// u32 length is bounds-checked against the payload before any copy, so a
/// corrupted count cannot drive a huge allocation past the frame.
void PutBlob(std::vector<std::byte>* out, const std::byte* data,
             size_t size) {
  PutU32(out, static_cast<uint32_t>(size));
  out->insert(out->end(), data, data + size);
}

Status ReadBlob(WireReader* reader, std::vector<std::byte>* blob,
                const char* what) {
  uint32_t size;
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&size));
  if (size > reader->remaining()) {
    return Status::OutOfRange(StrCat(what, " claims ", size,
                                     " bytes but only ", reader->remaining(),
                                     " remain"));
  }
  const std::byte* data;
  MJOIN_RETURN_IF_ERROR(reader->ReadBytes(size, &data));
  blob->assign(data, data + size);
  return Status::OK();
}

void PutBloom(std::vector<std::byte>* out, const BloomFilter& bloom) {
  const std::vector<uint8_t>& bytes = bloom.bytes();
  PutBlob(out, reinterpret_cast<const std::byte*>(bytes.data()),
          bytes.size());
}

Status ReadBloom(WireReader* reader, BloomFilter* bloom) {
  std::vector<std::byte> blob;
  MJOIN_RETURN_IF_ERROR(ReadBlob(reader, &blob, "bloom filter"));
  const size_t size = blob.size();
  if (size != 0 && (size < 8 || (size & (size - 1)) != 0)) {
    return Status::InvalidArgument(
        StrCat("bloom filter payload of ", size, " bytes is not a power of",
               " two"));
  }
  std::vector<uint8_t> bytes(size);
  if (size != 0) std::memcpy(bytes.data(), blob.data(), size);
  *bloom = BloomFilter::FromBytes(std::move(bytes));
  return Status::OK();
}

}  // namespace

void EncodeSkewReport(const SkewJoinReport& report,
                      std::vector<std::byte>* out) {
  PutI32(out, report.op);
  PutU32(out, report.instance);
  PutU64(out, report.build_rows);
  PutU32(out, report.tuple_size);
  PutU32(out, static_cast<uint32_t>(report.candidates.size()));
  for (const SkewCandidate& candidate : report.candidates) {
    PutI32(out, candidate.key);
    PutU64(out, candidate.count);
    PutBool(out, candidate.rows_included);
    PutBlob(out, candidate.rows.data(), candidate.rows.size());
  }
  PutBloom(out, report.bloom);
}

Status DecodeSkewReport(WireReader* reader, SkewJoinReport* report) {
  MJOIN_RETURN_IF_ERROR(reader->ReadI32(&report->op));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&report->instance));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&report->build_rows));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&report->tuple_size));
  uint32_t num_candidates;
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&num_candidates));
  constexpr size_t kCandidateMinBytes = 4 + 8 + 1 + 4;
  if (static_cast<size_t>(num_candidates) * kCandidateMinBytes >
      reader->remaining()) {
    return Status::OutOfRange(
        StrCat("skew report claims ", num_candidates,
               " candidates but only ", reader->remaining(),
               " bytes remain"));
  }
  report->candidates.clear();
  report->candidates.reserve(num_candidates);
  for (uint32_t i = 0; i < num_candidates; ++i) {
    SkewCandidate candidate;
    MJOIN_RETURN_IF_ERROR(reader->ReadI32(&candidate.key));
    MJOIN_RETURN_IF_ERROR(reader->ReadU64(&candidate.count));
    MJOIN_RETURN_IF_ERROR(ReadBool(reader, &candidate.rows_included));
    MJOIN_RETURN_IF_ERROR(
        ReadBlob(reader, &candidate.rows, "skew candidate rows"));
    if (report->tuple_size != 0 &&
        candidate.rows.size() % report->tuple_size != 0) {
      return Status::InvalidArgument(
          StrCat("skew candidate carries ", candidate.rows.size(),
                 " row bytes, not a multiple of tuple size ",
                 report->tuple_size));
    }
    report->candidates.push_back(std::move(candidate));
  }
  return ReadBloom(reader, &report->bloom);
}

void EncodeSkewDirective(const SkewDirective& directive,
                         std::vector<std::byte>* out) {
  PutI32(out, directive.op);
  PutBool(out, directive.repartition);
  PutU32(out, static_cast<uint32_t>(directive.hot_keys.size()));
  for (int32_t key : directive.hot_keys) PutI32(out, key);
  PutU32(out, directive.tuple_size);
  PutBlob(out, directive.hot_rows.data(), directive.hot_rows.size());
  PutBloom(out, directive.bloom);
  PutU64(out, directive.total_build_rows);
  PutF64(out, directive.imbalance);
}

Status DecodeSkewDirective(WireReader* reader, SkewDirective* directive) {
  MJOIN_RETURN_IF_ERROR(reader->ReadI32(&directive->op));
  MJOIN_RETURN_IF_ERROR(ReadBool(reader, &directive->repartition));
  uint32_t num_keys;
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&num_keys));
  if (static_cast<size_t>(num_keys) * 4 > reader->remaining()) {
    return Status::OutOfRange(
        StrCat("skew directive claims ", num_keys, " hot keys but only ",
               reader->remaining(), " bytes remain"));
  }
  directive->hot_keys.clear();
  directive->hot_keys.reserve(num_keys);
  for (uint32_t i = 0; i < num_keys; ++i) {
    int32_t key;
    MJOIN_RETURN_IF_ERROR(reader->ReadI32(&key));
    directive->hot_keys.push_back(key);
  }
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&directive->tuple_size));
  MJOIN_RETURN_IF_ERROR(
      ReadBlob(reader, &directive->hot_rows, "skew directive rows"));
  if (directive->tuple_size != 0 &&
      directive->hot_rows.size() % directive->tuple_size != 0) {
    return Status::InvalidArgument(
        StrCat("skew directive carries ", directive->hot_rows.size(),
               " row bytes, not a multiple of tuple size ",
               directive->tuple_size));
  }
  MJOIN_RETURN_IF_ERROR(ReadBloom(reader, &directive->bloom));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&directive->total_build_rows));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&directive->imbalance));
  return Status::OK();
}

void EncodeWorkerRunStats(const WorkerRunStats& stats,
                          std::vector<std::byte>* out) {
  PutU64(out, stats.data_frames_sent);
  PutU64(out, stats.local_deliveries);
  PutU64(out, stats.batches_processed);
  PutU64(out, stats.batches_dropped);
  PutU64(out, stats.batches_duplicated);
  PutU64(out, stats.pump_stalls);
  PutU64(out, stats.buffers_allocated);
  PutU64(out, stats.buffers_reused);
  PutU64(out, stats.faults_injected);
  PutU64(out, stats.peak_memory_bytes);
  PutF64(out, stats.serialize_seconds);
  PutF64(out, stats.deserialize_seconds);
  PutU64(out, stats.shm_records_sent);
  PutU64(out, stats.shm_records_received);
  PutU64(out, stats.shm_bytes_sent);
  PutU64(out, stats.shm_bytes_received);
  PutU64(out, stats.ring_full_stalls);
}

Status DecodeWorkerRunStats(WireReader* reader, WorkerRunStats* stats) {
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->data_frames_sent));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->local_deliveries));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->batches_processed));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->batches_dropped));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->batches_duplicated));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->pump_stalls));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->buffers_allocated));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->buffers_reused));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->faults_injected));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->peak_memory_bytes));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&stats->serialize_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&stats->deserialize_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->shm_records_sent));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->shm_records_received));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->shm_bytes_sent));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->shm_bytes_received));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&stats->ring_full_stalls));
  return Status::OK();
}

void EncodeTraceEvents(const std::vector<WireTraceEvent>& events,
                       std::vector<std::byte>* out) {
  PutU32(out, static_cast<uint32_t>(events.size()));
  for (const WireTraceEvent& ev : events) {
    PutU32(out, ev.node);
    PutI64(out, ev.start_ns);
    PutI64(out, ev.end_ns);
    PutU8(out, static_cast<uint8_t>(ev.type));
    PutI32(out, ev.op_id);
  }
}

Status DecodeTraceEvents(WireReader* reader,
                         std::vector<WireTraceEvent>* events) {
  uint32_t count;
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&count));
  constexpr size_t kEventWireBytes = 4 + 8 + 8 + 1 + 4;
  if (static_cast<size_t>(count) * kEventWireBytes > reader->remaining()) {
    return Status::OutOfRange(
        StrCat("trace payload claims ", count, " events but only ",
               reader->remaining(), " bytes remain"));
  }
  events->reserve(events->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    WireTraceEvent ev;
    MJOIN_RETURN_IF_ERROR(reader->ReadU32(&ev.node));
    MJOIN_RETURN_IF_ERROR(reader->ReadI64(&ev.start_ns));
    MJOIN_RETURN_IF_ERROR(reader->ReadI64(&ev.end_ns));
    uint8_t raw;
    MJOIN_RETURN_IF_ERROR(reader->ReadU8(&raw));
    if (raw > static_cast<uint8_t>(ThreadWorkType::kOther)) {
      return Status::InvalidArgument(StrCat("unknown work type code ", raw));
    }
    ev.type = static_cast<ThreadWorkType>(raw);
    MJOIN_RETURN_IF_ERROR(reader->ReadI32(&ev.op_id));
    events->push_back(ev);
  }
  return Status::OK();
}

void EncodeStatusPayload(const Status& status, std::vector<std::byte>* out) {
  PutI32(out, static_cast<int32_t>(status.code()));
  PutString(out, status.message());
}

Status DecodeStatusPayload(WireReader* reader, Status* status) {
  int32_t code;
  std::string message;
  MJOIN_RETURN_IF_ERROR(reader->ReadI32(&code));
  MJOIN_RETURN_IF_ERROR(reader->ReadString(&message));
  if (code < 0 || code > static_cast<int32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument(StrCat("unknown status code ", code));
  }
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

uint64_t FnvHash64(const std::string& text) {
  uint64_t hash = 0xCBF2'9CE4'8422'2325ull;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x0000'0100'0000'01B3ull;
  }
  return hash;
}

std::vector<ShmRingSpec> ComputeRingDirectory(const ParallelPlan& plan,
                                              uint32_t num_workers) {
  std::vector<ShmRingSpec> specs;
  std::unordered_set<uint64_t> seen;
  auto add = [&specs, &seen](uint32_t from, uint32_t to) {
    if (from == to) return;
    if (seen.insert((uint64_t{from} << 32) | to).second) {
      specs.push_back(ShmRingSpec{from, to});
    }
  };
  // Relay rings first: fragments flow coordinator -> worker, materialized
  // result rows flow worker -> coordinator.
  const uint32_t coordinator = num_workers;
  for (uint32_t w = 0; w < num_workers; ++w) {
    add(coordinator, w);
    add(w, coordinator);
  }
  // Pair rings, in plan order: one directed ring per worker pair that any
  // producer -> consumer edge can put a batch on. Hash-split edges fan out
  // every producer instance to every consumer instance; colocated edges
  // pair instances index-to-index (usually the same worker, so usually no
  // ring at all).
  for (const XraOp& o : plan.ops) {
    if (o.consumer < 0 || o.store_result >= 0) continue;
    const XraOp& consumer = plan.ops[static_cast<size_t>(o.consumer)];
    const XraInput& input = consumer.inputs[o.consumer_port];
    if (input.routing == Routing::kHashSplit) {
      for (uint32_t p : o.processors) {
        for (uint32_t c : consumer.processors) {
          add(WorkerOfProcessor(p, num_workers, plan.num_processors),
              WorkerOfProcessor(c, num_workers, plan.num_processors));
        }
      }
    } else {
      const size_t n =
          std::min(o.processors.size(), consumer.processors.size());
      for (size_t i = 0; i < n; ++i) {
        add(WorkerOfProcessor(o.processors[i], num_workers,
                              plan.num_processors),
            WorkerOfProcessor(consumer.processors[i], num_workers,
                              plan.num_processors));
      }
    }
  }
  return specs;
}

}  // namespace mjoin
