#ifndef MJOIN_ENGINE_THREAD_EXECUTOR_H_
#define MJOIN_ENGINE_THREAD_EXECUTOR_H_

#include <optional>

#include "common/statusor.h"
#include "engine/database.h"
#include "engine/result.h"
#include "xra/plan.h"

namespace mjoin {

/// Knobs for one threaded execution.
struct ThreadExecOptions {
  /// Tuples per batch posted between operation processes.
  uint32_t batch_size = 256;
  /// Keep the materialized final result.
  bool materialize_result = false;
};

/// Outcome of one threaded query execution.
struct ThreadQueryResult {
  double wall_seconds = 0;
  ResultSummary result;
  std::optional<Relation> materialized;
};

/// Executes the same parallel plans as SimExecutor, but for real: each
/// simulated processor becomes an OS thread running a message loop, tuple
/// streams become queues between threads, and time is wall-clock. This is
/// the "multicore substitutes the cluster" backend: it demonstrates that
/// the strategies' plans are genuine parallel programs, and it is the
/// engine a downstream user would run. (On a machine with fewer cores than
/// plan.num_processors the threads are time-sliced by the OS; correctness
/// is unaffected.)
class ThreadExecutor {
 public:
  /// `database` must outlive the executor.
  explicit ThreadExecutor(const Database* database) : database_(database) {}

  StatusOr<ThreadQueryResult> Execute(const ParallelPlan& plan,
                                      const ThreadExecOptions& options) const;

 private:
  const Database* database_;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_THREAD_EXECUTOR_H_
