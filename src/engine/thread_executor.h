#ifndef MJOIN_ENGINE_THREAD_EXECUTOR_H_
#define MJOIN_ENGINE_THREAD_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "common/sync.h"
#include "engine/database.h"
#include "engine/result.h"
#include "engine/thread_trace.h"
#include "exec/operator.h"
#include "skew/defense.h"
#include "xra/plan.h"

namespace mjoin {

class BatchPool;
class FaultInjector;
class MetricsRegistry;

/// Knobs for one threaded execution.
struct ThreadExecOptions {
  /// Tuples per batch posted between operation processes. Must be
  /// positive; Execute() rejects 0 with InvalidArgument.
  uint32_t batch_size = 256;
  /// Keep the materialized final result.
  bool materialize_result = false;

  /// Backpressure: maximum data batches queued at one worker node before
  /// producers on *other* nodes block (0 = unbounded, the legacy
  /// behaviour). Bounds memory growth when a fast producer floods a slow
  /// consumer in a pipelining (FP) plan.
  size_t max_queued_batches = 0;
  /// How long a producer waits on a full queue before enqueueing anyway.
  /// The escape hatch keeps pathological cross-node cycles live; each use
  /// is counted in ThreadExecStats::queue_overflows.
  std::chrono::milliseconds queue_block_timeout{250};

  /// Per-query memory budget in bytes for operator state (hash tables,
  /// run buffers, stored results). 0 = unlimited; usage is still tracked.
  /// Exceeding the budget aborts with Status::ResourceExhausted.
  size_t memory_budget_bytes = 0;

  /// Wall-clock deadline measured from Execute() start; expiry aborts the
  /// query with Status::DeadlineExceeded. Must be positive when set;
  /// Execute() rejects zero or negative deadlines with InvalidArgument
  /// (use `cancellation` for an immediately-abandoned query).
  std::optional<std::chrono::milliseconds> deadline;

  /// Cooperative cancellation: keep a copy of this token and Cancel() it
  /// from any thread; the query aborts with Status::Cancelled at the next
  /// batch boundary.
  CancellationToken cancellation;

  /// Test-only chaos hooks; must outlive the execution. See
  /// engine/fault_injector.h.
  FaultInjector* fault_injector = nullptr;

  /// Observability. `collect_metrics` gathers per-operation counters,
  /// phase timings, and batch latencies into ThreadExecStats::per_op;
  /// `record_trace` additionally records every worker busy interval into
  /// ThreadQueryResult::trace (renderable as the paper's utilization
  /// diagram or exportable as Chrome trace JSON). Both paths time each
  /// operator callback; with both off no clock is read per batch.
  bool collect_metrics = true;
  bool record_trace = false;
  /// Character width of ThreadQueryResult::utilization_diagram.
  uint32_t trace_width = 72;
  /// When non-null, run-level counters ("thread.batches_sent", ...) and
  /// the batch-latency histogram are published here after the run; must
  /// outlive the execution.
  MetricsRegistry* metrics_registry = nullptr;

  /// Skew defense (hot-key repartitioning + Bloom predicate transfer)
  /// over the plan's defendable joins; off by default. Never changes
  /// results, only row placement and wire volume.
  SkewDefenseOptions skew_defense;
};

/// Merged runtime metrics of one plan operation (all its instances), with
/// enough plan identity to print without the plan at hand.
struct ThreadOpStats {
  int op_id = -1;
  std::string name;         // the plan's human-readable label
  std::string kind;         // XraOpKindName of the op
  char trace_label = '?';   // fill character in utilization diagrams
  uint32_t instances = 0;
  OpMetrics metrics;
};

/// Runtime counters of one threaded execution, also populated on failure
/// (via the Execute() out-parameter) so aborted queries are diagnosable.
struct ThreadExecStats {
  /// Data batches posted between worker nodes.
  uint64_t batches_sent = 0;
  /// Data batches consumed by operators.
  uint64_t batches_processed = 0;
  /// Batches suppressed / re-delivered by fault injection.
  uint64_t batches_dropped = 0;
  uint64_t batches_duplicated = 0;
  /// Times a producer outwaited queue_block_timeout on a full queue.
  uint64_t queue_overflows = 0;
  /// Batch-buffer pool traffic during this run: buffers heap-allocated
  /// because a node's freelist was empty vs. acquisitions served by
  /// recycling. Pools persist across Execute() calls on one executor, so
  /// a repeated query starts with warm buffers and in steady state
  /// allocated stays near zero while reused tracks batches sent.
  uint64_t batch_buffers_allocated = 0;
  uint64_t batch_buffers_reused = 0;
  /// Maximum data batches queued at any single worker node.
  size_t peak_queue_depth = 0;
  /// MemoryBudget high-water mark over operator state + stored results.
  size_t peak_memory_bytes = 0;
  /// Per-operation metrics in plan op order; empty unless
  /// ThreadExecOptions::collect_metrics was set. Populated on the abort
  /// path too (partial counts up to the failure).
  std::vector<ThreadOpStats> per_op;
};

/// Outcome of one threaded query execution.
struct ThreadQueryResult {
  double wall_seconds = 0;
  ResultSummary result;
  std::optional<Relation> materialized;
  ThreadExecStats stats;

  /// Mean worker busy fraction over the run (0 unless record_trace).
  double utilization = 0;
  /// ASCII utilization diagram of the run (the paper's Figures 3-7, with
  /// wall-clock microseconds on the x-axis); empty unless record_trace.
  std::string utilization_diagram;
  /// The raw trace for further rendering/export; null unless record_trace.
  std::shared_ptr<const ThreadTraceRecorder> trace;
};

/// Renders stats.per_op as a fixed-width table (mirrors the simulator's
/// RenderOpStats); empty string when per_op is empty.
std::string RenderThreadOpStats(const ThreadExecStats& stats);

/// Executes the same parallel plans as SimExecutor, but for real: each
/// simulated processor becomes an OS thread running a message loop, tuple
/// streams become queues between threads, and time is wall-clock. This is
/// the "multicore substitutes the cluster" backend: it demonstrates that
/// the strategies' plans are genuine parallel programs, and it is the
/// engine a downstream user would run. (On a machine with fewer cores than
/// plan.num_processors the threads are time-sliced by the OS; correctness
/// is unaffected.)
///
/// Resilience: queues between nodes are bounded (max_queued_batches),
/// operator memory is metered against a per-query budget, and executions
/// can be cancelled or deadlined. Every failure path tears the worker
/// threads down cleanly — Execute() never returns with a thread leaked or
/// a queue still referenced.
class ThreadExecutor {
 public:
  /// `database` must outlive the executor.
  explicit ThreadExecutor(const Database* database);
  ~ThreadExecutor();

  /// Runs `plan`. On failure the returned status is the root cause
  /// (ResourceExhausted, Cancelled, DeadlineExceeded, an injected fault,
  /// ...) and `stats_out`, when non-null, receives the partial-progress
  /// counters gathered up to the abort.
  [[nodiscard]] StatusOr<ThreadQueryResult> Execute(const ParallelPlan& plan,
                                      const ThreadExecOptions& options,
                                      ThreadExecStats* stats_out = nullptr)
      const;

 private:
  const Database* database_;

  // Batch-buffer pools, one per worker node, lazily grown to the widest
  // plan this executor has run and kept warm across executions: the
  // freelists survive, so a repeated query allocates (almost) no batch
  // buffers. BatchPool is internally thread-safe; the mutex only guards
  // the vector's growth. Pools outlive every run they serve.
  mutable Mutex pools_mutex_;
  mutable std::vector<std::unique_ptr<BatchPool>> pools_
      MJOIN_GUARDED_BY(pools_mutex_);
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_THREAD_EXECUTOR_H_
