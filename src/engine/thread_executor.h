#ifndef MJOIN_ENGINE_THREAD_EXECUTOR_H_
#define MJOIN_ENGINE_THREAD_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <optional>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "engine/database.h"
#include "engine/result.h"
#include "xra/plan.h"

namespace mjoin {

class FaultInjector;

/// Knobs for one threaded execution.
struct ThreadExecOptions {
  /// Tuples per batch posted between operation processes.
  uint32_t batch_size = 256;
  /// Keep the materialized final result.
  bool materialize_result = false;

  /// Backpressure: maximum data batches queued at one worker node before
  /// producers on *other* nodes block (0 = unbounded, the legacy
  /// behaviour). Bounds memory growth when a fast producer floods a slow
  /// consumer in a pipelining (FP) plan.
  size_t max_queued_batches = 0;
  /// How long a producer waits on a full queue before enqueueing anyway.
  /// The escape hatch keeps pathological cross-node cycles live; each use
  /// is counted in ThreadExecStats::queue_overflows.
  std::chrono::milliseconds queue_block_timeout{250};

  /// Per-query memory budget in bytes for operator state (hash tables,
  /// run buffers, stored results). 0 = unlimited; usage is still tracked.
  /// Exceeding the budget aborts with Status::ResourceExhausted.
  size_t memory_budget_bytes = 0;

  /// Wall-clock deadline measured from Execute() start; expiry aborts the
  /// query with Status::DeadlineExceeded.
  std::optional<std::chrono::milliseconds> deadline;

  /// Cooperative cancellation: keep a copy of this token and Cancel() it
  /// from any thread; the query aborts with Status::Cancelled at the next
  /// batch boundary.
  CancellationToken cancellation;

  /// Test-only chaos hooks; must outlive the execution. See
  /// engine/fault_injector.h.
  FaultInjector* fault_injector = nullptr;
};

/// Runtime counters of one threaded execution, also populated on failure
/// (via the Execute() out-parameter) so aborted queries are diagnosable.
struct ThreadExecStats {
  /// Data batches posted between worker nodes.
  uint64_t batches_sent = 0;
  /// Data batches consumed by operators.
  uint64_t batches_processed = 0;
  /// Batches suppressed / re-delivered by fault injection.
  uint64_t batches_dropped = 0;
  uint64_t batches_duplicated = 0;
  /// Times a producer outwaited queue_block_timeout on a full queue.
  uint64_t queue_overflows = 0;
  /// Maximum data batches queued at any single worker node.
  size_t peak_queue_depth = 0;
  /// MemoryBudget high-water mark over operator state + stored results.
  size_t peak_memory_bytes = 0;
};

/// Outcome of one threaded query execution.
struct ThreadQueryResult {
  double wall_seconds = 0;
  ResultSummary result;
  std::optional<Relation> materialized;
  ThreadExecStats stats;
};

/// Executes the same parallel plans as SimExecutor, but for real: each
/// simulated processor becomes an OS thread running a message loop, tuple
/// streams become queues between threads, and time is wall-clock. This is
/// the "multicore substitutes the cluster" backend: it demonstrates that
/// the strategies' plans are genuine parallel programs, and it is the
/// engine a downstream user would run. (On a machine with fewer cores than
/// plan.num_processors the threads are time-sliced by the OS; correctness
/// is unaffected.)
///
/// Resilience: queues between nodes are bounded (max_queued_batches),
/// operator memory is metered against a per-query budget, and executions
/// can be cancelled or deadlined. Every failure path tears the worker
/// threads down cleanly — Execute() never returns with a thread leaked or
/// a queue still referenced.
class ThreadExecutor {
 public:
  /// `database` must outlive the executor.
  explicit ThreadExecutor(const Database* database) : database_(database) {}

  /// Runs `plan`. On failure the returned status is the root cause
  /// (ResourceExhausted, Cancelled, DeadlineExceeded, an injected fault,
  /// ...) and `stats_out`, when non-null, receives the partial-progress
  /// counters gathered up to the abort.
  StatusOr<ThreadQueryResult> Execute(const ParallelPlan& plan,
                                      const ThreadExecOptions& options,
                                      ThreadExecStats* stats_out = nullptr)
      const;

 private:
  const Database* database_;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_THREAD_EXECUTOR_H_
