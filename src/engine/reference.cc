#include "engine/reference.h"

#include <vector>

#include "exec/hash_table.h"
#include "exec/join_row.h"

namespace mjoin {

StatusOr<Relation> ExecuteReference(const JoinQuery& query,
                                    const Database& database) {
  MJOIN_RETURN_IF_ERROR(query.tree.Validate());
  MJOIN_ASSIGN_OR_RETURN(QueryAnalysis analysis, AnalyzeQuery(query));

  const JoinTree& tree = query.tree;
  std::vector<Relation> results(tree.num_nodes());

  for (int id : tree.PostOrder()) {
    const JoinTreeNode& node = tree.node(id);
    if (node.is_leaf()) {
      MJOIN_ASSIGN_OR_RETURN(const Relation* base,
                             database.Get(node.relation));
      results[static_cast<size_t>(id)] = base->Clone();
      continue;
    }
    const JoinSpec& spec = analysis.node_spec[static_cast<size_t>(id)];
    const Relation& left = results[static_cast<size_t>(node.left)];
    const Relation& right = results[static_cast<size_t>(node.right)];

    JoinHashTable table(spec.left_schema, spec.left_key);
    for (size_t i = 0; i < left.num_tuples(); ++i) {
      table.Insert(left.tuple(i).data());
    }
    Relation out(*spec.output_schema);
    std::vector<std::byte> row(spec.output_schema->tuple_size());
    for (size_t i = 0; i < right.num_tuples(); ++i) {
      TupleRef probe = right.tuple(i);
      table.Probe(probe.GetInt32(spec.right_key), [&](const TupleRef& build) {
        AssembleJoinRow(spec, build, probe, row.data());
        out.AppendRow(row.data());
      });
    }
    // Free the operands; only this node's result is needed upward.
    results[static_cast<size_t>(node.left)] = Relation();
    results[static_cast<size_t>(node.right)] = Relation();
    results[static_cast<size_t>(id)] = std::move(out);
  }
  return std::move(results[static_cast<size_t>(tree.root())]);
}

StatusOr<ResultSummary> ReferenceSummary(const JoinQuery& query,
                                         const Database& database) {
  MJOIN_ASSIGN_OR_RETURN(Relation result, ExecuteReference(query, database));
  return SummarizeRelation(result);
}

}  // namespace mjoin
