#include "engine/mjoin_engine.h"

#include "engine/reference.h"
#include "xra/text.h"

namespace mjoin {

StatusOr<EngineQueryOutcome> MultiJoinEngine::ExecuteQuery(
    const JoinQuery& query, const EngineQueryOptions& options) {
  TotalCostModel cost_model;
  MJOIN_ASSIGN_OR_RETURN(
      ParallelPlan plan,
      MakeStrategy(options.strategy)
          ->Parallelize(query, options.processors, cost_model));

  EngineQueryOutcome outcome;
  outcome.plan_text = SerializePlan(plan);

  if (options.backend == Backend::kSimulated) {
    SimExecutor executor(&database_);
    SimExecOptions sim_options;
    sim_options.costs = options.costs;
    MJOIN_ASSIGN_OR_RETURN(SimQueryResult run,
                           executor.Execute(plan, sim_options));
    outcome.result = run.result;
    outcome.seconds = run.response_seconds;
    if (options.analyze) outcome.analyze_report = RenderOpStats(plan, run);
  } else if (options.backend == Backend::kThreaded) {
    ThreadExecutor executor(&database_);
    MJOIN_ASSIGN_OR_RETURN(ThreadQueryResult run,
                           executor.Execute(plan, ThreadExecOptions()));
    outcome.result = run.result;
    outcome.seconds = run.wall_seconds;
  } else {
    ProcessExecutor executor(&database_);
    MJOIN_ASSIGN_OR_RETURN(ProcessQueryResult run,
                           executor.Execute(plan, ProcessExecOptions()));
    outcome.result = run.exec.result;
    outcome.seconds = run.exec.wall_seconds;
  }

  if (options.verify) {
    MJOIN_ASSIGN_OR_RETURN(ResultSummary reference,
                           ReferenceSummary(query, database_));
    if (!(reference == outcome.result)) {
      return Status::Internal(
          "parallel execution disagrees with the reference executor");
    }
    outcome.verified = true;
  }
  return outcome;
}

StatusOr<EngineQueryOutcome> MultiJoinEngine::ExecuteGraph(
    const GeneralQuerySpec& spec, const EngineQueryOptions& options) {
  MJOIN_ASSIGN_OR_RETURN(
      JoinTree tree,
      OptimizeJoinOrder(spec.ToJoinGraph(), TotalCostModel(),
                        options.optimizer));
  MJOIN_ASSIGN_OR_RETURN(JoinQuery query, spec.BindTree(tree));
  return ExecuteQuery(query, options);
}

}  // namespace mjoin
