#ifndef MJOIN_ENGINE_EXPERIMENT_H_
#define MJOIN_ENGINE_EXPERIMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/cost_model.h"
#include "plan/shapes.h"
#include "strategy/strategy.h"

namespace mjoin {

/// One measured point of a Figure 9-13 style experiment.
struct ExperimentPoint {
  StrategyKind strategy = StrategyKind::kSP;
  uint32_t processors = 0;
  /// Response time; absent when the strategy cannot run at this processor
  /// count (e.g. FP with fewer processors than joins).
  std::optional<double> seconds;
  Ticks ticks = 0;
  uint64_t processes = 0;
  uint64_t streams = 0;
  Ticks startup_ticks = 0;
  Ticks handshake_ticks = 0;
  size_t join_memory_bytes = 0;
};

/// Configuration of one figure: a query shape at one problem size, swept
/// over processor counts for all four strategies.
struct ExperimentConfig {
  QueryShape shape = QueryShape::kLeftLinear;
  int num_relations = 10;
  uint32_t cardinality = 5000;
  std::vector<uint32_t> processors;  // e.g. {20,30,...,80}
  std::vector<StrategyKind> strategies{kAllStrategies,
                                       kAllStrategies + 4};
  CostParams costs;
  JoinCostCoefficients coefficients;
  uint64_t seed = 1995;
  /// Check every run's result against the reference executor.
  bool verify = true;
};

struct ExperimentResult {
  ExperimentConfig config;
  std::vector<ExperimentPoint> points;

  /// The point with minimal response time (as in Figure 14), if any.
  const ExperimentPoint* Best() const;

  /// Renders the paper-style series: one row per processor count, one
  /// column per strategy, response times in seconds.
  std::string ToTable() const;

  /// Plot-ready CSV: "strategy,processors,seconds,processes,streams" (one
  /// row per measured point; unplaceable cells are skipped).
  std::string ToCsv() const;
};

/// Runs the full sweep for one figure panel. The database is generated
/// once from config.seed; every (strategy, P) cell is one simulated
/// execution. Fails on the first simulation error; strategies that cannot
/// be placed at a given P produce an empty cell instead.
[[nodiscard]] StatusOr<ExperimentResult> RunShapeExperiment(
    const ExperimentConfig& config);

/// Runs the two panels of one paper figure (5K and 40K) and returns the
/// formatted output, ready to print.
struct FigureOutput {
  std::string text;
  ExperimentResult small;  // 5K panel
  ExperimentResult large;  // 40K panel
};
[[nodiscard]] StatusOr<FigureOutput> RunPaperFigure(QueryShape shape,
                                      const CostParams& costs,
                                      uint32_t small_cardinality,
                                      uint32_t large_cardinality,
                                      bool verify);

/// The paper's processor sweeps: 20..80 for the 5K experiment, 30..80 for
/// the 40K experiment (the 40K query did not fit on fewer than 30 nodes).
std::vector<uint32_t> SmallExperimentProcessors();
std::vector<uint32_t> LargeExperimentProcessors();

}  // namespace mjoin

#endif  // MJOIN_ENGINE_EXPERIMENT_H_
