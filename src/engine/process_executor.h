#ifndef MJOIN_ENGINE_PROCESS_EXECUTOR_H_
#define MJOIN_ENGINE_PROCESS_EXECUTOR_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>

#include "engine/thread_executor.h"

namespace mjoin {

/// Knobs of one process-backed execution. The shared execution knobs
/// (batch size, backpressure bound, budget, deadline, cancellation, fault
/// injector, observability) are the thread backend's, reinterpreted for a
/// process fleet:
///
///   - max_queued_batches becomes the coordinator's credit window per
///     worker: at most this many routed data frames are un-acknowledged at
///     one worker (0 = unbounded);
///   - memory_budget_bytes applies *per worker process* — a shared-nothing
///     node meters its own memory, so the query-wide ceiling is the value
///     times the number of workers;
///   - fault_injector's scenario is shipped to every worker in the
///     handshake and fires at the same FaultPoint hooks as in the thread
///     backend (worker-side); injected-fault counts come back in the run
///     stats, not in the coordinator-side injector object;
///   - deadline and cancellation are enforced by the coordinator: expiry
///     kills the worker fleet (a worker stuck inside an operator callback
///     cannot poll a token across a process boundary).
struct ProcessExecOptions {
  ThreadExecOptions exec;
  /// Worker processes to fork; 0 = one per plan processor. Clamped to
  /// [1, plan.num_processors]. Processors are block-mapped onto workers,
  /// which keeps colocated producer/consumer pairs process-local.
  uint32_t num_workers = 0;
  /// Test hook: observes every forked worker (worker id, pid) right after
  /// the fork, before any query work. Lets fault tests target a live
  /// worker with a real signal.
  std::function<void(uint32_t worker, pid_t pid)> worker_observer;
};

/// Wire-level counters of one process-backed execution, all measured at
/// the coordinator or reported by workers in their kNetStats frames.
struct ProcessNetStats {
  uint32_t num_workers = 0;
  /// Coordinator-side socket traffic (both directions, all workers).
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  /// Worker->worker data frames relayed by the coordinator.
  uint64_t data_frames_routed = 0;
  /// Frames that had to wait in a per-destination hold queue because the
  /// destination's credit window was exhausted.
  uint64_t credit_stalls = 0;
  /// Peak depth of any single hold queue.
  size_t peak_held_frames = 0;
  /// Batches delivered entirely inside one worker (never serialized).
  uint64_t local_deliveries = 0;
  /// Times a worker deferred pumping its sources because its outbox was
  /// over the watermark.
  uint64_t pump_stalls = 0;
  /// Faults actually fired by the per-worker injectors (summed; the
  /// coordinator-side FaultInjector object never fires in this backend).
  uint64_t faults_injected = 0;
  /// Worker-side wire codec time (summed over workers).
  double serialize_seconds = 0;
  double deserialize_seconds = 0;
};

/// Outcome of one process-backed execution: the thread backend's result
/// shape (so metrics tables, utilization diagrams, and Chrome traces
/// render unchanged) plus the wire-level counters.
struct ProcessQueryResult {
  ThreadQueryResult exec;
  ProcessNetStats net;
};

/// Renders the net counters as a small fixed-width table.
std::string RenderProcessNetStats(const ProcessNetStats& net);

/// Executes parallel plans on a fleet of worker *processes* — the
/// shared-nothing backend. Where the thread backend substitutes one thread
/// per simulated processor, this backend forks one single-threaded worker
/// process per group of processors and exchanges tuple batches as
/// wire-format frames over Unix-domain socketpairs, routed through the
/// coordinator (a star topology, like PRISMA/DB's communication
/// processor). Nothing is shared post-fork: workers receive the plan as
/// textual XRA, re-hydrate their operators from it, and hold only their
/// own fragments.
///
/// Failure model: a worker that dies mid-query (crash, OOM kill, kill -9)
/// is detected by its socket closing; the query aborts with
/// StatusCode::kUnavailable, the remaining fleet is killed, and every
/// child is reaped — Execute() never leaks a process or a descriptor.
class ProcessExecutor {
 public:
  /// `database` must outlive the executor.
  explicit ProcessExecutor(const Database* database);

  /// Runs `plan` on a freshly forked worker fleet. On failure the status
  /// is the root cause (kUnavailable for a dead worker, the worker's own
  /// status for worker-side errors, Cancelled/DeadlineExceeded from the
  /// coordinator) and the out-parameters, when non-null, receive the
  /// partial counters known to the coordinator at the abort.
  [[nodiscard]] StatusOr<ProcessQueryResult> Execute(const ParallelPlan& plan,
                                       const ProcessExecOptions& options,
                                       ThreadExecStats* stats_out = nullptr,
                                       ProcessNetStats* net_out = nullptr)
      const;

 private:
  const Database* database_;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_PROCESS_EXECUTOR_H_
