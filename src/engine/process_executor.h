#ifndef MJOIN_ENGINE_PROCESS_EXECUTOR_H_
#define MJOIN_ENGINE_PROCESS_EXECUTOR_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/thread_executor.h"

namespace mjoin {

class NetFaultInjector;

/// Knobs of one process-backed execution. The shared execution knobs
/// (batch size, backpressure bound, budget, deadline, cancellation, fault
/// injector, observability) are the thread backend's, reinterpreted for a
/// process fleet:
///
///   - max_queued_batches becomes the coordinator's credit window per
///     worker: at most this many routed data frames are un-acknowledged at
///     one worker (0 = unbounded);
///   - memory_budget_bytes applies *per worker process* — a shared-nothing
///     node meters its own memory, so the query-wide ceiling is the value
///     times the number of workers;
///   - fault_injector's scenario is shipped to every worker in the
///     handshake and fires at the same FaultPoint hooks as in the thread
///     backend (worker-side); injected-fault counts come back in the run
///     stats, not in the coordinator-side injector object;
///   - deadline and cancellation are enforced by the coordinator: expiry
///     kills the worker fleet (a worker stuck inside an operator callback
///     cannot poll a token across a process boundary).
struct ProcessExecOptions {
  ThreadExecOptions exec;
  /// Worker processes to fork; 0 = one per plan processor. Clamped to
  /// [1, plan.num_processors]. Processors are block-mapped onto workers,
  /// which keeps colocated producer/consumer pairs process-local.
  uint32_t num_workers = 0;
  /// Test hook: observes every forked worker (worker id, pid) right after
  /// the fork, before any query work. Lets fault tests target a live
  /// worker with a real signal. Called once per fork, on every attempt.
  std::function<void(uint32_t worker, pid_t pid)> worker_observer;
  /// Automatic retries after a retryable failure (IsRetryableFailure — an
  /// environmental fault such as a crashed worker or corrupt wire, not a
  /// deterministic error that would only recur). Each retry reaps the old
  /// fleet, sleeps an exponential backoff, forks a fresh fleet, and
  /// re-ships the plan. 0 = fail on first error (the historical behavior).
  uint32_t max_retries = 0;
  /// First-retry backoff; doubles per retry up to retry_backoff_cap. The
  /// sleep honors the deadline and the cancellation token.
  std::chrono::milliseconds retry_backoff{50};
  std::chrono::milliseconds retry_backoff_cap{2000};
  /// When the retry budget is exhausted on a retryable failure, run the
  /// query on the in-process thread backend instead of failing — graceful
  /// degradation for environments whose process fleet is unusable.
  bool degrade_to_thread = false;
  /// Coordinator -> worker kPing cadence. Pongs refresh per-worker
  /// liveness; so does any other traffic from the worker.
  std::chrono::milliseconds heartbeat_interval{500};
  /// A worker silent for longer than this is declared hung: the watchdog
  /// SIGKILLs it and the query aborts kUnavailable (retryable). 0 = no
  /// watchdog. Must comfortably exceed heartbeat_interval plus the longest
  /// legitimate silent stretch (a big build side, a saturated outbox).
  std::chrono::milliseconds liveness_timeout{0};
  /// Network-level chaos (tests only): installed on one worker's channel
  /// at spawn time. Caller-owned; must outlive Execute(). Its fire budget
  /// spans retries, so a one-shot fault breaks one attempt and lets the
  /// next run clean.
  NetFaultInjector* net_fault_injector = nullptr;
  /// Move data batches, EOS markers, fragments, and result rows over
  /// mmap'd SPSC rings shared by the whole fleet (control frames stay on
  /// the socket). Workers exchange data pairwise — the coordinator stops
  /// relaying batches entirely. Off = the pre-ring all-socket data path.
  bool use_shm_data_plane = true;
  /// Data bytes per ring; power of two >= 4096. Rings are torn down and
  /// re-mapped per attempt, so a retried fleet starts from zeroed rings.
  uint32_t shm_ring_bytes = 1u << 18;
};

/// Why a worker was lost, as diagnosed by the coordinator.
enum class WorkerFailureClass {
  /// The process died (signal or nonzero exit) or its socket closed.
  kCrashed = 0,
  /// Alive but silent past liveness_timeout; killed by the watchdog.
  kHung = 1,
  /// Sent bytes that failed frame, checksum, or payload validation.
  kCorruptWire = 2,
  kOther = 3,
};

std::string WorkerFailureClassName(WorkerFailureClass failure);

/// One diagnosed worker loss (an execution can accumulate several across
/// attempts).
struct WorkerFailureRecord {
  uint32_t attempt = 0;
  uint32_t worker = 0;
  pid_t pid = -1;
  WorkerFailureClass failure = WorkerFailureClass::kOther;
  /// Human-readable root cause ("killed by signal 9", "checksum
  /// mismatch", ...).
  std::string detail;
};

/// Supervision and recovery counters of one Execute() call, accumulated
/// across every attempt.
struct ProcessExecStats {
  /// Fleets spawned (1 = no retry happened).
  uint32_t attempts = 1;
  /// Retries actually performed (attempts - 1 unless degradation cut in).
  uint32_t retries = 0;
  /// The result came from the thread backend after the retry budget was
  /// exhausted (degrade_to_thread).
  bool degraded_to_thread = false;
  uint64_t pings_sent = 0;
  uint64_t pongs_received = 0;
  uint32_t hung_workers_killed = 0;
  /// Every diagnosed worker loss, in order.
  std::vector<WorkerFailureRecord> failures;
};

/// Wire-level counters of one process-backed execution, all measured at
/// the coordinator or reported by workers in their kNetStats frames.
struct ProcessNetStats {
  uint32_t num_workers = 0;
  /// Coordinator-side socket traffic (both directions, all workers).
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  /// Worker->worker data frames relayed by the coordinator.
  uint64_t data_frames_routed = 0;
  /// Frames that had to wait in a per-destination hold queue because the
  /// destination's credit window was exhausted.
  uint64_t credit_stalls = 0;
  /// Peak depth of any single hold queue.
  size_t peak_held_frames = 0;
  /// Batches delivered entirely inside one worker (never serialized).
  uint64_t local_deliveries = 0;
  /// Times a worker deferred pumping its sources because its outbox was
  /// over the watermark.
  uint64_t pump_stalls = 0;
  /// Faults actually fired by the per-worker injectors (summed; the
  /// coordinator-side FaultInjector object never fires in this backend).
  uint64_t faults_injected = 0;
  /// Worker-side wire codec time (summed over workers). On the shm plane
  /// this is the ring memcpy time — the codec degenerates to the copy.
  double serialize_seconds = 0;
  double deserialize_seconds = 0;
  /// Shm data plane: rings mapped for the attempt that produced the
  /// result (0 = plane off), records/bytes over all rings (workers'
  /// counters plus the coordinator's own fragment/result traffic), and
  /// records that found their ring full and were parked in a backlog.
  uint32_t shm_rings = 0;
  uint64_t shm_records_sent = 0;
  uint64_t shm_records_received = 0;
  uint64_t shm_bytes_sent = 0;
  uint64_t shm_bytes_received = 0;
  uint64_t ring_full_stalls = 0;
};

/// Outcome of one process-backed execution: the thread backend's result
/// shape (so metrics tables, utilization diagrams, and Chrome traces
/// render unchanged) plus the wire-level counters.
struct ProcessQueryResult {
  ThreadQueryResult exec;
  ProcessNetStats net;
  ProcessExecStats proc;
};

/// Renders the net counters as a small fixed-width table.
std::string RenderProcessNetStats(const ProcessNetStats& net);

/// Executes parallel plans on a fleet of worker *processes* — the
/// shared-nothing backend. Where the thread backend substitutes one thread
/// per simulated processor, this backend forks one single-threaded worker
/// process per group of processors and exchanges tuple batches as
/// wire-format frames over Unix-domain socketpairs, routed through the
/// coordinator (a star topology, like PRISMA/DB's communication
/// processor). Nothing is shared post-fork: workers receive the plan as
/// textual XRA, re-hydrate their operators from it, and hold only their
/// own fragments.
///
/// Failure model: a worker that dies mid-query (crash, OOM kill, kill -9)
/// is detected by its socket closing; a worker that wedges silently is
/// detected by the heartbeat watchdog (liveness_timeout) and SIGKILLed; a
/// worker that sends damaged bytes is caught by the per-frame checksum.
/// All three are environmental (StatusCode::kUnavailable) and — when
/// max_retries allows — recovered from by reaping the fleet and re-running
/// the query on a fresh one. Deterministic failures (a worker's own typed
/// error, a plan mismatch) are never retried. In every case the fleet is
/// killed and every child reaped — Execute() never leaks a process or a
/// descriptor, and never hangs.
class ProcessExecutor {
 public:
  /// `database` must outlive the executor.
  explicit ProcessExecutor(const Database* database);

  /// Runs `plan` on a freshly forked worker fleet, retrying per
  /// options.max_retries. On failure the status is the root cause
  /// (kUnavailable for a dead/hung/corrupt worker after the retry budget,
  /// the worker's own status for worker-side errors, Cancelled/
  /// DeadlineExceeded from the coordinator) and the out-parameters, when
  /// non-null, receive the counters known at the abort — proc_out always
  /// carries the attempt/retry history and per-worker failure diagnoses.
  [[nodiscard]] StatusOr<ProcessQueryResult> Execute(const ParallelPlan& plan,
                                       const ProcessExecOptions& options,
                                       ThreadExecStats* stats_out = nullptr,
                                       ProcessNetStats* net_out = nullptr,
                                       ProcessExecStats* proc_out = nullptr)
      const;

 private:
  const Database* database_;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_PROCESS_EXECUTOR_H_
