#ifndef MJOIN_ENGINE_MJOIN_ENGINE_H_
#define MJOIN_ENGINE_MJOIN_ENGINE_H_

#include <optional>
#include <string>

#include "common/statusor.h"
#include "engine/database.h"
#include "engine/result.h"
#include "engine/process_executor.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "opt/general_query.h"
#include "opt/optimizer.h"
#include "strategy/strategy.h"

namespace mjoin {

/// Which executor carries a query.
enum class Backend {
  /// Deterministic simulated shared-nothing machine (virtual time).
  kSimulated,
  /// Real OS threads (wall-clock time).
  kThreaded,
  /// Forked worker processes over Unix-domain sockets (wall-clock time) —
  /// the shared-nothing backend.
  kProcess,
};

/// One-call query options for MultiJoinEngine.
struct EngineQueryOptions {
  StrategyKind strategy = StrategyKind::kFP;
  uint32_t processors = 16;
  Backend backend = Backend::kSimulated;
  /// Simulated-machine cost model (kSimulated only).
  CostParams costs;
  /// Phase-1 search options (ExecuteGraph only).
  OptimizerOptions optimizer;
  /// Verify the result against the single-threaded reference executor.
  bool verify = true;
  /// Collect the per-op EXPLAIN ANALYZE report (kSimulated only).
  bool analyze = false;
};

/// Outcome of one engine query.
struct EngineQueryOutcome {
  ResultSummary result;
  /// Simulated response seconds (kSimulated) or wall seconds (kThreaded).
  double seconds = 0;
  /// True when verification ran and matched.
  bool verified = false;
  /// The plan that was executed, in textual XRA (replayable via
  /// ParsePlan / mjoin_cli run-plan).
  std::string plan_text;
  /// EXPLAIN ANALYZE table (when requested, kSimulated only).
  std::string analyze_report;
};

/// The batteries-included facade: owns a database and runs multi-join
/// queries end-to-end — phase-1 optimization (for query graphs), phase-2
/// parallelization with any of the paper's four strategies, execution on
/// either backend, and reference verification. The lower-level pieces
/// (Strategy, SimExecutor, ...) remain available for fine control; this
/// class is the five-line path.
class MultiJoinEngine {
 public:
  explicit MultiJoinEngine(Database database)
      : database_(std::move(database)) {}

  const Database& database() const { return database_; }

  /// Executes a fully-specified query (tree + semantics), e.g. from
  /// MakeWisconsinChainQuery or GeneralQuerySpec::BindTree.
  [[nodiscard]] StatusOr<EngineQueryOutcome> ExecuteQuery(
      const JoinQuery& query,
                                            const EngineQueryOptions& options);

  /// Runs both phases on a general query spec: optimizes the join order
  /// over spec.ToJoinGraph(), binds semantics, then executes.
  [[nodiscard]] StatusOr<EngineQueryOutcome> ExecuteGraph(
      const GeneralQuerySpec& spec,
                                            const EngineQueryOptions& options);

 private:
  Database database_;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_MJOIN_ENGINE_H_
