#include "engine/process_executor.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/controller.h"
#include "engine/database.h"
#include "engine/fault_injector.h"
#include "engine/process_protocol.h"
#include "engine/process_worker.h"
#include "engine/result.h"
#include "engine/warm_fleet.h"
#include "net/channel.h"
#include "net/net_fault.h"
#include "net/shm_ring.h"
#include "skew/defense.h"
#include "storage/partitioner.h"
#include "xra/text.h"

namespace mjoin {

namespace {

/// One member of a warm fleet, as it persists between queries: the child
/// pid and the coordinator end of its socketpair. The channel accumulates
/// its byte/frame counters across queries; each attaching Coordinator
/// snapshots a baseline to report per-query deltas.
struct FleetMember {
  pid_t pid = -1;
  std::unique_ptr<FrameChannel> chan;
  bool reaped = false;
};

/// A warm fleet's coordinator-side state (WarmProcessFleet::Impl wraps
/// one). Attempts borrow it: a per-attempt Coordinator attaches to the
/// members instead of forking its own, and never kills or reaps them on
/// its own — except diagnosing an already-dead member, which marks it
/// reaped here.
struct FleetState {
  std::vector<FleetMember> members;
  /// Fleet-lifetime shm arena (nullptr = socket data plane). Each query
  /// lays its own ring directory over it.
  std::unique_ptr<ShmArena> arena;
  uint32_t ring_bytes = 0;
  /// A failed run leaves workers in an unknown state (possibly mid-query);
  /// the fleet must be killed and respawned before the next run.
  bool poisoned = false;
};

/// One forked worker as the coordinator sees it. `chan` points at either
/// `owned_chan` (one-shot mode: SpawnFleet forked this worker) or a warm
/// fleet member's channel (borrowed; outlives the Coordinator).
struct WorkerProc {
  pid_t pid = -1;
  FrameChannel* chan = nullptr;
  std::unique_ptr<FrameChannel> owned_chan;
  bool hello_received = false;
  bool bye_received = false;
  /// Worker acked the end-of-query kShutdown with kIdle and parked
  /// (warm fleets only).
  bool idle_received = false;
  /// The socket is dead (EOF or error); no further I/O on this worker.
  bool closed = false;
  bool reaped = false;
  /// Channel counters at attach time; warm channels accumulate across
  /// queries, so per-query stats subtract this baseline.
  ChannelStats base;
  /// Routed data frames sent but not yet credited back (credit window).
  size_t in_flight = 0;
  /// Routed frames (data and EOS, in arrival order) waiting for credit.
  std::deque<Frame> held;
};

/// The coordinator of one process-backed execution: forks the fleet, ships
/// plan + fragments, relays routed batches under credit flow control,
/// drives the trigger-group scheduler off milestone frames, and collects
/// the finish-phase reports. Single-threaded: one poll loop over all
/// worker sockets.
class Coordinator {
 public:
  /// `attempt` is the 0-based retry attempt (shipped to workers in the
  /// plan envelope); `deadline` is the absolute deadline shared by every
  /// attempt of one Execute(); `proc` (nullable) accumulates supervision
  /// counters and failure diagnoses across attempts.
  /// `fleet` (nullable) switches the Coordinator into warm mode: it
  /// attaches to the fleet's pre-forked members instead of forking its
  /// own, ships the plan with persistent = true, and ends the query with
  /// an idle handshake instead of worker exits.
  Coordinator(const ParallelPlan& plan, const Database& db,
              const ProcessExecOptions& options, uint32_t num_workers,
              uint32_t attempt,
              std::optional<std::chrono::steady_clock::time_point> deadline,
              ProcessExecStats* proc, FleetState* fleet = nullptr)
      : plan_(plan),
        db_(db),
        options_(options),
        exec_(options.exec),
        num_workers_(num_workers),
        attempt_(attempt),
        proc_(proc),
        fleet_(fleet),
        registry_(plan),
        controller_(&plan) {
    if (deadline.has_value()) {
      has_deadline_ = true;
      deadline_point_ = *deadline;
    }
  }

  /// Safety net for early-error returns: no child outlives the run. A
  /// warm-mode Coordinator only borrows its workers, so it propagates what
  /// it learned (a member it reaped, a dead socket) back to the fleet and
  /// leaves the killing to WarmProcessFleet.
  ~Coordinator() {
    if (fleet_ != nullptr) {
      for (uint32_t w = 0; w < workers_.size() && w < fleet_->members.size();
           ++w) {
        if (workers_[w].reaped) fleet_->members[w].reaped = true;
        if (workers_[w].closed) fleet_->poisoned = true;
      }
      return;
    }
    for (WorkerProc& w : workers_) {
      if (w.pid > 0 && !w.reaped) {
        kill(w.pid, SIGKILL);
        int ignored;
        while (waitpid(w.pid, &ignored, 0) < 0 && errno == EINTR) {
        }
        w.reaped = true;
      }
    }
  }

  StatusOr<ProcessQueryResult> Run(ThreadExecStats* stats_out,
                                   ProcessNetStats* net_out);

 private:
  enum class State { kRunning, kFinishing, kDone };

  const XraOp& op(int id) const { return plan_.ops[static_cast<size_t>(id)]; }
  uint32_t WorkerOf(uint32_t processor) const {
    return WorkerOfProcessor(processor, num_workers_, plan_.num_processors);
  }
  int64_t NowSinceEpochNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               // lint:allow-clock trace origin shipped in the handshake
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  Status SpawnFleet();
  /// Warm mode: binds workers_ to the fleet's members and (when the fleet
  /// carries an arena) formats this query's ring directory over it. Only
  /// called with every member parked idle — the previous query's idle
  /// handshake (or the fleet's spawn) guarantees no worker is touching the
  /// arena while the rings are reformatted.
  Status AttachFleet();
  /// Warm mode end-of-query: kShutdown to every worker (ending its query,
  /// not its process), then polls until each acks with kIdle and is parked.
  /// Any failure here means the fleet's state is unknown — the caller must
  /// poison it — but the query's own result stands.
  Status AwaitFleetIdle();
  Status ShipPlans();
  Status ShipFragments();
  /// Publishes one fragment chunk onto the relay ring toward `dest`,
  /// waiting (and keeping the poll loop turning) while the ring is full.
  Status PushFragmentRecord(uint32_t dest, const ShmFragmentHeader& hdr,
                            const std::byte* rows, size_t row_bytes);
  void DispatchGroups(const std::vector<int>& groups);

  /// One poll-loop turn: flush, poll, read every ready socket, drain the
  /// relay rings, then handle the read frames. Rings drain *before* frames
  /// are handled: a worker publishes its records and only then sends the
  /// control frame that refers to them (kBye after result rows), so the
  /// frame handler can rely on the records being in. Never throws work at
  /// a closed worker.
  void PollOnce(int timeout_ms);
  /// Consumes every published record on the coordinator's inbound relay
  /// rings (result rows during the finish phase).
  void DrainCoordRings();
  void HandleFrame(uint32_t w, Frame frame);
  void RouteFrame(uint32_t from, Frame frame);
  void SendRouted(WorkerProc* dst, Frame frame);
  void DrainHeld(WorkerProc* dst);
  void HandleWorkerGone(uint32_t w, const Status& status);
  /// Cancellation/deadline promotion; false once the run should stop.
  bool CheckRuntime();
  void Abort(Status status);
  /// One supervision turn: refresh per-worker liveness off received-byte
  /// counts, broadcast kPing on the heartbeat cadence, and SIGKILL any
  /// worker silent past liveness_timeout (diagnosed as hung).
  void SuperviseFleet();
  /// Appends a diagnosed worker loss to the accumulated exec stats.
  void RecordFailure(uint32_t w, WorkerFailureClass failure,
                     std::string detail);
  /// A worker's bytes failed validation: record the diagnosis and abort
  /// kUnavailable (environmental, so the retry loop may recover).
  void AbortCorruptWire(uint32_t w, const std::string& detail);

  /// Graceful teardown: kShutdown + flush + reap; falls back to SIGKILL
  /// for any worker that does not drain or exit in time.
  void ShutdownFleet();
  /// Abort teardown: SIGKILL and reap everything, close every channel.
  void KillFleet();
  void ReapWorker(WorkerProc* w, bool force_kill);

  ThreadExecStats GatherStats() const;
  void GatherNetStats();

  const ParallelPlan& plan_;
  const Database& db_;
  const ProcessExecOptions& options_;
  const ThreadExecOptions& exec_;
  const uint32_t num_workers_;
  const uint32_t attempt_;
  ProcessExecStats* const proc_;
  /// Warm fleet this attempt borrows its workers from (nullptr = one-shot
  /// mode: fork a fleet, let it exit with the query).
  FleetState* const fleet_;

  SchemaRegistry registry_;
  QueryController controller_;
  std::vector<WorkerProc> workers_;
  /// Created pre-fork so the fleet inherits the mapping; destroyed with
  /// this per-attempt Coordinator, so a retried fleet maps fresh rings.
  std::unique_ptr<ShmDataPlane> plane_;
  std::string plan_text_;
  uint64_t plan_hash_ = 0;
  int64_t trace_origin_ns_ = 0;

  State state_ = State::kRunning;
  uint32_t byes_received_ = 0;
  bool aborted_ = false;
  Status abort_status_;

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_point_;

  // Supervision state (lazily initialized on the first supervision turn).
  bool supervision_started_ = false;
  uint32_t ping_seq_ = 0;
  std::chrono::steady_clock::time_point next_ping_;
  /// Last time each worker was heard from (any inbound bytes, not only
  /// pongs — a worker streaming data is evidently alive).
  std::vector<std::chrono::steady_clock::time_point> last_heard_;
  std::vector<uint64_t> bytes_seen_;

  /// One defended join's in-flight report collection. `seen` rejects a
  /// duplicate instance report before it can trip the merger's internal
  /// invariants (the coordinator must never crash on worker bytes).
  struct SkewExchange {
    SkewExchange(int op, uint32_t num_instances,
                 const SkewDefenseOptions& options)
        : merger(op, num_instances, options), seen(num_instances, false) {}
    SkewReportMerger merger;
    std::vector<bool> seen;
  };
  std::unordered_map<int, std::unique_ptr<SkewExchange>> skew_exchanges_;
  /// Bloom size every report must carry (filters are OR-merged, so a
  /// divergent size is corrupt wire, not a tuning choice).
  uint32_t skew_bloom_bits_ = 0;

  // Finish-phase accumulators.
  SummaryMsg summary_;
  std::optional<Relation> materialized_;
  std::shared_ptr<const Schema> result_schema_;
  std::vector<ThreadOpStats> per_op_;
  std::vector<WorkerRunStats> worker_stats_;
  ProcessNetStats net_;
  std::shared_ptr<ThreadTraceRecorder> trace_;
};

Status Coordinator::SpawnFleet() {
  workers_.resize(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      return Status::Internal(
          StrCat("socketpair failed: ", strerror(errno)));
    }
    pid_t pid = fork();
    if (pid < 0) {
      close(sv[0]);
      close(sv[1]);
      return Status::Internal(StrCat("fork failed: ", strerror(errno)));
    }
    if (pid == 0) {
      // Child: drop every descriptor that belongs to the coordinator or a
      // sibling — a worker holding a sibling's socket open would mask that
      // sibling's death from the coordinator. _exit skips atexit handlers
      // and (under ASan) the leak check, both meaningless in a fork child.
      for (uint32_t prev = 0; prev < w; ++prev) {
        close(workers_[prev].chan->fd());
      }
      close(sv[0]);
      // The shm plane (mapping + doorbells) is deliberately inherited; the
      // child never destroys it — _exit skips destructors and the kernel
      // drops its mapping reference.
      _exit(RunProcessWorker(sv[1], plane_.get()));
    }
    close(sv[1]);
    MJOIN_RETURN_IF_ERROR(SetNonBlocking(sv[0]));
    workers_[w].pid = pid;
    workers_[w].owned_chan =
        std::make_unique<FrameChannel>(sv[0], StrCat("worker ", w));
    workers_[w].owned_chan->EnableConformance(LinkRole::kCoordinator);
    workers_[w].chan = workers_[w].owned_chan.get();
    if (options_.net_fault_injector != nullptr &&
        options_.net_fault_injector->scenario().worker == w) {
      // Installing on the fresh channel resets the injector's per-link
      // latches; its fire budget spans attempts, so a one-shot fault
      // breaks this attempt and lets the next one run clean.
      workers_[w].chan->set_fault_injector(options_.net_fault_injector);
    }
    if (options_.worker_observer) options_.worker_observer(w, pid);
  }
  return Status::OK();
}

Status Coordinator::AttachFleet() {
  if (fleet_->poisoned) {
    return Status::Internal("attaching to a poisoned warm fleet");
  }
  if (fleet_->members.size() != num_workers_) {
    return Status::Internal(
        StrCat("warm fleet has ", fleet_->members.size(), " members but the "
               "attempt expects ", num_workers_, " workers"));
  }
  if (fleet_->arena != nullptr && options_.use_shm_data_plane) {
    // Format this query's ring directory over the fleet's arena. Every
    // member is parked idle right now, so nobody else touches the region.
    MJOIN_ASSIGN_OR_RETURN(
        plane_, ShmDataPlane::CreateInArena(
                    fleet_->arena.get(),
                    ComputeRingDirectory(plan_, num_workers_),
                    num_workers_ + 1, fleet_->ring_bytes, /*format=*/true));
  }
  workers_.resize(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    FleetMember& member = fleet_->members[w];
    if (member.pid <= 0 || member.chan == nullptr || member.reaped) {
      return Status::Internal(
          StrCat("warm fleet member ", w, " is not attachable"));
    }
    workers_[w].pid = member.pid;
    workers_[w].chan = member.chan.get();
    workers_[w].base = member.chan->stats();
    if (options_.net_fault_injector != nullptr &&
        options_.net_fault_injector->scenario().worker == w) {
      workers_[w].chan->set_fault_injector(options_.net_fault_injector);
    }
    if (options_.worker_observer) options_.worker_observer(w, member.pid);
  }
  return Status::OK();
}

Status Coordinator::AwaitFleetIdle() {
  for (WorkerProc& w : workers_) {
    if (!w.closed) w.chan->QueueFrame(FrameType::kShutdown, {});
  }
  // lint:allow-clock idle-handshake deadline, end-of-query only
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool all_idle = true;
    for (const WorkerProc& w : workers_) {
      if (w.closed) {
        return Status::Unavailable(
            "a warm worker died during the idle handshake");
      }
      if (!w.idle_received) all_idle = false;
    }
    if (all_idle) return Status::OK();
    if (aborted_) return abort_status_;
    // lint:allow-clock idle-handshake deadline, end-of-query only
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable("warm fleet idle handshake timed out");
    }
    PollOnce(/*timeout_ms=*/20);
  }
}

Status Coordinator::ShipPlans() {
  std::string fault_scenario;
  if (exec_.fault_injector != nullptr) {
    fault_scenario = SerializeFaultScenario(exec_.fault_injector->scenario());
  }
  for (uint32_t w = 0; w < num_workers_; ++w) {
    PlanEnvelope env;
    env.worker_id = w;
    env.num_workers = num_workers_;
    env.batch_size = exec_.batch_size;
    env.materialize_result = exec_.materialize_result;
    env.max_queued_batches = exec_.max_queued_batches;
    env.memory_budget_bytes = exec_.memory_budget_bytes;
    env.collect_metrics = exec_.collect_metrics;
    env.record_trace = exec_.record_trace;
    env.trace_origin_ns = trace_origin_ns_;
    env.fault_scenario = fault_scenario;
    env.plan_text = plan_text_;
    env.attempt = attempt_;
    env.use_shm_data_plane = plane_ != nullptr;
    env.shm_ring_bytes = plane_ != nullptr ? plane_->ring_bytes() : 0;
    env.persistent = fleet_ != nullptr;
    // Shipped in full so the worker derives the same defended-join set
    // and thresholds the coordinator sized its mergers from.
    env.skew_defense = exec_.skew_defense;
    std::vector<std::byte> payload;
    EncodePlanEnvelope(env, &payload);
    workers_[w].chan->QueueFrame(FrameType::kPlan, payload);
  }
  return Status::OK();
}

Status Coordinator::ShipFragments() {
  // Partition every base relation exactly as the thread backend does
  // (hash-partitioned on the consumer's join key when the consumer is a
  // colocated join, round-robin otherwise), then ship each instance's
  // fragment to its hosting worker in bounded chunks. The socket is FIFO,
  // so every fragment chunk precedes the kTrigger that starts its scan.
  for (const XraOp& o : plan_.ops) {
    if (o.kind != XraOpKind::kScan) continue;
    MJOIN_ASSIGN_OR_RETURN(const Relation* base, db_.Get(o.relation));
    auto m = static_cast<uint32_t>(o.processors.size());
    const XraOp& consumer = op(o.consumer);
    std::vector<Relation> fragments;
    if (consumer.inputs[o.consumer_port].routing == Routing::kColocated &&
        consumer.is_join()) {
      size_t key = o.consumer_port == 0 ? consumer.join_spec.left_key
                                        : consumer.join_spec.right_key;
      MJOIN_ASSIGN_OR_RETURN(fragments, HashPartition(*base, key, m));
    } else {
      fragments = RoundRobinPartition(*base, m);
    }
    MJOIN_ASSIGN_OR_RETURN(uint32_t schema_id,
                           registry_.IdOf(*o.output_schema));
    uint32_t tuple_size = o.output_schema->tuple_size();
    // Fragments ride the relay rings when the plane is up (the rows fit a
    // record by construction: max_payload is checked below), the socket
    // otherwise. Per-scan-op choice, like the workers' per-edge one.
    const uint32_t max_payload =
        plane_ != nullptr
            ? plane_->ring_bytes() / 2 - kShmRecordHdrBytes * 2
            : 0;
    const bool use_ring =
        plane_ != nullptr &&
        sizeof(ShmFragmentHeader) + tuple_size <= max_payload;
    const size_t rows_per_frame =
        use_ring
            ? (max_payload - sizeof(ShmFragmentHeader)) /
                  std::max<uint32_t>(1, tuple_size)
            : std::max<size_t>(1,
                               (4u << 20) / std::max<uint32_t>(1, tuple_size));
    for (uint32_t i = 0; i < m; ++i) {
      const Relation& frag = fragments[i];
      if (frag.num_tuples() == 0) continue;  // workers pre-create empties
      const uint32_t dest = WorkerOf(o.processors[i]);
      size_t offset = 0;
      while (offset < frag.num_tuples()) {
        size_t count = std::min(rows_per_frame, frag.num_tuples() - offset);
        if (use_ring) {
          ShmFragmentHeader hdr;
          hdr.op = o.id;
          hdr.instance = i;
          hdr.schema_id = schema_id;
          hdr.tuple_size = tuple_size;
          hdr.num_tuples = static_cast<uint32_t>(count);
          MJOIN_RETURN_IF_ERROR(PushFragmentRecord(
              dest, hdr, frag.raw_data() + offset * tuple_size,
              count * tuple_size));
          if (aborted_) return Status::OK();  // Run() sees aborted_
        } else {
          std::vector<std::byte> payload;
          payload.reserve(8 + BatchWireSize(tuple_size, count));
          EncodeFragmentHeader(FragmentHeader{o.id, i}, &payload);
          AppendRowsWire(schema_id, tuple_size,
                         frag.raw_data() + offset * tuple_size, count,
                         &payload);
          workers_[dest].chan->QueueFrame(FrameType::kFragment, payload);
        }
        offset += count;
      }
    }
  }
  return Status::OK();
}

Status Coordinator::PushFragmentRecord(uint32_t dest,
                                       const ShmFragmentHeader& hdr,
                                       const std::byte* rows,
                                       size_t row_bytes) {
  ShmRing* ring = plane_->RingTo(num_workers_, dest);
  MJOIN_CHECK(ring != nullptr) << "no relay ring toward worker " << dest;
  // A full ring means the worker is behind; keep the poll loop turning
  // (hellos, errors, supervision) instead of buffering unboundedly like
  // the socket path would. Deadline, cancellation, worker death, and the
  // liveness watchdog all break the wait.
  while (!ring->TryPush(ShmRecordType::kFragment, &hdr, sizeof(hdr), rows,
                        row_bytes)) {
    ++net_.ring_full_stalls;
    if (!CheckRuntime()) return Status::OK();
    SuperviseFleet();
    if (aborted_) return Status::OK();
    PollOnce(/*timeout_ms=*/5);
    if (aborted_) return Status::OK();
    if (workers_[dest].closed) return Status::OK();
  }
  ++net_.shm_records_sent;
  net_.shm_bytes_sent += sizeof(hdr) + row_bytes;
  plane_->RingDoorbell(dest);
  return Status::OK();
}

void Coordinator::DispatchGroups(const std::vector<int>& groups) {
  // Every worker receives every trigger and starts only the instances it
  // hosts; broadcasting is simpler than computing the hosting set here and
  // costs five bytes per worker per group.
  for (int g : groups) {
    std::vector<std::byte> payload;
    PutI32(&payload, g);
    for (WorkerProc& w : workers_) {
      if (!w.closed) w.chan->QueueFrame(FrameType::kTrigger, payload);
    }
  }
}

void Coordinator::Abort(Status status) {
  if (!aborted_) {
    aborted_ = true;
    abort_status_ = std::move(status);
  }
}

void Coordinator::RecordFailure(uint32_t w, WorkerFailureClass failure,
                                std::string detail) {
  if (proc_ == nullptr) return;
  WorkerFailureRecord record;
  record.attempt = attempt_;
  record.worker = w;
  record.pid = workers_[w].pid;
  record.failure = failure;
  record.detail = std::move(detail);
  proc_->failures.push_back(std::move(record));
}

void Coordinator::AbortCorruptWire(uint32_t w, const std::string& detail) {
  RecordFailure(w, WorkerFailureClass::kCorruptWire, detail);
  Abort(Status::Unavailable(
      StrCat("corrupt wire from worker ", w, ": ", detail)));
}

void Coordinator::SuperviseFleet() {
  if (options_.heartbeat_interval.count() <= 0 &&
      options_.liveness_timeout.count() <= 0) {
    return;
  }
  // lint:allow-clock supervision turn: one read per poll-loop iteration
  auto now = std::chrono::steady_clock::now();
  if (!supervision_started_) {
    supervision_started_ = true;
    next_ping_ = now + options_.heartbeat_interval;
    last_heard_.assign(num_workers_, now);
    bytes_seen_.assign(num_workers_, 0);
  }
  for (uint32_t w = 0; w < num_workers_; ++w) {
    WorkerProc& worker = workers_[w];
    if (worker.closed) continue;
    uint64_t bytes = worker.chan->stats().bytes_received;
    if (bytes != bytes_seen_[w]) {
      bytes_seen_[w] = bytes;
      last_heard_[w] = now;
    }
  }
  if (options_.heartbeat_interval.count() > 0 && now >= next_ping_) {
    next_ping_ = now + options_.heartbeat_interval;
    HeartbeatMsg ping;
    ping.seq = ping_seq_++;
    std::vector<std::byte> payload;
    EncodeHeartbeat(ping, &payload);
    for (WorkerProc& worker : workers_) {
      if (worker.closed) continue;
      worker.chan->QueueFrame(FrameType::kPing, payload);
      if (proc_ != nullptr) ++proc_->pings_sent;
    }
  }
  if (options_.liveness_timeout.count() <= 0) return;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    WorkerProc& worker = workers_[w];
    if (worker.closed || worker.reaped) continue;
    if (now - last_heard_[w] < options_.liveness_timeout) continue;
    // Hung: the process is alive (its socket is open) but has been silent
    // past the liveness deadline — wedged, swapped to death, or cut off by
    // a stalled link. SIGKILL is the only lever that works on all three;
    // the abort is kUnavailable so the retry loop may recover on a fresh
    // fleet.
    kill(worker.pid, SIGKILL);
    auto silent_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - last_heard_[w])
                         .count();
    RecordFailure(w, WorkerFailureClass::kHung,
                  StrCat("silent for ", silent_ms,
                         " ms, past the liveness timeout of ",
                         options_.liveness_timeout.count(), " ms"));
    if (proc_ != nullptr) ++proc_->hung_workers_killed;
    worker.closed = true;
    worker.chan->Close();
    Abort(Status::Unavailable(
        StrCat("worker ", w, " (pid ", worker.pid,
               ") went silent past the liveness timeout and was killed")));
  }
}

bool Coordinator::CheckRuntime() {
  if (aborted_) return false;
  if (exec_.cancellation.cancelled()) {
    Abort(Status::Cancelled("query cancelled by caller"));
    return false;
  }
  // lint:allow-clock deadline check, one read per poll iteration
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_point_) {
    Abort(Status::DeadlineExceeded("query ran past its deadline"));
    return false;
  }
  return true;
}

void Coordinator::HandleWorkerGone(uint32_t w, const Status& status) {
  WorkerProc& worker = workers_[w];
  if (worker.closed) return;
  // Before diagnosing, drain anything the worker managed to say. A worker
  // that reports a typed kError and exits races its buffered error frame
  // against our next flush hitting EPIPE; the typed error must win, or a
  // deterministic worker fault gets misdiagnosed as a crash and retried.
  if (!aborted_ && state_ != State::kDone) {
    bool ignored = false;
    (void)worker.chan->ReadAvailable(&ignored);
    Frame frame;
    while (!aborted_ && worker.chan->NextFrame(&frame)) {
      HandleFrame(w, std::move(frame));
    }
  }
  worker.closed = true;
  worker.chan->Close();
  if (aborted_ || state_ == State::kDone) return;
  // A socket that dies before the worker said goodbye means the worker is
  // gone mid-query. Reap it now (no zombie) and fold its exit status into
  // the error.
  int wstatus = 0;
  std::string cause;
  WorkerFailureClass failure = WorkerFailureClass::kOther;
  pid_t got;
  // A dying process closes its descriptors before it becomes reapable, so
  // the EOF can race waitpid: a killed worker would read as "closed its
  // socket" instead of a diagnosed crash. Give the zombie a bounded
  // moment to materialize (the window is widest under sanitizers, whose
  // address-space teardown is slow); a worker that is alive with a dead
  // socket still falls through to kOther after the budget.
  for (int spin = 0;; ++spin) {
    while ((got = waitpid(worker.pid, &wstatus, WNOHANG)) < 0 &&
           errno == EINTR) {
    }
    if (got == worker.pid || spin >= 64) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (got == worker.pid) {
    worker.reaped = true;
    failure = WorkerFailureClass::kCrashed;
    if (WIFSIGNALED(wstatus)) {
      cause = StrCat("killed by signal ", WTERMSIG(wstatus));
    } else if (WIFEXITED(wstatus)) {
      cause = StrCat("exited with status ", WEXITSTATUS(wstatus));
    } else {
      cause = "exited abnormally";
    }
  } else if (status.message().rfind("corrupt", 0) == 0) {
    // The channel's framing/checksum errors all start with "corrupt": the
    // process is still alive but its byte stream failed validation.
    failure = WorkerFailureClass::kCorruptWire;
    cause = StrCat("sent corrupt bytes (", status.message(), ")");
  } else {
    cause = StrCat("closed its socket (", status.message(), ")");
  }
  RecordFailure(w, failure, cause);
  Abort(Status::Unavailable(StrCat("worker ", w, " (pid ", worker.pid, ") ",
                                   cause, " before completing the query")));
}

void Coordinator::SendRouted(WorkerProc* dst, Frame frame) {
  if (frame.type == FrameType::kData) ++dst->in_flight;
  dst->chan->QueueFrame(frame.type, frame.payload);
}

void Coordinator::RouteFrame(uint32_t from, Frame frame) {
  WireReader reader(frame.payload);
  RouteHeader route;
  Status decoded = DecodeRouteHeader(&reader, &route);
  if (!decoded.ok() || route.consumer_op < 0 ||
      static_cast<size_t>(route.consumer_op) >= plan_.ops.size() ||
      route.dest_index >= op(route.consumer_op).processors.size()) {
    AbortCorruptWire(
        from, StrCat("unroutable ", FrameTypeName(frame.type), " frame"));
    return;
  }
  WorkerProc& dst =
      workers_[WorkerOf(op(route.consumer_op).processors[route.dest_index])];
  if (dst.closed) return;  // death already aborted the run
  // The credit window bounds un-acknowledged data frames per destination;
  // EOS frames consume no credit but must stay FIFO behind held data, so
  // anything queues behind a non-empty hold queue.
  bool window_full = exec_.max_queued_batches != 0 &&
                     frame.type == FrameType::kData &&
                     dst.in_flight >= exec_.max_queued_batches;
  if (!dst.held.empty() || window_full) {
    if (window_full) ++net_.credit_stalls;
    dst.held.push_back(std::move(frame));
    net_.peak_held_frames = std::max(net_.peak_held_frames, dst.held.size());
    return;
  }
  SendRouted(&dst, std::move(frame));
}

void Coordinator::DrainHeld(WorkerProc* dst) {
  while (!dst->held.empty()) {
    Frame& front = dst->held.front();
    if (front.type == FrameType::kData && exec_.max_queued_batches != 0 &&
        dst->in_flight >= exec_.max_queued_batches) {
      return;
    }
    SendRouted(dst, std::move(front));
    dst->held.pop_front();
  }
}

void Coordinator::HandleFrame(uint32_t w, Frame frame) {
  WorkerProc& worker = workers_[w];
  switch (frame.type) {
    case FrameType::kHello: {
      WireReader reader(frame.payload);
      HelloMsg hello;
      Status decoded = DecodeHello(&reader, &hello);
      if (!decoded.ok()) {
        AbortCorruptWire(w, decoded.message());
        return;
      }
      if (hello.protocol_version != kNetProtocolVersion) {
        Abort(Status::FailedPrecondition(
            StrCat("worker ", w, " speaks protocol version ",
                   hello.protocol_version, ", coordinator speaks ",
                   kNetProtocolVersion)));
        return;
      }
      if (hello.plan_hash != plan_hash_) {
        // The worker re-serialized what it parsed and got different text:
        // the xra format did not round-trip.
        Abort(Status::Internal(
            StrCat("worker ", w,
                   " echoed a mismatched plan hash: the textual plan did "
                   "not survive the serialize/parse round trip")));
        return;
      }
      const uint64_t want_ring_hash =
          plane_ != nullptr ? plane_->directory_hash() : 0;
      if (hello.ring_directory_hash != want_ring_hash) {
        // The worker derived a different ring directory from its parse:
        // had it run, producer and consumer could disagree about which
        // ring carries an edge. Deterministic, so never retried.
        Abort(Status::Internal(
            StrCat("worker ", w,
                   " derived a mismatched shm ring directory from its "
                   "parsed plan")));
        return;
      }
      worker.hello_received = true;
      return;
    }
    case FrameType::kData:
      ++net_.data_frames_routed;
      RouteFrame(w, std::move(frame));
      return;
    case FrameType::kEos:
      RouteFrame(w, std::move(frame));
      return;
    case FrameType::kCredit: {
      WireReader reader(frame.payload);
      uint32_t count = 0;
      Status decoded = reader.ReadU32(&count);
      if (!decoded.ok()) {
        AbortCorruptWire(w, decoded.message());
        return;
      }
      worker.in_flight -= std::min<size_t>(worker.in_flight, count);
      DrainHeld(&worker);
      return;
    }
    case FrameType::kMilestone: {
      WireReader reader(frame.payload);
      MilestoneMsg msg;
      Status decoded = DecodeMilestone(&reader, &msg);
      if (!decoded.ok() || msg.op < 0 ||
          static_cast<size_t>(msg.op) >= plan_.ops.size()) {
        AbortCorruptWire(w, "bad milestone frame");
        return;
      }
      std::vector<int> ready =
          controller_.OnInstanceMilestone(msg.op, msg.instance, msg.milestone);
      if (!ready.empty()) DispatchGroups(ready);
      if (state_ == State::kRunning && controller_.AllOpsComplete()) {
        state_ = State::kFinishing;
        for (WorkerProc& each : workers_) {
          if (!each.closed) each.chan->QueueFrame(FrameType::kFinish, {});
        }
      }
      return;
    }
    case FrameType::kSummary: {
      WireReader reader(frame.payload);
      SummaryMsg msg;
      Status decoded = DecodeSummary(&reader, &msg);
      if (!decoded.ok()) {
        AbortCorruptWire(w, decoded.message());
        return;
      }
      // Cardinality and the row-hash checksum are sums mod 2^64, so the
      // per-worker partial summaries add up to the query's.
      summary_.cardinality += msg.cardinality;
      summary_.checksum += msg.checksum;
      return;
    }
    case FrameType::kResultRows: {
      if (!materialized_.has_value()) {
        AbortCorruptWire(w, "result rows while materialization is off");
        return;
      }
      WireReader reader(frame.payload);
      TupleBatch batch(result_schema_);
      Status decoded = ReadBatchWire(&reader, registry_, &batch);
      if (!decoded.ok()) {
        AbortCorruptWire(w, decoded.message());
        return;
      }
      materialized_->AppendRows(batch.raw_data(), batch.num_tuples());
      return;
    }
    case FrameType::kOpStats: {
      WireReader reader(frame.payload);
      OpStatsMsg msg;
      Status decoded = DecodeOpStats(&reader, &msg);
      if (!decoded.ok() || msg.op < 0 ||
          static_cast<size_t>(msg.op) >= per_op_.size()) {
        AbortCorruptWire(w, "bad op-stats frame");
        return;
      }
      ThreadOpStats& agg = per_op_[static_cast<size_t>(msg.op)];
      agg.instances += msg.instances;
      agg.metrics.MergeFrom(msg.metrics);
      return;
    }
    case FrameType::kNetStats: {
      WireReader reader(frame.payload);
      WorkerRunStats stats;
      Status decoded = DecodeWorkerRunStats(&reader, &stats);
      if (!decoded.ok()) {
        AbortCorruptWire(w, decoded.message());
        return;
      }
      worker_stats_.push_back(stats);
      return;
    }
    case FrameType::kTraceEvents: {
      WireReader reader(frame.payload);
      std::vector<WireTraceEvent> events;
      Status decoded = DecodeTraceEvents(&reader, &events);
      if (!decoded.ok()) {
        AbortCorruptWire(w, decoded.message());
        return;
      }
      if (trace_ != nullptr) {
        for (const WireTraceEvent& e : events) {
          if (e.node < plan_.num_processors) {
            trace_->Record(e.node, e.start_ns, e.end_ns, e.type, e.op_id);
          }
        }
      }
      return;
    }
    case FrameType::kError: {
      WireReader reader(frame.payload);
      Status worker_status = Status::OK();
      Status decoded = DecodeStatusPayload(&reader, &worker_status);
      if (!decoded.ok()) {
        AbortCorruptWire(w, "undecodable error frame");
        return;
      }
      if (IsRetryableFailure(worker_status)) {
        // An environmental failure seen from the worker's side (its half
        // of the wire went bad, the coordinator vanished from its view):
        // diagnose it like a coordinator-side one so the retry history
        // names the worker.
        RecordFailure(w,
                      worker_status.message().rfind("corrupt", 0) == 0
                          ? WorkerFailureClass::kCorruptWire
                          : WorkerFailureClass::kOther,
                      worker_status.message());
      }
      Abort(std::move(worker_status));
      return;
    }
    case FrameType::kPong: {
      WireReader reader(frame.payload);
      HeartbeatMsg pong;
      Status decoded = DecodeHeartbeat(&reader, &pong);
      if (!decoded.ok()) {
        AbortCorruptWire(w, decoded.message());
        return;
      }
      // Liveness itself is refreshed off received-byte counts in
      // SuperviseFleet; the pong only needs to be valid and counted.
      if (proc_ != nullptr) ++proc_->pongs_received;
      return;
    }
    case FrameType::kBye:
      if (!worker.bye_received) {
        worker.bye_received = true;
        if (++byes_received_ == num_workers_ && state_ == State::kFinishing) {
          state_ = State::kDone;
        }
      }
      return;
    case FrameType::kIdle:
      // A persistent worker's ack that it tore down the query's state and
      // parked; only a warm-mode end-of-query handshake expects it.
      if (fleet_ == nullptr) break;
      worker.idle_received = true;
      return;
    case FrameType::kSkewReport: {
      WireReader reader(frame.payload);
      SkewJoinReport report;
      Status decoded = DecodeSkewReport(&reader, &report);
      if (!decoded.ok()) {
        AbortCorruptWire(w, decoded.message());
        return;
      }
      auto it = skew_exchanges_.find(report.op);
      // Everything the merger would CHECK is validated here first: a
      // report for an undefended op, an out-of-range or duplicate
      // instance, or a bloom sized unlike the one the plan shipped is
      // corrupt wire, and corrupt wire aborts instead of crashing.
      if (it == skew_exchanges_.end() ||
          report.instance >= plan_.ops[static_cast<size_t>(report.op)]
                                 .processors.size() ||
          it->second->seen[report.instance] ||
          (report.bloom.built() &&
           report.bloom.num_bits() != skew_bloom_bits_)) {
        AbortCorruptWire(w, "bad skew-report frame");
        return;
      }
      SkewExchange& exchange = *it->second;
      exchange.seen[report.instance] = true;
      exchange.merger.Add(std::move(report));
      if (exchange.merger.complete()) {
        // The last report arrives before the last kBuildDone milestone on
        // the same socket, so this broadcast is queued ahead of every
        // probe trigger — but correctness never depends on that: workers
        // defer the join's build InputDone until the directive lands.
        SkewDirective directive = exchange.merger.Finish();
        std::vector<std::byte> payload;
        EncodeSkewDirective(directive, &payload);
        for (WorkerProc& each : workers_) {
          if (!each.closed) {
            each.chan->QueueFrame(FrameType::kSkewDirective, payload);
          }
        }
      }
      return;
    }
    // Frames the table says never arrive at the coordinator (coordinator-
    // to-worker and serve-layer classes), generated from
    // MJOIN_FRAME_TABLE. The switch stays default:-free so -Wswitch flags
    // any new wire frame that is silently unrouted here.
    MJOIN_FRAME_CASES(NOT_WC)
      break;
  }
  AbortCorruptWire(
      w, StrCat("unexpected ", FrameTypeName(frame.type), " frame"));
}

void Coordinator::PollOnce(int timeout_ms) {
  // Flush first: queued frames (triggers, routed data, finish requests)
  // should hit the sockets before we sleep in poll.
  for (uint32_t w = 0; w < num_workers_; ++w) {
    WorkerProc& worker = workers_[w];
    if (worker.closed) continue;
    Status flushed = worker.chan->Flush();
    if (!flushed.ok()) HandleWorkerGone(w, flushed);
  }
  if (aborted_) return;

  std::vector<struct pollfd> fds;
  std::vector<uint32_t> fd_worker;
  fds.reserve(num_workers_ + 1);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    WorkerProc& worker = workers_[w];
    if (worker.closed) continue;
    struct pollfd pfd;
    pfd.fd = worker.chan->fd();
    pfd.events = static_cast<short>(
        POLLIN | (worker.chan->has_pending_output() ? POLLOUT : 0));
    pfd.revents = 0;
    fds.push_back(pfd);
    fd_worker.push_back(w);
  }
  if (fds.empty()) return;
  if (plane_ != nullptr) {
    // Our doorbell: workers ring it after publishing onto a relay ring.
    struct pollfd pfd;
    pfd.fd = plane_->doorbell(num_workers_);
    pfd.events = POLLIN;
    pfd.revents = 0;
    fds.push_back(pfd);
    fd_worker.push_back(num_workers_);  // sentinel: not a worker socket
  }
  int rc = poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0 && errno != EINTR) {
    Abort(Status::Internal(StrCat("coordinator poll failed: ",
                                  strerror(errno))));
    return;
  }
  if (plane_ != nullptr) plane_->DrainDoorbell(num_workers_);
  if (rc <= 0) {
    // Timed out, but published records need no readable socket to exist.
    DrainCoordRings();
    return;
  }

  // Read every ready socket before handling any frame, and drain the
  // relay rings in between: a control frame referring to ring records
  // (kBye after the worker's result rows) was sent after they were
  // published, so the read-all / drain / handle-all order guarantees the
  // records are in by the time the frame is handled.
  struct ReadyWorker {
    uint32_t w;
    bool peer_closed;
  };
  std::vector<ReadyWorker> ready;
  ready.reserve(fds.size());
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0 || fd_worker[i] == num_workers_) continue;
    uint32_t w = fd_worker[i];
    WorkerProc& worker = workers_[w];
    if (worker.closed) continue;
    bool peer_closed = false;
    Status read = worker.chan->ReadAvailable(&peer_closed);
    if (!read.ok()) {
      HandleWorkerGone(w, read);
      continue;
    }
    ready.push_back(ReadyWorker{w, peer_closed});
  }
  DrainCoordRings();
  for (const ReadyWorker& r : ready) {
    WorkerProc& worker = workers_[r.w];
    if (worker.closed) continue;
    Frame frame;
    while (!aborted_ && worker.chan->NextFrame(&frame)) {
      HandleFrame(r.w, std::move(frame));
    }
    if (r.peer_closed && state_ != State::kDone) {
      HandleWorkerGone(r.w, Status::Unavailable("end of stream"));
    }
  }
}

void Coordinator::DrainCoordRings() {
  if (plane_ == nullptr || aborted_) return;
  for (size_t ring_index : plane_->InboundRings(num_workers_)) {
    ShmRing* ring = plane_->ring(ring_index);
    const uint32_t from = plane_->spec(ring_index).from;
    const uint64_t limit = ring->tail_cursor();
    bool released = false;
    while (!aborted_ && ring->head_cursor() < limit) {
      ShmRecordView rec;
      StatusOr<bool> any = ring->TryRead(&rec);
      if (!any.ok()) {
        AbortCorruptWire(from, any.status().message());
        break;
      }
      if (!*any) break;  // only pads remained below the snapshot
      ++net_.shm_records_received;
      net_.shm_bytes_received += rec.payload_bytes;
      if (rec.type != ShmRecordType::kResultRows) {
        ring->Release();
        AbortCorruptWire(from, StrCat("unexpected shm ",
                                      ShmRecordTypeName(rec.type),
                                      " record on a relay ring"));
        break;
      }
      ShmResultRowsHeader hdr;
      if (rec.payload_bytes < sizeof(hdr)) {
        ring->Release();
        AbortCorruptWire(from, "short shm result-rows header");
        break;
      }
      std::memcpy(&hdr, rec.payload, sizeof(hdr));
      if (!materialized_.has_value()) {
        ring->Release();
        AbortCorruptWire(from, "result rows while materialization is off");
        break;
      }
      if (hdr.schema_id >= registry_.size() ||
          registry_.Get(hdr.schema_id)->tuple_size() != hdr.tuple_size ||
          rec.payload_bytes !=
              sizeof(hdr) + uint64_t{hdr.num_tuples} * hdr.tuple_size) {
        ring->Release();
        AbortCorruptWire(from, "shm result-rows record fails validation");
        break;
      }
      materialized_->AppendRows(rec.payload + sizeof(hdr), hdr.num_tuples);
      ring->Release();
      released = true;
    }
    if (released) plane_->RingDoorbell(from);
  }
}

void Coordinator::ReapWorker(WorkerProc* w, bool force_kill) {
  if (w->pid <= 0 || w->reaped) return;
  if (force_kill) kill(w->pid, SIGKILL);
  int wstatus = 0;
  // Bounded patience for the graceful path: a worker that has not exited
  // within ~5 s of its kShutdown gets the abort treatment. The killed
  // waitpid below is unconditional, so no path leaves a zombie.
  if (!force_kill) {
    for (int spin = 0; spin < 500; ++spin) {
      pid_t got = waitpid(w->pid, &wstatus, WNOHANG);
      if (got < 0 && errno == EINTR) continue;  // interrupted, not reaped
      if (got == w->pid || got < 0) {
        // got < 0 here is ECHILD: someone already collected the child.
        w->reaped = true;
        return;
      }
      struct pollfd none;
      none.fd = -1;
      none.events = 0;
      none.revents = 0;
      poll(&none, 1, 10);  // portable 10 ms sleep
    }
    kill(w->pid, SIGKILL);
  }
  while (waitpid(w->pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
  w->reaped = true;
}

void Coordinator::ShutdownFleet() {
  for (WorkerProc& w : workers_) {
    if (!w.closed) w.chan->QueueFrame(FrameType::kShutdown, {});
  }
  // Drain the shutdown frames (tiny; one flush round normally suffices).
  auto flush_deadline =
      // lint:allow-clock shutdown flush deadline, teardown only
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool pending = false;
    for (uint32_t w = 0; w < num_workers_; ++w) {
      WorkerProc& worker = workers_[w];
      if (worker.closed) continue;
      Status flushed = worker.chan->Flush();
      if (!flushed.ok()) {
        worker.closed = true;
        worker.chan->Close();
        continue;
      }
      if (worker.chan->has_pending_output()) pending = true;
    }
    // lint:allow-clock shutdown flush deadline, teardown only
    if (!pending || std::chrono::steady_clock::now() >= flush_deadline) break;
    struct pollfd none;
    none.fd = -1;
    none.events = 0;
    none.revents = 0;
    poll(&none, 1, 5);
  }
  for (WorkerProc& w : workers_) {
    ReapWorker(&w, /*force_kill=*/false);
    if (!w.closed) {
      w.closed = true;
      w.chan->Close();
    }
  }
}

void Coordinator::KillFleet() {
  for (WorkerProc& w : workers_) {
    ReapWorker(&w, /*force_kill=*/true);
    if (w.chan != nullptr && !w.closed) {
      w.closed = true;
      w.chan->Close();
    }
  }
}

ThreadExecStats Coordinator::GatherStats() const {
  ThreadExecStats stats;
  for (const WorkerRunStats& w : worker_stats_) {
    // A remote send and a local hand-off are both "a batch posted to a
    // consumer" in the thread backend's vocabulary.
    stats.batches_sent += w.data_frames_sent + w.local_deliveries;
    stats.batches_processed += w.batches_processed;
    stats.batches_dropped += w.batches_dropped;
    stats.batches_duplicated += w.batches_duplicated;
    stats.batch_buffers_allocated += w.buffers_allocated;
    stats.batch_buffers_reused += w.buffers_reused;
    stats.peak_memory_bytes += w.peak_memory_bytes;
  }
  stats.peak_queue_depth = net_.peak_held_frames;
  if (exec_.collect_metrics) stats.per_op = per_op_;
  return stats;
}

void Coordinator::GatherNetStats() {
  net_.num_workers = num_workers_;
  for (const WorkerProc& w : workers_) {
    if (w.chan == nullptr) continue;
    // Warm channels accumulate across queries; `base` (zero in one-shot
    // mode) pins the counters to this query.
    const ChannelStats& ch = w.chan->stats();
    net_.bytes_sent += ch.bytes_sent - w.base.bytes_sent;
    net_.bytes_received += ch.bytes_received - w.base.bytes_received;
    net_.frames_sent += ch.frames_sent - w.base.frames_sent;
    net_.frames_received += ch.frames_received - w.base.frames_received;
  }
  for (const WorkerRunStats& w : worker_stats_) {
    net_.local_deliveries += w.local_deliveries;
    net_.pump_stalls += w.pump_stalls;
    net_.faults_injected += w.faults_injected;
    net_.serialize_seconds += w.serialize_seconds;
    net_.deserialize_seconds += w.deserialize_seconds;
    net_.shm_records_sent += w.shm_records_sent;
    net_.shm_records_received += w.shm_records_received;
    net_.shm_bytes_sent += w.shm_bytes_sent;
    net_.shm_bytes_received += w.shm_bytes_received;
    net_.ring_full_stalls += w.ring_full_stalls;
  }
  if (plane_ != nullptr) {
    net_.shm_rings = static_cast<uint32_t>(plane_->num_rings());
  }
}

/// Publishes run counters mirroring the thread backend's names under the
/// "process." prefix, plus the wire-level "net." family.
void PublishProcessMetrics(const ThreadExecStats& stats,
                           const ProcessNetStats& net, double wall_seconds,
                           MetricsRegistry* registry) {
  registry->counter("process.batches_sent")->Add(stats.batches_sent);
  registry->counter("process.batches_processed")
      ->Add(stats.batches_processed);
  registry->counter("process.batches_dropped")->Add(stats.batches_dropped);
  registry->counter("process.batches_duplicated")
      ->Add(stats.batches_duplicated);
  registry->counter("process.batch_buffers_allocated")
      ->Add(stats.batch_buffers_allocated);
  registry->counter("process.batch_buffers_reused")
      ->Add(stats.batch_buffers_reused);
  registry->gauge("process.peak_memory_bytes")
      ->Set(static_cast<int64_t>(stats.peak_memory_bytes));
  registry->histogram("process.wall_seconds")->Observe(wall_seconds);
  Histogram* batch_hist = registry->histogram("process.batch_seconds");
  uint64_t rows_out = 0;
  uint64_t hot_keys = 0;
  uint64_t replicated = 0;
  uint64_t repartitioned = 0;
  uint64_t bloom_filtered = 0;
  double bloom_fp_rate = 0;
  for (const ThreadOpStats& per_op : stats.per_op) {
    for (double sample : per_op.metrics.batch_seconds.values()) {
      batch_hist->Observe(sample);
    }
    rows_out += per_op.metrics.rows_out;
    hot_keys += per_op.metrics.skew_hot_keys;
    replicated += per_op.metrics.skew_replicated_rows;
    repartitioned += per_op.metrics.skew_repartitioned_rows;
    bloom_filtered += per_op.metrics.skew_bloom_filtered_rows;
    bloom_fp_rate =
        std::max(bloom_fp_rate, per_op.metrics.skew_bloom_fp_rate);
  }
  registry->counter("process.rows_emitted")->Add(rows_out);
  registry->counter("skew.hot_keys_detected")->Add(hot_keys);
  registry->counter("skew.replicated_rows")->Add(replicated);
  registry->counter("skew.repartitioned_rows")->Add(repartitioned);
  registry->counter("skew.bloom_filtered_rows")->Add(bloom_filtered);
  registry->histogram("skew.bloom_fp_rate")->Observe(bloom_fp_rate);

  registry->counter("net.bytes_sent")->Add(net.bytes_sent);
  registry->counter("net.bytes_received")->Add(net.bytes_received);
  registry->counter("net.frames_sent")->Add(net.frames_sent);
  registry->counter("net.frames_received")->Add(net.frames_received);
  registry->counter("net.data_frames_routed")->Add(net.data_frames_routed);
  registry->counter("net.credit_stalls")->Add(net.credit_stalls);
  registry->counter("net.local_deliveries")->Add(net.local_deliveries);
  registry->counter("net.pump_stalls")->Add(net.pump_stalls);
  registry->counter("net.faults_injected")->Add(net.faults_injected);
  registry->gauge("net.peak_held_frames")
      ->Set(static_cast<int64_t>(net.peak_held_frames));
  registry->histogram("net.serialize_seconds")->Observe(net.serialize_seconds);
  registry->histogram("net.deserialize_seconds")
      ->Observe(net.deserialize_seconds);
  registry->gauge("net.shm_rings")->Set(static_cast<int64_t>(net.shm_rings));
  registry->counter("net.shm_records_sent")->Add(net.shm_records_sent);
  registry->counter("net.shm_records_received")
      ->Add(net.shm_records_received);
  registry->counter("net.shm_bytes_sent")->Add(net.shm_bytes_sent);
  registry->counter("net.shm_bytes_received")->Add(net.shm_bytes_received);
  registry->counter("net.ring_full_stalls")->Add(net.ring_full_stalls);
}

StatusOr<ProcessQueryResult> Coordinator::Run(ThreadExecStats* stats_out,
                                              ProcessNetStats* net_out) {
  // lint:allow-clock run wall-clock start, once per query
  auto start = std::chrono::steady_clock::now();
  trace_origin_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         start.time_since_epoch())
                         .count();
  // has_deadline_/deadline_point_ come from the constructor: the deadline
  // is absolute across every retry attempt of one Execute().
  if (exec_.record_trace) {
    std::vector<ThreadTraceOpInfo> infos;
    infos.reserve(plan_.ops.size());
    for (const XraOp& o : plan_.ops) {
      infos.push_back(ThreadTraceOpInfo{o.label, o.trace_label});
    }
    trace_ = std::make_shared<ThreadTraceRecorder>(plan_.num_processors,
                                                   std::move(infos));
    trace_->SetOrigin(start);
  }
  if (exec_.collect_metrics) {
    per_op_.reserve(plan_.ops.size());
    for (const XraOp& o : plan_.ops) {
      ThreadOpStats agg;
      agg.op_id = o.id;
      agg.name = o.label;
      agg.kind = XraOpKindName(o.kind);
      agg.trace_label = o.trace_label;
      per_op_.push_back(std::move(agg));
    }
  }
  if (exec_.materialize_result) {
    for (const XraOp& o : plan_.ops) {
      if (o.store_result == plan_.final_result) {
        materialized_.emplace(*o.output_schema);
        result_schema_ = o.output_schema;
      }
    }
  }
  if (exec_.skew_defense.enabled()) {
    skew_bloom_bits_ = BloomFilter(exec_.skew_defense.bloom_bits).num_bits();
    for (int id : DefendedJoinOps(plan_)) {
      auto n = static_cast<uint32_t>(
          plan_.ops[static_cast<size_t>(id)].processors.size());
      skew_exchanges_.emplace(
          id, std::make_unique<SkewExchange>(id, n, exec_.skew_defense));
    }
  }

  plan_text_ = SerializePlan(plan_);
  plan_hash_ = FnvHash64(plan_text_);

  if (fleet_ != nullptr) {
    MJOIN_RETURN_IF_ERROR(AttachFleet());
  } else {
    if (options_.use_shm_data_plane) {
      // Created pre-fork so the fleet inherits the mapping; torn down with
      // this Coordinator, so every retry attempt maps fresh zeroed rings.
      MJOIN_ASSIGN_OR_RETURN(
          plane_,
          ShmDataPlane::Create(ComputeRingDirectory(plan_, num_workers_),
                               num_workers_ + 1, options_.shm_ring_bytes));
    }
    MJOIN_RETURN_IF_ERROR(SpawnFleet());
  }
  MJOIN_RETURN_IF_ERROR(ShipPlans());
  MJOIN_RETURN_IF_ERROR(ShipFragments());
  if (CheckRuntime()) {
    DispatchGroups(controller_.TakeInitialGroups());
  }

  while (state_ != State::kDone) {
    if (!CheckRuntime()) break;
    SuperviseFleet();
    if (aborted_) break;
    PollOnce(/*timeout_ms=*/20);
    if (aborted_) break;
  }
  // lint:allow-clock run wall-clock end, once per query
  auto end = std::chrono::steady_clock::now();

  // The teardown can itself abort (a worker dying during the warm idle
  // handshake); that poisons the fleet but must not fail a query whose
  // result is already in, so the final verdict is snapshotted here.
  const bool run_failed = aborted_;
  if (fleet_ != nullptr) {
    if (run_failed) {
      // Workers may be mid-query and unwilling to park; the fleet owner
      // kills and respawns them. Never kill borrowed members here.
      fleet_->poisoned = true;
    } else {
      Status idle = AwaitFleetIdle();
      if (!idle.ok()) fleet_->poisoned = true;
    }
  } else if (run_failed) {
    KillFleet();
  } else {
    ShutdownFleet();
  }

  GatherNetStats();
  ThreadExecStats stats = GatherStats();
  if (stats_out != nullptr) *stats_out = stats;
  if (net_out != nullptr) *net_out = net_;

  double wall_seconds = std::chrono::duration<double>(end - start).count();
  // Published on the abort path too: partial progress is diagnosable.
  if (exec_.metrics_registry != nullptr) {
    PublishProcessMetrics(stats, net_, wall_seconds, exec_.metrics_registry);
  }

  if (run_failed) return abort_status_;

  ProcessQueryResult result;
  result.exec.wall_seconds = wall_seconds;
  result.exec.result =
      ResultSummary{summary_.cardinality, summary_.checksum};
  if (materialized_.has_value()) {
    result.exec.materialized = std::move(materialized_);
  }
  result.exec.stats = std::move(stats);
  if (trace_ != nullptr) {
    auto makespan_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count();
    result.exec.utilization = trace_->Utilization(makespan_ns);
    result.exec.utilization_diagram =
        trace_->RenderAscii(makespan_ns, exec_.trace_width);
    result.exec.trace = trace_;
  }
  result.net = net_;
  return result;
}

/// Sleeps one retry backoff, waking early (with the matching status) if
/// the caller's deadline or cancellation fires first.
Status BackoffSleep(
    std::chrono::milliseconds backoff,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const CancellationToken& cancellation) {
  // lint:allow-clock retry backoff window, bounded by the query deadline
  auto now = std::chrono::steady_clock::now();
  auto end = now + backoff;
  for (;;) {
    if (cancellation.cancelled()) {
      return Status::Cancelled("query cancelled by caller");
    }
    if (deadline.has_value() && now >= *deadline) {
      return Status::DeadlineExceeded(
          "query ran past its deadline while backing off for a retry");
    }
    if (now >= end) return Status::OK();
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        end - now);
    std::this_thread::sleep_for(
        std::min(remaining, std::chrono::milliseconds(10)));
    // lint:allow-clock retry backoff window, bounded by the query deadline
    now = std::chrono::steady_clock::now();
  }
}

/// Publishes the recovery counters once per Execute() (the per-attempt
/// counters go out in PublishProcessMetrics).
void PublishRecoveryMetrics(const ProcessExecStats& proc,
                            MetricsRegistry* registry) {
  registry->counter("process.attempts")->Add(proc.attempts);
  registry->counter("process.retries")->Add(proc.retries);
  registry->counter("process.hung_workers_killed")
      ->Add(proc.hung_workers_killed);
  registry->counter("process.worker_failures")->Add(proc.failures.size());
  if (proc.degraded_to_thread) {
    registry->counter("process.degraded_to_thread")->Add(1);
  }
  registry->counter("net.pings_sent")->Add(proc.pings_sent);
  registry->counter("net.pongs_received")->Add(proc.pongs_received);
}

/// Forks `num_workers` persistent workers into `state` (arena and
/// ring_bytes must already be set). Children inherit the arena mapping and
/// run RunProcessWorker with it; sibling sockets are closed in each child.
Status SpawnFleetMembers(FleetState* state, uint32_t num_workers) {
  state->members.resize(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      return Status::Internal(StrCat("socketpair failed: ", strerror(errno)));
    }
    pid_t pid = fork();
    if (pid < 0) {
      close(sv[0]);
      close(sv[1]);
      return Status::Internal(StrCat("fork failed: ", strerror(errno)));
    }
    if (pid == 0) {
      for (uint32_t prev = 0; prev < w; ++prev) {
        close(state->members[prev].chan->fd());
      }
      close(sv[0]);
      _exit(RunProcessWorker(sv[1], /*plane=*/nullptr, state->arena.get()));
    }
    close(sv[1]);
    MJOIN_RETURN_IF_ERROR(SetNonBlocking(sv[0]));
    state->members[w].pid = pid;
    state->members[w].chan =
        std::make_unique<FrameChannel>(sv[0], StrCat("worker ", w));
    state->members[w].chan->EnableConformance(LinkRole::kCoordinator);
    state->members[w].reaped = false;
  }
  state->poisoned = false;
  return Status::OK();
}

/// Kills (gracefully when asked and possible) and reaps every member, then
/// drops their channels. Tolerates members that already died or were
/// reaped by a diagnosing Coordinator.
void TearDownFleetMembers(FleetState* state, bool graceful) {
  if (graceful) {
    // Parked workers exit on a bare kShutdown; give each a bounded moment
    // before escalating. A poisoned fleet skips this: its workers may be
    // mid-query and deaf to polite requests.
    for (FleetMember& member : state->members) {
      if (member.chan == nullptr || member.reaped) continue;
      member.chan->QueueFrame(FrameType::kShutdown, {});
      (void)member.chan->Flush();
    }
    for (FleetMember& member : state->members) {
      if (member.pid <= 0 || member.reaped) continue;
      for (int spin = 0; spin < 200; ++spin) {
        int wstatus = 0;
        pid_t got = waitpid(member.pid, &wstatus, WNOHANG);
        if (got < 0 && errno == EINTR) continue;
        if (got == member.pid || got < 0) {  // got < 0: ECHILD, collected
          member.reaped = true;
          break;
        }
        struct pollfd none;
        none.fd = -1;
        none.events = 0;
        none.revents = 0;
        poll(&none, 1, 10);  // portable 10 ms sleep
      }
    }
  }
  for (FleetMember& member : state->members) {
    if (member.pid > 0 && !member.reaped) {
      kill(member.pid, SIGKILL);
      int wstatus = 0;
      while (waitpid(member.pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
      member.reaped = true;
    }
    member.chan.reset();
  }
  state->members.clear();
}

}  // namespace

struct WarmProcessFleet::Impl {
  const Database* database = nullptr;
  WarmFleetOptions options;
  /// Serializes Execute() calls and fleet mutation (respawn, teardown).
  mutable std::mutex mutex;
  FleetState state;
  uint64_t respawn_count = 0;

  /// Replaces a poisoned (or dead) fleet with a fresh one. The arena is
  /// reused — its rings are reformatted at the next attach anyway.
  Status Respawn() {
    TearDownFleetMembers(&state, /*graceful=*/false);
    ++respawn_count;
    return SpawnFleetMembers(&state, options.num_workers);
  }
};

WarmProcessFleet::WarmProcessFleet() : impl_(std::make_unique<Impl>()) {}

WarmProcessFleet::~WarmProcessFleet() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  TearDownFleetMembers(&impl_->state, /*graceful=*/!impl_->state.poisoned);
}

StatusOr<std::unique_ptr<WarmProcessFleet>> WarmProcessFleet::Spawn(
    const Database* database, const WarmFleetOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("WarmProcessFleet needs a database");
  }
  if (options.num_workers == 0) {
    return Status::InvalidArgument(
        "WarmFleetOptions::num_workers must be positive");
  }
  // lint:allow-new private ctor; make_unique cannot reach it
  std::unique_ptr<WarmProcessFleet> fleet(new WarmProcessFleet());
  Impl* impl = fleet->impl_.get();
  impl->database = database;
  impl->options = options;
  if (options.use_shm_data_plane) {
    // Size the arena for the worst-case directory of an n-worker fleet:
    // both relay directions per worker plus every ordered worker pair,
    // n(n+1) rings in all — any plan's directory fits.
    const uint64_t n = options.num_workers;
    const uint64_t slot = sizeof(ShmRingHdr) + options.shm_ring_bytes;
    MJOIN_ASSIGN_OR_RETURN(
        impl->state.arena,
        ShmArena::Create(options.num_workers + 1, slot * n * (n + 1)));
    impl->state.ring_bytes = options.shm_ring_bytes;
  }
  MJOIN_RETURN_IF_ERROR(
      SpawnFleetMembers(&impl->state, options.num_workers));
  return fleet;
}

uint32_t WarmProcessFleet::num_workers() const {
  return impl_->options.num_workers;
}

pid_t WarmProcessFleet::worker_pid(uint32_t w) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return w < impl_->state.members.size() ? impl_->state.members[w].pid : -1;
}

uint64_t WarmProcessFleet::respawns() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->respawn_count;
}

StatusOr<ProcessQueryResult> WarmProcessFleet::Execute(
    const ParallelPlan& plan, const ProcessExecOptions& options,
    ThreadExecStats* stats_out, ProcessNetStats* net_out,
    ProcessExecStats* proc_out) {
  if (options.exec.batch_size == 0) {
    return Status::InvalidArgument(
        "ProcessExecOptions::exec.batch_size must be positive");
  }
  if (options.exec.deadline.has_value() &&
      options.exec.deadline->count() <= 0) {
    return Status::InvalidArgument(
        "ProcessExecOptions::exec.deadline must be positive when set");
  }
  MJOIN_RETURN_IF_ERROR(plan.Validate());
  std::lock_guard<std::mutex> lock(impl_->mutex);

  // The fleet's spawn-time shape wins over the per-query knobs: the
  // workers and the arena already exist.
  ProcessExecOptions opts = options;
  opts.num_workers = impl_->options.num_workers;
  opts.use_shm_data_plane = impl_->state.arena != nullptr;
  opts.shm_ring_bytes = impl_->state.ring_bytes;

  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (opts.exec.deadline.has_value()) {
    // lint:allow-clock absolute retry-spanning deadline, once per Execute
    deadline = std::chrono::steady_clock::now() + *opts.exec.deadline;
  }

  ProcessExecStats proc;
  auto publish = [&proc, &opts] {
    if (opts.exec.metrics_registry != nullptr) {
      PublishRecoveryMetrics(proc, opts.exec.metrics_registry);
    }
  };

  std::chrono::milliseconds backoff = opts.retry_backoff;
  Status failure = Status::OK();
  for (uint32_t attempt = 0;; ++attempt) {
    proc.attempts = attempt + 1;
    if (impl_->state.poisoned || impl_->state.members.empty()) {
      Status respawned = impl_->Respawn();
      if (!respawned.ok()) {
        failure = respawned;
        break;
      }
    }
    Coordinator coordinator(plan, *impl_->database, opts,
                            impl_->options.num_workers, attempt, deadline,
                            &proc, &impl_->state);
    StatusOr<ProcessQueryResult> result = coordinator.Run(stats_out, net_out);
    if (result.ok()) {
      result->proc = proc;
      if (proc_out != nullptr) *proc_out = proc;
      publish();
      return result;
    }
    // Any failure — even a deterministic one — leaves workers possibly
    // mid-query and unable to take a new plan; a respawn is the only safe
    // way back to a serviceable fleet.
    impl_->state.poisoned = true;
    failure = result.status();
    if (!IsRetryableFailure(failure) || attempt >= opts.max_retries) break;
    ++proc.retries;
    Status slept = BackoffSleep(backoff, deadline, opts.exec.cancellation);
    if (!slept.ok()) {
      failure = slept;
      break;
    }
    backoff = std::min(backoff * 2, opts.retry_backoff_cap);
  }

  if (opts.degrade_to_thread && IsRetryableFailure(failure)) {
    proc.degraded_to_thread = true;
    ThreadExecOptions exec = opts.exec;
    exec.fault_injector = nullptr;
    ThreadExecutor fallback(impl_->database);
    StatusOr<ThreadQueryResult> degraded =
        fallback.Execute(plan, exec, stats_out);
    if (degraded.ok()) {
      ProcessQueryResult result;
      result.exec = std::move(degraded).value();
      result.net.num_workers = 0;  // no fleet produced this result
      result.proc = proc;
      if (net_out != nullptr) *net_out = result.net;
      if (proc_out != nullptr) *proc_out = proc;
      publish();
      return result;
    }
    failure = degraded.status();
  }

  if (proc_out != nullptr) *proc_out = proc;
  publish();
  return failure;
}

std::string WorkerFailureClassName(WorkerFailureClass failure) {
  switch (failure) {
    case WorkerFailureClass::kCrashed:
      return "crashed";
    case WorkerFailureClass::kHung:
      return "hung";
    case WorkerFailureClass::kCorruptWire:
      return "corrupt-wire";
    case WorkerFailureClass::kOther:
      return "other";
  }
  return "unknown";
}

std::string RenderProcessNetStats(const ProcessNetStats& net) {
  TablePrinter table({"net metric", "value"});
  table.AddRow({"workers", StrCat(net.num_workers)});
  table.AddRow({"bytes sent", FormatBytes(net.bytes_sent)});
  table.AddRow({"bytes received", FormatBytes(net.bytes_received)});
  table.AddRow({"frames sent", StrCat(net.frames_sent)});
  table.AddRow({"frames received", StrCat(net.frames_received)});
  table.AddRow({"data frames routed", StrCat(net.data_frames_routed)});
  table.AddRow({"local deliveries", StrCat(net.local_deliveries)});
  table.AddRow({"credit stalls", StrCat(net.credit_stalls)});
  table.AddRow({"peak held frames", StrCat(net.peak_held_frames)});
  table.AddRow({"pump stalls", StrCat(net.pump_stalls)});
  table.AddRow({"faults injected", StrCat(net.faults_injected)});
  table.AddRow({"serialize [s]", FormatDouble(net.serialize_seconds, 4)});
  table.AddRow({"deserialize [s]", FormatDouble(net.deserialize_seconds, 4)});
  table.AddRow({"shm rings", StrCat(net.shm_rings)});
  table.AddRow({"shm records sent", StrCat(net.shm_records_sent)});
  table.AddRow({"shm records received", StrCat(net.shm_records_received)});
  table.AddRow({"shm bytes sent", FormatBytes(net.shm_bytes_sent)});
  table.AddRow({"shm bytes received", FormatBytes(net.shm_bytes_received)});
  table.AddRow({"ring full stalls", StrCat(net.ring_full_stalls)});
  return table.ToString();
}

ProcessExecutor::ProcessExecutor(const Database* database)
    : database_(database) {}

StatusOr<ProcessQueryResult> ProcessExecutor::Execute(
    const ParallelPlan& plan, const ProcessExecOptions& options,
    ThreadExecStats* stats_out, ProcessNetStats* net_out,
    ProcessExecStats* proc_out) const {
  if (options.exec.batch_size == 0) {
    return Status::InvalidArgument(
        "ProcessExecOptions::exec.batch_size must be positive");
  }
  if (options.exec.deadline.has_value() &&
      options.exec.deadline->count() <= 0) {
    return Status::InvalidArgument(
        "ProcessExecOptions::exec.deadline must be positive when set");
  }
  MJOIN_RETURN_IF_ERROR(plan.Validate());
  uint32_t num_workers =
      options.num_workers == 0 ? plan.num_processors : options.num_workers;
  num_workers = std::clamp<uint32_t>(num_workers, 1, plan.num_processors);

  // The deadline is absolute across attempts: retries and their backoffs
  // spend the same budget the query itself does.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (options.exec.deadline.has_value()) {
    // lint:allow-clock absolute retry-spanning deadline, once per Execute
    deadline = std::chrono::steady_clock::now() + *options.exec.deadline;
  }

  ProcessExecStats proc;
  auto publish = [&proc, &options] {
    if (options.exec.metrics_registry != nullptr) {
      PublishRecoveryMetrics(proc, options.exec.metrics_registry);
    }
  };

  std::chrono::milliseconds backoff = options.retry_backoff;
  Status failure = Status::OK();
  for (uint32_t attempt = 0;; ++attempt) {
    proc.attempts = attempt + 1;
    Coordinator coordinator(plan, *database_, options, num_workers, attempt,
                            deadline, &proc);
    StatusOr<ProcessQueryResult> result = coordinator.Run(stats_out, net_out);
    if (result.ok()) {
      result->proc = proc;
      if (proc_out != nullptr) *proc_out = proc;
      publish();
      return result;
    }
    failure = result.status();
    if (!IsRetryableFailure(failure) || attempt >= options.max_retries) break;
    ++proc.retries;
    Status slept =
        BackoffSleep(backoff, deadline, options.exec.cancellation);
    if (!slept.ok()) {
      failure = slept;
      break;
    }
    backoff = std::min(backoff * 2, options.retry_backoff_cap);
  }

  if (options.degrade_to_thread && IsRetryableFailure(failure)) {
    // The process fleet is unusable in this environment; fall back to the
    // in-process backend. The shipped fault scenario is deliberately not
    // carried over — degradation escapes the faulty environment, it does
    // not re-create it.
    proc.degraded_to_thread = true;
    ThreadExecOptions exec = options.exec;
    exec.fault_injector = nullptr;
    ThreadExecutor fallback(database_);
    StatusOr<ThreadQueryResult> degraded =
        fallback.Execute(plan, exec, stats_out);
    if (degraded.ok()) {
      ProcessQueryResult result;
      result.exec = std::move(degraded).value();
      result.net.num_workers = 0;  // no fleet produced this result
      result.proc = proc;
      if (net_out != nullptr) *net_out = result.net;
      if (proc_out != nullptr) *proc_out = proc;
      publish();
      return result;
    }
    failure = degraded.status();
  }

  if (proc_out != nullptr) *proc_out = proc;
  publish();
  return failure;
}

}  // namespace mjoin
