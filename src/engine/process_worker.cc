#include "engine/process_worker.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/string_util.h"
#include "engine/fault_injector.h"
#include "engine/process_protocol.h"
#include "engine/result.h"
#include "exec/aggregate.h"
#include "exec/batch.h"
#include "exec/batch_pool.h"
#include "exec/emit.h"
#include "exec/filter.h"
#include "exec/operator.h"
#include "exec/pipelining_hash_join.h"
#include "exec/scan.h"
#include "exec/simple_hash_join.h"
#include "exec/sort_merge_join.h"
#include "net/channel.h"
#include "net/shm_ring.h"
#include "skew/defense.h"
#include "xra/text.h"

namespace mjoin {

namespace {

/// Outbound bytes queued at which the worker stops pumping its sources and
/// lets the socket drain first — the worker-side half of flow control (the
/// coordinator-side half is the credit window).
constexpr size_t kOutboxWatermark = 4u << 20;

/// Same work-type mapping as the thread backend (its copies live in an
/// anonymous namespace); kept byte-identical so the two backends bucket
/// phase seconds the same way.
ThreadWorkType ConsumeWorkType(XraOpKind kind, int port) {
  switch (kind) {
    case XraOpKind::kSimpleHashJoin:
      return port == SimpleHashJoinOp::kBuildPort ? ThreadWorkType::kBuild
                                                  : ThreadWorkType::kProbe;
    case XraOpKind::kPipeliningHashJoin:
    case XraOpKind::kFilter:
      return ThreadWorkType::kPipeline;
    case XraOpKind::kSortMergeJoin:
      return ThreadWorkType::kBuild;
    case XraOpKind::kAggregate:
      return ThreadWorkType::kBuild;
    default:
      return ThreadWorkType::kOther;
  }
}

ThreadWorkType InputDoneWorkType(XraOpKind kind, int port) {
  switch (kind) {
    case XraOpKind::kSimpleHashJoin:
      return port == SimpleHashJoinOp::kBuildPort ? ThreadWorkType::kProbe
                                                  : ThreadWorkType::kOther;
    case XraOpKind::kSortMergeJoin:
      return ThreadWorkType::kMerge;
    case XraOpKind::kAggregate:
      return ThreadWorkType::kEmit;
    default:
      return ThreadWorkType::kOther;
  }
}

double* PhaseBucket(OpMetrics* m, ThreadWorkType type) {
  switch (type) {
    case ThreadWorkType::kBuild:
      return &m->build_seconds;
    case ThreadWorkType::kProbe:
    case ThreadWorkType::kMerge:
      return &m->probe_seconds;
    case ThreadWorkType::kPipeline:
      return &m->pipeline_seconds;
    case ThreadWorkType::kScan:
      return &m->scan_seconds;
    case ThreadWorkType::kEmit:
      return &m->emit_seconds;
    case ThreadWorkType::kBloomBuild:
      return &m->skew_bloom_build_seconds;
    case ThreadWorkType::kSerialize:
    case ThreadWorkType::kDeserialize:
    default:
      return &m->other_seconds;
  }
}

class WorkerRun;

/// One hosted operation process. The whole worker is one thread, so the
/// state needs no locking; output leaves through the same EmitWriter
/// zero-copy channel the thread backend uses — rows are built in the
/// pending destination batch and touched again only by the one serializing
/// copy onto the wire (or not at all for a local consumer).
class WorkerInstance : public OpContext, public EmitSink {
 public:
  WorkerInstance(WorkerRun* run, int op_id, uint32_t index, uint32_t processor)
      : run_(run), op_id_(op_id), index_(index), processor_(processor) {}

  void Charge(Ticks) override {}
  void EmitRow(const std::byte* row) override;
  void EmitRows(const std::byte* rows, size_t count,
                size_t row_bytes) override;
  EmitWriter* emit_writer() override {
    return writer_ready ? &writer : nullptr;
  }
  void BatchFull(uint32_t dest) override;
  const CostParams& costs() const override { return cost_params_; }
  MemoryBudget* memory_budget() const override;
  bool cancelled() const override;
  void ReportError(const Status& status) override;
  OpMetrics* metrics() const override {
    return observe_metrics ? &op_metrics : nullptr;
  }

  WorkerRun* run_;
  int op_id_;
  uint32_t index_;
  uint32_t processor_;
  std::unique_ptr<Operator> oper;

  mutable OpMetrics op_metrics;
  bool observe_metrics = false;

  bool started = false;
  bool complete = false;
  bool build_done_reported = false;
  bool pumping = false;
  int eos_remaining[2] = {0, 0};
  std::vector<TupleBatch> out_pending;
  EmitWriter writer;
  bool writer_ready = false;
  /// Wire schema id of out_pending's layout (only used on remote sends).
  uint32_t out_schema_id = 0;
  std::deque<std::function<void()>> pre_start;
  /// Installed on probe-edge producers when a skew directive arrives;
  /// owned here so it outlives every writer use.
  std::unique_ptr<EmitDefense> skew_hook;

  CostParams cost_params_;
};

/// Worker-side state of one query: hosted instances, local fragments and
/// stored results, the frame loop, and the finish-phase reporting.
class WorkerRun {
 public:
  WorkerRun(FrameChannel* chan, PlanEnvelope env, ParallelPlan plan,
            ShmDataPlane* plane, BatchPool* pool)
      : chan_(chan),
        env_(std::move(env)),
        plan_(std::move(plan)),
        registry_(plan_),
        budget_(env_.memory_budget_bytes),
        pool_(pool),
        pool_allocated_base_(pool->allocated()),
        pool_reused_base_(pool->reused()),
        plane_(plane),
        coord_ep_(env_.num_workers) {}

  Status Setup();
  /// Runs the event loop until kShutdown (returns OK) or a fatal error.
  Status Loop();

  void EmitRowFrom(WorkerInstance* inst, const std::byte* row);
  void EmitRowsFrom(WorkerInstance* inst, const std::byte* rows, size_t count,
                    size_t row_bytes);
  void FlushDest(WorkerInstance* inst, uint32_t dest);
  MemoryBudget* budget() { return &budget_; }
  bool aborted() const { return !run_status_.ok(); }
  void Abort(Status status) {
    if (run_status_.ok()) run_status_ = std::move(status);
  }

 private:
  const XraOp& op(int id) const { return plan_.ops[static_cast<size_t>(id)]; }
  WorkerInstance* instance(int op, uint32_t index) {
    return instances_[static_cast<size_t>(op)][index].get();
  }
  bool Hosts(uint32_t processor) const {
    return WorkerOfProcessor(processor, env_.num_workers,
                             plan_.num_processors) == env_.worker_id;
  }
  int64_t NowNs() const {
    // Read per batch/phase, never per row: trace timestamps plus the
    // always-on transport (serialize/deserialize) timers.
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               // lint:allow-clock per-batch transport timers + trace stamps
               std::chrono::steady_clock::now().time_since_epoch())
               .count() -
           env_.trace_origin_ns;
  }
  void RecordTrace(uint32_t processor, int64_t t0, int64_t t1,
                   ThreadWorkType type, int op_id) {
    if (env_.record_trace && t1 > t0) {
      trace_events_.push_back(WireTraceEvent{
          processor, t0, t1, type, static_cast<int32_t>(op_id)});
    }
  }

  template <typename Fn>
  void Observed(WorkerInstance* inst, ThreadWorkType type, Fn&& fn) {
    if (!observe_) {
      fn();
      return;
    }
    int64_t t0 = NowNs();
    fn();
    int64_t t1 = NowNs();
    if (env_.collect_metrics) {
      *PhaseBucket(&inst->op_metrics, type) +=
          static_cast<double>(t1 - t0) * 1e-9;
    }
    RecordTrace(inst->processor_, t0, t1, type, inst->op_id_);
  }

  Status HandleFrame(const Frame& frame);
  Status HandleTrigger(const Frame& frame);
  Status HandleFragment(const Frame& frame);
  Status HandleData(const Frame& frame);
  Status HandleEos(const Frame& frame);
  Status SendFinishReports();

  void TriggerInstance(WorkerInstance* inst);
  void PumpSources();
  void OnBatch(WorkerInstance* inst, int port, const TupleBatch& batch);
  void OnEos(WorkerInstance* inst, int port);
  /// Defended joins defer InputDone(build): the last build EOS produces a
  /// kSkewReport (candidate rows inline in the frame) and the kBuildDone
  /// milestone, and the deferred InputDone runs when the coordinator's
  /// kSkewDirective comes back. Probe rows arriving in between buffer
  /// inside the join, so the deferral absorbs every ordering race.
  void HandleDefendedBuildEos(WorkerInstance* inst);
  Status HandleSkewDirective(const Frame& frame);
  void ApplyDirectiveTo(WorkerInstance* inst, const SkewDirective& directive);
  void AfterCallback(WorkerInstance* inst);
  void FinishInstance(WorkerInstance* inst);
  void SendEosTo(int producer_op, int consumer_op, uint32_t dest, int port);
  void QueueMilestone(int op_id, uint32_t index, Milestone milestone);

  // -- shm data plane (all no-ops when plane_ is null) --------------------
  /// Whether this op's remote sends travel over rings. Decided once in
  /// Setup so an edge never mixes ring records and socket frames, which
  /// would reorder data against its own EOS.
  bool UseRingFor(int producer_op) const {
    return plane_ != nullptr && op_ring_ok_[static_cast<size_t>(producer_op)];
  }
  uint32_t WorkerOf(uint32_t processor) const {
    return WorkerOfProcessor(processor, env_.num_workers,
                             plan_.num_processors);
  }
  void PushShmRecord(uint32_t dest_ep, ShmRecordType type, const void* hdr,
                     size_t hdr_bytes, const std::byte* body,
                     size_t body_bytes);
  void RetryBacklogs();
  void RingDirtyDoorbells();
  bool InboundRingsNonEmpty();
  Status DrainInboundRings();
  Status ConsumeShmRecord(ShmRing* ring, const ShmRecordView& rec);
  Status ConsumeShmData(ShmRing* ring, const ShmRecordView& rec);
  Status ConsumeShmEos(ShmRing* ring, const ShmRecordView& rec);
  Status ConsumeShmFragment(ShmRing* ring, const ShmRecordView& rec);

  FrameChannel* chan_;
  PlanEnvelope env_;
  ParallelPlan plan_;
  SchemaRegistry registry_;
  MemoryBudget budget_;
  /// Worker-lifetime buffer pool (owned by RunProcessWorker): a persistent
  /// worker's buffers survive across queries, so steady-state runs reuse
  /// instead of allocating. The *_base_ counters pin the pool's lifetime
  /// totals at run start — the reported buffer stats are per-run deltas,
  /// identical from a warm or a freshly forked worker.
  BatchPool* pool_;
  const uint64_t pool_allocated_base_;
  const uint64_t pool_reused_base_;
  std::unique_ptr<FaultInjector> injector_;

  std::vector<std::vector<std::unique_ptr<WorkerInstance>>> instances_;
  std::vector<std::vector<Relation>> stored_;
  std::vector<std::vector<Relation>> scan_fragments_;
  std::deque<WorkerInstance*> pump_queue_;
  /// Per-op: this join defers its build milestone behind a skew report.
  /// Derived from the shipped SkewDefenseOptions and the parsed plan, so
  /// it always matches the coordinator's defended set.
  std::vector<bool> defended_;

  Status run_status_;
  bool observe_ = false;
  bool shutdown_ = false;
  uint32_t credits_ = 0;
  WorkerRunStats stats_;
  std::vector<WireTraceEvent> trace_events_;

  /// Inherited shm data plane; null means every payload rides the socket.
  ShmDataPlane* plane_;
  /// The coordinator's endpoint id in the ring directory.
  const uint32_t coord_ep_;
  /// Largest record payload any ring accepts (0 when plane_ is null).
  uint32_t shm_max_payload_ = 0;
  /// Per-op: this op's output rows fit in one ring record.
  std::vector<bool> op_ring_ok_;
  struct ShmBacklogRecord {
    ShmRecordType type;
    std::vector<std::byte> bytes;  // header + rows, render-complete
  };
  /// Per-ring FIFO of records that found their ring full. New records are
  /// appended behind the backlog, so per-edge order is preserved; the loop
  /// retries the backlog every turn and on the producer-side doorbell.
  std::unordered_map<size_t, std::deque<ShmBacklogRecord>> ring_backlog_;
  size_t ring_backlog_bytes_ = 0;
  /// Endpoints whose doorbell should ring this loop turn (coalesced: one
  /// eventfd write per endpoint per turn, not one per record).
  std::vector<bool> doorbell_dirty_;
  /// kBye is held until every backlog drained onto its ring, so the
  /// coordinator never tears the fleet down with result rows still queued.
  bool bye_pending_ = false;
};

void WorkerInstance::EmitRow(const std::byte* row) {
  run_->EmitRowFrom(this, row);
}

void WorkerInstance::EmitRows(const std::byte* rows, size_t count,
                              size_t row_bytes) {
  run_->EmitRowsFrom(this, rows, count, row_bytes);
}

void WorkerInstance::BatchFull(uint32_t dest) { run_->FlushDest(this, dest); }

MemoryBudget* WorkerInstance::memory_budget() const { return run_->budget(); }

bool WorkerInstance::cancelled() const { return run_->aborted(); }

void WorkerInstance::ReportError(const Status& status) {
  run_->Abort(status);
}

Status WorkerRun::Setup() {
  observe_ = env_.collect_metrics || env_.record_trace;
  defended_.assign(plan_.ops.size(), false);
  if (env_.skew_defense.enabled()) {
    for (int id : DefendedJoinOps(plan_)) {
      defended_[static_cast<size_t>(id)] = true;
    }
  }
  op_ring_ok_.assign(plan_.ops.size(), false);
  if (plane_ != nullptr) {
    shm_max_payload_ =
        plane_->ring_bytes() / 2 - kShmRecordHdrBytes * 2;
    doorbell_dirty_.assign(plane_->num_endpoints(), false);
    for (const XraOp& o : plan_.ops) {
      if (o.consumer < 0 || o.store_result >= 0) continue;
      op_ring_ok_[static_cast<size_t>(o.id)] =
          sizeof(ShmDataHeader) + o.output_schema->tuple_size() <=
          shm_max_payload_;
    }
  }
  if (!env_.fault_scenario.empty()) {
    MJOIN_ASSIGN_OR_RETURN(FaultScenario scenario,
                           ParseFaultScenario(env_.fault_scenario));
    // An attempt-scoped scenario arms only on its attempt: retries of a
    // first-attempt-only fault run entirely clean.
    if (scenario.on_attempt < 0 ||
        scenario.on_attempt == static_cast<int>(env_.attempt)) {
      injector_ = std::make_unique<FaultInjector>(scenario);
    }
  }

  size_t num_ops = plan_.ops.size();
  instances_.resize(num_ops);
  scan_fragments_.resize(num_ops);
  stored_.resize(static_cast<size_t>(plan_.num_results));

  for (const XraOp& o : plan_.ops) {
    if (o.store_result >= 0) {
      auto& frags = stored_[static_cast<size_t>(o.store_result)];
      for (size_t i = 0; i < o.processors.size(); ++i) {
        frags.emplace_back(*o.output_schema);
      }
    }
    if (o.kind == XraOpKind::kScan) {
      auto& frags = scan_fragments_[static_cast<size_t>(o.id)];
      for (size_t i = 0; i < o.processors.size(); ++i) {
        frags.emplace_back(*o.output_schema);
      }
    }
  }

  for (const XraOp& o : plan_.ops) {
    auto& list = instances_[static_cast<size_t>(o.id)];
    list.resize(o.processors.size());
    for (uint32_t i = 0; i < o.processors.size(); ++i) {
      if (!Hosts(o.processors[i])) continue;
      auto inst =
          std::make_unique<WorkerInstance>(this, o.id, i, o.processors[i]);
      inst->cost_params_.batch_size = env_.batch_size;
      inst->observe_metrics = env_.collect_metrics;
      switch (o.kind) {
        case XraOpKind::kScan: {
          const Relation* frag =
              &scan_fragments_[static_cast<size_t>(o.id)][i];
          inst->oper = std::make_unique<ScanOp>([frag] { return frag; },
                                                o.output_schema);
          break;
        }
        case XraOpKind::kRescan: {
          const Relation* frag =
              &stored_[static_cast<size_t>(o.stored_result)][i];
          inst->oper = std::make_unique<ScanOp>([frag] { return frag; },
                                                o.output_schema);
          break;
        }
        case XraOpKind::kSimpleHashJoin:
          inst->oper = std::make_unique<SimpleHashJoinOp>(o.join_spec);
          break;
        case XraOpKind::kPipeliningHashJoin:
          inst->oper = std::make_unique<PipeliningHashJoinOp>(o.join_spec);
          break;
        case XraOpKind::kSortMergeJoin:
          inst->oper = std::make_unique<SortMergeJoinOp>(o.join_spec);
          break;
        case XraOpKind::kFilter: {
          MJOIN_ASSIGN_OR_RETURN(std::unique_ptr<FilterOp> filter,
                                 FilterOp::Make(o.input_schema, o.filter));
          inst->oper = std::move(filter);
          break;
        }
        case XraOpKind::kAggregate: {
          MJOIN_ASSIGN_OR_RETURN(
              std::unique_ptr<AggregateOp> aggregate,
              AggregateOp::Make(o.input_schema, o.group_column,
                                o.value_column));
          inst->oper = std::move(aggregate);
          break;
        }
      }
      for (int port = 0; port < inst->oper->num_input_ports(); ++port) {
        const XraInput& input = o.inputs[port];
        inst->eos_remaining[port] =
            input.routing == Routing::kColocated
                ? 1
                : static_cast<int>(op(input.producer).processors.size());
      }
      if (o.store_result >= 0) {
        inst->out_pending.emplace_back(o.output_schema);
        inst->writer.Configure(inst->out_pending.data(), 1,
                               /*split_column=*/-1, /*fixed_dest=*/0,
                               env_.batch_size, inst.get());
        inst->writer_ready = true;
      } else if (o.consumer >= 0) {
        const XraOp& consumer = op(o.consumer);
        const XraInput& input = consumer.inputs[o.consumer_port];
        for (size_t d = 0; d < consumer.processors.size(); ++d) {
          inst->out_pending.emplace_back(o.output_schema);
        }
        int split_column = input.routing == Routing::kHashSplit
                               ? static_cast<int>(input.split_key)
                               : -1;
        uint32_t fixed_dest = input.routing == Routing::kColocated ? i : 0;
        inst->writer.Configure(
            inst->out_pending.data(),
            static_cast<uint32_t>(consumer.processors.size()), split_column,
            fixed_dest, env_.batch_size, inst.get());
        inst->writer_ready = true;
        MJOIN_ASSIGN_OR_RETURN(inst->out_schema_id,
                               registry_.IdOf(*o.output_schema));
      }
      list[i] = std::move(inst);
    }
  }
  return Status::OK();
}

void WorkerRun::TriggerInstance(WorkerInstance* inst) {
  if (aborted()) return;
  MJOIN_CHECK(!inst->started);
  inst->started = true;
  Observed(inst, ThreadWorkType::kStartup,
           [inst] { inst->oper->Open(inst); });
  if (inst->oper->is_source()) {
    inst->pumping = true;
    pump_queue_.push_back(inst);
  }
  while (!inst->pre_start.empty() && !aborted()) {
    auto fn = std::move(inst->pre_start.front());
    inst->pre_start.pop_front();
    fn();
  }
}

void WorkerRun::PumpSources() {
  WorkerInstance* inst = pump_queue_.front();
  pump_queue_.pop_front();
  if (inst->complete || aborted()) return;
  if (injector_ != nullptr) injector_->OnDequeue(inst->processor_);
  bool more = false;
  Observed(inst, ThreadWorkType::kScan,
           [inst, &more] { more = inst->oper->Produce(inst); });
  if (more) {
    inst->pumping = true;
    pump_queue_.push_back(inst);
  } else {
    inst->pumping = false;
    FinishInstance(inst);
  }
}

void WorkerRun::EmitRowFrom(WorkerInstance* inst, const std::byte* row) {
  if (aborted()) return;
  EmitWriter& writer = inst->writer;
  int32_t route = 0;
  if (writer.split_column() >= 0) {
    TupleRef ref(row, op(inst->op_id_).output_schema.get());
    route = ref.GetInt32(static_cast<size_t>(writer.split_column()));
  }
  writer.Append(row, route);
}

void WorkerRun::EmitRowsFrom(WorkerInstance* inst, const std::byte* rows,
                             size_t count, size_t row_bytes) {
  if (aborted()) return;
  EmitWriter& writer = inst->writer;
  const int split = writer.split_column();
  if (split < 0) {
    writer.AppendRows(rows, count);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    const std::byte* row = rows + i * row_bytes;
    TupleRef ref(row, op(inst->op_id_).output_schema.get());
    writer.Append(row, ref.GetInt32(static_cast<size_t>(split)));
  }
}

void WorkerRun::FlushDest(WorkerInstance* inst, uint32_t dest) {
  TupleBatch& pending = inst->out_pending[dest];
  if (pending.empty()) return;
  if (aborted()) {
    pending.Clear();
    return;
  }
  const XraOp& o = op(inst->op_id_);
  if (o.store_result >= 0) {
    Status reserved = budget_.Reserve(pending.byte_size());
    if (!reserved.ok()) {
      Abort(std::move(reserved));
      return;
    }
    stored_[static_cast<size_t>(o.store_result)][inst->index_].AppendRows(
        pending.raw_data(), pending.num_tuples());
    pending.Clear();
    return;
  }
  int copies = 1;
  if (injector_ != nullptr) {
    if (injector_->ShouldDropBatch(o.consumer)) {
      ++stats_.batches_dropped;
      pending.Clear();
      return;
    }
    if (injector_->ShouldDuplicateBatch(o.consumer)) {
      ++stats_.batches_duplicated;
      copies = 2;
    }
  }
  const XraOp& consumer_op = op(o.consumer);
  int port = o.consumer_port;
  if (Hosts(consumer_op.processors[dest])) {
    // Local consumer: the pending batch is consumed in place — no
    // serialization, no copy. Only a not-yet-started consumer forces a
    // pooled buffer swap so the rows survive until its trigger.
    WorkerInstance* consumer = instance(o.consumer, dest);
    stats_.local_deliveries += static_cast<uint64_t>(copies);
    if (consumer->started) {
      for (int c = 0; c < copies && !aborted(); ++c) {
        OnBatch(consumer, port, pending);
      }
      pending.Clear();
    } else {
      std::shared_ptr<TupleBatch> batch =
          pool_->Acquire(o.output_schema);
      std::swap(*batch, pending);
      for (int c = 0; c < copies; ++c) {
        consumer->pre_start.push_back([this, consumer, port, batch] {
          OnBatch(consumer, port, *batch);
        });
      }
    }
    return;
  }
  // Remote consumer: one serializing copy. The copy is timed whether or
  // not metrics collection is on — transport cost is what the net bench
  // exists to surface, so the timers must not vanish with observability
  // (they used to be observe_-gated, which reported 0.0s for any run with
  // collect_metrics off). RecordTrace stays trace-gated internally.
  const uint32_t tuple_size = pending.schema().tuple_size();
  int64_t t0 = NowNs();
  if (UseRingFor(inst->op_id_)) {
    // Ring path: "serialize" degenerates to a bounds-checked memcpy of the
    // raw rows, chunked so every record fits one ring reservation.
    const uint32_t dest_ep = WorkerOf(consumer_op.processors[dest]);
    const size_t rows_per_record =
        (shm_max_payload_ - sizeof(ShmDataHeader)) / tuple_size;
    for (int c = 0; c < copies; ++c) {
      size_t offset = 0;
      while (offset < pending.num_tuples()) {
        size_t count =
            std::min(rows_per_record, pending.num_tuples() - offset);
        ShmDataHeader hdr;
        hdr.consumer_op = o.consumer;
        hdr.dest_index = dest;
        hdr.port = static_cast<uint32_t>(port);
        hdr.schema_id = inst->out_schema_id;
        hdr.tuple_size = tuple_size;
        hdr.num_tuples = static_cast<uint32_t>(count);
        PushShmRecord(dest_ep, ShmRecordType::kData, &hdr, sizeof(hdr),
                      pending.raw_data() + offset * tuple_size,
                      count * tuple_size);
        offset += count;
      }
    }
  } else {
    std::vector<std::byte> payload;
    payload.reserve(9 + BatchWireSize(tuple_size, pending.num_tuples()));
    EncodeRouteHeader(
        RouteHeader{o.consumer, dest, static_cast<uint8_t>(port)}, &payload);
    AppendBatchWire(pending, inst->out_schema_id, &payload);
    for (int c = 0; c < copies; ++c) {
      chan_->QueueFrame(FrameType::kData, payload);
      ++stats_.data_frames_sent;
    }
  }
  int64_t t1 = NowNs();
  stats_.serialize_seconds += static_cast<double>(t1 - t0) * 1e-9;
  RecordTrace(inst->processor_, t0, t1, ThreadWorkType::kSerialize,
              inst->op_id_);
  pending.Clear();
  // Opportunistic drain keeps the outbox from ballooning inside one long
  // Consume(); errors surface at the loop's next Flush.
  if (chan_->pending_output_bytes() >= kOutboxWatermark) {
    Status drained = chan_->Flush();
    if (!drained.ok()) Abort(std::move(drained));
  }
}

void WorkerRun::PushShmRecord(uint32_t dest_ep, ShmRecordType type,
                              const void* hdr, size_t hdr_bytes,
                              const std::byte* body, size_t body_bytes) {
  const size_t ring_index = plane_->RingIndexTo(env_.worker_id, dest_ep);
  MJOIN_CHECK(ring_index != kNoShmRing)
      << "no ring toward endpoint " << dest_ep;
  ++stats_.shm_records_sent;
  stats_.shm_bytes_sent += hdr_bytes + body_bytes;
  auto& backlog = ring_backlog_[ring_index];
  if (backlog.empty() && plane_->ring(ring_index)
                             ->TryPush(type, hdr, hdr_bytes, body,
                                       body_bytes)) {
    doorbell_dirty_[dest_ep] = true;
    return;
  }
  // Ring full (or draining a backlog already): park the rendered record
  // instead of blocking — the single-threaded worker must keep consuming
  // its own inbound rings or two full rings facing each other deadlock.
  ++stats_.ring_full_stalls;
  ShmBacklogRecord rec;
  rec.type = type;
  rec.bytes.resize(hdr_bytes + body_bytes);
  std::memcpy(rec.bytes.data(), hdr, hdr_bytes);
  if (body_bytes > 0) {
    std::memcpy(rec.bytes.data() + hdr_bytes, body, body_bytes);
  }
  ring_backlog_bytes_ += rec.bytes.size();
  backlog.push_back(std::move(rec));
}

void WorkerRun::RetryBacklogs() {
  for (auto& [ring_index, backlog] : ring_backlog_) {
    if (backlog.empty()) continue;
    ShmRing* ring = plane_->ring(ring_index);
    bool pushed = false;
    while (!backlog.empty()) {
      ShmBacklogRecord& rec = backlog.front();
      if (!ring->TryPush(rec.type, rec.bytes.data(), rec.bytes.size(),
                         nullptr, 0)) {
        break;
      }
      ring_backlog_bytes_ -= rec.bytes.size();
      backlog.pop_front();
      pushed = true;
    }
    if (pushed) doorbell_dirty_[plane_->spec(ring_index).to] = true;
  }
}

void WorkerRun::RingDirtyDoorbells() {
  for (uint32_t ep = 0; ep < doorbell_dirty_.size(); ++ep) {
    if (!doorbell_dirty_[ep]) continue;
    doorbell_dirty_[ep] = false;
    plane_->RingDoorbell(ep);
  }
}

void WorkerRun::OnBatch(WorkerInstance* inst, int port,
                        const TupleBatch& batch) {
  if (aborted()) return;
  if (injector_ != nullptr) {
    Status status = injector_->BeforeConsume(inst->op_id_);
    if (!status.ok()) {
      Abort(std::move(status));
      return;
    }
  }
  ++stats_.batches_processed;
  if (!observe_) {
    inst->oper->Consume(port, batch, inst);
  } else {
    if (env_.collect_metrics) {
      inst->op_metrics.rows_in[port] += batch.num_tuples();
      ++inst->op_metrics.batches_in[port];
    }
    ThreadWorkType type = ConsumeWorkType(op(inst->op_id_).kind, port);
    int64_t t0 = NowNs();
    inst->oper->Consume(port, batch, inst);
    int64_t t1 = NowNs();
    if (env_.collect_metrics) {
      double secs = static_cast<double>(t1 - t0) * 1e-9;
      *PhaseBucket(&inst->op_metrics, type) += secs;
      inst->op_metrics.batch_seconds.Add(secs);
    }
    RecordTrace(inst->processor_, t0, t1, type, inst->op_id_);
  }
  AfterCallback(inst);
}

void WorkerRun::OnEos(WorkerInstance* inst, int port) {
  if (aborted()) return;
  MJOIN_CHECK(inst->eos_remaining[port] > 0);
  if (--inst->eos_remaining[port] == 0) {
    if (port == SimpleHashJoinOp::kBuildPort &&
        defended_[static_cast<size_t>(inst->op_id_)]) {
      HandleDefendedBuildEos(inst);
      return;
    }
    ThreadWorkType type = InputDoneWorkType(op(inst->op_id_).kind, port);
    Observed(inst, type,
             [inst, port] { inst->oper->InputDone(port, inst); });
  }
  AfterCallback(inst);
}

void WorkerRun::HandleDefendedBuildEos(WorkerInstance* inst) {
  auto* join = static_cast<SimpleHashJoinOp*>(inst->oper.get());
  SkewJoinReport report;
  Observed(inst, ThreadWorkType::kBloomBuild, [this, inst, join, &report] {
    report = BuildSkewReport(
        join->table(), inst->op_id_, inst->index_,
        static_cast<uint32_t>(op(inst->op_id_).processors.size()),
        env_.skew_defense);
  });
  std::vector<std::byte> payload;
  EncodeSkewReport(report, &payload);
  // Report before milestone, on the same FIFO socket: by the time the
  // coordinator's scheduler can act on this build being done, it already
  // holds the report.
  chan_->QueueFrame(FrameType::kSkewReport, payload);
  inst->build_done_reported = true;
  QueueMilestone(inst->op_id_, inst->index_, Milestone::kBuildDone);
}

Status WorkerRun::HandleSkewDirective(const Frame& frame) {
  WireReader reader(frame.payload);
  SkewDirective directive;
  MJOIN_RETURN_IF_ERROR(DecodeSkewDirective(&reader, &directive));
  if (directive.op < 0 ||
      static_cast<size_t>(directive.op) >= plan_.ops.size() ||
      !defended_[static_cast<size_t>(directive.op)]) {
    return Status::InvalidArgument(
        StrCat("skew directive for undefended op ", directive.op));
  }
  const XraOp& o = op(directive.op);
  // Producers first: once the deferred InputDone below releases the
  // probe, every row this worker emits afterwards is already defended.
  const int producer_id = o.inputs[SimpleHashJoinOp::kProbePort].producer;
  if (producer_id >= 0) {
    for (auto& p : instances_[static_cast<size_t>(producer_id)]) {
      // A producer that already finished emitted its rows undefended —
      // correct (hot rows at their owner still match), just unsprayed.
      if (p == nullptr || p->complete) continue;
      p->skew_hook = std::make_unique<SkewEmitDefense>(directive);
      p->writer.SetDefense(p->skew_hook.get());
      if (p->observe_metrics) {
        double fp = directive.bloom.EstimateFpRate();
        if (fp > p->op_metrics.skew_bloom_fp_rate) {
          p->op_metrics.skew_bloom_fp_rate = fp;
        }
      }
    }
  }
  for (auto& j : instances_[static_cast<size_t>(directive.op)]) {
    if (j == nullptr) continue;
    ApplyDirectiveTo(j.get(), directive);
    if (aborted()) return run_status_;
  }
  return Status::OK();
}

void WorkerRun::ApplyDirectiveTo(WorkerInstance* inst,
                                 const SkewDirective& directive) {
  if (aborted()) return;
  auto* join = static_cast<SimpleHashJoinOp*>(inst->oper.get());
  uint64_t inserted = ApplySkewDirective(directive, join->mutable_table());
  join->NoteTableGrowth();
  if (inst->observe_metrics) {
    inst->op_metrics.skew_replicated_rows += inserted;
    // Hot-key count is a per-join fact, not per-instance: record it once,
    // on instance 0, so the cross-worker merge does not multiply it.
    if (inst->index_ == 0) {
      inst->op_metrics.skew_hot_keys += directive.hot_keys.size();
    }
  }
  Observed(inst,
           InputDoneWorkType(XraOpKind::kSimpleHashJoin,
                             SimpleHashJoinOp::kBuildPort),
           [inst] {
             inst->oper->InputDone(SimpleHashJoinOp::kBuildPort, inst);
           });
  AfterCallback(inst);
}

void WorkerRun::AfterCallback(WorkerInstance* inst) {
  if (aborted()) return;
  const XraOp& o = op(inst->op_id_);
  if (o.kind == XraOpKind::kSimpleHashJoin && !inst->build_done_reported) {
    auto* join = static_cast<SimpleHashJoinOp*>(inst->oper.get());
    if (join->build_done()) {
      inst->build_done_reported = true;
      QueueMilestone(inst->op_id_, inst->index_, Milestone::kBuildDone);
    }
  }
  if (!inst->complete && inst->oper->finished()) FinishInstance(inst);
}

void WorkerRun::SendEosTo(int producer_op, int consumer_op, uint32_t dest,
                          int port) {
  const XraOp& consumer = op(consumer_op);
  if (Hosts(consumer.processors[dest])) {
    WorkerInstance* target = instance(consumer_op, dest);
    if (target->started) {
      OnEos(target, port);
    } else {
      target->pre_start.push_back(
          [this, target, port] { OnEos(target, port); });
    }
    return;
  }
  // EOS follows the exact path its data took (same ring or same socket),
  // so it can never overtake the last batch of the stream.
  if (UseRingFor(producer_op)) {
    ShmEosHeader hdr;
    hdr.consumer_op = consumer_op;
    hdr.dest_index = dest;
    hdr.port = static_cast<uint32_t>(port);
    PushShmRecord(WorkerOf(consumer.processors[dest]), ShmRecordType::kEos,
                  &hdr, sizeof(hdr), nullptr, 0);
    return;
  }
  std::vector<std::byte> payload;
  EncodeRouteHeader(
      RouteHeader{consumer_op, dest, static_cast<uint8_t>(port)}, &payload);
  chan_->QueueFrame(FrameType::kEos, payload);
}

void WorkerRun::FinishInstance(WorkerInstance* inst) {
  if (aborted()) return;
  MJOIN_CHECK(!inst->complete);
  inst->complete = true;
  const XraOp& o = op(inst->op_id_);
  for (uint32_t d = 0; d < inst->out_pending.size(); ++d) {
    FlushDest(inst, d);
  }
  if (aborted()) return;
  if (o.consumer >= 0 && o.store_result < 0) {
    const XraOp& consumer_op = op(o.consumer);
    bool networked =
        consumer_op.inputs[o.consumer_port].routing == Routing::kHashSplit;
    if (networked) {
      for (uint32_t d = 0; d < consumer_op.processors.size(); ++d) {
        SendEosTo(inst->op_id_, o.consumer, d, o.consumer_port);
      }
    } else {
      SendEosTo(inst->op_id_, o.consumer, inst->index_, o.consumer_port);
    }
  }
  QueueMilestone(inst->op_id_, inst->index_, Milestone::kComplete);
}

void WorkerRun::QueueMilestone(int op_id, uint32_t index,
                               Milestone milestone) {
  std::vector<std::byte> payload;
  EncodeMilestone(
      MilestoneMsg{static_cast<int32_t>(op_id), index, milestone}, &payload);
  chan_->QueueFrame(FrameType::kMilestone, payload);
}

Status WorkerRun::HandleTrigger(const Frame& frame) {
  WireReader reader(frame.payload);
  int32_t group;
  MJOIN_RETURN_IF_ERROR(reader.ReadI32(&group));
  if (group < 0 || static_cast<size_t>(group) >= plan_.groups.size()) {
    return Status::OutOfRange(StrCat("trigger for unknown group ", group));
  }
  for (int op_id : plan_.groups[static_cast<size_t>(group)].ops) {
    for (auto& inst : instances_[static_cast<size_t>(op_id)]) {
      if (inst != nullptr) TriggerInstance(inst.get());
    }
  }
  return Status::OK();
}

Status WorkerRun::HandleFragment(const Frame& frame) {
  WireReader reader(frame.payload);
  FragmentHeader header;
  MJOIN_RETURN_IF_ERROR(DecodeFragmentHeader(&reader, &header));
  if (header.op < 0 || static_cast<size_t>(header.op) >= plan_.ops.size() ||
      op(header.op).kind != XraOpKind::kScan) {
    return Status::InvalidArgument(
        StrCat("fragment for non-scan op ", header.op));
  }
  auto& frags = scan_fragments_[static_cast<size_t>(header.op)];
  if (header.instance >= frags.size() ||
      !Hosts(op(header.op).processors[header.instance])) {
    return Status::InvalidArgument(
        StrCat("fragment for op ", header.op, " instance ", header.instance,
               " which this worker does not host"));
  }
  std::shared_ptr<TupleBatch> batch =
      pool_->Acquire(op(header.op).output_schema);
  MJOIN_RETURN_IF_ERROR(ReadBatchWire(&reader, registry_, batch.get()));
  frags[header.instance].AppendRows(batch->raw_data(), batch->num_tuples());
  return Status::OK();
}

Status WorkerRun::HandleData(const Frame& frame) {
  WireReader reader(frame.payload);
  RouteHeader route;
  MJOIN_RETURN_IF_ERROR(DecodeRouteHeader(&reader, &route));
  if (route.consumer_op < 0 ||
      static_cast<size_t>(route.consumer_op) >= plan_.ops.size() ||
      route.dest_index >= op(route.consumer_op).processors.size()) {
    return Status::InvalidArgument("data frame routed to unknown instance");
  }
  const XraOp& consumer_op = op(route.consumer_op);
  if (!Hosts(consumer_op.processors[route.dest_index])) {
    return Status::InvalidArgument(
        StrCat("data frame for op ", route.consumer_op, " instance ",
               route.dest_index, " misrouted to worker ", env_.worker_id));
  }
  WorkerInstance* target = instance(route.consumer_op, route.dest_index);
  if (injector_ != nullptr) injector_->OnDequeue(target->processor_);
  // The initial schema binding is a placeholder — ReadBatchWire rebinds the
  // batch to the wire frame's registry schema.
  std::shared_ptr<TupleBatch> batch =
      pool_->Acquire(consumer_op.output_schema);
  // Timed unconditionally, like the serialize side: the wire-time counters
  // must survive collect_metrics=false (the bench's configuration).
  int64_t t0 = NowNs();
  MJOIN_RETURN_IF_ERROR(ReadBatchWire(&reader, registry_, batch.get()));
  int64_t t1 = NowNs();
  stats_.deserialize_seconds += static_cast<double>(t1 - t0) * 1e-9;
  RecordTrace(target->processor_, t0, t1, ThreadWorkType::kDeserialize,
              route.consumer_op);
  int port = route.port;
  if (target->started) {
    OnBatch(target, port, *batch);
  } else {
    target->pre_start.push_back(
        [this, target, port, batch] { OnBatch(target, port, *batch); });
  }
  // The credit is released once the frame is consumed or parked — parked
  // batches occupy worker memory but no longer gate the wire, mirroring
  // the thread backend's bound on *queued* (undrained) batches.
  ++credits_;
  return Status::OK();
}

Status WorkerRun::HandleEos(const Frame& frame) {
  WireReader reader(frame.payload);
  RouteHeader route;
  MJOIN_RETURN_IF_ERROR(DecodeRouteHeader(&reader, &route));
  if (route.consumer_op < 0 ||
      static_cast<size_t>(route.consumer_op) >= plan_.ops.size() ||
      route.dest_index >= op(route.consumer_op).processors.size() ||
      !Hosts(op(route.consumer_op).processors[route.dest_index])) {
    return Status::InvalidArgument("eos frame routed to unknown instance");
  }
  WorkerInstance* target = instance(route.consumer_op, route.dest_index);
  if (injector_ != nullptr) injector_->OnDequeue(target->processor_);
  int port = route.port;
  if (target->started) {
    OnEos(target, port);
  } else {
    target->pre_start.push_back(
        [this, target, port] { OnEos(target, port); });
  }
  return Status::OK();
}

bool WorkerRun::InboundRingsNonEmpty() {
  for (size_t i : plane_->InboundRings(env_.worker_id)) {
    if (!plane_->ring(i)->Empty()) return true;
  }
  return false;
}

Status WorkerRun::DrainInboundRings() {
  if (plane_ == nullptr) return Status::OK();
  for (size_t ring_index : plane_->InboundRings(env_.worker_id)) {
    ShmRing* ring = plane_->ring(ring_index);
    // Bounded drain: only records already published when we got here. A
    // producer publishing at full speed cannot pin this loop turn forever.
    const uint64_t limit = ring->tail_cursor();
    bool released = false;
    while (ring->head_cursor() < limit && !aborted()) {
      ShmRecordView rec;
      MJOIN_ASSIGN_OR_RETURN(bool any, ring->TryRead(&rec));
      if (!any) break;  // only pads remained below the snapshot
      MJOIN_RETURN_IF_ERROR(ConsumeShmRecord(ring, rec));
      released = true;
    }
    if (released) {
      // Space doorbell: the producer may be sitting on a full-ring backlog.
      doorbell_dirty_[plane_->spec(ring_index).from] = true;
    }
  }
  return Status::OK();
}

Status WorkerRun::ConsumeShmRecord(ShmRing* ring, const ShmRecordView& rec) {
  ++stats_.shm_records_received;
  stats_.shm_bytes_received += rec.payload_bytes;
  switch (rec.type) {
    case ShmRecordType::kData:
      return ConsumeShmData(ring, rec);
    case ShmRecordType::kEos:
      return ConsumeShmEos(ring, rec);
    case ShmRecordType::kFragment:
      return ConsumeShmFragment(ring, rec);
    // kResultRows flows worker -> coordinator only, and TryRead swallows
    // pads; listing them keeps -Wswitch honest about new record types.
    case ShmRecordType::kResultRows:
    case ShmRecordType::kPad:
      break;
  }
  ring->Release();
  return Status::InvalidArgument(StrCat("worker received unexpected shm ",
                                        ShmRecordTypeName(rec.type),
                                        " record"));
}

Status WorkerRun::ConsumeShmData(ShmRing* ring, const ShmRecordView& rec) {
  ShmDataHeader hdr;
  if (rec.payload_bytes < sizeof(hdr)) {
    ring->Release();
    return Status::Unavailable("corrupt shm record: short data header");
  }
  std::memcpy(&hdr, rec.payload, sizeof(hdr));
  if (hdr.consumer_op < 0 ||
      static_cast<size_t>(hdr.consumer_op) >= plan_.ops.size() ||
      hdr.dest_index >= op(hdr.consumer_op).processors.size()) {
    ring->Release();
    return Status::InvalidArgument("shm data record routed to unknown "
                                   "instance");
  }
  const XraOp& consumer_op = op(hdr.consumer_op);
  if (!Hosts(consumer_op.processors[hdr.dest_index])) {
    ring->Release();
    return Status::InvalidArgument(
        StrCat("shm data record for op ", hdr.consumer_op, " instance ",
               hdr.dest_index, " misrouted to worker ", env_.worker_id));
  }
  if (hdr.schema_id >= registry_.size()) {
    ring->Release();
    return Status::Unavailable("corrupt shm record: unknown schema id");
  }
  const std::shared_ptr<const Schema>& schema = registry_.Get(hdr.schema_id);
  if (schema->tuple_size() != hdr.tuple_size ||
      rec.payload_bytes !=
          sizeof(hdr) + uint64_t{hdr.num_tuples} * hdr.tuple_size) {
    ring->Release();
    return Status::Unavailable("corrupt shm record: row bytes disagree "
                               "with the data header");
  }
  WorkerInstance* target = instance(hdr.consumer_op, hdr.dest_index);
  if (injector_ != nullptr) injector_->OnDequeue(target->processor_);
  // "Deserialize" here is the plane's whole point: one bounds-checked
  // memcpy out of the shared region. Timed unconditionally like the wire
  // decode so the bench sees where transport time goes.
  std::shared_ptr<TupleBatch> batch = pool_->Acquire(schema);
  int64_t t0 = NowNs();
  batch->AppendRows(rec.payload + sizeof(hdr), hdr.num_tuples);
  int64_t t1 = NowNs();
  stats_.deserialize_seconds += static_cast<double>(t1 - t0) * 1e-9;
  RecordTrace(target->processor_, t0, t1, ThreadWorkType::kDeserialize,
              hdr.consumer_op);
  // Rows are copied out: hand the space back before the possibly long
  // Consume below, so the producer keeps streaming while we join.
  ring->Release();
  const int port = static_cast<int>(hdr.port);
  if (target->started) {
    OnBatch(target, port, *batch);
  } else {
    WorkerInstance* t = target;
    t->pre_start.push_back([this, t, port, batch] { OnBatch(t, port, *batch); });
  }
  return Status::OK();
}

Status WorkerRun::ConsumeShmEos(ShmRing* ring, const ShmRecordView& rec) {
  ShmEosHeader hdr;
  if (rec.payload_bytes != sizeof(hdr)) {
    ring->Release();
    return Status::Unavailable("corrupt shm record: bad eos header");
  }
  std::memcpy(&hdr, rec.payload, sizeof(hdr));
  ring->Release();
  if (hdr.consumer_op < 0 ||
      static_cast<size_t>(hdr.consumer_op) >= plan_.ops.size() ||
      hdr.dest_index >= op(hdr.consumer_op).processors.size() ||
      !Hosts(op(hdr.consumer_op).processors[hdr.dest_index])) {
    return Status::InvalidArgument("shm eos record routed to unknown "
                                   "instance");
  }
  WorkerInstance* target = instance(hdr.consumer_op, hdr.dest_index);
  if (injector_ != nullptr) injector_->OnDequeue(target->processor_);
  const int port = static_cast<int>(hdr.port);
  if (target->started) {
    OnEos(target, port);
  } else {
    WorkerInstance* t = target;
    t->pre_start.push_back([this, t, port] { OnEos(t, port); });
  }
  return Status::OK();
}

Status WorkerRun::ConsumeShmFragment(ShmRing* ring, const ShmRecordView& rec) {
  ShmFragmentHeader hdr;
  if (rec.payload_bytes < sizeof(hdr)) {
    ring->Release();
    return Status::Unavailable("corrupt shm record: short fragment header");
  }
  std::memcpy(&hdr, rec.payload, sizeof(hdr));
  if (hdr.op < 0 || static_cast<size_t>(hdr.op) >= plan_.ops.size() ||
      op(hdr.op).kind != XraOpKind::kScan) {
    ring->Release();
    return Status::InvalidArgument(
        StrCat("shm fragment for non-scan op ", hdr.op));
  }
  auto& frags = scan_fragments_[static_cast<size_t>(hdr.op)];
  if (hdr.instance >= frags.size() ||
      !Hosts(op(hdr.op).processors[hdr.instance])) {
    ring->Release();
    return Status::InvalidArgument(
        StrCat("shm fragment for op ", hdr.op, " instance ", hdr.instance,
               " which this worker does not host"));
  }
  if (hdr.schema_id >= registry_.size() ||
      registry_.Get(hdr.schema_id)->tuple_size() != hdr.tuple_size ||
      rec.payload_bytes !=
          sizeof(hdr) + uint64_t{hdr.num_tuples} * hdr.tuple_size) {
    ring->Release();
    return Status::Unavailable("corrupt shm record: row bytes disagree "
                               "with the fragment header");
  }
  frags[hdr.instance].AppendRows(rec.payload + sizeof(hdr), hdr.num_tuples);
  ring->Release();
  return Status::OK();
}

Status WorkerRun::SendFinishReports() {
  const XraOp* storer = nullptr;
  for (const XraOp& o : plan_.ops) {
    if (o.store_result == plan_.final_result) storer = &o;
  }
  MJOIN_CHECK(storer != nullptr);

  // Partial result summary over this worker's fragments of the final
  // result (the checksum is a sum mod 2^64, so per-worker summaries add up
  // to the query's).
  SummaryMsg summary;
  const auto& final_frags =
      stored_[static_cast<size_t>(plan_.final_result)];
  std::vector<const Relation*> hosted;
  for (size_t i = 0; i < final_frags.size(); ++i) {
    if (!Hosts(storer->processors[i])) continue;
    ResultSummary frag = SummarizeRelation(final_frags[i]);
    summary.cardinality += frag.cardinality;
    summary.checksum += frag.checksum;
    hosted.push_back(&final_frags[i]);
  }
  std::vector<std::byte> payload;
  EncodeSummary(summary, &payload);
  chan_->QueueFrame(FrameType::kSummary, payload);

  if (env_.materialize_result) {
    MJOIN_ASSIGN_OR_RETURN(uint32_t schema_id,
                           registry_.IdOf(*storer->output_schema));
    uint32_t tuple_size = storer->output_schema->tuple_size();
    // Ship fragments in bounded chunks so one giant result does not
    // produce one giant frame (or one over-large ring record).
    const bool use_ring =
        plane_ != nullptr &&
        sizeof(ShmResultRowsHeader) + tuple_size <= shm_max_payload_;
    const size_t rows_per_frame =
        use_ring
            ? (shm_max_payload_ - sizeof(ShmResultRowsHeader)) / tuple_size
            : std::max<size_t>(1, (4u << 20) / tuple_size);
    for (const Relation* frag : hosted) {
      size_t offset = 0;
      while (offset < frag->num_tuples()) {
        size_t count = std::min(rows_per_frame, frag->num_tuples() - offset);
        if (use_ring) {
          ShmResultRowsHeader hdr;
          hdr.schema_id = schema_id;
          hdr.tuple_size = tuple_size;
          hdr.num_tuples = static_cast<uint32_t>(count);
          PushShmRecord(coord_ep_, ShmRecordType::kResultRows, &hdr,
                        sizeof(hdr), frag->raw_data() + offset * tuple_size,
                        count * tuple_size);
        } else {
          std::vector<std::byte> rows_payload;
          AppendRowsWire(schema_id, tuple_size,
                         frag->raw_data() + offset * tuple_size, count,
                         &rows_payload);
          chan_->QueueFrame(FrameType::kResultRows, rows_payload);
        }
        offset += count;
      }
    }
  }

  if (env_.collect_metrics) {
    for (const XraOp& o : plan_.ops) {
      OpStatsMsg msg;
      msg.op = o.id;
      for (const auto& inst : instances_[static_cast<size_t>(o.id)]) {
        if (inst == nullptr) continue;
        ++msg.instances;
        msg.metrics.MergeFrom(inst->op_metrics);
        msg.metrics.rows_out += inst->writer.rows_committed();
        msg.metrics.skew_bloom_filtered_rows += inst->writer.rows_dropped();
        msg.metrics.skew_repartitioned_rows +=
            inst->writer.rows_repartitioned();
        inst->oper->CollectMetrics(&msg.metrics);
        msg.metrics.peak_memory_bytes += inst->oper->peak_memory_bytes();
      }
      if (msg.instances == 0) continue;
      std::vector<std::byte> stats_payload;
      EncodeOpStats(msg, &stats_payload);
      chan_->QueueFrame(FrameType::kOpStats, stats_payload);
    }
  }

  stats_.buffers_allocated = pool_->allocated() - pool_allocated_base_;
  stats_.buffers_reused = pool_->reused() - pool_reused_base_;
  stats_.peak_memory_bytes = budget_.peak();
  if (injector_ != nullptr) {
    stats_.faults_injected = injector_->faults_injected();
  }
  std::vector<std::byte> net_payload;
  EncodeWorkerRunStats(stats_, &net_payload);
  chan_->QueueFrame(FrameType::kNetStats, net_payload);

  if (env_.record_trace && !trace_events_.empty()) {
    std::vector<std::byte> trace_payload;
    EncodeTraceEvents(trace_events_, &trace_payload);
    chan_->QueueFrame(FrameType::kTraceEvents, trace_payload);
  }

  // kBye is the coordinator's signal that this worker's reporting is
  // complete, so it must trail every ring record still parked in a
  // backlog; the loop queues it once the backlogs drain.
  bye_pending_ = true;
  return Status::OK();
}

Status WorkerRun::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kTrigger:
      return HandleTrigger(frame);
    case FrameType::kFragment:
      return HandleFragment(frame);
    case FrameType::kData:
      return HandleData(frame);
    case FrameType::kEos:
      return HandleEos(frame);
    case FrameType::kSkewDirective:
      return HandleSkewDirective(frame);
    case FrameType::kFinish:
      return SendFinishReports();
    case FrameType::kPing: {
      // Answer immediately, before any query work: liveness must not queue
      // behind a long build. The pong reuses the ping's sequence number.
      WireReader reader(frame.payload);
      HeartbeatMsg ping;
      MJOIN_RETURN_IF_ERROR(DecodeHeartbeat(&reader, &ping));
      std::vector<std::byte> payload;
      EncodeHeartbeat(ping, &payload);
      chan_->QueueFrame(FrameType::kPong, payload);
      return Status::OK();
    }
    case FrameType::kShutdown:
      shutdown_ = true;
      return Status::OK();
    // Frames the table says never arrive at a worker (worker-to-
    // coordinator and serve-layer classes), generated from
    // MJOIN_FRAME_TABLE. kPlan is class CW but handled by the parked
    // outer loop, never here. The switch stays default:-free so -Wswitch
    // flags any new wire frame that is silently unrouted here.
    case FrameType::kPlan:
    MJOIN_FRAME_CASES(NOT_CW)
      break;
  }
  return Status::InvalidArgument(StrCat(
      "worker received unexpected ", FrameTypeName(frame.type), " frame"));
}

Status WorkerRun::Loop() {
  for (;;) {
    if (plane_ != nullptr) {
      RetryBacklogs();
      RingDirtyDoorbells();
    }
    MJOIN_RETURN_IF_ERROR(chan_->Flush());
    bool peer_closed = false;
    MJOIN_RETURN_IF_ERROR(chan_->ReadAvailable(&peer_closed));
    // Ring records are consumed before any control frame: the peer rings,
    // then sends its frames, so a kTrigger or kFinish read just now can
    // rely on every record published before it being delivered already.
    MJOIN_RETURN_IF_ERROR(DrainInboundRings());
    if (aborted()) return run_status_;
    Frame frame;
    while (chan_->NextFrame(&frame)) {
      MJOIN_RETURN_IF_ERROR(HandleFrame(frame));
      if (aborted()) return run_status_;
      if (shutdown_) {
        return chan_->Flush();
      }
    }
    if (aborted()) return run_status_;
    if (peer_closed) {
      return Status::Unavailable("coordinator closed the socket");
    }
    if (credits_ > 0) {
      // One coalesced credit return per poll cycle: every data frame the
      // cycle consumed releases its credit in a single kCredit, flushed
      // here instead of burning a dedicated send-only loop turn per frame.
      std::vector<std::byte> payload;
      PutU32(&payload, credits_);
      credits_ = 0;
      chan_->QueueFrame(FrameType::kCredit, payload);
      MJOIN_RETURN_IF_ERROR(chan_->Flush());
    }
    if (bye_pending_ && ring_backlog_bytes_ == 0) {
      bye_pending_ = false;
      chan_->QueueFrame(FrameType::kBye, {});
      continue;  // flush before waiting
    }
    if (!pump_queue_.empty()) {
      if (chan_->pending_output_bytes() < kOutboxWatermark &&
          ring_backlog_bytes_ < kOutboxWatermark) {
        PumpSources();
        if (aborted()) return run_status_;
        continue;
      }
      ++stats_.pump_stalls;
    }
    if (plane_ != nullptr) RingDirtyDoorbells();
    if (chan_->has_frames()) continue;
    if (plane_ != nullptr && InboundRingsNonEmpty()) continue;
    // Nothing runnable: wait for the socket (readable, or writable when
    // the outbox is backed up) or our doorbell (a peer published records
    // or released ring space). A nonempty backlog caps the wait — the
    // space we need may already exist with no doorbell owed to us.
    struct pollfd pfds[2];
    pfds[0].fd = chan_->fd();
    pfds[0].events = static_cast<short>(
        POLLIN | (chan_->has_pending_output() ? POLLOUT : 0));
    pfds[0].revents = 0;
    nfds_t nfds = 1;
    if (plane_ != nullptr) {
      pfds[1].fd = plane_->doorbell(env_.worker_id);
      pfds[1].events = POLLIN;
      pfds[1].revents = 0;
      nfds = 2;
    }
    const int timeout_ms =
        plane_ != nullptr && ring_backlog_bytes_ > 0 ? 10 : 1000;
    int rc = poll(pfds, nfds, timeout_ms);
    if (rc < 0 && errno != EINTR) {
      return Status::Internal("worker poll failed");
    }
    if (plane_ != nullptr) plane_->DrainDoorbell(env_.worker_id);
  }
}

}  // namespace

int RunProcessWorker(int fd, ShmDataPlane* plane, ShmArena* arena) {
  // The channel sends with MSG_NOSIGNAL, but ignore SIGPIPE anyway so no
  // stray write to a dead coordinator can kill the worker with a signal
  // instead of the EPIPE -> kUnavailable path the supervisor understands.
  signal(SIGPIPE, SIG_IGN);
  if (!SetNonBlocking(fd).ok()) return 1;
  FrameChannel chan(fd, "coordinator");
  chan.EnableConformance(LinkRole::kWorker);
  // Worker-lifetime buffer pool: in persistent mode, steady-state queries
  // after the first reuse its freelist instead of allocating.
  BatchPool pool;

  auto fail = [&chan, fd](const Status& status) {
    std::vector<std::byte> payload;
    EncodeStatusPayload(status, &payload);
    chan.QueueFrame(FrameType::kError, payload);
    // Best effort: the coordinator may already be gone.
    for (int i = 0; i < 100 && chan.has_pending_output(); ++i) {
      if (!chan.Flush().ok()) break;
      if (!chan.has_pending_output()) break;
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      poll(&pfd, 1, 50);
    }
    return 1;
  };

  for (;;) {
    // Parked: wait for the next kPlan. A warm fleet idles here for
    // arbitrarily long between queries, so a WaitReadable timeout just
    // re-arms the wait; death of the coordinating process surfaces as EOF
    // (peer_closed) because the socketpair end it held is closed then.
    Frame plan_frame;
    for (;;) {
      bool peer_closed = false;
      if (!chan.ReadAvailable(&peer_closed).ok()) return 1;
      if (chan.NextFrame(&plan_frame)) break;
      if (peer_closed) return 1;
      StatusOr<bool> readable = WaitReadable(fd, 30'000);
      if (!readable.ok()) return 1;
    }
    // A persistent worker parks after its kIdle ack; the fleet's teardown
    // then sends a bare kShutdown to exit it cleanly.
    if (plan_frame.type == FrameType::kShutdown) return 0;
    if (plan_frame.type != FrameType::kPlan) return 1;

    PlanEnvelope env;
    {
      WireReader reader(plan_frame.payload);
      Status status = DecodePlanEnvelope(&reader, &env);
      if (!status.ok()) return fail(status);
    }
    if (env.protocol_version != kNetProtocolVersion) {
      return fail(Status::FailedPrecondition(
          StrCat("protocol version mismatch: coordinator speaks ",
                 env.protocol_version, ", worker speaks ",
                 kNetProtocolVersion)));
    }
    StatusOr<ParallelPlan> plan = ParsePlan(env.plan_text);
    if (!plan.ok()) return fail(plan.status());

    // The hello hash is FNV over our *re-serialization* of the parsed plan:
    // every process-backend query round-trips the textual XRA format and
    // the coordinator verifies the result. With the shm plane on, the hello
    // also echoes the ring directory this worker derived from its own parse
    // — the coordinator rejects the fleet before any record can cross a
    // divergent directory.
    ShmDataPlane* data_plane = nullptr;
    std::unique_ptr<ShmDataPlane> arena_view;
    HelloMsg hello;
    hello.protocol_version = kNetProtocolVersion;
    hello.plan_hash = FnvHash64(SerializePlan(*plan));
    if (env.use_shm_data_plane) {
      std::vector<ShmRingSpec> directory =
          ComputeRingDirectory(*plan, env.num_workers);
      hello.ring_directory_hash = ShmDataPlane::HashDirectory(
          directory, env.num_workers + 1, env.shm_ring_bytes);
      if (arena != nullptr) {
        // Warm fleet: lay this query's ring view over the inherited arena.
        // The coordinator formatted the rings before sending kPlan, so the
        // worker only attaches.
        StatusOr<std::unique_ptr<ShmDataPlane>> view =
            ShmDataPlane::CreateInArena(arena, std::move(directory),
                                        env.num_workers + 1,
                                        env.shm_ring_bytes,
                                        /*format=*/false);
        if (!view.ok()) return fail(view.status());
        arena_view = std::move(view).value();
        data_plane = arena_view.get();
      } else if (plane != nullptr) {
        data_plane = plane;
      } else {
        return fail(Status::Internal(
            "plan enables the shm data plane but the worker inherited none"));
      }
    }
    std::vector<std::byte> hello_payload;
    EncodeHello(hello, &hello_payload);
    chan.QueueFrame(FrameType::kHello, hello_payload);
    if (!chan.Flush().ok()) return 1;

    const bool persistent = env.persistent;
    {
      WorkerRun run(&chan, std::move(env), std::move(plan).value(),
                    data_plane, &pool);
      Status status = run.Setup();
      if (status.ok()) status = run.Loop();
      if (!status.ok()) return fail(status);
    }
    // The query's state (and its arena view) is down before the idle ack:
    // once the coordinator sees kIdle from every worker it may reformat the
    // arena's rings for the next query.
    arena_view.reset();
    if (!persistent) return 0;
    chan.QueueFrame(FrameType::kIdle, {});
    for (int i = 0; i < 100 && chan.has_pending_output(); ++i) {
      if (!chan.Flush().ok()) return 1;
      if (!chan.has_pending_output()) break;
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      poll(&pfd, 1, 50);
    }
    if (chan.has_pending_output()) return 1;
  }
}

}  // namespace mjoin
