#ifndef MJOIN_ENGINE_PROCESS_PROTOCOL_H_
#define MJOIN_ENGINE_PROCESS_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/statusor.h"
#include "engine/thread_trace.h"
#include "exec/operator.h"
#include "net/shm_ring.h"
#include "net/wire.h"
#include "skew/defense.h"
#include "xra/plan.h"

namespace mjoin {

/// Payload codecs of the process backend's frame protocol (net/wire.h
/// defines the frames themselves). Both ends — ProcessExecutor in the
/// coordinator and RunProcessWorker in each worker — include this header,
/// so an encoding change cannot leave the two out of sync.

/// kPlan: everything a worker needs to run its share of a query. The plan
/// itself travels as textual XRA (xra/text.h) — the same serialization a
/// cluster deployment would ship — and the worker echoes a hash of its
/// re-serialized parse in kHello, making every query a round-trip test of
/// the plan format.
struct PlanEnvelope {
  uint32_t protocol_version = kNetProtocolVersion;
  uint32_t worker_id = 0;
  uint32_t num_workers = 1;
  uint32_t batch_size = 256;
  bool materialize_result = false;
  uint64_t max_queued_batches = 0;
  /// Applied verbatim in each worker: a shared-nothing node budgets its
  /// own memory, so the effective query-wide budget is num_workers times
  /// this value.
  uint64_t memory_budget_bytes = 0;
  bool collect_metrics = true;
  bool record_trace = false;
  /// The coordinator's trace origin (steady_clock time-since-epoch, ns).
  /// CLOCK_MONOTONIC is process-agnostic on Linux, so workers timestamp
  /// their trace events against the coordinator's t=0 directly.
  int64_t trace_origin_ns = 0;
  /// SerializeFaultScenario text; empty = no injection.
  std::string fault_scenario;
  std::string plan_text;
  /// 0-based execution attempt (> 0 on coordinator-driven retries). Lets a
  /// shipped FaultScenario with `on_attempt` fire on one attempt only.
  uint32_t attempt = 0;
  /// Data batches travel over the inherited shm ring directory instead of
  /// the socket (the control frames stay on AF_UNIX either way).
  bool use_shm_data_plane = false;
  /// Per-ring data bytes of the directory the coordinator mapped.
  uint32_t shm_ring_bytes = 0;
  /// Warm-fleet mode: after this query's kShutdown the worker tears down
  /// its query state, acks with kIdle, and parks waiting for the next
  /// kPlan instead of exiting. kShutdown received while parked (or EOF)
  /// exits the worker. Off (the default) keeps the one-shot lifecycle:
  /// kShutdown exits immediately.
  bool persistent = false;
  /// Skew defense configuration. Shipped in full so the worker derives the
  /// same defended-join set (DefendedJoinOps + enabled()) and the same
  /// local hot thresholds the coordinator's merger assumes.
  SkewDefenseOptions skew_defense;
};

void EncodePlanEnvelope(const PlanEnvelope& env, std::vector<std::byte>* out);
[[nodiscard]] Status DecodePlanEnvelope(WireReader* reader, PlanEnvelope* env);

/// kHello.
struct HelloMsg {
  uint32_t protocol_version = 0;
  /// FNV-1a over SerializePlan(worker's parsed plan).
  uint64_t plan_hash = 0;
  /// ShmDataPlane::HashDirectory over the ring directory the worker derived
  /// from its parsed plan (0 when the shm plane is off). The coordinator
  /// compares it against the directory it actually mapped, so a divergent
  /// plan parse can never read or write the wrong ring.
  uint64_t ring_directory_hash = 0;
};

void EncodeHello(const HelloMsg& msg, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeHello(WireReader* reader, HelloMsg* msg);

/// kPing / kPong: liveness probes. The payload carries its own checksum on
/// top of the channel's frame CRC, so the codec alone (as exercised by the
/// wire tests) detects a corrupted sequence number.
struct HeartbeatMsg {
  uint32_t seq = 0;
};

void EncodeHeartbeat(const HeartbeatMsg& msg, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeHeartbeat(WireReader* reader, HeartbeatMsg* msg);

/// Routing header of kData / kEos (the batch wire bytes follow for kData).
struct RouteHeader {
  int32_t consumer_op = -1;
  uint32_t dest_index = 0;
  uint8_t port = 0;
};

void EncodeRouteHeader(const RouteHeader& route, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeRouteHeader(WireReader* reader, RouteHeader* route);

/// kFragment header (batch wire bytes follow).
struct FragmentHeader {
  int32_t op = -1;
  uint32_t instance = 0;
};

void EncodeFragmentHeader(const FragmentHeader& header,
                          std::vector<std::byte>* out);
[[nodiscard]] Status DecodeFragmentHeader(WireReader* reader,
                                          FragmentHeader* header);

/// kMilestone.
struct MilestoneMsg {
  int32_t op = -1;
  uint32_t instance = 0;
  Milestone milestone = Milestone::kComplete;
};

void EncodeMilestone(const MilestoneMsg& msg, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeMilestone(WireReader* reader, MilestoneMsg* msg);

/// kSummary.
struct SummaryMsg {
  uint64_t cardinality = 0;
  uint64_t checksum = 0;
};

void EncodeSummary(const SummaryMsg& msg, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeSummary(WireReader* reader, SummaryMsg* msg);

/// kOpStats: one op's metrics merged over the sending worker's hosted
/// instances (the coordinator further merges across workers).
struct OpStatsMsg {
  int32_t op = -1;
  uint32_t instances = 0;
  OpMetrics metrics;
};

void EncodeOpStats(const OpStatsMsg& msg, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeOpStats(WireReader* reader, OpStatsMsg* msg);

/// kSkewReport: one defended join instance's build-side summary
/// (skew/defense.h). Candidate build rows travel inline in the frame —
/// never over the shm rings — so the report can overtake no data record
/// it logically follows.
void EncodeSkewReport(const SkewJoinReport& report,
                      std::vector<std::byte>* out);
[[nodiscard]] Status DecodeSkewReport(WireReader* reader,
                                      SkewJoinReport* report);

/// kSkewDirective: the merged plan of action for one defended join.
void EncodeSkewDirective(const SkewDirective& directive,
                         std::vector<std::byte>* out);
[[nodiscard]] Status DecodeSkewDirective(WireReader* reader,
                                         SkewDirective* directive);

/// kNetStats: one worker's run-level counters.
struct WorkerRunStats {
  /// Remote data frames shipped to the coordinator for routing.
  uint64_t data_frames_sent = 0;
  /// Batches handed directly to a consumer instance on the same worker
  /// (never serialized — the process analogue of a same-node send).
  uint64_t local_deliveries = 0;
  /// Batches consumed by operators (remote + local).
  uint64_t batches_processed = 0;
  uint64_t batches_dropped = 0;
  uint64_t batches_duplicated = 0;
  /// Times the source pump deferred because the outbox was over the
  /// watermark (the worker-side half of flow control).
  uint64_t pump_stalls = 0;
  uint64_t buffers_allocated = 0;
  uint64_t buffers_reused = 0;
  uint64_t faults_injected = 0;
  uint64_t peak_memory_bytes = 0;
  double serialize_seconds = 0;
  double deserialize_seconds = 0;
  /// Shm data-plane traffic as seen from this worker (records carry data,
  /// EOS, fragments, and result rows; pads are excluded).
  uint64_t shm_records_sent = 0;
  uint64_t shm_records_received = 0;
  uint64_t shm_bytes_sent = 0;
  uint64_t shm_bytes_received = 0;
  /// Records that found their ring full and were parked in the outbound
  /// backlog (the shm analogue of a credit stall).
  uint64_t ring_full_stalls = 0;
};

void EncodeWorkerRunStats(const WorkerRunStats& stats,
                          std::vector<std::byte>* out);
[[nodiscard]] Status DecodeWorkerRunStats(WireReader* reader,
                                          WorkerRunStats* stats);

/// kTraceEvents: a worker's recorded busy intervals, timestamped against
/// the coordinator's origin. `node` is the plan processor (its lane).
struct WireTraceEvent {
  uint32_t node = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  ThreadWorkType type = ThreadWorkType::kOther;
  int32_t op_id = -1;
};

void EncodeTraceEvents(const std::vector<WireTraceEvent>& events,
                       std::vector<std::byte>* out);
[[nodiscard]] Status DecodeTraceEvents(WireReader* reader,
                         std::vector<WireTraceEvent>* events);

/// kError: a worker's fatal status, reconstructed coordinator-side.
void EncodeStatusPayload(const Status& status, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeStatusPayload(WireReader* reader, Status* status);

/// FNV-1a (64-bit) over arbitrary text; the kHello plan-echo hash.
uint64_t FnvHash64(const std::string& text);

/// Payload layouts of the shm data plane's records (net/shm_ring.h). These
/// are memcpy'd PODs, not byte-order codecs: every process in the fleet is
/// forked from one binary and shares one mapping, so the in-memory layout
/// IS the wire layout — exactly the property that makes "serialize" a
/// bounds-checked memcpy. Raw rows (tuple_size * num_tuples bytes) follow
/// each header inside the record payload.
struct ShmDataHeader {
  int32_t consumer_op = -1;
  uint32_t dest_index = 0;
  uint32_t port = 0;
  uint32_t schema_id = 0;
  uint32_t tuple_size = 0;
  uint32_t num_tuples = 0;
};
static_assert(std::is_trivially_copyable_v<ShmDataHeader> &&
                  sizeof(ShmDataHeader) == 24,
              "shm record headers are raw-copied PODs");

struct ShmEosHeader {
  int32_t consumer_op = -1;
  uint32_t dest_index = 0;
  uint32_t port = 0;
};
static_assert(std::is_trivially_copyable_v<ShmEosHeader> &&
                  sizeof(ShmEosHeader) == 12,
              "shm record headers are raw-copied PODs");

struct ShmFragmentHeader {
  int32_t op = -1;
  uint32_t instance = 0;
  uint32_t schema_id = 0;
  uint32_t tuple_size = 0;
  uint32_t num_tuples = 0;
};
static_assert(std::is_trivially_copyable_v<ShmFragmentHeader> &&
                  sizeof(ShmFragmentHeader) == 20,
              "shm record headers are raw-copied PODs");

struct ShmResultRowsHeader {
  uint32_t schema_id = 0;
  uint32_t tuple_size = 0;
  uint32_t num_tuples = 0;
};
static_assert(std::is_trivially_copyable_v<ShmResultRowsHeader> &&
                  sizeof(ShmResultRowsHeader) == 12,
              "shm record headers are raw-copied PODs");

/// The ring directory of one plan on `num_workers` workers: the relay
/// rings (coordinator <-> each worker, for fragments and result rows)
/// first, then one ring per communicating worker pair in plan order. The
/// coordinator's endpoint id is num_workers. Deterministic given (plan,
/// num_workers): the coordinator and every worker compute it independently
/// and cross-check HashDirectory in the kHello handshake.
std::vector<ShmRingSpec> ComputeRingDirectory(const ParallelPlan& plan,
                                              uint32_t num_workers);

/// Block placement of plan processors onto worker processes: processor p
/// lives in worker p*num_workers/num_processors. Contiguous processor
/// ranges keep kColocated producer/consumer pairs (and stored-result →
/// rescan pairs, which share a processor list) inside one worker whenever
/// instance counts allow.
inline uint32_t WorkerOfProcessor(uint32_t processor, uint32_t num_workers,
                                  uint32_t num_processors) {
  return static_cast<uint32_t>(static_cast<uint64_t>(processor) *
                               num_workers / num_processors);
}

}  // namespace mjoin

#endif  // MJOIN_ENGINE_PROCESS_PROTOCOL_H_
