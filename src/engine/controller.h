#ifndef MJOIN_ENGINE_CONTROLLER_H_
#define MJOIN_ENGINE_CONTROLLER_H_

#include <map>
#include <vector>

#include "xra/plan.h"

namespace mjoin {

/// Pure trigger-group bookkeeping shared by both backends: aggregates
/// per-instance milestone notifications into op-level milestones and
/// decides when trigger groups become ready. Not thread-safe; the threaded
/// backend serializes access externally.
class QueryController {
 public:
  explicit QueryController(const ParallelPlan* plan);

  /// Groups with no dependencies (ready at query start). Each group is
  /// reported ready exactly once.
  std::vector<int> TakeInitialGroups();

  /// Records that instance `instance` of op `op` reached `milestone`.
  /// Returns the groups that became ready as a consequence (possibly
  /// empty). Duplicate notifications are rejected with a CHECK.
  std::vector<int> OnInstanceMilestone(int op, uint32_t instance,
                                       Milestone milestone);

  /// True once every op has completed (all instances).
  bool AllOpsComplete() const { return complete_ops_ == plan_->ops.size(); }

  /// True once op-level `milestone` has fired for `op`.
  bool OpMilestoneFired(int op, Milestone milestone) const;

 private:
  std::vector<int> CollectReadyGroups();

  const ParallelPlan* plan_;
  // Per op: instances still to report, per milestone kind (index 0 =
  // kComplete, 1 = kBuildDone).
  std::vector<uint32_t> pending_complete_;
  std::vector<uint32_t> pending_build_done_;
  std::vector<bool> fired_complete_;
  std::vector<bool> fired_build_done_;
  std::vector<bool> group_dispatched_;
  size_t complete_ops_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_CONTROLLER_H_
