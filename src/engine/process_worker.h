#ifndef MJOIN_ENGINE_PROCESS_WORKER_H_
#define MJOIN_ENGINE_PROCESS_WORKER_H_

namespace mjoin {

class ShmArena;
class ShmDataPlane;

/// The worker half of the process backend: runs in a child process forked
/// by ProcessExecutor (one-shot) or by a WarmProcessFleet (persistent),
/// speaking the net/wire.h frame protocol over `fd` (one end of a
/// socketpair; ownership is taken).
///
/// The worker is deliberately single-threaded — one poll loop interleaves
/// frame handling with source pumping — so a fork-without-exec child never
/// touches thread creation (fork-safe under TSan) and its teardown is one
/// _exit(). It receives each plan as textual XRA in a kPlan frame,
/// instantiates the operator instances of its hosted processors, and
/// exchanges batches with the rest of the fleet.
///
/// `plane` (nullable) is a one-shot coordinator's pre-fork ShmDataPlane,
/// inherited through fork so its mapping and doorbells are valid here.
/// `arena` (nullable) is a warm fleet's fleet-lifetime ShmArena; when the
/// plan envelope enables the shm plane and an arena was inherited, the
/// worker lays a per-query ShmDataPlane view over it instead. Either way,
/// data batches, EOS markers, fragments, and result rows travel over the
/// rings while control frames stay on the socket. The child never destroys
/// the plane or arena — _exit() skips destructors, and the kernel drops its
/// reference to the shared mapping.
///
/// Lifecycle: after a one-shot query (PlanEnvelope::persistent false) the
/// worker exits on kShutdown. In persistent mode it tears down the query's
/// state, acks with kIdle, and parks waiting for the next kPlan; kShutdown
/// received while parked (or EOF) exits it. The batch pool is
/// worker-lifetime, so a warm worker's steady-state queries reuse buffers
/// instead of allocating.
///
/// Returns the exit code for the child to _exit() with: 0 after a clean
/// kShutdown, 1 on any error (a fatal status is reported to the
/// coordinator as a kError frame first whenever the socket still works).
int RunProcessWorker(int fd, ShmDataPlane* plane = nullptr,
                     ShmArena* arena = nullptr);

}  // namespace mjoin

#endif  // MJOIN_ENGINE_PROCESS_WORKER_H_
