#ifndef MJOIN_ENGINE_PROCESS_WORKER_H_
#define MJOIN_ENGINE_PROCESS_WORKER_H_

namespace mjoin {

/// The worker half of the process backend: runs in a child process forked
/// by ProcessExecutor, speaking the net/wire.h frame protocol over `fd`
/// (one end of a socketpair; ownership is taken).
///
/// The worker is deliberately single-threaded — one poll loop interleaves
/// frame handling with source pumping — so a fork-without-exec child never
/// touches thread creation (fork-safe under TSan) and its teardown is one
/// _exit(). It receives the plan as textual XRA in the kPlan handshake,
/// instantiates the operator instances of its hosted processors, and
/// exchanges batches with the rest of the fleet through the coordinator.
///
/// Returns the exit code for the child to _exit() with: 0 after a clean
/// kShutdown, 1 on any error (a fatal status is reported to the
/// coordinator as a kError frame first whenever the socket still works).
int RunProcessWorker(int fd);

}  // namespace mjoin

#endif  // MJOIN_ENGINE_PROCESS_WORKER_H_
