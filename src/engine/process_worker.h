#ifndef MJOIN_ENGINE_PROCESS_WORKER_H_
#define MJOIN_ENGINE_PROCESS_WORKER_H_

namespace mjoin {

class ShmDataPlane;

/// The worker half of the process backend: runs in a child process forked
/// by ProcessExecutor, speaking the net/wire.h frame protocol over `fd`
/// (one end of a socketpair; ownership is taken).
///
/// The worker is deliberately single-threaded — one poll loop interleaves
/// frame handling with source pumping — so a fork-without-exec child never
/// touches thread creation (fork-safe under TSan) and its teardown is one
/// _exit(). It receives the plan as textual XRA in the kPlan handshake,
/// instantiates the operator instances of its hosted processors, and
/// exchanges batches with the rest of the fleet.
///
/// `plane` (nullable) is the coordinator's pre-fork ShmDataPlane, inherited
/// through fork so its mapping and doorbells are valid here. When the plan
/// envelope enables the shm plane, data batches, EOS markers, fragments,
/// and result rows travel over its rings; control frames stay on the
/// socket. The child never destroys the plane — _exit() skips destructors,
/// and the kernel drops its reference to the shared mapping.
///
/// Returns the exit code for the child to _exit() with: 0 after a clean
/// kShutdown, 1 on any error (a fatal status is reported to the
/// coordinator as a kError frame first whenever the socket still works).
int RunProcessWorker(int fd, ShmDataPlane* plane = nullptr);

}  // namespace mjoin

#endif  // MJOIN_ENGINE_PROCESS_WORKER_H_
