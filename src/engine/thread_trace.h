#ifndef MJOIN_ENGINE_THREAD_TRACE_H_
#define MJOIN_ENGINE_THREAD_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace mjoin {

/// What a worker thread was doing during a recorded interval. Mirrors the
/// phase vocabulary of the simulator's utilization diagrams so a real-run
/// diagram reads like the paper's Figures 3-7.
enum class ThreadWorkType : uint8_t {
  kStartup,   // operator Open() and trigger handling
  kBuild,     // hash-table build / run-buffer fill
  kProbe,     // probe phase, buffered-probe replay
  kPipeline,  // symmetric pipelining work, filters
  kScan,      // source Produce() calls
  kMerge,     // sort-merge final sort+merge
  kEmit,         // pipeline-breaker output (aggregation)
  kBlocked,      // producer blocked on a full consumer queue
  kSerialize,    // batch -> wire-format encoding (process backend)
  kDeserialize,  // wire-format -> batch decoding (process backend)
  kBloomBuild,   // skew defense: sketch + Bloom scan of a build table
  kOther,
};

/// Lowercase name used as the Chrome trace category ("build", "probe",
/// "blocked", ...).
const char* ThreadWorkTypeName(ThreadWorkType type);

/// Per-op identity shown in rendered traces: the plan label as the event
/// name, the plan's single-character trace label as the diagram fill char.
struct ThreadTraceOpInfo {
  std::string name;
  char label = '?';
};

/// One busy interval of one worker thread, in nanoseconds since the run
/// started. op_id indexes the recorder's op table; -1 for intervals that
/// belong to no operation (blocked-on-queue).
struct ThreadTraceEvent {
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  int op_id = -1;
  ThreadWorkType type = ThreadWorkType::kOther;
};

/// Wall-clock analogue of the simulator's TraceRecorder: collects busy
/// intervals per worker thread during a threaded execution and renders
/// them as (a) the paper's ASCII processor-utilization diagram and (b) a
/// Chrome trace_event JSON document loadable in chrome://tracing and
/// Perfetto.
///
/// Thread-safety contract: each worker records only under its own worker
/// id (one writer per buffer, no locking); readers run after the workers
/// have been joined.
class ThreadTraceRecorder {
 public:
  ThreadTraceRecorder(uint32_t num_workers, std::vector<ThreadTraceOpInfo> ops);

  uint32_t num_workers() const { return static_cast<uint32_t>(events_.size()); }

  /// Marks "now" as t=0 for all subsequently recorded intervals.
  void SetOrigin(std::chrono::steady_clock::time_point origin) {
    origin_ = origin;
  }
  /// Nanoseconds since the origin.
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               // lint:allow-clock trace timestamp, record_trace path only
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  /// Appends one interval to `worker`'s buffer. Must be called from the
  /// worker's own thread (see the thread-safety contract above).
  void Record(uint32_t worker, int64_t start_ns, int64_t end_ns,
              ThreadWorkType type, int op_id);

  size_t num_events() const;
  const std::vector<std::vector<ThreadTraceEvent>>& events_by_worker() const {
    return events_;
  }

  /// Converts to the simulator's recorder with 1 tick = 1 microsecond
  /// (sub-microsecond intervals are dropped), for reuse of its analysis
  /// and rendering.
  TraceRecorder ToTickTrace() const;

  /// Mean busy fraction over [0, makespan_ns] across workers.
  double Utilization(int64_t makespan_ns) const;

  /// The paper's utilization diagram (one row per worker, fill char = the
  /// op's plan trace label, '~' = blocked on a full queue, '.' = idle).
  std::string RenderAscii(int64_t makespan_ns, uint32_t width = 72) const;

  /// Chrome trace_event JSON: one complete ("ph":"X") event per interval,
  /// named after the op, categorized by work type, one tid per worker.
  /// Loads directly in chrome://tracing and ui.perfetto.dev.
  std::string ToChromeJson() const;

 private:
  std::vector<ThreadTraceOpInfo> ops_;
  std::vector<std::vector<ThreadTraceEvent>> events_;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_THREAD_TRACE_H_
