#ifndef MJOIN_ENGINE_RESULT_H_
#define MJOIN_ENGINE_RESULT_H_

#include <cstdint>
#include <vector>

#include "storage/relation.h"

namespace mjoin {

/// Order-insensitive digest of a set of rows: the sum (mod 2^64) of a
/// 64-bit hash of each row's bytes. Two executions produce the same
/// summary iff they produced the same multiset of tuples, regardless of
/// ordering or fragmentation — the cross-strategy correctness check.
struct ResultSummary {
  uint64_t cardinality = 0;
  uint64_t checksum = 0;

  bool operator==(const ResultSummary&) const = default;
};

/// 64-bit FNV-1a of the row bytes, finalized with a strong mixer.
uint64_t HashRowBytes(const std::byte* row, size_t size);

/// Summary over a whole relation.
ResultSummary SummarizeRelation(const Relation& relation);

/// Summary over distributed fragments (sums commute).
ResultSummary SummarizeFragments(const std::vector<Relation>& fragments);

}  // namespace mjoin

#endif  // MJOIN_ENGINE_RESULT_H_
