#ifndef MJOIN_ENGINE_SIM_EXECUTOR_H_
#define MJOIN_ENGINE_SIM_EXECUTOR_H_

#include <optional>
#include <vector>
#include <string>

#include "common/statusor.h"
#include "engine/database.h"
#include "engine/result.h"
#include "sim/cost_params.h"
#include "sim/machine.h"
#include "xra/plan.h"

namespace mjoin {

/// Knobs for one simulated execution.
struct SimExecOptions {
  CostParams costs;
  /// Record per-task busy intervals and render a utilization diagram
  /// (costly on big runs).
  bool record_trace = false;
  /// Width of the rendered diagram, when record_trace is set.
  uint32_t trace_width = 72;
  /// Keep the materialized final result (otherwise only its summary).
  bool materialize_result = false;
};

/// Per-operation runtime statistics of one simulated execution (the
/// EXPLAIN ANALYZE counters).
struct OpStats {
  int op_id = -1;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  Ticks busy_ticks = 0;
  Ticks first_start = 0;  // when the first instance began working
  Ticks last_finish = 0;  // when the last instance completed
};

/// Outcome of one simulated query execution.
struct SimQueryResult {
  /// Response time: from the moment the scheduler starts scheduling until
  /// the last operation process finishes (the paper's measure).
  Ticks response_ticks = 0;
  double response_seconds = 0;
  ResultSummary result;
  /// Final result tuples, if materialize_result was set.
  std::optional<Relation> materialized;
  MachineCounters counters;
  /// Mean worker-node busy fraction over [0, response_ticks]
  /// (only when record_trace is set; 0 otherwise).
  double utilization = 0;
  std::string utilization_diagram;  // only when record_trace is set
  /// Sum over all join operation processes of their peak hash-table /
  /// buffer memory (FP's two hash tables show up here).
  size_t join_memory_bytes = 0;
  /// Simulated events processed (simulator work, for diagnostics).
  uint64_t events = 0;
  /// Per-op counters, indexed like plan.ops.
  std::vector<OpStats> op_stats;
};

/// Renders the EXPLAIN ANALYZE table for a finished run: one row per
/// operation with instances, tuples in/out, busy time and active window.
std::string RenderOpStats(const ParallelPlan& plan,
                          const SimQueryResult& result);

/// Executes parallel plans on the simulated shared-nothing machine: real
/// operators over real tuples, with time advanced by the cost model. Runs
/// are deterministic.
class SimExecutor {
 public:
  /// `database` must outlive the executor.
  explicit SimExecutor(const Database* database) : database_(database) {}

  [[nodiscard]] StatusOr<SimQueryResult> Execute(const ParallelPlan& plan,
                                   const SimExecOptions& options) const;

 private:
  const Database* database_;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_SIM_EXECUTOR_H_
