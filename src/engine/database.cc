#include "engine/database.h"

#include "common/random.h"
#include "common/string_util.h"
#include "storage/wisconsin.h"
#include "storage/zipf.h"

namespace mjoin {

Status Database::Add(const std::string& name, Relation relation) {
  if (relations_.contains(name)) {
    return Status::AlreadyExists(StrCat("relation '", name, "' exists"));
  }
  relations_.emplace(name, std::move(relation));
  return Status::OK();
}

StatusOr<const Relation*> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("no relation '", name, "'"));
  }
  return &it->second;
}

size_t Database::TotalBytes() const {
  size_t total = 0;
  for (const auto& [name, relation] : relations_) {
    total += relation.byte_size();
  }
  return total;
}

Database MakeSkewedDatabase(int num_relations, uint32_t cardinality,
                            uint64_t seed, double theta) {
  Database db;
  uint64_t state = seed;
  for (int i = 0; i < num_relations; ++i) {
    uint64_t relation_seed = SplitMix64(&state);
    Relation rel = i == 0
                       ? GenerateWisconsin(cardinality, relation_seed)
                       : GenerateSkewedWisconsin(cardinality, relation_seed,
                                                 theta);
    MJOIN_CHECK_OK(db.Add(StrCat("rel", i), std::move(rel)));
  }
  return db;
}

Database MakeWisconsinDatabase(int num_relations, uint32_t cardinality,
                               uint64_t seed) {
  Database db;
  uint64_t state = seed;
  for (int i = 0; i < num_relations; ++i) {
    uint64_t relation_seed = SplitMix64(&state);
    MJOIN_CHECK_OK(db.Add(StrCat("rel", i),
                          GenerateWisconsin(cardinality, relation_seed)));
  }
  return db;
}

}  // namespace mjoin
