#include "engine/sim_executor.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/controller.h"
#include "exec/batch.h"
#include "exec/batch_pool.h"
#include "exec/emit.h"
#include "exec/operator.h"
#include "exec/pipelining_hash_join.h"
#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/scan.h"
#include "exec/simple_hash_join.h"
#include "exec/sort_merge_join.h"
#include "storage/partitioner.h"

namespace mjoin {

namespace {

class SimRun;

/// One operation process: an operator instance pinned to a simulated node,
/// implementing OpContext for it. All tasks of an instance run on its node
/// (serialized), so the per-task accumulators need no synchronization.
class Instance : public OpContext, public EmitSink {
 public:
  Instance(SimRun* run, int op_id, uint32_t index, uint32_t node)
      : run_(run), op_id_(op_id), index_(index), node_(node) {}

  // OpContext:
  void Charge(Ticks cost) override { task_cost_ += cost; }
  void EmitRow(const std::byte* row) override;
  void EmitRows(const std::byte* rows, size_t count,
                size_t row_bytes) override;
  EmitWriter* emit_writer() override {
    return writer_ready ? &writer : nullptr;
  }
  void BatchFull(uint32_t dest) override;
  const CostParams& costs() const override;

  SimRun* run_;
  int op_id_;
  uint32_t index_;
  uint32_t node_;
  std::unique_ptr<Operator> oper;

  /// Zero-copy emit channel over out_pending; rows_committed() is this
  /// instance's tuples-out count (every emit path goes through it).
  EmitWriter writer;
  bool writer_ready = false;

  bool initialized = false;     // the scheduler's serial init reached us
  bool triggered = false;       // our trigger group fired
  bool start_requested = false; // brokerage requested (gates re-entry)
  bool start_submitted = false; // start task on the node (gates buffering)
  bool open_done = false;
  bool complete = false;
  bool build_done_reported = false;
  int eos_remaining[2] = {0, 0};

  /// Per-destination pending output batches (a single batch when
  /// storing: the flush bulk-appends it into the stored fragment).
  std::vector<TupleBatch> out_pending;

  /// Messages that arrived before the start task was submitted.
  std::deque<std::function<void()>> pre_start;

  /// Memory last reported to the node-level accounting.
  size_t reported_memory = 0;

  // EXPLAIN ANALYZE counters.
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  Ticks busy_ticks = 0;
  Ticks first_start = -1;
  Ticks finish_time = 0;

  // Current-task accumulators (valid only inside a task body).
  Ticks task_cost_ = 0;
  std::vector<DeferredAction> task_deferred_;
};

/// One full simulated execution of a plan.
class SimRun {
 public:
  SimRun(const ParallelPlan& plan, const Database& db,
         const SimExecOptions& options)
      : plan_(plan),
        db_(db),
        options_(options),
        machine_(plan.num_processors, options.costs, options.record_trace),
        controller_(&plan) {}

  Status Prepare();
  StatusOr<SimQueryResult> Run();

  const CostParams& costs() const { return machine_.costs(); }

  // --- routing / messaging -------------------------------------------------

  void EmitRowFrom(Instance* inst, const std::byte* row);
  void EmitRowsFrom(Instance* inst, const std::byte* rows, size_t count,
                    size_t row_bytes);
  void FlushDest(Instance* inst, uint32_t dest);

  Instance* instance(int op, uint32_t index) {
    return instances_[static_cast<size_t>(op)][index].get();
  }
  const XraOp& op(int id) const {
    return plan_.ops[static_cast<size_t>(id)];
  }

 private:
  // Submits a task running `fn(inst)` on the instance's node; the task's
  // cost is whatever fn charges, and its deferred actions are released at
  // completion.
  void SubmitTask(Instance* inst, char label, std::function<void(Instance*)> fn);

  // Delivers `msg` to `inst`, buffering if the instance has not started.
  void PostMessage(Instance* inst, std::function<void()> msg);

  void TryStart(Instance* inst);
  void BeginStart(Instance* inst);
  void RunStartTask(Instance* inst);
  void PumpSource(Instance* inst);
  void AfterCallback(Instance* inst);
  void FinishInstanceBody(Instance* inst);
  void DeliverBatch(Instance* producer, uint32_t dest,
                    std::shared_ptr<TupleBatch> batch);
  void SubmitConsume(Instance* consumer, int port,
                     std::shared_ptr<TupleBatch> batch, bool networked);
  void SubmitEos(Instance* consumer, int port);
  void NotifyScheduler(Instance* inst, Milestone milestone);
  void DispatchGroups(const std::vector<int>& groups);

  const ParallelPlan& plan_;
  const Database& db_;
  const SimExecOptions& options_;
  // The pool precedes machine_ and instances_ (whose queued events and
  // pre-start buffers hold pooled batches), so it is destroyed last.
  BatchPool pool_;
  SimMachine machine_;
  QueryController controller_;

  // [op][instance]
  std::vector<std::vector<std::unique_ptr<Instance>>> instances_;
  // [result_id][instance]
  std::vector<std::vector<Relation>> stored_;
  // [scan op id] -> fragments per instance
  std::vector<std::vector<Relation>> scan_fragments_;

  // Live operator memory per node, for the memory-pressure simulation.
  std::vector<size_t> node_memory_;

  Ticks last_finish_ = 0;
  std::string error_;
};

const CostParams& Instance::costs() const { return run_->costs(); }

void Instance::EmitRow(const std::byte* row) { run_->EmitRowFrom(this, row); }

void Instance::EmitRows(const std::byte* rows, size_t count,
                        size_t row_bytes) {
  run_->EmitRowsFrom(this, rows, count, row_bytes);
}

void Instance::BatchFull(uint32_t dest) { run_->FlushDest(this, dest); }

Status SimRun::Prepare() {
  node_memory_.assign(plan_.num_processors + 2, 0);
  size_t num_ops = plan_.ops.size();
  instances_.resize(num_ops);
  scan_fragments_.resize(num_ops);
  stored_.resize(static_cast<size_t>(plan_.num_results));

  // Storage for stored results, aligned with the storing op's instances.
  for (const XraOp& o : plan_.ops) {
    if (o.store_result >= 0) {
      auto& frags = stored_[static_cast<size_t>(o.store_result)];
      frags.reserve(o.processors.size());
      for (size_t i = 0; i < o.processors.size(); ++i) {
        frags.emplace_back(*o.output_schema);
      }
    }
  }

  // Initial declustering of base relations: each scan's relation is
  // fragmented over the scan's processors on the key its consumer joins
  // on (the paper's "ideal initial fragmentation").
  for (const XraOp& o : plan_.ops) {
    if (o.kind != XraOpKind::kScan) continue;
    MJOIN_ASSIGN_OR_RETURN(const Relation* base, db_.Get(o.relation));
    auto m = static_cast<uint32_t>(o.processors.size());
    const XraOp& consumer = op(o.consumer);
    if (consumer.inputs[o.consumer_port].routing == Routing::kColocated &&
        consumer.is_join()) {
      size_t key = o.consumer_port == 0 ? consumer.join_spec.left_key
                                        : consumer.join_spec.right_key;
      MJOIN_ASSIGN_OR_RETURN(scan_fragments_[static_cast<size_t>(o.id)],
                             HashPartition(*base, key, m));
    } else {
      scan_fragments_[static_cast<size_t>(o.id)] =
          RoundRobinPartition(*base, m);
    }
  }

  // Operation processes.
  for (const XraOp& o : plan_.ops) {
    auto& list = instances_[static_cast<size_t>(o.id)];
    for (uint32_t i = 0; i < o.processors.size(); ++i) {
      auto inst = std::make_unique<Instance>(this, o.id, i, o.processors[i]);
      switch (o.kind) {
        case XraOpKind::kScan: {
          const Relation* frag = &scan_fragments_[static_cast<size_t>(o.id)][i];
          inst->oper = std::make_unique<ScanOp>([frag] { return frag; },
                                                o.output_schema);
          break;
        }
        case XraOpKind::kRescan: {
          const Relation* frag =
              &stored_[static_cast<size_t>(o.stored_result)][i];
          inst->oper = std::make_unique<ScanOp>([frag] { return frag; },
                                                o.output_schema);
          break;
        }
        case XraOpKind::kSimpleHashJoin:
          inst->oper = std::make_unique<SimpleHashJoinOp>(o.join_spec);
          break;
        case XraOpKind::kPipeliningHashJoin:
          inst->oper = std::make_unique<PipeliningHashJoinOp>(o.join_spec);
          break;
        case XraOpKind::kSortMergeJoin:
          inst->oper = std::make_unique<SortMergeJoinOp>(o.join_spec);
          break;
        case XraOpKind::kFilter: {
          MJOIN_ASSIGN_OR_RETURN(std::unique_ptr<FilterOp> filter,
                                 FilterOp::Make(o.input_schema, o.filter));
          inst->oper = std::move(filter);
          break;
        }
        case XraOpKind::kAggregate: {
          MJOIN_ASSIGN_OR_RETURN(
              std::unique_ptr<AggregateOp> aggregate,
              AggregateOp::Make(o.input_schema, o.group_column,
                                o.value_column));
          inst->oper = std::move(aggregate);
          break;
        }
      }
      // Expected end-of-stream messages per port.
      {
        for (int port = 0; port < inst->oper->num_input_ports(); ++port) {
          const XraInput& input = o.inputs[port];
          const XraOp& producer = op(input.producer);
          inst->eos_remaining[port] =
              input.routing == Routing::kColocated
                  ? 1
                  : static_cast<int>(producer.processors.size());
        }
      }
      // Output buffers + the zero-copy emit channel over them. A zero
      // batch_size cost model degrades to flush-per-row (threshold 1).
      const uint32_t flush_threshold =
          std::max<uint32_t>(1, costs().batch_size);
      if (o.store_result >= 0) {
        inst->out_pending.emplace_back(o.output_schema);
        inst->writer.Configure(inst->out_pending.data(), 1,
                               /*split_column=*/-1, /*fixed_dest=*/0,
                               flush_threshold, inst.get());
        inst->writer_ready = true;
      } else if (o.consumer >= 0) {
        const XraOp& consumer = op(o.consumer);
        const XraInput& input = consumer.inputs[o.consumer_port];
        inst->out_pending.reserve(consumer.processors.size());
        for (size_t d = 0; d < consumer.processors.size(); ++d) {
          inst->out_pending.emplace_back(o.output_schema);
        }
        int split_column = input.routing == Routing::kHashSplit
                               ? static_cast<int>(input.split_key)
                               : -1;
        uint32_t fixed_dest =
            input.routing == Routing::kColocated ? i : 0;
        inst->writer.Configure(
            inst->out_pending.data(),
            static_cast<uint32_t>(consumer.processors.size()), split_column,
            fixed_dest, flush_threshold, inst.get());
        inst->writer_ready = true;
      }
      list.push_back(std::move(inst));
    }
  }
  return Status::OK();
}

void SimRun::SubmitTask(Instance* inst, char label,
                        std::function<void(Instance*)> fn) {
  machine_.node(inst->node_).Submit(label, [this, inst, fn = std::move(fn)] {
    inst->task_cost_ = 0;
    inst->task_deferred_.clear();
    fn(inst);
    // Node-level memory accounting; a node over its memory budget pays
    // the paper's "increased disk traffic" penalty on its CPU work.
    size_t current = inst->oper->memory_bytes();
    node_memory_[inst->node_] += current;
    node_memory_[inst->node_] -= inst->reported_memory;
    inst->reported_memory = current;
    Ticks cost = inst->task_cost_;
    size_t limit = costs().memory_per_node_bytes;
    if (limit > 0 && node_memory_[inst->node_] > limit) {
      cost = static_cast<Ticks>(static_cast<double>(cost) *
                                costs().memory_pressure_factor);
    }
    if (inst->first_start < 0) inst->first_start = machine_.sim().Now();
    inst->busy_ticks += cost;
    return TaskResult{cost, std::move(inst->task_deferred_)};
  });
}

void SimRun::PostMessage(Instance* inst, std::function<void()> msg) {
  if (!inst->start_submitted) {
    inst->pre_start.push_back(std::move(msg));
  } else {
    msg();
  }
}

void SimRun::DispatchGroups(const std::vector<int>& groups) {
  for (int g : groups) {
    for (int op_id : plan_.groups[static_cast<size_t>(g)].ops) {
      for (auto& inst : instances_[static_cast<size_t>(op_id)]) {
        Instance* raw = inst.get();
        machine_.sim().Schedule(costs().trigger_latency, [this, raw] {
          raw->triggered = true;
          TryStart(raw);
        });
      }
    }
  }
}

void SimRun::TryStart(Instance* inst) {
  // A process starts once the scheduler's serial initialization reached it
  // *and* its trigger group fired.
  if (!inst->initialized || !inst->triggered || inst->start_requested) return;
  inst->start_requested = true;

  // Outgoing networked streams must be registered with the (serial)
  // stream broker before the process may open them; an n x m
  // refragmentation therefore costs n*m serialized broker ticks in total —
  // the quadratic part of the paper's coordination overhead.
  Ticks broker_cost = 0;
  const XraOp& o = op(inst->op_id_);
  if (o.consumer >= 0) {
    const XraOp& consumer = op(o.consumer);
    if (consumer.inputs[o.consumer_port].routing == Routing::kHashSplit) {
      broker_cost = static_cast<Ticks>(consumer.processors.size()) *
                    costs().broker_handshake;
    }
  }
  if (broker_cost == 0) {
    BeginStart(inst);
    return;
  }
  machine_.counters().handshake_ticks += broker_cost;
  machine_.node(machine_.broker_id()).Submit('b', [this, inst, broker_cost] {
    TaskResult result;
    result.cost = broker_cost;
    result.after.push_back(
        {costs().trigger_latency, [this, inst] { BeginStart(inst); }});
    return result;
  });
}

void SimRun::BeginStart(Instance* inst) {
  inst->start_submitted = true;
  RunStartTask(inst);
  // Release anything that arrived early; it runs after the start task on
  // the same node (FIFO per node).
  while (!inst->pre_start.empty()) {
    auto msg = std::move(inst->pre_start.front());
    inst->pre_start.pop_front();
    msg();
  }
}

void SimRun::RunStartTask(Instance* inst) {
  const XraOp& o = op(inst->op_id_);
  SubmitTask(inst, 'h', [this, &o](Instance* inst) {
    // Handshake: one unit of coordination per networked stream endpoint
    // this process participates in.
    Ticks handshake = 0;
    if (o.is_join()) {
      for (int port = 0; port < 2; ++port) {
        const XraInput& input = o.inputs[port];
        if (input.routing == Routing::kHashSplit) {
          handshake += static_cast<Ticks>(
              op(input.producer).processors.size());
        }
      }
    }
    if (o.consumer >= 0) {
      const XraOp& consumer = op(o.consumer);
      if (consumer.inputs[o.consumer_port].routing == Routing::kHashSplit) {
        handshake += static_cast<Ticks>(consumer.processors.size());
      }
    }
    Ticks handshake_cost = handshake * costs().stream_handshake;
    inst->Charge(handshake_cost);
    machine_.counters().handshake_ticks += handshake_cost;

    inst->oper->Open(inst);
    inst->open_done = true;
    if (inst->oper->is_source()) {
      inst->task_deferred_.push_back(
          {0, [this, inst] { PumpSource(inst); }});
    }
  });
}

void SimRun::PumpSource(Instance* inst) {
  const XraOp& o = op(inst->op_id_);
  SubmitTask(inst, o.trace_label, [this](Instance* inst) {
    bool more = inst->oper->Produce(inst);
    if (more) {
      inst->task_deferred_.push_back({0, [this, inst] { PumpSource(inst); }});
    } else {
      FinishInstanceBody(inst);
    }
  });
}

void SimRun::EmitRowFrom(Instance* inst, const std::byte* row) {
  // Copying fallback: the finished row still travels through the writer,
  // which owns routing, the flush threshold, and the tuples-out count.
  EmitWriter& writer = inst->writer;
  int32_t route = 0;
  if (writer.split_column() >= 0) {
    TupleRef ref(row, op(inst->op_id_).output_schema.get());
    route = ref.GetInt32(static_cast<size_t>(writer.split_column()));
  }
  writer.Append(row, route);
}

void SimRun::EmitRowsFrom(Instance* inst, const std::byte* rows, size_t count,
                          size_t row_bytes) {
  EmitWriter& writer = inst->writer;
  const int split = writer.split_column();
  if (split < 0) {
    writer.AppendRows(rows, count);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    const std::byte* row = rows + i * row_bytes;
    TupleRef ref(row, op(inst->op_id_).output_schema.get());
    writer.Append(row, ref.GetInt32(static_cast<size_t>(split)));
  }
}

void SimRun::FlushDest(Instance* inst, uint32_t dest) {
  TupleBatch& pending = inst->out_pending[dest];
  if (pending.empty()) return;
  const XraOp& o = op(inst->op_id_);
  if (o.store_result >= 0) {
    stored_[static_cast<size_t>(o.store_result)][inst->index_].AppendRows(
        pending.raw_data(), pending.num_tuples());
    pending.Clear();
    return;
  }
  // Swap the filled buffer against a pooled one: pending inherits the
  // recycled capacity, and the batch ships without a copy. It is wrapped
  // in a shared_ptr exactly once, here — DeliverBatch and SubmitConsume
  // pass the pointer along.
  std::shared_ptr<TupleBatch> batch = pool_.Acquire(o.output_schema);
  std::swap(*batch, pending);
  DeliverBatch(inst, dest, std::move(batch));
}

void SimRun::DeliverBatch(Instance* producer, uint32_t dest,
                          std::shared_ptr<TupleBatch> batch) {
  const XraOp& o = op(producer->op_id_);
  const XraOp& consumer_op = op(o.consumer);
  bool networked =
      consumer_op.inputs[o.consumer_port].routing == Routing::kHashSplit;
  Instance* consumer = instance(o.consumer, dest);
  int port = o.consumer_port;
  Ticks latency = 0;
  if (networked) {
    auto n = static_cast<Ticks>(batch->num_tuples());
    producer->Charge(costs().batch_overhead + n * costs().tuple_send);
    machine_.counters().batches_sent += 1;
    machine_.counters().tuples_sent += static_cast<uint64_t>(n);
    latency = costs().network_latency;
  }
  producer->task_deferred_.push_back(
      {latency, [this, consumer, port, batch = std::move(batch), networked] {
         PostMessage(consumer, [this, consumer, port, batch, networked] {
           SubmitConsume(consumer, port, batch, networked);
         });
       }});
}

void SimRun::SubmitConsume(Instance* consumer, int port,
                           std::shared_ptr<TupleBatch> batch, bool networked) {
  const XraOp& o = op(consumer->op_id_);
  SubmitTask(consumer, o.trace_label,
             [this, port, batch = std::move(batch), networked](Instance* inst) {
               if (networked) {
                 inst->Charge(costs().batch_overhead +
                              static_cast<Ticks>(batch->num_tuples()) *
                                  costs().tuple_recv);
               }
               inst->tuples_in += batch->num_tuples();
               inst->oper->Consume(port, *batch, inst);
               AfterCallback(inst);
             });
}

void SimRun::SubmitEos(Instance* consumer, int port) {
  const XraOp& o = op(consumer->op_id_);
  SubmitTask(consumer, o.trace_label, [this, port](Instance* inst) {
    MJOIN_CHECK(inst->eos_remaining[port] > 0)
        << "unexpected EOS on port " << port << " of " << op(inst->op_id_).label;
    if (--inst->eos_remaining[port] == 0) {
      inst->oper->InputDone(port, inst);
    }
    AfterCallback(inst);
  });
}

void SimRun::AfterCallback(Instance* inst) {
  const XraOp& o = op(inst->op_id_);
  if (o.kind == XraOpKind::kSimpleHashJoin && !inst->build_done_reported) {
    auto* join = static_cast<SimpleHashJoinOp*>(inst->oper.get());
    if (join->build_done()) {
      inst->build_done_reported = true;
      NotifyScheduler(inst, Milestone::kBuildDone);
    }
  }
  if (!inst->complete && inst->oper->finished()) FinishInstanceBody(inst);
}

void SimRun::FinishInstanceBody(Instance* inst) {
  MJOIN_CHECK(!inst->complete);
  inst->complete = true;
  // A finished operator frees its hash tables / buffers.
  inst->oper->ReleaseMemory();
  const XraOp& o = op(inst->op_id_);

  // Flush all pending output — the stored-result tail included — then
  // signal end-of-stream downstream.
  for (uint32_t d = 0; d < inst->out_pending.size(); ++d) FlushDest(inst, d);
  if (o.consumer >= 0) {
    const XraOp& consumer_op = op(o.consumer);
    bool networked =
        consumer_op.inputs[o.consumer_port].routing == Routing::kHashSplit;
    int port = o.consumer_port;
    if (networked) {
      for (uint32_t d = 0; d < consumer_op.processors.size(); ++d) {
        Instance* consumer = instance(o.consumer, d);
        inst->task_deferred_.push_back(
            {costs().network_latency, [this, consumer, port] {
               PostMessage(consumer,
                           [this, consumer, port] { SubmitEos(consumer, port); });
             }});
      }
    } else {
      Instance* consumer = instance(o.consumer, inst->index_);
      inst->task_deferred_.push_back({0, [this, consumer, port] {
                                        PostMessage(consumer,
                                                    [this, consumer, port] {
                                                      SubmitEos(consumer, port);
                                                    });
                                      }});
    }
  }

  // Record the completion time (at this task's completion) and notify the
  // scheduler.
  inst->task_deferred_.push_back({0, [this, inst] {
                                    inst->finish_time = machine_.sim().Now();
                                    last_finish_ =
                                        std::max(last_finish_,
                                                 machine_.sim().Now());
                                  }});
  NotifyScheduler(inst, Milestone::kComplete);
}

void SimRun::NotifyScheduler(Instance* inst, Milestone milestone) {
  int op_id = inst->op_id_;
  uint32_t index = inst->index_;
  inst->task_deferred_.push_back(
      {costs().trigger_latency, [this, op_id, index, milestone] {
         machine_.node(machine_.scheduler_id())
             .Submit('n', [this, op_id, index, milestone] {
               std::vector<int> ready =
                   controller_.OnInstanceMilestone(op_id, index, milestone);
               TaskResult result;
               result.cost = 0;
               if (!ready.empty()) {
                 result.after.push_back(
                     {0, [this, ready] { DispatchGroups(ready); }});
               }
               return result;
             });
       }});
}

StatusOr<SimQueryResult> SimRun::Run() {
  // The scheduler claims and initializes every operation process from the
  // pool, serially, in trigger-group order: the paper's startup barrier.
  // Join processes carry the full initialization cost; their colocated
  // scan/rescan pumps are part of the same claim and are near-free, which
  // matches the paper's process accounting (SP on 80 processors = 10 ops x
  // 80 = 800 processes; FP = one process per processor).
  for (const TriggerGroup& group : plan_.groups) {
    for (int op_id : group.ops) {
      bool is_join = op(op_id).is_join();
      for (auto& inst : instances_[static_cast<size_t>(op_id)]) {
        Instance* raw = inst.get();
        machine_.node(machine_.scheduler_id())
            .Submit('s', [this, raw, is_join] {
          Ticks init_cost = is_join ? costs().process_startup : 1;
          if (is_join) {
            machine_.counters().processes_started += 1;
            machine_.counters().startup_ticks += init_cost;
          }
          TaskResult result;
          result.cost = init_cost;
          // The init message reaches the worker after the trigger latency;
          // the process starts at max(init time, group trigger time).
          result.after.push_back({costs().trigger_latency, [this, raw] {
                                    raw->initialized = true;
                                    TryStart(raw);
                                  }});
          return result;
        });
      }
    }
  }
  machine_.counters().streams_opened = plan_.CountStreams();

  // Dependency-free groups fire at query start; each of their processes
  // still waits for the scheduler's serial initialization to reach it.
  DispatchGroups(controller_.TakeInitialGroups());

  machine_.sim().Run();

  // Verify global completion (a wiring bug would leave ops pending).
  if (!controller_.AllOpsComplete()) {
    std::vector<std::string> pending;
    for (const XraOp& o : plan_.ops) {
      if (!controller_.OpMilestoneFired(o.id, Milestone::kComplete)) {
        pending.push_back(o.label);
      }
    }
    return Status::Internal(
        StrCat("simulation drained but ops never completed: ",
               StrJoin(pending, ", ")));
  }

  SimQueryResult result;
  result.response_ticks = last_finish_;
  result.response_seconds = costs().ToSeconds(last_finish_);
  result.result =
      SummarizeFragments(stored_[static_cast<size_t>(plan_.final_result)]);
  if (options_.materialize_result) {
    result.materialized =
        ConcatFragments(stored_[static_cast<size_t>(plan_.final_result)]);
  }
  result.counters = machine_.counters();
  result.events = machine_.sim().num_events_processed();
  result.op_stats.resize(plan_.ops.size());
  for (const auto& list : instances_) {
    for (const auto& inst : list) {
      result.join_memory_bytes += inst->oper->peak_memory_bytes();
      OpStats& stats = result.op_stats[static_cast<size_t>(inst->op_id_)];
      stats.op_id = inst->op_id_;
      stats.tuples_in += inst->tuples_in;
      stats.tuples_out += inst->tuples_out + inst->writer.rows_committed();
      stats.busy_ticks += inst->busy_ticks;
      if (inst->first_start >= 0) {
        stats.first_start = stats.first_start == 0 && stats.last_finish == 0
                                ? inst->first_start
                                : std::min(stats.first_start,
                                           inst->first_start);
      }
      stats.last_finish = std::max(stats.last_finish, inst->finish_time);
    }
  }
  if (options_.record_trace) {
    std::vector<Ticks> busy = machine_.trace().BusyTicks();
    double total_busy = 0;
    for (uint32_t p = 0; p < plan_.num_processors; ++p) {
      total_busy += static_cast<double>(busy[p]);
    }
    if (result.response_ticks > 0) {
      result.utilization =
          total_busy / (static_cast<double>(result.response_ticks) *
                        plan_.num_processors);
    }
    result.utilization_diagram =
        machine_.trace().Render(result.response_ticks, options_.trace_width);
  }
  return result;
}

}  // namespace

std::string RenderOpStats(const ParallelPlan& plan,
                          const SimQueryResult& result) {
  TablePrinter table({"op", "kind", "label", "inst", "tuples in",
                      "tuples out", "busy [s]", "active [s]"});
  const double tick_s = result.response_ticks > 0 && result.response_seconds > 0
                            ? result.response_seconds /
                                  static_cast<double>(result.response_ticks)
                            : 0;
  for (const OpStats& stats : result.op_stats) {
    if (stats.op_id < 0) continue;
    const XraOp& op = plan.ops[static_cast<size_t>(stats.op_id)];
    table.AddRow({StrCat(op.id), XraOpKindName(op.kind), op.label,
                  StrCat(op.processors.size()), StrCat(stats.tuples_in),
                  StrCat(stats.tuples_out),
                  FormatDouble(static_cast<double>(stats.busy_ticks) * tick_s,
                               2),
                  StrCat(FormatDouble(
                             static_cast<double>(stats.first_start) * tick_s,
                             2),
                         " .. ",
                         FormatDouble(
                             static_cast<double>(stats.last_finish) * tick_s,
                             2))});
  }
  return table.ToString();
}

StatusOr<SimQueryResult> SimExecutor::Execute(
    const ParallelPlan& plan, const SimExecOptions& options) const {
  MJOIN_RETURN_IF_ERROR(plan.Validate());
  SimRun run(plan, *database_, options);
  MJOIN_RETURN_IF_ERROR(run.Prepare());
  return run.Run();
}

}  // namespace mjoin
