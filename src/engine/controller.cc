#include "engine/controller.h"

#include "common/logging.h"

namespace mjoin {

QueryController::QueryController(const ParallelPlan* plan) : plan_(plan) {
  size_t n = plan_->ops.size();
  pending_complete_.resize(n);
  pending_build_done_.resize(n);
  fired_complete_.assign(n, false);
  fired_build_done_.assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    auto instances = static_cast<uint32_t>(plan_->ops[i].processors.size());
    pending_complete_[i] = instances;
    pending_build_done_[i] = instances;
  }
  group_dispatched_.assign(plan_->groups.size(), false);
}

std::vector<int> QueryController::TakeInitialGroups() {
  return CollectReadyGroups();
}

bool QueryController::OpMilestoneFired(int op, Milestone milestone) const {
  auto i = static_cast<size_t>(op);
  return milestone == Milestone::kComplete ? fired_complete_[i]
                                           : fired_build_done_[i];
}

std::vector<int> QueryController::OnInstanceMilestone(int op,
                                                      uint32_t instance,
                                                      Milestone milestone) {
  auto i = static_cast<size_t>(op);
  MJOIN_CHECK(i < plan_->ops.size());
  MJOIN_CHECK(instance < plan_->ops[i].processors.size());
  if (milestone == Milestone::kComplete) {
    MJOIN_CHECK(pending_complete_[i] > 0)
        << "extra completion for op " << op;
    if (--pending_complete_[i] == 0) {
      fired_complete_[i] = true;
      ++complete_ops_;
      return CollectReadyGroups();
    }
  } else {
    MJOIN_CHECK(pending_build_done_[i] > 0)
        << "extra build-done for op " << op;
    if (--pending_build_done_[i] == 0) {
      fired_build_done_[i] = true;
      return CollectReadyGroups();
    }
  }
  return {};
}

std::vector<int> QueryController::CollectReadyGroups() {
  std::vector<int> ready;
  for (size_t g = 0; g < plan_->groups.size(); ++g) {
    if (group_dispatched_[g]) continue;
    bool all_fired = true;
    for (const TriggerDep& dep : plan_->groups[g].deps) {
      if (!OpMilestoneFired(dep.op, dep.milestone)) {
        all_fired = false;
        break;
      }
    }
    if (all_fired) {
      group_dispatched_[g] = true;
      ready.push_back(static_cast<int>(g));
    }
  }
  return ready;
}

}  // namespace mjoin
