#include "engine/experiment.h"

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/reference.h"
#include "plan/wisconsin_query.h"

namespace mjoin {

std::vector<uint32_t> SmallExperimentProcessors() {
  return {20, 30, 40, 50, 60, 70, 80};
}

std::vector<uint32_t> LargeExperimentProcessors() {
  return {30, 40, 50, 60, 70, 80};
}

const ExperimentPoint* ExperimentResult::Best() const {
  const ExperimentPoint* best = nullptr;
  for (const ExperimentPoint& point : points) {
    if (!point.seconds.has_value()) continue;
    if (best == nullptr || *point.seconds < *best->seconds) best = &point;
  }
  return best;
}

std::string ExperimentResult::ToTable() const {
  std::vector<std::string> headers = {"processors"};
  for (StrategyKind strategy : config.strategies) {
    headers.push_back(StrategyName(strategy) + " [s]");
  }
  TablePrinter table(std::move(headers));
  for (uint32_t p : config.processors) {
    std::vector<std::string> row = {StrCat(p)};
    for (StrategyKind strategy : config.strategies) {
      std::string cell = "-";
      for (const ExperimentPoint& point : points) {
        if (point.strategy == strategy && point.processors == p &&
            point.seconds.has_value()) {
          cell = FormatDouble(*point.seconds, 1);
        }
      }
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

std::string ExperimentResult::ToCsv() const {
  std::string out = "strategy,processors,seconds,processes,streams\n";
  for (const ExperimentPoint& point : points) {
    if (!point.seconds.has_value()) continue;
    out += StrCat(StrategyName(point.strategy), ",", point.processors, ",",
                  FormatDouble(*point.seconds, 4), ",", point.processes,
                  ",", point.streams, "\n");
  }
  return out;
}

StatusOr<ExperimentResult> RunShapeExperiment(const ExperimentConfig& config) {
  Database db = MakeWisconsinDatabase(config.num_relations, config.cardinality,
                                      config.seed);
  MJOIN_ASSIGN_OR_RETURN(
      JoinQuery query,
      MakeWisconsinChainQuery(config.shape, config.num_relations,
                              config.cardinality));

  std::optional<ResultSummary> reference;
  if (config.verify) {
    MJOIN_ASSIGN_OR_RETURN(ResultSummary summary,
                           ReferenceSummary(query, db));
    reference = summary;
  }

  TotalCostModel cost_model(config.coefficients);
  SimExecutor executor(&db);
  SimExecOptions options;
  options.costs = config.costs;

  ExperimentResult result;
  result.config = config;
  for (StrategyKind kind : config.strategies) {
    std::unique_ptr<Strategy> strategy = MakeStrategy(kind);
    for (uint32_t p : config.processors) {
      ExperimentPoint point;
      point.strategy = kind;
      point.processors = p;
      auto plan_or = strategy->Parallelize(query, p, cost_model);
      if (!plan_or.ok()) {
        // Not placeable at this P (e.g. FP with P < #joins): empty cell.
        result.points.push_back(point);
        continue;
      }
      MJOIN_ASSIGN_OR_RETURN(SimQueryResult run,
                             executor.Execute(*plan_or, options));
      if (reference.has_value() && !(run.result == *reference)) {
        return Status::Internal(
            StrCat(StrategyName(kind), " at P=", p,
                   " produced a wrong result: cardinality ",
                   run.result.cardinality, " vs ", reference->cardinality));
      }
      point.seconds = run.response_seconds;
      point.ticks = run.response_ticks;
      point.processes = run.counters.processes_started;
      point.streams = run.counters.streams_opened;
      point.startup_ticks = run.counters.startup_ticks;
      point.handshake_ticks = run.counters.handshake_ticks;
      point.join_memory_bytes = run.join_memory_bytes;
      result.points.push_back(point);
    }
  }
  return result;
}

StatusOr<FigureOutput> RunPaperFigure(QueryShape shape,
                                      const CostParams& costs,
                                      uint32_t small_cardinality,
                                      uint32_t large_cardinality,
                                      bool verify) {
  ExperimentConfig small;
  small.shape = shape;
  small.cardinality = small_cardinality;
  small.processors = SmallExperimentProcessors();
  small.costs = costs;
  small.verify = verify;

  ExperimentConfig large = small;
  large.cardinality = large_cardinality;
  large.processors = LargeExperimentProcessors();

  FigureOutput out;
  MJOIN_ASSIGN_OR_RETURN(out.small, RunShapeExperiment(small));
  MJOIN_ASSIGN_OR_RETURN(out.large, RunShapeExperiment(large));

  out.text = StrCat("=== ", ShapeName(shape), " query tree ===\n",
                    "--- ", small_cardinality / 1000, "K tuples/relation (",
                    small.num_relations, " relations) ---\n",
                    out.small.ToTable(), "--- ",
                    large_cardinality / 1000, "K tuples/relation (",
                    large.num_relations, " relations) ---\n",
                    out.large.ToTable());
  const ExperimentPoint* best_small = out.small.Best();
  const ExperimentPoint* best_large = out.large.Best();
  if (best_small != nullptr && best_large != nullptr) {
    out.text += StrCat("best ", small_cardinality / 1000, "K: ",
                       FormatDouble(*best_small->seconds, 1), "s (",
                       StrategyName(best_small->strategy),
                       best_small->processors, ")   best ",
                       large_cardinality / 1000, "K: ",
                       FormatDouble(*best_large->seconds, 1), "s (",
                       StrategyName(best_large->strategy),
                       best_large->processors, ")\n");
  }
  return out;
}

}  // namespace mjoin
