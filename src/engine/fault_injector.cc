#include "engine/fault_injector.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"

namespace mjoin {

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kSlowWorker:
      return "slow-worker";
    case FaultKind::kFailOperator:
      return "fail-op";
    case FaultKind::kDropBatch:
      return "drop-batch";
    case FaultKind::kDuplicateBatch:
      return "dup-batch";
    case FaultKind::kHangWorker:
      return "hang-worker";
  }
  return "unknown";
}

bool ParseFaultKind(const std::string& text, FaultKind* kind) {
  for (FaultKind candidate :
       {FaultKind::kNone, FaultKind::kSlowWorker, FaultKind::kFailOperator,
        FaultKind::kDropBatch, FaultKind::kDuplicateBatch,
        FaultKind::kHangWorker}) {
    if (FaultKindName(candidate) == text) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

std::string FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kDequeue:
      return "dequeue";
    case FaultPoint::kSend:
      return "send";
    case FaultPoint::kConsume:
      return "consume";
  }
  return "unknown";
}

FaultPoint FaultPointOf(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
    case FaultKind::kSlowWorker:
    case FaultKind::kHangWorker:
      return FaultPoint::kDequeue;
    case FaultKind::kDropBatch:
    case FaultKind::kDuplicateBatch:
      return FaultPoint::kSend;
    case FaultKind::kFailOperator:
      return FaultPoint::kConsume;
  }
  return FaultPoint::kDequeue;
}

std::string SerializeFaultScenario(const FaultScenario& scenario) {
  char prob[64];
  std::snprintf(prob, sizeof(prob), "%.17g", scenario.probability);
  return StrCat("kind=", FaultKindName(scenario.kind), " node=", scenario.node,
                " delay-us=", scenario.delay.count(), " op=", scenario.op,
                " after=", scenario.after_batches, " prob=", prob,
                " seed=", scenario.seed, " on-attempt=", scenario.on_attempt);
}

StatusOr<FaultScenario> ParseFaultScenario(const std::string& text) {
  FaultScenario scenario;
  for (const std::string& field : StrSplit(text, ' ')) {
    if (field.empty()) continue;
    size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("fault scenario field without '=': ", field));
    }
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    const char* digits = value.c_str();
    if (key == "kind") {
      if (!ParseFaultKind(value, &scenario.kind)) {
        return Status::InvalidArgument(StrCat("unknown fault kind ", value));
      }
    } else if (key == "node") {
      scenario.node = static_cast<uint32_t>(std::strtoul(digits, nullptr, 10));
    } else if (key == "delay-us") {
      scenario.delay =
          std::chrono::microseconds(std::strtoll(digits, nullptr, 10));
    } else if (key == "op") {
      scenario.op = static_cast<int>(std::strtol(digits, nullptr, 10));
    } else if (key == "after") {
      scenario.after_batches = std::strtoull(digits, nullptr, 10);
    } else if (key == "prob") {
      scenario.probability = std::strtod(digits, nullptr);
    } else if (key == "seed") {
      scenario.seed = std::strtoull(digits, nullptr, 10);
    } else if (key == "on-attempt") {
      scenario.on_attempt = static_cast<int>(std::strtol(digits, nullptr, 10));
    } else {
      return Status::InvalidArgument(
          StrCat("unknown fault scenario field ", key));
    }
  }
  return scenario;
}

FaultInjector::FaultInjector(const FaultScenario& scenario)
    : scenario_(scenario), rng_(scenario.seed) {}

void FaultInjector::OnDequeue(uint32_t node) {
  if (scenario_.kind == FaultKind::kHangWorker && node == scenario_.node) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    // Wedge, don't exit: a hung node is alive but silent, which is exactly
    // what distinguishes it from a crash. Only an external supervisor
    // (SIGKILL from the coordinator's watchdog) ends this sleep.
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
  if (scenario_.kind != FaultKind::kSlowWorker || node != scenario_.node) {
    return;
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(scenario_.delay);
}

bool FaultInjector::ShouldDropBatch(int op) {
  if (scenario_.kind != FaultKind::kDropBatch || !TargetsOp(op)) return false;
  if (!Roll()) return false;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::ShouldDuplicateBatch(int op) {
  if (scenario_.kind != FaultKind::kDuplicateBatch || !TargetsOp(op)) {
    return false;
  }
  if (!Roll()) return false;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::BeforeConsume(int op) {
  if (scenario_.kind != FaultKind::kFailOperator || !TargetsOp(op)) {
    return Status::OK();
  }
  uint64_t seen = batches_seen_.fetch_add(1, std::memory_order_relaxed);
  if (seen < scenario_.after_batches) return Status::OK();
  injected_.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal(StrCat("injected fault: operator ", op,
                                 " failed after ", seen, " batches"));
}

bool FaultInjector::Roll() {
  if (scenario_.probability >= 1.0) return true;
  MutexLock lock(&mutex_);
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
         scenario_.probability;
}

}  // namespace mjoin
