#include "engine/fault_injector.h"

#include <thread>

#include "common/string_util.h"

namespace mjoin {

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kSlowWorker:
      return "slow-worker";
    case FaultKind::kFailOperator:
      return "fail-op";
    case FaultKind::kDropBatch:
      return "drop-batch";
    case FaultKind::kDuplicateBatch:
      return "dup-batch";
  }
  return "unknown";
}

bool ParseFaultKind(const std::string& text, FaultKind* kind) {
  for (FaultKind candidate :
       {FaultKind::kNone, FaultKind::kSlowWorker, FaultKind::kFailOperator,
        FaultKind::kDropBatch, FaultKind::kDuplicateBatch}) {
    if (FaultKindName(candidate) == text) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

FaultInjector::FaultInjector(const FaultScenario& scenario)
    : scenario_(scenario), rng_(scenario.seed) {}

void FaultInjector::OnDequeue(uint32_t node) {
  if (scenario_.kind != FaultKind::kSlowWorker || node != scenario_.node) {
    return;
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(scenario_.delay);
}

bool FaultInjector::ShouldDropBatch(int op) {
  if (scenario_.kind != FaultKind::kDropBatch || !TargetsOp(op)) return false;
  if (!Roll()) return false;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::ShouldDuplicateBatch(int op) {
  if (scenario_.kind != FaultKind::kDuplicateBatch || !TargetsOp(op)) {
    return false;
  }
  if (!Roll()) return false;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::BeforeConsume(int op) {
  if (scenario_.kind != FaultKind::kFailOperator || !TargetsOp(op)) {
    return Status::OK();
  }
  uint64_t seen = batches_seen_.fetch_add(1, std::memory_order_relaxed);
  if (seen < scenario_.after_batches) return Status::OK();
  injected_.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal(StrCat("injected fault: operator ", op,
                                 " failed after ", seen, " batches"));
}

bool FaultInjector::Roll() {
  if (scenario_.probability >= 1.0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
         scenario_.probability;
}

}  // namespace mjoin
