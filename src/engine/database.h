#ifndef MJOIN_ENGINE_DATABASE_H_
#define MJOIN_ENGINE_DATABASE_H_

#include <map>
#include <string>

#include "common/statusor.h"
#include "storage/relation.h"

namespace mjoin {

/// A named collection of main-memory base relations (the "database" of one
/// experiment). Relations are owned by the database; executors fragment
/// them per query according to the plan's placement.
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers `relation` under `name`; fails if the name exists.
  [[nodiscard]] Status Add(const std::string& name, Relation relation);

  [[nodiscard]] StatusOr<const Relation*> Get(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return relations_.contains(name);
  }
  size_t size() const { return relations_.size(); }

  /// Total bytes across all relations.
  size_t TotalBytes() const;

 private:
  std::map<std::string, Relation> relations_;
};

/// Builds the paper's test database: `num_relations` Wisconsin relations
/// named rel0..relN-1 of `cardinality` tuples each, generated from
/// independent seeds derived from `seed` (so no correlation exists between
/// the unique attributes of different relations).
Database MakeWisconsinDatabase(int num_relations, uint32_t cardinality,
                               uint64_t seed);

/// Skew-extension database: rel0 is a regular Wisconsin relation (unique1
/// a permutation); rel1..relN-1 have Zipf(theta)-skewed unique1 columns.
/// On the *linear* chain query every join stays 1:1 in total result size,
/// but hash declustering concentrates the hot keys on few nodes — the load
/// imbalance the paper's "non-skewed partitioning" assumption rules out.
Database MakeSkewedDatabase(int num_relations, uint32_t cardinality,
                            uint64_t seed, double theta);

}  // namespace mjoin

#endif  // MJOIN_ENGINE_DATABASE_H_
