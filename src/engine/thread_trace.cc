#include "engine/thread_trace.h"

#include <algorithm>

#include "common/string_util.h"

namespace mjoin {

namespace {

/// Escapes the characters JSON string literals cannot contain verbatim.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

constexpr char kBlockedLabel = '~';

}  // namespace

const char* ThreadWorkTypeName(ThreadWorkType type) {
  switch (type) {
    case ThreadWorkType::kStartup:
      return "startup";
    case ThreadWorkType::kBuild:
      return "build";
    case ThreadWorkType::kProbe:
      return "probe";
    case ThreadWorkType::kPipeline:
      return "pipeline";
    case ThreadWorkType::kScan:
      return "scan";
    case ThreadWorkType::kMerge:
      return "merge";
    case ThreadWorkType::kEmit:
      return "emit";
    case ThreadWorkType::kBlocked:
      return "blocked";
    case ThreadWorkType::kSerialize:
      return "serialize";
    case ThreadWorkType::kDeserialize:
      return "deserialize";
    case ThreadWorkType::kBloomBuild:
      return "bloom-build";
    case ThreadWorkType::kOther:
      return "other";
  }
  return "other";
}

ThreadTraceRecorder::ThreadTraceRecorder(uint32_t num_workers,
                                         std::vector<ThreadTraceOpInfo> ops)
    : ops_(std::move(ops)),
      events_(num_workers),
      // lint:allow-clock trace origin, recorders exist only when tracing
      origin_(std::chrono::steady_clock::now()) {}

void ThreadTraceRecorder::Record(uint32_t worker, int64_t start_ns,
                                 int64_t end_ns, ThreadWorkType type,
                                 int op_id) {
  if (worker >= events_.size() || start_ns >= end_ns) return;
  events_[worker].push_back(ThreadTraceEvent{start_ns, end_ns, op_id, type});
}

size_t ThreadTraceRecorder::num_events() const {
  size_t n = 0;
  for (const auto& per_worker : events_) n += per_worker.size();
  return n;
}

TraceRecorder ThreadTraceRecorder::ToTickTrace() const {
  TraceRecorder ticks(num_workers());
  for (uint32_t w = 0; w < events_.size(); ++w) {
    for (const ThreadTraceEvent& ev : events_[w]) {
      char label = kBlockedLabel;
      if (ev.type != ThreadWorkType::kBlocked) {
        label = '?';
        if (ev.op_id >= 0 && static_cast<size_t>(ev.op_id) < ops_.size()) {
          label = ops_[static_cast<size_t>(ev.op_id)].label;
        }
      }
      ticks.Record(w, ev.start_ns / 1000, ev.end_ns / 1000, label);
    }
  }
  return ticks;
}

double ThreadTraceRecorder::Utilization(int64_t makespan_ns) const {
  if (makespan_ns <= 0 || events_.empty()) return 0;
  double busy = 0;
  for (const auto& per_worker : events_) {
    for (const ThreadTraceEvent& ev : per_worker) {
      // Blocked-on-queue time is not useful work.
      if (ev.type == ThreadWorkType::kBlocked) continue;
      busy += static_cast<double>(std::min(ev.end_ns, makespan_ns) -
                                  std::max<int64_t>(ev.start_ns, 0));
    }
  }
  return busy / (static_cast<double>(makespan_ns) *
                 static_cast<double>(events_.size()));
}

std::string ThreadTraceRecorder::RenderAscii(int64_t makespan_ns,
                                             uint32_t width) const {
  return ToTickTrace().Render(std::max<int64_t>(makespan_ns / 1000, 1), width,
                              "us");
}

std::string ThreadTraceRecorder::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&out, &first](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };
  // Metadata: name the process and each worker thread so the Perfetto track
  // list reads "worker 0", "worker 1", ...
  append(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"mjoin thread backend\"}}");
  for (uint32_t w = 0; w < events_.size(); ++w) {
    append(StrCat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":",
                  w, ",\"args\":{\"name\":\"worker ", w, "\"}}"));
  }
  for (uint32_t w = 0; w < events_.size(); ++w) {
    for (const ThreadTraceEvent& ev : events_[w]) {
      std::string name = "(blocked on queue)";
      if (ev.type != ThreadWorkType::kBlocked) {
        name = "op?";
        if (ev.op_id >= 0 && static_cast<size_t>(ev.op_id) < ops_.size()) {
          name = ops_[static_cast<size_t>(ev.op_id)].name;
        }
      }
      // trace_event timestamps are microseconds; keep sub-microsecond
      // precision with a fractional part.
      double ts_us = static_cast<double>(ev.start_ns) / 1000.0;
      double dur_us = static_cast<double>(ev.end_ns - ev.start_ns) / 1000.0;
      append(StrCat("{\"name\":\"", JsonEscape(name), "\",\"cat\":\"",
                    ThreadWorkTypeName(ev.type),
                    "\",\"ph\":\"X\",\"ts\":", FormatDouble(ts_us, 3),
                    ",\"dur\":", FormatDouble(dur_us, 3),
                    ",\"pid\":1,\"tid\":", w, ",\"args\":{\"op_id\":",
                    ev.op_id, "}}"));
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace mjoin
