#ifndef MJOIN_ENGINE_WARM_FLEET_H_
#define MJOIN_ENGINE_WARM_FLEET_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>

#include "engine/process_executor.h"

namespace mjoin {

/// Knobs of a warm fleet, fixed at Spawn() time for the fleet's whole
/// lifetime (queries executed on it inherit them; the per-query
/// ProcessExecOptions fields use_shm_data_plane/shm_ring_bytes/num_workers
/// are ignored in favor of these).
struct WarmFleetOptions {
  /// Fixed fleet size. Plans with fewer processors than workers leave the
  /// surplus workers idle for that query (they still handshake and report),
  /// so one fleet serves any plan shape.
  uint32_t num_workers = 4;
  /// Pre-map a fleet-lifetime shm arena at spawn; each query lays its ring
  /// directory over it (ShmDataPlane::CreateInArena). Off = all data moves
  /// over the sockets.
  bool use_shm_data_plane = true;
  /// Data bytes per ring laid over the arena; power of two >= 4096. The
  /// arena is sized for the worst-case directory of num_workers, so any
  /// plan fits.
  uint32_t shm_ring_bytes = 1u << 18;
};

/// A pre-forked, long-lived worker-process fleet that executes queries
/// without paying the per-query fork/exec + mmap cost of ProcessExecutor.
/// Workers run RunProcessWorker in persistent mode: after each query they
/// tear down its state, ack kIdle, and park waiting for the next kPlan.
/// The shm arena (mapping + doorbells) is created once, pre-fork, and
/// reused by every query.
///
/// Execute() is serialized by an internal mutex — one query at a time per
/// fleet (callers wanting concurrency run several fleets). Any failed run
/// poisons the fleet (its workers may be mid-query and unable to accept a
/// new plan); the next Execute() — or the retry loop inside the current
/// one — kills and reaps the old fleet, respawns a fresh one, and re-runs.
/// The destructor shuts the fleet down gracefully (kShutdown to parked
/// workers) and reaps every child; like ProcessExecutor, no process or
/// descriptor outlives the object.
class WarmProcessFleet {
 public:
  /// Forks the fleet (and maps the arena) immediately. `database` must
  /// outlive the fleet.
  [[nodiscard]] static StatusOr<std::unique_ptr<WarmProcessFleet>> Spawn(
      const Database* database, const WarmFleetOptions& options);

  ~WarmProcessFleet();
  WarmProcessFleet(const WarmProcessFleet&) = delete;
  WarmProcessFleet& operator=(const WarmProcessFleet&) = delete;

  /// Runs `plan` on the warm fleet. Semantics match
  /// ProcessExecutor::Execute (same result shape, retry policy, failure
  /// diagnoses, degrade_to_thread) except that options.num_workers,
  /// options.use_shm_data_plane, and options.shm_ring_bytes are overridden
  /// by the fleet's own spawn-time configuration, and a retry respawns the
  /// persistent fleet instead of forking a one-shot one.
  [[nodiscard]] StatusOr<ProcessQueryResult> Execute(
      const ParallelPlan& plan, const ProcessExecOptions& options,
      ThreadExecStats* stats_out = nullptr, ProcessNetStats* net_out = nullptr,
      ProcessExecStats* proc_out = nullptr);

  uint32_t num_workers() const;
  /// Current pid of worker `w` (changes after a respawn). Test hook.
  pid_t worker_pid(uint32_t w) const;
  /// Fleets spawned beyond the first — each one replaced a poisoned fleet.
  uint64_t respawns() const;

 private:
  WarmProcessFleet();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_WARM_FLEET_H_
