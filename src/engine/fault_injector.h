#ifndef MJOIN_ENGINE_FAULT_INJECTOR_H_
#define MJOIN_ENGINE_FAULT_INJECTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>

#include "common/statusor.h"
#include "common/sync.h"

namespace mjoin {

/// What a FaultInjector does to an execution (any backend).
enum class FaultKind {
  kNone = 0,
  /// One worker node sleeps `delay` before every message it processes —
  /// the "slow machine" of a shared-nothing cluster. Results must still be
  /// correct; backpressure keeps the node's queue bounded.
  kSlowWorker,
  /// Consume() on the target op fails after `after_batches` batches, as a
  /// crashed operation process would. The query must abort cleanly.
  kFailOperator,
  /// Data batches toward the target op are dropped with `probability` —
  /// a lossy interconnect. Execution must still terminate (EOS bookkeeping
  /// is per-producer, not per-batch); results are knowingly wrong.
  kDropBatch,
  /// Data batches toward the target op are delivered twice.
  kDuplicateBatch,
  /// One worker node wedges forever before its next message — the silent
  /// hang of a deadlocked or swapped-to-death machine. Only an external
  /// liveness watchdog (the process backend's heartbeat supervision) can
  /// end the query; the thread backend must not use this kind.
  kHangWorker,
};

std::string FaultKindName(FaultKind kind);
bool ParseFaultKind(const std::string& text, FaultKind* kind);

/// Where in an executor's message path a fault fires. The points are
/// backend-agnostic: the thread backend hits them on its in-memory queues,
/// the process backend on its socket path — so one FaultScenario means the
/// same thing under `--backend thread` and `--backend process`.
enum class FaultPoint {
  /// A worker dequeues the next message (thread: WorkerNode::Loop; process:
  /// the worker event loop picking the next task). kSlowWorker fires here.
  kDequeue = 0,
  /// A producer is about to post/send a data batch toward a consumer
  /// (thread: FlushDest; process: local delivery or the socket write).
  /// kDropBatch / kDuplicateBatch fire here.
  kSend = 1,
  /// A consumer is about to run Consume() on a delivered batch.
  /// kFailOperator fires here.
  kConsume = 2,
};

std::string FaultPointName(FaultPoint point);

/// The injection point at which `kind` fires (kNone maps to kDequeue; it
/// never fires anywhere).
FaultPoint FaultPointOf(FaultKind kind);

/// Stable single-line text form of a scenario ("kind=slow-worker node=0
/// delay-us=1000 ..."), used to ship scenarios across the coordinator ->
/// worker handshake of the process backend. Parse accepts exactly what
/// Serialize produces, plus any subset of the key=value fields.
std::string SerializeFaultScenario(const struct FaultScenario& scenario);
[[nodiscard]] StatusOr<struct FaultScenario> ParseFaultScenario(
    const std::string& text);

/// Parameters of one injected fault.
struct FaultScenario {
  FaultKind kind = FaultKind::kNone;
  /// kSlowWorker: which node sleeps, and for how long per message.
  uint32_t node = 0;
  std::chrono::microseconds delay{1000};
  /// Target op id for kFailOperator/kDropBatch/kDuplicateBatch; -1 = any.
  int op = -1;
  /// kFailOperator: let this many batches through first.
  uint64_t after_batches = 0;
  /// kDropBatch/kDuplicateBatch: per-batch chance in [0,1].
  double probability = 1.0;
  /// Seed for the probabilistic faults (deterministic per seed).
  uint64_t seed = 0;
  /// Restricts the fault to one execution attempt (0-based); -1 fires on
  /// every attempt. A retrying executor ships the attempt number in the
  /// plan envelope, so `on_attempt = 0` means "break the first try, let
  /// the retry run clean" — the canonical recovery scenario.
  int on_attempt = -1;
};

/// Test-controlled chaos, shared by the thread and process backends. Each
/// backend consults the injector at the three FaultPoint hook points
/// (kDequeue, kSend, kConsume); production runs pass no injector and pay
/// nothing.
///
/// Ownership / thread-safety contract: the injector is owned by the caller
/// (never by an executor) and must outlive every execution it is handed
/// to. All hooks are thread-safe — the thread backend calls them
/// concurrently from every worker thread. In the process backend each
/// worker process builds its own injector from the scenario text shipped
/// in the handshake (hooks fire worker-side, exactly where the thread
/// backend fires them), so `faults_injected()` counts are per-process and
/// are aggregated by the coordinator into the run's stats.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultScenario& scenario);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// FaultPoint::kDequeue — called by a worker before processing each
  /// message; sleeps when this node is the scenario's slow worker.
  void OnDequeue(uint32_t node);

  /// FaultPoint::kSend — called before a data batch is posted toward `op`.
  bool ShouldDropBatch(int op);
  bool ShouldDuplicateBatch(int op);

  /// FaultPoint::kConsume — called before Consume() on `op`; a non-OK
  /// status is the injected mid-stream operator failure and aborts the
  /// query.
  [[nodiscard]] Status BeforeConsume(int op);

  /// Number of faults actually fired (for test assertions).
  uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  const FaultScenario& scenario() const { return scenario_; }

 private:
  bool TargetsOp(int op) const {
    return scenario_.op < 0 || scenario_.op == op;
  }
  bool Roll();

  const FaultScenario scenario_;
  Mutex mutex_;
  std::mt19937_64 rng_ MJOIN_GUARDED_BY(mutex_);
  std::atomic<uint64_t> batches_seen_{0};
  std::atomic<uint64_t> injected_{0};
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_FAULT_INJECTOR_H_
