#ifndef MJOIN_ENGINE_FAULT_INJECTOR_H_
#define MJOIN_ENGINE_FAULT_INJECTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>

#include "common/status.h"

namespace mjoin {

/// What a FaultInjector does to a threaded execution.
enum class FaultKind {
  kNone = 0,
  /// One worker node sleeps `delay` before every message it processes —
  /// the "slow machine" of a shared-nothing cluster. Results must still be
  /// correct; backpressure keeps the node's queue bounded.
  kSlowWorker,
  /// Consume() on the target op fails after `after_batches` batches, as a
  /// crashed operation process would. The query must abort cleanly.
  kFailOperator,
  /// Data batches toward the target op are dropped with `probability` —
  /// a lossy interconnect. Execution must still terminate (EOS bookkeeping
  /// is per-producer, not per-batch); results are knowingly wrong.
  kDropBatch,
  /// Data batches toward the target op are delivered twice.
  kDuplicateBatch,
};

std::string FaultKindName(FaultKind kind);
bool ParseFaultKind(const std::string& text, FaultKind* kind);

/// Parameters of one injected fault.
struct FaultScenario {
  FaultKind kind = FaultKind::kNone;
  /// kSlowWorker: which node sleeps, and for how long per message.
  uint32_t node = 0;
  std::chrono::microseconds delay{1000};
  /// Target op id for kFailOperator/kDropBatch/kDuplicateBatch; -1 = any.
  int op = -1;
  /// kFailOperator: let this many batches through first.
  uint64_t after_batches = 0;
  /// kDropBatch/kDuplicateBatch: per-batch chance in [0,1].
  double probability = 1.0;
  /// Seed for the probabilistic faults (deterministic per seed).
  uint64_t seed = 0;
};

/// Test-controlled chaos for the threaded executor. ThreadRun consults the
/// injector at its hook points (worker dequeue, batch send, batch consume);
/// production runs pass no injector and pay nothing. All hooks are
/// thread-safe — they are called concurrently from every worker thread.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultScenario& scenario);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Called by a worker before processing each message; sleeps when this
  /// node is the scenario's slow worker.
  void OnDequeue(uint32_t node);

  /// Called before a data batch is posted toward `op`.
  bool ShouldDropBatch(int op);
  bool ShouldDuplicateBatch(int op);

  /// Called before Consume() on `op`; a non-OK status is the injected
  /// mid-stream operator failure and aborts the query.
  Status BeforeConsume(int op);

  /// Number of faults actually fired (for test assertions).
  uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  const FaultScenario& scenario() const { return scenario_; }

 private:
  bool TargetsOp(int op) const {
    return scenario_.op < 0 || scenario_.op == op;
  }
  bool Roll();

  const FaultScenario scenario_;
  std::mutex mutex_;  // guards rng_
  std::mt19937_64 rng_;
  std::atomic<uint64_t> batches_seen_{0};
  std::atomic<uint64_t> injected_{0};
};

}  // namespace mjoin

#endif  // MJOIN_ENGINE_FAULT_INJECTOR_H_
