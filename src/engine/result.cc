#include "engine/result.h"

#include "common/random.h"

namespace mjoin {

uint64_t HashRowBytes(const std::byte* row, size_t size) {
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<uint64_t>(std::to_integer<uint8_t>(row[i]));
    hash *= 1099511628211ULL;  // FNV prime
  }
  return Mix64(hash);
}

ResultSummary SummarizeRelation(const Relation& relation) {
  ResultSummary summary;
  size_t row_size = relation.schema().tuple_size();
  for (size_t i = 0; i < relation.num_tuples(); ++i) {
    summary.checksum += HashRowBytes(relation.tuple(i).data(), row_size);
    ++summary.cardinality;
  }
  return summary;
}

ResultSummary SummarizeFragments(const std::vector<Relation>& fragments) {
  ResultSummary summary;
  for (const Relation& fragment : fragments) {
    ResultSummary part = SummarizeRelation(fragment);
    summary.cardinality += part.cardinality;
    summary.checksum += part.checksum;
  }
  return summary;
}

}  // namespace mjoin
