#include "exec/filter.h"

#include <cstring>

#include "common/string_util.h"
#include "exec/emit.h"
#include "storage/tuple.h"

namespace mjoin {

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "between";
  }
  return "?";
}

bool FilterPredicate::Matches(int32_t candidate) const {
  switch (op) {
    case CompareOp::kEq:
      return candidate == value;
    case CompareOp::kNe:
      return candidate != value;
    case CompareOp::kLt:
      return candidate < value;
    case CompareOp::kLe:
      return candidate <= value;
    case CompareOp::kGt:
      return candidate > value;
    case CompareOp::kGe:
      return candidate >= value;
    case CompareOp::kBetween:
      return candidate >= value && candidate <= value2;
  }
  return false;
}

std::string FilterPredicate::ToString(const Schema& schema) const {
  std::string name = column < schema.num_columns()
                         ? schema.column(column).name
                         : StrCat("col", column);
  if (op == CompareOp::kBetween) {
    return StrCat(name, " between ", value, " and ", value2);
  }
  return StrCat(name, " ", CompareOpName(op), " ", value);
}

StatusOr<std::unique_ptr<FilterOp>> FilterOp::Make(
    std::shared_ptr<const Schema> input_schema, FilterPredicate predicate) {
  if (predicate.column >= input_schema->num_columns()) {
    return Status::OutOfRange(StrCat("filter column ", predicate.column,
                                     " out of range for ",
                                     input_schema->ToString()));
  }
  if (input_schema->column(predicate.column).type != ColumnType::kInt32) {
    return Status::InvalidArgument("filter predicates require int32 columns");
  }
  if (predicate.op == CompareOp::kBetween &&
      predicate.value > predicate.value2) {
    return Status::InvalidArgument("between bounds reversed");
  }
  return std::unique_ptr<FilterOp>(
      // lint:allow-new private-constructor factory, owned immediately
      new FilterOp(std::move(input_schema), predicate));
}

void FilterOp::Consume(int port, const TupleBatch& batch, OpContext* ctx) {
  if (ctx->cancelled()) return;
  // One unit per tuple: evaluating the predicate.
  ctx->Charge(static_cast<Ticks>(batch.num_tuples()) *
              ctx->costs().tuple_hash);
  tuples_in_ += batch.num_tuples();
  EmitWriter* writer = ctx->emit_writer();
  if (writer != nullptr) {
    // Output schema equals input schema, so a surviving row is copied
    // straight into the destination batch (its routing value, if any, is
    // the input row's value in the writer's split column).
    const int split = writer->split_column();
    const size_t row_bytes = schema_->tuple_size();
    for (size_t i = 0; i < batch.num_tuples(); ++i) {
      TupleRef t = batch.tuple(i);
      if (!predicate_.Matches(t.GetInt32(predicate_.column))) continue;
      ++tuples_out_;
      TupleWriter out = writer->Begin(
          split < 0 ? 0 : t.GetInt32(static_cast<size_t>(split)));
      std::memcpy(out.data(), t.data(), row_bytes);
      writer->Commit();
    }
    return;
  }
  for (size_t i = 0; i < batch.num_tuples(); ++i) {
    TupleRef t = batch.tuple(i);
    if (predicate_.Matches(t.GetInt32(predicate_.column))) {
      ++tuples_out_;
      ctx->EmitRow(t.data());
    }
  }
}

}  // namespace mjoin
