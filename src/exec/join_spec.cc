#include "exec/join_spec.h"

#include <set>

#include "common/string_util.h"

namespace mjoin {

namespace {

Status ValidateKey(const Schema& schema, size_t key, const char* which) {
  if (key >= schema.num_columns()) {
    return Status::OutOfRange(StrCat(which, " key column ", key,
                                     " out of range for schema ",
                                     schema.ToString()));
  }
  if (schema.column(key).type != ColumnType::kInt32) {
    return Status::InvalidArgument(
        StrCat(which, " key column '", schema.column(key).name,
               "' is not int32"));
  }
  return Status::OK();
}

}  // namespace

StatusOr<JoinSpec> MakeJoinSpec(std::shared_ptr<const Schema> left_schema,
                                std::shared_ptr<const Schema> right_schema,
                                size_t left_key, size_t right_key,
                                std::vector<JoinOutputColumn> output_columns) {
  MJOIN_RETURN_IF_ERROR(ValidateKey(*left_schema, left_key, "left"));
  MJOIN_RETURN_IF_ERROR(ValidateKey(*right_schema, right_key, "right"));

  std::vector<Column> out_columns;
  std::set<std::string> used_names;
  out_columns.reserve(output_columns.size());
  for (const JoinOutputColumn& oc : output_columns) {
    if (oc.side != 0 && oc.side != 1) {
      return Status::InvalidArgument(StrCat("bad join output side ", oc.side));
    }
    const Schema& src = oc.side == 0 ? *left_schema : *right_schema;
    if (oc.column >= src.num_columns()) {
      return Status::OutOfRange(StrCat("join output column ", oc.column,
                                       " out of range for ", src.ToString()));
    }
    Column col = src.column(oc.column);
    while (used_names.contains(col.name)) col.name += "_r";
    used_names.insert(col.name);
    out_columns.push_back(std::move(col));
  }

  JoinSpec spec;
  spec.left_schema = std::move(left_schema);
  spec.right_schema = std::move(right_schema);
  spec.left_key = left_key;
  spec.right_key = right_key;
  spec.output_columns = std::move(output_columns);
  spec.output_schema = std::make_shared<const Schema>(std::move(out_columns));
  return spec;
}

StatusOr<JoinSpec> MakeNaturalConcatJoinSpec(
    std::shared_ptr<const Schema> left_schema,
    std::shared_ptr<const Schema> right_schema, size_t left_key,
    size_t right_key) {
  std::vector<JoinOutputColumn> outputs;
  for (size_t c = 0; c < left_schema->num_columns(); ++c) {
    outputs.push_back(JoinOutputColumn::Left(c));
  }
  for (size_t c = 0; c < right_schema->num_columns(); ++c) {
    outputs.push_back(JoinOutputColumn::Right(c));
  }
  return MakeJoinSpec(std::move(left_schema), std::move(right_schema),
                      left_key, right_key, std::move(outputs));
}

}  // namespace mjoin
