#ifndef MJOIN_EXEC_SIMPLE_HASH_JOIN_H_
#define MJOIN_EXEC_SIMPLE_HASH_JOIN_H_

#include <memory>
#include <vector>

#include "exec/hash_table.h"
#include "exec/join_spec.h"
#include "exec/operator.h"

namespace mjoin {

/// The classic two-phase (build/probe) parallel hash-join of
/// [ScD89]/[Sch90], the paper's "simple hash-join": port 0 is the build
/// (left/inner) operand, port 1 the probe (right/outer) operand. Probe
/// batches that arrive before the build completes are buffered and
/// processed once port 0 finishes, so the operator is safe under any
/// scheduling, but strategies normally sequence the probe source after the
/// build milestone.
class SimpleHashJoinOp : public Operator {
 public:
  static constexpr int kBuildPort = 0;
  static constexpr int kProbePort = 1;

  // Probe batches are processed in chunks of this many tuples: keys are
  // gathered into probe_keys_ and handed to JoinHashTable::ProbeBatch, and
  // cancellation is polled between chunks (so a cancelled query stops
  // within one chunk, and cost accounting still covers exactly the tuples
  // probed).
  static constexpr size_t kProbeChunk = 128;

  explicit SimpleHashJoinOp(JoinSpec spec);

  int num_input_ports() const override { return 2; }

  void Open(OpContext* ctx) override;
  void Consume(int port, const TupleBatch& batch, OpContext* ctx) override;
  void InputDone(int port, OpContext* ctx) override;
  bool finished() const override {
    return build_done_ && probe_done_ && buffered_.empty();
  }
  void CollectMetrics(OpMetrics* metrics) const override;

  const std::shared_ptr<const Schema>& output_schema() const override {
    return spec_.output_schema;
  }
  size_t peak_memory_bytes() const override { return peak_memory_; }
  size_t memory_bytes() const override {
    return table_.memory_bytes() + buffered_bytes_;
  }
  void ReleaseMemory() override {
    table_.Clear();
    buffered_.clear();
    buffered_bytes_ = 0;
  }

  /// True once the hash table over the build operand is complete; hosts
  /// surface this as the kBuildDone milestone.
  bool build_done() const { return build_done_; }
  size_t hash_table_size() const { return table_.size(); }

  /// The build hash table, for the skew defense: hosts scan it (sketch +
  /// Bloom over build keys) once the build input has finished, and insert
  /// replicated hot-key rows through the mutable accessor before calling
  /// InputDone(kBuildPort). Only valid between those two points — the
  /// operator itself never exposes a half-built or released table.
  const JoinHashTable& table() const { return table_; }
  JoinHashTable* mutable_table() { return &table_; }
  /// Re-checks peak memory after defense inserts grew the table.
  void NoteTableGrowth() { UpdatePeakMemory(); }

 private:
  void ConsumeBuild(const TupleBatch& batch, OpContext* ctx);
  void ConsumeProbe(const TupleBatch& batch, OpContext* ctx);
  void UpdatePeakMemory();
  void CheckBudget(OpContext* ctx);

  JoinSpec spec_;
  JoinHashTable table_;
  bool build_done_ = false;
  bool probe_done_ = false;
  std::vector<TupleBatch> buffered_;
  size_t buffered_bytes_ = 0;
  MemoryReservation buffered_reservation_;
  size_t peak_memory_ = 0;
  // Scratch row reused when assembling output tuples (EmitRow fallback).
  std::vector<std::byte> out_row_;
  // Key-gather scratch for batch probing; capacity persists across batches.
  std::vector<int32_t> probe_keys_;
  // Which operand carries the routing value when the host hash-splits our
  // output: resolved in Open() from the writer's split column. side < 0
  // means routing is fixed (or no writer) and no value needs extracting.
  int route_side_ = -1;
  size_t route_column_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_SIMPLE_HASH_JOIN_H_
