#include "exec/project.h"

#include "common/string_util.h"
#include "exec/emit.h"
#include "storage/tuple.h"

namespace mjoin {

StatusOr<std::unique_ptr<ProjectOp>> ProjectOp::Make(
    std::shared_ptr<const Schema> input_schema, std::vector<size_t> columns) {
  std::vector<Column> out_columns;
  out_columns.reserve(columns.size());
  for (size_t c : columns) {
    if (c >= input_schema->num_columns()) {
      return Status::OutOfRange(StrCat("projection column ", c,
                                       " out of range for ",
                                       input_schema->ToString()));
    }
    out_columns.push_back(input_schema->column(c));
  }
  auto output_schema = std::make_shared<const Schema>(std::move(out_columns));
  // lint:allow-new private-constructor factory, owned immediately
  return std::unique_ptr<ProjectOp>(new ProjectOp(
      std::move(input_schema), std::move(columns), std::move(output_schema)));
}

ProjectOp::ProjectOp(std::shared_ptr<const Schema> input_schema,
                     std::vector<size_t> columns,
                     std::shared_ptr<const Schema> output_schema)
    : input_schema_(std::move(input_schema)),
      columns_(std::move(columns)),
      output_schema_(std::move(output_schema)) {
  out_row_.resize(output_schema_->tuple_size());
}

void ProjectOp::Consume(int port, const TupleBatch& batch, OpContext* ctx) {
  // One unit per tuple: constructing the projected tuple.
  ctx->Charge(static_cast<Ticks>(batch.num_tuples()) *
              ctx->costs().tuple_result);
  EmitWriter* emit = ctx->emit_writer();
  if (emit != nullptr) {
    // An output column is a copy of an input column, so the routing value
    // of a hash-split output is readable from the input row up front and
    // the projected row is built directly in the destination batch.
    const int split = emit->split_column();
    const size_t route_column =
        split < 0 ? 0 : columns_[static_cast<size_t>(split)];
    for (size_t i = 0; i < batch.num_tuples(); ++i) {
      TupleRef in = batch.tuple(i);
      TupleWriter out = emit->Begin(
          split < 0 ? 0 : in.GetInt32(route_column));
      for (size_t c = 0; c < columns_.size(); ++c) {
        out.CopyColumn(c, in, columns_[c]);
      }
      emit->Commit();
    }
    return;
  }
  for (size_t i = 0; i < batch.num_tuples(); ++i) {
    TupleRef in = batch.tuple(i);
    TupleWriter writer(out_row_.data(), output_schema_.get());
    for (size_t c = 0; c < columns_.size(); ++c) {
      writer.CopyColumn(c, in, columns_[c]);
    }
    ctx->EmitRow(out_row_.data());
  }
}

}  // namespace mjoin
