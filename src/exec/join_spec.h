#ifndef MJOIN_EXEC_JOIN_SPEC_H_
#define MJOIN_EXEC_JOIN_SPEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/statusor.h"
#include "storage/schema.h"

namespace mjoin {

/// One output column of a join: taken from the left (0) or right (1)
/// operand.
struct JoinOutputColumn {
  int side = 0;
  size_t column = 0;

  static JoinOutputColumn Left(size_t column) {
    return JoinOutputColumn{0, column};
  }
  static JoinOutputColumn Right(size_t column) {
    return JoinOutputColumn{1, column};
  }

  bool operator==(const JoinOutputColumn&) const = default;
};

/// Full description of a binary equi-join: operand schemas, int32 join key
/// columns, and the projection applied to matching pairs. The paper's
/// workload projects every join result back to a Wisconsin relation; the
/// engine supports arbitrary projections.
struct JoinSpec {
  std::shared_ptr<const Schema> left_schema;
  std::shared_ptr<const Schema> right_schema;
  size_t left_key = 0;
  size_t right_key = 0;
  std::vector<JoinOutputColumn> output_columns;
  std::shared_ptr<const Schema> output_schema;  // derived by MakeJoinSpec
};

/// Builds a JoinSpec, deriving the output schema from `output_columns`
/// (column names are taken from the source schemas; duplicate names get a
/// "_r" suffix). Validates key columns are int32 and all indices in range.
[[nodiscard]] StatusOr<JoinSpec> MakeJoinSpec(
    std::shared_ptr<const Schema> left_schema,
                                std::shared_ptr<const Schema> right_schema,
                                size_t left_key, size_t right_key,
                                std::vector<JoinOutputColumn> output_columns);

/// Convenience: output = all left columns followed by all right columns.
[[nodiscard]] StatusOr<JoinSpec> MakeNaturalConcatJoinSpec(
    std::shared_ptr<const Schema> left_schema,
    std::shared_ptr<const Schema> right_schema, size_t left_key,
    size_t right_key);

}  // namespace mjoin

#endif  // MJOIN_EXEC_JOIN_SPEC_H_
