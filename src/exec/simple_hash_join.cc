#include "exec/simple_hash_join.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/emit.h"
#include "exec/join_row.h"

namespace mjoin {

SimpleHashJoinOp::SimpleHashJoinOp(JoinSpec spec)
    : spec_(std::move(spec)), table_(spec_.left_schema, spec_.left_key) {
  out_row_.resize(spec_.output_schema->tuple_size());
}

void SimpleHashJoinOp::Open(OpContext* ctx) {
  table_.AttachBudget(ctx->memory_budget());
  buffered_reservation_.Attach(ctx->memory_budget());
  EmitWriter* writer = ctx->emit_writer();
  if (writer != nullptr && writer->split_column() >= 0) {
    const JoinOutputColumn& oc = spec_.output_columns[writer->split_column()];
    route_side_ = oc.side;
    route_column_ = oc.column;
  }
}

void SimpleHashJoinOp::Consume(int port, const TupleBatch& batch,
                               OpContext* ctx) {
  if (ctx->cancelled()) return;
  if (port == kBuildPort) {
    MJOIN_CHECK(!build_done_) << "build batch after build done";
    ConsumeBuild(batch, ctx);
  } else {
    MJOIN_CHECK(port == kProbePort);
    MJOIN_CHECK(!probe_done_) << "probe batch after probe done";
    if (!build_done_) {
      // Probe arrived early: buffer it (memory, no CPU yet besides the
      // host's receive cost) until the hash table is complete.
      TupleBatch copy(batch.shared_schema());
      copy.AppendRows(batch.raw_data(), batch.num_tuples());
      buffered_bytes_ += batch.num_tuples() * batch.schema().tuple_size();
      buffered_.push_back(std::move(copy));
      UpdatePeakMemory();
      if (!buffered_reservation_.Resize(buffered_bytes_).ok()) {
        ctx->ReportError(Status::ResourceExhausted(
            "hash join probe buffer exceeds the query memory budget"));
        return;
      }
    } else {
      ConsumeProbe(batch, ctx);
    }
  }
  CheckBudget(ctx);
}

void SimpleHashJoinOp::ConsumeBuild(const TupleBatch& batch, OpContext* ctx) {
  const CostParams& costs = ctx->costs();
  ctx->Charge(static_cast<Ticks>(batch.num_tuples()) *
              (costs.tuple_hash + costs.tuple_build));
  for (size_t i = 0; i < batch.num_tuples(); ++i) {
    table_.Insert(batch.tuple(i).data());
  }
  UpdatePeakMemory();
}

void SimpleHashJoinOp::ConsumeProbe(const TupleBatch& batch, OpContext* ctx) {
  const CostParams& costs = ctx->costs();
  EmitWriter* writer = ctx->emit_writer();
  const size_t n = batch.num_tuples();
  // Charged per tuple actually probed, after the loop: a between-chunk
  // cancellation must not be billed for the skipped tail, and the result
  // charge must cover exactly the rows that were emitted.
  size_t processed = 0;
  size_t results = 0;
  while (processed < n) {
    if (ctx->cancelled()) break;
    const size_t chunk = std::min(kProbeChunk, n - processed);
    probe_keys_.resize(chunk);
    for (size_t i = 0; i < chunk; ++i) {
      probe_keys_[i] = batch.tuple(processed + i).GetInt32(spec_.right_key);
    }
    if (writer != nullptr) {
      results += table_.ProbeBatch(
          probe_keys_.data(), chunk, [&](size_t i, const TupleRef& build) {
            TupleRef probe = batch.tuple(processed + i);
            int32_t route =
                route_side_ < 0
                    ? 0
                    : (route_side_ == 0 ? build : probe).GetInt32(route_column_);
            TupleWriter out = writer->Begin(route);
            AssembleJoinRow(spec_, build, probe, out);
            writer->Commit();
          });
    } else {
      results += table_.ProbeBatch(
          probe_keys_.data(), chunk, [&](size_t i, const TupleRef& build) {
            AssembleJoinRow(spec_, build, batch.tuple(processed + i),
                            out_row_.data());
            ctx->EmitRow(out_row_.data());
          });
    }
    processed += chunk;
  }
  ctx->Charge(static_cast<Ticks>(processed) *
                  (costs.tuple_hash + costs.tuple_probe) +
              static_cast<Ticks>(results) * costs.tuple_result);
}

void SimpleHashJoinOp::InputDone(int port, OpContext* ctx) {
  if (port == kBuildPort) {
    MJOIN_CHECK(!build_done_);
    build_done_ = true;
    // Replay any probe input that arrived during the build phase.
    std::vector<TupleBatch> pending = std::move(buffered_);
    buffered_.clear();
    buffered_bytes_ = 0;
    for (const TupleBatch& batch : pending) {
      if (ctx->cancelled()) break;
      ConsumeProbe(batch, ctx);
    }
    // Safe to drop: shrinking a reservation to zero only releases bytes
    // and cannot fail.
    (void)buffered_reservation_.Resize(0);
  } else {
    MJOIN_CHECK(port == kProbePort);
    MJOIN_CHECK(!probe_done_);
    probe_done_ = true;
  }
  CheckBudget(ctx);
}

void SimpleHashJoinOp::CollectMetrics(OpMetrics* metrics) const {
  metrics->hash_table_rows += table_.total_inserted();
  metrics->hash_collisions += table_.collisions();
}

void SimpleHashJoinOp::UpdatePeakMemory() {
  peak_memory_ = std::max(peak_memory_, table_.memory_bytes() + buffered_bytes_);
}

void SimpleHashJoinOp::CheckBudget(OpContext* ctx) {
  if (table_.over_budget()) {
    ctx->ReportError(Status::ResourceExhausted(
        "hash join build table exceeds the query memory budget"));
  }
}

}  // namespace mjoin
