#ifndef MJOIN_EXEC_OPERATOR_H_
#define MJOIN_EXEC_OPERATOR_H_

#include <memory>

#include "common/memory_budget.h"
#include "common/status.h"
#include "exec/batch.h"
#include "sim/cost_params.h"
#include "storage/schema.h"

namespace mjoin {

/// Services an operator needs from its host (an operation process on a
/// simulated node or on a real thread): CPU-cost accounting and routed
/// output. Operators only charge their *processing* costs; the host charges
/// network send/receive and handshake costs.
class OpContext {
 public:
  virtual ~OpContext() = default;

  /// Accounts `cost` simulated CPU ticks to the current task. A no-op in
  /// the wall-clock (threaded) backend.
  virtual void Charge(Ticks cost) = 0;

  /// Hands one output row (output_schema().tuple_size() bytes) to the host,
  /// which routes it to the consumer (split by hash, stored locally, ...).
  virtual void EmitRow(const std::byte* row) = 0;

  /// Cost model in effect.
  virtual const CostParams& costs() const = 0;

  /// Per-query memory budget, or null when the host does not enforce one
  /// (the simulator models memory pressure its own way). Operators attach
  /// their hash tables and run buffers to it in Open().
  virtual MemoryBudget* memory_budget() const { return nullptr; }

  /// True once the query is being torn down (cancellation, deadline, an
  /// earlier error). Operators poll this at batch boundaries and inside
  /// long result loops, and drop remaining work when it fires.
  virtual bool cancelled() const { return false; }

  /// Reports a runtime failure (budget exhausted, injected fault). Hosts
  /// with an abort path stop the query and surface `status` to the caller;
  /// the default ignores it (infallible backends never call this with a
  /// non-OK status).
  virtual void ReportError(const Status& status) {}
};

/// A physical relational operator, written push-based so that both the
/// discrete-event backend and the threaded backend can drive it:
///
///   - sources (scans) implement Produce(), called repeatedly, one batch of
///     work per call, until it returns false;
///   - non-sources implement Consume()/InputDone() per input port.
///
/// The host checks finished() after every callback; when it turns true the
/// host flushes remaining output and propagates end-of-stream downstream.
class Operator {
 public:
  virtual ~Operator() = default;

  /// True for scans (no input ports, driven by Produce).
  virtual bool is_source() const { return false; }

  /// Number of input ports (0 for sources, 2 for joins, 1 otherwise).
  virtual int num_input_ports() const { return 0; }

  /// Called once before any other callback.
  virtual void Open(OpContext* ctx) {}

  /// Sources: perform one batch of work; return true while more remains.
  virtual bool Produce(OpContext* ctx) { return false; }

  /// Non-sources: consume one input batch arriving on `port`.
  virtual void Consume(int port, const TupleBatch& batch, OpContext* ctx) {}

  /// All producers of `port` have finished.
  virtual void InputDone(int port, OpContext* ctx) {}

  /// True when the operator will emit no more output.
  virtual bool finished() const = 0;

  /// Schema of emitted rows.
  virtual const std::shared_ptr<const Schema>& output_schema() const = 0;

  /// Peak extra memory held (hash tables, buffered batches), in bytes.
  virtual size_t peak_memory_bytes() const { return 0; }

  /// Extra memory currently held; drives the memory-pressure simulation
  /// (paper's disk-based discussion: joins sharing a too-small memory
  /// cause extra disk traffic).
  virtual size_t memory_bytes() const { return 0; }

  /// Drops all retained memory; called by the host when the operator
  /// finished (PRISMA frees a join's hash tables when the join completes).
  virtual void ReleaseMemory() {}
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_OPERATOR_H_
