#ifndef MJOIN_EXEC_OPERATOR_H_
#define MJOIN_EXEC_OPERATOR_H_

#include <memory>

#include "common/memory_budget.h"
#include "common/stats.h"
#include "common/status.h"
#include "exec/batch.h"
#include "sim/cost_params.h"
#include "storage/schema.h"

namespace mjoin {

class EmitWriter;

/// Runtime metrics of one operation process, filled by hosts that observe
/// execution (the threaded backend) and by the operator itself via
/// Operator::CollectMetrics(). Plain fields, no synchronization: one
/// instance's callbacks all run on one thread, and hosts aggregate across
/// instances only after the workers have been joined.
struct OpMetrics {
  /// Tuples / batches received per input port (ports as in the operator:
  /// joins use [0]=build/left, [1]=probe/right).
  uint64_t rows_in[2] = {0, 0};
  uint64_t batches_in[2] = {0, 0};
  /// Tuples emitted, before routing.
  uint64_t rows_out = 0;

  /// Wall-clock seconds spent inside operator callbacks, bucketed by the
  /// kind of work the callback performed (the same work types the trace
  /// labels use). Summed over instances these are CPU-seconds, so they can
  /// exceed the query's wall time.
  double build_seconds = 0;     // hash-table build / run-buffer fill
  double probe_seconds = 0;     // probe phase, probe replay, merge phase
  double pipeline_seconds = 0;  // symmetric pipelining work, filters
  double scan_seconds = 0;      // source Produce() calls
  double emit_seconds = 0;      // pipeline-breaker output (aggregation)
  double other_seconds = 0;     // Open(), bookkeeping callbacks

  /// Join/aggregation hash-table detail (lifetime counters: rows ever
  /// inserted and linear-probing collisions, surviving table clears).
  uint64_t hash_table_rows = 0;
  uint64_t hash_collisions = 0;

  /// Peak operator-held memory (hash tables, run buffers), in bytes.
  size_t peak_memory_bytes = 0;

  /// Skew-defense detail (zero when the defense is off). Detection and
  /// replication are attributed to the defended join; the drop/re-route
  /// counters are attributed to the producer whose EmitWriter carried the
  /// defense (the op that *saved* the wire bytes).
  uint64_t skew_hot_keys = 0;           // hot keys detected at build time
  uint64_t skew_replicated_rows = 0;    // build rows inserted from directives
  uint64_t skew_repartitioned_rows = 0; // probe rows sprayed round-robin
  uint64_t skew_bloom_filtered_rows = 0;  // probe rows dropped pre-wire
  double skew_bloom_build_seconds = 0;  // sketch + Bloom arena scans
  /// Estimated false-positive rate of the Bloom filter this op's writer
  /// probed against (max over instances; 0 when no filter was installed).
  double skew_bloom_fp_rate = 0;

  /// Per-batch consume latency samples, in seconds.
  PercentileTracker batch_seconds;

  double busy_seconds() const {
    return build_seconds + probe_seconds + pipeline_seconds + scan_seconds +
           emit_seconds + other_seconds + skew_bloom_build_seconds;
  }

  /// Accumulates `other` into this (merging instances of one operation).
  void MergeFrom(const OpMetrics& other) {
    for (int port = 0; port < 2; ++port) {
      rows_in[port] += other.rows_in[port];
      batches_in[port] += other.batches_in[port];
    }
    rows_out += other.rows_out;
    build_seconds += other.build_seconds;
    probe_seconds += other.probe_seconds;
    pipeline_seconds += other.pipeline_seconds;
    scan_seconds += other.scan_seconds;
    emit_seconds += other.emit_seconds;
    other_seconds += other.other_seconds;
    hash_table_rows += other.hash_table_rows;
    hash_collisions += other.hash_collisions;
    peak_memory_bytes += other.peak_memory_bytes;
    skew_hot_keys += other.skew_hot_keys;
    skew_replicated_rows += other.skew_replicated_rows;
    skew_repartitioned_rows += other.skew_repartitioned_rows;
    skew_bloom_filtered_rows += other.skew_bloom_filtered_rows;
    skew_bloom_build_seconds += other.skew_bloom_build_seconds;
    if (other.skew_bloom_fp_rate > skew_bloom_fp_rate) {
      skew_bloom_fp_rate = other.skew_bloom_fp_rate;
    }
    batch_seconds.Merge(other.batch_seconds);
  }
};

/// Services an operator needs from its host (an operation process on a
/// simulated node or on a real thread): CPU-cost accounting and routed
/// output. Operators only charge their *processing* costs; the host charges
/// network send/receive and handshake costs.
class OpContext {
 public:
  virtual ~OpContext() = default;

  /// Accounts `cost` simulated CPU ticks to the current task. A no-op in
  /// the wall-clock (threaded) backend.
  virtual void Charge(Ticks cost) = 0;

  /// Hands one output row (output_schema().tuple_size() bytes) to the host,
  /// which routes it to the consumer (split by hash, stored locally, ...).
  virtual void EmitRow(const std::byte* row) = 0;

  /// Hands `count` contiguous output rows (count * row_bytes) to the host
  /// at once. Semantically a loop of EmitRow (the default implementation);
  /// hosts override to bulk-copy when routing permits, collapsing the
  /// per-row virtual dispatch to one call per batch.
  virtual void EmitRows(const std::byte* rows, size_t count,
                        size_t row_bytes) {
    for (size_t i = 0; i < count; ++i) EmitRow(rows + i * row_bytes);
  }

  /// The zero-copy emit channel (see exec/emit.h), or null when the host
  /// only supports the copying EmitRow path. Operators read this once per
  /// callback and build output rows directly in the destination batch when
  /// it is available.
  virtual EmitWriter* emit_writer() { return nullptr; }

  /// Cost model in effect.
  virtual const CostParams& costs() const = 0;

  /// Per-query memory budget, or null when the host does not enforce one
  /// (the simulator models memory pressure its own way). Operators attach
  /// their hash tables and run buffers to it in Open().
  virtual MemoryBudget* memory_budget() const { return nullptr; }

  /// True once the query is being torn down (cancellation, deadline, an
  /// earlier error). Operators poll this at batch boundaries and inside
  /// long result loops, and drop remaining work when it fires.
  virtual bool cancelled() const { return false; }

  /// Reports a runtime failure (budget exhausted, injected fault). Hosts
  /// with an abort path stop the query and surface `status` to the caller;
  /// the default ignores it (infallible backends never call this with a
  /// non-OK status).
  virtual void ReportError(const Status& status) {}

  /// This instance's metrics sink, or null when the host does not collect
  /// metrics. Operators may add detail counters here during execution; the
  /// host owns the struct and merges it across instances after the run.
  virtual OpMetrics* metrics() const { return nullptr; }
};

/// A physical relational operator, written push-based so that both the
/// discrete-event backend and the threaded backend can drive it:
///
///   - sources (scans) implement Produce(), called repeatedly, one batch of
///     work per call, until it returns false;
///   - non-sources implement Consume()/InputDone() per input port.
///
/// The host checks finished() after every callback; when it turns true the
/// host flushes remaining output and propagates end-of-stream downstream.
class Operator {
 public:
  virtual ~Operator() = default;

  /// True for scans (no input ports, driven by Produce).
  virtual bool is_source() const { return false; }

  /// Number of input ports (0 for sources, 2 for joins, 1 otherwise).
  virtual int num_input_ports() const { return 0; }

  /// Called once before any other callback.
  virtual void Open(OpContext* ctx) {}

  /// Sources: perform one batch of work; return true while more remains.
  virtual bool Produce(OpContext* ctx) { return false; }

  /// Non-sources: consume one input batch arriving on `port`.
  virtual void Consume(int port, const TupleBatch& batch, OpContext* ctx) {}

  /// All producers of `port` have finished.
  virtual void InputDone(int port, OpContext* ctx) {}

  /// True when the operator will emit no more output.
  virtual bool finished() const = 0;

  /// Schema of emitted rows.
  virtual const std::shared_ptr<const Schema>& output_schema() const = 0;

  /// Peak extra memory held (hash tables, buffered batches), in bytes.
  virtual size_t peak_memory_bytes() const { return 0; }

  /// Extra memory currently held; drives the memory-pressure simulation
  /// (paper's disk-based discussion: joins sharing a too-small memory
  /// cause extra disk traffic).
  virtual size_t memory_bytes() const { return 0; }

  /// Drops all retained memory; called by the host when the operator
  /// finished (PRISMA frees a join's hash tables when the join completes).
  virtual void ReleaseMemory() {}

  /// Adds operator-specific detail (hash-table fill and collisions, group
  /// counts) into `metrics`. Observing hosts call this once per instance
  /// when gathering stats; implementations must *add to* the fields, not
  /// overwrite them.
  virtual void CollectMetrics(OpMetrics* metrics) const {}
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_OPERATOR_H_
