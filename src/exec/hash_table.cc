#include "exec/hash_table.h"

namespace mjoin {

JoinHashTable::JoinHashTable(std::shared_ptr<const Schema> schema,
                             size_t key_column)
    : schema_(std::move(schema)), key_column_(key_column) {
  MJOIN_CHECK(key_column_ < schema_->num_columns());
  MJOIN_CHECK(schema_->column(key_column_).type == ColumnType::kInt32);
}

void JoinHashTable::Insert(const std::byte* row) {
  if (num_rows_ * 10 >= capacity_ * 7) Grow();
  size_t row_index = num_rows_++;
  ++total_inserted_;
  arena_.insert(arena_.end(), row, row + schema_->tuple_size());
  InsertSlot(row_index, /*count_collisions=*/true);
  if (reservation_.attached()) {
    over_budget_ |= !reservation_.Resize(memory_bytes()).ok();
  }
}

void JoinHashTable::InsertSlot(size_t row_index, bool count_collisions) {
  size_t mask = capacity_ - 1;
  int32_t key = RowAt(row_index).GetInt32(key_column_);
  size_t slot = static_cast<size_t>(HashJoinKey(key)) & mask;
  while (slots_[slot] != kEmpty) {
    if (count_collisions) ++insert_collisions_;
    slot = (slot + 1) & mask;
  }
  slots_[slot] = row_index + 1;
}

void JoinHashTable::Grow() {
  size_t new_capacity = capacity_ == 0 ? 64 : capacity_ * 2;
  capacity_ = new_capacity;
  slots_.assign(new_capacity, kEmpty);
  // Rehash steps are an artifact of growth, not of key clustering; keep
  // them out of the collision counters.
  for (size_t i = 0; i < num_rows_; ++i) {
    InsertSlot(i, /*count_collisions=*/false);
  }
}

void JoinHashTable::Clear() {
  num_rows_ = 0;
  capacity_ = 0;
  slots_.clear();
  slots_.shrink_to_fit();
  arena_.clear();
  arena_.shrink_to_fit();
  // Safe to drop: shrinking a reservation to zero only releases bytes and
  // cannot fail.
  if (reservation_.attached()) (void)reservation_.Resize(0);
}

void JoinHashTable::AttachBudget(MemoryBudget* budget) {
  reservation_.Attach(budget);
  over_budget_ = false;
  if (budget != nullptr && memory_bytes() > 0) {
    over_budget_ = !reservation_.Resize(memory_bytes()).ok();
  }
}

}  // namespace mjoin
