#ifndef MJOIN_EXEC_PIPELINING_HASH_JOIN_H_
#define MJOIN_EXEC_PIPELINING_HASH_JOIN_H_

#include <memory>
#include <vector>

#include "exec/hash_table.h"
#include "exec/join_spec.h"
#include "exec/operator.h"

namespace mjoin {

/// The symmetric pipelining hash-join of [WiA90, WiA91] (Figure 1 of the
/// paper): a hash table is built over *both* operands and the join runs in
/// a single phase. As each tuple arrives on either port it probes the
/// other operand's (partial) hash table, emits any matches, and is then
/// inserted into its own table. Output is produced as early as possible,
/// enabling pipelining along both operands, at the cost of a second hash
/// table in memory.
class PipeliningHashJoinOp : public Operator {
 public:
  static constexpr int kLeftPort = 0;
  static constexpr int kRightPort = 1;

  // Arriving batches are processed in chunks of this many tuples: keys are
  // gathered into keys_ and the whole chunk probes the other operand's
  // table via JoinHashTable::ProbeBatch before the chunk is inserted into
  // our own table. A chunk's probes can never hit rows inserted by the
  // same chunk (they target the *other* table), so the split preserves the
  // tuple-at-a-time semantics exactly. Cancellation is polled per chunk.
  static constexpr size_t kChunk = 128;

  explicit PipeliningHashJoinOp(JoinSpec spec);

  int num_input_ports() const override { return 2; }

  void Open(OpContext* ctx) override;
  void Consume(int port, const TupleBatch& batch, OpContext* ctx) override;
  void InputDone(int port, OpContext* ctx) override;
  bool finished() const override { return done_[0] && done_[1]; }
  void CollectMetrics(OpMetrics* metrics) const override;

  const std::shared_ptr<const Schema>& output_schema() const override {
    return spec_.output_schema;
  }
  size_t peak_memory_bytes() const override { return peak_memory_; }
  size_t memory_bytes() const override {
    return tables_[0].memory_bytes() + tables_[1].memory_bytes();
  }
  void ReleaseMemory() override {
    tables_[0].Clear();
    tables_[1].Clear();
  }

  size_t left_table_size() const { return tables_[0].size(); }
  size_t right_table_size() const { return tables_[1].size(); }

 private:
  JoinSpec spec_;
  // tables_[0] over the left operand, tables_[1] over the right.
  JoinHashTable tables_[2];
  bool done_[2] = {false, false};
  size_t peak_memory_ = 0;
  // Scratch row for the EmitRow fallback path.
  std::vector<std::byte> out_row_;
  // Key-gather scratch; capacity persists across batches.
  std::vector<int32_t> keys_;
  // Routing-value source when the host hash-splits our output (see
  // SimpleHashJoinOp): output-schema side/column resolved in Open().
  int route_side_ = -1;
  size_t route_column_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_PIPELINING_HASH_JOIN_H_
