#include "exec/batch_pool.h"

#include <utility>

namespace mjoin {

std::shared_ptr<TupleBatch> BatchPool::Acquire(
    std::shared_ptr<const Schema> schema) {
  std::unique_ptr<TupleBatch> batch;
  {
    MutexLock lock(&mutex_);
    if (!free_.empty()) {
      batch = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (batch != nullptr) {
    batch->ResetSchema(std::move(schema));
    reused_.fetch_add(1, std::memory_order_relaxed);
  } else {
    batch = std::make_unique<TupleBatch>(std::move(schema));
    allocated_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::shared_ptr<TupleBatch>(
      batch.release(), [this](TupleBatch* b) {
        Release(std::unique_ptr<TupleBatch>(b));
      });
}

void BatchPool::Release(std::unique_ptr<TupleBatch> batch) {
  MutexLock lock(&mutex_);
  free_.push_back(std::move(batch));
}

}  // namespace mjoin
