#ifndef MJOIN_EXEC_AGGREGATE_H_
#define MJOIN_EXEC_AGGREGATE_H_

#include <map>
#include <memory>

#include "common/statusor.h"
#include "exec/operator.h"

namespace mjoin {

/// Hash group-by aggregation over one int32 grouping column with COUNT(*),
/// SUM/MIN/MAX over one int32 value column — the XRA "grouping primitive".
/// Output schema: (group:i32, count:i64, sum:i64, min:i32, max:i32).
/// Parallelized by hash-splitting the input on the grouping column, so
/// every instance owns disjoint groups; results are emitted when the input
/// is exhausted (aggregation is a pipeline breaker).
class AggregateOp : public Operator {
 public:
  /// Validates `group_column` and `value_column` against `input_schema`.
  [[nodiscard]] static StatusOr<std::unique_ptr<AggregateOp>> Make(
      std::shared_ptr<const Schema> input_schema, size_t group_column,
      size_t value_column);

  int num_input_ports() const override { return 1; }

  void Consume(int port, const TupleBatch& batch, OpContext* ctx) override;
  void InputDone(int port, OpContext* ctx) override;
  bool finished() const override { return done_; }

  const std::shared_ptr<const Schema>& output_schema() const override {
    return output_schema_;
  }
  size_t peak_memory_bytes() const override { return peak_memory_; }
  size_t memory_bytes() const override { return current_memory_; }
  void ReleaseMemory() override;
  void CollectMetrics(OpMetrics* metrics) const override {
    // The group table is the aggregation's "hash table"; a group never
    // collides in the std::map sense, so only fill is reported.
    metrics->hash_table_rows += groups_.size();
  }

  size_t num_groups() const { return groups_.size(); }

 private:
  struct Accumulator {
    int64_t count = 0;
    int64_t sum = 0;
    int32_t min = 0;
    int32_t max = 0;
  };

  AggregateOp(std::shared_ptr<const Schema> input_schema, size_t group_column,
              size_t value_column,
              std::shared_ptr<const Schema> output_schema)
      : input_schema_(std::move(input_schema)),
        group_column_(group_column),
        value_column_(value_column),
        output_schema_(std::move(output_schema)) {}

  std::shared_ptr<const Schema> input_schema_;
  size_t group_column_;
  size_t value_column_;
  std::shared_ptr<const Schema> output_schema_;
  // Ordered map so output order (and thus traces) is deterministic.
  std::map<int32_t, Accumulator> groups_;
  bool done_ = false;
  size_t current_memory_ = 0;
  size_t peak_memory_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_AGGREGATE_H_
