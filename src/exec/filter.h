#ifndef MJOIN_EXEC_FILTER_H_
#define MJOIN_EXEC_FILTER_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "exec/operator.h"

namespace mjoin {

/// Comparison operators for FilterPredicate.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kBetween };

std::string CompareOpName(CompareOp op);

/// A predicate over one int32 column: `column <op> value` (kBetween:
/// value <= column <= value2, inclusive).
struct FilterPredicate {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  int32_t value = 0;
  int32_t value2 = 0;

  bool Matches(int32_t candidate) const;
  std::string ToString(const Schema& schema) const;
};

/// Selection: passes through tuples satisfying the predicate. The output
/// schema equals the input schema, so filters compose with any routing.
class FilterOp : public Operator {
 public:
  /// Validates the predicate's column against `input_schema`.
  [[nodiscard]] static StatusOr<std::unique_ptr<FilterOp>> Make(
      std::shared_ptr<const Schema> input_schema, FilterPredicate predicate);

  int num_input_ports() const override { return 1; }

  void Consume(int port, const TupleBatch& batch, OpContext* ctx) override;
  void InputDone(int port, OpContext* ctx) override { done_ = true; }
  bool finished() const override { return done_; }

  const std::shared_ptr<const Schema>& output_schema() const override {
    return schema_;
  }

  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }

 private:
  FilterOp(std::shared_ptr<const Schema> schema, FilterPredicate predicate)
      : schema_(std::move(schema)), predicate_(predicate) {}

  std::shared_ptr<const Schema> schema_;
  FilterPredicate predicate_;
  bool done_ = false;
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_FILTER_H_
