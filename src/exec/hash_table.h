#ifndef MJOIN_EXEC_HASH_TABLE_H_
#define MJOIN_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/memory_budget.h"
#include "storage/partitioner.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace mjoin {

/// Join hash table over an int32 key: open addressing with linear probing,
/// duplicate keys stored as separate slots, rows copied into a contiguous
/// arena. This is the main-memory hash table both the simple and the
/// pipelining hash-join build.
class JoinHashTable {
 public:
  JoinHashTable(std::shared_ptr<const Schema> schema, size_t key_column);

  JoinHashTable(const JoinHashTable&) = delete;
  JoinHashTable& operator=(const JoinHashTable&) = delete;

  /// Copies `row` (schema().tuple_size() bytes) into the table.
  void Insert(const std::byte* row);

  /// Invokes `fn(TupleRef)` for every stored row whose key equals `key`.
  /// Returns the number of matches.
  template <typename Fn>
  size_t Probe(int32_t key, Fn&& fn) const {
    if (capacity_ == 0) return 0;
    size_t matches = 0;
    size_t mask = capacity_ - 1;
    size_t slot = static_cast<size_t>(HashJoinKey(key)) & mask;
    while (slots_[slot] != kEmpty) {
      size_t row_index = slots_[slot] - 1;
      TupleRef row = RowAt(row_index);
      if (row.GetInt32(key_column_) == key) {
        ++matches;
        fn(row);
      } else {
        ++probe_collisions_;
      }
      slot = (slot + 1) & mask;
    }
    return matches;
  }

  /// Batch-at-a-time probe: first hashes all `n` keys in one tight pass
  /// (no table accesses, so the loop vectorizes and the key loads stream),
  /// then walks each key's slot chain. Invokes `fn(i, TupleRef)` for every
  /// stored row matching keys[i], in ascending i. Returns the total number
  /// of matches. Equivalent to calling Probe(keys[i], ...) for each i.
  template <typename Fn>
  size_t ProbeBatch(const int32_t* keys, size_t n, Fn&& fn) const {
    if (capacity_ == 0 || n == 0) return 0;
    const size_t mask = capacity_ - 1;
    probe_slots_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      probe_slots_[i] = static_cast<size_t>(HashJoinKey(keys[i])) & mask;
    }
    size_t matches = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t slot = probe_slots_[i];
      const int32_t key = keys[i];
      while (slots_[slot] != kEmpty) {
        size_t row_index = slots_[slot] - 1;
        TupleRef row = RowAt(row_index);
        if (row.GetInt32(key_column_) == key) {
          ++matches;
          fn(i, row);
        } else {
          ++probe_collisions_;
        }
        slot = (slot + 1) & mask;
      }
    }
    return matches;
  }

  /// Invokes `fn(TupleRef)` for every stored row, in insertion order —
  /// the arena scan the skew defense uses to sketch and Bloom-index the
  /// completed build side.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (size_t i = 0; i < num_rows_; ++i) fn(RowAt(i));
  }

  size_t size() const { return num_rows_; }
  /// Arena + slot array footprint, for the paper's FP-uses-more-memory
  /// observation.
  size_t memory_bytes() const {
    return arena_.size() + slots_.size() * sizeof(uint64_t);
  }

  const Schema& schema() const { return *schema_; }
  size_t key_column() const { return key_column_; }

  /// Lifetime observability counters; they survive Clear() so a join that
  /// drops a drained table still reports what the table cost to run.
  /// Rows ever inserted (size() reports only the *current* fill).
  uint64_t total_inserted() const { return total_inserted_; }
  /// Occupied slots stepped over: non-matching keys visited during probes
  /// plus linear-probing steps during inserts (rehashing excluded). High
  /// values relative to total_inserted() mean clustered keys.
  uint64_t collisions() const { return probe_collisions_ + insert_collisions_; }

  /// Releases all storage (used when a pipelining join drains one side).
  void Clear();

  /// Accounts this table's footprint against `budget` (null detaches). An
  /// insert can never fail mid-row, so an overflowing reservation instead
  /// latches over_budget(); the owning join checks it after every batch
  /// and aborts the query via OpContext::ReportError.
  void AttachBudget(MemoryBudget* budget);
  bool over_budget() const { return over_budget_; }

 private:
  static constexpr uint64_t kEmpty = 0;

  TupleRef RowAt(size_t row_index) const {
    return TupleRef(arena_.data() + row_index * schema_->tuple_size(),
                    schema_.get());
  }

  void Grow();
  void InsertSlot(size_t row_index, bool count_collisions);

  std::shared_ptr<const Schema> schema_;
  size_t key_column_;
  size_t num_rows_ = 0;
  size_t capacity_ = 0;  // power of two; 0 until first insert
  // Slot holds row_index + 1; 0 means empty.
  std::vector<uint64_t> slots_;
  std::vector<std::byte> arena_;
  MemoryReservation reservation_;
  bool over_budget_ = false;
  // Mutable: Probe() is logically const; instances are single-threaded.
  // probe_slots_ is ProbeBatch's reusable start-slot scratch (capacity
  // retained across batches, so the probe path allocates nothing in
  // steady state).
  mutable std::vector<size_t> probe_slots_;
  mutable uint64_t probe_collisions_ = 0;
  uint64_t insert_collisions_ = 0;
  uint64_t total_inserted_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_HASH_TABLE_H_
