#ifndef MJOIN_EXEC_SORT_MERGE_JOIN_H_
#define MJOIN_EXEC_SORT_MERGE_JOIN_H_

#include <memory>
#include <vector>

#include "exec/batch.h"
#include "exec/join_spec.h"
#include "exec/operator.h"

namespace mjoin {

/// Classic sort-merge equi-join: both operands are collected, sorted on
/// their key columns, and merged (with duplicate-run cross products). The
/// paper follows [SCD89]'s conclusion that the parallel *hash*-join beats
/// sort-merge in a shared-nothing setting; this operator is the baseline
/// that claim is measured against (`ablation_join_algorithm`).
///
/// A full sort is a pipeline breaker on both inputs, so no inter-operator
/// pipelining is possible: only the SP strategy uses it (optionally).
class SortMergeJoinOp : public Operator {
 public:
  static constexpr int kLeftPort = 0;
  static constexpr int kRightPort = 1;

  explicit SortMergeJoinOp(JoinSpec spec);

  int num_input_ports() const override { return 2; }

  void Open(OpContext* ctx) override;
  void Consume(int port, const TupleBatch& batch, OpContext* ctx) override;
  void InputDone(int port, OpContext* ctx) override;
  bool finished() const override { return done_[0] && done_[1]; }

  const std::shared_ptr<const Schema>& output_schema() const override {
    return spec_.output_schema;
  }
  size_t peak_memory_bytes() const override { return peak_memory_; }
  size_t memory_bytes() const override { return current_memory_; }
  void ReleaseMemory() override;

  size_t left_buffered() const { return buffered_[0].num_tuples(); }
  size_t right_buffered() const { return buffered_[1].num_tuples(); }

 private:
  void SortAndMerge(OpContext* ctx);

  JoinSpec spec_;
  TupleBatch buffered_[2];
  bool done_[2] = {false, false};
  size_t current_memory_ = 0;
  size_t peak_memory_ = 0;
  MemoryReservation reservation_;
  std::vector<std::byte> out_row_;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_SORT_MERGE_JOIN_H_
