#include "exec/sort_merge_join.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "exec/emit.h"
#include "exec/join_row.h"

namespace mjoin {

SortMergeJoinOp::SortMergeJoinOp(JoinSpec spec)
    : spec_(std::move(spec)),
      buffered_{TupleBatch(spec_.left_schema),
                TupleBatch(spec_.right_schema)} {
  out_row_.resize(spec_.output_schema->tuple_size());
}

void SortMergeJoinOp::Open(OpContext* ctx) {
  reservation_.Attach(ctx->memory_budget());
}

void SortMergeJoinOp::Consume(int port, const TupleBatch& batch,
                              OpContext* ctx) {
  MJOIN_CHECK(port == kLeftPort || port == kRightPort);
  MJOIN_CHECK(!done_[port]) << "batch after end-of-stream on port " << port;
  if (ctx->cancelled()) return;
  // One unit per tuple for appending to the run buffer.
  ctx->Charge(static_cast<Ticks>(batch.num_tuples()) *
              ctx->costs().tuple_build);
  buffered_[port].AppendRows(batch.raw_data(), batch.num_tuples());
  current_memory_ += batch.num_tuples() * batch.schema().tuple_size();
  peak_memory_ = std::max(peak_memory_, current_memory_);
  if (!reservation_.Resize(current_memory_).ok()) {
    ctx->ReportError(Status::ResourceExhausted(
        "sort-merge run buffers exceed the query memory budget"));
  }
}

void SortMergeJoinOp::InputDone(int port, OpContext* ctx) {
  MJOIN_CHECK(!done_[port]);
  done_[port] = true;
  if (done_[0] && done_[1] && !ctx->cancelled()) SortAndMerge(ctx);
}

void SortMergeJoinOp::SortAndMerge(OpContext* ctx) {
  const CostParams& costs = ctx->costs();

  // Sort both sides (indices; rows stay in the buffers). Cost: the
  // comparison count, ~ n*log2(n) per side, at one unit per comparison.
  std::vector<uint32_t> order[2];
  for (int side = 0; side < 2; ++side) {
    size_t n = buffered_[side].num_tuples();
    size_t key = side == 0 ? spec_.left_key : spec_.right_key;
    order[side].resize(n);
    for (size_t i = 0; i < n; ++i) order[side][i] = static_cast<uint32_t>(i);
    const TupleBatch& rows = buffered_[side];
    std::sort(order[side].begin(), order[side].end(),
              [&rows, key](uint32_t a, uint32_t b) {
                int32_t ka = rows.tuple(a).GetInt32(key);
                int32_t kb = rows.tuple(b).GetInt32(key);
                if (ka != kb) return ka < kb;
                return a < b;  // stable for determinism
              });
    if (n > 1) {
      double comparisons =
          static_cast<double>(n) * std::log2(static_cast<double>(n));
      ctx->Charge(static_cast<Ticks>(comparisons) * costs.tuple_hash);
    }
  }

  // Merge with duplicate-run cross products. Cost: one unit per consumed
  // tuple plus one per result.
  const TupleBatch& left = buffered_[0];
  const TupleBatch& right = buffered_[1];
  // Zero-copy emission: resolve which operand carries the routing value
  // (only needed when the host hash-splits our output).
  EmitWriter* writer = ctx->emit_writer();
  int route_side = -1;
  size_t route_column = 0;
  if (writer != nullptr && writer->split_column() >= 0) {
    const JoinOutputColumn& oc = spec_.output_columns[writer->split_column()];
    route_side = oc.side;
    route_column = oc.column;
  }
  ctx->Charge(static_cast<Ticks>(left.num_tuples() + right.num_tuples()) *
              costs.tuple_probe);
  size_t i = 0, j = 0;
  size_t results = 0;
  while (i < left.num_tuples() && j < right.num_tuples()) {
    // The duplicate-run cross products can dominate the runtime, so the
    // merge loop itself honours cancellation.
    if (ctx->cancelled()) return;
    int32_t kl = left.tuple(order[0][i]).GetInt32(spec_.left_key);
    int32_t kr = right.tuple(order[1][j]).GetInt32(spec_.right_key);
    if (kl < kr) {
      ++i;
    } else if (kl > kr) {
      ++j;
    } else {
      size_t i_end = i;
      while (i_end < left.num_tuples() &&
             left.tuple(order[0][i_end]).GetInt32(spec_.left_key) == kl) {
        ++i_end;
      }
      size_t j_end = j;
      while (j_end < right.num_tuples() &&
             right.tuple(order[1][j_end]).GetInt32(spec_.right_key) == kl) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          TupleRef l = left.tuple(order[0][a]);
          TupleRef r = right.tuple(order[1][b]);
          if (writer != nullptr) {
            int32_t route = route_side < 0
                                ? 0
                                : (route_side == 0 ? l : r).GetInt32(route_column);
            TupleWriter out = writer->Begin(route);
            AssembleJoinRow(spec_, l, r, out);
            writer->Commit();
          } else {
            AssembleJoinRow(spec_, l, r, out_row_.data());
            ctx->EmitRow(out_row_.data());
          }
          ++results;
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  ctx->Charge(static_cast<Ticks>(results) * costs.tuple_result);
}

void SortMergeJoinOp::ReleaseMemory() {
  buffered_[0].Clear();
  buffered_[1].Clear();
  current_memory_ = 0;
  // Safe to drop: shrinking a reservation to zero only releases bytes and
  // cannot fail.
  (void)reservation_.Resize(0);
}

}  // namespace mjoin
