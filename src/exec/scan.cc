#include "exec/scan.h"

#include "common/logging.h"

namespace mjoin {

void ScanOp::Open(OpContext* ctx) {
  fragment_ = resolver_();
  MJOIN_CHECK(fragment_ != nullptr) << "scan fragment not resolved";
  MJOIN_CHECK(fragment_->schema() == *schema_)
      << "scan fragment schema mismatch: " << fragment_->schema().ToString()
      << " vs " << schema_->ToString();
  total_ = fragment_->num_tuples();
  cursor_ = 0;
  opened_ = true;
}

bool ScanOp::Produce(OpContext* ctx) {
  MJOIN_CHECK(opened_);
  if (ctx->cancelled()) {
    // Stop feeding the pipeline; report exhausted so the host winds down.
    cursor_ = total_;
    return false;
  }
  size_t n = std::min<size_t>(ctx->costs().batch_size, total_ - cursor_);
  ctx->Charge(static_cast<Ticks>(n) * ctx->costs().tuple_scan);
  // The fragment's rows are already contiguous — hand the whole slice to
  // the host in one call; it bulk-copies when routing permits.
  const size_t row_bytes = schema_->tuple_size();
  if (n > 0) {
    ctx->EmitRows(fragment_->raw_data() + cursor_ * row_bytes, n, row_bytes);
  }
  cursor_ += n;
  return cursor_ < total_;
}

}  // namespace mjoin
