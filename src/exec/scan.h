#ifndef MJOIN_EXEC_SCAN_H_
#define MJOIN_EXEC_SCAN_H_

#include <functional>
#include <memory>
#include <utility>

#include "exec/operator.h"
#include "storage/relation.h"

namespace mjoin {

/// Scans one node-local fragment (a base-relation fragment or a stored
/// intermediate-result fragment) and emits its tuples in batches. The
/// fragment is resolved lazily at Open() time via `resolver`, because
/// stored intermediate results only exist once the producing stage ran.
class ScanOp : public Operator {
 public:
  using FragmentResolver = std::function<const Relation*()>;

  ScanOp(FragmentResolver resolver, std::shared_ptr<const Schema> schema)
      : resolver_(std::move(resolver)), schema_(std::move(schema)) {}

  bool is_source() const override { return true; }
  int num_input_ports() const override { return 0; }

  void Open(OpContext* ctx) override;
  bool Produce(OpContext* ctx) override;
  bool finished() const override { return opened_ && cursor_ >= total_; }

  const std::shared_ptr<const Schema>& output_schema() const override {
    return schema_;
  }

 private:
  FragmentResolver resolver_;
  std::shared_ptr<const Schema> schema_;
  const Relation* fragment_ = nullptr;
  bool opened_ = false;
  size_t cursor_ = 0;
  size_t total_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_SCAN_H_
