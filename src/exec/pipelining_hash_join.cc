#include "exec/pipelining_hash_join.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/emit.h"
#include "exec/join_row.h"

namespace mjoin {

PipeliningHashJoinOp::PipeliningHashJoinOp(JoinSpec spec)
    : spec_(std::move(spec)),
      tables_{JoinHashTable(spec_.left_schema, spec_.left_key),
              JoinHashTable(spec_.right_schema, spec_.right_key)} {
  out_row_.resize(spec_.output_schema->tuple_size());
}

void PipeliningHashJoinOp::Open(OpContext* ctx) {
  tables_[0].AttachBudget(ctx->memory_budget());
  tables_[1].AttachBudget(ctx->memory_budget());
  EmitWriter* writer = ctx->emit_writer();
  if (writer != nullptr && writer->split_column() >= 0) {
    const JoinOutputColumn& oc = spec_.output_columns[writer->split_column()];
    route_side_ = oc.side;
    route_column_ = oc.column;
  }
}

void PipeliningHashJoinOp::Consume(int port, const TupleBatch& batch,
                                   OpContext* ctx) {
  MJOIN_CHECK(port == kLeftPort || port == kRightPort);
  MJOIN_CHECK(!done_[port]) << "batch after end-of-stream on port " << port;
  if (ctx->cancelled()) return;
  const CostParams& costs = ctx->costs();
  EmitWriter* writer = ctx->emit_writer();
  const size_t my_key = port == kLeftPort ? spec_.left_key : spec_.right_key;
  JoinHashTable& own = tables_[port];
  JoinHashTable& other = tables_[1 - port];

  // Per arriving chunk: gather keys, probe the other operand's (partial)
  // table batch-at-a-time, emit matches, then insert the chunk into our
  // own table. If the other side already finished, nothing will ever probe
  // our table, so the inserts are skipped (the tail of the slower operand
  // then runs as a pure probe phase).
  //
  // Cost is charged per tuple actually processed, after the loop: a
  // between-chunk cancellation must leave the accounting matching the
  // partial progress, not the whole batch.
  const bool insert_needed = !done_[1 - port];
  // When hash-split routing draws from *this* operand's columns, the
  // match's route value comes from the arriving tuple; otherwise from the
  // stored one. route_side_ names the output side (0 = left), so compare
  // against the port to translate into mine/theirs.
  const bool route_from_mine = route_side_ == port;
  const Ticks per_tuple = costs.tuple_hash + costs.tuple_probe +
                          (insert_needed ? costs.tuple_build : 0);
  const size_t n = batch.num_tuples();
  size_t processed = 0;
  size_t results = 0;
  while (processed < n) {
    if (ctx->cancelled()) break;
    const size_t chunk = std::min(kChunk, n - processed);
    keys_.resize(chunk);
    for (size_t i = 0; i < chunk; ++i) {
      keys_[i] = batch.tuple(processed + i).GetInt32(my_key);
    }
    if (writer != nullptr) {
      results += other.ProbeBatch(
          keys_.data(), chunk, [&](size_t i, const TupleRef& theirs) {
            TupleRef mine = batch.tuple(processed + i);
            int32_t route =
                route_side_ < 0
                    ? 0
                    : (route_from_mine ? mine : theirs).GetInt32(route_column_);
            TupleWriter out = writer->Begin(route);
            if (port == kLeftPort) {
              AssembleJoinRow(spec_, mine, theirs, out);
            } else {
              AssembleJoinRow(spec_, theirs, mine, out);
            }
            writer->Commit();
          });
    } else {
      results += other.ProbeBatch(
          keys_.data(), chunk, [&](size_t i, const TupleRef& theirs) {
            TupleRef mine = batch.tuple(processed + i);
            if (port == kLeftPort) {
              AssembleJoinRow(spec_, mine, theirs, out_row_.data());
            } else {
              AssembleJoinRow(spec_, theirs, mine, out_row_.data());
            }
            ctx->EmitRow(out_row_.data());
          });
    }
    if (insert_needed) {
      for (size_t i = 0; i < chunk; ++i) {
        own.Insert(batch.tuple(processed + i).data());
      }
    }
    processed += chunk;
  }
  ctx->Charge(static_cast<Ticks>(processed) * per_tuple +
              static_cast<Ticks>(results) * costs.tuple_result);
  peak_memory_ = std::max(peak_memory_,
                          tables_[0].memory_bytes() + tables_[1].memory_bytes());
  if (tables_[0].over_budget() || tables_[1].over_budget()) {
    ctx->ReportError(Status::ResourceExhausted(
        "pipelining join tables exceed the query memory budget"));
  }
}

void PipeliningHashJoinOp::InputDone(int port, OpContext* ctx) {
  MJOIN_CHECK(port == kLeftPort || port == kRightPort);
  MJOIN_CHECK(!done_[port]);
  // Both tables are still resident here — this is the operator's true
  // memory high-water mark; sample it before Clear() shrinks it.
  peak_memory_ = std::max(peak_memory_,
                          tables_[0].memory_bytes() + tables_[1].memory_bytes());
  done_[port] = true;
  // Once side p is complete, no tuple will ever probe the *other* side's
  // table again (only p-side arrivals probed it), so it can be dropped.
  tables_[1 - port].Clear();
}

void PipeliningHashJoinOp::CollectMetrics(OpMetrics* metrics) const {
  metrics->hash_table_rows +=
      tables_[0].total_inserted() + tables_[1].total_inserted();
  metrics->hash_collisions +=
      tables_[0].collisions() + tables_[1].collisions();
}

}  // namespace mjoin
