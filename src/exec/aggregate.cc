#include "exec/aggregate.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/emit.h"
#include "storage/tuple.h"

namespace mjoin {

StatusOr<std::unique_ptr<AggregateOp>> AggregateOp::Make(
    std::shared_ptr<const Schema> input_schema, size_t group_column,
    size_t value_column) {
  for (size_t col : {group_column, value_column}) {
    if (col >= input_schema->num_columns()) {
      return Status::OutOfRange(StrCat("aggregate column ", col,
                                       " out of range for ",
                                       input_schema->ToString()));
    }
    if (input_schema->column(col).type != ColumnType::kInt32) {
      return Status::InvalidArgument(
          "aggregation requires int32 group/value columns");
    }
  }
  std::string group_name = input_schema->column(group_column).name;
  std::string value_name = input_schema->column(value_column).name;
  auto output_schema = std::make_shared<const Schema>(Schema({
      Column::Int32(group_name),
      Column::Int64("count"),
      Column::Int64(StrCat("sum_", value_name)),
      Column::Int32(StrCat("min_", value_name)),
      Column::Int32(StrCat("max_", value_name)),
  }));
  return std::unique_ptr<AggregateOp>(
      // lint:allow-new private-constructor factory, owned immediately
      new AggregateOp(std::move(input_schema), group_column, value_column,
                      std::move(output_schema)));
}

void AggregateOp::Consume(int port, const TupleBatch& batch, OpContext* ctx) {
  if (ctx->cancelled()) return;
  // One hash + one accumulator update per tuple.
  ctx->Charge(static_cast<Ticks>(batch.num_tuples()) *
              (ctx->costs().tuple_hash + ctx->costs().tuple_build));
  for (size_t i = 0; i < batch.num_tuples(); ++i) {
    TupleRef t = batch.tuple(i);
    int32_t group = t.GetInt32(group_column_);
    int32_t value = t.GetInt32(value_column_);
    auto [it, inserted] = groups_.try_emplace(group);
    Accumulator& acc = it->second;
    if (inserted) {
      acc.min = acc.max = value;
      current_memory_ += sizeof(int32_t) + sizeof(Accumulator);
      peak_memory_ = std::max(peak_memory_, current_memory_);
    } else {
      acc.min = std::min(acc.min, value);
      acc.max = std::max(acc.max, value);
    }
    acc.count += 1;
    acc.sum += value;
  }
}

void AggregateOp::InputDone(int port, OpContext* ctx) {
  // Pipeline breaker: emit one result row per group now.
  ctx->Charge(static_cast<Ticks>(groups_.size()) *
              ctx->costs().tuple_result);
  // Zero-copy path: usable when routing is fixed or keyed on the group
  // column (output column 0), whose value is known before assembly. Other
  // split columns fall back to the copying EmitRow path.
  EmitWriter* writer = ctx->emit_writer();
  if (writer != nullptr && writer->split_column() <= 0) {
    for (const auto& [group, acc] : groups_) {
      TupleWriter w = writer->Begin(group);
      w.SetInt32(0, group);
      w.SetInt64(1, acc.count);
      w.SetInt64(2, acc.sum);
      w.SetInt32(3, acc.min);
      w.SetInt32(4, acc.max);
      writer->Commit();
    }
    done_ = true;
    return;
  }
  std::vector<std::byte> row(output_schema_->tuple_size());
  for (const auto& [group, acc] : groups_) {
    TupleWriter w(row.data(), output_schema_.get());
    w.SetInt32(0, group);
    w.SetInt64(1, acc.count);
    w.SetInt64(2, acc.sum);
    w.SetInt32(3, acc.min);
    w.SetInt32(4, acc.max);
    ctx->EmitRow(row.data());
  }
  done_ = true;
}

void AggregateOp::ReleaseMemory() {
  groups_.clear();
  current_memory_ = 0;
}

}  // namespace mjoin
