#ifndef MJOIN_EXEC_JOIN_ROW_H_
#define MJOIN_EXEC_JOIN_ROW_H_

#include "exec/join_spec.h"
#include "storage/tuple.h"

namespace mjoin {

/// Assembles one join output row from a matching (left, right) pair
/// through `writer` — which may point into scratch memory or, on the
/// zero-copy path, directly into the destination batch (EmitWriter::Begin).
/// Shared by both hash-join variants.
inline void AssembleJoinRow(const JoinSpec& spec, const TupleRef& left,
                            const TupleRef& right, TupleWriter& writer) {
  for (size_t i = 0; i < spec.output_columns.size(); ++i) {
    const JoinOutputColumn& oc = spec.output_columns[i];
    writer.CopyColumn(i, oc.side == 0 ? left : right, oc.column);
  }
}

/// Same, into `out` (spec.output_schema->tuple_size() bytes).
inline void AssembleJoinRow(const JoinSpec& spec, const TupleRef& left,
                            const TupleRef& right, std::byte* out) {
  TupleWriter writer(out, spec.output_schema.get());
  AssembleJoinRow(spec, left, right, writer);
}

}  // namespace mjoin

#endif  // MJOIN_EXEC_JOIN_ROW_H_
