#ifndef MJOIN_EXEC_BATCH_H_
#define MJOIN_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace mjoin {

/// A batch of fixed-layout rows travelling over a tuple stream. Batches
/// own their bytes and share the schema, so they can move freely between
/// simulated nodes and real threads.
///
/// Zero-size row layouts are rejected at construction: every row counted
/// by num_tuples() must occupy at least one byte, which lets the hot-path
/// accessors divide by tuple_size() unguarded.
class TupleBatch {
 public:
  explicit TupleBatch(std::shared_ptr<const Schema> schema)
      : schema_(std::move(schema)) {
    MJOIN_CHECK(schema_ != nullptr && schema_->tuple_size() > 0)
        << "TupleBatch requires a non-empty row layout";
  }

  TupleBatch(TupleBatch&&) = default;
  TupleBatch& operator=(TupleBatch&&) = default;
  TupleBatch(const TupleBatch&) = delete;
  TupleBatch& operator=(const TupleBatch&) = delete;

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& shared_schema() const {
    return schema_;
  }

  size_t num_tuples() const { return data_.size() / schema_->tuple_size(); }
  bool empty() const { return data_.empty(); }
  size_t byte_size() const { return data_.size(); }
  size_t capacity_bytes() const { return data_.capacity(); }

  void Reserve(size_t num_tuples) {
    data_.reserve(num_tuples * schema_->tuple_size());
  }

  void AppendRow(const std::byte* row) {
    data_.insert(data_.end(), row, row + schema_->tuple_size());
  }

  /// Appends `count` contiguous rows (count * tuple_size() bytes) in one
  /// copy.
  void AppendRows(const std::byte* rows, size_t count) {
    data_.insert(data_.end(), rows, rows + count * schema_->tuple_size());
  }

  /// Appends an uninitialized row; the returned writer is invalidated by
  /// the next append.
  TupleWriter AppendTuple() {
    size_t old = data_.size();
    data_.resize(old + schema_->tuple_size());
    return TupleWriter(data_.data() + old, schema_.get());
  }

  TupleRef tuple(size_t i) const {
    return TupleRef(data_.data() + i * schema_->tuple_size(), schema_.get());
  }

  const std::byte* raw_data() const { return data_.data(); }

  void Clear() { data_.clear(); }

  /// Empties the batch and rebinds it to `schema`, keeping the byte
  /// buffer's capacity — how BatchPool recycles buffers across operators
  /// with different row layouts.
  void ResetSchema(std::shared_ptr<const Schema> schema) {
    MJOIN_CHECK(schema != nullptr && schema->tuple_size() > 0)
        << "TupleBatch requires a non-empty row layout";
    schema_ = std::move(schema);
    data_.clear();
  }

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<std::byte> data_;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_BATCH_H_
