#ifndef MJOIN_EXEC_BATCH_H_
#define MJOIN_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace mjoin {

/// A batch of fixed-layout rows travelling over a tuple stream. Batches
/// own their bytes and share the schema, so they can move freely between
/// simulated nodes and real threads.
class TupleBatch {
 public:
  explicit TupleBatch(std::shared_ptr<const Schema> schema)
      : schema_(std::move(schema)) {}

  TupleBatch(TupleBatch&&) = default;
  TupleBatch& operator=(TupleBatch&&) = default;
  TupleBatch(const TupleBatch&) = delete;
  TupleBatch& operator=(const TupleBatch&) = delete;

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& shared_schema() const {
    return schema_;
  }

  size_t num_tuples() const {
    return schema_->tuple_size() == 0 ? 0
                                      : data_.size() / schema_->tuple_size();
  }
  bool empty() const { return data_.empty(); }

  void Reserve(size_t num_tuples) {
    data_.reserve(num_tuples * schema_->tuple_size());
  }

  void AppendRow(const std::byte* row) {
    data_.insert(data_.end(), row, row + schema_->tuple_size());
  }

  /// Appends an uninitialized row; the returned writer is invalidated by
  /// the next append.
  TupleWriter AppendTuple() {
    size_t old = data_.size();
    data_.resize(old + schema_->tuple_size());
    return TupleWriter(data_.data() + old, schema_.get());
  }

  TupleRef tuple(size_t i) const {
    return TupleRef(data_.data() + i * schema_->tuple_size(), schema_.get());
  }

  void Clear() { data_.clear(); }

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<std::byte> data_;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_BATCH_H_
