#ifndef MJOIN_EXEC_PROJECT_H_
#define MJOIN_EXEC_PROJECT_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "exec/operator.h"

namespace mjoin {

/// Column-subset/reorder projection over a single input stream. The
/// paper's workload folds its post-join projection into the join's output
/// spec; this standalone operator exists for general plans.
class ProjectOp : public Operator {
 public:
  /// `columns` are input-schema column indices, in output order.
  [[nodiscard]] static StatusOr<std::unique_ptr<ProjectOp>> Make(
      std::shared_ptr<const Schema> input_schema, std::vector<size_t> columns);

  int num_input_ports() const override { return 1; }

  void Consume(int port, const TupleBatch& batch, OpContext* ctx) override;
  void InputDone(int port, OpContext* ctx) override { done_ = true; }
  bool finished() const override { return done_; }

  const std::shared_ptr<const Schema>& output_schema() const override {
    return output_schema_;
  }

 private:
  ProjectOp(std::shared_ptr<const Schema> input_schema,
            std::vector<size_t> columns,
            std::shared_ptr<const Schema> output_schema);

  std::shared_ptr<const Schema> input_schema_;
  std::vector<size_t> columns_;
  std::shared_ptr<const Schema> output_schema_;
  bool done_ = false;
  std::vector<std::byte> out_row_;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_PROJECT_H_
