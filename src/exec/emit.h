#ifndef MJOIN_EXEC_EMIT_H_
#define MJOIN_EXEC_EMIT_H_

#include <cstdint>
#include <cstring>
#include <optional>

#include "common/logging.h"
#include "exec/batch.h"
#include "storage/partitioner.h"
#include "storage/tuple.h"

namespace mjoin {

/// Host side of the zero-copy emit channel: notified when a destination's
/// pending batch reaches the flush threshold. Called once per full batch,
/// never per row, so hosts may do real work here (post the batch to the
/// consumer's queue, append to a stored result, reserve budget).
class EmitSink {
 public:
  virtual ~EmitSink() = default;

  /// dests[dest] has reached the flush threshold. The host flushes (or
  /// intentionally keeps accumulating); the pending batch must be in a
  /// clean appendable state when this returns.
  virtual void BatchFull(uint32_t dest) = 0;
};

/// Per-row routing override consulted by a hash-splitting EmitWriter
/// before each row is placed (the skew defense's hook): a row may pass
/// through to its hash destination, be dropped entirely (Bloom predicate
/// transfer proved it can match nothing), or be sprayed round-robin
/// across all destinations (hot-key repartitioning — the consumer holds a
/// replicated build side for such keys, so any destination is correct).
/// Classify() runs once per emitted row on the hot path; implementations
/// must be cheap and must not call back into the writer.
class EmitDefense {
 public:
  enum class Verdict : uint8_t {
    kPass,
    kDrop,
    kRepartition,
  };

  virtual ~EmitDefense() = default;

  virtual Verdict Classify(int32_t split_value) = 0;
};

/// Zero-copy output channel handed to operators by hosts that support it
/// (OpContext::emit_writer()). Instead of assembling a row in scratch
/// memory and copying it again via OpContext::EmitRow, the operator asks
/// for the destination row in place:
///
///   TupleWriter row = writer->Begin(split_value);
///   ... fill every column of the row via `row` ...
///   writer->Commit();
///
/// Begin() appends uninitialized bytes to the pending TupleBatch of the
/// destination that `split_value` routes to (ignored when the channel has
/// a fixed destination, see split_column()); the row is built directly in
/// its final resting place. The returned TupleWriter is invalidated by the
/// next Begin()/Commit() and by any other OpContext call; a Begin() must
/// be followed by exactly one Commit() before the next Begin().
///
/// Routing contract: when split_column() >= 0, the caller must pass the
/// value the finished row will carry in that output column, *before*
/// writing the row — this is what lets the writer pick the destination
/// batch up front. Operators that cannot know an output column's value
/// ahead of assembly must fall back to EmitRow.
class EmitWriter {
 public:
  EmitWriter() = default;

  EmitWriter(const EmitWriter&) = delete;
  EmitWriter& operator=(const EmitWriter&) = delete;

  /// Host-side setup. `dests` must stay valid for the writer's lifetime
  /// and hold `num_dests` pending batches. `split_column` is the output
  /// column whose value routes each row (hash-split), or -1 when every
  /// row goes to `fixed_dest`. `flush_threshold` is in rows.
  void Configure(TupleBatch* dests, uint32_t num_dests, int split_column,
                 uint32_t fixed_dest, uint32_t flush_threshold,
                 EmitSink* sink) {
    MJOIN_CHECK(dests != nullptr && num_dests > 0 && sink != nullptr);
    MJOIN_CHECK(flush_threshold > 0);
    MJOIN_CHECK(split_column >= 0 || fixed_dest < num_dests);
    dests_ = dests;
    num_dests_ = num_dests;
    split_column_ = split_column;
    fixed_dest_ = fixed_dest;
    sink_ = sink;
    flush_bytes_ =
        static_cast<size_t>(flush_threshold) * dests[0].schema().tuple_size();
  }

  /// The output column whose value the caller must pass to Begin(), or -1
  /// when routing does not depend on row contents (single destination).
  int split_column() const { return split_column_; }

  /// Installs (or clears, with nullptr) the per-row routing override.
  /// Only meaningful on hash-splitting writers; `defense` must outlive
  /// the writer's use of it. Safe to call between rows at any time —
  /// rows already placed keep their destination.
  void SetDefense(EmitDefense* defense) {
    MJOIN_CHECK(dests_ != nullptr) << "SetDefense before Configure";
    defense_ = defense;
    if (defense_ != nullptr && !scratch_.has_value()) {
      scratch_.emplace(dests_[0].shared_schema());
    }
  }

  /// Starts one output row destined for wherever `split_value` routes.
  /// With a defense installed the row may instead be redirected round-
  /// robin, or built in discard scratch and dropped at Commit() — the
  /// operator fills the row identically either way.
  TupleWriter Begin(int32_t split_value) {
    if (split_column_ < 0) {
      dest_ = fixed_dest_;
      return dests_[dest_].AppendTuple();
    }
    if (defense_ != nullptr) {
      switch (defense_->Classify(split_value)) {
        case EmitDefense::Verdict::kPass:
          break;
        case EmitDefense::Verdict::kDrop:
          ++rows_dropped_;
          discard_ = true;
          scratch_->Clear();
          return scratch_->AppendTuple();
        case EmitDefense::Verdict::kRepartition:
          ++rows_repartitioned_;
          dest_ = rr_next_++ % num_dests_;
          return dests_[dest_].AppendTuple();
      }
    }
    dest_ = FragmentOf(split_value, num_dests_);
    return dests_[dest_].AppendTuple();
  }

  /// The row started by the last Begin() is complete.
  void Commit() {
    if (discard_) {
      discard_ = false;
      return;
    }
    ++rows_committed_;
    if (dests_[dest_].byte_size() >= flush_bytes_) sink_->BatchFull(dest_);
  }

  /// Copies one finished row (dest schema tuple_size() bytes) to wherever
  /// `split_value` routes — the copying fallback for operators that
  /// assemble rows in scratch memory.
  void Append(const std::byte* row, int32_t split_value) {
    TupleWriter out = Begin(split_value);
    std::memcpy(out.data(), row, dests_[dest_].schema().tuple_size());
    Commit();
  }

  /// Fixed-destination bulk append: `count` contiguous finished rows in
  /// one copy. Only valid when split_column() < 0. May grow the pending
  /// batch past the flush threshold before BatchFull fires once — batches
  /// are allowed to exceed the nominal size.
  void AppendRows(const std::byte* rows, size_t count) {
    MJOIN_DCHECK(split_column_ < 0);
    dest_ = fixed_dest_;
    TupleBatch& batch = dests_[dest_];
    batch.AppendRows(rows, count);
    rows_committed_ += count;
    if (batch.byte_size() >= flush_bytes_) sink_->BatchFull(dest_);
  }

  /// Rows committed over the writer's lifetime; hosts fold this into their
  /// rows-out accounting (the EmitRow path counts separately).
  uint64_t rows_committed() const { return rows_committed_; }

  /// Rows the installed defense dropped (Bloom predicate transfer) and
  /// re-routed (hot-key repartitioning). Dropped rows are not counted in
  /// rows_committed().
  uint64_t rows_dropped() const { return rows_dropped_; }
  uint64_t rows_repartitioned() const { return rows_repartitioned_; }

 private:
  TupleBatch* dests_ = nullptr;
  uint32_t num_dests_ = 0;
  int split_column_ = -1;
  uint32_t fixed_dest_ = 0;
  uint32_t dest_ = 0;
  size_t flush_bytes_ = 0;
  EmitSink* sink_ = nullptr;
  uint64_t rows_committed_ = 0;
  EmitDefense* defense_ = nullptr;
  /// Discard target for dropped rows: the operator still fills a row, but
  /// into this one-row scratch batch that Commit() throws away.
  std::optional<TupleBatch> scratch_;
  bool discard_ = false;
  uint32_t rr_next_ = 0;
  uint64_t rows_dropped_ = 0;
  uint64_t rows_repartitioned_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_EMIT_H_
