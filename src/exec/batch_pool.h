#ifndef MJOIN_EXEC_BATCH_POOL_H_
#define MJOIN_EXEC_BATCH_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "exec/batch.h"

namespace mjoin {

/// Recycles TupleBatch byte buffers between a producer's flush and the
/// consumer's release, so steady-state batch traffic allocates nothing:
/// a returned buffer keeps its capacity and the next Acquire() hands it
/// back out instead of heap-allocating a fresh batch.
///
/// Acquire() returns a shared_ptr whose deleter puts the batch back on
/// the freelist — exactly once, when the last reference drops — so the
/// existing shared-batch message flow (pre-start buffering, duplicated
/// fault-injection deliveries) needs no changes. The pool must outlive
/// every batch it handed out; executors own their pools and join all
/// workers before tearing them down.
///
/// Thread-safe. The threaded executor keeps one pool per worker node and
/// acquires from the *destination* node's pool, so a batch's release (on
/// the consumer's thread) returns it to the pool its next acquisition is
/// likely to come from.
class BatchPool {
 public:
  BatchPool() = default;

  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  /// An empty batch bound to `schema`: a recycled buffer when one is
  /// free (its capacity survives), a fresh allocation otherwise.
  std::shared_ptr<TupleBatch> Acquire(std::shared_ptr<const Schema> schema);

  /// Buffers created because the freelist was empty.
  uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  /// Acquisitions served from the freelist.
  uint64_t reused() const { return reused_.load(std::memory_order_relaxed); }

 private:
  void Release(std::unique_ptr<TupleBatch> batch);

  Mutex mutex_;
  std::vector<std::unique_ptr<TupleBatch>> free_ MJOIN_GUARDED_BY(mutex_);
  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> reused_{0};
};

}  // namespace mjoin

#endif  // MJOIN_EXEC_BATCH_POOL_H_
