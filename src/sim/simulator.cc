#include "sim/simulator.h"

namespace mjoin {

Ticks Simulator::Run() {
  while (!queue_.empty()) {
    // Move the event out before popping so the closure survives the pop.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    MJOIN_DCHECK(event.time >= now_);
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  return now_;
}

bool Simulator::RunFor(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (queue_.empty()) return true;
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  return queue_.empty();
}

}  // namespace mjoin
