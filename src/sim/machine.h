#ifndef MJOIN_SIM_MACHINE_H_
#define MJOIN_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_params.h"
#include "sim/processor.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace mjoin {

/// Counters describing one simulated query execution; the §3.5 barriers
/// (startup, coordination) are separately accounted so the overhead
/// decomposition benchmark can report them.
struct MachineCounters {
  uint64_t processes_started = 0;
  uint64_t streams_opened = 0;  // networked streams only
  uint64_t batches_sent = 0;
  uint64_t tuples_sent = 0;
  Ticks startup_ticks = 0;    // scheduler CPU spent initializing processes
  Ticks handshake_ticks = 0;  // worker CPU spent on stream handshakes
};

/// The simulated shared-nothing multiprocessor: `num_workers` worker nodes
/// plus two service nodes — the query scheduler (id == num_workers), which
/// serially initializes operation processes and aggregates milestones, and
/// the stream broker (id == num_workers + 1), which serially sets up tuple
/// streams — mirroring PRISMA/DB's one-scheduler-many-operation-processes
/// engine and its stream naming service.
class SimMachine {
 public:
  SimMachine(uint32_t num_workers, const CostParams& costs,
             bool trace_enabled = false);

  SimMachine(const SimMachine&) = delete;
  SimMachine& operator=(const SimMachine&) = delete;

  uint32_t num_workers() const { return num_workers_; }
  uint32_t scheduler_id() const { return num_workers_; }
  uint32_t broker_id() const { return num_workers_ + 1; }

  Simulator& sim() { return sim_; }
  const CostParams& costs() const { return costs_; }
  TraceRecorder& trace() { return trace_; }
  MachineCounters& counters() { return counters_; }
  const MachineCounters& counters() const { return counters_; }

  /// Worker node `id` (0..num_workers-1), or the scheduler node
  /// (id == scheduler_id()).
  SimProcessor& node(uint32_t id) { return *nodes_[id]; }

 private:
  uint32_t num_workers_;
  CostParams costs_;
  Simulator sim_;
  TraceRecorder trace_;
  std::vector<std::unique_ptr<SimProcessor>> nodes_;
  MachineCounters counters_;
};

}  // namespace mjoin

#endif  // MJOIN_SIM_MACHINE_H_
