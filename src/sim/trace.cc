#include "sim/trace.h"

#include <algorithm>
#include <array>

#include "common/string_util.h"

namespace mjoin {

std::vector<Ticks> TraceRecorder::BusyTicks() const {
  std::vector<Ticks> busy(num_processors_, 0);
  for (const TraceInterval& iv : intervals_) {
    if (iv.processor < num_processors_) {
      busy[iv.processor] += iv.end - iv.start;
    }
  }
  return busy;
}

double TraceRecorder::Utilization(Ticks makespan) const {
  if (makespan <= 0 || num_processors_ == 0) return 0;
  std::vector<Ticks> busy = BusyTicks();
  double total = 0;
  for (Ticks b : busy) total += static_cast<double>(b);
  return total /
         (static_cast<double>(makespan) * static_cast<double>(num_processors_));
}

std::string TraceRecorder::Render(Ticks makespan, uint32_t width,
                                  const std::string& time_unit) const {
  if (makespan <= 0 || width == 0) return "";
  // For each processor row, accumulate per-cell coverage and pick the label
  // with the widest coverage in each cell.
  double ticks_per_cell = static_cast<double>(makespan) / width;

  // coverage[p][cell] -> map label -> covered ticks. Labels are chars, so a
  // small fixed table indexed by char works.
  std::vector<std::vector<std::array<double, 128>>> coverage(
      num_processors_,
      std::vector<std::array<double, 128>>(width, std::array<double, 128>{}));

  for (const TraceInterval& iv : intervals_) {
    if (iv.processor >= num_processors_) continue;
    double s = static_cast<double>(iv.start) / ticks_per_cell;
    double e = static_cast<double>(iv.end) / ticks_per_cell;
    auto first = static_cast<uint32_t>(std::max(0.0, s));
    auto last = static_cast<uint32_t>(
        std::min<double>(width - 1, std::max(0.0, e - 1e-9)));
    for (uint32_t cell = first; cell <= last && cell < width; ++cell) {
      double cell_start = cell;
      double cell_end = cell + 1;
      double covered = std::min(e, cell_end) - std::max(s, cell_start);
      if (covered > 0) {
        auto idx = static_cast<size_t>(static_cast<unsigned char>(iv.label)) %
                   128;
        coverage[iv.processor][cell][idx] += covered;
      }
    }
  }

  std::string out;
  // Render top row = highest processor id, like the paper's diagrams.
  for (uint32_t p = num_processors_; p-- > 0;) {
    out += PadLeft(StrCat(p), 3);
    out += " ";
    for (uint32_t cell = 0; cell < width; ++cell) {
      char best = '.';
      double best_cover = 0;
      for (size_t idx = 0; idx < 128; ++idx) {
        if (coverage[p][cell][idx] > best_cover) {
          best_cover = coverage[p][cell][idx];
          best = static_cast<char>(idx);
        }
      }
      out += best;
    }
    out += "\n";
  }
  out += "    ";
  out += std::string(width, '-');
  out += StrCat("> time (", makespan, " ", time_unit, ")\n");
  return out;
}

std::string TraceRecorder::ToCsv() const {
  std::string out = "processor,start,end,label\n";
  for (const TraceInterval& iv : intervals_) {
    out += StrCat(iv.processor, ",", iv.start, ",", iv.end, ",",
                  std::string(1, iv.label), "\n");
  }
  return out;
}

}  // namespace mjoin
