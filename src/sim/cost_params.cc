#include "sim/cost_params.h"

#include "common/string_util.h"

namespace mjoin {

std::string CostParams::ToString() const {
  return StrCat("CostParams{hash=", tuple_hash, " build=", tuple_build,
                " probe=", tuple_probe, " result=", tuple_result,
                " send=", tuple_send, " recv=", tuple_recv,
                " scan=", tuple_scan, " batch_ovh=", batch_overhead,
                " latency=", network_latency, " startup=", process_startup,
                " handshake=", stream_handshake, " broker=", broker_handshake,
                " trigger=", trigger_latency, " batch=", batch_size,
                " tick_s=", tick_seconds, "}");
}

}  // namespace mjoin
