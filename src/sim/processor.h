#ifndef MJOIN_SIM_PROCESSOR_H_
#define MJOIN_SIM_PROCESSOR_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/cost_params.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace mjoin {

/// Actions to perform when a task's simulated execution completes (e.g.
/// deliver the batches the task produced to the network).
struct DeferredAction {
  Ticks extra_delay = 0;
  std::function<void()> fn;
};

/// What a task did: how much CPU it consumed and what should happen at its
/// completion time.
struct TaskResult {
  Ticks cost = 0;
  std::vector<DeferredAction> after;
};

/// A simulated shared-nothing node. The node executes submitted tasks
/// strictly sequentially (one CPU). A task's body runs when the task is
/// dequeued; it performs the real computation (e.g. probing a real hash
/// table), returns the simulated CPU cost, and may defer side effects
/// (message deliveries) to its completion time.
class SimProcessor {
 public:
  SimProcessor(uint32_t id, Simulator* sim, TraceRecorder* trace)
      : id_(id), sim_(sim), trace_(trace) {}

  SimProcessor(const SimProcessor&) = delete;
  SimProcessor& operator=(const SimProcessor&) = delete;
  SimProcessor(SimProcessor&&) = default;

  uint32_t id() const { return id_; }
  Ticks busy_ticks() const { return busy_ticks_; }

  /// Enqueues a task. `label` is the fill character for the utilization
  /// trace. Tasks run in submission order.
  void Submit(char label, std::function<TaskResult()> body);

 private:
  struct Task {
    char label;
    std::function<TaskResult()> body;
  };

  void StartNext();

  uint32_t id_;
  Simulator* sim_;
  TraceRecorder* trace_;
  std::deque<Task> queue_;
  bool running_ = false;
  Ticks busy_ticks_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_SIM_PROCESSOR_H_
