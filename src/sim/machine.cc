#include "sim/machine.h"

namespace mjoin {

SimMachine::SimMachine(uint32_t num_workers, const CostParams& costs,
                       bool trace_enabled)
    : num_workers_(num_workers),
      costs_(costs),
      trace_(num_workers + 2, trace_enabled) {
  nodes_.reserve(num_workers + 2);
  for (uint32_t id = 0; id <= num_workers + 1; ++id) {
    nodes_.push_back(std::make_unique<SimProcessor>(id, &sim_, &trace_));
  }
}

}  // namespace mjoin
