#include "sim/processor.h"

namespace mjoin {

void SimProcessor::Submit(char label, std::function<TaskResult()> body) {
  queue_.push_back(Task{label, std::move(body)});
  if (!running_) {
    running_ = true;
    // Start asynchronously so that submission never re-enters task bodies.
    sim_->Schedule(0, [this] { StartNext(); });
  }
}

void SimProcessor::StartNext() {
  if (queue_.empty()) {
    running_ = false;
    return;
  }
  Task task = std::move(queue_.front());
  queue_.pop_front();

  Ticks start = sim_->Now();
  TaskResult result = task.body();
  MJOIN_DCHECK(result.cost >= 0);
  busy_ticks_ += result.cost;
  if (trace_ != nullptr) {
    trace_->Record(id_, start, start + result.cost, task.label);
  }

  // At completion: release the task's side effects, then run the next task.
  sim_->Schedule(result.cost,
                 [this, after = std::move(result.after)]() mutable {
                   for (DeferredAction& action : after) {
                     if (action.extra_delay == 0) {
                       action.fn();
                     } else {
                       sim_->Schedule(action.extra_delay, std::move(action.fn));
                     }
                   }
                   StartNext();
                 });
}

}  // namespace mjoin
