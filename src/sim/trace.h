#ifndef MJOIN_SIM_TRACE_H_
#define MJOIN_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost_params.h"

namespace mjoin {

/// One busy interval of one simulated processor.
struct TraceInterval {
  uint32_t processor = 0;
  Ticks start = 0;
  Ticks end = 0;
  /// Short label ('4' = working on the join labelled 4 in the tree, 'h' =
  /// handshake, 's' = startup, ...), used as the fill character in the
  /// utilization diagram.
  char label = '?';
};

/// Records processor-busy intervals during a simulation and renders them as
/// the paper's processor-utilization diagrams (Figures 3, 4, 6, 7): one row
/// per processor, x-axis = time, each busy interval drawn with its label.
class TraceRecorder {
 public:
  /// `num_processors` rows will be rendered; recording can be disabled to
  /// save memory on large sweeps.
  explicit TraceRecorder(uint32_t num_processors, bool enabled = true)
      : num_processors_(num_processors), enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  void Record(uint32_t processor, Ticks start, Ticks end, char label) {
    if (!enabled_ || start >= end) return;
    intervals_.push_back(TraceInterval{processor, start, end, label});
  }

  const std::vector<TraceInterval>& intervals() const { return intervals_; }

  /// Total busy ticks per processor.
  std::vector<Ticks> BusyTicks() const;

  /// Fraction of [0, makespan] during which processors were busy, averaged
  /// over processors. Returns 0 when makespan == 0.
  double Utilization(Ticks makespan) const;

  /// ASCII utilization diagram, `width` characters wide, covering
  /// [0, makespan]. A character cell is filled with the label of the
  /// interval covering the majority of that cell ('.' when idle).
  /// `time_unit` names the tick unit in the axis caption — the threaded
  /// backend reuses this renderer with wall-clock microseconds as ticks.
  std::string Render(Ticks makespan, uint32_t width = 72,
                     const std::string& time_unit = "ticks") const;

  /// Plot-ready CSV: "processor,start,end,label" with a header row.
  std::string ToCsv() const;

 private:
  uint32_t num_processors_;
  bool enabled_;
  std::vector<TraceInterval> intervals_;
};

}  // namespace mjoin

#endif  // MJOIN_SIM_TRACE_H_
