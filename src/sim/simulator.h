#ifndef MJOIN_SIM_SIMULATOR_H_
#define MJOIN_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "sim/cost_params.h"

namespace mjoin {

/// A deterministic discrete-event simulator. Events scheduled for the same
/// time fire in scheduling order (FIFO tie-break), so runs are exactly
/// reproducible.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Ticks Now() const { return now_; }

  /// Schedules `fn` to run at Now() + delay (delay >= 0).
  void Schedule(Ticks delay, std::function<void()> fn) {
    MJOIN_DCHECK(delay >= 0);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  /// Runs until the event queue is empty. Returns the final clock value.
  Ticks Run();

  /// Runs at most `max_events` further events; returns true if drained.
  bool RunFor(uint64_t max_events);

  uint64_t num_events_processed() const { return events_processed_; }

 private:
  struct Event {
    Ticks time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Ticks now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace mjoin

#endif  // MJOIN_SIM_SIMULATOR_H_
