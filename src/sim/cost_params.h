#ifndef MJOIN_SIM_COST_PARAMS_H_
#define MJOIN_SIM_COST_PARAMS_H_

#include <cstdint>
#include <string>

namespace mjoin {

/// Simulated time is measured in integer ticks. One tick corresponds to one
/// elementary per-tuple action (hashing, sending, ...), following the
/// paper's cost rationale: "the time spent on a single action on a tuple
/// (like hashing, retrieving from the network, sending over the network
/// etc.) is in the same order of magnitude, which is taken as unity."
using Ticks = int64_t;

/// Cost model of the simulated shared-nothing machine. Defaults are
/// calibrated so that the simulated response times of the paper's workload
/// land in the same ballpark (seconds, on 1995 hardware) and, more
/// importantly, reproduce the qualitative shapes of Figures 9-14; see
/// EXPERIMENTS.md for the calibration notes.
struct CostParams {
  /// CPU cost per operand tuple for hashing (both hash-join variants).
  Ticks tuple_hash = 1;
  /// CPU cost to insert a tuple into a join hash table.
  Ticks tuple_build = 1;
  /// CPU cost to probe a join hash table with one tuple.
  Ticks tuple_probe = 1;
  /// CPU cost to create one result tuple.
  Ticks tuple_result = 1;
  /// CPU cost at the sender per tuple sent over the network.
  Ticks tuple_send = 1;
  /// CPU cost at the receiver per tuple retrieved from the network.
  Ticks tuple_recv = 1;
  /// CPU cost to read one tuple from a local memory fragment.
  Ticks tuple_scan = 1;
  /// Fixed CPU cost per batch at each endpoint of a networked stream.
  Ticks batch_overhead = 4;
  /// Pure delay (no CPU) for a batch to cross the interconnect.
  Ticks network_latency = 25;
  /// Scheduler CPU to claim + initialize one operation process from the
  /// pool. Serialized on the scheduler, this is the paper's "startup"
  /// barrier (grows with the number of operation processes).
  Ticks process_startup = 30;
  /// CPU at a node per networked stream endpoint for the sender/receiver
  /// handshake. With an n-producer, m-consumer redistribution there are
  /// n*m streams: the paper's "coordination" barrier.
  Ticks stream_handshake = 2;
  /// CPU at the (serial) stream-broker service per stream opened: stream
  /// setup in PRISMA goes through a naming/communication service, so an
  /// n x m refragmentation costs n*m serialized ticks — this is what makes
  /// SP degrade quadratically in P for small problems (§3.5
  /// "coordination").
  Ticks broker_handshake = 1;
  /// Delay for a scheduler trigger message to reach a node.
  Ticks trigger_latency = 25;
  /// Tuples per batch on a stream (pipelining granularity).
  uint32_t batch_size = 64;
  /// Main memory available per worker node for operator state (join hash
  /// tables, buffered batches); 0 = unlimited. When a node's live operator
  /// memory exceeds this, its CPU work is slowed by `memory_pressure_factor`
  /// — the extra disk traffic of joins sharing a too-small memory that the
  /// paper's disk-based discussion predicts.
  size_t memory_per_node_bytes = 0;
  /// Multiplier applied to task costs on nodes over their memory budget.
  double memory_pressure_factor = 8.0;
  /// Wall-clock seconds represented by one tick; used only for reporting
  /// response times in (1995-hardware) seconds.
  double tick_seconds = 0.0004;

  double ToSeconds(Ticks t) const {
    return static_cast<double>(t) * tick_seconds;
  }

  std::string ToString() const;
};

}  // namespace mjoin

#endif  // MJOIN_SIM_COST_PARAMS_H_
