#include "strategy/fp.h"

#include "plan/allocation.h"
#include "strategy/builder.h"

namespace mjoin {

StatusOr<ParallelPlan> FullParallelStrategy::Parallelize(
    const JoinQuery& query, uint32_t num_processors,
    const TotalCostModel& cost_model) const {
  MJOIN_RETURN_IF_ERROR(query.tree.Validate());

  JoinTree tree = query.tree;
  cost_model.Annotate(&tree);

  // One private processor block per join, proportional to the join's
  // estimated work over the whole tree.
  std::vector<int> join_nodes;
  std::vector<double> join_costs;
  for (int id : tree.PostOrder()) {
    if (tree.node(id).is_leaf()) continue;
    join_nodes.push_back(id);
    join_costs.push_back(tree.node(id).join_cost);
  }
  MJOIN_ASSIGN_OR_RETURN(std::vector<uint32_t> counts,
                         ProportionalAllocation(join_costs, num_processors));
  std::vector<std::vector<uint32_t>> blocks =
      CarveBlocks(ProcessorRange(0, num_processors), counts);

  MJOIN_ASSIGN_OR_RETURN(QueryAnalysis analysis, AnalyzeQuery(query));
  PlanBuilder builder(query, analysis, num_processors, "FP");

  // Everything starts at once: one trigger group.
  int group = builder.AddGroup({});
  std::vector<int> op_of(tree.num_nodes(), -1);
  for (size_t i = 0; i < join_nodes.size(); ++i) {
    int node_id = join_nodes[i];
    const JoinTreeNode& node = tree.node(node_id);
    int join_op = builder.AddJoinOp(XraOpKind::kPipeliningHashJoin, node_id,
                                    blocks[i], group);
    op_of[node_id] = join_op;
    for (int port = 0; port < 2; ++port) {
      int child = port == 0 ? node.left : node.right;
      const JoinTreeNode& child_node = tree.node(child);
      if (child_node.is_leaf()) {
        builder.AddScanFor(join_op, port, child_node.relation, group);
      } else {
        // Children precede parents in post order, so the op exists.
        builder.ConnectDirect(op_of[child], join_op, port);
      }
    }
    if (node_id == tree.root()) builder.SetFinalResult(join_op);
  }
  return builder.Finish();
}

}  // namespace mjoin
