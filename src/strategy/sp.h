#ifndef MJOIN_STRATEGY_SP_H_
#define MJOIN_STRATEGY_SP_H_

#include "strategy/strategy.h"

namespace mjoin {

/// Sequential Parallel execution (§3.1): the constituent joins are
/// executed sequentially (post order), each using *all* available
/// processors with the simple hash-join. No inter-operator parallelism and
/// no pipelining; every intermediate result is materialized and then
/// refragmented for the next join (an n x m stream redistribution — the
/// source of SP's coordination overhead). Needs no cost function and has
/// perfect idealized load balancing.
class SequentialParallelStrategy : public Strategy {
 public:
  /// `join_algorithm` selects the physical join: the default simple
  /// hash-join, or kSortMergeJoin for the [SCD89] baseline comparison
  /// (sort-merge is a pipeline breaker, so only SP can host it).
  explicit SequentialParallelStrategy(
      XraOpKind join_algorithm = XraOpKind::kSimpleHashJoin)
      : join_algorithm_(join_algorithm) {}

  StrategyKind kind() const override { return StrategyKind::kSP; }

  StatusOr<ParallelPlan> Parallelize(
      const JoinQuery& query, uint32_t num_processors,
      const TotalCostModel& cost_model) const override;

 private:
  XraOpKind join_algorithm_;
};

}  // namespace mjoin

#endif  // MJOIN_STRATEGY_SP_H_
