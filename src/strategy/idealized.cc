#include "strategy/idealized.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "plan/allocation.h"
#include "plan/segments.h"

namespace mjoin {

namespace {

char LabelFor(double w) {
  int iw = static_cast<int>(w);
  return (iw >= 0 && iw < 10) ? static_cast<char>('0' + iw) : '#';
}

double WorkOf(const std::map<int, double>& work, int id) {
  auto it = work.find(id);
  return it == work.end() ? 1.0 : it->second;
}

// Sum of join work weights in the subtree under `id`.
double SubtreeWork(const JoinTree& tree, const std::map<int, double>& work,
                   int id) {
  const JoinTreeNode& node = tree.node(id);
  if (node.is_leaf()) return 0;
  return WorkOf(work, id) + SubtreeWork(tree, work, node.left) +
         SubtreeWork(tree, work, node.right);
}

void BuildSP(const JoinTree& tree, const std::map<int, double>& work,
             uint32_t p, std::vector<IdealizedBlock>* blocks) {
  double t = 0;
  for (int id : tree.PostOrder()) {
    if (tree.node(id).is_leaf()) continue;
    double span = WorkOf(work, id) / p;
    blocks->push_back({LabelFor(WorkOf(work, id)), 0, p, t, t + span});
    t += span;
  }
}

StatusOr<double> BuildSE(const JoinTree& tree,
                         const std::map<int, double>& work, int id,
                         uint32_t lo, uint32_t hi, double t0,
                         std::vector<IdealizedBlock>* blocks) {
  const JoinTreeNode& node = tree.node(id);
  if (node.is_leaf()) return t0;
  const JoinTreeNode& left = tree.node(node.left);
  const JoinTreeNode& right = tree.node(node.right);

  double ready = t0;
  if (!left.is_leaf() && !right.is_leaf()) {
    MJOIN_ASSIGN_OR_RETURN(
        std::vector<uint32_t> counts,
        ProportionalAllocation({SubtreeWork(tree, work, node.left),
                                SubtreeWork(tree, work, node.right)},
                               hi - lo));
    MJOIN_ASSIGN_OR_RETURN(double tl, BuildSE(tree, work, node.left, lo,
                                              lo + counts[0], t0, blocks));
    MJOIN_ASSIGN_OR_RETURN(double tr, BuildSE(tree, work, node.right,
                                              lo + counts[0], hi, t0, blocks));
    ready = std::max(tl, tr);
  } else if (!left.is_leaf()) {
    MJOIN_ASSIGN_OR_RETURN(ready,
                           BuildSE(tree, work, node.left, lo, hi, t0, blocks));
  } else if (!right.is_leaf()) {
    MJOIN_ASSIGN_OR_RETURN(ready,
                           BuildSE(tree, work, node.right, lo, hi, t0, blocks));
  }
  double span = WorkOf(work, id) / (hi - lo);
  blocks->push_back({LabelFor(WorkOf(work, id)), lo, hi, ready, ready + span});
  return ready + span;
}

StatusOr<double> BuildRD(const JoinTree& tree, const SegmentedTree& segmented,
                         const std::map<int, double>& work, int segment_id,
                         uint32_t lo, uint32_t hi, double t0,
                         std::vector<IdealizedBlock>* blocks) {
  const RightDeepSegment& segment =
      segmented.segments()[static_cast<size_t>(segment_id)];

  double ready = t0;
  if (!segment.children.empty()) {
    std::vector<double> child_work;
    for (int child : segment.children) {
      const RightDeepSegment& cs =
          segmented.segments()[static_cast<size_t>(child)];
      double w = 0;
      for (int j : cs.joins) w += WorkOf(work, j);
      // Include the producers of the producer, recursively, via joins of
      // the whole child subtree: approximate with the child's top join
      // subtree work.
      w = SubtreeWork(tree, work, cs.joins.back());
      child_work.push_back(w);
    }
    MJOIN_ASSIGN_OR_RETURN(std::vector<uint32_t> counts,
                           ProportionalAllocation(child_work, hi - lo));
    uint32_t offset = lo;
    for (size_t c = 0; c < segment.children.size(); ++c) {
      MJOIN_ASSIGN_OR_RETURN(
          double tc, BuildRD(tree, segmented, work, segment.children[c],
                             offset, offset + counts[c], t0, blocks));
      ready = std::max(ready, tc);
      offset += counts[c];
    }
  }

  std::vector<double> join_work;
  join_work.reserve(segment.joins.size());
  for (int j : segment.joins) join_work.push_back(WorkOf(work, j));
  MJOIN_ASSIGN_OR_RETURN(std::vector<uint32_t> counts,
                         ProportionalAllocation(join_work, hi - lo));
  // The slowest join bounds the segment; faster ones show idle holes.
  double span = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    span = std::max(span, join_work[i] / counts[i]);
  }
  uint32_t offset = lo;
  for (size_t i = 0; i < counts.size(); ++i) {
    blocks->push_back({LabelFor(join_work[i]), offset, offset + counts[i],
                       ready, ready + join_work[i] / counts[i]});
    offset += counts[i];
  }
  return ready + span;
}

StatusOr<double> BuildFP(const JoinTree& tree,
                         const std::map<int, double>& work, uint32_t p,
                         std::vector<IdealizedBlock>* blocks) {
  std::vector<int> joins;
  std::vector<double> weights;
  for (int id : tree.PostOrder()) {
    if (tree.node(id).is_leaf()) continue;
    joins.push_back(id);
    weights.push_back(WorkOf(work, id));
  }
  MJOIN_ASSIGN_OR_RETURN(std::vector<uint32_t> counts,
                         ProportionalAllocation(weights, p));

  double total = 0;
  for (double w : weights) total += w;
  // One pipeline step's worth of delay before a consumer sees input.
  double delta = 0.08 * total / p;

  std::map<int, double> start, end;
  std::map<int, uint32_t> count_of;
  for (size_t i = 0; i < joins.size(); ++i) count_of[joins[i]] = counts[i];

  double makespan = 0;
  uint32_t offset = 0;
  for (size_t i = 0; i < joins.size(); ++i) {
    int id = joins[i];
    const JoinTreeNode& node = tree.node(id);
    // Start as soon as the first operand tuples can arrive: immediately
    // for a base operand, one pipeline step after an internal child
    // started otherwise.
    double s = 1e100;
    double child_end = 0;
    for (int child : {node.left, node.right}) {
      if (tree.node(child).is_leaf()) {
        s = 0;
      } else {
        s = std::min(s, start[child] + delta);
        child_end = std::max(child_end, end[child] + delta);
      }
    }
    double e = std::max(s + weights[i] / count_of[id], child_end);
    start[id] = s;
    end[id] = e;
    blocks->push_back(
        {LabelFor(weights[i]), offset, offset + counts[i], s, e});
    offset += counts[i];
    makespan = std::max(makespan, e);
  }
  return makespan;
}

}  // namespace

StatusOr<std::vector<IdealizedBlock>> IdealizedUtilization(
    StrategyKind strategy, const JoinTree& tree,
    const std::map<int, double>& work, uint32_t num_processors) {
  MJOIN_RETURN_IF_ERROR(tree.Validate());
  std::vector<IdealizedBlock> blocks;
  switch (strategy) {
    case StrategyKind::kSP:
      BuildSP(tree, work, num_processors, &blocks);
      break;
    case StrategyKind::kSE:
      MJOIN_RETURN_IF_ERROR(BuildSE(tree, work, tree.root(), 0,
                                    num_processors, 0, &blocks)
                                .status());
      break;
    case StrategyKind::kRD: {
      // Segment structure only depends on tree shape; inject the work
      // weights as join costs for the segment cost fields.
      JoinTree annotated = tree;
      for (int id : annotated.PostOrder()) {
        JoinTreeNode& node = annotated.mutable_node(id);
        node.join_cost = node.is_leaf() ? 0 : WorkOf(work, id);
      }
      for (int id : annotated.PostOrder()) {
        JoinTreeNode& node = annotated.mutable_node(id);
        node.subtree_cost =
            node.is_leaf() ? 0
                           : node.join_cost +
                                 annotated.node(node.left).subtree_cost +
                                 annotated.node(node.right).subtree_cost;
      }
      SegmentedTree segmented = SegmentedTree::Build(annotated);
      MJOIN_RETURN_IF_ERROR(BuildRD(annotated, segmented, work,
                                    segmented.root_segment(), 0,
                                    num_processors, 0, &blocks)
                                .status());
      break;
    }
    case StrategyKind::kFP:
      MJOIN_RETURN_IF_ERROR(
          BuildFP(tree, work, num_processors, &blocks).status());
      break;
  }
  return blocks;
}

std::string RenderIdealized(const std::vector<IdealizedBlock>& blocks,
                            uint32_t num_processors, uint32_t width) {
  double makespan = 0;
  for (const IdealizedBlock& b : blocks) makespan = std::max(makespan, b.end);
  if (makespan <= 0) return "";

  std::vector<std::string> rows(num_processors, std::string(width, '.'));
  for (const IdealizedBlock& b : blocks) {
    auto c0 = static_cast<uint32_t>(b.start / makespan * width);
    auto c1 = static_cast<uint32_t>(std::ceil(b.end / makespan * width));
    c1 = std::min(c1, width);
    for (uint32_t p = b.proc_lo; p < b.proc_hi && p < num_processors; ++p) {
      for (uint32_t c = c0; c < c1; ++c) rows[p][c] = b.label;
    }
  }
  std::string out;
  for (uint32_t p = num_processors; p-- > 0;) {
    out += PadLeft(StrCat(p), 3);
    out += " ";
    out += rows[p];
    out += "\n";
  }
  out += "    " + std::string(width, '-') + "> time\n";
  return out;
}

}  // namespace mjoin
