#ifndef MJOIN_STRATEGY_STRATEGY_H_
#define MJOIN_STRATEGY_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "plan/cost_model.h"
#include "plan/query.h"
#include "xra/plan.h"

namespace mjoin {

/// The four parallel execution strategies compared by the paper (§3).
enum class StrategyKind {
  /// Sequential Parallel: joins run one after another, each with maximal
  /// intra-operator parallelism; no inter-operator parallelism; simple
  /// hash-join; needs no cost function.
  kSP,
  /// Synchronous Execution [CYW92]: independent subtrees run in parallel
  /// on processor sets proportional to subtree cost; simple hash-join.
  kSE,
  /// Segmented Right-Deep [CLY92]: the tree is cut into right-deep
  /// segments; within a segment all builds load in parallel and the probe
  /// stream is pipelined; independent segments run in parallel.
  kRD,
  /// Full Parallel [WiA91]: every join gets a private processor set
  /// proportional to its cost and all joins run at once, pipelining along
  /// both operands via the symmetric pipelining hash-join.
  kFP,
};

inline constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kSP, StrategyKind::kSE, StrategyKind::kRD, StrategyKind::kFP};

std::string StrategyName(StrategyKind kind);

/// A phase-2 parallelizer: turns a join tree (phase-1 output) into a
/// parallel execution plan for `num_processors` processors.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual StrategyKind kind() const = 0;
  std::string name() const { return StrategyName(kind()); }

  /// Parallelizes `query` over `num_processors` workers. The cost model is
  /// used for proportional processor allocation (SP ignores it, as the
  /// paper notes). Fails with InvalidArgument when the strategy cannot
  /// place the query on that few processors (e.g. FP with fewer
  /// processors than joins).
  virtual StatusOr<ParallelPlan> Parallelize(
      const JoinQuery& query, uint32_t num_processors,
      const TotalCostModel& cost_model) const = 0;
};

/// Factory for the four built-in strategies.
std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind);

}  // namespace mjoin

#endif  // MJOIN_STRATEGY_STRATEGY_H_
