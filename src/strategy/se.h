#ifndef MJOIN_STRATEGY_SE_H_
#define MJOIN_STRATEGY_SE_H_

#include "strategy/strategy.h"

namespace mjoin {

/// Synchronous Execution (§3.2, [CYW92]): independent subtrees of a bushy
/// tree are evaluated in parallel on disjoint processor sets sized
/// proportionally to the total work in each subtree, so both operands of a
/// bushy join are expected to be ready at the same time. A join starts
/// only after its operands are complete (no pipelining); the simple
/// hash-join is used and intermediate results are materialized and
/// refragmented. For linear trees there are no independent subtrees and SE
/// degenerates to SP.
class SynchronousExecutionStrategy : public Strategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kSE; }

  StatusOr<ParallelPlan> Parallelize(
      const JoinQuery& query, uint32_t num_processors,
      const TotalCostModel& cost_model) const override;
};

}  // namespace mjoin

#endif  // MJOIN_STRATEGY_SE_H_
