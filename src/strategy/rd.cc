#include "strategy/rd.h"

#include "plan/allocation.h"
#include "plan/segments.h"
#include "strategy/builder.h"

namespace mjoin {

namespace {

// Plans `segment` (and, first, its producer segments) on `processors`;
// returns the op id of the segment's top join.
StatusOr<int> PlanSegment(PlanBuilder* builder, const JoinTree& tree,
                          const SegmentedTree& segmented, int segment_id,
                          const std::vector<uint32_t>& processors,
                          std::vector<int>* result_of) {
  const RightDeepSegment& segment =
      segmented.segments()[static_cast<size_t>(segment_id)];

  // Producer segments run first, in parallel on proportional disjoint
  // subsets; this segment starts when all of them completed.
  std::vector<TriggerDep> deps;
  if (!segment.children.empty()) {
    std::vector<double> child_costs;
    child_costs.reserve(segment.children.size());
    for (int child : segment.children) {
      child_costs.push_back(
          segmented.segments()[static_cast<size_t>(child)].subtree_cost);
    }
    MJOIN_ASSIGN_OR_RETURN(
        std::vector<uint32_t> counts,
        ProportionalAllocation(child_costs,
                               static_cast<uint32_t>(processors.size())));
    std::vector<std::vector<uint32_t>> blocks =
        CarveBlocks(processors, counts);
    for (size_t c = 0; c < segment.children.size(); ++c) {
      MJOIN_ASSIGN_OR_RETURN(
          int child_op,
          PlanSegment(builder, tree, segmented, segment.children[c], blocks[c],
                      result_of));
      deps.push_back({child_op, Milestone::kComplete});
    }
  }

  // Processors for this segment's joins: proportional to join cost.
  std::vector<double> join_costs;
  join_costs.reserve(segment.joins.size());
  for (int join : segment.joins) {
    join_costs.push_back(tree.node(join).join_cost);
  }
  MJOIN_ASSIGN_OR_RETURN(
      std::vector<uint32_t> counts,
      ProportionalAllocation(join_costs,
                             static_cast<uint32_t>(processors.size())));
  std::vector<std::vector<uint32_t>> blocks = CarveBlocks(processors, counts);

  // Build phase: all joins of the segment start together and load their
  // hash tables in parallel (base-relation left operands are colocated
  // scans; left operands produced by child segments are refragmented).
  int build_group = builder->AddGroup(std::move(deps));
  std::vector<int> join_ops(segment.joins.size());
  std::vector<TriggerDep> builds_done;
  for (size_t i = 0; i < segment.joins.size(); ++i) {
    int node_id = segment.joins[i];
    join_ops[i] = builder->AddJoinOp(XraOpKind::kSimpleHashJoin, node_id,
                                     blocks[i], build_group);
    const JoinTreeNode& left = tree.node(tree.node(node_id).left);
    if (left.is_leaf()) {
      builder->AddScanFor(join_ops[i], 0, left.relation, build_group);
    } else {
      builder->AddRescanFor(join_ops[i], 0, (*result_of)[left.id],
                            build_group);
    }
    builds_done.push_back({join_ops[i], Milestone::kBuildDone});
  }

  // Probe pipeline: join i feeds join i+1's probe port directly.
  for (size_t i = 0; i + 1 < join_ops.size(); ++i) {
    builder->ConnectDirect(join_ops[i], join_ops[i + 1], 1);
  }

  // Probe phase: the bottom join's probe operand starts once every hash
  // table in the segment is ready. It is a base relation (right chains end
  // at leaves) — unless the chain was split for memory, in which case it
  // is the stored result of the lower piece.
  int probe_group = builder->AddGroup(std::move(builds_done));
  if (segment.probe_from >= 0) {
    int lower_top =
        segmented.segments()[static_cast<size_t>(segment.probe_from)]
            .joins.back();
    builder->AddRescanFor(join_ops.front(), 1, (*result_of)[lower_top],
                          probe_group);
  } else {
    const JoinTreeNode& bottom_right =
        tree.node(tree.node(segment.joins.front()).right);
    MJOIN_CHECK(bottom_right.is_leaf());
    builder->AddScanFor(join_ops.front(), 1, bottom_right.relation,
                        probe_group);
  }

  int top_op = join_ops.back();
  int top_node = segment.joins.back();
  if (top_node == tree.root()) {
    builder->SetFinalResult(top_op);
  } else {
    (*result_of)[top_node] = builder->StoreOutput(top_op);
  }
  return top_op;
}

}  // namespace

StatusOr<ParallelPlan> SegmentedRightDeepStrategy::Parallelize(
    const JoinQuery& query, uint32_t num_processors,
    const TotalCostModel& cost_model) const {
  if (num_processors == 0) {
    return Status::InvalidArgument("need at least one processor");
  }
  MJOIN_RETURN_IF_ERROR(query.tree.Validate());

  JoinTree tree = query.tree;
  cost_model.Annotate(&tree);
  SegmentedTree segmented =
      SegmentedTree::Build(tree, max_build_tuples_per_segment_);

  MJOIN_ASSIGN_OR_RETURN(QueryAnalysis analysis, AnalyzeQuery(query));
  PlanBuilder builder(query, analysis, num_processors, "RD");
  std::vector<int> result_of(tree.num_nodes(), -1);
  MJOIN_RETURN_IF_ERROR(
      PlanSegment(&builder, tree, segmented, segmented.root_segment(),
                  ProcessorRange(0, num_processors), &result_of)
          .status());
  return builder.Finish();
}

}  // namespace mjoin
