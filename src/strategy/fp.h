#ifndef MJOIN_STRATEGY_FP_H_
#define MJOIN_STRATEGY_FP_H_

#include "strategy/strategy.h"

namespace mjoin {

/// Full Parallel execution (§3.4, [WiA91, WAF91]): every join operation is
/// allocated a private set of processors proportional to its estimated
/// work, all joins start at once, and the symmetric pipelining hash-join
/// lets results flow along *both* operands of every join, so the whole
/// tree executes as one dataflow. Minimal startup overhead (one operation
/// process per processor) and minimal coordination, at the price of the
/// largest discretization error and of the delay over (bushy) pipelines.
class FullParallelStrategy : public Strategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kFP; }

  StatusOr<ParallelPlan> Parallelize(
      const JoinQuery& query, uint32_t num_processors,
      const TotalCostModel& cost_model) const override;
};

}  // namespace mjoin

#endif  // MJOIN_STRATEGY_FP_H_
