#include "strategy/strategy.h"

#include "common/logging.h"
#include "strategy/fp.h"
#include "strategy/rd.h"
#include "strategy/se.h"
#include "strategy/sp.h"

namespace mjoin {

std::string StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSP:
      return "SP";
    case StrategyKind::kSE:
      return "SE";
    case StrategyKind::kRD:
      return "RD";
    case StrategyKind::kFP:
      return "FP";
  }
  return "?";
}

std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSP:
      return std::make_unique<SequentialParallelStrategy>();
    case StrategyKind::kSE:
      return std::make_unique<SynchronousExecutionStrategy>();
    case StrategyKind::kRD:
      return std::make_unique<SegmentedRightDeepStrategy>();
    case StrategyKind::kFP:
      return std::make_unique<FullParallelStrategy>();
  }
  MJOIN_CHECK(false) << "unknown strategy kind";
  return nullptr;
}

}  // namespace mjoin
