#include "strategy/se.h"

#include "plan/allocation.h"
#include "strategy/builder.h"

namespace mjoin {

namespace {

// Plans the subtree rooted at `node_id` on `processors`; returns the op id
// of the subtree's top join. `result_of` records the stored-result id of
// every planned join node.
StatusOr<int> PlanSubtree(PlanBuilder* builder, const JoinTree& tree,
                          int node_id, const std::vector<uint32_t>& processors,
                          std::vector<int>* result_of) {
  const JoinTreeNode& node = tree.node(node_id);
  MJOIN_CHECK(!node.is_leaf());
  const JoinTreeNode& left = tree.node(node.left);
  const JoinTreeNode& right = tree.node(node.right);

  // Recurse into internal children first. With two internal children the
  // processors are split proportionally to subtree cost so both operands
  // are ready at (about) the same time; with one internal child it gets
  // the whole set.
  std::vector<TriggerDep> deps;
  if (!left.is_leaf() && !right.is_leaf()) {
    MJOIN_ASSIGN_OR_RETURN(
        std::vector<uint32_t> counts,
        ProportionalAllocation({left.subtree_cost, right.subtree_cost},
                               static_cast<uint32_t>(processors.size())));
    std::vector<std::vector<uint32_t>> blocks =
        CarveBlocks(processors, counts);
    MJOIN_ASSIGN_OR_RETURN(
        int left_op, PlanSubtree(builder, tree, node.left, blocks[0],
                                 result_of));
    MJOIN_ASSIGN_OR_RETURN(
        int right_op, PlanSubtree(builder, tree, node.right, blocks[1],
                                  result_of));
    deps.push_back({left_op, Milestone::kComplete});
    deps.push_back({right_op, Milestone::kComplete});
  } else if (!left.is_leaf()) {
    MJOIN_ASSIGN_OR_RETURN(
        int left_op, PlanSubtree(builder, tree, node.left, processors,
                                 result_of));
    deps.push_back({left_op, Milestone::kComplete});
  } else if (!right.is_leaf()) {
    MJOIN_ASSIGN_OR_RETURN(
        int right_op, PlanSubtree(builder, tree, node.right, processors,
                                  result_of));
    deps.push_back({right_op, Milestone::kComplete});
  }

  // This join runs on the subtree's full processor set once its operands
  // are ready: build phase, then probe phase.
  int build_group = builder->AddGroup(std::move(deps));
  int join_op = builder->AddJoinOp(XraOpKind::kSimpleHashJoin, node_id,
                                   processors, build_group);
  if (left.is_leaf()) {
    builder->AddScanFor(join_op, 0, left.relation, build_group);
  } else {
    builder->AddRescanFor(join_op, 0, (*result_of)[node.left], build_group);
  }
  int probe_group = builder->AddGroup({{join_op, Milestone::kBuildDone}});
  if (right.is_leaf()) {
    builder->AddScanFor(join_op, 1, right.relation, probe_group);
  } else {
    builder->AddRescanFor(join_op, 1, (*result_of)[node.right], probe_group);
  }

  if (node_id == tree.root()) {
    builder->SetFinalResult(join_op);
  } else {
    (*result_of)[node_id] = builder->StoreOutput(join_op);
  }
  return join_op;
}

}  // namespace

StatusOr<ParallelPlan> SynchronousExecutionStrategy::Parallelize(
    const JoinQuery& query, uint32_t num_processors,
    const TotalCostModel& cost_model) const {
  if (num_processors == 0) {
    return Status::InvalidArgument("need at least one processor");
  }
  MJOIN_RETURN_IF_ERROR(query.tree.Validate());

  // Annotate a private copy of the tree with the cost model (subtree costs
  // drive the proportional split).
  JoinTree tree = query.tree;
  cost_model.Annotate(&tree);

  MJOIN_ASSIGN_OR_RETURN(QueryAnalysis analysis, AnalyzeQuery(query));
  PlanBuilder builder(query, analysis, num_processors, "SE");
  std::vector<int> result_of(tree.num_nodes(), -1);
  MJOIN_RETURN_IF_ERROR(
      PlanSubtree(&builder, tree, tree.root(),
                  ProcessorRange(0, num_processors), &result_of)
          .status());
  return builder.Finish();
}

}  // namespace mjoin
