#ifndef MJOIN_STRATEGY_IDEALIZED_H_
#define MJOIN_STRATEGY_IDEALIZED_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "plan/join_tree.h"
#include "strategy/strategy.h"

namespace mjoin {

/// One busy block of one strategy's *idealized* processor-utilization
/// diagram: processors [proc_lo, proc_hi) work on the join labelled
/// `label` during [start, end) (arbitrary work units; overheads ignored,
/// exactly like the diagrams of Figures 3, 4, 6 and 7).
struct IdealizedBlock {
  char label = '?';
  uint32_t proc_lo = 0;
  uint32_t proc_hi = 0;
  double start = 0;
  double end = 0;
};

/// Computes the idealized utilization diagram of `strategy` for `tree` on
/// `num_processors` processors. `work` maps join node id -> relative
/// amount of work (the numeric labels of Figure 2); the label drawn for a
/// join is the decimal digit of its work weight when < 10, else '#'.
///
/// Modeling assumptions (documented in the paper's §3):
///  - SP: joins run post-order, each on all processors, duration w/P.
///  - SE: CYW92 allocation; independent subtrees in parallel on
///    processor sets proportional to subtree work; a join runs on its
///    subtree's full set after its operands complete.
///  - RD: producer segments first (parallel, proportional sets); within a
///    segment each join gets processors proportional to its work and is
///    busy for w/c of the segment span — the bottleneck join defines the
///    span, the others show idle holes.
///  - FP: private proportional processor sets; a join starts when its
///    first operand tuples can arrive (a small pipeline delay after its
///    deepest internal child starts) and cannot finish before its
///    children (plus the delay).
StatusOr<std::vector<IdealizedBlock>> IdealizedUtilization(
    StrategyKind strategy, const JoinTree& tree,
    const std::map<int, double>& work, uint32_t num_processors);

/// Renders blocks as the paper's diagram: one row per processor (top row =
/// highest id), x-axis = time, '.' = idle.
std::string RenderIdealized(const std::vector<IdealizedBlock>& blocks,
                            uint32_t num_processors, uint32_t width = 72);

}  // namespace mjoin

#endif  // MJOIN_STRATEGY_IDEALIZED_H_
