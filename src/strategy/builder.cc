#include "strategy/builder.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mjoin {

size_t PortKey(const XraOp& join_op, int port) {
  MJOIN_CHECK(join_op.is_join());
  return port == 0 ? join_op.join_spec.left_key : join_op.join_spec.right_key;
}

PlanBuilder::PlanBuilder(const JoinQuery& query, const QueryAnalysis& analysis,
                         uint32_t num_processors, std::string strategy_name)
    : query_(&query), analysis_(&analysis) {
  plan_.strategy = std::move(strategy_name);
  plan_.num_processors = num_processors;

  // Assign display labels to join nodes in post order: '1'..'9', 'a'..'z'.
  node_labels_.assign(query.tree.num_nodes(), '?');
  int join_index = 0;
  for (int id : query.tree.PostOrder()) {
    if (query.tree.node(id).is_leaf()) continue;
    char label = join_index < 9
                     ? static_cast<char>('1' + join_index)
                     : static_cast<char>('a' + (join_index - 9) % 26);
    node_labels_[static_cast<size_t>(id)] = label;
    ++join_index;
  }
}

int PlanBuilder::AddGroup(std::vector<TriggerDep> deps) {
  plan_.groups.push_back(TriggerGroup{std::move(deps), {}});
  return static_cast<int>(plan_.groups.size()) - 1;
}

int PlanBuilder::NewOp(XraOpKind kind, int group) {
  MJOIN_CHECK(group >= 0 && group < static_cast<int>(plan_.groups.size()));
  XraOp new_op;
  new_op.id = static_cast<int>(plan_.ops.size());
  new_op.kind = kind;
  new_op.trigger_group = group;
  plan_.ops.push_back(std::move(new_op));
  plan_.groups[static_cast<size_t>(group)].ops.push_back(plan_.ops.back().id);
  return plan_.ops.back().id;
}

int PlanBuilder::AddJoinOp(XraOpKind kind, int node_id,
                           std::vector<uint32_t> processors, int group) {
  MJOIN_CHECK(kind == XraOpKind::kSimpleHashJoin ||
              kind == XraOpKind::kPipeliningHashJoin ||
              kind == XraOpKind::kSortMergeJoin);
  int id = NewOp(kind, group);
  XraOp& join = op(id);
  join.join_spec = analysis_->node_spec[static_cast<size_t>(node_id)];
  join.output_schema = join.join_spec.output_schema;
  join.processors = std::move(processors);
  join.trace_label = TraceLabelFor(node_id);
  join.label = StrCat("join#", node_id);
  return id;
}

int PlanBuilder::AddScanFor(int join_op, int port, const std::string& relation,
                            int group) {
  int id = NewOp(XraOpKind::kScan, group);
  XraOp& scan = op(id);
  XraOp& join = op(join_op);
  scan.relation = relation;
  scan.processors = join.processors;
  scan.trace_label = join.trace_label;
  scan.label = StrCat("scan(", relation, ")");
  auto it = query_->base_schemas.find(relation);
  MJOIN_CHECK(it != query_->base_schemas.end());
  scan.output_schema = it->second;
  scan.consumer = join_op;
  scan.consumer_port = port;
  join.inputs[port].producer = id;
  join.inputs[port].routing = Routing::kColocated;
  return id;
}

int PlanBuilder::AddRescanFor(int join_op, int port, int result_id,
                              int group) {
  // Locate the storing op: the rescan runs exactly on its processors.
  // Copy what we need before NewOp — adding an op may reallocate plan_.ops
  // and would invalidate any reference into it.
  std::vector<uint32_t> storer_processors;
  std::shared_ptr<const Schema> storer_schema;
  bool found = false;
  for (const XraOp& other : plan_.ops) {
    if (other.store_result == result_id) {
      storer_processors = other.processors;
      storer_schema = other.output_schema;
      found = true;
    }
  }
  MJOIN_CHECK(found) << "rescan of unknown result " << result_id;

  int id = NewOp(XraOpKind::kRescan, group);
  XraOp& rescan = op(id);
  XraOp& join = op(join_op);
  rescan.stored_result = result_id;
  rescan.processors = std::move(storer_processors);
  rescan.trace_label = join.trace_label;
  rescan.label = StrCat("rescan(r", result_id, ")");
  rescan.output_schema = std::move(storer_schema);
  rescan.consumer = join_op;
  rescan.consumer_port = port;
  join.inputs[port].producer = id;
  join.inputs[port].routing = Routing::kHashSplit;
  join.inputs[port].split_key = PortKey(join, port);
  return id;
}

void PlanBuilder::ConnectDirect(int producer_op, int consumer_op, int port) {
  XraOp& producer = op(producer_op);
  XraOp& consumer = op(consumer_op);
  MJOIN_CHECK(producer.store_result < 0 && producer.consumer < 0)
      << "producer already has an output destination";
  producer.consumer = consumer_op;
  producer.consumer_port = port;
  consumer.inputs[port].producer = producer_op;
  consumer.inputs[port].routing = Routing::kHashSplit;
  consumer.inputs[port].split_key = PortKey(consumer, port);
}

int PlanBuilder::StoreOutput(int op_id) {
  XraOp& o = op(op_id);
  MJOIN_CHECK(o.store_result < 0 && o.consumer < 0)
      << "op already has an output destination";
  o.store_result = plan_.num_results++;
  return o.store_result;
}

void PlanBuilder::SetFinalResult(int op_id) {
  plan_.final_result = StoreOutput(op_id);
}

char PlanBuilder::TraceLabelFor(int node_id) const {
  return node_labels_[static_cast<size_t>(node_id)];
}

StatusOr<ParallelPlan> PlanBuilder::Finish() {
  MJOIN_RETURN_IF_ERROR(plan_.Validate());
  return std::move(plan_);
}

}  // namespace mjoin
