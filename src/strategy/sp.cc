#include "strategy/sp.h"

#include "plan/allocation.h"
#include "strategy/builder.h"

namespace mjoin {

StatusOr<ParallelPlan> SequentialParallelStrategy::Parallelize(
    const JoinQuery& query, uint32_t num_processors,
    const TotalCostModel& cost_model) const {
  if (num_processors == 0) {
    return Status::InvalidArgument("need at least one processor");
  }
  if (join_algorithm_ != XraOpKind::kSimpleHashJoin &&
      join_algorithm_ != XraOpKind::kSortMergeJoin) {
    return Status::InvalidArgument(
        "SP supports the simple hash-join or the sort-merge join");
  }
  MJOIN_RETURN_IF_ERROR(query.tree.Validate());
  MJOIN_ASSIGN_OR_RETURN(QueryAnalysis analysis, AnalyzeQuery(query));
  PlanBuilder builder(query, analysis, num_processors, "SP");

  const JoinTree& tree = query.tree;
  std::vector<uint32_t> all = ProcessorRange(0, num_processors);
  std::vector<int> result_of(tree.num_nodes(), -1);
  int prev_join = -1;

  for (int id : tree.PostOrder()) {
    const JoinTreeNode& node = tree.node(id);
    if (node.is_leaf()) continue;

    // Build phase: the join plus its build (left) source start once the
    // previous join of the sequence has completed.
    std::vector<TriggerDep> deps;
    if (prev_join >= 0) deps.push_back({prev_join, Milestone::kComplete});
    int build_group = builder.AddGroup(std::move(deps));
    int join_op = builder.AddJoinOp(join_algorithm_, id, all, build_group);

    const JoinTreeNode& left = tree.node(node.left);
    if (left.is_leaf()) {
      builder.AddScanFor(join_op, 0, left.relation, build_group);
    } else {
      builder.AddRescanFor(join_op, 0, result_of[node.left], build_group);
    }

    // Probe phase: with the simple hash-join the probe source starts once
    // the hash table is built; the sort-merge join buffers both operands
    // anyway, so its right source starts with the join.
    int probe_group =
        join_algorithm_ == XraOpKind::kSimpleHashJoin
            ? builder.AddGroup({{join_op, Milestone::kBuildDone}})
            : build_group;
    const JoinTreeNode& right = tree.node(node.right);
    if (right.is_leaf()) {
      builder.AddScanFor(join_op, 1, right.relation, probe_group);
    } else {
      builder.AddRescanFor(join_op, 1, result_of[node.right], probe_group);
    }

    if (id == tree.root()) {
      builder.SetFinalResult(join_op);
    } else {
      result_of[id] = builder.StoreOutput(join_op);
    }
    prev_join = join_op;
  }
  return builder.Finish();
}

}  // namespace mjoin
