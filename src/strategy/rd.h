#ifndef MJOIN_STRATEGY_RD_H_
#define MJOIN_STRATEGY_RD_H_

#include "strategy/strategy.h"

namespace mjoin {

/// Segmented Right-Deep execution (§3.3, [CLY92], inspired by [ScD90]):
/// the bushy tree is decomposed into right-deep segments. Within a
/// segment, every join's hash table is built in parallel (processors per
/// join proportional to its estimated work) and the probe stream is then
/// pipelined bottom-to-top through the segment. Producer segments complete
/// before their consumer segment starts; independent segments run in
/// parallel on disjoint processor subsets. For a right-linear tree the
/// whole query is one segment (RD = FP but with simple hash-joins); for a
/// left-linear tree every segment is a single join (RD = SP).
class SegmentedRightDeepStrategy : public Strategy {
 public:
  /// With `max_build_tuples_per_segment` > 0, right-deep chains are split
  /// so that the build tables of each segment stay within the budget
  /// ([CLY92]'s memory-driven segmentation); the lower piece's result is
  /// materialized and probed by the next piece.
  explicit SegmentedRightDeepStrategy(double max_build_tuples_per_segment = 0)
      : max_build_tuples_per_segment_(max_build_tuples_per_segment) {}

  StrategyKind kind() const override { return StrategyKind::kRD; }

  StatusOr<ParallelPlan> Parallelize(
      const JoinQuery& query, uint32_t num_processors,
      const TotalCostModel& cost_model) const override;

 private:
  double max_build_tuples_per_segment_;
};

}  // namespace mjoin

#endif  // MJOIN_STRATEGY_RD_H_
